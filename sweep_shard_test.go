package crn_test

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"crn"
)

// TestPlanShardsPartition: plans tile the job grid exactly, balanced,
// for every shard count — including more shards than jobs.
func TestPlanShardsPartition(t *testing.T) {
	spec := discoverySpec(1)
	for _, k := range []int{1, 2, 3, 4, 7, 8, 9, 20} {
		plan, err := crn.PlanShards(spec, k)
		if err != nil {
			t.Fatalf("PlanShards(%d): %v", k, err)
		}
		if len(plan.Shards) != k {
			t.Fatalf("PlanShards(%d) made %d shards", k, len(plan.Shards))
		}
		total := len(plan.Variants) * plan.Seeds
		lo, min, max := 0, total, 0
		for _, r := range plan.Shards {
			if r.Lo != lo {
				t.Fatalf("k=%d: range %+v does not continue at %d", k, r, lo)
			}
			size := r.Hi - r.Lo
			if size < min {
				min = size
			}
			if size > max {
				max = size
			}
			lo = r.Hi
		}
		if lo != total {
			t.Fatalf("k=%d: ranges cover %d of %d jobs", k, lo, total)
		}
		if max-min > 1 {
			t.Errorf("k=%d: unbalanced shard sizes (min %d, max %d)", k, min, max)
		}
	}
	if _, err := crn.PlanShards(spec, 0); err == nil {
		t.Error("PlanShards(0) accepted")
	}
	if _, err := crn.PlanShards(crn.SweepSpec{}, 2); err == nil {
		t.Error("PlanShards of an invalid spec accepted")
	}
}

// TestShardedSweepByteIdentity is the acceptance criterion: for any
// shard count (including 1) and any worker count, running every shard
// of a plan and merging reproduces the single-process Sweep output
// byte for byte.
func TestShardedSweepByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	ctx := context.Background()
	baseline, err := crn.Sweep(ctx, discoverySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(baseline)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 3, 5, 8, 11} {
		for _, workers := range []int{1, 4} {
			spec := discoverySpec(workers)
			plan, err := crn.PlanShards(spec, k)
			if err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
			shards := make([]*crn.ShardResult, k)
			for s := 0; s < k; s++ {
				// Merge in reverse order to prove order-independence.
				res, err := crn.RunShard(ctx, spec, plan, s)
				if err != nil {
					t.Fatalf("k=%d shard %d: %v", k, s, err)
				}
				shards[k-1-s] = res
			}
			merged, err := crn.MergeShards(plan, shards...)
			if err != nil {
				t.Fatalf("k=%d merge: %v", k, err)
			}
			got, err := json.Marshal(merged)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Errorf("k=%d workers=%d: merged output diverged from Sweep\n%s\nvs\n%s", k, workers, got, want)
			}
		}
	}
}

// TestShardedSweepByteIdentityAfterJSONRoundTrip: shard artifacts
// cross process boundaries as JSON; parsing them back and merging must
// still be exact (Go float64 JSON encoding round-trips losslessly).
func TestShardedSweepByteIdentityAfterJSONRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	ctx := context.Background()
	spec := discoverySpec(2)
	spec.KeepResults = false
	baseline, err := crn.Sweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(baseline)

	plan, err := crn.PlanShards(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	var shards []*crn.ShardResult
	for s := 0; s < 3; s++ {
		res, err := crn.RunShard(ctx, spec, plan, s)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		parsed := new(crn.ShardResult)
		if err := json.Unmarshal(doc, parsed); err != nil {
			t.Fatal(err)
		}
		shards = append(shards, parsed)
	}
	// The plan round-trips too (the manifest stores it as JSON).
	planDoc, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	parsedPlan := new(crn.ShardPlan)
	if err := json.Unmarshal(planDoc, parsedPlan); err != nil {
		t.Fatal(err)
	}
	merged, err := crn.MergeShards(parsedPlan, shards...)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(merged)
	if string(got) != string(want) {
		t.Errorf("round-tripped merge diverged:\n%s\nvs\n%s", got, want)
	}
}

// TestShardValidation: stale or mismatched plans, shards and artifacts
// are rejected instead of silently merged.
func TestShardValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	ctx := context.Background()
	spec := discoverySpec(1)
	plan, err := crn.PlanShards(spec, 2)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := crn.RunShard(ctx, spec, plan, 2); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if _, err := crn.RunShard(ctx, spec, plan, -1); err == nil {
		t.Error("negative shard accepted")
	}

	// Spec drifted from the plan: different base seed / seed count /
	// primitive.
	drift := spec
	drift.BaseSeed++
	if _, err := crn.RunShard(ctx, drift, plan, 0); err == nil {
		t.Error("base-seed drift accepted")
	}
	drift = spec
	drift.Seeds++
	if _, err := crn.RunShard(ctx, drift, plan, 0); err == nil {
		t.Error("seed-count drift accepted")
	}
	drift = spec
	drift.Primitive = crn.Flooding(0, "m")
	if _, err := crn.RunShard(ctx, drift, plan, 0); err == nil {
		t.Error("primitive drift accepted")
	}

	s0, err := crn.RunShard(ctx, spec, plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := crn.RunShard(ctx, spec, plan, 1)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := crn.MergeShards(plan, s0); err == nil {
		t.Error("merge with a missing shard accepted")
	}
	if _, err := crn.MergeShards(plan, s0, s0); err == nil {
		t.Error("merge with a duplicate shard accepted")
	}
	if _, err := crn.MergeShards(plan, s0, nil); err == nil {
		t.Error("merge with a nil shard accepted")
	}

	// An artifact produced under a different base seed fails the
	// per-run seed check even if shapes line up.
	otherPlan, err := crn.PlanShards(drift2(spec), 2)
	if err != nil {
		t.Fatal(err)
	}
	other, err := crn.RunShard(ctx, drift2(spec), otherPlan, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := crn.MergeShards(plan, s0, other); err == nil {
		t.Error("merge of an artifact from a different base seed accepted")
	}

	// The happy path still works after all that.
	if _, err := crn.MergeShards(plan, s1, s0); err != nil {
		t.Errorf("valid merge failed: %v", err)
	}
}

func drift2(spec crn.SweepSpec) crn.SweepSpec {
	spec.BaseSeed += 7
	return spec
}

// TestShardedSweepMoreShardsThanJobs: over-sharding leaves some ranges
// empty; running and merging those empty shards — in a rotated, not
// sorted, order — still reproduces Sweep byte for byte.
func TestShardedSweepMoreShardsThanJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	ctx := context.Background()
	spec := discoverySpec(1)
	baseline, err := crn.Sweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(baseline)

	const k = 13 // 2 variants × 4 seeds = 8 jobs, so 5 shards are empty
	plan, err := crn.PlanShards(spec, k)
	if err != nil {
		t.Fatal(err)
	}
	empty := 0
	shards := make([]*crn.ShardResult, k)
	for s := 0; s < k; s++ {
		res, err := crn.RunShard(ctx, spec, plan, s)
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		if len(res.Runs) == 0 {
			empty++
		}
		shards[(s+5)%k] = res // rotate: merge order ≠ shard order
	}
	if empty != k-8 {
		t.Fatalf("expected %d empty shards, got %d", k-8, empty)
	}
	merged, err := crn.MergeShards(plan, shards...)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(merged)
	if string(got) != string(want) {
		t.Error("over-sharded rotated merge diverged from Sweep")
	}
	// Dropping an empty shard is still a missing shard.
	if _, err := crn.MergeShards(plan, shards[:k-1]...); err == nil {
		t.Error("merge missing an empty shard accepted")
	}
}

// TestMergeShardsErrorMessages: merge failures must say which shard —
// by index, or by argument position when the index is unreadable —
// so a spool full of artifacts is debuggable from the error alone.
func TestMergeShardsErrorMessages(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	ctx := context.Background()
	spec := discoverySpec(1)
	plan, err := crn.PlanShards(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	var results []*crn.ShardResult
	for s := 0; s < 3; s++ {
		res, err := crn.RunShard(ctx, spec, plan, s)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	wantErr := func(msg string, shards ...*crn.ShardResult) {
		t.Helper()
		_, err := crn.MergeShards(plan, shards...)
		if err == nil {
			t.Errorf("merge accepted, want error containing %q", msg)
			return
		}
		if !strings.Contains(err.Error(), msg) {
			t.Errorf("error %q does not contain %q", err, msg)
		}
	}
	wantErr("shard 1 supplied twice", results[0], results[1], results[1])
	wantErr("argument 1 of 3", results[0], nil, results[2])
	wantErr("shard 2 missing", results[0], results[1])
	wantErr("shard 7 out of range", results[0], results[1], &crn.ShardResult{Shard: 7})
	wantErr("shard 2 has 0 runs", results[0], results[1], &crn.ShardResult{Shard: 2})
}
