package crn

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"crn/internal/trace"
)

// Golden-trace regression tests: every preset × primitive pair below
// has a committed delivery trace (testdata/golden/*.jsonl) recorded at
// a fixed seed, and runs must reproduce it byte for byte. Any change
// to RNG consumption order, engine resolution, jammer schedules or
// scheduling (the PR 1 CGCAST map-iteration bug was exactly such a
// regression) shows up here as a trace diff. Regenerate deliberately
// with:
//
//	go test . -run TestGoldenTraces -update
var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

const goldenSeed = 99

// goldenScenario is deliberately tiny: traces must stay reviewable and
// cheap to diff, while still exercising multi-hop topology, channel
// contention and every spectrum model.
func goldenScenario(t *testing.T, preset string, rec *trace.Recorder) *Scenario {
	t.Helper()
	opts := []ScenarioOption{
		WithTopology(GNP),
		WithNodes(7),
		WithChannels(3, 2, 0),
		WithSeed(17),
		// Cut the schedule constants so committed traces stay a few
		// hundred events: golden traces pin determinism, not the w.h.p.
		// completion guarantees (the statistical suite covers those).
		WithTuning(Tuning{
			CountSlotsPerRound: 4,
			CountMinRoundSlots: 16,
			P1Steps:            1,
			P2Steps:            1,
			ColoringPhases:     2,
			DissemRounds:       1,
		}),
		WithDeliveryTrace(func(slot int64, listener, sender, channel int) {
			rec.Record(trace.Event{
				Slot:     slot,
				Listener: int32(listener),
				Sender:   int32(sender),
				Channel:  int32(channel),
			})
		}),
	}
	s, err := New(presetOptions(t, preset, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGoldenTraces(t *testing.T) {
	prims := []struct {
		name string
		p    Primitive
	}{
		{"cseek", Discovery(CSeek)},
		{"cgcast", GlobalBroadcast(0, "message")},
	}
	for _, preset := range []string{PresetQuiet, PresetUrbanBusy, PresetBursty, PresetAdversarial} {
		for _, prim := range prims {
			t.Run(preset+"/"+prim.name, func(t *testing.T) {
				rec := &trace.Recorder{}
				s := goldenScenario(t, preset, rec)
				if _, err := prim.p.Run(context.Background(), s, goldenSeed); err != nil {
					t.Fatal(err)
				}
				if rec.Len() == 0 {
					t.Fatal("run produced no deliveries — golden trace would be vacuous")
				}
				path := filepath.Join("testdata", "golden", fmt.Sprintf("%s_%s.jsonl", preset, prim.name))
				if *updateGolden {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					f, err := os.Create(path)
					if err != nil {
						t.Fatal(err)
					}
					if err := rec.WriteJSONL(f); err != nil {
						t.Fatal(err)
					}
					if err := f.Close(); err != nil {
						t.Fatal(err)
					}
					t.Logf("rewrote %s (%d events)", path, rec.Len())
					return
				}
				f, err := os.Open(path)
				if err != nil {
					t.Fatalf("%v (run `go test . -run TestGoldenTraces -update` to record)", err)
				}
				defer f.Close()
				want, err := trace.ReadJSONL(f)
				if err != nil {
					t.Fatal(err)
				}
				got := rec.Events()
				if !trace.Equal(got, want) {
					i := 0
					for i < len(got) && i < len(want) && got[i] == want[i] {
						i++
					}
					diff := "trailing events differ in count"
					switch {
					case i < len(got) && i < len(want):
						diff = fmt.Sprintf("first divergence at event %d: got %+v, want %+v", i, got[i], want[i])
					case i < len(got):
						diff = fmt.Sprintf("extra event %d: %+v", i, got[i])
					case i < len(want):
						diff = fmt.Sprintf("missing event %d: %+v", i, want[i])
					}
					t.Errorf("trace diverged from %s (%d vs %d events): %s", path, len(got), len(want), diff)
				}
			})
		}
	}
}

// TestGoldenTraceRunsAreRepeatable guards the guard: two back-to-back
// runs of the same (preset, primitive, seed) produce identical traces
// even without consulting the committed files — if this fails the
// golden files can never be stable.
func TestGoldenTraceRunsAreRepeatable(t *testing.T) {
	record := func() []trace.Event {
		rec := &trace.Recorder{}
		s := goldenScenario(t, PresetAdversarial, rec)
		if _, err := GlobalBroadcast(0, "message").Run(context.Background(), s, goldenSeed); err != nil {
			t.Fatal(err)
		}
		return rec.Events()
	}
	if !trace.Equal(record(), record()) {
		t.Fatal("same-seed runs produced different traces")
	}
}
