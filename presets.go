package crn

import (
	"fmt"
	"sort"
	"strings"
)

// Preset is a named scenario-dynamics configuration: a bundle of
// ScenarioOptions that installs a primary-user / adversary model —
// or, for the topology presets, churn and mobility models — on top of
// whatever topology and channel options a scenario already has.
// Presets make scenario families comparable across experiments, the
// CLI (crnsim -preset) and sweeps without re-stating model
// parameters. Preset options are appended after the caller's, so a
// preset that pins its own topology (mobile-sparse needs unit-disk
// geometry) wins over an earlier WithTopology.
type Preset struct {
	// Name is the preset's stable identifier (e.g. "urban-busy").
	Name string
	// Description summarizes the spectrum dynamics the preset models.
	Description string
	// Options are the spectrum options the preset applies, in order.
	Options []ScenarioOption
}

// Fixed spectrum seeds: preset occupancy trajectories are part of the
// preset's identity, so the same preset always yields the same primary
// traffic (per scenario channel universe) and golden traces stay
// byte-stable.
const (
	presetMarkovSeed  = 0xC0FFEE
	presetPoissonSeed = 0xBEEF
)

// Fixed topology-dynamics seeds, for the same reason: a preset's
// churn/motion trajectory is part of its identity.
const (
	presetChurnSeed    = 0xD00D
	presetMobilitySeed = 0xFACADE
)

// PresetQuiet, PresetUrbanBusy, PresetBursty, PresetAdversarial,
// PresetMobileSparse and PresetChurnHeavy name the built-in presets.
const (
	PresetQuiet        = "quiet"
	PresetUrbanBusy    = "urban-busy"
	PresetBursty       = "bursty"
	PresetAdversarial  = "adversarial-t"
	PresetMobileSparse = "mobile-sparse"
	PresetChurnHeavy   = "churn-heavy"
)

// Presets returns the built-in scenario preset library, in
// documentation order:
//
//   - quiet: clear spectrum — the paper's baseline model.
//   - urban-busy: Markov (Gilbert on/off) primary traffic with ~25%
//     stationary occupancy and multi-slot bursts, the steady urban
//     licensed-band picture.
//   - bursty: Poisson arrivals holding channels for long geometric
//     bursts — rarer, heavier outages at a similar mean occupancy.
//   - adversarial-t: the paper's t-bounded adaptive adversary with the
//     default budget (a quarter of the channel universe), reacting to
//     observed secondary-user activity with a one-slot delay.
//   - mobile-sparse: a sparse unit-disk network whose nodes move by
//     random waypoint — neighborhoods drift, partitions come and go.
//     Pins the topology to UnitDisk (mobility needs the geometry).
//   - churn-heavy: aggressive node churn — nodes drop out and rejoin
//     with ~11% stationary downtime, mean outage 12.5 slots.
func Presets() []Preset {
	return []Preset{
		{
			Name:        PresetQuiet,
			Description: "clear spectrum (no primary users, no adversary)",
			Options:     nil,
		},
		{
			Name:        PresetUrbanBusy,
			Description: "Markov on/off primary traffic, ~25% occupancy (pBusy=0.05, pFree=0.15)",
			Options: []ScenarioOption{
				WithMarkovPrimaryUsers(0.05, 0.15, 0, presetMarkovSeed),
			},
		},
		{
			Name:        PresetBursty,
			Description: "Poisson primary arrivals with long geometric holds, ~25% occupancy (rate=0.012, hold=25)",
			Options: []ScenarioOption{
				WithPoissonPrimaryUsers(0.012, 25, 0, presetPoissonSeed),
			},
		},
		{
			Name:        PresetAdversarial,
			Description: "t-bounded reactive adversary, t = universe/4, one-slot sensing delay",
			Options: []ScenarioOption{
				WithAdversary(0),
			},
		},
		{
			Name:        PresetMobileSparse,
			Description: "sparse unit-disk topology under random-waypoint mobility (speed=0.004/slot, epoch=4)",
			Options: []ScenarioOption{
				WithTopology(UnitDisk),
				WithDensity(0.34),
				WithMobility(0.004, 4, presetMobilitySeed),
			},
		},
		{
			Name:        PresetChurnHeavy,
			Description: "heavy node churn (pDown=0.01, pUp=0.08): ~11% of nodes down at any time",
			Options: []ScenarioOption{
				WithChurn(0.01, 0.08, presetChurnSeed),
			},
		},
	}
}

// PresetByName returns the built-in preset with the given name
// (case-insensitive), or an error naming the valid presets.
func PresetByName(name string) (Preset, error) {
	for _, p := range Presets() {
		if strings.EqualFold(p.Name, name) {
			return p, nil
		}
	}
	return Preset{}, fmt.Errorf("crn: unknown preset %q (have %s)", name, strings.Join(PresetNames(), ", "))
}

// PresetNames returns the built-in preset names, sorted.
func PresetNames() []string {
	ps := Presets()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}
