// Command crntrace runs a small CSEEK discovery and dumps every
// message delivery slot by slot — a teaching and debugging view of the
// radio model.
//
// Usage:
//
//	crntrace [-n 6] [-c 3] [-k 2] [-seed 1] [-max 200]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"crn/internal/chanassign"
	"crn/internal/core"
	"crn/internal/graph"
	"crn/internal/radio"
	"crn/internal/rng"
	"crn/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crntrace:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("crntrace", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		n     = fs.Int("n", 6, "number of nodes (star topology)")
		c     = fs.Int("c", 3, "channels per node")
		k     = fs.Int("k", 2, "shared channels per neighbor pair")
		seed  = fs.Uint64("seed", 1, "random seed")
		max   = fs.Int64("max", 200, "maximum deliveries to print")
		jsonl = fs.Bool("jsonl", false, "emit the full trace as JSON Lines instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	g := graph.Star(*n)
	a, err := chanassign.SharedCore(*n, *c, *k, rng.New(*seed))
	if err != nil {
		return err
	}
	p := core.Params{N: *n, C: *c, K: *k, KMax: *k, Delta: g.MaxDegree()}
	if err := p.Normalize(); err != nil {
		return err
	}

	master := rng.New(*seed + 1)
	protos := make([]radio.Protocol, *n)
	var schedule int64
	for u := 0; u < *n; u++ {
		s, err := core.NewCSeek(p, core.Env{ID: radio.NodeID(u), C: *c, Rand: master.Split(uint64(u))})
		if err != nil {
			return err
		}
		schedule = s.TotalSlots()
		protos[u] = s
	}
	e, err := radio.NewEngine(&radio.Network{Graph: g, Assign: a}, protos)
	if err != nil {
		return err
	}

	if *jsonl {
		var rec trace.Recorder
		rec.Attach(e)
		e.Run(schedule + 1)
		return rec.WriteJSONL(w)
	}

	fmt.Fprintf(w, "# CSEEK on a %d-node star, c=%d k=%d, schedule %d slots\n", *n, *c, *k, schedule)
	fmt.Fprintf(w, "# slot  listener  <-  sender  (global channel)\n")
	printed := int64(0)
	e.SetTrace(func(slot int64, listener radio.NodeID, ch int32, msg *radio.Message) {
		if printed >= *max {
			return
		}
		printed++
		fmt.Fprintf(w, "%6d  node %-3d   <-  node %-3d (ch %d)\n", slot, listener, msg.From, ch)
	})
	st := e.Run(schedule + 1)
	fmt.Fprintf(w, "# done: %d slots, %d deliveries, %d collisions\n",
		st.Slots, st.Deliveries, st.Collisions)
	return nil
}
