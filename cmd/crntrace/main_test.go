package main

import (
	"io"
	"testing"
)

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}, io.Discard); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunBadParams(t *testing.T) {
	if err := run([]string{"-n", "4", "-c", "2", "-k", "5"}, io.Discard); err == nil {
		t.Error("k > c accepted")
	}
}

func TestRunTextAndJSONL(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation")
	}
	if err := run([]string{"-n", "4", "-c", "2", "-k", "1", "-max", "5"}, io.Discard); err != nil {
		t.Fatalf("text mode: %v", err)
	}
	if err := run([]string{"-n", "4", "-c", "2", "-k", "1", "-jsonl"}, io.Discard); err != nil {
		t.Fatalf("jsonl mode: %v", err)
	}
}
