package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"crn"
	"crn/internal/sweepd"
	"crn/internal/sweepfile"
)

// go test ./cmd/crnsweep -run TestGolden -update rewrites the golden
// manifest and merged-aggregate files from the current simulator.
var updateGolden = flag.Bool("update", false, "rewrite golden sharded-sweep files")

func TestCLIValidation(t *testing.T) {
	ctx := context.Background()
	bad := [][]string{
		{},
		{"teleport"},
		{"plan"},   // missing -spec
		{"run"},    // missing -manifest
		{"merge"},  // missing -manifest
		{"resume"}, // missing -manifest
		{"sweep"},  // missing -spec
		{"plan", "-spec", "/nonexistent.json", "-dir", t.TempDir()},
		{"run", "-manifest", "/nonexistent.json", "-shard", "0"},
	}
	for _, args := range bad {
		if err := run(ctx, args, io.Discard); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
	if err := run(ctx, []string{"help"}, io.Discard); err != nil {
		t.Errorf("help: %v", err)
	}
}

func TestSpecValidation(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name string
		doc  string
	}{
		{"unknown field", `{"primitive": "cseek", "seeds": 1, "baseSeed": 1, "variance": 2, "variants": [{"name": "v", "topology": "path", "n": 6, "channels": 3, "k": 2, "seed": 1}]}`},
		{"unknown primitive", `{"primitive": "quantum", "seeds": 1, "baseSeed": 1, "variants": [{"name": "v", "topology": "path", "n": 6, "channels": 3, "k": 2, "seed": 1}]}`},
		{"missing primitive", `{"seeds": 1, "baseSeed": 1, "variants": [{"name": "v", "topology": "path", "n": 6, "channels": 3, "k": 2, "seed": 1}]}`},
		{"ckseek without khat", `{"primitive": "ckseek", "seeds": 1, "baseSeed": 1, "variants": [{"name": "v", "topology": "path", "n": 6, "channels": 3, "k": 2, "seed": 1}]}`},
		{"no variants", `{"primitive": "cseek", "seeds": 1, "baseSeed": 1}`},
		{"unnamed variant", `{"primitive": "cseek", "seeds": 1, "baseSeed": 1, "variants": [{"topology": "path", "n": 6, "channels": 3, "k": 2, "seed": 1}]}`},
		{"unknown preset", `{"primitive": "cseek", "seeds": 1, "baseSeed": 1, "variants": [{"name": "v", "topology": "path", "n": 6, "channels": 3, "k": 2, "seed": 1, "preset": "lunar"}]}`},
		{"bad spectrum", `{"primitive": "cseek", "seeds": 1, "baseSeed": 1, "variants": [{"name": "v", "topology": "path", "n": 6, "channels": 3, "k": 2, "seed": 1, "spectrum": "plasma:1"}]}`},
	}
	for _, tc := range cases {
		path := filepath.Join(t.TempDir(), "spec.json")
		if err := os.WriteFile(path, []byte(tc.doc), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := run(ctx, []string{"plan", "-spec", path, "-dir", t.TempDir()}, io.Discard); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// checkGolden compares got against the committed golden file,
// rewriting it under -update.
func checkGolden(t *testing.T, goldenPath string, got []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/crnsweep -run TestGolden -update` to record)", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s diverged from golden (run with -update to re-record if the change is intended)", goldenPath)
	}
}

// TestGoldenShardedSweep drives the full pipeline on the committed
// spec — plan → run shards 0..3 → merge — and pins both the manifest
// and the merged aggregates as golden files. It then proves the
// acceptance criterion in-process: the merged bytes equal a direct
// crn.Sweep of the same spec, and a 1-shard plan produces the same
// bytes again.
func TestGoldenShardedSweep(t *testing.T) {
	ctx := context.Background()
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	specPath := filepath.Join("testdata", "spec.json")
	dir := t.TempDir()

	if err := run(ctx, []string{"plan", "-spec", specPath, "-shards", "4", "-dir", dir}, io.Discard); err != nil {
		t.Fatal(err)
	}
	manifestPath := filepath.Join(dir, "manifest.json")
	manifestDoc, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "golden", "manifest.json"), manifestDoc)

	for k := 0; k < 4; k++ {
		if err := run(ctx, []string{"run", "-manifest", manifestPath, "-shard", fmt.Sprint(k)}, io.Discard); err != nil {
			t.Fatalf("shard %d: %v", k, err)
		}
	}
	if err := run(ctx, []string{"merge", "-manifest", manifestPath}, io.Discard); err != nil {
		t.Fatal(err)
	}
	merged, err := os.ReadFile(filepath.Join(dir, "merged.json"))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "golden", "merged.json"), merged)

	// Byte-identity against the in-process engine: same spec, direct
	// crn.Sweep, same encoder.
	sf, err := sweepfile.LoadSpec(specPath)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sweepfile.BuildSweepSpec(sf, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := crn.Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	direct = append(direct, '\n')
	if string(direct) != string(merged) {
		t.Error("merged shard output diverged from single-process crn.Sweep")
	}

	// A 1-shard plan is the degenerate case and must agree too.
	oneDir := t.TempDir()
	for _, args := range [][]string{
		{"plan", "-spec", specPath, "-shards", "1", "-dir", oneDir},
		{"run", "-manifest", filepath.Join(oneDir, "manifest.json"), "-shard", "0"},
		{"merge", "-manifest", filepath.Join(oneDir, "manifest.json")},
	} {
		if err := run(ctx, args, io.Discard); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
	oneMerged, err := os.ReadFile(filepath.Join(oneDir, "merged.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(oneMerged) != string(merged) {
		t.Error("1-shard merge diverged from 4-shard merge")
	}
}

// TestResumeReRunsOnlyInvalidShards: after deleting one artifact and
// corrupting another, resume re-runs exactly those two, keeps the
// valid ones, and reproduces the golden merged output.
func TestResumeReRunsOnlyInvalidShards(t *testing.T) {
	ctx := context.Background()
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	specPath := filepath.Join("testdata", "spec.json")
	dir := t.TempDir()
	manifestPath := filepath.Join(dir, "manifest.json")
	if err := run(ctx, []string{"plan", "-spec", specPath, "-shards", "4", "-dir", dir}, io.Discard); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		if err := run(ctx, []string{"run", "-manifest", manifestPath, "-shard", fmt.Sprint(k)}, io.Discard); err != nil {
			t.Fatal(err)
		}
	}

	if err := os.Remove(filepath.Join(dir, "shard-2.json")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "shard-1.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := run(ctx, []string{"resume", "-manifest", manifestPath}, &out); err != nil {
		t.Fatal(err)
	}
	log := out.String()
	for _, want := range []string{
		"shard 0: artifact valid, skipped",
		"shard 3: artifact valid, skipped",
		"shard 2: no artifact, running",
	} {
		if !strings.Contains(log, want) {
			t.Errorf("resume output missing %q:\n%s", want, log)
		}
	}
	if !strings.Contains(log, "shard 1: invalid artifact") {
		t.Errorf("resume did not flag the corrupted shard 1:\n%s", log)
	}

	merged, err := os.ReadFile(filepath.Join(dir, "merged.json"))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "golden", "merged.json"), merged)

	// A second resume is a no-op: everything validates.
	out.Reset()
	if err := run(ctx, []string{"resume", "-manifest", manifestPath}, &out); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		if want := fmt.Sprintf("shard %d: artifact valid, skipped", k); !strings.Contains(out.String(), want) {
			t.Errorf("second resume re-ran shard %d:\n%s", k, out.String())
		}
	}
}

// TestMergeRejectsForeignArtifact: an artifact recorded under a
// different plan (different base seed → different hash) is rejected by
// merge rather than silently combined.
func TestMergeRejectsForeignArtifact(t *testing.T) {
	ctx := context.Background()
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	specPath := filepath.Join("testdata", "spec.json")
	dir := t.TempDir()
	manifestPath := filepath.Join(dir, "manifest.json")
	if err := run(ctx, []string{"plan", "-spec", specPath, "-shards", "2", "-dir", dir}, io.Discard); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		if err := run(ctx, []string{"run", "-manifest", manifestPath, "-shard", fmt.Sprint(k)}, io.Discard); err != nil {
			t.Fatal(err)
		}
	}

	// Same shard count, different base seed: shapes line up, hashes
	// must not.
	doc, err := os.ReadFile(specPath)
	if err != nil {
		t.Fatal(err)
	}
	foreign := strings.Replace(string(doc), `"baseSeed": 42`, `"baseSeed": 43`, 1)
	foreignSpec := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(foreignSpec, []byte(foreign), 0o644); err != nil {
		t.Fatal(err)
	}
	foreignDir := t.TempDir()
	if err := run(ctx, []string{"plan", "-spec", foreignSpec, "-shards", "2", "-dir", foreignDir}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(ctx, []string{"run", "-manifest", filepath.Join(foreignDir, "manifest.json"), "-shard", "1"}, io.Discard); err != nil {
		t.Fatal(err)
	}

	src, err := os.ReadFile(filepath.Join(foreignDir, "shard-1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "shard-1.json"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(ctx, []string{"merge", "-manifest", manifestPath}, io.Discard); err == nil {
		t.Error("merge accepted an artifact from a different base seed")
	}
}

// TestSweepRemote: `crnsweep sweep -remote` must produce the same
// bytes as a local `crnsweep sweep`, routed through an in-process
// daemon and worker instead of this process's executor.
func TestSweepRemote(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	ctx := context.Background()
	srv, err := sweepd.New(sweepd.Config{
		Spool:    t.TempDir(),
		LeaseTTL: time.Minute,
		Log:      log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// One worker drains jobs in the background until the test ends.
	wctx, stopWorker := context.WithCancel(ctx)
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		wk := &sweepd.Worker{
			Client: sweepd.NewClient(ts.URL),
			Name:   "remote-test",
			Poll:   20 * time.Millisecond,
			Log:    log.New(io.Discard, "", 0),
		}
		wk.Run(wctx)
	}()
	defer func() { stopWorker(); <-workerDone }()

	spec := filepath.Join("testdata", "spec.json")
	localOut := filepath.Join(t.TempDir(), "local.json")
	if err := run(ctx, []string{"sweep", "-spec", spec, "-out", localOut}, io.Discard); err != nil {
		t.Fatal(err)
	}
	remoteOut := filepath.Join(t.TempDir(), "remote.json")
	if err := run(ctx, []string{"sweep", "-spec", spec, "-out", remoteOut, "-remote", ts.URL, "-shards", "3"}, io.Discard); err != nil {
		t.Fatal(err)
	}

	local, err := os.ReadFile(localOut)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := os.ReadFile(remoteOut)
	if err != nil {
		t.Fatal(err)
	}
	if string(local) != string(remote) {
		t.Error("remote sweep bytes diverged from local sweep bytes")
	}
}
