// Command crnsweep is the distributed front end of crn.Sweep: it
// partitions a declaratively-specified sweep into shards that
// independent processes (CI matrix jobs, cluster workers, extra
// terminals) execute, and merges the per-shard artifacts back into
// the exact output a single-process sweep would have produced —
// byte-identical, because per-run seeds derive from the sweep's base
// seed and grid position alone and the aggregation path is shared
// with crn.Sweep.
//
// The pipeline is manifest-driven:
//
//	crnsweep plan   -spec spec.json -shards 4 -dir out   # write out/manifest.json
//	crnsweep run    -manifest out/manifest.json -shard 2 # write out/shard-2.json
//	crnsweep merge  -manifest out/manifest.json          # write out/merged.json
//	crnsweep resume -manifest out/manifest.json          # re-run invalid/missing shards, then merge
//	crnsweep sweep  -spec spec.json -out single.json     # single-process reference (crn.Sweep)
//
// With -remote, sweep hands the same spec to a running crnsweepd
// orchestrator instead of executing locally — the result bytes are
// identical either way (that is the service's contract):
//
//	crnsweep sweep -spec spec.json -remote http://host:8471 -shards 4 -out single.json
//
// The manifest records the spec, the shard plan and a hash over both;
// every shard artifact embeds that hash, so merge and resume refuse
// artifacts produced under a different spec, plan or base seed, and
// resume skips exactly the shards whose artifacts still validate.
// The formats live in internal/sweepfile, shared with crnsweepd.
//
// SIGINT/SIGTERM cancel in-flight runs cleanly: the context reaches
// every crn.RunShard / crn.Sweep, and output files are written via
// temp-file-plus-rename, so an interrupted invocation never leaves a
// half-written artifact for resume to trip over.
//
// The spec file is a JSON mirror of crn.SweepSpec (see the package
// README section "Distributed sweeps" for the format):
//
//	{
//	  "primitive": "cseek",
//	  "seeds": 64,
//	  "baseSeed": 42,
//	  "variants": [
//	    {"name": "quiet-path", "topology": "path", "n": 6,
//	     "channels": 3, "k": 2, "seed": 1, "preset": "quiet"}
//	  ]
//	}
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"crn"
	"crn/internal/sweepd"
	"crn/internal/sweepfile"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crnsweep:", err)
		os.Exit(1)
	}
}

const usage = `usage: crnsweep <plan|run|merge|resume|sweep> [flags]

  plan   -spec <file> -shards <k> -dir <dir>      partition a sweep, write <dir>/manifest.json
  run    -manifest <file> -shard <k> [-workers n] execute one shard, write its artifact
  merge  -manifest <file> [-out <file>]           merge all shard artifacts into the sweep result
  resume -manifest <file> [-workers n]            re-run missing/invalid shards, then merge
  sweep  -spec <file> [-out <file>] [-workers n]  single-process crn.Sweep of the same spec
         [-remote <addr> [-shards k]]             … or submit to a crnsweepd orchestrator and wait
`

func run(ctx context.Context, args []string, w io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand\n%s", usage)
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "plan":
		return cmdPlan(rest, w)
	case "run":
		return cmdRun(ctx, rest, w)
	case "merge":
		return cmdMerge(rest, w)
	case "resume":
		return cmdResume(ctx, rest, w)
	case "sweep":
		return cmdSweep(ctx, rest, w)
	case "help", "-h", "-help", "--help":
		fmt.Fprint(w, usage)
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q\n%s", cmd, usage)
	}
}

func cmdPlan(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("crnsweep plan", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		specPath = fs.String("spec", "", "sweep spec file (JSON, required)")
		shards   = fs.Int("shards", 1, "number of shards")
		dir      = fs.String("dir", ".", "output directory for the manifest and artifacts")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("plan: -spec is required")
	}
	sf, err := sweepfile.LoadSpec(*specPath)
	if err != nil {
		return err
	}
	m, err := sweepfile.NewManifest(sf, *shards)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(*dir, "manifest.json")
	if err := sweepfile.WriteJSON(path, m); err != nil {
		return err
	}
	total := len(m.Plan.Variants) * m.Plan.Seeds
	fmt.Fprintf(w, "planned %d runs (%d variants × %d seeds) into %d shards: %s\n",
		total, len(m.Plan.Variants), m.Plan.Seeds, len(m.Plan.Shards), path)
	return nil
}

func cmdRun(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("crnsweep run", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		manifestPath = fs.String("manifest", "", "manifest file (required)")
		shard        = fs.Int("shard", -1, "shard index to execute (required)")
		workers      = fs.Int("workers", 0, "worker pool size (0: GOMAXPROCS); does not affect output bytes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *manifestPath == "" {
		return fmt.Errorf("run: -manifest is required")
	}
	m, dir, err := sweepfile.LoadManifest(*manifestPath)
	if err != nil {
		return err
	}
	if *shard < 0 || *shard >= len(m.Plan.Shards) {
		return fmt.Errorf("run: -shard %d out of range (plan has %d shards)", *shard, len(m.Plan.Shards))
	}
	spec, err := sweepfile.BuildSweepSpec(m.Spec, *workers)
	if err != nil {
		return err
	}
	res, err := crn.RunShard(ctx, spec, m.Plan, *shard)
	if err != nil {
		return err
	}
	a, err := sweepfile.NewArtifact(m.PlanHash, res)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, m.Artifacts[*shard])
	if err := sweepfile.WriteJSON(path, a); err != nil {
		return err
	}
	fmt.Fprintf(w, "shard %d: %d runs → %s\n", *shard, len(res.Runs), path)
	return nil
}

// mergeAndWrite merges shard results and writes the merge output,
// printing the per-variant aggregates.
func mergeAndWrite(m *sweepfile.Manifest, outPath string, results []*crn.ShardResult, w io.Writer) error {
	merged, err := crn.MergeShards(m.Plan, results...)
	if err != nil {
		return err
	}
	if err := sweepfile.WriteJSON(outPath, merged); err != nil {
		return err
	}
	for _, agg := range merged.Aggregates {
		fmt.Fprintf(w, "%-24s runs=%d completed=%d failures=%d\n",
			agg.Variant, agg.Runs, agg.Completed, agg.Failures)
	}
	fmt.Fprintf(w, "merged %d shards → %s\n", len(results), outPath)
	return nil
}

func cmdMerge(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("crnsweep merge", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		manifestPath = fs.String("manifest", "", "manifest file (required)")
		out          = fs.String("out", "", "merge output file (default: manifest's merged name)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *manifestPath == "" {
		return fmt.Errorf("merge: -manifest is required")
	}
	m, dir, err := sweepfile.LoadManifest(*manifestPath)
	if err != nil {
		return err
	}
	outPath := filepath.Join(dir, m.Merged)
	if *out != "" {
		outPath = *out // caller-relative, not manifest-relative
	}
	results := make([]*crn.ShardResult, len(m.Plan.Shards))
	for k := range results {
		res, err := sweepfile.LoadArtifact(m, dir, k)
		if err != nil {
			return fmt.Errorf("merge: shard %d artifact invalid (run `crnsweep resume` to regenerate): %w", k, err)
		}
		results[k] = res
	}
	return mergeAndWrite(m, outPath, results, w)
}

func cmdResume(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("crnsweep resume", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		manifestPath = fs.String("manifest", "", "manifest file (required)")
		workers      = fs.Int("workers", 0, "worker pool size for re-run shards (0: GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *manifestPath == "" {
		return fmt.Errorf("resume: -manifest is required")
	}
	m, dir, err := sweepfile.LoadManifest(*manifestPath)
	if err != nil {
		return err
	}
	spec, err := sweepfile.BuildSweepSpec(m.Spec, *workers)
	if err != nil {
		return err
	}
	// A crash between temp-write and rename leaves `.tmp-` debris; sweep
	// it before validating so a half-written artifact can't linger.
	if removed, err := sweepfile.RemoveStaleTemps(sweepfile.OS, dir); err != nil {
		return err
	} else if len(removed) > 0 {
		fmt.Fprintf(w, "swept %d stale temp file(s) from %s\n", len(removed), dir)
	}
	results := make([]*crn.ShardResult, len(m.Plan.Shards))
	for k := range results {
		if res, err := sweepfile.LoadArtifact(m, dir, k); err == nil {
			fmt.Fprintf(w, "shard %d: artifact valid, skipped\n", k)
			results[k] = res
			continue
		} else if !os.IsNotExist(err) {
			fmt.Fprintf(w, "shard %d: invalid artifact (%v), re-running\n", k, err)
		} else {
			fmt.Fprintf(w, "shard %d: no artifact, running\n", k)
		}
		res, err := crn.RunShard(ctx, spec, m.Plan, k)
		if err != nil {
			return fmt.Errorf("resume: shard %d: %w", k, err)
		}
		a, err := sweepfile.NewArtifact(m.PlanHash, res)
		if err != nil {
			return err
		}
		if err := sweepfile.WriteJSON(filepath.Join(dir, m.Artifacts[k]), a); err != nil {
			return err
		}
		results[k] = res
	}
	return mergeAndWrite(m, filepath.Join(dir, m.Merged), results, w)
}

func cmdSweep(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("crnsweep sweep", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		specPath = fs.String("spec", "", "sweep spec file (JSON, required)")
		out      = fs.String("out", "", "output file (default: print to stdout)")
		workers  = fs.Int("workers", 0, "worker pool size (0: GOMAXPROCS); does not affect output bytes")
		remote   = fs.String("remote", "", "crnsweepd base URL; run the sweep on the service instead of in-process")
		shards   = fs.Int("shards", 1, "shard count for -remote submission")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("sweep: -spec is required")
	}
	sf, err := sweepfile.LoadSpec(*specPath)
	if err != nil {
		return err
	}

	var doc []byte
	if *remote != "" {
		doc, err = remoteSweep(ctx, *remote, sf, *shards, w)
	} else {
		doc, err = localSweep(ctx, sf, *workers)
	}
	if err != nil {
		return err
	}
	if *out == "" {
		_, err = w.Write(doc)
		return err
	}
	if err := sweepfile.WriteFileAtomic(*out, doc); err != nil {
		return err
	}
	fmt.Fprintf(w, "swept → %s\n", *out)
	return nil
}

func localSweep(ctx context.Context, sf *sweepfile.Spec, workers int) ([]byte, error) {
	spec, err := sweepfile.BuildSweepSpec(sf, workers)
	if err != nil {
		return nil, err
	}
	res, err := crn.Sweep(ctx, spec)
	if err != nil {
		return nil, err
	}
	return sweepfile.MarshalPretty(res)
}

// remoteSweep submits the spec to a crnsweepd orchestrator, waits for
// the job and returns the merged result bytes — which the service
// guarantees to be the bytes localSweep would have produced.
func remoteSweep(ctx context.Context, addr string, sf *sweepfile.Spec, shards int, w io.Writer) ([]byte, error) {
	c := sweepd.NewClient(addr)
	if err := c.WaitReady(ctx, 10*time.Second); err != nil {
		return nil, err
	}
	id, err := c.Submit(ctx, sf, shards)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "submitted job %s to %s (%d shards)\n", id, addr, shards)
	if _, err := c.Wait(ctx, id, 500*time.Millisecond); err != nil {
		return nil, err
	}
	_, doc, err := c.Result(ctx, id)
	return doc, err
}
