// Command crnsweep is the distributed front end of crn.Sweep: it
// partitions a declaratively-specified sweep into shards that
// independent processes (CI matrix jobs, cluster workers, extra
// terminals) execute, and merges the per-shard artifacts back into
// the exact output a single-process sweep would have produced —
// byte-identical, because per-run seeds derive from the sweep's base
// seed and grid position alone and the aggregation path is shared
// with crn.Sweep.
//
// The pipeline is manifest-driven:
//
//	crnsweep plan   -spec spec.json -shards 4 -dir out   # write out/manifest.json
//	crnsweep run    -manifest out/manifest.json -shard 2 # write out/shard-2.json
//	crnsweep merge  -manifest out/manifest.json          # write out/merged.json
//	crnsweep resume -manifest out/manifest.json          # re-run invalid/missing shards, then merge
//	crnsweep sweep  -spec spec.json -out single.json     # single-process reference (crn.Sweep)
//
// The manifest records the spec, the shard plan and a hash over both;
// every shard artifact embeds that hash, so merge and resume refuse
// artifacts produced under a different spec, plan or base seed, and
// resume skips exactly the shards whose artifacts still validate.
//
// The spec file is a JSON mirror of crn.SweepSpec (see the package
// README section "Distributed sweeps" for the format):
//
//	{
//	  "primitive": "cseek",
//	  "seeds": 64,
//	  "baseSeed": 42,
//	  "variants": [
//	    {"name": "quiet-path", "topology": "path", "n": 6,
//	     "channels": 3, "k": 2, "seed": 1, "preset": "quiet"}
//	  ]
//	}
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"crn"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crnsweep:", err)
		os.Exit(1)
	}
}

const usage = `usage: crnsweep <plan|run|merge|resume|sweep> [flags]

  plan   -spec <file> -shards <k> -dir <dir>      partition a sweep, write <dir>/manifest.json
  run    -manifest <file> -shard <k> [-workers n] execute one shard, write its artifact
  merge  -manifest <file> [-out <file>]           merge all shard artifacts into the sweep result
  resume -manifest <file> [-workers n]            re-run missing/invalid shards, then merge
  sweep  -spec <file> [-out <file>] [-workers n]  single-process crn.Sweep of the same spec
`

func run(args []string, w io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand\n%s", usage)
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "plan":
		return cmdPlan(rest, w)
	case "run":
		return cmdRun(rest, w)
	case "merge":
		return cmdMerge(rest, w)
	case "resume":
		return cmdResume(rest, w)
	case "sweep":
		return cmdSweep(rest, w)
	case "help", "-h", "-help", "--help":
		fmt.Fprint(w, usage)
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q\n%s", cmd, usage)
	}
}

// specFile is the declarative, JSON-serializable mirror of
// crn.SweepSpec: crn.Primitive and crn.ScenarioOption are code, so the
// spec names them and buildSweepSpec reconstitutes the real spec. The
// parsed struct (not the raw file bytes) is the canonical form the
// plan hash covers — reformatting the file does not invalidate
// artifacts, changing its meaning does.
type specFile struct {
	// Primitive: cseek, naive, uniform, ckseek, cgcast or flood.
	Primitive string `json:"primitive"`
	// KHat is ckseek's k̂ threshold (required for ckseek).
	KHat int `json:"khat,omitempty"`
	// Source / Message configure the broadcast primitives.
	Source  int    `json:"source,omitempty"`
	Message string `json:"message,omitempty"`
	// Variants are the scenario configurations to sweep over.
	Variants []specVariant `json:"variants"`
	// Seeds is the runs-per-variant count.
	Seeds int `json:"seeds"`
	// BaseSeed is the sweep's master seed.
	BaseSeed uint64 `json:"baseSeed"`
}

// specVariant mirrors one crn.Variant as scenario-option fields, the
// same vocabulary as cmd/crnsim's flags.
type specVariant struct {
	Name     string  `json:"name"`
	Topology string  `json:"topology"`
	N        int     `json:"n"`
	Channels int     `json:"channels"`
	K        int     `json:"k"`
	KMax     int     `json:"kmax,omitempty"`
	Density  float64 `json:"density,omitempty"`
	Seed     uint64  `json:"seed"`
	// Preset names a crn preset; Spectrum / Dynamics are "+"-stacked
	// model specs (crn.ParseSpectrum / crn.ParseDynamics, seeded from
	// Seed). All three stack onto the topology options, preset first.
	Preset   string `json:"preset,omitempty"`
	Spectrum string `json:"spectrum,omitempty"`
	Dynamics string `json:"dynamics,omitempty"`
}

// manifest is the plan file crnsweep writes and every other subcommand
// reads. Artifact paths are relative to the manifest's directory.
type manifest struct {
	Version int `json:"version"`
	// Spec is the sweep description, verbatim in canonical form.
	Spec *specFile `json:"spec"`
	// Plan is the deterministic shard partition of Spec.
	Plan *crn.ShardPlan `json:"plan"`
	// PlanHash is planHash(Spec, Plan); artifacts embed it, which is
	// what lets resume decide validity without re-running anything.
	PlanHash string `json:"planHash"`
	// Artifacts[k] is shard k's artifact filename.
	Artifacts []string `json:"artifacts"`
	// Merged is the merge output filename.
	Merged string `json:"merged"`
}

// shardArtifact is one shard's on-disk result.
type shardArtifact struct {
	// PlanHash ties the artifact to the manifest that planned it.
	PlanHash string `json:"planHash"`
	// Result is the shard's runs.
	Result *crn.ShardResult `json:"result"`
}

const manifestVersion = 1

// planHash fingerprints the canonical (spec, plan) pair.
func planHash(spec *specFile, plan *crn.ShardPlan) (string, error) {
	doc, err := json.Marshal(struct {
		Spec *specFile      `json:"spec"`
		Plan *crn.ShardPlan `json:"plan"`
	}{spec, plan})
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("sha256:%x", sha256.Sum256(doc)), nil
}

// buildSweepSpec reconstitutes the executable crn.SweepSpec a spec
// file describes.
func buildSweepSpec(sf *specFile, workers int) (crn.SweepSpec, error) {
	var zero crn.SweepSpec
	var prim crn.Primitive
	switch sf.Primitive {
	case "cseek", "naive", "uniform":
		prim = crn.Discovery(crn.Algorithm(sf.Primitive))
	case "ckseek":
		if sf.KHat < 1 {
			return zero, fmt.Errorf("primitive ckseek needs \"khat\" ≥ 1")
		}
		prim = crn.KDiscovery(sf.KHat)
	case "cgcast", "flood":
		msg := sf.Message
		if msg == "" {
			msg = "message"
		}
		if sf.Primitive == "cgcast" {
			prim = crn.GlobalBroadcast(sf.Source, msg)
		} else {
			prim = crn.Flooding(sf.Source, msg)
		}
	case "":
		return zero, fmt.Errorf("spec is missing \"primitive\"")
	default:
		return zero, fmt.Errorf("unknown primitive %q (have cseek, naive, uniform, ckseek, cgcast, flood)", sf.Primitive)
	}
	if len(sf.Variants) == 0 {
		return zero, fmt.Errorf("spec has no variants")
	}
	variants := make([]crn.Variant, len(sf.Variants))
	for i, v := range sf.Variants {
		if v.Name == "" {
			return zero, fmt.Errorf("variant %d has no name", i)
		}
		opts := []crn.ScenarioOption{
			crn.WithTopology(crn.Topology(v.Topology)),
			crn.WithNodes(v.N),
			crn.WithChannels(v.Channels, v.K, v.KMax),
			crn.WithSeed(v.Seed),
		}
		if v.Density > 0 {
			opts = append(opts, crn.WithDensity(v.Density))
		}
		if v.Preset != "" {
			p, err := crn.PresetByName(v.Preset)
			if err != nil {
				return zero, fmt.Errorf("variant %q: %w", v.Name, err)
			}
			opts = append(opts, p.Options...)
		}
		spOpts, err := crn.ParseSpectrum(v.Spectrum, v.Seed)
		if err != nil {
			return zero, fmt.Errorf("variant %q: %w", v.Name, err)
		}
		opts = append(opts, spOpts...)
		dynOpts, err := crn.ParseDynamics(v.Dynamics, v.Seed)
		if err != nil {
			return zero, fmt.Errorf("variant %q: %w", v.Name, err)
		}
		opts = append(opts, dynOpts...)
		variants[i] = crn.Variant{Name: v.Name, Options: opts}
	}
	return crn.SweepSpec{
		Primitive: prim,
		Variants:  variants,
		Seeds:     sf.Seeds,
		BaseSeed:  sf.BaseSeed,
		Workers:   workers,
	}, nil
}

func loadSpecFile(path string) (*specFile, error) {
	doc, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sf := new(specFile)
	if err := unmarshalStrict(doc, sf); err != nil {
		return nil, fmt.Errorf("spec %s: %w", path, err)
	}
	return sf, nil
}

// unmarshalStrict rejects unknown fields, so a typo'd spec key fails
// loudly instead of silently sweeping the default.
func unmarshalStrict(doc []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(doc))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func loadManifest(path string) (*manifest, string, error) {
	doc, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	m := new(manifest)
	if err := unmarshalStrict(doc, m); err != nil {
		return nil, "", fmt.Errorf("manifest %s: %w", path, err)
	}
	if m.Version != manifestVersion {
		return nil, "", fmt.Errorf("manifest %s: version %d, this crnsweep speaks %d", path, m.Version, manifestVersion)
	}
	if m.Spec == nil || m.Plan == nil {
		return nil, "", fmt.Errorf("manifest %s: missing spec or plan", path)
	}
	// Recompute the hash: a hand-edited manifest must not validate
	// artifacts recorded under the original.
	hash, err := planHash(m.Spec, m.Plan)
	if err != nil {
		return nil, "", err
	}
	if hash != m.PlanHash {
		return nil, "", fmt.Errorf("manifest %s: planHash %s does not match its spec+plan (%s) — manifest edited?", path, m.PlanHash, hash)
	}
	if len(m.Artifacts) != len(m.Plan.Shards) {
		return nil, "", fmt.Errorf("manifest %s: %d artifact names for %d shards", path, len(m.Artifacts), len(m.Plan.Shards))
	}
	return m, filepath.Dir(path), nil
}

// writeJSON writes v as indented JSON. One writer for every output
// file keeps the byte-identity contract simple: merge output and
// single-process sweep output go through the identical encoder.
func writeJSON(path string, v any) error {
	doc, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(doc, '\n'), 0o644)
}

func cmdPlan(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("crnsweep plan", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		specPath = fs.String("spec", "", "sweep spec file (JSON, required)")
		shards   = fs.Int("shards", 1, "number of shards")
		dir      = fs.String("dir", ".", "output directory for the manifest and artifacts")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("plan: -spec is required")
	}
	sf, err := loadSpecFile(*specPath)
	if err != nil {
		return err
	}
	spec, err := buildSweepSpec(sf, 0)
	if err != nil {
		return err
	}
	plan, err := crn.PlanShards(spec, *shards)
	if err != nil {
		return err
	}
	hash, err := planHash(sf, plan)
	if err != nil {
		return err
	}
	m := &manifest{
		Version:  manifestVersion,
		Spec:     sf,
		Plan:     plan,
		PlanHash: hash,
		Merged:   "merged.json",
	}
	for k := range plan.Shards {
		m.Artifacts = append(m.Artifacts, fmt.Sprintf("shard-%d.json", k))
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(*dir, "manifest.json")
	if err := writeJSON(path, m); err != nil {
		return err
	}
	total := len(plan.Variants) * plan.Seeds
	fmt.Fprintf(w, "planned %d runs (%d variants × %d seeds) into %d shards: %s\n",
		total, len(plan.Variants), plan.Seeds, len(plan.Shards), path)
	return nil
}

func cmdRun(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("crnsweep run", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		manifestPath = fs.String("manifest", "", "manifest file (required)")
		shard        = fs.Int("shard", -1, "shard index to execute (required)")
		workers      = fs.Int("workers", 0, "worker pool size (0: GOMAXPROCS); does not affect output bytes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *manifestPath == "" {
		return fmt.Errorf("run: -manifest is required")
	}
	m, dir, err := loadManifest(*manifestPath)
	if err != nil {
		return err
	}
	if *shard < 0 || *shard >= len(m.Plan.Shards) {
		return fmt.Errorf("run: -shard %d out of range (plan has %d shards)", *shard, len(m.Plan.Shards))
	}
	spec, err := buildSweepSpec(m.Spec, *workers)
	if err != nil {
		return err
	}
	res, err := crn.RunShard(context.Background(), spec, m.Plan, *shard)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, m.Artifacts[*shard])
	if err := writeJSON(path, &shardArtifact{PlanHash: m.PlanHash, Result: res}); err != nil {
		return err
	}
	fmt.Fprintf(w, "shard %d: %d runs → %s\n", *shard, len(res.Runs), path)
	return nil
}

// loadArtifact reads and validates shard k's artifact against the
// manifest: the embedded plan hash, the shard index and the run count
// must all line up. (MergeShards re-validates each run's identity and
// derived seed on top.)
func loadArtifact(m *manifest, dir string, k int) (*crn.ShardResult, error) {
	path := filepath.Join(dir, m.Artifacts[k])
	doc, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	a := new(shardArtifact)
	if err := unmarshalStrict(doc, a); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if a.PlanHash != m.PlanHash {
		return nil, fmt.Errorf("%s: artifact plan hash %s, manifest %s", path, a.PlanHash, m.PlanHash)
	}
	if a.Result == nil || a.Result.Shard != k {
		return nil, fmt.Errorf("%s: artifact is not shard %d", path, k)
	}
	r := m.Plan.Shards[k]
	if len(a.Result.Runs) != r.Hi-r.Lo {
		return nil, fmt.Errorf("%s: %d runs, shard %d wants %d", path, len(a.Result.Runs), k, r.Hi-r.Lo)
	}
	return a.Result, nil
}

// mergeAndWrite merges shard results and writes the merge output,
// printing the per-variant aggregates.
func mergeAndWrite(m *manifest, outPath string, results []*crn.ShardResult, w io.Writer) error {
	merged, err := crn.MergeShards(m.Plan, results...)
	if err != nil {
		return err
	}
	if err := writeJSON(outPath, merged); err != nil {
		return err
	}
	for _, agg := range merged.Aggregates {
		fmt.Fprintf(w, "%-24s runs=%d completed=%d failures=%d\n",
			agg.Variant, agg.Runs, agg.Completed, agg.Failures)
	}
	fmt.Fprintf(w, "merged %d shards → %s\n", len(results), outPath)
	return nil
}

func cmdMerge(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("crnsweep merge", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		manifestPath = fs.String("manifest", "", "manifest file (required)")
		out          = fs.String("out", "", "merge output file (default: manifest's merged name)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *manifestPath == "" {
		return fmt.Errorf("merge: -manifest is required")
	}
	m, dir, err := loadManifest(*manifestPath)
	if err != nil {
		return err
	}
	outPath := filepath.Join(dir, m.Merged)
	if *out != "" {
		outPath = *out // caller-relative, not manifest-relative
	}
	results := make([]*crn.ShardResult, len(m.Plan.Shards))
	for k := range results {
		res, err := loadArtifact(m, dir, k)
		if err != nil {
			return fmt.Errorf("merge: shard %d artifact invalid (run `crnsweep resume` to regenerate): %w", k, err)
		}
		results[k] = res
	}
	return mergeAndWrite(m, outPath, results, w)
}

func cmdResume(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("crnsweep resume", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		manifestPath = fs.String("manifest", "", "manifest file (required)")
		workers      = fs.Int("workers", 0, "worker pool size for re-run shards (0: GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *manifestPath == "" {
		return fmt.Errorf("resume: -manifest is required")
	}
	m, dir, err := loadManifest(*manifestPath)
	if err != nil {
		return err
	}
	spec, err := buildSweepSpec(m.Spec, *workers)
	if err != nil {
		return err
	}
	results := make([]*crn.ShardResult, len(m.Plan.Shards))
	for k := range results {
		if res, err := loadArtifact(m, dir, k); err == nil {
			fmt.Fprintf(w, "shard %d: artifact valid, skipped\n", k)
			results[k] = res
			continue
		} else if !os.IsNotExist(err) {
			fmt.Fprintf(w, "shard %d: invalid artifact (%v), re-running\n", k, err)
		} else {
			fmt.Fprintf(w, "shard %d: no artifact, running\n", k)
		}
		res, err := crn.RunShard(context.Background(), spec, m.Plan, k)
		if err != nil {
			return fmt.Errorf("resume: shard %d: %w", k, err)
		}
		if err := writeJSON(filepath.Join(dir, m.Artifacts[k]), &shardArtifact{PlanHash: m.PlanHash, Result: res}); err != nil {
			return err
		}
		results[k] = res
	}
	return mergeAndWrite(m, filepath.Join(dir, m.Merged), results, w)
}

func cmdSweep(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("crnsweep sweep", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		specPath = fs.String("spec", "", "sweep spec file (JSON, required)")
		out      = fs.String("out", "", "output file (default: print to stdout)")
		workers  = fs.Int("workers", 0, "worker pool size (0: GOMAXPROCS); does not affect output bytes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("sweep: -spec is required")
	}
	sf, err := loadSpecFile(*specPath)
	if err != nil {
		return err
	}
	spec, err := buildSweepSpec(sf, *workers)
	if err != nil {
		return err
	}
	res, err := crn.Sweep(context.Background(), spec)
	if err != nil {
		return err
	}
	if *out == "" {
		doc, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "%s\n", doc)
		return err
	}
	if err := writeJSON(*out, res); err != nil {
		return err
	}
	fmt.Fprintf(w, "swept %d runs → %s\n", len(res.Runs), *out)
	return nil
}
