// Command crnsim runs one cognitive-radio scenario from flags and
// prints a JSON or text summary. Every algorithm goes through the
// shared crn.Primitive interface, so the output shape is the same
// Result envelope regardless of -algo; with -seeds > 1 the runs fan
// out over the crn.Sweep worker pool and the aggregate is printed
// instead.
//
// Spectrum dynamics come from -preset (a named scenario preset:
// quiet, urban-busy, bursty, adversarial-t, mobile-sparse,
// churn-heavy) and/or -spectrum (an explicit "+"-stacked model spec);
// topology dynamics come from -dynamics (churn / flap / waypoint,
// also "+"-stacked). Everything stacks onto the scenario, so primary
// traffic plus an adversary plus node churn is two flags away.
//
// Examples:
//
//	crnsim -topology gnp -n 24 -c 8 -k 2 -algo cseek
//	crnsim -topology star -n 17 -c 2 -k 1 -algo naive -json
//	crnsim -topology chain -n 16 -c 4 -k 2 -algo cgcast
//	crnsim -topology chain -n 16 -c 4 -k 2 -algo cgcast -seeds 16 -workers 4
//	crnsim -n 16 -c 5 -k 2 -preset urban-busy -seeds 8
//	crnsim -n 16 -c 5 -k 2 -spectrum "markov:0.05,0.15+adversary:2"
//	crnsim -n 16 -c 5 -k 2 -dynamics "churn:0.01,0.08"
//	crnsim -topology unitdisk -n 24 -c 5 -k 2 -dynamics "waypoint:0.005,4"
//	crnsim -n 16 -c 5 -k 2 -preset mobile-sparse -seeds 8
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"crn"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crnsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("crnsim", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		topology = fs.String("topology", "gnp", "topology: gnp, star, path, grid, chain, tree, unitdisk, ring, complete, regular")
		n        = fs.Int("n", 24, "number of nodes")
		c        = fs.Int("c", 8, "channels per node")
		k        = fs.Int("k", 2, "guaranteed shared channels per neighbor pair")
		kmax     = fs.Int("kmax", 0, "max shared channels (0: same as k)")
		algo     = fs.String("algo", "cseek", "algorithm: cseek, ckseek, naive, uniform, cgcast, flood")
		khat     = fs.Int("khat", 0, "k̂ threshold for ckseek (0: kmax)")
		seed     = fs.Uint64("seed", 1, "random seed")
		seeds    = fs.Int("seeds", 1, "number of runs; > 1 sweeps and prints the aggregate")
		workers  = fs.Int("workers", 0, "sweep worker pool size (0: GOMAXPROCS)")
		preset   = fs.String("preset", "", "scenario preset: "+strings.Join(crn.PresetNames(), ", "))
		spec     = fs.String("spectrum", "", `spectrum models, "+"-stacked: periodic:<period>,<on> | markov:<pBusy>,<pFree> | poisson:<rate>,<hold> | adversary:<t>`)
		dyn      = fs.String("dynamics", "", `topology dynamics, "+"-stacked: churn:<pDown>,<pUp> | flap:<pDrop>,<pRestore> | waypoint:<speed>,<every> (waypoint needs -topology unitdisk)`)
		asJSON   = fs.Bool("json", false, "print JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := []crn.ScenarioOption{
		crn.WithTopology(crn.Topology(*topology)),
		crn.WithNodes(*n),
		crn.WithChannels(*c, *k, *kmax),
		crn.WithSeed(*seed),
	}
	if *preset != "" {
		p, err := crn.PresetByName(*preset)
		if err != nil {
			return err
		}
		opts = append(opts, p.Options...)
	}
	specOpts, err := crn.ParseSpectrum(*spec, *seed)
	if err != nil {
		return err
	}
	opts = append(opts, specOpts...)
	dynOpts, err := crn.ParseDynamics(*dyn, *seed)
	if err != nil {
		return err
	}
	opts = append(opts, dynOpts...)

	scn, err := crn.New(opts...)
	if err != nil {
		return err
	}

	var prim crn.Primitive
	switch *algo {
	case "cseek", "naive", "uniform", "":
		prim = crn.Discovery(crn.Algorithm(*algo))
	case "ckseek":
		kh := *khat
		if kh == 0 {
			kh = scn.KMax()
		}
		prim = crn.KDiscovery(kh)
	case "cgcast":
		prim = crn.GlobalBroadcast(0, "message")
	case "flood":
		prim = crn.Flooding(0, "message")
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}

	ctx := context.Background()
	var out any
	if *seeds > 1 {
		res, err := crn.Sweep(ctx, crn.SweepSpec{
			Primitive: prim,
			Variants:  []crn.Variant{{Name: scn.String(), Scenario: scn}},
			Seeds:     *seeds,
			BaseSeed:  *seed + 1,
			Workers:   *workers,
		})
		if err != nil {
			return err
		}
		agg := res.Aggregates[0]
		if agg.Failures > 0 {
			first := ""
			for _, r := range res.Runs {
				if r.Err != "" {
					first = r.Err
					break
				}
			}
			return fmt.Errorf("%d/%d runs failed: %s", agg.Failures, agg.Runs, first)
		}
		out = agg
	} else {
		res, err := prim.Run(ctx, scn, *seed+1)
		if err != nil {
			return err
		}
		out = res
	}

	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Fprintf(w, "scenario:  %s\n", scn)
	fmt.Fprintf(w, "primitive: %s\n", prim.Name())
	switch v := out.(type) {
	case *crn.Result:
		fmt.Fprintf(w, "result:    scheduleSlots=%d completedAtSlot=%d completed=%v\n",
			v.ScheduleSlots, v.CompletedAtSlot, v.Completed)
		if v.Discovery != nil {
			fmt.Fprintf(w, "detail:    %+v\n", *v.Discovery)
		}
		if v.Broadcast != nil {
			fmt.Fprintf(w, "detail:    %+v\n", *v.Broadcast)
		}
		if v.Spectrum != nil {
			fmt.Fprintf(w, "spectrum:  listens=%d deliveries=%d collisions=%d jammedListens=%d\n",
				v.Spectrum.Listens, v.Spectrum.Deliveries, v.Spectrum.Collisions, v.Spectrum.JammedListens)
		}
		if v.Topology != nil {
			fmt.Fprintf(w, "topology:  edges=+%d/-%d churn=%d/%d downSlots=%d partitionLosses=%d rediscovered=%d\n",
				v.Topology.EdgeAdds, v.Topology.EdgeRemoves, v.Topology.NodeJoins, v.Topology.NodeLeaves,
				v.Topology.DownNodeSlots, v.Topology.PartitionLosses, v.Topology.RediscoveredPairs)
		}
	case crn.Aggregate:
		fmt.Fprintf(w, "runs:      %d (%d completed)\n", v.Runs, v.Completed)
		names := make([]string, 0, len(v.Metrics))
		for name := range v.Metrics {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "  %-20s %s\n", name, v.Metrics[name])
		}
	}
	return nil
}
