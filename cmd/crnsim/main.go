// Command crnsim runs one cognitive-radio scenario from flags and
// prints a JSON or text summary.
//
// Examples:
//
//	crnsim -topology gnp -n 24 -c 8 -k 2 -algo cseek
//	crnsim -topology star -n 17 -c 2 -k 1 -algo naive -json
//	crnsim -topology chain -n 16 -c 4 -k 2 -algo cgcast
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"crn"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crnsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("crnsim", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		topology = fs.String("topology", "gnp", "topology: gnp, star, path, grid, chain, tree, unitdisk")
		n        = fs.Int("n", 24, "number of nodes")
		c        = fs.Int("c", 8, "channels per node")
		k        = fs.Int("k", 2, "guaranteed shared channels per neighbor pair")
		kmax     = fs.Int("kmax", 0, "max shared channels (0: same as k)")
		algo     = fs.String("algo", "cseek", "algorithm: cseek, ckseek, naive, uniform, cgcast, flood")
		khat     = fs.Int("khat", 0, "k̂ threshold for ckseek (0: kmax)")
		seed     = fs.Uint64("seed", 1, "random seed")
		asJSON   = fs.Bool("json", false, "print JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	scn, err := crn.NewScenario(crn.ScenarioConfig{
		Topology: crn.Topology(*topology),
		N:        *n,
		C:        *c,
		K:        *k,
		KMax:     *kmax,
		Seed:     *seed,
	})
	if err != nil {
		return err
	}

	var out any
	switch *algo {
	case "cseek", "naive", "uniform":
		res, err := scn.Discover(crn.Algorithm(*algo), *seed+1)
		if err != nil {
			return err
		}
		out = res
	case "ckseek":
		kh := *khat
		if kh == 0 {
			kh = scn.KMax()
		}
		res, err := scn.DiscoverK(kh, *seed+1)
		if err != nil {
			return err
		}
		out = res
	case "cgcast":
		res, err := scn.Broadcast(0, "message", *seed+1)
		if err != nil {
			return err
		}
		out = res
	case "flood":
		res, err := scn.Flood(0, "message", *seed+1)
		if err != nil {
			return err
		}
		out = res
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}

	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Fprintf(w, "scenario: %s\n", scn)
	fmt.Fprintf(w, "result:   %+v\n", out)
	return nil
}
