package main

import (
	"io"
	"testing"
)

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	if err := run([]string{"-algo", "quantum"}, io.Discard); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestRunBadScenario(t *testing.T) {
	if err := run([]string{"-n", "1"}, io.Discard); err == nil {
		t.Error("single-node scenario accepted")
	}
	if err := run([]string{"-topology", "donut"}, io.Discard); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestRunDiscoveryScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	cases := [][]string{
		{"-topology", "star", "-n", "8", "-c", "3", "-k", "2", "-algo", "cseek"},
		{"-topology", "path", "-n", "6", "-c", "3", "-k", "2", "-algo", "naive", "-json"},
		{"-topology", "path", "-n", "6", "-c", "3", "-k", "2", "-algo", "uniform"},
		{"-topology", "gnp", "-n", "10", "-c", "8", "-k", "2", "-kmax", "5", "-algo", "ckseek"},
		{"-topology", "path", "-n", "6", "-c", "3", "-k", "2", "-algo", "flood"},
		{"-topology", "chain", "-n", "8", "-c", "3", "-k", "2", "-algo", "cgcast", "-json"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}
