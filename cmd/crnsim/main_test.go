package main

import (
	"io"
	"strings"
	"testing"
)

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	if err := run([]string{"-algo", "quantum"}, io.Discard); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestRunBadScenario(t *testing.T) {
	if err := run([]string{"-n", "1"}, io.Discard); err == nil {
		t.Error("single-node scenario accepted")
	}
	if err := run([]string{"-topology", "donut"}, io.Discard); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestRunDiscoveryScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	cases := [][]string{
		{"-topology", "star", "-n", "8", "-c", "3", "-k", "2", "-algo", "cseek"},
		{"-topology", "path", "-n", "6", "-c", "3", "-k", "2", "-algo", "naive", "-json"},
		{"-topology", "path", "-n", "6", "-c", "3", "-k", "2", "-algo", "uniform"},
		{"-topology", "gnp", "-n", "10", "-c", "8", "-k", "2", "-kmax", "5", "-algo", "ckseek"},
		{"-topology", "path", "-n", "6", "-c", "3", "-k", "2", "-algo", "flood"},
		{"-topology", "chain", "-n", "8", "-c", "3", "-k", "2", "-algo", "cgcast", "-json"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

// TestRunSweep exercises the -seeds fan-out: the CLI must print the
// sweep aggregate instead of a single Result, and two worker counts
// must produce the identical report (the sweep determinism contract).
func TestRunSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	outputs := make([]string, 0, 2)
	for _, workers := range []string{"1", "4"} {
		var sb strings.Builder
		args := []string{"-topology", "path", "-n", "6", "-c", "3", "-k", "2",
			"-algo", "cseek", "-seeds", "4", "-workers", workers}
		if err := run(args, &sb); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		outputs = append(outputs, sb.String())
	}
	if !strings.Contains(outputs[0], "runs:      4") {
		t.Errorf("sweep output missing run count:\n%s", outputs[0])
	}
	if !strings.Contains(outputs[0], "timeToComplete") {
		t.Errorf("sweep output missing metrics:\n%s", outputs[0])
	}
	if outputs[0] != outputs[1] {
		t.Errorf("worker counts disagree:\n%s\nvs\n%s", outputs[0], outputs[1])
	}
}
