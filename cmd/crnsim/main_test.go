package main

import (
	"io"
	"strings"
	"testing"

	"crn"
)

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	if err := run([]string{"-algo", "quantum"}, io.Discard); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestRunBadScenario(t *testing.T) {
	if err := run([]string{"-n", "1"}, io.Discard); err == nil {
		t.Error("single-node scenario accepted")
	}
	if err := run([]string{"-topology", "donut"}, io.Discard); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestRunDiscoveryScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	cases := [][]string{
		{"-topology", "star", "-n", "8", "-c", "3", "-k", "2", "-algo", "cseek"},
		{"-topology", "path", "-n", "6", "-c", "3", "-k", "2", "-algo", "naive", "-json"},
		{"-topology", "path", "-n", "6", "-c", "3", "-k", "2", "-algo", "uniform"},
		{"-topology", "gnp", "-n", "10", "-c", "8", "-k", "2", "-kmax", "5", "-algo", "ckseek"},
		{"-topology", "path", "-n", "6", "-c", "3", "-k", "2", "-algo", "flood"},
		{"-topology", "chain", "-n", "8", "-c", "3", "-k", "2", "-algo", "cgcast", "-json"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestParseSpectrum(t *testing.T) {
	good := []string{
		"",
		"none",
		"periodic:40,12",
		"markov:0.05,0.15",
		"poisson:0.01,25",
		"adversary:2",
		"adversary",
		"markov:0.05,0.15+adversary:2",
		"periodic:40,12+poisson:0.01,25+adversary:1",
	}
	for _, spec := range good {
		if _, err := crn.ParseSpectrum(spec, 1); err != nil {
			t.Errorf("parseSpectrum(%q): %v", spec, err)
		}
	}
	bad := []string{
		"plasma:1",
		"markov:0.05",
		"markov:a,b",
		"periodic:40",
		"poisson:0.01,25,9",
		"adversary:1,2",
		"adversary:0.5",
		"adversary:x",
		"periodic:40.5,12",
	}
	for _, spec := range bad {
		if _, err := crn.ParseSpectrum(spec, 1); err == nil {
			t.Errorf("parseSpectrum(%q) accepted", spec)
		}
	}
}

func TestParseDynamics(t *testing.T) {
	good := []string{
		"",
		"none",
		"churn:0.01,0.08",
		"flap:0.01,0.1",
		"waypoint:0.005,4",
		"churn:0.01,0.08+flap:0.01,0.1",
	}
	for _, spec := range good {
		if _, err := crn.ParseDynamics(spec, 1); err != nil {
			t.Errorf("parseDynamics(%q): %v", spec, err)
		}
	}
	bad := []string{
		"teleport:1",
		"churn:0.01",
		"churn:a,b",
		"flap:0.01,0.1,5",
		"waypoint:0.005",
		"waypoint:0.005,4.5",
		"waypoint:0.005,0",
	}
	for _, spec := range bad {
		if _, err := crn.ParseDynamics(spec, 1); err == nil {
			t.Errorf("parseDynamics(%q) accepted", spec)
		}
	}
}

func TestRunDynamicsFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	// Waypoint mobility without a geometric topology must surface the
	// facade's validation error.
	if err := run([]string{"-topology", "gnp", "-n", "10", "-c", "4", "-k", "2",
		"-dynamics", "waypoint:0.005,4"}, io.Discard); err == nil {
		t.Error("waypoint on gnp accepted")
	}
	var sb strings.Builder
	args := []string{"-topology", "gnp", "-n", "10", "-c", "4", "-k", "2",
		"-dynamics", "churn:0.01,0.08+flap:0.01,0.1"}
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	out := sb.String()
	if !strings.Contains(out, "topology:") {
		t.Errorf("output missing topology accounting:\n%s", out)
	}
	if strings.Contains(out, "downSlots=0 ") {
		t.Errorf("churn left no down slots:\n%s", out)
	}
}

func TestRunPresetAndSpectrumFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	if err := run([]string{"-preset", "nope"}, io.Discard); err == nil {
		t.Error("unknown preset accepted")
	}
	if err := run([]string{"-spectrum", "plasma:1"}, io.Discard); err == nil {
		t.Error("unknown spectrum model accepted")
	}
	var sb strings.Builder
	args := []string{"-topology", "gnp", "-n", "10", "-c", "4", "-k", "2",
		"-preset", "urban-busy", "-spectrum", "adversary:1"}
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	if !strings.Contains(sb.String(), "jammedListens=") {
		t.Errorf("output missing spectrum accounting:\n%s", sb.String())
	}
	if strings.Contains(sb.String(), "jammedListens=0\n") {
		t.Errorf("urban-busy + adversary jammed nothing:\n%s", sb.String())
	}
}

// TestRunSweep exercises the -seeds fan-out: the CLI must print the
// sweep aggregate instead of a single Result, and two worker counts
// must produce the identical report (the sweep determinism contract).
func TestRunSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	outputs := make([]string, 0, 2)
	for _, workers := range []string{"1", "4"} {
		var sb strings.Builder
		args := []string{"-topology", "path", "-n", "6", "-c", "3", "-k", "2",
			"-algo", "cseek", "-seeds", "4", "-workers", workers}
		if err := run(args, &sb); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		outputs = append(outputs, sb.String())
	}
	if !strings.Contains(outputs[0], "runs:      4") {
		t.Errorf("sweep output missing run count:\n%s", outputs[0])
	}
	if !strings.Contains(outputs[0], "timeToComplete") {
		t.Errorf("sweep output missing metrics:\n%s", outputs[0])
	}
	if outputs[0] != outputs[1] {
		t.Errorf("worker counts disagree:\n%s\nvs\n%s", outputs[0], outputs[1])
	}
}
