package main

import (
	"context"
	"io"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"crn/internal/sweepd"
)

func TestCLIValidation(t *testing.T) {
	ctx := context.Background()
	bad := [][]string{
		{},
		{"teleport"},
		{"serve"},                             // missing -spool
		{"worker"},                            // missing -connect
		{"submit"},                            // missing -connect/-spec
		{"submit", "-connect", "127.0.0.1:1"}, // missing -spec
		{"status"},                            // missing -connect
		{"result", "-connect", "127.0.0.1:1"}, // missing -job
		{"wait", "-connect", "127.0.0.1:1"},   // missing -job
	}
	for _, args := range bad {
		if err := run(ctx, args, io.Discard); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
	if err := run(ctx, []string{"help"}, io.Discard); err != nil {
		t.Errorf("help: %v", err)
	}
}

// TestServeShutsDownGracefully: serve drains and exits cleanly when
// its context is cancelled (the SIGINT/SIGTERM path).
func TestServeShutsDownGracefully(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var out strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"serve", "-addr", "127.0.0.1:0", "-spool", t.TempDir()}, &out)
	}()
	// Give the listener a beat to come up, then signal.
	time.Sleep(200 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve: %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down after cancellation")
	}
	if !strings.Contains(out.String(), "stopped cleanly") {
		t.Errorf("serve output missing graceful-shutdown marker:\n%s", out.String())
	}
}

// TestCLIAgainstService drives submit → status → worker → wait → result
// through the CLI verbs against an in-process daemon, and checks the
// fetched result byte-matches `crnsweep sweep` semantics (the shared
// spec from cmd/crnsweep's testdata).
func TestCLIAgainstService(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	ctx := context.Background()
	srv, err := sweepd.New(sweepd.Config{
		Spool:    t.TempDir(),
		LeaseTTL: time.Minute,
		Log:      log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	specPath := filepath.Join("..", "crnsweep", "testdata", "spec.json")

	var submitOut strings.Builder
	if err := run(ctx, []string{"submit", "-connect", ts.URL, "-spec", specPath, "-shards", "3"}, &submitOut); err != nil {
		t.Fatal(err)
	}
	id := strings.TrimSpace(submitOut.String())
	if id == "" || strings.ContainsAny(id, " \n") {
		t.Fatalf("submit did not print a bare job id: %q", submitOut.String())
	}

	var statusOut strings.Builder
	if err := run(ctx, []string{"status", "-connect", ts.URL, "-job", id}, &statusOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(statusOut.String(), "0/3 shards done") {
		t.Errorf("status output unexpected:\n%s", statusOut.String())
	}

	// result before completion must refuse.
	if err := run(ctx, []string{"result", "-connect", ts.URL, "-job", id}, io.Discard); err == nil {
		t.Error("result of an unfinished job accepted")
	}

	// A CLI worker drains the whole job, then exits via -maxshards.
	if err := run(ctx, []string{"worker", "-connect", ts.URL, "-name", "cli-w", "-maxshards", "3", "-poll", "20ms"}, io.Discard); err != nil {
		t.Fatal(err)
	}

	resultPath := filepath.Join(t.TempDir(), "service.json")
	var waitOut strings.Builder
	if err := run(ctx, []string{"wait", "-connect", ts.URL, "-job", id, "-out", resultPath, "-poll", "20ms"}, &waitOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(waitOut.String(), "done: 3/3") {
		t.Errorf("wait output unexpected:\n%s", waitOut.String())
	}

	got, err := os.ReadFile(resultPath)
	if err != nil {
		t.Fatal(err)
	}
	// The committed golden merged output is the in-process crn.Sweep
	// reference for this spec (pinned by cmd/crnsweep's tests): the
	// service result must byte-match it, shards and workers be damned.
	want, err := os.ReadFile(filepath.Join("..", "crnsweep", "testdata", "golden", "merged.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("service result diverged from the committed golden merged output")
	}

	// The `result` verb fetches the same bytes again.
	var resultOut strings.Builder
	if err := run(ctx, []string{"result", "-connect", ts.URL, "-job", id}, &resultOut); err != nil {
		t.Fatal(err)
	}
	if resultOut.String() != string(want) {
		t.Error("result verb bytes diverged from wait -out bytes")
	}
}

// TestWorkerAbandonFlag: -abandon makes the worker exit after taking
// a lease without completing it — the straggler CI simulation.
func TestWorkerAbandonFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	ctx := context.Background()
	srv, err := sweepd.New(sweepd.Config{
		Spool:    t.TempDir(),
		LeaseTTL: time.Minute,
		Log:      log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	specPath := filepath.Join("..", "crnsweep", "testdata", "spec.json")
	var submitOut strings.Builder
	if err := run(ctx, []string{"submit", "-connect", ts.URL, "-spec", specPath, "-shards", "2"}, &submitOut); err != nil {
		t.Fatal(err)
	}
	id := strings.TrimSpace(submitOut.String())

	if err := run(ctx, []string{"worker", "-connect", ts.URL, "-name", "straggler", "-abandon", "1", "-poll", "20ms"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	var statusOut strings.Builder
	if err := run(ctx, []string{"status", "-connect", ts.URL, "-job", id}, &statusOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(statusOut.String(), "leased") {
		t.Errorf("abandoned lease not visible in status:\n%s", statusOut.String())
	}
}
