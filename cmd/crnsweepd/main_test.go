package main

import (
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"crn"
	"crn/internal/sweepd"
	"crn/internal/sweepfile"
)

func TestCLIValidation(t *testing.T) {
	ctx := context.Background()
	bad := [][]string{
		{},
		{"teleport"},
		{"serve"},                             // missing -spool
		{"worker"},                            // missing -connect
		{"submit"},                            // missing -connect/-spec
		{"submit", "-connect", "127.0.0.1:1"}, // missing -spec
		{"status"},                            // missing -connect
		{"result", "-connect", "127.0.0.1:1"}, // missing -job
		{"wait", "-connect", "127.0.0.1:1"},   // missing -job
		{"chaos", "-seeds", "0"},              // nothing to run
		{"chaos", "-spec", "no-such-spec.json"},
		{"chaos", "-golden", "no-such-golden.json"},
	}
	for _, args := range bad {
		if err := run(ctx, args, io.Discard); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
	if err := run(ctx, []string{"help"}, io.Discard); err != nil {
		t.Errorf("help: %v", err)
	}
}

// TestServeShutsDownGracefully: serve drains and exits cleanly when
// its context is cancelled (the SIGINT/SIGTERM path).
func TestServeShutsDownGracefully(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var out strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"serve", "-addr", "127.0.0.1:0", "-spool", t.TempDir()}, &out)
	}()
	// Give the listener a beat to come up, then signal.
	time.Sleep(200 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve: %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down after cancellation")
	}
	if !strings.Contains(out.String(), "stopped cleanly") {
		t.Errorf("serve output missing graceful-shutdown marker:\n%s", out.String())
	}
}

// syncBuf is a strings.Builder safe to read while serve writes to it.
type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestServeDrainLosesNoAckedShard: a SIGTERM that lands while an
// artifact upload is mid-POST must not lose the shard — serve's drain
// (-draintimeout) holds the door until the in-flight Complete is
// processed and acked, and the acked artifact is on disk afterwards.
func TestServeDrainLosesNoAckedShard(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	spool := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuf
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"serve", "-addr", "127.0.0.1:0", "-spool", spool, "-draintimeout", "5s"}, &out)
	}()
	// Parse the listen address from serve's banner.
	var addr string
	for deadline := time.Now().Add(5 * time.Second); addr == ""; {
		if s := out.String(); strings.Contains(s, "serving on ") {
			rest := s[strings.Index(s, "serving on ")+len("serving on "):]
			addr = rest[:strings.IndexByte(rest, ' ')]
		} else if time.Now().After(deadline) {
			t.Fatalf("serve never came up:\n%s", out.String())
		} else {
			time.Sleep(20 * time.Millisecond)
		}
	}
	c := sweepd.NewClient(addr)
	if err := c.WaitReady(ctx, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	sf, err := sweepfile.LoadSpec(filepath.Join("..", "crnsweep", "testdata", "spec.json"))
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Submit(ctx, sf, 1)
	if err != nil {
		t.Fatal(err)
	}
	grant, err := c.Acquire(ctx, "drainer")
	if err != nil || grant == nil {
		t.Fatalf("acquire: grant=%v err=%v", grant, err)
	}
	spec, err := sweepfile.BuildSweepSpec(grant.Manifest.Spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := crn.RunShard(ctx, spec, grant.Manifest.Plan, grant.Shard)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sweepfile.NewArtifact(grant.Manifest.PlanHash, res)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := json.Marshal(&sweepd.CompleteRequest{Artifact: a})
	if err != nil {
		t.Fatal(err)
	}

	// Upload the artifact with a body that stalls halfway so the
	// request is provably in flight when the shutdown signal lands.
	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", "http://"+addr+"/api/v1/leases/"+grant.Lease+"/complete", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.ContentLength = int64(len(payload))
	respc := make(chan *http.Response, 1)
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			errc <- err
			return
		}
		resp.Body.Close()
		respc <- resp
	}()
	if _, err := pw.Write(payload[:len(payload)/2]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond) // handler is blocked reading the body
	cancel()                           // the SIGTERM path: serve starts draining
	time.Sleep(150 * time.Millisecond) // drain overlaps the stalled upload
	if _, err := pw.Write(payload[len(payload)/2:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()

	select {
	case resp := <-respc:
		if resp.StatusCode/100 != 2 {
			t.Fatalf("in-flight complete rejected during drain: http %d", resp.StatusCode)
		}
	case err := <-errc:
		t.Fatalf("in-flight complete failed during drain: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight complete never finished")
	}
	if err := <-done; err != nil {
		t.Fatalf("serve: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "stopped cleanly") {
		t.Errorf("serve output missing graceful-shutdown marker:\n%s", out.String())
	}

	// The acked shard survived the shutdown: its artifact validates on
	// disk, and — being the job's last shard — the merge landed too,
	// byte-identical to the committed in-process golden.
	dir := filepath.Join(spool, "jobs", id)
	m, _, err := sweepfile.LoadManifest(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sweepfile.LoadArtifact(m, dir, grant.Shard); err != nil {
		t.Fatalf("acked artifact lost to shutdown: %v", err)
	}
	merged, err := os.ReadFile(filepath.Join(dir, "merged.json"))
	if err != nil {
		t.Fatalf("acked final shard did not merge before shutdown: %v", err)
	}
	want, err := os.ReadFile(filepath.Join("..", "crnsweep", "testdata", "golden", "merged.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(merged) != string(want) {
		t.Error("drained merge diverged from the committed golden merged output")
	}
}

// TestChaosCLISmoke: the chaos verb end to end — golden pre-check plus
// a small matrix — exercising the same path CI's wide run takes.
func TestChaosCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations under fault injection")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	var out strings.Builder
	err := run(ctx, []string{"chaos",
		"-spec", filepath.Join("..", "crnsweep", "testdata", "spec.json"),
		"-golden", filepath.Join("..", "crnsweep", "testdata", "golden", "merged.json"),
		"-seeds", "2", "-seedbase", "2", "-shards", "2", "-timeout", "60s",
	}, &out)
	if err != nil {
		t.Fatalf("chaos: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "reference matches golden") {
		t.Errorf("golden pre-check missing from output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "0 contract violations") {
		t.Errorf("summary missing from output:\n%s", out.String())
	}
	// A golden that is NOT the reference bytes must refuse up front.
	if err := run(ctx, []string{"chaos",
		"-spec", filepath.Join("..", "crnsweep", "testdata", "spec.json"),
		"-golden", filepath.Join("..", "crnsweep", "testdata", "spec.json"),
		"-seeds", "1"}, io.Discard); err == nil || !strings.Contains(err.Error(), "golden") {
		t.Errorf("mismatched golden accepted: %v", err)
	}
}

// TestCLIAgainstService drives submit → status → worker → wait → result
// through the CLI verbs against an in-process daemon, and checks the
// fetched result byte-matches `crnsweep sweep` semantics (the shared
// spec from cmd/crnsweep's testdata).
func TestCLIAgainstService(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	ctx := context.Background()
	srv, err := sweepd.New(sweepd.Config{
		Spool:    t.TempDir(),
		LeaseTTL: time.Minute,
		Log:      log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	specPath := filepath.Join("..", "crnsweep", "testdata", "spec.json")

	var submitOut strings.Builder
	if err := run(ctx, []string{"submit", "-connect", ts.URL, "-spec", specPath, "-shards", "3"}, &submitOut); err != nil {
		t.Fatal(err)
	}
	id := strings.TrimSpace(submitOut.String())
	if id == "" || strings.ContainsAny(id, " \n") {
		t.Fatalf("submit did not print a bare job id: %q", submitOut.String())
	}

	var statusOut strings.Builder
	if err := run(ctx, []string{"status", "-connect", ts.URL, "-job", id}, &statusOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(statusOut.String(), "0/3 shards done") {
		t.Errorf("status output unexpected:\n%s", statusOut.String())
	}

	// result before completion must refuse.
	if err := run(ctx, []string{"result", "-connect", ts.URL, "-job", id}, io.Discard); err == nil {
		t.Error("result of an unfinished job accepted")
	}

	// A CLI worker drains the whole job, then exits via -maxshards.
	if err := run(ctx, []string{"worker", "-connect", ts.URL, "-name", "cli-w", "-maxshards", "3", "-poll", "20ms"}, io.Discard); err != nil {
		t.Fatal(err)
	}

	resultPath := filepath.Join(t.TempDir(), "service.json")
	var waitOut strings.Builder
	if err := run(ctx, []string{"wait", "-connect", ts.URL, "-job", id, "-out", resultPath, "-poll", "20ms"}, &waitOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(waitOut.String(), "done: 3/3") {
		t.Errorf("wait output unexpected:\n%s", waitOut.String())
	}

	got, err := os.ReadFile(resultPath)
	if err != nil {
		t.Fatal(err)
	}
	// The committed golden merged output is the in-process crn.Sweep
	// reference for this spec (pinned by cmd/crnsweep's tests): the
	// service result must byte-match it, shards and workers be damned.
	want, err := os.ReadFile(filepath.Join("..", "crnsweep", "testdata", "golden", "merged.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("service result diverged from the committed golden merged output")
	}

	// The `result` verb fetches the same bytes again.
	var resultOut strings.Builder
	if err := run(ctx, []string{"result", "-connect", ts.URL, "-job", id}, &resultOut); err != nil {
		t.Fatal(err)
	}
	if resultOut.String() != string(want) {
		t.Error("result verb bytes diverged from wait -out bytes")
	}
}

// TestWorkerAbandonFlag: -abandon makes the worker exit after taking
// a lease without completing it — the straggler CI simulation.
func TestWorkerAbandonFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	ctx := context.Background()
	srv, err := sweepd.New(sweepd.Config{
		Spool:    t.TempDir(),
		LeaseTTL: time.Minute,
		Log:      log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	specPath := filepath.Join("..", "crnsweep", "testdata", "spec.json")
	var submitOut strings.Builder
	if err := run(ctx, []string{"submit", "-connect", ts.URL, "-spec", specPath, "-shards", "2"}, &submitOut); err != nil {
		t.Fatal(err)
	}
	id := strings.TrimSpace(submitOut.String())

	if err := run(ctx, []string{"worker", "-connect", ts.URL, "-name", "straggler", "-abandon", "1", "-poll", "20ms"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	var statusOut strings.Builder
	if err := run(ctx, []string{"status", "-connect", ts.URL, "-job", id}, &statusOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(statusOut.String(), "leased") {
		t.Errorf("abandoned lease not visible in status:\n%s", statusOut.String())
	}
}
