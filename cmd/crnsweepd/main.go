// Command crnsweepd runs the sweep orchestration service and its
// clients: a daemon that queues sweep jobs and leases shards to a
// fleet of pull-based workers, the worker itself, and thin verbs for
// submitting and following jobs. The spec and artifact formats are
// exactly cmd/crnsweep's (internal/sweepfile), and the service's
// contract is byte-identity: the merged result of a job equals the
// output of an in-process crn.Sweep of the same spec, no matter how
// many workers ran it or how many leases expired along the way.
//
// A minimal fleet:
//
//	crnsweepd serve  -addr 127.0.0.1:8471 -spool /var/tmp/crnspool &
//	crnsweepd worker -connect 127.0.0.1:8471 -name w1 &
//	crnsweepd worker -connect 127.0.0.1:8471 -name w2 &
//	id=$(crnsweepd submit -connect 127.0.0.1:8471 -spec spec.json -shards 4)
//	crnsweepd wait   -connect 127.0.0.1:8471 -job "$id" -out merged.json
//
// The daemon shuts down gracefully on SIGINT/SIGTERM; because every
// job's state lives in the spool, restarting it on the same -spool
// resumes in-flight jobs without re-running shards that already
// produced valid artifacts. Workers exit on SIGINT/SIGTERM too; any
// shard they held is re-dispatched when its lease expires.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crn/internal/chaos"
	"crn/internal/sweepd"
	"crn/internal/sweepfile"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crnsweepd:", err)
		os.Exit(1)
	}
}

const usage = `usage: crnsweepd <serve|worker|submit|status|result|wait|chaos> [flags]

  serve  -spool <dir> [-addr host:port] [-lease d] [-maxattempts n] [-maxinflight n] [-draintimeout d]
         run the orchestrator daemon (restart on the same -spool resumes jobs)
  worker -connect <addr> [-name s] [-workers n] [-poll d] [-pollmax d] [-maxshards n]
         run a worker: lease shards, execute, upload artifacts, heartbeat
  submit -connect <addr> -spec <file> [-shards k]
         queue a sweep; prints the job id
  status -connect <addr> [-job id]
         show one job (or all jobs) with per-shard state
  result -connect <addr> -job <id> [-out file]
         fetch a finished job's merged result (verbatim bytes)
  wait   -connect <addr> -job <id> [-out file] [-poll d]
         block until the job finishes, then fetch the result
  chaos  [-spec file] [-seeds n] [-seedbase n] [-shards k] [-workers n] [-parallel n] [-golden file] [-v]
         run the two-worker service matrix under n seeded fault schedules and
         byte-diff every surviving result against the single-process sweep
`

func run(ctx context.Context, args []string, w io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand\n%s", usage)
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "serve":
		return cmdServe(ctx, rest, w)
	case "worker":
		return cmdWorker(ctx, rest, w)
	case "submit":
		return cmdSubmit(ctx, rest, w)
	case "status":
		return cmdStatus(ctx, rest, w)
	case "result":
		return cmdResult(ctx, rest, w)
	case "wait":
		return cmdWait(ctx, rest, w)
	case "chaos":
		return cmdChaos(ctx, rest, w)
	case "help", "-h", "-help", "--help":
		fmt.Fprint(w, usage)
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q\n%s", cmd, usage)
	}
}

func cmdServe(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("crnsweepd serve", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		addr        = fs.String("addr", "127.0.0.1:8471", "listen address")
		spool       = fs.String("spool", "", "job spool directory (required)")
		leaseTTL    = fs.Duration("lease", 60*time.Second, "shard lease TTL; expired leases are re-dispatched")
		maxAttempts = fs.Int("maxattempts", 5, "lease attempts per shard before the job fails")
		maxInflight = fs.Int("maxinflight", 64, "concurrent requests before shedding 429s (0: unbounded)")
		drain       = fs.Duration("draintimeout", 10*time.Second, "on SIGTERM, wait up to this long for in-flight uploads to finish")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *spool == "" {
		return fmt.Errorf("serve: -spool is required")
	}
	logger := log.New(os.Stderr, "", log.LstdFlags)
	srv, err := sweepd.New(sweepd.Config{
		Spool:       *spool,
		LeaseTTL:    *leaseTTL,
		MaxAttempts: *maxAttempts,
		MaxInflight: *maxInflight,
		Log:         logger,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(w, "crnsweepd: serving on %s (spool %s, lease %v)\n", ln.Addr(), *spool, *leaseTTL)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Graceful drain: http.Server.Shutdown stops accepting and waits
	// for in-flight requests — artifact uploads mid-POST included — so
	// a SIGTERM never drops a shard a worker already finished. The
	// bound keeps a wedged connection from holding the process hostage.
	logger.Printf("sweepd: signal received, draining in-flight uploads (up to %v)", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(w, "crnsweepd: stopped cleanly (spool preserved; restart to resume)")
	return nil
}

func cmdWorker(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("crnsweepd worker", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		connect   = fs.String("connect", "", "daemon address (required)")
		name      = fs.String("name", "", "worker name (default: host-pid)")
		workers   = fs.Int("workers", 0, "per-shard simulation pool size (0: GOMAXPROCS); never affects bytes")
		poll      = fs.Duration("poll", 200*time.Millisecond, "idle re-poll base interval (backs off exponentially with jitter)")
		pollMax   = fs.Duration("pollmax", 0, "idle re-poll backoff cap (0: 20×poll)")
		maxShards = fs.Int("maxshards", 0, "exit after completing n shards (0: run until signalled)")
		abandon   = fs.Int("abandon", 0, "exit after acquiring the nth lease without completing it (straggler simulation)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *connect == "" {
		return fmt.Errorf("worker: -connect is required")
	}
	if *name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	c := sweepd.NewClient(*connect)
	if err := c.WaitReady(ctx, 10*time.Second); err != nil {
		return err
	}
	wk := &sweepd.Worker{
		Client:       c,
		Name:         *name,
		Workers:      *workers,
		Poll:         *poll,
		PollMax:      *pollMax,
		MaxShards:    *maxShards,
		AbandonAfter: *abandon,
		Log:          log.New(os.Stderr, "", log.LstdFlags),
	}
	fmt.Fprintf(w, "crnsweepd: worker %s pulling from %s\n", *name, *connect)
	return wk.Run(ctx)
}

func cmdSubmit(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("crnsweepd submit", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		connect  = fs.String("connect", "", "daemon address (required)")
		specPath = fs.String("spec", "", "sweep spec file (JSON, required)")
		shards   = fs.Int("shards", 1, "shard count to plan")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *connect == "" || *specPath == "" {
		return fmt.Errorf("submit: -connect and -spec are required")
	}
	sf, err := sweepfile.LoadSpec(*specPath)
	if err != nil {
		return err
	}
	c := sweepd.NewClient(*connect)
	if err := c.WaitReady(ctx, 10*time.Second); err != nil {
		return err
	}
	id, err := c.Submit(ctx, sf, *shards)
	if err != nil {
		return err
	}
	// Bare id on stdout: `id=$(crnsweepd submit ...)` just works.
	fmt.Fprintln(w, id)
	return nil
}

func printStatus(w io.Writer, st *sweepd.JobStatus) {
	fmt.Fprintf(w, "job %s  %-8s %d/%d shards done  %d runs  plan %s\n",
		st.ID, st.State, st.Done, st.Total, st.Runs, st.PlanHash)
	for _, sh := range st.Shards {
		line := fmt.Sprintf("  shard %-3d %-8s attempts=%d", sh.Shard, sh.State, sh.Attempts)
		if sh.Worker != "" {
			line += " worker=" + sh.Worker
		}
		fmt.Fprintln(w, line)
	}
	if st.Error != "" {
		fmt.Fprintf(w, "  error: %s\n", st.Error)
	}
}

func cmdStatus(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("crnsweepd status", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		connect = fs.String("connect", "", "daemon address (required)")
		jobID   = fs.String("job", "", "job id (default: list all jobs)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *connect == "" {
		return fmt.Errorf("status: -connect is required")
	}
	c := sweepd.NewClient(*connect)
	if *jobID != "" {
		st, err := c.Status(ctx, *jobID)
		if err != nil {
			return err
		}
		printStatus(w, st)
		return nil
	}
	list, err := c.Jobs(ctx)
	if err != nil {
		return err
	}
	if len(list.Jobs) == 0 {
		fmt.Fprintln(w, "no jobs")
		return nil
	}
	for i := range list.Jobs {
		printStatus(w, &list.Jobs[i])
	}
	return nil
}

// fetchResult writes a finished job's merged bytes verbatim to -out
// (or stdout) — verbatim is the point: the file must byte-match an
// in-process sweep's output.
func fetchResult(ctx context.Context, c *sweepd.Client, jobID, out string, w io.Writer) error {
	_, doc, err := c.Result(ctx, jobID)
	if err != nil {
		return err
	}
	if out == "" {
		_, err = w.Write(doc)
		return err
	}
	if err := sweepfile.WriteFileAtomic(out, doc); err != nil {
		return err
	}
	fmt.Fprintf(w, "job %s result → %s\n", jobID, out)
	return nil
}

func cmdResult(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("crnsweepd result", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		connect = fs.String("connect", "", "daemon address (required)")
		jobID   = fs.String("job", "", "job id (required)")
		out     = fs.String("out", "", "output file (default: print to stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *connect == "" || *jobID == "" {
		return fmt.Errorf("result: -connect and -job are required")
	}
	return fetchResult(ctx, sweepd.NewClient(*connect), *jobID, *out, w)
}

// chaosDefaultSpec is the sweep the chaos matrix runs when no -spec is
// given: small enough that one shard takes well under a lease TTL, two
// variants so merge ordering is exercised.
func chaosDefaultSpec() *sweepfile.Spec {
	return &sweepfile.Spec{
		Primitive: "cseek",
		Seeds:     4,
		BaseSeed:  42,
		Variants: []sweepfile.Variant{
			{Name: "quiet-path", Topology: "path", N: 6, Channels: 3, K: 2, Seed: 1},
			{Name: "busy-star", Topology: "star", N: 8, Channels: 4, K: 2, Seed: 2, Preset: "urban-busy"},
		},
	}
}

func cmdChaos(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("crnsweepd chaos", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		specPath = fs.String("spec", "", "sweep spec file (default: a built-in two-variant spec)")
		seeds    = fs.Int("seeds", 32, "fault-schedule seeds to run")
		seedBase = fs.Uint64("seedbase", 1, "first chaos seed (schedules are seedbase..seedbase+seeds-1)")
		shards   = fs.Int("shards", 4, "shards per job")
		workers  = fs.Int("workers", 2, "worker slots per run")
		lease    = fs.Duration("lease", 1500*time.Millisecond, "daemon lease TTL under test")
		timeout  = fs.Duration("timeout", 60*time.Second, "per-seed run timeout")
		parallel = fs.Int("parallel", 0, "seeds in flight at once (0: min(4, NumCPU))")
		golden   = fs.String("golden", "", "byte-diff the reference sweep against this file first")
		verbose  = fs.Bool("v", false, "narrate injected faults and per-seed progress to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *seeds <= 0 {
		return fmt.Errorf("chaos: -seeds must be positive")
	}
	sf := chaosDefaultSpec()
	if *specPath != "" {
		var err error
		if sf, err = sweepfile.LoadSpec(*specPath); err != nil {
			return err
		}
	}
	var logger *log.Logger
	if *verbose {
		logger = log.New(os.Stderr, "chaos: ", 0)
	}
	// Pin the ground truth before injecting anything: the reference is
	// the in-process sweep, and -golden lets CI assert that reference
	// itself matches a committed file, so a drifting encoder can't hide
	// behind a self-consistent matrix.
	if *golden != "" {
		want, err := os.ReadFile(*golden)
		if err != nil {
			return err
		}
		ref, err := chaos.Reference(ctx, sf)
		if err != nil {
			return err
		}
		if !bytes.Equal(ref, want) {
			return fmt.Errorf("chaos: reference sweep diverged from golden %s (%d bytes vs %d)", *golden, len(ref), len(want))
		}
		fmt.Fprintf(w, "reference matches golden %s (%d bytes)\n", *golden, len(want))
	}

	results, err := chaos.RunMatrix(ctx, chaos.MatrixConfig{
		Spec:     sf,
		Shards:   *shards,
		Workers:  *workers,
		SeedBase: *seedBase,
		Seeds:    *seeds,
		LeaseTTL: *lease,
		Timeout:  *timeout,
		Parallel: *parallel,
		Log:      logger,
	})
	if err != nil {
		return err
	}

	completed, failed := 0, 0
	for i := range results {
		r := &results[i]
		verdict := "ok"
		switch {
		case !r.OK():
			verdict = "FAIL"
			failed++
		case !r.Completed:
			verdict = "timeout" // chaos won this round; contract still held
		}
		if r.Completed {
			completed++
		}
		line := fmt.Sprintf("seed %-4d %-7s acked=%d lost=%d", r.Seed, verdict, r.Acked, r.AckedLost)
		if r.Restarted {
			line += " restarted"
		}
		if r.Err != "" {
			line += "  (" + r.Err + ")"
		}
		fmt.Fprintln(w, line)
	}
	fmt.Fprintf(w, "chaos: %d/%d seeds completed byte-identical, %d contract violations\n",
		completed, len(results), failed)
	if failed > 0 {
		return fmt.Errorf("chaos: %d seed(s) violated the byte-identity/no-lost-ack contract", failed)
	}
	if completed == 0 {
		return fmt.Errorf("chaos: no seed completed its run — hardening regressed, not chaos winning")
	}
	return nil
}

func cmdWait(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("crnsweepd wait", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		connect = fs.String("connect", "", "daemon address (required)")
		jobID   = fs.String("job", "", "job id (required)")
		out     = fs.String("out", "", "result output file (default: print to stdout)")
		poll    = fs.Duration("poll", 500*time.Millisecond, "status poll interval")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *connect == "" || *jobID == "" {
		return fmt.Errorf("wait: -connect and -job are required")
	}
	c := sweepd.NewClient(*connect)
	if err := c.WaitReady(ctx, 10*time.Second); err != nil {
		return err
	}
	st, err := c.Wait(ctx, *jobID, *poll)
	if err != nil {
		return err
	}
	if *out != "" { // keep stdout pure JSON when the result goes there
		fmt.Fprintf(w, "job %s done: %d/%d shards\n", st.ID, st.Done, st.Total)
	}
	return fetchResult(ctx, c, *jobID, *out, w)
}
