// Command crnsweepd runs the sweep orchestration service and its
// clients: a daemon that queues sweep jobs and leases shards to a
// fleet of pull-based workers, the worker itself, and thin verbs for
// submitting and following jobs. The spec and artifact formats are
// exactly cmd/crnsweep's (internal/sweepfile), and the service's
// contract is byte-identity: the merged result of a job equals the
// output of an in-process crn.Sweep of the same spec, no matter how
// many workers ran it or how many leases expired along the way.
//
// A minimal fleet:
//
//	crnsweepd serve  -addr 127.0.0.1:8471 -spool /var/tmp/crnspool &
//	crnsweepd worker -connect 127.0.0.1:8471 -name w1 &
//	crnsweepd worker -connect 127.0.0.1:8471 -name w2 &
//	id=$(crnsweepd submit -connect 127.0.0.1:8471 -spec spec.json -shards 4)
//	crnsweepd wait   -connect 127.0.0.1:8471 -job "$id" -out merged.json
//
// The daemon shuts down gracefully on SIGINT/SIGTERM; because every
// job's state lives in the spool, restarting it on the same -spool
// resumes in-flight jobs without re-running shards that already
// produced valid artifacts. Workers exit on SIGINT/SIGTERM too; any
// shard they held is re-dispatched when its lease expires.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crn/internal/sweepd"
	"crn/internal/sweepfile"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crnsweepd:", err)
		os.Exit(1)
	}
}

const usage = `usage: crnsweepd <serve|worker|submit|status|result|wait> [flags]

  serve  -spool <dir> [-addr host:port] [-lease d] [-maxattempts n]
         run the orchestrator daemon (restart on the same -spool resumes jobs)
  worker -connect <addr> [-name s] [-workers n] [-poll d] [-maxshards n]
         run a worker: lease shards, execute, upload artifacts, heartbeat
  submit -connect <addr> -spec <file> [-shards k]
         queue a sweep; prints the job id
  status -connect <addr> [-job id]
         show one job (or all jobs) with per-shard state
  result -connect <addr> -job <id> [-out file]
         fetch a finished job's merged result (verbatim bytes)
  wait   -connect <addr> -job <id> [-out file] [-poll d]
         block until the job finishes, then fetch the result
`

func run(ctx context.Context, args []string, w io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand\n%s", usage)
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "serve":
		return cmdServe(ctx, rest, w)
	case "worker":
		return cmdWorker(ctx, rest, w)
	case "submit":
		return cmdSubmit(ctx, rest, w)
	case "status":
		return cmdStatus(ctx, rest, w)
	case "result":
		return cmdResult(ctx, rest, w)
	case "wait":
		return cmdWait(ctx, rest, w)
	case "help", "-h", "-help", "--help":
		fmt.Fprint(w, usage)
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q\n%s", cmd, usage)
	}
}

func cmdServe(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("crnsweepd serve", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		addr        = fs.String("addr", "127.0.0.1:8471", "listen address")
		spool       = fs.String("spool", "", "job spool directory (required)")
		leaseTTL    = fs.Duration("lease", 60*time.Second, "shard lease TTL; expired leases are re-dispatched")
		maxAttempts = fs.Int("maxattempts", 5, "lease attempts per shard before the job fails")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *spool == "" {
		return fmt.Errorf("serve: -spool is required")
	}
	logger := log.New(os.Stderr, "", log.LstdFlags)
	srv, err := sweepd.New(sweepd.Config{
		Spool:       *spool,
		LeaseTTL:    *leaseTTL,
		MaxAttempts: *maxAttempts,
		Log:         logger,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(w, "crnsweepd: serving on %s (spool %s, lease %v)\n", ln.Addr(), *spool, *leaseTTL)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Printf("sweepd: signal received, draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(w, "crnsweepd: stopped cleanly (spool preserved; restart to resume)")
	return nil
}

func cmdWorker(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("crnsweepd worker", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		connect   = fs.String("connect", "", "daemon address (required)")
		name      = fs.String("name", "", "worker name (default: host-pid)")
		workers   = fs.Int("workers", 0, "per-shard simulation pool size (0: GOMAXPROCS); never affects bytes")
		poll      = fs.Duration("poll", 200*time.Millisecond, "idle re-poll interval")
		maxShards = fs.Int("maxshards", 0, "exit after completing n shards (0: run until signalled)")
		abandon   = fs.Int("abandon", 0, "exit after acquiring the nth lease without completing it (straggler simulation)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *connect == "" {
		return fmt.Errorf("worker: -connect is required")
	}
	if *name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	c := sweepd.NewClient(*connect)
	if err := c.WaitReady(ctx, 10*time.Second); err != nil {
		return err
	}
	wk := &sweepd.Worker{
		Client:       c,
		Name:         *name,
		Workers:      *workers,
		Poll:         *poll,
		MaxShards:    *maxShards,
		AbandonAfter: *abandon,
		Log:          log.New(os.Stderr, "", log.LstdFlags),
	}
	fmt.Fprintf(w, "crnsweepd: worker %s pulling from %s\n", *name, *connect)
	return wk.Run(ctx)
}

func cmdSubmit(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("crnsweepd submit", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		connect  = fs.String("connect", "", "daemon address (required)")
		specPath = fs.String("spec", "", "sweep spec file (JSON, required)")
		shards   = fs.Int("shards", 1, "shard count to plan")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *connect == "" || *specPath == "" {
		return fmt.Errorf("submit: -connect and -spec are required")
	}
	sf, err := sweepfile.LoadSpec(*specPath)
	if err != nil {
		return err
	}
	c := sweepd.NewClient(*connect)
	if err := c.WaitReady(ctx, 10*time.Second); err != nil {
		return err
	}
	id, err := c.Submit(ctx, sf, *shards)
	if err != nil {
		return err
	}
	// Bare id on stdout: `id=$(crnsweepd submit ...)` just works.
	fmt.Fprintln(w, id)
	return nil
}

func printStatus(w io.Writer, st *sweepd.JobStatus) {
	fmt.Fprintf(w, "job %s  %-8s %d/%d shards done  %d runs  plan %s\n",
		st.ID, st.State, st.Done, st.Total, st.Runs, st.PlanHash)
	for _, sh := range st.Shards {
		line := fmt.Sprintf("  shard %-3d %-8s attempts=%d", sh.Shard, sh.State, sh.Attempts)
		if sh.Worker != "" {
			line += " worker=" + sh.Worker
		}
		fmt.Fprintln(w, line)
	}
	if st.Error != "" {
		fmt.Fprintf(w, "  error: %s\n", st.Error)
	}
}

func cmdStatus(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("crnsweepd status", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		connect = fs.String("connect", "", "daemon address (required)")
		jobID   = fs.String("job", "", "job id (default: list all jobs)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *connect == "" {
		return fmt.Errorf("status: -connect is required")
	}
	c := sweepd.NewClient(*connect)
	if *jobID != "" {
		st, err := c.Status(ctx, *jobID)
		if err != nil {
			return err
		}
		printStatus(w, st)
		return nil
	}
	list, err := c.Jobs(ctx)
	if err != nil {
		return err
	}
	if len(list.Jobs) == 0 {
		fmt.Fprintln(w, "no jobs")
		return nil
	}
	for i := range list.Jobs {
		printStatus(w, &list.Jobs[i])
	}
	return nil
}

// fetchResult writes a finished job's merged bytes verbatim to -out
// (or stdout) — verbatim is the point: the file must byte-match an
// in-process sweep's output.
func fetchResult(ctx context.Context, c *sweepd.Client, jobID, out string, w io.Writer) error {
	_, doc, err := c.Result(ctx, jobID)
	if err != nil {
		return err
	}
	if out == "" {
		_, err = w.Write(doc)
		return err
	}
	if err := sweepfile.WriteFileAtomic(out, doc); err != nil {
		return err
	}
	fmt.Fprintf(w, "job %s result → %s\n", jobID, out)
	return nil
}

func cmdResult(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("crnsweepd result", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		connect = fs.String("connect", "", "daemon address (required)")
		jobID   = fs.String("job", "", "job id (required)")
		out     = fs.String("out", "", "output file (default: print to stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *connect == "" || *jobID == "" {
		return fmt.Errorf("result: -connect and -job are required")
	}
	return fetchResult(ctx, sweepd.NewClient(*connect), *jobID, *out, w)
}

func cmdWait(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("crnsweepd wait", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		connect = fs.String("connect", "", "daemon address (required)")
		jobID   = fs.String("job", "", "job id (required)")
		out     = fs.String("out", "", "result output file (default: print to stdout)")
		poll    = fs.Duration("poll", 500*time.Millisecond, "status poll interval")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *connect == "" || *jobID == "" {
		return fmt.Errorf("wait: -connect and -job are required")
	}
	c := sweepd.NewClient(*connect)
	if err := c.WaitReady(ctx, 10*time.Second); err != nil {
		return err
	}
	st, err := c.Wait(ctx, *jobID, *poll)
	if err != nil {
		return err
	}
	if *out != "" { // keep stdout pure JSON when the result goes there
		fmt.Fprintf(w, "job %s done: %d/%d shards\n", st.ID, st.Done, st.Total)
	}
	return fetchResult(ctx, c, *jobID, *out, w)
}
