package main

import (
	"io"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}, io.Discard); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestRunUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "galactic"}, io.Discard); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "E99"}, io.Discard); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}, io.Discard); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunSingleQuickExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	if err := run([]string{"-scale", "quick", "-run", "E10", "-seed", "3"}, io.Discard); err != nil {
		t.Fatalf("quick E10: %v", err)
	}
}

func TestRunBenchBadFormat(t *testing.T) {
	if err := run([]string{"-bench", "-format", "yaml"}, io.Discard); err == nil {
		t.Error("unknown bench format accepted")
	}
}

func TestRunCompareRequiresBench(t *testing.T) {
	if err := run([]string{"-compare", "BENCH_4.json"}, io.Discard); err == nil {
		t.Error("-compare without -bench accepted")
	}
	if err := run([]string{"-bench", "-compare", "/nonexistent.json"}, io.Discard); err == nil {
		t.Error("missing baseline accepted")
	}
}

func TestCompareReports(t *testing.T) {
	baseline := BenchReport{Results: []BenchResult{
		{Name: "engine/slot", NsPerOp: 3000, AllocsPerOp: 0},
		{Name: "primitive/cseek", NsPerOp: 16e6, AllocsPerOp: 400},
		{Name: "retired/bench", NsPerOp: 1, AllocsPerOp: 1},
	}}

	// Within thresholds: the zero-alloc baseline stays at zero, the
	// nonzero one has headroom, a fresh benchmark has no baseline,
	// time is slower but only warns.
	ok := BenchReport{Results: []BenchResult{
		{Name: "engine/slot", NsPerOp: 4000, AllocsPerOp: 0},
		{Name: "primitive/cseek", NsPerOp: 30e6, AllocsPerOp: 500},
		{Name: "primitive/new", NsPerOp: 1, AllocsPerOp: 99},
	}}
	var out strings.Builder
	if err := compareReports(&out, baseline, ok); err != nil {
		t.Fatalf("within-threshold report failed: %v", err)
	}
	for _, want := range []string{"WARN", "primitive/new", "retired/bench"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("compare output missing %q:\n%s", want, out.String())
		}
	}

	// A zero-alloc hot loop growing even one alloc/op is a real
	// per-iteration regression (allocs/op is already amortized): fail,
	// and name the benchmark.
	bad := BenchReport{Results: []BenchResult{
		{Name: "engine/slot", NsPerOp: 3000, AllocsPerOp: 1},
		{Name: "primitive/cseek", NsPerOp: 16e6, AllocsPerOp: 400},
	}}
	err := compareReports(io.Discard, baseline, bad)
	if err == nil {
		t.Fatal("allocation regression passed the gate")
	}
	if !strings.Contains(err.Error(), "engine/slot") {
		t.Errorf("regression error does not name the benchmark: %v", err)
	}

	// A nonzero baseline regressing past 1.5× + slack fails too.
	bloat := BenchReport{Results: []BenchResult{
		{Name: "engine/slot", NsPerOp: 3000, AllocsPerOp: 0},
		{Name: "primitive/cseek", NsPerOp: 16e6, AllocsPerOp: 700},
	}}
	if err := compareReports(io.Discard, baseline, bloat); err == nil {
		t.Error("1.75x allocation growth passed the gate")
	}

	// Time-only regressions never fail.
	slow := BenchReport{Results: []BenchResult{
		{Name: "engine/slot", NsPerOp: 30000, AllocsPerOp: 0},
		{Name: "primitive/cseek", NsPerOp: 160e6, AllocsPerOp: 400},
	}}
	if err := compareReports(io.Discard, baseline, slow); err != nil {
		t.Errorf("time-only regression failed the gate: %v", err)
	}
}

// TestCompareReportsRenames pins the rename/addition semantics in both
// directions: a benchmark present only in the current run and one
// present only in the baseline each produce a clear NOTE and neither
// gates — renaming a benchmark must not brick CI, in either direction.
func TestCompareReportsRenames(t *testing.T) {
	baseline := BenchReport{Results: []BenchResult{
		{Name: "engine/slot", NsPerOp: 3000, AllocsPerOp: 0},
		{Name: "engine/old-name", NsPerOp: 5000, AllocsPerOp: 3},
	}}
	current := BenchReport{Results: []BenchResult{
		{Name: "engine/slot", NsPerOp: 3100, AllocsPerOp: 0},
		{Name: "engine/new-name", NsPerOp: 4000, AllocsPerOp: 900},
	}}
	var out strings.Builder
	if err := compareReports(&out, baseline, current); err != nil {
		t.Fatalf("rename in both directions failed the gate: %v", err)
	}
	for _, want := range []string{
		"engine/new-name", "no baseline entry",
		"engine/old-name", "not in this run",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("compare output missing %q:\n%s", want, out.String())
		}
	}
}

// TestCompareReportsSkipped: entries skipped on either side (e.g.
// sweep/workers beyond the host's GOMAXPROCS) are excluded from the
// gate with an explicit SKIP line — even when the other side carries a
// number that would otherwise regress.
func TestCompareReportsSkipped(t *testing.T) {
	baseline := BenchReport{Results: []BenchResult{
		{Name: "sweep/workers=4", NsPerOp: 500e6, AllocsPerOp: 100},
		{Name: "sweep/workers=8", Skipped: true, Note: "workers=8 exceeds GOMAXPROCS=4"},
	}}
	current := BenchReport{Results: []BenchResult{
		// Skipped now, was measured in the baseline: no comparison.
		{Name: "sweep/workers=4", Skipped: true, Note: "workers=4 exceeds GOMAXPROCS=1"},
		// Measured now with what would be an allocation regression,
		// but the baseline was skipped: nothing to gate against.
		{Name: "sweep/workers=8", NsPerOp: 900e6, AllocsPerOp: 99999},
	}}
	var out strings.Builder
	if err := compareReports(&out, baseline, current); err != nil {
		t.Fatalf("skipped entries gated: %v", err)
	}
	if got := strings.Count(out.String(), "SKIP"); got != 2 {
		t.Errorf("want 2 SKIP lines, got %d:\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "exceeds GOMAXPROCS") {
		t.Errorf("SKIP lines do not carry the skip note:\n%s", out.String())
	}
}
