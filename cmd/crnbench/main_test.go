package main

import (
	"io"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}, io.Discard); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestRunUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "galactic"}, io.Discard); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "E99"}, io.Discard); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}, io.Discard); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunSingleQuickExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	if err := run([]string{"-scale", "quick", "-run", "E10", "-seed", "3"}, io.Discard); err != nil {
		t.Fatalf("quick E10: %v", err)
	}
}

func TestRunBenchBadFormat(t *testing.T) {
	if err := run([]string{"-bench", "-format", "yaml"}, io.Discard); err == nil {
		t.Error("unknown bench format accepted")
	}
}
