package main

// The -bench mode: in-process micro/macro benchmarks of the simulator
// hot paths, emitted as a machine-readable report. Where `go test
// -bench` needs the toolchain and a test binary, `crnbench -bench`
// runs anywhere the CLI does (CI smoke steps, perf dashboards) and
// reports the metric the ROADMAP cares about — node-slots per second
// through the radio engine — alongside ns/op and allocs/op.
//
// The suite mirrors the repository benchmarks so numbers are
// comparable: the raw engine slot loop (BenchmarkEngineSlot), CSEEK
// discovery and CGCAST broadcast end-to-end through the public
// Primitive API (BenchmarkDiscoverCSeek / BenchmarkBroadcastCGCast),
// and the sweep engine at 1/2/4/8 workers (BenchmarkSweep).

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"

	"crn"
	"crn/internal/chanassign"
	"crn/internal/dynamics"
	"crn/internal/graph"
	"crn/internal/radio"
	"crn/internal/rng"
)

// BenchResult is one benchmark measurement in the JSON report.
type BenchResult struct {
	// Name identifies the benchmark, in go-test style ("engine/slot").
	Name string `json:"name"`
	// NsPerOp is wall time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per operation.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// BytesPerOp is heap bytes per operation.
	BytesPerOp int64 `json:"bytes_per_op"`
	// NodeSlotsPerSec is simulated node-slots per wall second, the
	// engine throughput metric (0 where not applicable).
	NodeSlotsPerSec float64 `json:"node_slots_per_sec,omitempty"`
	// N is the iteration count the measurement averaged over.
	N int `json:"n"`
	// Skipped marks a benchmark that did not run on this host, with
	// Note saying why (e.g. a parallelism axis beyond GOMAXPROCS —
	// measuring it would only restate the serial number and flatten
	// the scaling curve dishonestly).
	Skipped bool   `json:"skipped,omitempty"`
	Note    string `json:"note,omitempty"`
}

// BenchReport is the full -bench output.
type BenchReport struct {
	// GoMaxProcs records the host parallelism the suite ran under.
	// Scaling-axis numbers (sweep/workers=N) are only meaningful up to
	// this value; the suite skips the rest rather than reporting a
	// flat curve that just restates the serial measurement.
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	// Results holds one entry per benchmark.
	Results []BenchResult `json:"results"`
}

// benchSpec couples a benchmark with the node-slot volume one
// operation simulates (0 when node-slots/sec is not meaningful).
// A non-empty skip note turns the spec into a skipped report entry.
// reps > 1 runs the benchmark that many times and reports the fastest
// run — microsecond-scale engine loops are cheap to repeat and the
// minimum strips scheduler noise that a single 1-second run folds into
// the number; the minutes-long primitive and sweep specs stay at 1.
type benchSpec struct {
	name        string
	nodeSlotsOp float64
	fn          func(b *testing.B)
	skip        string
	reps        int
}

func benchSuite() ([]benchSpec, error) {
	// Engine slot loop: 64 nodes of scripted random traffic, the same
	// instance BenchmarkEngineSlot uses.
	engineBench := func(b *testing.B) {
		g, a, err := benchTopology()
		if err != nil {
			b.Fatal(err)
		}
		master := rng.New(1)
		protos := make([]radio.Protocol, 64)
		for i := range protos {
			protos[i] = benchRandomProto(master.Split(uint64(i)), 8)
		}
		e, err := radio.NewEngine(&radio.Network{Graph: g, Assign: a}, protos)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		e.Run(int64(b.N))
	}

	// The same engine workload under topology dynamics (churn + link
	// flapping), isolating the per-slot cost of the dynamics path:
	// feed stepping, mutable-view probes, partition-loss accounting.
	dynamicsBench := func(b *testing.B) {
		g, a, err := benchTopology()
		if err != nil {
			b.Fatal(err)
		}
		master := rng.New(1)
		protos := make([]radio.Protocol, 64)
		for i := range protos {
			protos[i] = benchRandomProto(master.Split(uint64(i)), 8)
		}
		churn, err := dynamics.NewChurn(64, 0.002, 0.05, 4)
		if err != nil {
			b.Fatal(err)
		}
		flap, err := dynamics.NewEdgeFlap(g.Edges(), 0.005, 0.1, 5)
		if err != nil {
			b.Fatal(err)
		}
		e, err := radio.NewEngine(&radio.Network{
			Graph: g, Assign: a, Topology: dynamics.Compose(churn, flap),
		}, protos)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		e.Run(int64(b.N))
	}

	gnp, err := crn.New(crn.WithTopology(crn.GNP), crn.WithNodes(16), crn.WithChannels(5, 2, 0), crn.WithSeed(7))
	if err != nil {
		return nil, err
	}
	mobile, err := crn.New(
		crn.WithTopology(crn.UnitDisk), crn.WithNodes(16), crn.WithChannels(5, 2, 0),
		crn.WithDensity(0.45), crn.WithSeed(7),
		crn.WithChurn(0.002, 0.05, 4), crn.WithMobility(0.004, 4, 5),
	)
	if err != nil {
		return nil, err
	}
	chain, err := crn.New(crn.WithTopology(crn.Chain), crn.WithNodes(16), crn.WithChannels(4, 2, 0), crn.WithSeed(7))
	if err != nil {
		return nil, err
	}
	ctx := context.Background()

	// End-to-end primitives, matching the facade benchmarks: the
	// node-slot volume per op is the scenario's node count times the
	// slots one run executes (measured once up front).
	cseek := crn.Discovery(crn.CSeek)
	cseekRes, err := cseek.Run(ctx, gnp, 1)
	if err != nil {
		return nil, err
	}
	cseekSlots := cseekRes.ScheduleSlots
	if cseekRes.CompletedAtSlot >= 0 {
		cseekSlots = cseekRes.CompletedAtSlot
	}
	cgcast := crn.GlobalBroadcast(0, "m")

	// Kernel slot loop: the same 64-node graph driven by deterministic
	// scripted protocols (arithmetic role rotation, no rng, a declared
	// FixedSchedule bound) behind a range-ABI bank, isolating the engine
	// kernel — range dispatch, index build, bitset-row resolution — from
	// the random-traffic protocol cost that dominates engine/slot. This
	// is the entry the ROADMAP's 100M node-slots/sec target gates on.
	kernelBench := func(b *testing.B) {
		g, a, err := benchTopology()
		if err != nil {
			b.Fatal(err)
		}
		e, err := radio.NewEngine(&radio.Network{Graph: g, Assign: a}, kernelProtos(64, 8, true))
		if err != nil {
			b.Fatal(err)
		}
		if !e.RangeDispatch() {
			b.Fatal("kernel bank not detected")
		}
		b.ReportAllocs()
		b.ResetTimer()
		e.Run(int64(b.N))
	}

	// The engine/slot workload (rng-drawing random traffic) behind a
	// range bank: against engine/slot this isolates what the batch-aware
	// ABI buys on realistic protocols, where the protocol itself still
	// pays rng draws per action.
	rangeBench := func(b *testing.B) {
		g, a, err := benchTopology()
		if err != nil {
			b.Fatal(err)
		}
		protos := benchRandomBankedProtos(64, 8, rng.New(1))
		e, err := radio.NewEngine(&radio.Network{Graph: g, Assign: a}, protos)
		if err != nil {
			b.Fatal(err)
		}
		if !e.RangeDispatch() {
			b.Fatal("rand bank not detected")
		}
		b.ReportAllocs()
		b.ResetTimer()
		e.Run(int64(b.N))
	}

	// The kernel workload batched: 8 replicas of the same scenario
	// fused into one BatchEngine pass, the execution strategy behind
	// SweepSpec.Batch. One op is one fused slot — 8×64 node-slots.
	// Deliberately per-node dispatch: together with engine/slot-kernel
	// it brackets the fallback and range ABIs.
	const batchReplicas = 8
	batchBench := func(b *testing.B) {
		g, a, err := benchTopology()
		if err != nil {
			b.Fatal(err)
		}
		reps := make([]radio.Replica, batchReplicas)
		for r := range reps {
			reps[r] = radio.Replica{Protocols: kernelProtos(64, 8, false)}
		}
		e, err := radio.NewBatchEngine(g, a, reps)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		e.Run(int64(b.N))
	}

	// Dynamic-topology batching: 8 replicas of the slot-dynamics
	// workload — random traffic under churn + link flapping, one private
	// feed and graph clone per replica — through one fused pass. Against
	// engine/slot-dynamics this prices the per-replica reconciliation
	// the batch engine now performs instead of falling back to
	// sequential runs.
	batchDynBench := func(b *testing.B) {
		g, a, err := benchTopology()
		if err != nil {
			b.Fatal(err)
		}
		reps := make([]radio.Replica, batchReplicas)
		for r := range reps {
			master := rng.New(uint64(100 + r))
			protos := make([]radio.Protocol, 64)
			for i := range protos {
				protos[i] = benchRandomProto(master.Split(uint64(i)), 8)
			}
			churn, err := dynamics.NewChurn(64, 0.002, 0.05, uint64(40+r))
			if err != nil {
				b.Fatal(err)
			}
			flap, err := dynamics.NewEdgeFlap(g.Edges(), 0.005, 0.1, uint64(50+r))
			if err != nil {
				b.Fatal(err)
			}
			reps[r] = radio.Replica{Protocols: protos, Topology: dynamics.Compose(churn, flap)}
		}
		e, err := radio.NewBatchEngine(g, a, reps)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		e.Run(int64(b.N))
	}

	specs := []benchSpec{
		{
			name:        "engine/slot",
			reps:        3,
			nodeSlotsOp: 64,
			fn:          engineBench,
		},
		{
			name:        "engine/slot-dynamics",
			reps:        3,
			nodeSlotsOp: 64,
			fn:          dynamicsBench,
		},
		{
			name:        "engine/slot-kernel",
			reps:        3,
			nodeSlotsOp: 64,
			fn:          kernelBench,
		},
		{
			name:        "engine/slot-range",
			reps:        3,
			nodeSlotsOp: 64,
			fn:          rangeBench,
		},
		{
			name:        "engine/slot-batch",
			reps:        3,
			nodeSlotsOp: batchReplicas * 64,
			fn:          batchBench,
		},
		{
			name:        "engine/slot-batch-dynamics",
			reps:        3,
			nodeSlotsOp: batchReplicas * 64,
			fn:          batchDynBench,
		},
		{
			name:        "primitive/cseek",
			nodeSlotsOp: float64(gnp.N()) * float64(cseekSlots),
			fn: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := cseek.Run(ctx, gnp, uint64(i)); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			name: "primitive/cseek-dynamic",
			fn: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := cseek.Run(ctx, mobile, uint64(i)); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			name: "primitive/cgcast",
			fn: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := cgcast.Run(ctx, chain, uint64(i)); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
	}
	// The sweep scaling axis. Worker counts beyond the host's
	// GOMAXPROCS cannot add parallelism — goroutines just time-share
	// the same CPUs and the measurement restates the serial number —
	// so those points are SKIPped with an explicit note instead of
	// being reported as a deceptively flat curve.
	maxProcs := runtime.GOMAXPROCS(0)
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		spec := benchSpec{
			name:        fmt.Sprintf("sweep/workers=%d", workers),
			nodeSlotsOp: 32 * float64(gnp.N()) * float64(cseekSlots),
			fn: func(b *testing.B) {
				spec := crn.SweepSpec{
					Primitive: crn.Discovery(crn.CSeek),
					Variants:  []crn.Variant{{Name: "gnp16", Scenario: gnp}},
					Seeds:     32,
					BaseSeed:  11,
					Workers:   workers,
				}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := crn.Sweep(ctx, spec)
					if err != nil {
						b.Fatal(err)
					}
					if res.Aggregates[0].Failures != 0 {
						b.Fatalf("%d sweep failures", res.Aggregates[0].Failures)
					}
				}
			},
		}
		if workers > maxProcs {
			spec.skip = fmt.Sprintf("workers=%d exceeds GOMAXPROCS=%d: no parallelism to measure", workers, maxProcs)
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// benchTopology is the shared 64-node instance behind the engine/*
// benchmarks, so kernel and batch numbers are directly comparable to
// the random-traffic slot loop.
func benchTopology() (*graph.Graph, *chanassign.Assignment, error) {
	g, err := graph.GNP(64, 0.15, rng.New(2))
	if err != nil {
		return nil, nil, err
	}
	a, err := chanassign.SharedPool(64, 8, 2, 30, rng.New(3))
	if err != nil {
		return nil, nil, err
	}
	return g, a, nil
}

// benchRandomProto is a never-finishing random-traffic protocol for
// the engine benchmark.
func benchRandomProto(r *rng.Source, c int) radio.Protocol {
	return &randProto{r: r, c: c}
}

type randProto struct {
	r    *rng.Source
	c    int
	bank *randBank
	idx  int
}

func (p *randProto) Act(_ int64) radio.Action {
	switch p.r.Intn(3) {
	case 0:
		return radio.Action{Kind: radio.Idle}
	case 1:
		return radio.Action{Kind: radio.Listen, Ch: p.r.Intn(p.c)}
	default:
		return radio.Action{Kind: radio.Broadcast, Ch: p.r.Intn(p.c)}
	}
}

func (p *randProto) Observe(_ int64, _ *radio.Message) {}
func (p *randProto) Done() bool                        { return false }

// RangeBank implements radio.RangeNode.
func (p *randProto) RangeBank() (radio.RangeProtocol, int) {
	if p.bank == nil {
		return nil, 0
	}
	return p.bank, p.idx
}

// randBank is the range-ABI bank over the random-traffic protocols:
// the engine/slot-range entry, isolating what the batch-aware dispatch
// buys on realistic (rng-drawing) protocols versus engine/slot.
type randBank struct{ nodes []*randProto }

func (b *randBank) ActRange(slot int64, lo, hi int, acts []radio.Action) {
	for u := lo; u < hi; u++ {
		acts[u] = b.nodes[u].Act(slot)
	}
}

func (b *randBank) ObserveRange(_ int64, _, _ int, _ []radio.Delivery) {}

// benchRandomBankedProtos builds n random-traffic protocols behind one
// shared bank (range dispatch).
func benchRandomBankedProtos(n, c int, master *rng.Source) []radio.Protocol {
	bank := &randBank{nodes: make([]*randProto, n)}
	protos := make([]radio.Protocol, n)
	for i := range protos {
		bank.nodes[i] = &randProto{r: master.Split(uint64(i)), c: c, bank: bank, idx: i}
		protos[i] = bank.nodes[i]
	}
	return protos
}

// kernelProto is a deterministic scripted protocol: the node's role
// and channel rotate arithmetically with (id, slot), so Act costs a
// few ALU ops instead of rng draws, and the benchmark's time is spent
// in the engine kernel rather than the protocol. It never finishes and
// declares so via FixedSchedule, which lets the engine skip the
// per-slot Done poll. The per-node state lives in the bank's flat
// arrays either way; banked only controls whether the engine is told
// about the bank (range vs per-node dispatch of the same machines).
type kernelProto struct {
	id     int
	bank   *kernelBank
	banked bool
}

func (p *kernelProto) Act(_ int64) radio.Action {
	b := p.bank
	s := int(b.slots[p.id])
	b.slots[p.id] = int64(s) + 1
	switch (p.id + s) & 3 {
	case 0:
		return radio.Action{Kind: radio.Broadcast, Ch: s & b.cMask, Data: b.frames[p.id]}
	case 1, 2:
		return radio.Action{Kind: radio.Listen, Ch: (p.id + s) & b.cMask}
	default:
		return radio.Action{Kind: radio.Idle}
	}
}

func (p *kernelProto) Observe(_ int64, _ *radio.Message) {}
func (p *kernelProto) Done() bool                        { return false }
func (p *kernelProto) MinDoneSlots() int64               { return 1 << 62 }

// RangeBank implements radio.RangeNode.
func (p *kernelProto) RangeBank() (radio.RangeProtocol, int) {
	if !p.banked {
		return nil, 0
	}
	return p.bank, p.id
}

// kernelBank is the range-ABI bank over the kernel workload: per-node
// state is struct-of-arrays (slot counters and preboxed frames in flat
// slices), so ActRange is one branch-plus-store pass with no per-node
// pointer chase, and the observe side is a no-op — the per-protocol
// cost floor, leaving the benchmark to measure the engine kernel
// alone. This is the dispatch mode behind the ROADMAP's 100M
// node-slots/sec target.
type kernelBank struct {
	// cMask is c-1: the benchmark pins c to a power of two so the
	// channel rotation is a mask, not a hardware divide per node-slot
	// (a DIV is ~half the whole per-node kernel budget).
	cMask  int
	slots  []int64
	frames []any
}

func (b *kernelBank) ActRange(_ int64, lo, hi int, acts []radio.Action) {
	cMask := b.cMask
	slots := b.slots
	frames := b.frames
	for u := lo; u < hi; u++ {
		s := int(slots[u])
		slots[u] = int64(s) + 1
		switch (u + s) & 3 {
		case 0:
			acts[u] = radio.Action{Kind: radio.Broadcast, Ch: s & cMask, Data: frames[u]}
		case 1, 2:
			acts[u] = radio.Action{Kind: radio.Listen, Ch: (u + s) & cMask}
		default:
			acts[u] = radio.Action{Kind: radio.Idle}
		}
	}
}

func (b *kernelBank) ObserveRange(_ int64, _, _ int, _ []radio.Delivery) {}

// kernelProtos builds the scripted kernel workload; banked shares a
// kernelBank across the set (range dispatch), matching how the facade
// now runs the core protocols.
func kernelProtos(n, c int, banked bool) []radio.Protocol {
	if c&(c-1) != 0 {
		panic("kernelProtos: c must be a power of two")
	}
	bank := &kernelBank{cMask: c - 1, slots: make([]int64, n), frames: make([]any, n)}
	protos := make([]radio.Protocol, n)
	for i := range protos {
		bank.frames[i] = i
		protos[i] = &kernelProto{id: i, bank: bank, banked: banked}
	}
	return protos
}

// Comparison thresholds for -compare. Wall time on shared CI runners
// is noisy, so time regressions only warn; allocation counts are
// nearly deterministic, so they gate.
const (
	allocFailFactor = 1.5
	allocFailSlack  = 2
	timeWarnFactor  = 1.5
)

// allocLimit is generous for real allocation counts (1.5× plus a
// small slack for integer jitter on tiny baselines) but exact for
// allocation-free ones: allocs/op is already amortized across the
// benchmark's iterations — one-off setup allocations round to 0 —
// so a 0-alloc hot loop reporting even 1 alloc/op is a real
// per-iteration regression, not noise.
func allocLimit(baseline int64) int64 {
	if baseline == 0 {
		return 0
	}
	return int64(float64(baseline)*allocFailFactor) + allocFailSlack
}

// compareReports checks current against baseline: it returns an error
// naming every allocation regression and prints warnings for wall-time
// regressions. Benchmarks without a baseline entry (or baselines
// without a current run) are noted but never fail — renaming a
// benchmark should not brick CI.
func compareReports(w io.Writer, baseline, current BenchReport) error {
	base := make(map[string]BenchResult, len(baseline.Results))
	for _, r := range baseline.Results {
		base[r.Name] = r
	}
	var regressions []string
	for _, cur := range current.Results {
		b, ok := base[cur.Name]
		if !ok {
			fmt.Fprintf(w, "NOTE  %-22s has no baseline entry (new or renamed benchmark; not gated)\n", cur.Name)
			continue
		}
		delete(base, cur.Name)
		if cur.Skipped || b.Skipped {
			// A benchmark skipped on either side has no number to
			// compare — e.g. a scaling point beyond this host's
			// GOMAXPROCS. Never a failure.
			fmt.Fprintf(w, "SKIP  %-22s not compared (current: %s, baseline: %s)\n",
				cur.Name, skipState(cur), skipState(b))
			continue
		}
		if limit := allocLimit(b.AllocsPerOp); cur.AllocsPerOp > limit {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %d allocs/op, baseline %d (limit %d)", cur.Name, cur.AllocsPerOp, b.AllocsPerOp, limit))
			fmt.Fprintf(w, "FAIL  %-22s %d allocs/op exceeds limit %d (baseline %d)\n",
				cur.Name, cur.AllocsPerOp, limit, b.AllocsPerOp)
		}
		if b.NsPerOp > 0 && cur.NsPerOp > b.NsPerOp*timeWarnFactor {
			fmt.Fprintf(w, "WARN  %-22s %.0f ns/op is %.2fx baseline %.0f ns/op (time regressions warn only)\n",
				cur.Name, cur.NsPerOp, cur.NsPerOp/b.NsPerOp, b.NsPerOp)
		}
	}
	for name := range base {
		fmt.Fprintf(w, "NOTE  %-22s in baseline but not in this run (removed or renamed; not gated)\n", name)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d allocation regression(s) against baseline:\n  %s",
			len(regressions), strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(w, "compare: no allocation regressions against baseline\n")
	return nil
}

func skipState(r BenchResult) string {
	if !r.Skipped {
		return "ran"
	}
	if r.Note != "" {
		return "skipped — " + r.Note
	}
	return "skipped"
}

// loadBaseline reads a committed BenchReport (e.g. BENCH_4.json).
func loadBaseline(path string) (BenchReport, error) {
	var report BenchReport
	doc, err := os.ReadFile(path)
	if err != nil {
		return report, err
	}
	if err := json.Unmarshal(doc, &report); err != nil {
		return report, fmt.Errorf("baseline %s: %w", path, err)
	}
	if len(report.Results) == 0 {
		return report, fmt.Errorf("baseline %s has no results", path)
	}
	return report, nil
}

// profileName maps a benchmark name to a profile file stem
// ("engine/slot-kernel" -> "engine-slot-kernel").
func profileName(name string) string {
	return strings.NewReplacer("/", "-", "=", "-").Replace(name)
}

// specProfiler brackets one benchmark spec's measurement with CPU
// and/or heap profiling, writing per-spec pprof files into the given
// directories (created on demand). The CPU profile covers every rep of
// the spec; the heap profile is a post-run snapshot after a forced GC,
// so it shows steady-state retention rather than transient garbage.
type specProfiler struct {
	cpuDir, memDir string
	cpuFile        *os.File
}

func (p *specProfiler) start(name string) error {
	if p.cpuDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(p.cpuDir, profileName(name)+".cpu.pprof"))
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	p.cpuFile = f
	return nil
}

func (p *specProfiler) stop(name string) error {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			return err
		}
		p.cpuFile = nil
	}
	if p.memDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(p.memDir, profileName(name)+".mem.pprof"))
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// runBench executes the benchmark suite and writes the report.
// format is "json" or "text"; out optionally names a file the JSON
// report is additionally written to. In json mode w carries only the
// JSON document (progress lines go to stderr), so the output pipes
// cleanly into jq and friends.
//
// compare optionally names a baseline report (a committed BENCH_*.json)
// to gate against: allocation regressions fail (after the report and
// out file are written, so CI can still archive them), wall-time
// regressions warn. This is the CI bench-regression gate.
//
// cpuDir / memDir, when non-empty, name directories that receive one
// CPU / heap pprof file per benchmark entry (see specProfiler).
func runBench(w io.Writer, format, out, compare, cpuDir, memDir string) error {
	var baseline BenchReport
	if compare != "" {
		// Load before the (minutes-long) suite so a bad path fails fast.
		var err error
		if baseline, err = loadBaseline(compare); err != nil {
			return err
		}
	}
	for _, dir := range []string{cpuDir, memDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
	}
	profiler := &specProfiler{cpuDir: cpuDir, memDir: memDir}
	specs, err := benchSuite()
	if err != nil {
		return err
	}
	progress := w
	if format == "json" {
		progress = os.Stderr
	}
	report := BenchReport{GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, spec := range specs {
		if spec.skip != "" {
			report.Results = append(report.Results, BenchResult{
				Name:    spec.name,
				Skipped: true,
				Note:    spec.skip,
			})
			fmt.Fprintf(progress, "%-22s SKIP: %s\n", spec.name, spec.skip)
			continue
		}
		if err := profiler.start(spec.name); err != nil {
			return err
		}
		r := testing.Benchmark(spec.fn)
		for rep := 1; rep < spec.reps; rep++ {
			r2 := testing.Benchmark(spec.fn)
			if float64(r2.T.Nanoseconds())*float64(r.N) < float64(r.T.Nanoseconds())*float64(r2.N) {
				r = r2
			}
		}
		if err := profiler.stop(spec.name); err != nil {
			return err
		}
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		res := BenchResult{
			Name:        spec.name,
			NsPerOp:     ns,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
		}
		if spec.nodeSlotsOp > 0 && ns > 0 {
			res.NodeSlotsPerSec = spec.nodeSlotsOp / (ns / 1e9)
		}
		report.Results = append(report.Results, res)
		fmt.Fprintf(progress, "%-22s %14.0f ns/op %10d allocs/op %14.3g node-slots/s\n",
			spec.name, res.NsPerOp, res.AllocsPerOp, res.NodeSlotsPerSec)
	}
	if format == "json" || out != "" {
		doc, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		doc = append(doc, '\n')
		if format == "json" {
			if _, err := w.Write(doc); err != nil {
				return err
			}
		}
		if out != "" {
			if err := os.WriteFile(out, doc, 0o644); err != nil {
				return err
			}
		}
	}
	if compare != "" {
		return compareReports(progress, baseline, report)
	}
	return nil
}
