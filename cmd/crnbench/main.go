// Command crnbench regenerates the paper-reproduction experiments
// (E1–E16, see DESIGN.md's experiment index) and prints their tables,
// or — with -bench — runs the performance benchmark suite and emits a
// machine-readable report of the simulator's hot paths.
//
// Usage:
//
//	crnbench [-scale quick|full] [-run E1,E7] [-seed 42] [-list]
//	crnbench -bench [-format json|text] [-out BENCH.json] [-compare BENCH_5.json]
//	         [-cpuprofile DIR] [-memprofile DIR]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"crn/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crnbench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("crnbench", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		scaleName = fs.String("scale", "full", "experiment scale: quick or full")
		runList   = fs.String("run", "", "comma-separated experiment IDs (default: all)")
		seed      = fs.Uint64("seed", 42, "master random seed")
		list      = fs.Bool("list", false, "list experiments and exit")
		bench     = fs.Bool("bench", false, "run the performance benchmark suite instead of experiments")
		format    = fs.String("format", "text", "benchmark report format: text or json")
		out       = fs.String("out", "", "also write the JSON benchmark report to this file")
		compare   = fs.String("compare", "", "baseline BENCH_*.json to gate against: fail on allocs/op regressions, warn on ns/op")
		cpuDir    = fs.String("cpuprofile", "", "directory receiving one CPU pprof file per benchmark entry")
		memDir    = fs.String("memprofile", "", "directory receiving one heap pprof file per benchmark entry")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *bench {
		if *format != "text" && *format != "json" {
			return fmt.Errorf("unknown format %q (want text or json)", *format)
		}
		return runBench(w, *format, *out, *compare, *cpuDir, *memDir)
	}
	if *compare != "" {
		return fmt.Errorf("-compare requires -bench")
	}
	if *cpuDir != "" || *memDir != "" {
		return fmt.Errorf("-cpuprofile/-memprofile require -bench")
	}

	defs := experiments.All()
	if *list {
		for _, d := range defs {
			fmt.Fprintf(w, "%-4s %-34s %s\n", d.ID, d.Title, d.Claim)
		}
		return nil
	}

	var scale experiments.Scale
	switch strings.ToLower(*scaleName) {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		return fmt.Errorf("unknown scale %q (want quick or full)", *scaleName)
	}

	if *runList != "" {
		var selected []experiments.Definition
		for _, id := range strings.Split(*runList, ",") {
			d, ok := experiments.Find(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, d)
		}
		defs = selected
	}

	fmt.Fprintf(w, "# CRN primitives experiment suite (scale=%s, seed=%d)\n\n", *scaleName, *seed)
	for _, d := range defs {
		start := time.Now()
		tbl, err := d.Run(scale, *seed)
		if err != nil {
			return fmt.Errorf("%s: %w", d.ID, err)
		}
		if err := tbl.Render(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "_(%s took %.1fs)_\n\n", d.ID, time.Since(start).Seconds())
	}
	return nil
}
