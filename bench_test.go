package crn_test

// One benchmark per reproduction experiment (DESIGN.md's experiment
// index). Each iteration regenerates the experiment's table at Quick
// scale, so `go test -bench=.` exercises the same code paths
// cmd/crnbench uses, with per-iteration costs comparable across
// changes. Micro-benchmarks for the hot paths live in the internal
// packages (bitset, rng, graph, radio); BenchmarkSweep is the
// concurrency baseline for the sweep engine's worker pool.

import (
	"context"
	"fmt"
	"testing"

	"crn"
	"crn/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	def, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := def.Run(experiments.Quick, uint64(i)+1)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkE1Count regenerates E1 (Lemma 1: COUNT accuracy).
func BenchmarkE1Count(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2SeekVsC regenerates E2 (Theorem 4: scaling in c).
func BenchmarkE2SeekVsC(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3SeekVsDelta regenerates E3 (Theorem 4: scaling in Δ).
func BenchmarkE3SeekVsDelta(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4SeekHeterogeneity regenerates E4 (Theorem 4: kmax/k).
func BenchmarkE4SeekHeterogeneity(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5KSeek regenerates E5 (Theorem 6: CKSEEK filter).
func BenchmarkE5KSeek(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6Coloring regenerates E6 (Lemma 8: coloring phases).
func BenchmarkE6Coloring(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7Broadcast regenerates E7 (Theorem 9: broadcast vs D).
func BenchmarkE7Broadcast(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8BroadcastDelta regenerates E8 (Theorem 9: D·Δ term).
func BenchmarkE8BroadcastDelta(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9HittingGame regenerates E9 (Lemma 10/Theorem 13).
func BenchmarkE9HittingGame(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10CompleteGame regenerates E10 (Lemma 12).
func BenchmarkE10CompleteGame(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11TreeBound regenerates E11 (Theorem 14).
func BenchmarkE11TreeBound(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12PriorityBias regenerates E12 (Section 7 discussion).
func BenchmarkE12PriorityBias(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13Jamming regenerates E13 (primary-user robustness).
func BenchmarkE13Jamming(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE14Rendezvous regenerates E14 (meetings vs deliveries).
func BenchmarkE14Rendezvous(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkE15AsyncStart regenerates E15 (staggered starts).
func BenchmarkE15AsyncStart(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkE16Amortization regenerates E16 (setup amortization).
func BenchmarkE16Amortization(b *testing.B) { benchExperiment(b, "E16") }

// BenchmarkDiscoverCSeek measures an end-to-end CSEEK discovery run
// through the public Primitive API.
func BenchmarkDiscoverCSeek(b *testing.B) {
	s, err := crn.New(crn.WithTopology(crn.GNP), crn.WithNodes(16), crn.WithChannels(5, 2, 0), crn.WithSeed(7))
	if err != nil {
		b.Fatal(err)
	}
	prim := crn.Discovery(crn.CSeek)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prim.Run(ctx, s, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBroadcastCGCast measures an end-to-end CGCAST broadcast
// (abstract exchange mode) through the public Primitive API.
func BenchmarkBroadcastCGCast(b *testing.B) {
	s, err := crn.New(crn.WithTopology(crn.Chain), crn.WithNodes(16), crn.WithChannels(4, 2, 0), crn.WithSeed(7))
	if err != nil {
		b.Fatal(err)
	}
	prim := crn.GlobalBroadcast(0, "m")
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prim.Run(ctx, s, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweep exercises the sweep engine's worker pool at fixed
// work (32 CSEEK discovery runs) and 1/2/4/8 workers — the concurrency
// baseline future performance PRs measure against.
func BenchmarkSweep(b *testing.B) {
	s, err := crn.New(crn.WithTopology(crn.GNP), crn.WithNodes(16), crn.WithChannels(5, 2, 0), crn.WithSeed(7))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			spec := crn.SweepSpec{
				Primitive: crn.Discovery(crn.CSeek),
				Variants:  []crn.Variant{{Name: "gnp16", Scenario: s}},
				Seeds:     32,
				BaseSeed:  11,
				Workers:   workers,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := crn.Sweep(ctx, spec)
				if err != nil {
					b.Fatal(err)
				}
				if res.Aggregates[0].Failures != 0 {
					b.Fatalf("%d failures", res.Aggregates[0].Failures)
				}
			}
		})
	}
}
