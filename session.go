package crn

import (
	"context"

	"crn/internal/core"
	"crn/internal/radio"
)

// BroadcastSession is CGCAST's reusable setup: after one round of
// discovery, dedicated-channel fixing and edge coloring, any number of
// messages can be disseminated from any source, each costing only the
// O~(D·Δ) dissemination schedule. This is where CGCAST's one-time
// setup amortizes against per-broadcast flooding.
type BroadcastSession struct {
	s       *Scenario
	session *core.BroadcastSession
}

// NewBroadcastSession runs CGCAST's setup stages once and returns the
// reusable session.
func (s *Scenario) NewBroadcastSession(seed uint64, opts ...BroadcastOption) (*BroadcastSession, error) {
	return s.NewBroadcastSessionCtx(context.Background(), seed, opts...)
}

// NewBroadcastSessionCtx is NewBroadcastSession with cooperative
// cancellation of the setup stages.
func (s *Scenario) NewBroadcastSessionCtx(ctx context.Context, seed uint64, opts ...BroadcastOption) (*BroadcastSession, error) {
	o := resolveBroadcastOptions(opts)
	session, err := core.PrepareCGCastCtx(ctx, s.runNetwork(), core.SessionConfig{
		Params: s.p,
		Mode:   o.mode,
		Seed:   seed,
	})
	if err != nil {
		return nil, err
	}
	return &BroadcastSession{s: s, session: session}, nil
}

// SetupSlots returns the one-time setup cost in slots.
func (bs *BroadcastSession) SetupSlots() int64 { return bs.session.SetupSlots() }

// EdgesColored returns the number of schedulable (colored) edges.
func (bs *BroadcastSession) EdgesColored() int { return bs.session.EdgesColored() }

// SessionBroadcastResult reports one dissemination over a session.
type SessionBroadcastResult struct {
	// ScheduleSlots is the fixed dissemination length.
	ScheduleSlots int64 `json:"scheduleSlots"`
	// AllInformedAtSlot is when the last node got the message, or -1.
	AllInformedAtSlot int64 `json:"allInformedAtSlot"`
	// AllInformed reports whether every node got the message.
	AllInformed bool `json:"allInformed"`
}

// Broadcast disseminates one message from source over the prepared
// schedule.
func (bs *BroadcastSession) Broadcast(source int, message any, seed uint64) (*SessionBroadcastResult, error) {
	return bs.disseminate(context.Background(), bs.s.d, source, message, seed)
}

// BroadcastCtx is Broadcast with cooperative cancellation.
func (bs *BroadcastSession) BroadcastCtx(ctx context.Context, source int, message any, seed uint64) (*SessionBroadcastResult, error) {
	return bs.disseminate(ctx, bs.s.d, source, message, seed)
}

// LocalBroadcast delivers a message from source to its immediate
// neighbors only: a single phase of the dissemination schedule, the
// local-broadcast primitive the global algorithm repeats D times.
// In the result, AllInformed refers to the source's neighborhood;
// AllInformedAtSlot stays -1 unless the single phase happened to reach
// the whole network (it tracks the global predicate).
func (bs *BroadcastSession) LocalBroadcast(source int, message any, seed uint64) (*SessionBroadcastResult, error) {
	res, err := bs.session.Disseminate(1, radio.NodeID(source), message, seed)
	if err != nil {
		return nil, err
	}
	all := true
	for _, v := range bs.s.g.Neighbors(source) {
		if !res.Informed[v] {
			all = false
			break
		}
	}
	return &SessionBroadcastResult{
		ScheduleSlots:     res.ScheduleSlots,
		AllInformedAtSlot: res.AllInformedAt,
		AllInformed:       all,
	}, nil
}

func (bs *BroadcastSession) disseminate(ctx context.Context, d, source int, message any, seed uint64) (*SessionBroadcastResult, error) {
	res, err := bs.session.DisseminateCtx(ctx, d, radio.NodeID(source), message, seed)
	if err != nil {
		return nil, err
	}
	return &SessionBroadcastResult{
		ScheduleSlots:     res.ScheduleSlots,
		AllInformedAtSlot: res.AllInformedAt,
		AllInformed:       res.AllInformed,
	}, nil
}
