package crn

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseSpectrum turns a "+"-stacked spectrum-model spec — the format
// cmd/crnsim's -spectrum flag and cmd/crnsweep variant specs share —
// into scenario options:
//
//	periodic:<period>,<onSlots> | markov:<pBusy>,<pFree> |
//	poisson:<rate>,<meanHold> | adversary:<t>
//
// Stochastic models derive their occupancy seed from seed, so one
// integer reproduces the whole simulation including the primary
// traffic. Stacked models are decorrelated: each position gets its own
// derived seed, or same-seeded markov+poisson would draw
// byte-identical per-channel random sequences. An empty or "none" spec
// yields no options.
func ParseSpectrum(spec string, seed uint64) ([]ScenarioOption, error) {
	if spec == "" || spec == "none" {
		return nil, nil
	}
	var opts []ScenarioOption
	for i, part := range strings.Split(spec, "+") {
		model, argstr, _ := strings.Cut(strings.TrimSpace(part), ":")
		modelSeed := seed + uint64(i)*0x9E3779B97F4A7C15
		var args []float64
		if argstr != "" && model != "adversary" {
			for _, a := range strings.Split(argstr, ",") {
				v, err := strconv.ParseFloat(strings.TrimSpace(a), 64)
				if err != nil {
					return nil, fmt.Errorf("spectrum spec %q: bad number %q", part, a)
				}
				args = append(args, v)
			}
		}
		switch model {
		case "periodic":
			if len(args) != 2 {
				return nil, fmt.Errorf("spectrum spec %q: want periodic:<period>,<onSlots>", part)
			}
			if args[0] != math.Trunc(args[0]) || args[1] != math.Trunc(args[1]) {
				return nil, fmt.Errorf("spectrum spec %q: periodic slot counts must be integers", part)
			}
			opts = append(opts, WithPeriodicPrimaryUsers(int64(args[0]), int64(args[1])))
		case "markov":
			if len(args) != 2 {
				return nil, fmt.Errorf("spectrum spec %q: want markov:<pBusy>,<pFree>", part)
			}
			opts = append(opts, WithMarkovPrimaryUsers(args[0], args[1], 0, modelSeed))
		case "poisson":
			if len(args) != 2 {
				return nil, fmt.Errorf("spectrum spec %q: want poisson:<rate>,<meanHold>", part)
			}
			opts = append(opts, WithPoissonPrimaryUsers(args[0], args[1], 0, modelSeed))
		case "adversary":
			t := 0
			if argstr != "" {
				v, err := strconv.Atoi(strings.TrimSpace(argstr))
				if err != nil {
					return nil, fmt.Errorf("spectrum spec %q: want adversary:<t> with integer t", part)
				}
				t = v
			}
			opts = append(opts, WithAdversary(t))
		default:
			return nil, fmt.Errorf("spectrum spec %q: unknown model (have periodic, markov, poisson, adversary)", part)
		}
	}
	return opts, nil
}

// ParseDynamics turns a "+"-stacked topology-dynamics spec into
// scenario options:
//
//	churn:<pDown>,<pUp> | flap:<pDrop>,<pRestore> |
//	waypoint:<speed>,<every> (waypoint needs a unit-disk topology)
//
// Models derive their trajectory seed from seed, so one integer
// reproduces the whole simulation including the topology churn. The
// derived seeds are decorrelated from ParseSpectrum's by a domain
// constant — dynamics model i never shares a seed with spectrum model
// i (same-seeded models draw byte-identical per-channel/per-node rng
// streams, correlating primary-user occupancy with churn). An empty or
// "none" spec yields no options.
func ParseDynamics(spec string, seed uint64) ([]ScenarioOption, error) {
	if spec == "" || spec == "none" {
		return nil, nil
	}
	var opts []ScenarioOption
	for i, part := range strings.Split(spec, "+") {
		model, argstr, _ := strings.Cut(strings.TrimSpace(part), ":")
		modelSeed := (seed + uint64(i)*0x9E3779B97F4A7C15) ^ 0xD15EA5ED
		var args []float64
		if argstr != "" {
			for _, a := range strings.Split(argstr, ",") {
				v, err := strconv.ParseFloat(strings.TrimSpace(a), 64)
				if err != nil {
					return nil, fmt.Errorf("dynamics spec %q: bad number %q", part, a)
				}
				args = append(args, v)
			}
		}
		switch model {
		case "churn":
			if len(args) != 2 {
				return nil, fmt.Errorf("dynamics spec %q: want churn:<pDown>,<pUp>", part)
			}
			opts = append(opts, WithChurn(args[0], args[1], modelSeed))
		case "flap":
			if len(args) != 2 {
				return nil, fmt.Errorf("dynamics spec %q: want flap:<pDrop>,<pRestore>", part)
			}
			opts = append(opts, WithEdgeFlap(args[0], args[1], modelSeed))
		case "waypoint":
			if len(args) != 2 {
				return nil, fmt.Errorf("dynamics spec %q: want waypoint:<speed>,<every>", part)
			}
			if args[1] != math.Trunc(args[1]) || args[1] < 1 {
				return nil, fmt.Errorf("dynamics spec %q: epoch stride must be a positive integer", part)
			}
			opts = append(opts, WithMobility(args[0], int64(args[1]), modelSeed))
		default:
			return nil, fmt.Errorf("dynamics spec %q: unknown model (have churn, flap, waypoint)", part)
		}
	}
	return opts, nil
}
