package crn

import (
	"context"
	"fmt"
	"sort"

	"crn/internal/core"
	"crn/internal/dynamics"
	"crn/internal/radio"
	"crn/internal/rng"
)

// Primitive is a runnable communication primitive: one of the paper's
// algorithms (or a baseline), packaged so every entry point — the CLI,
// the experiment harness, the sweep engine — runs it the same way and
// receives the same Result envelope.
//
// Run executes the primitive once over the scenario with the given
// seed. It honors ctx: the engines poll for cancellation every 16
// sub-microsecond slots, so even slot-budgets in the millions stop
// within microseconds. Run is safe for concurrent use with distinct
// seeds over a shared Scenario.
type Primitive interface {
	// Name identifies the primitive ("cseek", "ckseek", "cgcast", ...).
	Name() string
	// Run executes one simulation and reports the common Result.
	Run(ctx context.Context, s *Scenario, seed uint64) (*Result, error)
}

// Discovery returns the neighbor-discovery primitive: every node
// learns the identities of all its neighbors. The empty Algorithm
// selects CSeek.
func Discovery(algo Algorithm) Primitive { return discoveryPrimitive{algo: algo} }

type discoveryPrimitive struct{ algo Algorithm }

func (p discoveryPrimitive) Name() string {
	if p.algo == "" {
		return string(CSeek)
	}
	return string(p.algo)
}

func (p discoveryPrimitive) mk(s *Scenario) func(core.Env) (core.Discoverer, error) {
	return func(env core.Env) (core.Discoverer, error) {
		switch p.algo {
		case CSeek, "":
			return core.NewCSeek(s.p, env)
		case Naive:
			return core.NewNaiveSeek(s.p, env)
		case Uniform:
			return core.NewUniformSeek(s.p, env)
		default:
			return nil, fmt.Errorf("crn: unknown algorithm %q", p.algo)
		}
	}
}

func (p discoveryPrimitive) Run(ctx context.Context, s *Scenario, seed uint64) (*Result, error) {
	return runDiscovery(ctx, s, p.Name(), p.mk(s), nil, seed)
}

// RunBatch implements batchRunner: the sweep engine fuses several
// same-scenario runs into one radio.BatchEngine pass.
func (p discoveryPrimitive) RunBatch(ctx context.Context, s *Scenario, seeds []uint64) ([]*Result, error) {
	return runDiscoveryBatch(ctx, s, p.Name(), p.mk(s), nil, seeds)
}

// KDiscovery returns the k̂-neighbor-discovery primitive (CKSEEK,
// Theorem 6): every node finds (at least) all neighbors sharing at
// least khat channels with it. The result counts only those "good"
// pairs, and the run completes when every good pair is found.
func KDiscovery(khat int) Primitive { return kDiscoveryPrimitive{khat: khat} }

type kDiscoveryPrimitive struct{ khat int }

func (p kDiscoveryPrimitive) Name() string { return "ckseek" }

// khatTargets computes the per-node "good pair" target sets (neighbors
// sharing at least k̂ channels) and the realized Δ_k̂ bound CKSEEK's
// schedule is sized from.
func (p kDiscoveryPrimitive) khatTargets(s *Scenario) ([]map[radio.NodeID]bool, int, error) {
	if p.khat < s.p.K || p.khat > s.p.KMax {
		return nil, 0, fmt.Errorf("crn: k̂ must be in [k,kmax] = [%d,%d], got %d", s.p.K, s.p.KMax, p.khat)
	}
	n := s.g.N()
	targets := make([]map[radio.NodeID]bool, n)
	deltaKhat := 0
	for u := 0; u < n; u++ {
		targets[u] = make(map[radio.NodeID]bool)
		for _, v := range s.g.Neighbors(u) {
			if s.a.SharedCount(u, int(v)) >= p.khat {
				targets[u][radio.NodeID(v)] = true
			}
		}
		if len(targets[u]) > deltaKhat {
			deltaKhat = len(targets[u])
		}
	}
	return targets, deltaKhat, nil
}

func (p kDiscoveryPrimitive) Run(ctx context.Context, s *Scenario, seed uint64) (*Result, error) {
	targets, deltaKhat, err := p.khatTargets(s)
	if err != nil {
		return nil, err
	}
	mk := func(env core.Env) (core.Discoverer, error) {
		return core.NewCKSeek(s.p, env, p.khat, deltaKhat)
	}
	return runDiscovery(ctx, s, p.Name(), mk, targets, seed)
}

// RunBatch implements batchRunner, computing the target sets once for
// the whole batch.
func (p kDiscoveryPrimitive) RunBatch(ctx context.Context, s *Scenario, seeds []uint64) ([]*Result, error) {
	targets, deltaKhat, err := p.khatTargets(s)
	if err != nil {
		return nil, err
	}
	mk := func(env core.Env) (core.Discoverer, error) {
		return core.NewCKSeek(s.p, env, p.khat, deltaKhat)
	}
	return runDiscoveryBatch(ctx, s, p.Name(), mk, targets, seeds)
}

// discoveryRun is one prepared discovery run: protocols built, network
// resolved, goal-predicate state initialized. The same preparation
// backs both the sequential path (one Engine per run) and the batched
// path (many runs fused into one BatchEngine pass).
type discoveryRun struct {
	s       *Scenario
	name    string
	targets []map[radio.NodeID]bool

	ds     []core.Discoverer
	protos []radio.Protocol
	nw     *radio.Network

	rediscovered       int64
	rediscoveryLatency int64

	observers   []observer
	completedAt int64
	unsat       int
}

// prepareDiscovery builds one run: a discoverer per node seeded from
// the run seed, the run-scoped network, and — under a dynamic topology
// with a join log — the delivery-trace tap for re-discovery accounting.
func prepareDiscovery(s *Scenario, name string, mk func(core.Env) (core.Discoverer, error), targets []map[radio.NodeID]bool, seed uint64) (*discoveryRun, error) {
	n := s.g.N()
	master := rng.New(seed)
	dr := &discoveryRun{
		s:           s,
		name:        name,
		targets:     targets,
		ds:          make([]core.Discoverer, n),
		protos:      make([]radio.Protocol, n),
		observers:   make([]observer, n),
		completedAt: -1,
	}
	for u := 0; u < n; u++ {
		d, err := mk(core.Env{ID: radio.NodeID(u), C: s.p.C, Rand: master.Split(uint64(u))})
		if err != nil {
			return nil, err
		}
		dr.ds[u] = d
		dr.protos[u] = d
		// Per-node observation lookups for the target predicate,
		// asserted once: probing Observation(id) in the stop callback
		// avoids the per-slot slice Discovered() would allocate in the
		// engine's hot loop.
		dr.observers[u], _ = d.(observer)
	}
	// Range dispatch: CSEEK/CKSEEK node sets get a SeekBank so the
	// engines drive them over whole node ranges (see radio's
	// RangeProtocol); baselines stay on per-node dispatch.
	core.BankDiscoverers(dr.ds)
	dr.nw = s.runNetwork()
	// Re-discovery accounting under a dynamic topology: protocols
	// record observations on their local clocks (frozen while down),
	// but re-discovery latency is measured on the engine clock, so tap
	// the engine's delivery trace and settle each pair the first engine
	// slot it is heard in. The feed applies slot s's joins before slot s
	// resolves, so the model's LastJoin at tap time is exactly the
	// latest join at or before the hearing slot — the accounting is
	// online and needs no post-run join history. Discovery runs on the
	// sequential engine, so the trace is ordered and race-free. Feeds
	// without a join log (pure mobility/flapping) have nothing to
	// measure against — skip the tap and its per-delivery cost.
	if joinLog, ok := dr.nw.Topology.(dynamics.JoinLog); ok {
		heardPairs := make([]map[radio.NodeID]bool, n)
		for u := range heardPairs {
			heardPairs[u] = make(map[radio.NodeID]bool)
		}
		prev := dr.nw.Trace
		dr.nw.Trace = func(slot int64, listener radio.NodeID, ch int32, msg *radio.Message) {
			heard := heardPairs[listener]
			if !heard[msg.From] {
				heard[msg.From] = true
				// A pair is re-discovered when the neighbor had already
				// gone down and rejoined by the time it was first heard;
				// the latency runs from its latest rejoin.
				if j := joinLog.LastJoin(int(msg.From)); j >= 0 {
					dr.rediscovered++
					dr.rediscoveryLatency += slot - j
				}
			}
			if prev != nil {
				prev(slot, listener, ch, msg)
			}
		}
	}
	return dr, nil
}

// maxSlots is the run's slot budget: the schedule length plus one so
// the final slot's stop check still runs inside the engine loop.
func (dr *discoveryRun) maxSlots() int64 { return dr.ds[0].TotalSlots() + 1 }

func (dr *discoveryRun) satisfied(u int) bool {
	if dr.targets == nil {
		return dr.ds[u].DiscoveredCount() >= dr.s.g.Degree(u)
	}
	if dr.observers[u] != nil {
		for id := range dr.targets[u] {
			if dr.observers[u].Observation(id) == nil {
				return false
			}
		}
		return true
	}
	found := 0
	for _, id := range dr.ds[u].Discovered() {
		if dr.targets[u][id] {
			found++
		}
	}
	return found >= len(dr.targets[u])
}

// stop is the engine stop predicate. Discovery is monotone (a found
// neighbor stays found), so it keeps a cursor at the first unsatisfied
// node: most slots cost one node's check instead of n, and the whole
// sweep over nodes is paid once per run, not once per slot.
func (dr *discoveryRun) stop(slot int64) bool {
	n := len(dr.ds)
	for ; dr.unsat < n; dr.unsat++ {
		if !dr.satisfied(dr.unsat) {
			return false
		}
	}
	dr.completedAt = slot
	return true
}

// finish assembles the Result envelope from the run's end state and
// the engine's stats.
func (dr *discoveryRun) finish(st radio.Stats) *Result {
	s, n := dr.s, len(dr.ds)
	det := &DiscoveryDetail{
		Algorithm:  dr.name,
		Neighbors:  make([][]int, n),
		FirstHeard: make([][]int64, n),
	}
	for u := 0; u < n; u++ {
		found := make(map[radio.NodeID]bool)
		discovered := dr.ds[u].Discovered()
		// Discovered() carries no order guarantee (it drains a map);
		// sort so Results — and therefore sweep runs — are reproducible
		// byte for byte.
		sort.Slice(discovered, func(i, j int) bool { return discovered[i] < discovered[j] })
		for _, id := range discovered {
			found[id] = true
			det.Neighbors[u] = append(det.Neighbors[u], int(id))
			det.FirstHeard[u] = append(det.FirstHeard[u], firstHeardSlot(dr.ds[u], id))
		}
		if dr.targets == nil {
			det.PairsTotal += s.g.Degree(u)
			for _, v := range s.g.Neighbors(u) {
				if found[radio.NodeID(v)] {
					det.PairsDiscovered++
				}
			}
			continue
		}
		for _, v := range s.g.Neighbors(u) {
			if !dr.targets[u][radio.NodeID(v)] {
				continue
			}
			det.PairsTotal++
			if found[radio.NodeID(v)] {
				det.PairsDiscovered++
			}
		}
	}
	res := &Result{
		Primitive:       dr.name,
		ScheduleSlots:   dr.ds[0].TotalSlots(),
		CompletedAtSlot: dr.completedAt,
		Completed:       dr.completedAt >= 0,
		Discovery:       det,
		Spectrum:        spectrumDetail(st),
	}
	if dr.nw.Topology != nil {
		top := topologyDetail(st)
		top.RediscoveredPairs = int(dr.rediscovered)
		top.RediscoveryLatencyTotal = dr.rediscoveryLatency
		res.Topology = top
	}
	return res
}

// runDiscovery drives one discovery protocol instance per node until
// the goal predicate holds or the schedule ends. When targets is nil
// the goal is "every node knows all its graph neighbors" and pairs are
// counted against the full neighbor universe; otherwise targets[u] is
// the set node u must find, and pairs are counted against it.
func runDiscovery(ctx context.Context, s *Scenario, name string, mk func(core.Env) (core.Discoverer, error), targets []map[radio.NodeID]bool, seed uint64) (*Result, error) {
	dr, err := prepareDiscovery(s, name, mk, targets, seed)
	if err != nil {
		return nil, err
	}
	e, err := radio.NewEngine(dr.nw, dr.protos)
	if err != nil {
		return nil, err
	}
	st, err := e.RunUntilCtx(ctx, dr.maxSlots(), dr.stop)
	if err != nil {
		return nil, err
	}
	return dr.finish(st), nil
}

// runDiscoveryBatch executes one discovery run per seed over the same
// scenario through a single radio.BatchEngine pass: the graph,
// assignment and engine scratch are shared across the batch, and every
// run's outcome is byte-identical to runDiscovery with the same seed
// (the batch engine's replica-isolation guarantee).
//
// Dynamic topologies batch too: prepareDiscovery installs a fresh
// run-scoped TopologyFeed per run (Scenario.runNetwork), and the batch
// engine gives each such replica a private mutable graph clone —
// exactly what a sequential Engine would have built. A single-run
// batch gains nothing from fusing and runs sequentially.
func runDiscoveryBatch(ctx context.Context, s *Scenario, name string, mk func(core.Env) (core.Discoverer, error), targets []map[radio.NodeID]bool, seeds []uint64) ([]*Result, error) {
	results := make([]*Result, len(seeds))
	if len(seeds) == 1 {
		for i, seed := range seeds {
			res, err := runDiscovery(ctx, s, name, mk, targets, seed)
			if err != nil {
				return nil, err
			}
			results[i] = res
		}
		return results, nil
	}
	drs := make([]*discoveryRun, len(seeds))
	reps := make([]radio.Replica, len(seeds))
	for i, seed := range seeds {
		dr, err := prepareDiscovery(s, name, mk, targets, seed)
		if err != nil {
			return nil, err
		}
		drs[i] = dr
		reps[i] = radio.Replica{Protocols: dr.protos, Jammer: dr.nw.Jammer, Trace: dr.nw.Trace, Topology: dr.nw.Topology}
	}
	be, err := radio.NewBatchEngine(s.g, s.a, reps)
	if err != nil {
		return nil, err
	}
	sts, err := be.RunCtx(ctx, drs[0].maxSlots(), func(r int, slot int64) bool {
		return drs[r].stop(slot)
	})
	if err != nil {
		return nil, err
	}
	for i, dr := range drs {
		results[i] = dr.finish(sts[i])
	}
	return results, nil
}

// topologyDetail maps engine counters into the Result envelope's
// topology-dynamics block.
func topologyDetail(st radio.Stats) *TopologyDetail {
	return &TopologyDetail{
		EdgeAdds:        st.EdgeAdds,
		EdgeRemoves:     st.EdgeRemoves,
		NodeJoins:       st.NodeJoins,
		NodeLeaves:      st.NodeLeaves,
		DownNodeSlots:   st.DownSlots,
		PartitionLosses: st.PartitionLosses,
	}
}

// spectrumDetail maps engine counters into the Result envelope's
// spectrum accounting block.
func spectrumDetail(st radio.Stats) *SpectrumDetail {
	return &SpectrumDetail{
		Listens:       st.Listens,
		Deliveries:    st.Deliveries,
		Collisions:    st.Collisions,
		JammedListens: st.JammedListens,
	}
}

// observer is the optional per-neighbor observation interface some
// discoverers (CSEEK and variants) expose.
type observer interface {
	Observation(radio.NodeID) *core.SeekObservation
}

func firstHeardSlot(d core.Discoverer, id radio.NodeID) int64 {
	if o, ok := d.(observer); ok {
		if obs := o.Observation(id); obs != nil {
			return obs.Slot
		}
	}
	return -1
}

// BroadcastOption configures the GlobalBroadcast primitive and
// broadcast sessions.
type BroadcastOption func(*broadcastOptions)

type broadcastOptions struct {
	mode core.BroadcastMode
}

// WithFullFidelity makes CGCAST simulate every CSEEK exchange in the
// radio model instead of using the slot-equivalent oracle. Slower, but
// end-to-end faithful; see DESIGN.md.
func WithFullFidelity() BroadcastOption {
	return func(o *broadcastOptions) { o.mode = core.ExchangeFull }
}

func resolveBroadcastOptions(opts []BroadcastOption) broadcastOptions {
	o := broadcastOptions{mode: core.ExchangeAbstract}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// GlobalBroadcast returns the CGCAST global-broadcast primitive
// (Theorem 9): the full setup pipeline (discovery, dedicated-channel
// fixing, edge coloring, announcement) followed by one dissemination
// of message from the source node.
func GlobalBroadcast(source int, message any, opts ...BroadcastOption) Primitive {
	return globalBroadcastPrimitive{source: source, message: message, opts: resolveBroadcastOptions(opts)}
}

type globalBroadcastPrimitive struct {
	source  int
	message any
	opts    broadcastOptions
}

func (p globalBroadcastPrimitive) Name() string { return "cgcast" }

func (p globalBroadcastPrimitive) Run(ctx context.Context, s *Scenario, seed uint64) (*Result, error) {
	nw := s.runNetwork()
	res, err := core.RunCGCastCtx(ctx, nw, core.BroadcastConfig{
		Params:  s.p,
		D:       s.d,
		Source:  radio.NodeID(p.source),
		Message: p.message,
		Mode:    p.opts.mode,
		Seed:    seed,
	})
	if err != nil {
		return nil, err
	}
	out := &Result{
		Primitive:       p.Name(),
		ScheduleSlots:   res.TotalSlots,
		CompletedAtSlot: res.AllInformedAt,
		Completed:       res.AllInformed,
		Broadcast: &BroadcastDetail{
			SetupSlots:          res.SetupSlots,
			DissemScheduleSlots: res.DissemScheduleSlots,
			AllInformed:         res.AllInformed,
			EdgesColored:        res.EdgesColored,
			EdgesDropped:        res.EdgesDropped,
			ColoringValid:       res.ColoringValid,
		},
		Spectrum: spectrumDetail(res.Radio),
	}
	if nw.Topology != nil {
		out.Topology = topologyDetail(res.Radio)
	}
	return out, nil
}

// Flooding returns the naive flooding broadcast baseline: informed
// nodes hop channels at random and broadcast with a back-off coin,
// paying a fresh rendezvous for every hop.
func Flooding(source int, message any) Primitive {
	return floodingPrimitive{source: source, message: message}
}

type floodingPrimitive struct {
	source  int
	message any
}

func (p floodingPrimitive) Name() string { return "flood" }

func (p floodingPrimitive) Run(ctx context.Context, s *Scenario, seed uint64) (*Result, error) {
	nw := s.runNetwork()
	res, err := core.RunFloodCtx(ctx, nw, s.p, s.d, radio.NodeID(p.source), p.message, seed)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Primitive:       p.Name(),
		ScheduleSlots:   res.ScheduleSlots,
		CompletedAtSlot: res.AllInformedAt,
		Completed:       res.AllInformed,
		Broadcast: &BroadcastDetail{
			DissemScheduleSlots: res.ScheduleSlots,
			AllInformed:         res.AllInformed,
		},
		Spectrum: spectrumDetail(res.Radio),
	}
	if nw.Topology != nil {
		out.Topology = topologyDetail(res.Radio)
	}
	return out, nil
}
