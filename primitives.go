package crn

import (
	"context"
	"fmt"
	"sort"

	"crn/internal/core"
	"crn/internal/dynamics"
	"crn/internal/radio"
	"crn/internal/rng"
)

// Primitive is a runnable communication primitive: one of the paper's
// algorithms (or a baseline), packaged so every entry point — the CLI,
// the experiment harness, the sweep engine — runs it the same way and
// receives the same Result envelope.
//
// Run executes the primitive once over the scenario with the given
// seed. It honors ctx: the engines poll for cancellation every 16
// sub-microsecond slots, so even slot-budgets in the millions stop
// within microseconds. Run is safe for concurrent use with distinct
// seeds over a shared Scenario.
type Primitive interface {
	// Name identifies the primitive ("cseek", "ckseek", "cgcast", ...).
	Name() string
	// Run executes one simulation and reports the common Result.
	Run(ctx context.Context, s *Scenario, seed uint64) (*Result, error)
}

// Discovery returns the neighbor-discovery primitive: every node
// learns the identities of all its neighbors. The empty Algorithm
// selects CSeek.
func Discovery(algo Algorithm) Primitive { return discoveryPrimitive{algo: algo} }

type discoveryPrimitive struct{ algo Algorithm }

func (p discoveryPrimitive) Name() string {
	if p.algo == "" {
		return string(CSeek)
	}
	return string(p.algo)
}

func (p discoveryPrimitive) Run(ctx context.Context, s *Scenario, seed uint64) (*Result, error) {
	mk := func(env core.Env) (core.Discoverer, error) {
		switch p.algo {
		case CSeek, "":
			return core.NewCSeek(s.p, env)
		case Naive:
			return core.NewNaiveSeek(s.p, env)
		case Uniform:
			return core.NewUniformSeek(s.p, env)
		default:
			return nil, fmt.Errorf("crn: unknown algorithm %q", p.algo)
		}
	}
	return runDiscovery(ctx, s, p.Name(), mk, nil, seed)
}

// KDiscovery returns the k̂-neighbor-discovery primitive (CKSEEK,
// Theorem 6): every node finds (at least) all neighbors sharing at
// least khat channels with it. The result counts only those "good"
// pairs, and the run completes when every good pair is found.
func KDiscovery(khat int) Primitive { return kDiscoveryPrimitive{khat: khat} }

type kDiscoveryPrimitive struct{ khat int }

func (p kDiscoveryPrimitive) Name() string { return "ckseek" }

func (p kDiscoveryPrimitive) Run(ctx context.Context, s *Scenario, seed uint64) (*Result, error) {
	if p.khat < s.p.K || p.khat > s.p.KMax {
		return nil, fmt.Errorf("crn: k̂ must be in [k,kmax] = [%d,%d], got %d", s.p.K, s.p.KMax, p.khat)
	}
	n := s.g.N()
	targets := make([]map[radio.NodeID]bool, n)
	deltaKhat := 0
	for u := 0; u < n; u++ {
		targets[u] = make(map[radio.NodeID]bool)
		for _, v := range s.g.Neighbors(u) {
			if s.a.SharedCount(u, int(v)) >= p.khat {
				targets[u][radio.NodeID(v)] = true
			}
		}
		if len(targets[u]) > deltaKhat {
			deltaKhat = len(targets[u])
		}
	}
	mk := func(env core.Env) (core.Discoverer, error) {
		return core.NewCKSeek(s.p, env, p.khat, deltaKhat)
	}
	return runDiscovery(ctx, s, p.Name(), mk, targets, seed)
}

// runDiscovery drives one discovery protocol instance per node until
// the goal predicate holds or the schedule ends. When targets is nil
// the goal is "every node knows all its graph neighbors" and pairs are
// counted against the full neighbor universe; otherwise targets[u] is
// the set node u must find, and pairs are counted against it.
func runDiscovery(ctx context.Context, s *Scenario, name string, mk func(core.Env) (core.Discoverer, error), targets []map[radio.NodeID]bool, seed uint64) (*Result, error) {
	n := s.g.N()
	master := rng.New(seed)
	ds := make([]core.Discoverer, n)
	protos := make([]radio.Protocol, n)
	for u := 0; u < n; u++ {
		d, err := mk(core.Env{ID: radio.NodeID(u), C: s.p.C, Rand: master.Split(uint64(u))})
		if err != nil {
			return nil, err
		}
		ds[u] = d
		protos[u] = d
	}
	nw := s.runNetwork()
	// Re-discovery accounting under a dynamic topology: protocols
	// record observations on their local clocks (frozen while down),
	// but re-discovery latency is measured against the churn model's
	// engine-slot join log, so tap the engine's delivery trace for the
	// first engine slot each pair was heard in. Discovery runs on the
	// sequential engine, so the trace is ordered and race-free. Feeds
	// without a join log (pure mobility/flapping) have nothing to
	// measure against — skip the tap and its per-delivery cost.
	joinLog, _ := nw.Topology.(dynamics.JoinLog)
	var firstEngineHeard []map[radio.NodeID]int64
	if joinLog != nil {
		firstEngineHeard = make([]map[radio.NodeID]int64, n)
		for u := range firstEngineHeard {
			firstEngineHeard[u] = make(map[radio.NodeID]int64)
		}
		prev := nw.Trace
		nw.Trace = func(slot int64, listener radio.NodeID, ch int32, msg *radio.Message) {
			heard := firstEngineHeard[listener]
			if _, ok := heard[msg.From]; !ok {
				heard[msg.From] = slot
			}
			if prev != nil {
				prev(slot, listener, ch, msg)
			}
		}
	}
	e, err := radio.NewEngine(nw, protos)
	if err != nil {
		return nil, err
	}
	// Per-node observation lookups for the target predicate, asserted
	// once: probing Observation(id) in the stop callback avoids the
	// per-slot slice Discovered() would allocate in the engine's hot
	// loop.
	observers := make([]observer, n)
	for u := range ds {
		observers[u], _ = ds[u].(observer)
	}
	completedAt := int64(-1)
	// Discovery is monotone (a found neighbor stays found), so the
	// stop predicate keeps a cursor at the first unsatisfied node:
	// most slots cost one node's check instead of n, and the whole
	// sweep over nodes is paid once per run, not once per slot.
	unsat := 0
	satisfied := func(u int) bool {
		if targets == nil {
			return ds[u].DiscoveredCount() >= s.g.Degree(u)
		}
		if observers[u] != nil {
			for id := range targets[u] {
				if observers[u].Observation(id) == nil {
					return false
				}
			}
			return true
		}
		found := 0
		for _, id := range ds[u].Discovered() {
			if targets[u][id] {
				found++
			}
		}
		return found >= len(targets[u])
	}
	stop := func(slot int64) bool {
		for ; unsat < n; unsat++ {
			if !satisfied(unsat) {
				return false
			}
		}
		completedAt = slot
		return true
	}
	st, err := e.RunUntilCtx(ctx, ds[0].TotalSlots()+1, stop)
	if err != nil {
		return nil, err
	}

	det := &DiscoveryDetail{
		Algorithm:  name,
		Neighbors:  make([][]int, n),
		FirstHeard: make([][]int64, n),
	}
	for u := 0; u < n; u++ {
		found := make(map[radio.NodeID]bool)
		discovered := ds[u].Discovered()
		// Discovered() carries no order guarantee (it drains a map);
		// sort so Results — and therefore sweep runs — are reproducible
		// byte for byte.
		sort.Slice(discovered, func(i, j int) bool { return discovered[i] < discovered[j] })
		for _, id := range discovered {
			found[id] = true
			det.Neighbors[u] = append(det.Neighbors[u], int(id))
			det.FirstHeard[u] = append(det.FirstHeard[u], firstHeardSlot(ds[u], id))
		}
		if targets == nil {
			det.PairsTotal += s.g.Degree(u)
			for _, v := range s.g.Neighbors(u) {
				if found[radio.NodeID(v)] {
					det.PairsDiscovered++
				}
			}
			continue
		}
		for _, v := range s.g.Neighbors(u) {
			if !targets[u][radio.NodeID(v)] {
				continue
			}
			det.PairsTotal++
			if found[radio.NodeID(v)] {
				det.PairsDiscovered++
			}
		}
	}
	res := &Result{
		Primitive:       name,
		ScheduleSlots:   ds[0].TotalSlots(),
		CompletedAtSlot: completedAt,
		Completed:       completedAt >= 0,
		Discovery:       det,
		Spectrum:        spectrumDetail(st),
	}
	if nw.Topology != nil {
		top := topologyDetail(st)
		for u := 0; joinLog != nil && u < n; u++ {
			for id, slot := range firstEngineHeard[u] {
				// A pair is re-discovered when the neighbor had already
				// gone down and rejoined by the time it was first heard;
				// the latency runs from its latest rejoin.
				var latest int64 = -1
				for _, j := range joinLog.JoinSlots(int(id)) {
					if j <= slot && j > latest {
						latest = j
					}
				}
				if latest >= 0 {
					top.RediscoveredPairs++
					top.RediscoveryLatencyTotal += slot - latest
				}
			}
		}
		res.Topology = top
	}
	return res, nil
}

// topologyDetail maps engine counters into the Result envelope's
// topology-dynamics block.
func topologyDetail(st radio.Stats) *TopologyDetail {
	return &TopologyDetail{
		EdgeAdds:        st.EdgeAdds,
		EdgeRemoves:     st.EdgeRemoves,
		NodeJoins:       st.NodeJoins,
		NodeLeaves:      st.NodeLeaves,
		DownNodeSlots:   st.DownSlots,
		PartitionLosses: st.PartitionLosses,
	}
}

// spectrumDetail maps engine counters into the Result envelope's
// spectrum accounting block.
func spectrumDetail(st radio.Stats) *SpectrumDetail {
	return &SpectrumDetail{
		Listens:       st.Listens,
		Deliveries:    st.Deliveries,
		Collisions:    st.Collisions,
		JammedListens: st.JammedListens,
	}
}

// observer is the optional per-neighbor observation interface some
// discoverers (CSEEK and variants) expose.
type observer interface {
	Observation(radio.NodeID) *core.SeekObservation
}

func firstHeardSlot(d core.Discoverer, id radio.NodeID) int64 {
	if o, ok := d.(observer); ok {
		if obs := o.Observation(id); obs != nil {
			return obs.Slot
		}
	}
	return -1
}

// BroadcastOption configures the GlobalBroadcast primitive and
// broadcast sessions.
type BroadcastOption func(*broadcastOptions)

type broadcastOptions struct {
	mode core.BroadcastMode
}

// WithFullFidelity makes CGCAST simulate every CSEEK exchange in the
// radio model instead of using the slot-equivalent oracle. Slower, but
// end-to-end faithful; see DESIGN.md.
func WithFullFidelity() BroadcastOption {
	return func(o *broadcastOptions) { o.mode = core.ExchangeFull }
}

func resolveBroadcastOptions(opts []BroadcastOption) broadcastOptions {
	o := broadcastOptions{mode: core.ExchangeAbstract}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// GlobalBroadcast returns the CGCAST global-broadcast primitive
// (Theorem 9): the full setup pipeline (discovery, dedicated-channel
// fixing, edge coloring, announcement) followed by one dissemination
// of message from the source node.
func GlobalBroadcast(source int, message any, opts ...BroadcastOption) Primitive {
	return globalBroadcastPrimitive{source: source, message: message, opts: resolveBroadcastOptions(opts)}
}

type globalBroadcastPrimitive struct {
	source  int
	message any
	opts    broadcastOptions
}

func (p globalBroadcastPrimitive) Name() string { return "cgcast" }

func (p globalBroadcastPrimitive) Run(ctx context.Context, s *Scenario, seed uint64) (*Result, error) {
	nw := s.runNetwork()
	res, err := core.RunCGCastCtx(ctx, nw, core.BroadcastConfig{
		Params:  s.p,
		D:       s.d,
		Source:  radio.NodeID(p.source),
		Message: p.message,
		Mode:    p.opts.mode,
		Seed:    seed,
	})
	if err != nil {
		return nil, err
	}
	out := &Result{
		Primitive:       p.Name(),
		ScheduleSlots:   res.TotalSlots,
		CompletedAtSlot: res.AllInformedAt,
		Completed:       res.AllInformed,
		Broadcast: &BroadcastDetail{
			SetupSlots:          res.SetupSlots,
			DissemScheduleSlots: res.DissemScheduleSlots,
			AllInformed:         res.AllInformed,
			EdgesColored:        res.EdgesColored,
			EdgesDropped:        res.EdgesDropped,
			ColoringValid:       res.ColoringValid,
		},
		Spectrum: spectrumDetail(res.Radio),
	}
	if nw.Topology != nil {
		out.Topology = topologyDetail(res.Radio)
	}
	return out, nil
}

// Flooding returns the naive flooding broadcast baseline: informed
// nodes hop channels at random and broadcast with a back-off coin,
// paying a fresh rendezvous for every hop.
func Flooding(source int, message any) Primitive {
	return floodingPrimitive{source: source, message: message}
}

type floodingPrimitive struct {
	source  int
	message any
}

func (p floodingPrimitive) Name() string { return "flood" }

func (p floodingPrimitive) Run(ctx context.Context, s *Scenario, seed uint64) (*Result, error) {
	nw := s.runNetwork()
	res, err := core.RunFloodCtx(ctx, nw, s.p, s.d, radio.NodeID(p.source), p.message, seed)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Primitive:       p.Name(),
		ScheduleSlots:   res.ScheduleSlots,
		CompletedAtSlot: res.AllInformedAt,
		Completed:       res.AllInformed,
		Broadcast: &BroadcastDetail{
			DissemScheduleSlots: res.ScheduleSlots,
			AllInformed:         res.AllInformed,
		},
		Spectrum: spectrumDetail(res.Radio),
	}
	if nw.Topology != nil {
		out.Topology = topologyDetail(res.Radio)
	}
	return out, nil
}
