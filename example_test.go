package crn_test

import (
	"fmt"
	"log"

	"crn"
)

// ExampleNewScenario generates a deterministic scenario and prints its
// derived model parameters.
func ExampleNewScenario() {
	scenario, err := crn.NewScenario(crn.ScenarioConfig{
		Topology: crn.Path,
		N:        6,
		C:        4,
		K:        2,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(scenario)
	// Output: n=6 c=4 k=2 kmax=2 Δ=2 D=5 edges=5
}

// ExampleScenario_Discover runs CSEEK on a tiny path network; the
// simulation is deterministic for a fixed seed.
func ExampleScenario_Discover() {
	scenario, err := crn.NewScenario(crn.ScenarioConfig{
		Topology: crn.Path,
		N:        4,
		C:        3,
		K:        2,
		Seed:     2,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := scenario.Discover(crn.CSeek, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all discovered: %v (%d/%d pairs)\n",
		res.AllDiscovered(), res.PairsDiscovered, res.PairsTotal)
	// Output: all discovered: true (6/6 pairs)
}

// ExampleScenario_NewBroadcastSession sets CGCAST up once and sends
// two messages from different sources.
func ExampleScenario_NewBroadcastSession() {
	scenario, err := crn.NewScenario(crn.ScenarioConfig{
		Topology: crn.Path,
		N:        5,
		C:        3,
		K:        2,
		Seed:     4,
	})
	if err != nil {
		log.Fatal(err)
	}
	session, err := scenario.NewBroadcastSession(5)
	if err != nil {
		log.Fatal(err)
	}
	for _, source := range []int{0, 4} {
		res, err := session.Broadcast(source, "ping", 6)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("from %d: all informed = %v\n", source, res.AllInformed)
	}
	// Output:
	// from 0: all informed = true
	// from 4: all informed = true
}

// ExampleNewCustomScenario wires an explicit topology with hand-picked
// channel sets — the escape hatch for modeling real deployments.
func ExampleNewCustomScenario() {
	scenario, err := crn.NewCustomScenario(crn.CustomConfig{
		N:        3,
		Edges:    [][2]int{{0, 1}, {1, 2}},
		Universe: 4,
		Channels: [][]int{
			{0, 1},
			{0, 2},
			{2, 3},
		},
		Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k=%d kmax=%d\n", scenario.K(), scenario.KMax())
	// Output: k=1 kmax=1
}
