package crn

import (
	"fmt"

	"crn/internal/core"
	"crn/internal/radio"
)

// Tuning exposes the constant multipliers behind the paper's Θ(·)
// schedule lengths; see core.Tuning for the per-field documentation.
// Zero-valued fields fall back to defaults.
type Tuning = core.Tuning

// scenarioBuilder accumulates the effect of ScenarioOptions before a
// Scenario is generated. Options that depend on the realized network
// (primary-user models) register post hooks that run after generation.
type scenarioBuilder struct {
	cfg  ScenarioConfig
	post []func(*Scenario) error
	err  error
}

// ScenarioOption configures New (and the post-generation stage of
// NewCustomScenario / NewScenarioFromParts).
type ScenarioOption func(*scenarioBuilder)

// WithTopology selects the graph generator (default GNP).
func WithTopology(t Topology) ScenarioOption {
	return func(b *scenarioBuilder) { b.cfg.Topology = t }
}

// WithNodes sets the number of nodes n.
func WithNodes(n int) ScenarioOption {
	return func(b *scenarioBuilder) { b.cfg.N = n }
}

// WithChannels sets the channel structure: c channels per node, at
// least k shared channels per neighbor pair, and — when kmax > k — a
// heterogeneous assignment in which roughly half the edges share kmax
// channels. Pass kmax = 0 for the homogeneous kmax = k case.
func WithChannels(c, k, kmax int) ScenarioOption {
	return func(b *scenarioBuilder) {
		b.cfg.C = c
		b.cfg.K = k
		b.cfg.KMax = kmax
	}
}

// WithDensity sets the edge probability for GNP and the radius for
// UnitDisk; zero picks a sensible default.
func WithDensity(d float64) ScenarioOption {
	return func(b *scenarioBuilder) { b.cfg.Density = d }
}

// WithSeed sets the seed driving scenario generation.
func WithSeed(seed uint64) ScenarioOption {
	return func(b *scenarioBuilder) { b.cfg.Seed = seed }
}

// WithTuning overrides the algorithms' constant multipliers;
// zero-valued fields keep their defaults.
func WithTuning(t Tuning) ScenarioOption {
	return func(b *scenarioBuilder) {
		tc := t
		b.cfg.Tuning = &tc
	}
}

// Spectrum-dynamics options stack: each one composes its model with
// whatever earlier options installed (spectrum occupancy is the union),
// so Markov primary traffic plus a bounded adversary is simply
//
//	crn.WithMarkovPrimaryUsers(0.05, 0.15, 0, 7), crn.WithAdversary(2)
//
// The deprecated Scenario.Set* mutators keep their replace semantics.

// WithPeriodicPrimaryUsers installs duty-cycled primary users: every
// global channel is occupied for onSlots out of every period slots,
// with the phase staggered across channels so some spectrum is always
// free.
func WithPeriodicPrimaryUsers(period, onSlots int64) ScenarioOption {
	return func(b *scenarioBuilder) {
		if onSlots <= 0 {
			b.fail(fmt.Errorf("crn: WithPeriodicPrimaryUsers needs onSlots >= 1, got %d", onSlots))
			return
		}
		b.post = append(b.post, func(s *Scenario) error {
			j, err := s.newPeriodicJammer(period, onSlots)
			if err != nil {
				return err
			}
			s.addJammer(j)
			return nil
		})
	}
}

// WithMarkovPrimaryUsers installs bursty primary users: each global
// channel flips between idle and occupied with the given per-slot
// transition probabilities (idle→busy pBusy, busy→idle pFree), over a
// precomputed horizon of `horizon` slots (0 picks a horizon generous
// enough for a CSEEK run). The seed drives the occupancy trajectory;
// the stationary occupancy is pBusy/(pBusy+pFree).
func WithMarkovPrimaryUsers(pBusy, pFree float64, horizon int64, seed uint64) ScenarioOption {
	return func(b *scenarioBuilder) {
		b.post = append(b.post, func(s *Scenario) error {
			j, err := s.newMarkovJammer(pBusy, pFree, horizon, seed)
			if err != nil {
				return err
			}
			s.addJammer(j)
			return nil
		})
	}
}

// WithPoissonPrimaryUsers installs Poisson primary users: on each
// global channel transmissions arrive at `rate` per slot and hold the
// channel for a geometrically distributed time with mean meanHold
// slots, over a precomputed horizon of `horizon` slots (0 picks a
// horizon generous enough for a CSEEK run). The seed drives the
// arrival trajectory.
func WithPoissonPrimaryUsers(rate, meanHold float64, horizon int64, seed uint64) ScenarioOption {
	return func(b *scenarioBuilder) {
		b.post = append(b.post, func(s *Scenario) error {
			j, err := s.newPoissonJammer(rate, meanHold, horizon, seed)
			if err != nil {
				return err
			}
			s.addJammer(j)
			return nil
		})
	}
}

// WithAdversary installs the paper's t-bounded adaptive adversary: it
// observes aggregate secondary-user activity with a one-slot delay and
// jams the t busiest channels each slot. t <= 0 picks a default budget
// of a quarter of the channel universe. The adversary is stateful and
// run-scoped: every primitive run (including each run inside a Sweep)
// faces a fresh instance, so results stay deterministic per seed and
// identical at any worker count.
func WithAdversary(t int) ScenarioOption {
	return func(b *scenarioBuilder) {
		b.post = append(b.post, func(s *Scenario) error {
			s.addJammer(s.newAdversary(t))
			return nil
		})
	}
}

// WithJammer installs a custom primary-user model, stacking with any
// spectrum option before it. A nil jammer clears everything installed
// so far — the escape hatch back to clear spectrum when building on
// top of a preset.
func WithJammer(j Jammer) ScenarioOption {
	return func(b *scenarioBuilder) {
		b.post = append(b.post, func(s *Scenario) error {
			if j == nil {
				s.nw.Jammer = nil
				return nil
			}
			s.addJammer(j)
			return nil
		})
	}
}

// Topology-dynamics options make the *graph* time-varying the way the
// spectrum options make the *channels* time-varying. They stack the
// same way (models compose into one per-slot feed), are applied after
// generation (they need the realized nodes/edges/geometry), and stay
// sweep-safe: every run — including each run inside a Sweep — gets a
// fresh model instance, so trajectories are deterministic per
// scenario and byte-identical at any worker count. With any of them
// installed, results carry a Result.Topology detail block.

// WithChurn installs node churn: each node independently goes down
// with probability pDown per slot and rejoins with probability pUp
// per slot (mean downtime 1/pUp slots). Down nodes neither transmit
// nor observe; their protocols freeze on their local clocks until
// rejoin. The seed fixes the whole churn trajectory.
func WithChurn(pDown, pUp float64, seed uint64) ScenarioOption {
	return func(b *scenarioBuilder) {
		b.post = append(b.post, func(s *Scenario) error {
			c, err := s.newChurn(pDown, pUp, seed)
			if err != nil {
				return err
			}
			s.addTopologyFeed(c)
			return nil
		})
	}
}

// WithEdgeFlap installs link flapping: each realized edge
// independently drops with probability pDrop per slot and restores
// with probability pRestore per slot (mean outage 1/pRestore slots) —
// fading links under stationary radios. The seed fixes the whole flap
// trajectory.
func WithEdgeFlap(pDrop, pRestore float64, seed uint64) ScenarioOption {
	return func(b *scenarioBuilder) {
		b.post = append(b.post, func(s *Scenario) error {
			f, err := s.newEdgeFlap(pDrop, pRestore, seed)
			if err != nil {
				return err
			}
			s.addTopologyFeed(f)
			return nil
		})
	}
}

// WithMobility installs random-waypoint mobility over the scenario's
// unit-disk geometry: nodes move toward uniformly random waypoints at
// `speed` distance per slot (the unit square has side 1) and the edge
// set is re-derived from positions every `every` slots. It requires
// WithTopology(UnitDisk) — only geometric topologies carry the point
// set mobility moves. The seed fixes the whole motion trail.
func WithMobility(speed float64, every int64, seed uint64) ScenarioOption {
	return func(b *scenarioBuilder) {
		b.post = append(b.post, func(s *Scenario) error {
			w, err := s.newMobility(speed, every, seed)
			if err != nil {
				return err
			}
			s.addTopologyFeed(w)
			return nil
		})
	}
}

// DeliveryTraceFunc observes one frame delivery: in the given slot,
// `listener` heard the frame `sender` broadcast on global channel
// `channel`. See WithDeliveryTrace.
type DeliveryTraceFunc func(slot int64, listener, sender, channel int)

// WithDeliveryTrace installs a callback observing every frame delivery
// of every run on the scenario — the hook golden-trace regression
// tests and debugging front-ends record through. The callback runs on
// the engine goroutine of whichever run resolved the delivery;
// concurrent runs (Sweep with Workers > 1) invoke it concurrently, so
// trace single runs or synchronize in fn.
func WithDeliveryTrace(fn DeliveryTraceFunc) ScenarioOption {
	return func(b *scenarioBuilder) {
		b.post = append(b.post, func(s *Scenario) error {
			if fn == nil {
				s.trace = nil
				return nil
			}
			s.trace = func(slot int64, listener radio.NodeID, ch int32, msg *radio.Message) {
				fn(slot, int(listener), int(msg.From), int(ch))
			}
			return nil
		})
	}
}

// fail records the first option error; New reports it before
// generating anything.
func (b *scenarioBuilder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}
