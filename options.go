package crn

import (
	"fmt"

	"crn/internal/core"
)

// Tuning exposes the constant multipliers behind the paper's Θ(·)
// schedule lengths; see core.Tuning for the per-field documentation.
// Zero-valued fields fall back to defaults.
type Tuning = core.Tuning

// scenarioBuilder accumulates the effect of ScenarioOptions before a
// Scenario is generated. Options that depend on the realized network
// (primary-user models) register post hooks that run after generation.
type scenarioBuilder struct {
	cfg  ScenarioConfig
	post []func(*Scenario) error
	err  error
}

// ScenarioOption configures New (and the post-generation stage of
// NewCustomScenario / NewScenarioFromParts).
type ScenarioOption func(*scenarioBuilder)

// WithTopology selects the graph generator (default GNP).
func WithTopology(t Topology) ScenarioOption {
	return func(b *scenarioBuilder) { b.cfg.Topology = t }
}

// WithNodes sets the number of nodes n.
func WithNodes(n int) ScenarioOption {
	return func(b *scenarioBuilder) { b.cfg.N = n }
}

// WithChannels sets the channel structure: c channels per node, at
// least k shared channels per neighbor pair, and — when kmax > k — a
// heterogeneous assignment in which roughly half the edges share kmax
// channels. Pass kmax = 0 for the homogeneous kmax = k case.
func WithChannels(c, k, kmax int) ScenarioOption {
	return func(b *scenarioBuilder) {
		b.cfg.C = c
		b.cfg.K = k
		b.cfg.KMax = kmax
	}
}

// WithDensity sets the edge probability for GNP and the radius for
// UnitDisk; zero picks a sensible default.
func WithDensity(d float64) ScenarioOption {
	return func(b *scenarioBuilder) { b.cfg.Density = d }
}

// WithSeed sets the seed driving scenario generation.
func WithSeed(seed uint64) ScenarioOption {
	return func(b *scenarioBuilder) { b.cfg.Seed = seed }
}

// WithTuning overrides the algorithms' constant multipliers;
// zero-valued fields keep their defaults.
func WithTuning(t Tuning) ScenarioOption {
	return func(b *scenarioBuilder) {
		tc := t
		b.cfg.Tuning = &tc
	}
}

// WithPeriodicPrimaryUsers installs duty-cycled primary users: every
// global channel is occupied for onSlots out of every period slots,
// with the phase staggered across channels so some spectrum is always
// free.
func WithPeriodicPrimaryUsers(period, onSlots int64) ScenarioOption {
	return func(b *scenarioBuilder) {
		if onSlots <= 0 {
			b.fail(fmt.Errorf("crn: WithPeriodicPrimaryUsers needs onSlots >= 1, got %d", onSlots))
			return
		}
		b.post = append(b.post, func(s *Scenario) error {
			return s.setPeriodicPrimaryUsers(period, onSlots)
		})
	}
}

// WithMarkovPrimaryUsers installs bursty primary users: each global
// channel flips between idle and occupied with the given per-slot
// transition probabilities (idle→busy pBusy, busy→idle pFree), over a
// precomputed horizon of `horizon` slots (0 picks a horizon generous
// enough for a CSEEK run). The seed drives the occupancy trajectory.
func WithMarkovPrimaryUsers(pBusy, pFree float64, horizon int64, seed uint64) ScenarioOption {
	return func(b *scenarioBuilder) {
		b.post = append(b.post, func(s *Scenario) error {
			return s.setMarkovPrimaryUsers(pBusy, pFree, horizon, seed)
		})
	}
}

// WithJammer installs a custom primary-user model.
func WithJammer(j Jammer) ScenarioOption {
	return func(b *scenarioBuilder) {
		b.post = append(b.post, func(s *Scenario) error {
			s.setJammer(j)
			return nil
		})
	}
}

// fail records the first option error; New reports it before
// generating anything.
func (b *scenarioBuilder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}
