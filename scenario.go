package crn

import (
	"fmt"

	"crn/internal/chanassign"
	"crn/internal/core"
	"crn/internal/dynamics"
	"crn/internal/graph"
	"crn/internal/radio"
	"crn/internal/rng"
	"crn/internal/spectrum"
)

// Topology names a built-in network generator.
type Topology string

// Built-in topologies.
const (
	// GNP is an Erdős–Rényi G(n, 0.3) graph conditioned on connectivity.
	GNP Topology = "gnp"
	// Star is a star with node 0 at the center (Δ = n-1).
	Star Topology = "star"
	// Path is a path (D = n-1).
	Path Topology = "path"
	// Grid is a near-square grid.
	Grid Topology = "grid"
	// Chain is a chain of 4-cliques bridged in a line (both Δ and D).
	Chain Topology = "chain"
	// Tree is a complete tree with branching min{c,Δ}-1 (Theorem 14's
	// worst case).
	Tree Topology = "tree"
	// UnitDisk is a random geometric graph in the unit square.
	UnitDisk Topology = "unitdisk"
	// Ring is a cycle on n >= 3 vertices (Δ = 2, D = n/2).
	Ring Topology = "ring"
	// Complete is the complete graph K_n (Δ = n-1, D = 1).
	Complete Topology = "complete"
	// Regular is a connected random near-regular graph: a Hamiltonian
	// cycle plus random chords until every vertex's degree is close to
	// d = max(2, round(Density·(n-1))) (Density 0 picks d = 4) —
	// sweeping Δ at fixed n without changing D much.
	Regular Topology = "regular"
)

// Algorithm names a neighbor-discovery algorithm.
type Algorithm string

// Discovery algorithms.
const (
	// CSeek is the paper's CSEEK (Theorem 4).
	CSeek Algorithm = "cseek"
	// Naive is the introduction's random-hop baseline, O~((c²/k)·Δ).
	Naive Algorithm = "naive"
	// Uniform is the back-off-sweep baseline without density sampling,
	// matching the Zeng et al. bound O~(c²/k + cΔ/k).
	Uniform Algorithm = "uniform"
)

// Scenario is an instantiated network: topology, channel assignment,
// and derived model parameters. A Scenario is immutable once built
// (the deprecated Set* mutators aside) and safe for concurrent
// Primitive runs — the sweep engine shares one Scenario across its
// workers.
type Scenario struct {
	g  *graph.Graph
	a  *chanassign.Assignment
	p  core.Params
	nw *radio.Network
	d  int
	// trace, when set (WithDeliveryTrace), observes every frame
	// delivery of every run on this scenario.
	trace radio.TraceFunc
	// geom is the realized unit-disk point set (nil for non-geometric
	// topologies); mobility models move a per-run clone of it.
	geom *graph.Geometry
	// topo is the composed topology-dynamics prototype (nil for the
	// paper's static model); every run gets a fresh instance via
	// dynamics run scoping.
	topo radio.TopologyFeed
}

// Jammer models primary-user occupancy: Jammed reports whether the
// given global channel is held by a primary user in the given slot.
// Frames broadcast on occupied channels are lost and listeners tuned
// there hear silence. Implementations must be deterministic functions
// of (slot, channel) and safe for concurrent readers.
type Jammer interface {
	Jammed(slot int64, channel int32) bool
}

// New generates a scenario from functional options:
//
//	s, err := crn.New(
//		crn.WithTopology(crn.GNP),
//		crn.WithNodes(24),
//		crn.WithChannels(8, 2, 0),
//		crn.WithSeed(7),
//	)
//
// Primary-user options (WithPeriodicPrimaryUsers,
// WithMarkovPrimaryUsers, WithJammer) apply after the network is
// generated, so they can depend on the realized channel universe.
func New(opts ...ScenarioOption) (*Scenario, error) {
	b := &scenarioBuilder{}
	for _, opt := range opts {
		opt(b)
	}
	if b.err != nil {
		return nil, b.err
	}
	s, err := newGeneratedScenario(b.cfg)
	if err != nil {
		return nil, err
	}
	for _, post := range b.post {
		if err := post(s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// newGeneratedScenario validates config and generates the network.
func newGeneratedScenario(cfg ScenarioConfig) (*Scenario, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("crn: need at least 2 nodes, got %d", cfg.N)
	}
	if cfg.C < 1 {
		return nil, fmt.Errorf("crn: need at least 1 channel, got %d", cfg.C)
	}
	if cfg.K < 1 || cfg.K > cfg.C {
		return nil, fmt.Errorf("crn: k must be in [1,c] = [1,%d], got %d", cfg.C, cfg.K)
	}
	kmax := cfg.KMax
	if kmax == 0 {
		kmax = cfg.K
	}
	if kmax < cfg.K || kmax > cfg.C {
		return nil, fmt.Errorf("crn: kmax must be in [k,c] = [%d,%d], got %d", cfg.K, cfg.C, kmax)
	}
	r := rng.New(cfg.Seed)

	g, geom, err := buildTopology(cfg, r)
	if err != nil {
		return nil, err
	}
	var a *chanassign.Assignment
	if kmax == cfg.K {
		a, err = chanassign.SharedCore(g.N(), cfg.C, cfg.K, r)
	} else {
		a, err = chanassign.Heterogeneous(g, cfg.C, cfg.K, kmax, 0.5, r)
	}
	if err != nil {
		return nil, err
	}
	s, err := newScenario(g, a, cfg.Tuning)
	if err != nil {
		return nil, err
	}
	s.geom = geom
	return s, nil
}

// CustomConfig describes an explicit scenario: an edge list plus
// per-node global channel sets. The caller is responsible for making
// every adjacent pair share at least one channel; NewCustomScenario
// verifies it.
type CustomConfig struct {
	// N is the number of nodes.
	N int
	// Edges lists undirected edges between nodes in [0, N).
	Edges [][2]int
	// Universe is the number of global channels.
	Universe int
	// Channels[u] lists node u's global channels; all nodes must have
	// the same count (the model's per-transceiver channel budget c).
	Channels [][]int
	// Seed drives the local channel labeling and the algorithms.
	Seed uint64
	// Tuning overrides constant multipliers; nil uses defaults.
	Tuning *core.Tuning
}

// NewCustomScenario builds a scenario from explicit topology and
// channel sets.
func NewCustomScenario(cfg CustomConfig, opts ...ScenarioOption) (*Scenario, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("crn: need at least 2 nodes, got %d", cfg.N)
	}
	if len(cfg.Channels) != cfg.N {
		return nil, fmt.Errorf("crn: %d channel sets for %d nodes", len(cfg.Channels), cfg.N)
	}
	g := graph.New(cfg.N)
	for _, e := range cfg.Edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("crn: %w", err)
		}
	}
	g.Finalize()
	if !g.Connected() {
		return nil, fmt.Errorf("crn: custom topology is not connected")
	}
	a, err := chanassign.FromSets(cfg.Universe, cfg.Channels, rng.New(cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("crn: %w", err)
	}
	kMin, _ := a.OverlapRange(g)
	if kMin < 1 {
		return nil, fmt.Errorf("crn: some adjacent pair shares no channels")
	}
	return assembleScenario(g, a, cfg.Tuning, opts)
}

// NewScenarioFromParts assembles a Scenario directly from a prebuilt
// graph and channel assignment. Because the argument types live in
// internal packages, only code inside this module can call it; the
// experiment harness uses it to run facade Primitives and Sweeps over
// bespoke workloads (weak-link stars, disjoint-sibling trees, ...)
// that the generator options cannot express. Only WithTuning and the
// primary-user options are meaningful in opts — topology-shaping
// options are ignored since the topology is already built.
func NewScenarioFromParts(g *graph.Graph, a *chanassign.Assignment, opts ...ScenarioOption) (*Scenario, error) {
	return assembleScenario(g, a, nil, opts)
}

// assembleScenario builds the Scenario over prebuilt parts and applies
// the options' tuning and post hooks. An explicit tuning wins over a
// WithTuning option.
func assembleScenario(g *graph.Graph, a *chanassign.Assignment, tuning *core.Tuning, opts []ScenarioOption) (*Scenario, error) {
	b := &scenarioBuilder{}
	for _, opt := range opts {
		opt(b)
	}
	if b.err != nil {
		return nil, b.err
	}
	if tuning == nil {
		tuning = b.cfg.Tuning
	}
	s, err := newScenario(g, a, tuning)
	if err != nil {
		return nil, err
	}
	for _, post := range b.post {
		if err := post(s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func newScenario(g *graph.Graph, a *chanassign.Assignment, tuning *core.Tuning) (*Scenario, error) {
	// Finalize here, while scenario assembly is single-threaded:
	// radio.NewEngine finalizes too (idempotently), but sweep workers
	// construct engines concurrently over this shared graph, and the
	// first Finalize must not race.
	g.Finalize()
	k, kmax := a.OverlapRange(g)
	p := core.Params{N: g.N(), C: a.C, K: k, KMax: kmax, Delta: g.MaxDegree()}
	if tuning != nil {
		p.Tuning = *tuning
	}
	if err := p.Normalize(); err != nil {
		return nil, fmt.Errorf("crn: %w", err)
	}
	d := g.Diameter()
	if d < 1 {
		d = 1
	}
	return &Scenario{g: g, a: a, p: p, nw: &radio.Network{Graph: g, Assign: a}, d: d}, nil
}

func buildTopology(cfg ScenarioConfig, r *rng.Source) (*graph.Graph, *graph.Geometry, error) {
	switch cfg.Topology {
	case GNP, "":
		p := cfg.Density
		if p == 0 {
			p = 0.3
		}
		g, err := graph.GNP(cfg.N, p, r)
		return g, nil, err
	case Star:
		return graph.Star(cfg.N), nil, nil
	case Path:
		return graph.Path(cfg.N), nil, nil
	case Grid:
		rows := 1
		for (rows+1)*(rows+1) <= cfg.N {
			rows++
		}
		cols := (cfg.N + rows - 1) / rows
		g, err := graph.Grid(rows, cols)
		return g, nil, err
	case Chain:
		const clusterSize = 4
		clusters := cfg.N / clusterSize
		if clusters < 1 {
			clusters = 1
		}
		g, err := graph.ClusterChain(clusters, clusterSize)
		return g, nil, err
	case Tree:
		branching := cfg.C - 1
		if branching < 1 {
			branching = 1
		}
		// Smallest height whose complete tree reaches N nodes.
		height, count, level := 0, 1, 1
		for count < cfg.N && height < 20 {
			level *= branching
			count += level
			height++
		}
		g, err := graph.CompleteTree(branching, height)
		return g, nil, err
	case UnitDisk:
		radius := cfg.Density
		if radius == 0 {
			radius = 0.35
		}
		return graph.UnitDiskGeometry(cfg.N, radius, r)
	case Ring:
		g, err := graph.Cycle(cfg.N)
		return g, nil, err
	case Complete:
		if cfg.N < 2 {
			return nil, nil, fmt.Errorf("crn: complete topology needs n >= 2, got %d", cfg.N)
		}
		return graph.Complete(cfg.N), nil, nil
	case Regular:
		if cfg.N < 3 {
			return nil, nil, fmt.Errorf("crn: regular topology needs n >= 3, got %d", cfg.N)
		}
		d := 4
		if cfg.Density != 0 {
			d = int(cfg.Density*float64(cfg.N-1) + 0.5)
		}
		if d < 2 {
			d = 2
		}
		if d >= cfg.N {
			d = cfg.N - 1
		}
		g, err := graph.RandomRegularish(cfg.N, d, r)
		return g, nil, err
	default:
		return nil, nil, fmt.Errorf("crn: unknown topology %q", cfg.Topology)
	}
}

// newPeriodicJammer builds the duty-cycled primary-user model with the
// phase staggered across the scenario's channel universe.
func (s *Scenario) newPeriodicJammer(period, onSlots int64) (spectrum.Jammer, error) {
	stride := period / int64(s.a.Universe)
	if stride < 1 {
		stride = 1
	}
	j, err := spectrum.NewPeriodic(period, onSlots, stride, nil)
	if err != nil {
		return nil, fmt.Errorf("crn: %w", err)
	}
	return j, nil
}

// autoHorizon is the precompute horizon stochastic primary-user models
// default to: twice a CSEEK schedule, generous enough for any
// primitive whose slot budget is CSEEK-dominated.
func (s *Scenario) autoHorizon() (int64, error) {
	probe, err := core.NewCSeek(s.p, core.Env{ID: 0, C: s.p.C, Rand: rng.New(1)})
	if err != nil {
		return 0, fmt.Errorf("crn: %w", err)
	}
	return 2 * probe.TotalSlots(), nil
}

// newMarkovJammer builds the bursty Markov primary-user model
// (horizon 0 picks autoHorizon).
func (s *Scenario) newMarkovJammer(pBusy, pFree float64, horizon int64, seed uint64) (spectrum.Jammer, error) {
	if horizon == 0 {
		var err error
		if horizon, err = s.autoHorizon(); err != nil {
			return nil, err
		}
	}
	j, err := spectrum.NewMarkov(s.a.Universe, horizon, pBusy, pFree, seed)
	if err != nil {
		return nil, fmt.Errorf("crn: %w", err)
	}
	return j, nil
}

// newPoissonJammer builds the Poisson-arrival primary-user model
// (horizon 0 picks autoHorizon).
func (s *Scenario) newPoissonJammer(rate, meanHold float64, horizon int64, seed uint64) (spectrum.Jammer, error) {
	if horizon == 0 {
		var err error
		if horizon, err = s.autoHorizon(); err != nil {
			return nil, err
		}
	}
	j, err := spectrum.NewPoisson(s.a.Universe, horizon, rate, meanHold, spectrum.HoldGeometric, seed)
	if err != nil {
		return nil, fmt.Errorf("crn: %w", err)
	}
	return j, nil
}

// newAdversary builds the t-bounded reactive adversary. t <= 0 picks
// the default budget of a quarter of the channel universe (at least 1)
// — enough to matter, never enough to drown every channel.
func (s *Scenario) newAdversary(t int) spectrum.Jammer {
	if t <= 0 {
		t = s.a.Universe / 4
		if t < 1 {
			t = 1
		}
	}
	return spectrum.NewReactiveAdversary(t)
}

// addJammer stacks j on top of any already-installed primary-user
// model (the ScenarioOption path: options compose, so Markov traffic
// plus an adversary is just two options).
func (s *Scenario) addJammer(j spectrum.Jammer) {
	if cur := s.nw.Jammer; cur != nil {
		j = spectrum.Compose(cur, j)
	}
	s.nw.Jammer = j
}

// newChurn builds the node-churn model over the realized node count.
func (s *Scenario) newChurn(pDown, pUp float64, seed uint64) (radio.TopologyFeed, error) {
	c, err := dynamics.NewChurn(s.g.N(), pDown, pUp, seed)
	if err != nil {
		return nil, fmt.Errorf("crn: %w", err)
	}
	return c, nil
}

// newEdgeFlap builds the link-flapping model over the realized edges.
func (s *Scenario) newEdgeFlap(pDrop, pRestore float64, seed uint64) (radio.TopologyFeed, error) {
	f, err := dynamics.NewEdgeFlap(s.g.Edges(), pDrop, pRestore, seed)
	if err != nil {
		return nil, fmt.Errorf("crn: %w", err)
	}
	return f, nil
}

// newMobility builds the random-waypoint model over the scenario's
// realized unit-disk geometry; it errors on topologies without one.
func (s *Scenario) newMobility(speed float64, every int64, seed uint64) (radio.TopologyFeed, error) {
	if s.geom == nil {
		return nil, fmt.Errorf("crn: WithMobility needs a geometric topology (WithTopology(UnitDisk))")
	}
	w, err := dynamics.NewRandomWaypoint(s.geom, speed, every, seed)
	if err != nil {
		return nil, fmt.Errorf("crn: %w", err)
	}
	return w, nil
}

// addTopologyFeed stacks a dynamics model on top of any already
// installed one (the ScenarioOption path: like spectrum options,
// dynamics options compose — churn plus link flapping is two
// options). The composed prototype is instantiated per run.
func (s *Scenario) addTopologyFeed(f radio.TopologyFeed) {
	s.topo = dynamics.Compose(s.topo, f)
}

// setPeriodicPrimaryUsers installs duty-cycled primary users,
// replacing any installed model (the deprecated
// SetPeriodicPrimaryUsers contract).
func (s *Scenario) setPeriodicPrimaryUsers(period, onSlots int64) error {
	if onSlots == 0 {
		s.nw.Jammer = nil
		return nil
	}
	j, err := s.newPeriodicJammer(period, onSlots)
	if err != nil {
		return err
	}
	s.nw.Jammer = j
	return nil
}

// setMarkovPrimaryUsers installs bursty Markov primary users,
// replacing any installed model (the deprecated SetMarkovPrimaryUsers
// contract).
func (s *Scenario) setMarkovPrimaryUsers(pBusy, pFree float64, horizon int64, seed uint64) error {
	j, err := s.newMarkovJammer(pBusy, pFree, horizon, seed)
	if err != nil {
		return err
	}
	s.nw.Jammer = j
	return nil
}

// setJammer installs a custom primary-user model (nil to clear),
// replacing any installed model (the deprecated SetJammer contract).
func (s *Scenario) setJammer(j Jammer) {
	if j == nil {
		s.nw.Jammer = nil
		return
	}
	s.nw.Jammer = j
}

// runNetwork returns the network a single simulation run should use.
// Scenarios are shared read-only across sweep workers, but stateful
// jammers (spectrum.RunScoped — the reactive adversary) and topology
// feeds (always stateful) carry per-run state, so each run gets a
// shallow network copy holding fresh instances; a delivery-trace
// callback rides along the same way. Stateless scenarios return the
// shared network unchanged.
func (s *Scenario) runNetwork() *radio.Network {
	rs, scoped := s.nw.Jammer.(spectrum.RunScoped)
	if !scoped && s.trace == nil && s.topo == nil {
		return s.nw
	}
	nw := *s.nw
	if scoped {
		nw.Jammer = rs.NewRun()
	}
	if s.topo != nil {
		nw.Topology = s.topo
		if drs, ok := s.topo.(dynamics.RunScoped); ok {
			nw.Topology = drs.NewRun()
		}
	}
	if s.trace != nil {
		nw.Trace = s.trace
	}
	return &nw
}

// ModelParams returns the scenario's normalized model parameters,
// including the realized tuning. Like NewScenarioFromParts, the
// internal return type confines callers to this module; the
// experiment harness uses it for schedule math.
func (s *Scenario) ModelParams() core.Params { return s.p }

// N returns the number of nodes.
func (s *Scenario) N() int { return s.g.N() }

// C returns the per-node channel count.
func (s *Scenario) C() int { return s.p.C }

// K returns the realized minimum neighbor overlap.
func (s *Scenario) K() int { return s.p.K }

// KMax returns the realized maximum neighbor overlap.
func (s *Scenario) KMax() int { return s.p.KMax }

// Delta returns the maximum degree Δ.
func (s *Scenario) Delta() int { return s.p.Delta }

// Diameter returns the network diameter D.
func (s *Scenario) Diameter() int { return s.d }

// Universe returns the number of global channels in the scenario.
func (s *Scenario) Universe() int { return s.a.Universe }

// Edges returns the topology's edge list.
func (s *Scenario) Edges() [][2]int {
	out := make([][2]int, 0, s.g.M())
	for _, e := range s.g.Edges() {
		out = append(out, [2]int{int(e.U), int(e.V)})
	}
	return out
}

// SharedChannelCount returns how many channels nodes u and v share.
func (s *Scenario) SharedChannelCount(u, v int) int { return s.a.SharedCount(u, v) }

// String describes the scenario.
func (s *Scenario) String() string {
	return fmt.Sprintf("n=%d c=%d k=%d kmax=%d Δ=%d D=%d edges=%d",
		s.N(), s.C(), s.K(), s.KMax(), s.Delta(), s.Diameter(), s.g.M())
}
