package crn_test

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"

	"crn"
)

func discoverySpec(workers int) crn.SweepSpec {
	return crn.SweepSpec{
		Primitive: crn.Discovery(crn.CSeek),
		Variants: []crn.Variant{
			{Name: "path", Options: []crn.ScenarioOption{
				crn.WithTopology(crn.Path), crn.WithNodes(6), crn.WithChannels(3, 2, 0), crn.WithSeed(1),
			}},
			{Name: "star", Options: []crn.ScenarioOption{
				crn.WithTopology(crn.Star), crn.WithNodes(8), crn.WithChannels(4, 2, 0), crn.WithSeed(2),
			}},
		},
		Seeds:       4,
		BaseSeed:    42,
		Workers:     workers,
		KeepResults: true,
	}
}

// TestSweepDeterministicAcrossWorkers is the engine's core contract:
// the same spec produces byte-identical results — runs and aggregates
// — at every worker count.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	ctx := context.Background()
	baseline, err := crn.Sweep(ctx, discoverySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(baseline)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		res, err := crn.Sweep(ctx, discoverySpec(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("workers=%d diverged from workers=1:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

// TestSweepAggregates sanity-checks the aggregate bookkeeping on a
// sweep that completes every run.
func TestSweepAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	res, err := crn.Sweep(context.Background(), discoverySpec(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aggregates) != 2 {
		t.Fatalf("got %d aggregates, want 2", len(res.Aggregates))
	}
	if len(res.Runs) != 8 {
		t.Fatalf("got %d runs, want 8", len(res.Runs))
	}
	seeds := make(map[uint64]bool)
	for _, run := range res.Runs {
		if run.Err != "" {
			t.Errorf("run (%s, %d) failed: %s", run.Variant, run.Index, run.Err)
		}
		if run.Result == nil {
			t.Errorf("run (%s, %d) dropped its Result despite KeepResults", run.Variant, run.Index)
		}
		if seeds[run.Seed] {
			t.Errorf("duplicate derived seed %d", run.Seed)
		}
		seeds[run.Seed] = true
	}
	for _, agg := range res.Aggregates {
		if agg.Primitive != "cseek" {
			t.Errorf("aggregate primitive %q", agg.Primitive)
		}
		if agg.Runs != 4 || agg.Failures != 0 {
			t.Errorf("aggregate %s: runs=%d failures=%d", agg.Variant, agg.Runs, agg.Failures)
		}
		tt, ok := agg.Metrics["timeToComplete"]
		if !ok || tt.N != 4 {
			t.Errorf("aggregate %s missing timeToComplete summary: %+v", agg.Variant, tt)
		}
		if _, ok := agg.Metrics["pairsTotal"]; !ok {
			t.Errorf("aggregate %s missing discovery detail metric", agg.Variant)
		}
	}

	// Without KeepResults the per-run detail is dropped but the
	// metrics — and therefore the aggregates — are unchanged.
	lean := discoverySpec(4)
	lean.KeepResults = false
	leanRes, err := crn.Sweep(context.Background(), lean)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range leanRes.Runs {
		if run.Result != nil {
			t.Errorf("run (%s, %d) kept its Result without KeepResults", run.Variant, run.Index)
		}
		if len(run.Metrics) == 0 {
			t.Errorf("run (%s, %d) lost its metrics", run.Variant, run.Index)
		}
	}
	if !reflect.DeepEqual(leanRes.Aggregates, res.Aggregates) {
		t.Error("aggregates changed when KeepResults was disabled")
	}
}

func TestSweepSpecValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := crn.Sweep(ctx, crn.SweepSpec{}); err == nil {
		t.Error("nil primitive accepted")
	}
	if _, err := crn.Sweep(ctx, crn.SweepSpec{Primitive: crn.Discovery(crn.CSeek)}); err == nil {
		t.Error("empty variant list accepted")
	}
	if _, err := crn.Sweep(ctx, crn.SweepSpec{
		Primitive: crn.Discovery(crn.CSeek),
		Variants:  []crn.Variant{{Name: "empty"}},
	}); err == nil {
		t.Error("variant without scenario or options accepted")
	}
	if _, err := crn.Sweep(ctx, crn.SweepSpec{
		Primitive: crn.Discovery(crn.CSeek),
		Variants: []crn.Variant{{
			Options: []crn.ScenarioOption{crn.WithNodes(1), crn.WithChannels(1, 1, 0)},
		}},
	}); err == nil {
		t.Error("invalid variant options accepted")
	}
}

// longBroadcastScenario is big enough that a full-fidelity CGCAST run
// takes far longer than the cancellation deadlines below.
func longBroadcastScenario(t *testing.T) *crn.Scenario {
	t.Helper()
	s, err := crn.New(crn.WithTopology(crn.Chain), crn.WithNodes(64), crn.WithChannels(16, 1, 0), crn.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestGlobalBroadcastCancellation proves a long CGCAST run stops early
// when its context is cancelled: with a pre-cancelled context it
// returns immediately, and with a short timeout it returns as soon as
// the engine observes the deadline — not after the multi-second
// full-fidelity schedule.
func TestGlobalBroadcastCancellation(t *testing.T) {
	s := longBroadcastScenario(t)
	prim := crn.GlobalBroadcast(0, "m", crn.WithFullFidelity())

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := prim.Run(cancelled, s, 7); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run returned %v, want context.Canceled", err)
	}

	ctx, cancel2 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel2()
	start := time.Now()
	_, err := prim.Run(ctx, s, 7)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out run returned %v, want context.DeadlineExceeded", err)
	}
	// Generous bound: the full run takes seconds; a honored deadline
	// returns orders of magnitude sooner.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
}

// TestSweepCancellation: a cancelled context aborts the sweep and
// surfaces ctx.Err().
func TestSweepCancellation(t *testing.T) {
	s := longBroadcastScenario(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := crn.Sweep(ctx, crn.SweepSpec{
		Primitive: crn.GlobalBroadcast(0, "m", crn.WithFullFidelity()),
		Variants:  []crn.Variant{{Name: "chain", Scenario: s}},
		Seeds:     8,
		BaseSeed:  5,
		Workers:   2,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("sweep returned %v, want context.DeadlineExceeded", err)
	}
}
