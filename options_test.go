package crn_test

import (
	"context"
	"reflect"
	"testing"

	"crn"
)

// TestNewMatchesNewScenario: the functional-option constructor and the
// deprecated positional config must generate the identical scenario —
// same realized parameters and the same deterministic simulation.
func TestNewMatchesNewScenario(t *testing.T) {
	viaOptions, err := crn.New(
		crn.WithTopology(crn.Path),
		crn.WithNodes(6),
		crn.WithChannels(4, 2, 0),
		crn.WithSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	viaConfig, err := crn.NewScenario(crn.ScenarioConfig{
		Topology: crn.Path, N: 6, C: 4, K: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if viaOptions.String() != viaConfig.String() {
		t.Errorf("scenarios differ: %q vs %q", viaOptions, viaConfig)
	}
	a, err := crn.Discovery(crn.CSeek).Run(context.Background(), viaOptions, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := crn.Discovery(crn.CSeek).Run(context.Background(), viaConfig, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("runs differ:\n%+v\nvs\n%+v", a, b)
	}
}

// TestDeprecatedShimsMatchPrimitives: the deprecated entry points are
// thin wrappers — their results must agree field-by-field with the
// Primitive Results they shim.
func TestDeprecatedShimsMatchPrimitives(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	s, err := crn.New(crn.WithTopology(crn.Chain), crn.WithNodes(16), crn.WithChannels(4, 2, 0), crn.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	old, err := s.Discover(crn.CSeek, 17)
	if err != nil {
		t.Fatal(err)
	}
	res, err := crn.Discovery(crn.CSeek).Run(ctx, s, 17)
	if err != nil {
		t.Fatal(err)
	}
	if old.ScheduleSlots != res.ScheduleSlots ||
		old.CompletedAtSlot != res.CompletedAtSlot ||
		old.PairsDiscovered != res.Discovery.PairsDiscovered ||
		old.PairsTotal != res.Discovery.PairsTotal ||
		!reflect.DeepEqual(old.Neighbors, res.Discovery.Neighbors) {
		t.Errorf("Discover shim drifted: %+v vs %+v", old, res)
	}

	oldB, err := s.Broadcast(0, "m", 19)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := crn.GlobalBroadcast(0, "m").Run(ctx, s, 19)
	if err != nil {
		t.Fatal(err)
	}
	if oldB.TotalSlots != resB.ScheduleSlots ||
		oldB.AllInformedAtSlot != resB.CompletedAtSlot ||
		oldB.AllInformed != resB.Completed ||
		oldB.SetupSlots != resB.Broadcast.SetupSlots ||
		oldB.DissemScheduleSlots != resB.Broadcast.DissemScheduleSlots {
		t.Errorf("Broadcast shim drifted: %+v vs %+v", oldB, resB)
	}

	oldF, err := s.Flood(0, "m", 23)
	if err != nil {
		t.Fatal(err)
	}
	resF, err := crn.Flooding(0, "m").Run(ctx, s, 23)
	if err != nil {
		t.Fatal(err)
	}
	if oldF.AllInformedAtSlot != resF.CompletedAtSlot || oldF.AllInformed != resF.Completed {
		t.Errorf("Flood shim drifted: %+v vs %+v", oldF, resF)
	}
}

func TestWithChannelsHeterogeneous(t *testing.T) {
	s, err := crn.New(crn.WithTopology(crn.Path), crn.WithNodes(8), crn.WithChannels(8, 2, 5), crn.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if s.KMax() <= s.K() {
		t.Errorf("kmax = %d not above k = %d in heterogeneous scenario", s.KMax(), s.K())
	}
}

// TestWithTuning: raising P1Steps must stretch the CSEEK schedule.
func TestWithTuning(t *testing.T) {
	mk := func(opts ...crn.ScenarioOption) int64 {
		t.Helper()
		base := []crn.ScenarioOption{
			crn.WithTopology(crn.Path), crn.WithNodes(6), crn.WithChannels(3, 2, 0), crn.WithSeed(5),
		}
		s, err := crn.New(append(base, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := crn.Discovery(crn.CSeek).Run(context.Background(), s, 9)
		if err != nil {
			t.Fatal(err)
		}
		return res.ScheduleSlots
	}
	def := mk()
	stretched := mk(crn.WithTuning(crn.Tuning{P1Steps: 16}))
	if stretched <= def {
		t.Errorf("P1Steps=16 schedule %d not above default %d", stretched, def)
	}
}

// totalJammer occupies every channel in every slot.
type totalJammer struct{}

func (totalJammer) Jammed(int64, int32) bool { return true }

// TestWithJammer: a total jammer installed as an option blocks all
// discovery, exactly like the deprecated SetJammer path.
func TestWithJammer(t *testing.T) {
	s, err := crn.New(
		crn.WithTopology(crn.Path), crn.WithNodes(6), crn.WithChannels(3, 2, 0), crn.WithSeed(31),
		crn.WithJammer(totalJammer{}),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := crn.Discovery(crn.CSeek).Run(context.Background(), s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Discovery.PairsDiscovered != 0 {
		t.Errorf("discovered %d pairs under total jamming, want 0", res.Discovery.PairsDiscovered)
	}
}

func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []crn.ScenarioOption
	}{
		{name: "no nodes", opts: []crn.ScenarioOption{crn.WithChannels(3, 1, 0)}},
		{name: "too few nodes", opts: []crn.ScenarioOption{crn.WithNodes(1), crn.WithChannels(3, 1, 0)}},
		{name: "k over c", opts: []crn.ScenarioOption{crn.WithNodes(4), crn.WithChannels(2, 3, 0)}},
		{name: "kmax under k", opts: []crn.ScenarioOption{crn.WithNodes(4), crn.WithChannels(4, 3, 2)}},
		{name: "bad topology", opts: []crn.ScenarioOption{crn.WithTopology("donut"), crn.WithNodes(4), crn.WithChannels(2, 1, 0)}},
		{name: "bad periodic users", opts: []crn.ScenarioOption{crn.WithNodes(4), crn.WithChannels(2, 1, 0), crn.WithPeriodicPrimaryUsers(40, 0)}},
		{name: "bad markov users", opts: []crn.ScenarioOption{crn.WithNodes(4), crn.WithChannels(2, 1, 0), crn.WithMarkovPrimaryUsers(2.0, 0.2, 100, 9)}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := crn.New(tt.opts...); err == nil {
				t.Error("invalid options accepted")
			}
		})
	}
}
