package crn

import (
	"context"
	"fmt"

	"crn/internal/rng"
)

// ShardPlan deterministically partitions one sweep's job grid into
// contiguous shards that independent processes (or hosts) can execute
// and later merge. The grid is the same one Sweep iterates: job =
// variant*Seeds + index over len(Variants) × Seeds runs, and per-run
// seeds derive from BaseSeed keyed by the grid position alone — so a
// shard reproduces exactly the runs the single-process sweep would
// have executed for its slice, and MergeShards reassembles output
// byte-identical to Sweep's.
//
// The plan carries the resolved identity of the sweep it partitions
// (primitive name, variant names, seed count, base seed). RunShard
// checks the spec it is handed against that identity, so a manifest
// cannot silently be replayed against a drifted spec.
type ShardPlan struct {
	// Primitive is the resolved primitive name (Primitive.Name()).
	Primitive string `json:"primitive"`
	// Variants are the resolved variant names, in variant order.
	Variants []string `json:"variants"`
	// Seeds is the resolved runs-per-variant count (≥ 1).
	Seeds int `json:"seeds"`
	// BaseSeed is the sweep's master seed.
	BaseSeed uint64 `json:"baseSeed"`
	// Shards are the contiguous job ranges, covering [0, total)
	// exactly; shard k executes jobs [Shards[k].Lo, Shards[k].Hi).
	Shards []ShardRange `json:"shards"`
}

// ShardRange is one shard's half-open job range.
type ShardRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// ShardResult holds the runs of one executed shard — the unit of work
// a distributed sweep moves between processes.
type ShardResult struct {
	// Shard indexes into the plan's Shards.
	Shard int `json:"shard"`
	// Runs are the shard's runs in job order.
	Runs []Run `json:"runs"`
}

// PlanShards validates spec and splits its job grid into shards
// balanced contiguous ranges (the first total%shards ranges take one
// extra job; ranges are empty when shards exceeds the job count).
// Planning is pure bookkeeping — no simulation runs — so the same
// spec and shard count always produce the same plan, on any machine.
func PlanShards(spec SweepSpec, shards int) (*ShardPlan, error) {
	if shards < 1 {
		return nil, fmt.Errorf("crn: shard count %d, want ≥ 1", shards)
	}
	rs, err := resolveSweep(spec)
	if err != nil {
		return nil, err
	}
	plan := &ShardPlan{
		Primitive: spec.Primitive.Name(),
		Variants:  rs.names,
		Seeds:     rs.seeds,
		BaseSeed:  spec.BaseSeed,
		Shards:    make([]ShardRange, shards),
	}
	lo := 0
	for s := range plan.Shards {
		size := rs.total / shards
		if s < rs.total%shards {
			size++
		}
		plan.Shards[s] = ShardRange{Lo: lo, Hi: lo + size}
		lo += size
	}
	return plan, nil
}

// total returns the job-grid size the plan covers.
func (p *ShardPlan) total() int { return len(p.Variants) * p.Seeds }

// validate checks the plan's internal consistency: a positive grid
// and shard ranges that tile [0, total) exactly.
func (p *ShardPlan) validate() error {
	if len(p.Variants) == 0 || p.Seeds < 1 {
		return fmt.Errorf("crn: shard plan has an empty job grid (%d variants × %d seeds)", len(p.Variants), p.Seeds)
	}
	if len(p.Shards) == 0 {
		return fmt.Errorf("crn: shard plan has no shards")
	}
	lo := 0
	for s, r := range p.Shards {
		if r.Lo != lo || r.Hi < r.Lo {
			return fmt.Errorf("crn: shard %d range [%d,%d) does not tile the job grid (expected lo %d)", s, r.Lo, r.Hi, lo)
		}
		lo = r.Hi
	}
	if lo != p.total() {
		return fmt.Errorf("crn: shard ranges cover %d jobs, grid has %d", lo, p.total())
	}
	return nil
}

// checkPlan verifies that plan describes exactly this resolved sweep.
func (rs *resolvedSweep) checkPlan(plan *ShardPlan) error {
	if err := plan.validate(); err != nil {
		return err
	}
	if plan.Primitive != rs.spec.Primitive.Name() {
		return fmt.Errorf("crn: plan primitive %q, spec runs %q", plan.Primitive, rs.spec.Primitive.Name())
	}
	if plan.Seeds != rs.seeds {
		return fmt.Errorf("crn: plan has %d seeds per variant, spec %d", plan.Seeds, rs.seeds)
	}
	if plan.BaseSeed != rs.spec.BaseSeed {
		return fmt.Errorf("crn: plan base seed %d, spec %d", plan.BaseSeed, rs.spec.BaseSeed)
	}
	if len(plan.Variants) != len(rs.names) {
		return fmt.Errorf("crn: plan has %d variants, spec %d", len(plan.Variants), len(rs.names))
	}
	for v, name := range plan.Variants {
		if name != rs.names[v] {
			return fmt.Errorf("crn: plan variant %d is %q, spec resolves %q", v, name, rs.names[v])
		}
	}
	return nil
}

// RunShard executes one shard of a plan: the jobs in plan.Shards[shard],
// with the identical per-run seeds, worker-pool semantics and error
// handling as Sweep (spec.Workers bounds parallelism; run errors are
// recorded, only ctx cancellation aborts). spec must be the sweep the
// plan was made from — RunShard re-resolves and cross-checks it.
func RunShard(ctx context.Context, spec SweepSpec, plan *ShardPlan, shard int) (*ShardResult, error) {
	rs, err := resolveSweep(spec)
	if err != nil {
		return nil, err
	}
	if err := rs.checkPlan(plan); err != nil {
		return nil, err
	}
	if shard < 0 || shard >= len(plan.Shards) {
		return nil, fmt.Errorf("crn: shard %d out of range (plan has %d)", shard, len(plan.Shards))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	r := plan.Shards[shard]
	runs := make([]Run, 0, r.Hi-r.Lo)
	for job := r.Lo; job < r.Hi; job++ {
		runs = append(runs, rs.runFor(job))
	}
	if err := rs.executeJobs(ctx, r.Lo, r.Hi, runs); err != nil {
		return nil, err
	}
	return &ShardResult{Shard: shard, Runs: runs}, nil
}

// MergeShards reassembles a complete sweep from shard results: every
// shard of the plan present exactly once, each run slotted back into
// its job-grid position, and the aggregates computed by the same path
// Sweep uses (aggregateRuns over stats accumulators). For results
// produced by RunShard from the plan's spec, the returned SweepResult
// is byte-identical (as JSON) to Sweep of that spec — merge equals
// union, exactly.
//
// Each run's identity (variant, index, derived seed) is validated
// against the plan before merging, so artifacts from a different plan,
// base seed or job slice are rejected rather than silently merged.
func MergeShards(plan *ShardPlan, shards ...*ShardResult) (*SweepResult, error) {
	if err := plan.validate(); err != nil {
		return nil, err
	}
	master := rng.New(plan.BaseSeed)
	runs := make([]Run, plan.total())
	seen := make([]bool, len(plan.Shards))
	for pos, sr := range shards {
		if sr == nil {
			return nil, fmt.Errorf("crn: nil shard result (argument %d of %d)", pos, len(shards))
		}
		if sr.Shard < 0 || sr.Shard >= len(plan.Shards) {
			return nil, fmt.Errorf("crn: shard %d out of range (plan has %d)", sr.Shard, len(plan.Shards))
		}
		if seen[sr.Shard] {
			return nil, fmt.Errorf("crn: shard %d supplied twice", sr.Shard)
		}
		seen[sr.Shard] = true
		r := plan.Shards[sr.Shard]
		if len(sr.Runs) != r.Hi-r.Lo {
			return nil, fmt.Errorf("crn: shard %d has %d runs, plan range [%d,%d) wants %d",
				sr.Shard, len(sr.Runs), r.Lo, r.Hi, r.Hi-r.Lo)
		}
		for k, run := range sr.Runs {
			job := r.Lo + k
			v, i := job/plan.Seeds, job%plan.Seeds
			if run.Variant != plan.Variants[v] || run.Index != i {
				return nil, fmt.Errorf("crn: shard %d run %d is (%q, %d), plan expects (%q, %d)",
					sr.Shard, k, run.Variant, run.Index, plan.Variants[v], i)
			}
			if want := deriveSeed(master, v, i); run.Seed != want {
				return nil, fmt.Errorf("crn: shard %d run (%q, %d) has seed %d, plan derives %d — artifact from a different base seed?",
					sr.Shard, run.Variant, run.Index, run.Seed, want)
			}
			runs[job] = run
		}
	}
	for s, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("crn: shard %d missing from merge", s)
		}
	}
	return &SweepResult{
		Aggregates: aggregateRuns(plan.Primitive, plan.Variants, plan.Seeds, runs),
		Runs:       runs,
	}, nil
}
