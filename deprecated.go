package crn

import (
	"context"

	"crn/internal/core"
)

// This file keeps the pre-Primitive API alive as thin shims over the
// new surface. Everything here is deprecated; see README.md for the
// table mapping each entry point to its replacement.

// ScenarioConfig describes a generated scenario.
//
// Deprecated: use New with ScenarioOptions (WithTopology, WithNodes,
// WithChannels, ...).
type ScenarioConfig struct {
	// Topology selects the graph generator.
	Topology Topology
	// N is the number of nodes.
	N int
	// C is the number of channels per node.
	C int
	// K is the guaranteed number of shared channels per neighbor pair.
	K int
	// KMax, when > K, produces a heterogeneous assignment in which
	// roughly half the edges share KMax channels. Zero means KMax = K.
	KMax int
	// Density is the edge probability for GNP and the radius for
	// UnitDisk; zero picks a sensible default.
	Density float64
	// Seed drives scenario generation.
	Seed uint64
	// Tuning overrides the algorithms' constant multipliers; nil uses
	// defaults.
	Tuning *core.Tuning
}

// NewScenario generates a scenario from config.
//
// Deprecated: use New with ScenarioOptions.
func NewScenario(cfg ScenarioConfig) (*Scenario, error) {
	return newGeneratedScenario(cfg)
}

// SetPeriodicPrimaryUsers installs duty-cycled primary users: every
// global channel is occupied for onSlots out of every period slots,
// with the phase staggered across channels so some spectrum is always
// free. Pass onSlots = 0 to clear.
//
// Deprecated: pass WithPeriodicPrimaryUsers to New.
func (s *Scenario) SetPeriodicPrimaryUsers(period, onSlots int64) error {
	return s.setPeriodicPrimaryUsers(period, onSlots)
}

// SetMarkovPrimaryUsers installs bursty primary users: each global
// channel flips between idle and occupied with the given per-slot
// transition probabilities (idle→busy pBusy, busy→idle pFree), over a
// precomputed horizon of `horizon` slots (0 picks a horizon generous
// enough for a CSEEK run).
//
// Deprecated: pass WithMarkovPrimaryUsers to New.
func (s *Scenario) SetMarkovPrimaryUsers(pBusy, pFree float64, horizon int64, seed uint64) error {
	return s.setMarkovPrimaryUsers(pBusy, pFree, horizon, seed)
}

// SetJammer installs a custom primary-user model (nil to clear).
//
// Deprecated: pass WithJammer to New.
func (s *Scenario) SetJammer(j Jammer) { s.setJammer(j) }

// DiscoveryResult reports one neighbor-discovery run.
//
// Deprecated: use the Result envelope returned by the Discovery and
// KDiscovery primitives.
type DiscoveryResult struct {
	// Algorithm is the algorithm that ran.
	Algorithm string `json:"algorithm"`
	// ScheduleSlots is the protocol's fixed schedule length.
	ScheduleSlots int64 `json:"scheduleSlots"`
	// CompletedAtSlot is the slot by which every node knew all its
	// neighbors, or -1 if the schedule ended first.
	CompletedAtSlot int64 `json:"completedAtSlot"`
	// PairsDiscovered counts directed (node, neighbor) discoveries.
	PairsDiscovered int `json:"pairsDiscovered"`
	// PairsTotal is the number of directed neighbor pairs.
	PairsTotal int `json:"pairsTotal"`
	// Neighbors[u] lists the identities node u discovered.
	Neighbors [][]int `json:"neighbors"`
}

// AllDiscovered reports whether every node found every neighbor.
func (r *DiscoveryResult) AllDiscovered() bool { return r.PairsDiscovered == r.PairsTotal }

func asDiscoveryResult(res *Result) *DiscoveryResult {
	d := res.Discovery
	return &DiscoveryResult{
		Algorithm:       d.Algorithm,
		ScheduleSlots:   res.ScheduleSlots,
		CompletedAtSlot: res.CompletedAtSlot,
		PairsDiscovered: d.PairsDiscovered,
		PairsTotal:      d.PairsTotal,
		Neighbors:       d.Neighbors,
	}
}

// Discover runs a neighbor-discovery algorithm on the scenario.
//
// Deprecated: use Discovery(algo).Run(ctx, s, seed).
func (s *Scenario) Discover(algo Algorithm, seed uint64) (*DiscoveryResult, error) {
	res, err := Discovery(algo).Run(context.Background(), s, seed)
	if err != nil {
		return nil, err
	}
	return asDiscoveryResult(res), nil
}

// DiscoverK runs CKSEEK: every node finds (at least) all neighbors
// sharing at least khat channels with it. The result counts only those
// "good" pairs.
//
// Deprecated: use KDiscovery(khat).Run(ctx, s, seed).
func (s *Scenario) DiscoverK(khat int, seed uint64) (*DiscoveryResult, error) {
	res, err := KDiscovery(khat).Run(context.Background(), s, seed)
	if err != nil {
		return nil, err
	}
	return asDiscoveryResult(res), nil
}

// BroadcastResult reports one CGCAST run.
//
// Deprecated: use the Result envelope returned by the GlobalBroadcast
// primitive.
type BroadcastResult struct {
	// TotalSlots is setup plus the full dissemination schedule.
	TotalSlots int64 `json:"totalSlots"`
	// SetupSlots covers discovery, channel fixing, coloring, announce.
	SetupSlots int64 `json:"setupSlots"`
	// DissemScheduleSlots is the dissemination stage's fixed length.
	DissemScheduleSlots int64 `json:"dissemScheduleSlots"`
	// AllInformedAtSlot is the dissemination slot after which every
	// node held the message (-1 if some node finished uninformed).
	AllInformedAtSlot int64 `json:"allInformedAtSlot"`
	// AllInformed reports whether every node got the message.
	AllInformed bool `json:"allInformed"`
	// EdgesColored / EdgesDropped describe the realized edge coloring.
	EdgesColored int `json:"edgesColored"`
	EdgesDropped int `json:"edgesDropped"`
	// ColoringValid reports properness of the realized coloring.
	ColoringValid bool `json:"coloringValid"`
}

// Broadcast runs CGCAST from the given source node.
//
// Deprecated: use GlobalBroadcast(source, message, opts...).Run.
func (s *Scenario) Broadcast(source int, message any, seed uint64, opts ...BroadcastOption) (*BroadcastResult, error) {
	res, err := GlobalBroadcast(source, message, opts...).Run(context.Background(), s, seed)
	if err != nil {
		return nil, err
	}
	b := res.Broadcast
	return &BroadcastResult{
		TotalSlots:          res.ScheduleSlots,
		SetupSlots:          b.SetupSlots,
		DissemScheduleSlots: b.DissemScheduleSlots,
		AllInformedAtSlot:   res.CompletedAtSlot,
		AllInformed:         b.AllInformed,
		EdgesColored:        b.EdgesColored,
		EdgesDropped:        b.EdgesDropped,
		ColoringValid:       b.ColoringValid,
	}, nil
}

// FloodResult reports one flooding-baseline run.
//
// Deprecated: use the Result envelope returned by the Flooding
// primitive.
type FloodResult struct {
	// AllInformedAtSlot is the slot after which every node held the
	// message, or -1 if the budget ran out first.
	AllInformedAtSlot int64 `json:"allInformedAtSlot"`
	// AllInformed reports whether every node got the message.
	AllInformed bool `json:"allInformed"`
}

// Flood runs the naive flooding broadcast baseline.
//
// Deprecated: use Flooding(source, message).Run.
func (s *Scenario) Flood(source int, message any, seed uint64) (*FloodResult, error) {
	res, err := Flooding(source, message).Run(context.Background(), s, seed)
	if err != nil {
		return nil, err
	}
	return &FloodResult{AllInformedAtSlot: res.CompletedAtSlot, AllInformed: res.Completed}, nil
}
