package crn

import (
	"context"
	"testing"
)

// Validation coverage for the facade Topology values backed by the
// previously orphaned graph generators (Cycle, Complete,
// RandomRegularish) plus structural sanity for each.

func TestRingTopology(t *testing.T) {
	s, err := New(WithTopology(Ring), WithNodes(12), WithChannels(4, 2, 0), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if s.Delta() != 2 {
		t.Errorf("ring Δ = %d, want 2", s.Delta())
	}
	if got := len(s.Edges()); got != 12 {
		t.Errorf("ring on 12 nodes has %d edges, want 12", got)
	}
	if s.Diameter() != 6 {
		t.Errorf("ring diameter = %d, want 6", s.Diameter())
	}
	if _, err := New(WithTopology(Ring), WithNodes(2), WithChannels(4, 2, 0)); err == nil {
		t.Error("ring with n=2 should error")
	}
}

func TestCompleteTopology(t *testing.T) {
	s, err := New(WithTopology(Complete), WithNodes(9), WithChannels(4, 2, 0), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if s.Delta() != 8 {
		t.Errorf("complete Δ = %d, want 8", s.Delta())
	}
	if got := len(s.Edges()); got != 9*8/2 {
		t.Errorf("K_9 has %d edges, want 36", got)
	}
	if s.Diameter() != 1 {
		t.Errorf("complete diameter = %d, want 1", s.Diameter())
	}
}

func TestRegularTopology(t *testing.T) {
	// Density scales the target degree: d = round(Density·(n-1)).
	s, err := New(WithTopology(Regular), WithNodes(20), WithChannels(4, 2, 0), WithDensity(0.3), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	d := 6 // round(0.3 · 19)
	for u := 0; u < s.N(); u++ {
		deg := 0
		for _, e := range s.Edges() {
			if e[0] == u || e[1] == u {
				deg++
			}
		}
		if deg < 2 || deg > d+1 {
			t.Errorf("node %d degree %d outside [2, %d]", u, deg, d+1)
		}
	}
	// Density 0 picks the documented default d = 4.
	if _, err := New(WithTopology(Regular), WithNodes(20), WithChannels(4, 2, 0), WithSeed(3)); err != nil {
		t.Errorf("regular with default density: %v", err)
	}
	if _, err := New(WithTopology(Regular), WithNodes(2), WithChannels(4, 2, 0)); err == nil {
		t.Error("regular with n=2 should error")
	}
}

// TestNewTopologiesRunPrimitives: every newly exposed topology drives
// a full discovery run through the facade.
func TestNewTopologiesRunPrimitives(t *testing.T) {
	for _, topo := range []Topology{Ring, Complete, Regular} {
		s, err := New(WithTopology(topo), WithNodes(10), WithChannels(4, 2, 0), WithSeed(7))
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		res, err := Discovery(CSeek).Run(context.Background(), s, 5)
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		if res.Discovery.PairsTotal == 0 {
			t.Errorf("%s: no neighbor pairs", topo)
		}
	}
}
