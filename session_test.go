package crn

import "testing"

// TestBroadcastSessionReuse is the amortization property: one setup
// serves many broadcasts, from different sources, each only paying the
// dissemination schedule.
func TestBroadcastSessionReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	s, err := NewScenario(ScenarioConfig{Topology: Chain, N: 16, C: 4, K: 2, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := s.NewBroadcastSession(52)
	if err != nil {
		t.Fatal(err)
	}
	if bs.SetupSlots() <= 0 {
		t.Fatalf("SetupSlots = %d", bs.SetupSlots())
	}
	if bs.EdgesColored() == 0 {
		t.Fatal("no edges colored")
	}

	var firstSchedule int64
	for i, source := range []int{0, 7, 15} {
		res, err := bs.Broadcast(source, i, uint64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllInformed {
			t.Errorf("broadcast %d from %d left nodes uninformed", i, source)
		}
		if i == 0 {
			firstSchedule = res.ScheduleSlots
		} else if res.ScheduleSlots != firstSchedule {
			t.Errorf("schedule changed between broadcasts: %d vs %d", res.ScheduleSlots, firstSchedule)
		}
		if res.AllInformedAtSlot < 0 || res.AllInformedAtSlot > res.ScheduleSlots {
			t.Errorf("AllInformedAtSlot = %d outside schedule", res.AllInformedAtSlot)
		}
	}
}

// TestLocalBroadcast: one dissemination phase reaches exactly the
// source's neighborhood on a path (and not the far end).
func TestLocalBroadcast(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	s, err := NewScenario(ScenarioConfig{Topology: Path, N: 8, C: 3, K: 2, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := s.NewBroadcastSession(62)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bs.LocalBroadcast(0, "hi", 63)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Error("source's neighborhood not informed by local broadcast")
	}
	// A single phase cannot cross the 7-hop path.
	if res.AllInformedAtSlot != -1 {
		t.Errorf("AllInformedAtSlot = %d; a 1-phase broadcast cannot inform a D=7 path", res.AllInformedAtSlot)
	}
	if res.ScheduleSlots <= 0 {
		t.Errorf("ScheduleSlots = %d", res.ScheduleSlots)
	}
}

func TestBroadcastSessionSourceValidation(t *testing.T) {
	s, err := NewScenario(ScenarioConfig{Topology: Path, N: 6, C: 3, K: 2, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := s.NewBroadcastSession(54)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bs.Broadcast(-1, "x", 1); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := bs.Broadcast(6, "x", 1); err == nil {
		t.Error("out-of-range source accepted")
	}
}

// TestSessionMatchesOneShot: RunCGCast (one-shot) and session setup +
// one dissemination must agree on the slot accounting.
func TestSessionMatchesOneShot(t *testing.T) {
	s, err := NewScenario(ScenarioConfig{Topology: Path, N: 8, C: 3, K: 2, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := s.Broadcast(0, "m", 56)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := s.NewBroadcastSession(56)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bs.Broadcast(0, "m", 57)
	if err != nil {
		t.Fatal(err)
	}
	if bs.SetupSlots() != oneShot.SetupSlots {
		t.Errorf("setup slots differ: session %d vs one-shot %d", bs.SetupSlots(), oneShot.SetupSlots)
	}
	if res.ScheduleSlots != oneShot.DissemScheduleSlots {
		t.Errorf("dissemination slots differ: session %d vs one-shot %d",
			res.ScheduleSlots, oneShot.DissemScheduleSlots)
	}
}
