package crn

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// Facade-level lockdown of the topology-dynamics subsystem: options
// stack and validate, results carry the Topology detail, and sweeps
// over the dynamics presets stay byte-identical at any worker count
// (the per-run feed instantiation in Scenario.runNetwork is what
// makes that hold).

func dynamicsBase(extra ...ScenarioOption) []ScenarioOption {
	return append([]ScenarioOption{
		WithTopology(GNP), WithNodes(12), WithChannels(4, 2, 0), WithSeed(6),
	}, extra...)
}

func TestStaticRunsCarryNoTopologyDetail(t *testing.T) {
	s, err := New(dynamicsBase()...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Discovery(CSeek).Run(context.Background(), s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Topology != nil {
		t.Fatalf("static run carries topology detail: %+v", *res.Topology)
	}
	if _, ok := res.Metrics()["edgeChanges"]; ok {
		t.Error("static run emits topology metrics")
	}
}

func TestChurnShowsInResults(t *testing.T) {
	s, err := New(dynamicsBase(WithChurn(0.01, 0.08, 5))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Discovery(CSeek).Run(context.Background(), s, 3)
	if err != nil {
		t.Fatal(err)
	}
	top := res.Topology
	if top == nil {
		t.Fatal("churn run carries no topology detail")
	}
	if top.NodeLeaves == 0 || top.DownNodeSlots == 0 {
		t.Errorf("churn applied nothing: %+v", *top)
	}
	if top.EdgeAdds != 0 || top.EdgeRemoves != 0 {
		t.Errorf("pure churn changed edges: %+v", *top)
	}
	m := res.Metrics()
	if m["nodeChurnEvents"] == 0 || m["downNodeSlots"] == 0 {
		t.Errorf("churn metrics missing: %v", m)
	}
}

func TestEdgeFlapShowsInResults(t *testing.T) {
	s, err := New(dynamicsBase(WithEdgeFlap(0.01, 0.1, 5))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Discovery(CSeek).Run(context.Background(), s, 3)
	if err != nil {
		t.Fatal(err)
	}
	top := res.Topology
	if top == nil {
		t.Fatal("flap run carries no topology detail")
	}
	if top.EdgeRemoves == 0 {
		t.Errorf("flap removed no edges: %+v", *top)
	}
	if top.PartitionLosses == 0 {
		t.Errorf("flap caused no partition losses: %+v", *top)
	}
	if top.NodeLeaves != 0 || top.DownNodeSlots != 0 {
		t.Errorf("pure flap churned nodes: %+v", *top)
	}
}

func TestMobilityRequiresGeometry(t *testing.T) {
	if _, err := New(dynamicsBase(WithMobility(0.01, 4, 5))...); err == nil {
		t.Fatal("WithMobility on a GNP topology should error")
	}
	s, err := New(
		WithTopology(UnitDisk), WithNodes(14), WithChannels(4, 2, 0),
		WithDensity(0.4), WithSeed(6), WithMobility(0.005, 4, 5),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Discovery(CSeek).Run(context.Background(), s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Topology == nil || res.Topology.EdgeAdds+res.Topology.EdgeRemoves == 0 {
		t.Fatalf("mobility changed no edges: %+v", res.Topology)
	}
}

// TestDynamicsOptionsStack: churn plus flap yields both node and edge
// dynamics in one run.
func TestDynamicsOptionsStack(t *testing.T) {
	s, err := New(dynamicsBase(WithChurn(0.01, 0.08, 5), WithEdgeFlap(0.01, 0.1, 6))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Discovery(CSeek).Run(context.Background(), s, 3)
	if err != nil {
		t.Fatal(err)
	}
	top := res.Topology
	if top == nil || top.NodeLeaves == 0 || top.EdgeRemoves == 0 {
		t.Fatalf("stacked dynamics incomplete: %+v", top)
	}
}

// TestRediscoveryAccounting: under churn, some neighbors are found
// only after they rejoined, and the latency accounting is consistent.
func TestRediscoveryAccounting(t *testing.T) {
	s, err := New(dynamicsBase(WithChurn(0.02, 0.05, 9))...)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for seed := uint64(1); seed <= 8 && !found; seed++ {
		res, err := Discovery(CSeek).Run(context.Background(), s, seed)
		if err != nil {
			t.Fatal(err)
		}
		top := res.Topology
		if top == nil {
			t.Fatal("churn run carries no topology detail")
		}
		if top.RediscoveredPairs < 0 || top.RediscoveryLatencyTotal < 0 {
			t.Fatalf("negative rediscovery accounting: %+v", *top)
		}
		if top.RediscoveredPairs == 0 && top.RediscoveryLatencyTotal != 0 {
			t.Fatalf("latency without pairs: %+v", *top)
		}
		if top.RediscoveredPairs > 0 {
			found = true
			if top.MeanRediscoveryLatency() <= 0 {
				t.Errorf("mean rediscovery latency %v, want > 0", top.MeanRediscoveryLatency())
			}
			if m := res.Metrics(); m["rediscoveryLatencyMean"] != top.MeanRediscoveryLatency() {
				t.Errorf("metrics latency %v != detail %v", m["rediscoveryLatencyMean"], top.MeanRediscoveryLatency())
			}
		}
	}
	if !found {
		t.Error("no seed produced a rediscovered pair — churn too weak for the test to bite")
	}
}

// TestSweepDynamicsPresetsByteIdentical is the PR's acceptance check:
// sweeps over the mobile-sparse and churn-heavy presets produce
// byte-identical results (full runs and aggregates) at 1 and 8
// workers. Topology feeds are stateful, so this only holds because
// every run gets its own feed instance (Scenario.runNetwork).
func TestSweepDynamicsPresetsByteIdentical(t *testing.T) {
	base := []ScenarioOption{WithTopology(GNP), WithNodes(12), WithChannels(4, 2, 0), WithSeed(5)}
	for _, name := range []string{PresetMobileSparse, PresetChurnHeavy} {
		s, err := New(presetOptions(t, name, base...)...)
		if err != nil {
			t.Fatal(err)
		}
		sweep := func(workers int) []byte {
			res, err := Sweep(context.Background(), SweepSpec{
				Primitive:   Discovery(CSeek),
				Variants:    []Variant{{Name: name, Scenario: s}},
				Seeds:       6,
				BaseSeed:    77,
				Workers:     workers,
				KeepResults: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Aggregates[0].Failures > 0 {
				t.Fatalf("preset %q: %d sweep runs failed", name, res.Aggregates[0].Failures)
			}
			b, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
		w1, w8 := sweep(1), sweep(8)
		if !bytes.Equal(w1, w8) {
			t.Errorf("preset %q: sweep results differ between 1 and 8 workers", name)
		}
		if !bytes.Contains(w1, []byte("edgeChanges")) && !bytes.Contains(w1, []byte("nodeChurnEvents")) {
			t.Errorf("preset %q: sweep metrics carry no topology accounting", name)
		}
	}
}

// TestDynamicsPresetsDegradeDiscovery: the dynamics presets must
// actually bite — discovery under churn-heavy finds no more pairs
// than the same scenario without churn, and strictly loses something
// across a small sweep.
func TestDynamicsPresetsDegradeDiscovery(t *testing.T) {
	pairs := func(opts ...ScenarioOption) float64 {
		s, err := New(append(dynamicsBase(), opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Sweep(context.Background(), SweepSpec{
			Primitive: Discovery(CSeek),
			Variants:  []Variant{{Name: "v", Scenario: s}},
			Seeds:     4,
			BaseSeed:  3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Aggregates[0].Metrics["pairsDiscovered"].Mean
	}
	static := pairs()
	churned := pairs(WithChurn(0.02, 0.02, 7))
	if churned > static {
		t.Errorf("discovery under heavy churn found more pairs (%v) than static (%v)", churned, static)
	}
	if churned == static {
		t.Logf("churn did not reduce discovered pairs at this size (static=%v) — acceptable but surprising", static)
	}
}
