package crn_test

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"crn"
)

// batchSpec is a sweep over mixed variants chosen to exercise every
// batched-execution path: a plain static variant, a static variant
// with a run-scoped reactive adversary (per-replica ActivitySink), and
// a dynamic-topology variant whose replicas mutate private graph
// clones inside the fused pass.
func batchSpec(primitive crn.Primitive, workers, batch int) crn.SweepSpec {
	return crn.SweepSpec{
		Primitive: primitive,
		Variants: []crn.Variant{
			{Name: "static", Options: []crn.ScenarioOption{
				crn.WithTopology(crn.GNP), crn.WithNodes(16), crn.WithDensity(0.3),
				crn.WithChannels(4, 2, 0), crn.WithSeed(11),
			}},
			{Name: "adversary", Options: []crn.ScenarioOption{
				crn.WithTopology(crn.GNP), crn.WithNodes(14), crn.WithDensity(0.35),
				crn.WithChannels(4, 2, 0), crn.WithSeed(12), crn.WithAdversary(1),
			}},
			{Name: "churn", Options: []crn.ScenarioOption{
				crn.WithTopology(crn.GNP), crn.WithNodes(12), crn.WithDensity(0.4),
				crn.WithChannels(3, 2, 0), crn.WithSeed(13), crn.WithChurn(0.002, 0.05, 9),
			}},
		},
		Seeds:       6,
		BaseSeed:    99,
		Workers:     workers,
		Batch:       batch,
		KeepResults: true,
	}
}

// TestSweepBatchByteIdentical is the batched sweep's contract: for any
// worker count, Batch > 1 produces byte-identical runs and aggregates
// to the unbatched sweep (which is itself worker-count invariant).
func TestSweepBatchByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	ctx := context.Background()
	for _, prim := range []crn.Primitive{crn.Discovery(crn.CSeek), crn.KDiscovery(2)} {
		t.Run(prim.Name(), func(t *testing.T) {
			baseline, err := crn.Sweep(ctx, batchSpec(prim, 1, 0))
			if err != nil {
				t.Fatal(err)
			}
			want, err := json.Marshal(baseline)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				for _, batch := range []int{2, 4, 8} {
					res, err := crn.Sweep(ctx, batchSpec(prim, workers, batch))
					if err != nil {
						t.Fatalf("workers=%d batch=%d: %v", workers, batch, err)
					}
					got, err := json.Marshal(res)
					if err != nil {
						t.Fatal(err)
					}
					if string(got) != string(want) {
						t.Errorf("workers=%d batch=%d diverged from sequential baseline", workers, batch)
					}
				}
			}
		})
	}
}

// TestSweepBatchNonBatchingPrimitive: a primitive without RunBatch
// silently runs unbatched — Batch is advisory, never an error.
func TestSweepBatchNonBatchingPrimitive(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	spec := crn.SweepSpec{
		Primitive: crn.Flooding(0, "m"),
		Variants: []crn.Variant{{Name: "g", Options: []crn.ScenarioOption{
			crn.WithTopology(crn.GNP), crn.WithNodes(10), crn.WithDensity(0.4),
			crn.WithChannels(3, 2, 0), crn.WithSeed(5),
		}}},
		Seeds:    3,
		BaseSeed: 4,
		Batch:    4,
	}
	res, err := crn.Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range res.Runs {
		if run.Err != "" {
			t.Errorf("run (%s, %d) failed: %s", run.Variant, run.Index, run.Err)
		}
	}
	if res.Batching == nil || res.Batching.Supported || res.Batching.Used() {
		t.Errorf("flooding sweep should report unsupported, unbatched execution, got %+v", res.Batching)
	}
}

// TestSweepBatchingReported pins the facade's batching report: no more
// silent fallbacks — the result states whether fused passes actually
// ran. Static AND dynamic variants batch (dynamic batching is real,
// not a fallback), non-batching primitives and Batch <= 1 report
// sequential execution, and the report never leaks into the JSON shape
// (batched and sequential sweeps are byte-identical on the wire).
func TestSweepBatchingReported(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	ctx := context.Background()

	// Batch=4 over 3 variants × 6 seeds: chunks of 4+2 per variant, all
	// of size > 1, so every run — including the churn variant's — must
	// execute inside a fused pass.
	res, err := crn.Sweep(ctx, batchSpec(crn.Discovery(crn.CSeek), 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	b := res.Batching
	if b == nil || !b.Supported || b.Requested != 4 {
		t.Fatalf("bad batching report: %+v", b)
	}
	if b.BatchedRuns != 18 || b.SequentialRuns != 0 {
		t.Errorf("static+dynamic spec: want all 18 runs batched, got batched=%d sequential=%d", b.BatchedRuns, b.SequentialRuns)
	}

	// Batch=0 on the same batching-capable primitive: supported but
	// unused.
	res, err = crn.Sweep(ctx, batchSpec(crn.Discovery(crn.CSeek), 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	b = res.Batching
	if b == nil || !b.Supported || b.Used() || b.SequentialRuns != 18 {
		t.Errorf("Batch=0 spec: want supported, all 18 runs sequential, got %+v", b)
	}

	// Seeds=5 with Batch=4 leaves a size-1 tail chunk per variant: the
	// report must count it as sequential (a single-run "batch" runs
	// through the plain path).
	spec := batchSpec(crn.Discovery(crn.CSeek), 2, 4)
	spec.Seeds = 5
	res, err = crn.Sweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	b = res.Batching
	if b.BatchedRuns != 12 || b.SequentialRuns != 3 {
		t.Errorf("tail-chunk spec: want batched=12 sequential=3, got batched=%d sequential=%d", b.BatchedRuns, b.SequentialRuns)
	}

	// The report is execution metadata, not outcome: it must not
	// surface in the serialized result.
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "Batching") || strings.Contains(string(raw), "BatchedRuns") {
		t.Error("batching report leaked into JSON")
	}
}
