package crn_test

import (
	"context"
	"encoding/json"
	"testing"

	"crn"
)

// batchSpec is a sweep over mixed variants chosen to exercise every
// batched-execution path: a plain static variant, a static variant
// with a run-scoped reactive adversary (per-replica ActivitySink), and
// a dynamic-topology variant that must fall back to sequential runs.
func batchSpec(primitive crn.Primitive, workers, batch int) crn.SweepSpec {
	return crn.SweepSpec{
		Primitive: primitive,
		Variants: []crn.Variant{
			{Name: "static", Options: []crn.ScenarioOption{
				crn.WithTopology(crn.GNP), crn.WithNodes(16), crn.WithDensity(0.3),
				crn.WithChannels(4, 2, 0), crn.WithSeed(11),
			}},
			{Name: "adversary", Options: []crn.ScenarioOption{
				crn.WithTopology(crn.GNP), crn.WithNodes(14), crn.WithDensity(0.35),
				crn.WithChannels(4, 2, 0), crn.WithSeed(12), crn.WithAdversary(1),
			}},
			{Name: "churn", Options: []crn.ScenarioOption{
				crn.WithTopology(crn.GNP), crn.WithNodes(12), crn.WithDensity(0.4),
				crn.WithChannels(3, 2, 0), crn.WithSeed(13), crn.WithChurn(0.002, 0.05, 9),
			}},
		},
		Seeds:       6,
		BaseSeed:    99,
		Workers:     workers,
		Batch:       batch,
		KeepResults: true,
	}
}

// TestSweepBatchByteIdentical is the batched sweep's contract: for any
// worker count, Batch > 1 produces byte-identical runs and aggregates
// to the unbatched sweep (which is itself worker-count invariant).
func TestSweepBatchByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	ctx := context.Background()
	for _, prim := range []crn.Primitive{crn.Discovery(crn.CSeek), crn.KDiscovery(2)} {
		t.Run(prim.Name(), func(t *testing.T) {
			baseline, err := crn.Sweep(ctx, batchSpec(prim, 1, 0))
			if err != nil {
				t.Fatal(err)
			}
			want, err := json.Marshal(baseline)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				for _, batch := range []int{2, 4, 8} {
					res, err := crn.Sweep(ctx, batchSpec(prim, workers, batch))
					if err != nil {
						t.Fatalf("workers=%d batch=%d: %v", workers, batch, err)
					}
					got, err := json.Marshal(res)
					if err != nil {
						t.Fatal(err)
					}
					if string(got) != string(want) {
						t.Errorf("workers=%d batch=%d diverged from sequential baseline", workers, batch)
					}
				}
			}
		})
	}
}

// TestSweepBatchNonBatchingPrimitive: a primitive without RunBatch
// silently runs unbatched — Batch is advisory, never an error.
func TestSweepBatchNonBatchingPrimitive(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	spec := crn.SweepSpec{
		Primitive: crn.Flooding(0, "m"),
		Variants: []crn.Variant{{Name: "g", Options: []crn.ScenarioOption{
			crn.WithTopology(crn.GNP), crn.WithNodes(10), crn.WithDensity(0.4),
			crn.WithChannels(3, 2, 0), crn.WithSeed(5),
		}}},
		Seeds:    3,
		BaseSeed: 4,
		Batch:    4,
	}
	res, err := crn.Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range res.Runs {
		if run.Err != "" {
			t.Errorf("run (%s, %d) failed: %s", run.Variant, run.Index, run.Err)
		}
	}
}
