// Package crn is the public entry point of the cognitive-radio-network
// communication-primitives library, a reproduction of "Communication
// Primitives in Cognitive Radio Networks" (Gilbert, Kuhn, Zheng;
// PODC 2017).
//
// The model: n nodes, each with a transceiver that can access c
// channels (different nodes can access different channels, with no
// global channel labels); neighbors share between k and kmax channels;
// time is slotted; a listener hears a message iff exactly one neighbor
// broadcasts on its channel; there is no collision detection.
//
// The API has three layers:
//
//   - Scenarios. New assembles a network scenario from functional
//     ScenarioOptions (WithTopology, WithChannels, WithJammer, ...);
//     NewCustomScenario wires an explicit topology and channel sets.
//
//   - Primitives. Every algorithm of the paper is a Primitive — a
//     named, runnable unit returning one common Result envelope:
//     Discovery (CSEEK, Theorem 4, plus the naive and uniform-sweep
//     baselines), KDiscovery (CKSEEK, Theorem 6), GlobalBroadcast
//     (CGCAST, Theorem 9), and Flooding (the naive broadcast
//     baseline). Run accepts a context.Context and stops early when it
//     is cancelled.
//
//   - Sweeps. Sweep fans one Primitive out over seeds × scenario
//     variants on a bounded worker pool, with deterministic per-run
//     seed derivation: the aggregates are byte-identical regardless of
//     worker count. PlanShards / RunShard / MergeShards distribute the
//     same job grid across processes or hosts — merged shard results
//     are byte-identical to the single-process sweep (cmd/crnsweep
//     drives this over a resumable JSON manifest).
//
// See DESIGN.md for the architecture and README.md for a quickstart
// plus the table mapping deprecated entry points (Scenario.Discover,
// Scenario.SetJammer, ...) to their replacements. The experiment
// harness behind cmd/crnbench regenerates the reproduction tables for
// every claim in the paper.
package crn
