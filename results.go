package crn

import "crn/internal/stats"

// Result is the common envelope every Primitive returns: the schedule
// budget, when (and whether) the primitive's goal predicate was
// reached, and one per-primitive detail block. Consumers that only
// care about slots and completion — the sweep engine, cmd/crnsim's
// output path, the experiment harness — never have to switch over
// primitive-specific structs.
type Result struct {
	// Primitive is the name of the primitive that ran (e.g. "cseek",
	// "ckseek", "cgcast", "flood").
	Primitive string `json:"primitive"`
	// ScheduleSlots is the primitive's fixed slot budget. For
	// GlobalBroadcast it is setup plus the dissemination schedule.
	ScheduleSlots int64 `json:"scheduleSlots"`
	// CompletedAtSlot is the slot by which the primitive's goal held
	// (all neighbors known, all good pairs found, every node informed),
	// or -1 if the schedule ended first. For broadcast primitives the
	// slot is relative to the dissemination stage.
	CompletedAtSlot int64 `json:"completedAtSlot"`
	// Completed reports whether the goal was reached within the budget.
	Completed bool `json:"completed"`

	// Discovery carries neighbor-discovery detail (Discovery and
	// KDiscovery primitives).
	Discovery *DiscoveryDetail `json:"discovery,omitempty"`
	// Broadcast carries broadcast detail (GlobalBroadcast and Flooding
	// primitives).
	Broadcast *BroadcastDetail `json:"broadcast,omitempty"`
	// Spectrum carries the run's radio/spectrum accounting — how much
	// listening the primitive did and how much of it primary users or
	// an adversary jammed. For GlobalBroadcast it covers the stages
	// that ran in the radio model (dissemination; setup too under
	// WithFullFidelity).
	Spectrum *SpectrumDetail `json:"spectrum,omitempty"`
	// Topology carries the run's topology-dynamics accounting; nil for
	// the paper's static model (no WithChurn / WithEdgeFlap /
	// WithMobility option installed).
	Topology *TopologyDetail `json:"topology,omitempty"`
}

// SpectrumDetail reports one run's radio-level spectrum accounting.
type SpectrumDetail struct {
	// Listens counts listener-slots.
	Listens int64 `json:"listens"`
	// Deliveries counts frames heard by listeners.
	Deliveries int64 `json:"deliveries"`
	// Collisions counts listener-slots lost to simultaneous
	// broadcasting neighbors.
	Collisions int64 `json:"collisions"`
	// JammedListens counts listener-slots lost to primary users or an
	// adversary — the jammed-slot accounting for spectrum-dynamics
	// experiments.
	JammedListens int64 `json:"jammedListens"`
}

// TopologyDetail reports one run's topology dynamics: how much the
// graph changed underneath the protocols and what it cost them.
type TopologyDetail struct {
	// EdgeAdds / EdgeRemoves count edge mutations actually applied.
	EdgeAdds    int64 `json:"edgeAdds"`
	EdgeRemoves int64 `json:"edgeRemoves"`
	// NodeJoins / NodeLeaves count up/down transitions; DownNodeSlots
	// counts node-slots spent down (neither transmitting nor
	// observing).
	NodeJoins     int64 `json:"nodeJoins"`
	NodeLeaves    int64 `json:"nodeLeaves"`
	DownNodeSlots int64 `json:"downNodeSlots"`
	// PartitionLosses counts listener-slots in which the static base
	// topology would have delivered a frame but the dynamic topology
	// did not deliver it — deliveries lost to churned-away edges.
	PartitionLosses int64 `json:"partitionLosses"`
	// RediscoveredPairs counts directed (node, neighbor) discoveries
	// made after the neighbor had gone down and rejoined —
	// re-discovery under churn. RediscoveryLatencyTotal sums, over
	// those pairs, the engine slots from the neighbor's rejoin to the
	// discovery. Discovery primitives only; zero elsewhere.
	RediscoveredPairs       int   `json:"rediscoveredPairs,omitempty"`
	RediscoveryLatencyTotal int64 `json:"rediscoveryLatencyTotal,omitempty"`
}

// MeanRediscoveryLatency returns the mean slots from a neighbor's
// rejoin to its re-discovery, or -1 when nothing was re-discovered.
func (d *TopologyDetail) MeanRediscoveryLatency() float64 {
	if d.RediscoveredPairs == 0 {
		return -1
	}
	return float64(d.RediscoveryLatencyTotal) / float64(d.RediscoveredPairs)
}

// DiscoveryDetail reports one neighbor-discovery run. For KDiscovery
// the pair counts refer to the "good" (≥ k̂ shared channels) pairs.
type DiscoveryDetail struct {
	// Algorithm is the algorithm that ran.
	Algorithm string `json:"algorithm"`
	// PairsDiscovered counts directed (node, neighbor) discoveries.
	PairsDiscovered int `json:"pairsDiscovered"`
	// PairsTotal is the number of directed neighbor pairs.
	PairsTotal int `json:"pairsTotal"`
	// Neighbors[u] lists the identities node u discovered.
	Neighbors [][]int `json:"neighbors"`
	// FirstHeard[u][i] is the slot node u first heard Neighbors[u][i],
	// or -1 when the protocol does not expose observation times.
	FirstHeard [][]int64 `json:"firstHeard,omitempty"`
}

// AllDiscovered reports whether every pair was found.
func (d *DiscoveryDetail) AllDiscovered() bool { return d.PairsDiscovered == d.PairsTotal }

// BroadcastDetail reports one broadcast run. The coloring fields are
// meaningful only for GlobalBroadcast; Flooding has no setup stage and
// leaves them zero.
type BroadcastDetail struct {
	// SetupSlots covers discovery, channel fixing, coloring, announce
	// (zero for Flooding).
	SetupSlots int64 `json:"setupSlots"`
	// DissemScheduleSlots is the dissemination stage's fixed length.
	DissemScheduleSlots int64 `json:"dissemScheduleSlots"`
	// AllInformed reports whether every node got the message.
	AllInformed bool `json:"allInformed"`
	// EdgesColored / EdgesDropped describe the realized edge coloring.
	EdgesColored int `json:"edgesColored"`
	EdgesDropped int `json:"edgesDropped"`
	// ColoringValid reports properness of the realized coloring.
	ColoringValid bool `json:"coloringValid"`
}

// Metrics returns the run's named numeric measurements — the values
// Sweep aggregates across runs. "timeToComplete" is CompletedAtSlot
// censored at the schedule the slot is measured against (the
// conservative treatment of runs whose schedule ended before the goal
// held); for broadcast primitives both use the dissemination-stage
// origin, so completed and censored runs stay on one scale.
// "completed" is a 0/1 indicator.
func (r *Result) Metrics() map[string]float64 {
	budget := r.ScheduleSlots
	if r.Broadcast != nil {
		budget = r.Broadcast.DissemScheduleSlots
	}
	timeTo := float64(budget)
	if r.CompletedAtSlot >= 0 {
		timeTo = float64(r.CompletedAtSlot)
	}
	m := map[string]float64{
		"scheduleSlots":  float64(r.ScheduleSlots),
		"timeToComplete": timeTo,
		"completed":      b2f(r.Completed),
	}
	if d := r.Discovery; d != nil {
		m["pairsDiscovered"] = float64(d.PairsDiscovered)
		m["pairsTotal"] = float64(d.PairsTotal)
	}
	if b := r.Broadcast; b != nil {
		m["setupSlots"] = float64(b.SetupSlots)
		m["dissemScheduleSlots"] = float64(b.DissemScheduleSlots)
		m["allInformed"] = b2f(b.AllInformed)
	}
	if sp := r.Spectrum; sp != nil {
		m["listens"] = float64(sp.Listens)
		m["jammedListens"] = float64(sp.JammedListens)
		m["deliveries"] = float64(sp.Deliveries)
		m["collisions"] = float64(sp.Collisions)
	}
	if tp := r.Topology; tp != nil {
		m["edgeChanges"] = float64(tp.EdgeAdds + tp.EdgeRemoves)
		m["nodeChurnEvents"] = float64(tp.NodeJoins + tp.NodeLeaves)
		m["downNodeSlots"] = float64(tp.DownNodeSlots)
		m["partitionLosses"] = float64(tp.PartitionLosses)
		m["rediscoveredPairs"] = float64(tp.RediscoveredPairs)
		if tp.RediscoveredPairs > 0 {
			m["rediscoveryLatencyMean"] = tp.MeanRediscoveryLatency()
		}
	}
	return m
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// The sweep result envelope lives alongside Result for the same
// reason Result exists: every consumer of sweep output — the in-
// process engine, the sharded cmd/crnsweep pipeline, CI byte-diffs —
// sees one JSON shape, whichever execution path produced it.

// Summary is the per-metric aggregate the sweep engine reports:
// mean, standard deviation, median and quartiles of one metric across
// the runs of one variant.
type Summary = stats.Summary

// Run is one completed (or failed) simulation inside a sweep.
type Run struct {
	// Variant is the variant's resolved name.
	Variant string `json:"variant"`
	// Index is the seed index within the variant, in [0, Seeds).
	Index int `json:"index"`
	// Seed is the derived per-run seed.
	Seed uint64 `json:"seed"`
	// Completed reports whether the run's goal predicate held.
	Completed bool `json:"completed"`
	// Metrics are the run's numeric measurements (Result.Metrics);
	// nil when the run failed.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Result is the full envelope, retained only when
	// SweepSpec.KeepResults is set (and the run succeeded).
	Result *Result `json:"result,omitempty"`
	// Err is the run's error message, empty on success.
	Err string `json:"err,omitempty"`
}

// Aggregate summarizes one variant's runs.
type Aggregate struct {
	// Variant is the variant's resolved name.
	Variant string `json:"variant"`
	// Primitive is the primitive that ran.
	Primitive string `json:"primitive"`
	// Runs / Failures / Completed count the variant's runs, the runs
	// that errored, and the runs whose goal predicate held.
	Runs      int `json:"runs"`
	Failures  int `json:"failures"`
	Completed int `json:"completed"`
	// Metrics maps each Result metric (see Result.Metrics) to its
	// summary across the variant's successful runs.
	Metrics map[string]Summary `json:"metrics"`
}

// SweepResult is the outcome of one sweep — whether it ran in one
// process (Sweep) or was stitched back together from shard artifacts
// (MergeShards). The two paths produce byte-identical JSON for the
// same spec.
type SweepResult struct {
	// Aggregates holds one entry per variant, in variant order.
	Aggregates []Aggregate `json:"aggregates"`
	// Runs holds every run in deterministic (variant, index) order.
	Runs []Run `json:"runs"`
	// Batching reports how the sweep's Batch request was actually
	// executed — whether the primitive supports fused batch passes and
	// how many runs went through them. It describes execution strategy,
	// not outcome, so it is deliberately excluded from the JSON shape:
	// batched and sequential sweeps must stay byte-identical on the
	// wire. Nil when the sweep was assembled by MergeShards (shards
	// report their own execution locally).
	Batching *BatchingInfo `json:"-"`
}

// BatchingInfo describes how SweepSpec.Batch was honored. Before this
// report existed, a spec could silently fall back to sequential runs
// (e.g. every dynamic-topology sweep did); now the facade states what
// actually happened.
type BatchingInfo struct {
	// Requested is SweepSpec.Batch as given.
	Requested int
	// Supported reports whether the primitive implements fused batch
	// execution at all.
	Supported bool
	// BatchedRuns counts runs executed inside a fused multi-run engine
	// pass; SequentialRuns counts runs executed one engine at a time
	// (including size-1 chunks at variant boundaries). They sum to the
	// sweep's total runs.
	BatchedRuns    int
	SequentialRuns int
}

// Used reports whether any run actually executed through a fused
// batch pass.
func (b *BatchingInfo) Used() bool { return b != nil && b.BatchedRuns > 0 }
