// Package trace records radio-engine executions as structured event
// streams. Traces serve three purposes: debugging (crntrace renders
// them), regression checking (same seed ⇒ byte-identical trace), and
// analysis (delivery timelines feed experiment post-processing).
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"crn/internal/radio"
)

// Event is one recorded delivery: a listener heard a frame.
type Event struct {
	// Slot is the engine slot of the delivery.
	Slot int64 `json:"slot"`
	// Listener is the node that heard the frame.
	Listener int32 `json:"listener"`
	// Sender is the node whose frame was heard.
	Sender int32 `json:"sender"`
	// Channel is the global channel the frame crossed.
	Channel int32 `json:"channel"`
}

// Recorder accumulates delivery events from an engine run.
// Attach with Attach; not safe for RunParallel (use Run).
type Recorder struct {
	events []Event
}

// Attach registers the recorder on an engine. It replaces any
// previously installed trace callback.
func (r *Recorder) Attach(e *radio.Engine) {
	e.SetTrace(func(slot int64, listener radio.NodeID, ch int32, msg *radio.Message) {
		r.events = append(r.events, Event{
			Slot:     slot,
			Listener: int32(listener),
			Sender:   int32(msg.From),
			Channel:  ch,
		})
	})
}

// Record appends one event directly — for collectors fed by delivery
// callbacks outside this package (e.g. the facade's WithDeliveryTrace)
// that want the Recorder's serialization and comparison helpers.
func (r *Recorder) Record(ev Event) { r.events = append(r.events, ev) }

// Events returns the recorded events in delivery order. The caller
// must not modify the slice.
func (r *Recorder) Events() []Event { return r.events }

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// WriteJSONL streams the events as JSON Lines.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range r.events {
		if err := enc.Encode(&r.events[i]); err != nil {
			return fmt.Errorf("trace: encode event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSON Lines stream produced by WriteJSONL.
func ReadJSONL(rd io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(rd)
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("trace: decode event %d: %w", len(out), err)
		}
		out = append(out, ev)
	}
}

// Equal reports whether two event streams are identical.
func Equal(a, b []Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Summary aggregates a trace for quick inspection.
type Summary struct {
	// Events is the total number of deliveries.
	Events int `json:"events"`
	// FirstSlot and LastSlot bound the delivery activity.
	FirstSlot int64 `json:"firstSlot"`
	LastSlot  int64 `json:"lastSlot"`
	// PerChannel counts deliveries per global channel.
	PerChannel map[int32]int `json:"perChannel"`
	// PerListener counts deliveries per listening node.
	PerListener map[int32]int `json:"perListener"`
}

// Summarize computes a Summary of the events.
func Summarize(events []Event) Summary {
	s := Summary{
		PerChannel:  make(map[int32]int),
		PerListener: make(map[int32]int),
		FirstSlot:   -1,
		LastSlot:    -1,
	}
	for _, ev := range events {
		s.Events++
		if s.FirstSlot == -1 || ev.Slot < s.FirstSlot {
			s.FirstSlot = ev.Slot
		}
		if ev.Slot > s.LastSlot {
			s.LastSlot = ev.Slot
		}
		s.PerChannel[ev.Channel]++
		s.PerListener[ev.Listener]++
	}
	return s
}
