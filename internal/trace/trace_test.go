package trace

import (
	"bytes"
	"strings"
	"testing"

	"crn/internal/chanassign"
	"crn/internal/core"
	"crn/internal/graph"
	"crn/internal/radio"
	"crn/internal/rng"
)

// record runs a small CSEEK discovery with a recorder attached.
func record(t *testing.T, seed uint64) *Recorder {
	t.Helper()
	g := graph.Star(5)
	a, err := chanassign.SharedCore(5, 3, 2, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{N: 5, C: 3, K: 2, KMax: 2, Delta: 4}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	master := rng.New(seed + 1)
	protos := make([]radio.Protocol, 5)
	var schedule int64
	for u := 0; u < 5; u++ {
		s, err := core.NewCSeek(p, core.Env{ID: radio.NodeID(u), C: 3, Rand: master.Split(uint64(u))})
		if err != nil {
			t.Fatal(err)
		}
		schedule = s.TotalSlots()
		protos[u] = s
	}
	e, err := radio.NewEngine(&radio.Network{Graph: g, Assign: a}, protos)
	if err != nil {
		t.Fatal(err)
	}
	var rec Recorder
	rec.Attach(e)
	e.Run(schedule + 1)
	return &rec
}

func TestRecorderCapturesDeliveries(t *testing.T) {
	rec := record(t, 1)
	if rec.Len() == 0 {
		t.Fatal("no events recorded")
	}
	prev := int64(-1)
	for i, ev := range rec.Events() {
		if ev.Slot < prev {
			t.Fatalf("event %d out of slot order", i)
		}
		prev = ev.Slot
		if ev.Listener < 0 || ev.Listener >= 5 || ev.Sender < 0 || ev.Sender >= 5 {
			t.Fatalf("event %d has bad endpoints: %+v", i, ev)
		}
		if ev.Listener == ev.Sender {
			t.Fatalf("event %d: node heard itself", i)
		}
		// On a star every delivery involves the center.
		if ev.Listener != 0 && ev.Sender != 0 {
			t.Fatalf("event %d: leaf-to-leaf delivery on a star: %+v", i, ev)
		}
	}
}

// TestReplayDeterminism is the regression guarantee: identical seeds
// produce byte-identical traces.
func TestReplayDeterminism(t *testing.T) {
	a := record(t, 7)
	b := record(t, 7)
	if !Equal(a.Events(), b.Events()) {
		t.Fatal("same-seed traces differ")
	}
	c := record(t, 8)
	if Equal(a.Events(), c.Events()) {
		t.Fatal("different-seed traces identical")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	rec := record(t, 3)
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != rec.Len() {
		t.Errorf("wrote %d lines for %d events", lines, rec.Len())
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(rec.Events(), back) {
		t.Error("JSONL round trip mismatch")
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{bad json")); err == nil {
		t.Error("malformed input accepted")
	}
	evs, err := ReadJSONL(strings.NewReader(""))
	if err != nil || len(evs) != 0 {
		t.Errorf("empty input: %v, %d events", err, len(evs))
	}
}

func TestEqual(t *testing.T) {
	a := []Event{{Slot: 1, Listener: 0, Sender: 1, Channel: 2}}
	b := []Event{{Slot: 1, Listener: 0, Sender: 1, Channel: 2}}
	if !Equal(a, b) {
		t.Error("identical streams not equal")
	}
	if Equal(a, nil) {
		t.Error("different lengths equal")
	}
	b[0].Channel = 3
	if Equal(a, b) {
		t.Error("differing events equal")
	}
}

func TestSummarize(t *testing.T) {
	events := []Event{
		{Slot: 5, Listener: 0, Sender: 1, Channel: 2},
		{Slot: 9, Listener: 0, Sender: 2, Channel: 2},
		{Slot: 12, Listener: 1, Sender: 0, Channel: 0},
	}
	s := Summarize(events)
	if s.Events != 3 {
		t.Errorf("Events = %d, want 3", s.Events)
	}
	if s.FirstSlot != 5 || s.LastSlot != 12 {
		t.Errorf("slot bounds = [%d,%d], want [5,12]", s.FirstSlot, s.LastSlot)
	}
	if s.PerChannel[2] != 2 || s.PerChannel[0] != 1 {
		t.Errorf("PerChannel = %v", s.PerChannel)
	}
	if s.PerListener[0] != 2 || s.PerListener[1] != 1 {
		t.Errorf("PerListener = %v", s.PerListener)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Events != 0 || s.FirstSlot != -1 || s.LastSlot != -1 {
		t.Errorf("empty summary = %+v", s)
	}
}
