package dynamics

import (
	"fmt"
	"math"

	"crn/internal/graph"
	"crn/internal/radio"
	"crn/internal/rng"
)

// RandomWaypoint models node mobility with the classic random-
// waypoint process over the unit-disk geometry a scenario was
// generated from: each node moves toward a uniformly random waypoint
// in the unit square at `speed` distance per slot, draws a new
// waypoint on arrival, and the edge set is re-derived from the moved
// positions — pairs within the geometry's radius are neighbors —
// every `every` slots (the epoch stride; movement between epochs is
// applied in one epoch-sized hop, so finer strides trade simulation
// cost for fidelity).
//
// Determinism: waypoint draws come from one rng stream consumed in
// fixed node order inside the sequential Step, so the whole motion
// trail is a pure function of (seed, geometry).
type RandomWaypoint struct {
	base    *graph.Geometry
	speed   float64
	every   int64
	seed    uint64
	geom    *graph.Geometry // mutable per-run positions
	r       *rng.Source
	wx, wy  []float64
	steps   int64
	lastMut radio.TopologyMutator
}

// NewRandomWaypoint returns a mobility model over the given geometry
// (cloned; the scenario's realized geometry stays fixed). speed is
// distance per slot (> 0, with 1 the side of the square); every is
// the epoch stride in slots (>= 1).
func NewRandomWaypoint(geom *graph.Geometry, speed float64, every int64, seed uint64) (*RandomWaypoint, error) {
	if geom == nil || len(geom.X) == 0 {
		return nil, fmt.Errorf("dynamics: mobility needs a unit-disk geometry")
	}
	if speed <= 0 {
		return nil, fmt.Errorf("dynamics: mobility speed must be > 0, got %v", speed)
	}
	if every < 1 {
		return nil, fmt.Errorf("dynamics: mobility epoch stride must be >= 1, got %d", every)
	}
	w := &RandomWaypoint{base: geom, speed: speed, every: every, seed: seed}
	w.reset()
	return w, nil
}

func (w *RandomWaypoint) reset() {
	w.geom = w.base.Clone()
	w.r = rng.New(w.seed)
	n := len(w.geom.X)
	w.wx = make([]float64, n)
	w.wy = make([]float64, n)
	for u := 0; u < n; u++ {
		w.wx[u] = w.r.Float64()
		w.wy[u] = w.r.Float64()
	}
	w.steps = 0
	w.lastMut = nil
}

// NewRun implements RunScoped.
func (w *RandomWaypoint) NewRun() radio.TopologyFeed {
	fresh, err := NewRandomWaypoint(w.base, w.speed, w.every, w.seed)
	if err != nil {
		panic(err) // validated at construction
	}
	return fresh
}

// Positions returns the current per-run positions (a test and
// debugging hook). The caller must not modify the slices.
func (w *RandomWaypoint) Positions() (x, y []float64) { return w.geom.X, w.geom.Y }

// Step implements radio.TopologyFeed. The first epoch (the model's
// first slot) reconciles without moving — the realized topology runs
// as generated, and the first position update lands `every` slots in.
func (w *RandomWaypoint) Step(_ int64, mut radio.TopologyMutator) {
	resync := mut != w.lastMut
	w.lastMut = mut
	epoch := w.steps%w.every == 0
	first := w.steps == 0
	w.steps++
	if !epoch && !resync {
		return
	}
	if epoch && !first {
		w.move(w.speed * float64(w.every))
	}
	w.reconcile(mut)
}

// move advances every node toward its waypoint by dist, drawing new
// waypoints on arrival (leftover distance carries into the new leg).
func (w *RandomWaypoint) move(dist float64) {
	for u := range w.geom.X {
		left := dist
		for left > 0 {
			dx, dy := w.wx[u]-w.geom.X[u], w.wy[u]-w.geom.Y[u]
			d := math.Hypot(dx, dy)
			if d <= left {
				w.geom.X[u], w.geom.Y[u] = w.wx[u], w.wy[u]
				left -= d
				w.wx[u], w.wy[u] = w.r.Float64(), w.r.Float64()
				if d == 0 {
					// Degenerate zero-length leg: burn the remainder so
					// the loop terminates.
					left = 0
				}
				continue
			}
			w.geom.X[u] += dx / d * left
			w.geom.Y[u] += dy / d * left
			left = 0
		}
	}
}

// reconcile converges the mutator's edge set to the geometric one.
func (w *RandomWaypoint) reconcile(mut radio.TopologyMutator) {
	n := len(w.geom.X)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if w.geom.InRange(u, v) {
				mut.AddEdge(u, v)
			} else {
				mut.RemoveEdge(u, v)
			}
		}
	}
}
