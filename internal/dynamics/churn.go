package dynamics

import (
	"fmt"

	"crn/internal/radio"
	"crn/internal/rng"
)

// Churn models node churn as independent per-node on/off processes:
// an up node goes down with probability pDown per slot (Poisson-like
// failure arrivals in discrete time) and a down node rejoins with
// probability pUp per slot, so downtimes are geometric with mean
// 1/pUp slots. All nodes start up. Down nodes neither transmit nor
// observe — their protocols freeze on their local clocks until
// rejoin, exactly a device powering off and back on mid-algorithm.
//
// Determinism: node u's process runs on rng.New(seed).Split(u), so
// the whole churn trajectory is a pure function of (seed, n) —
// independent of engine internals and identical at any worker count.
// Waiting times between transitions are drawn directly (geometric
// skip-ahead; see calendar.go), so a slot with no transitions costs
// O(1) instead of n Bernoulli draws.
type Churn struct {
	n           int
	pDown, pUp  float64
	downGap     gapSampler // waiting time to failure while up
	upGap       gapSampler // waiting time to rejoin while down
	seed        uint64
	streams     []rng.Source // flat, one per node: gap draws stay cache-local
	down        []bool
	lastJoin    []int64 // latest rejoin slot per node, -1 never
	cal         *calendar
	steps       int64 // internal step count — not the engine slot: one feed may span several engines
	lastMut     radio.TopologyMutator
	transitions int64
}

// NewChurn returns a churn model over n nodes. Probabilities must be
// in [0, 1].
func NewChurn(n int, pDown, pUp float64, seed uint64) (*Churn, error) {
	if n < 1 {
		return nil, fmt.Errorf("dynamics: churn needs n >= 1, got %d", n)
	}
	if pDown < 0 || pDown > 1 || pUp < 0 || pUp > 1 {
		return nil, fmt.Errorf("dynamics: churn probabilities must be in [0,1], got %v and %v", pDown, pUp)
	}
	c := &Churn{
		n: n, pDown: pDown, pUp: pUp, seed: seed,
		downGap: newGapSampler(pDown),
		upGap:   newGapSampler(pUp),
	}
	c.reset()
	return c, nil
}

func (c *Churn) reset() {
	master := rng.New(c.seed)
	c.streams = make([]rng.Source, c.n)
	c.down = make([]bool, c.n)
	c.lastJoin = make([]int64, c.n)
	c.cal = newCalendar(c.n)
	c.steps = 0
	c.lastMut = nil
	c.transitions = 0
	for u := 0; u < c.n; u++ {
		c.streams[u] = *master.Split(uint64(u))
		c.lastJoin[u] = -1
		if c.downGap.ok {
			// A gap of g means the first success of the per-step
			// Bernoulli sequence lands on step g-1 (steps count from 0).
			c.cal.schedule(int32(u), c.downGap.draw(&c.streams[u])-1)
		}
	}
}

// NewRun implements RunScoped.
func (c *Churn) NewRun() radio.TopologyFeed {
	fresh, err := NewChurn(c.n, c.pDown, c.pUp, c.seed)
	if err != nil {
		panic(err) // validated at construction
	}
	return fresh
}

// Step implements radio.TopologyFeed: apply the transitions due this
// step and reconcile the engine's up set.
func (c *Churn) Step(slot int64, mut radio.TopologyMutator) {
	if mut != c.lastMut {
		// New engine (multi-stage pipeline): re-establish current state
		// over its fresh base topology.
		c.lastMut = mut
		for u := 0; u < c.n; u++ {
			mut.SetNodeUp(u, !c.down[u])
		}
	}
	step := c.steps
	c.steps++
	for {
		u := c.cal.peekDue(step)
		if u < 0 {
			return
		}
		goingDown := !c.down[u]
		c.down[u] = goingDown
		c.transitions++
		if !goingDown {
			c.lastJoin[u] = slot
		}
		mut.SetNodeUp(int(u), !goingDown)
		// Exit sampler of the state just entered; !ok parks the node
		// there forever.
		exit := c.downGap
		if goingDown {
			exit = c.upGap
		}
		if exit.ok {
			c.cal.replaceTop(step + exit.draw(&c.streams[u]))
		} else {
			c.cal.popTop()
		}
	}
}

// LastJoin implements JoinLog.
func (c *Churn) LastJoin(u int) int64 {
	if u < 0 || u >= c.n {
		return -1
	}
	return c.lastJoin[u]
}

// Transitions returns the number of up/down flips applied so far (a
// test and debugging hook).
func (c *Churn) Transitions() int64 { return c.transitions }
