package dynamics

import (
	"fmt"

	"crn/internal/radio"
	"crn/internal/rng"
)

// Churn models node churn as independent per-node on/off processes:
// an up node goes down with probability pDown per slot (Poisson-like
// failure arrivals in discrete time) and a down node rejoins with
// probability pUp per slot, so downtimes are geometric with mean
// 1/pUp slots. All nodes start up. Down nodes neither transmit nor
// observe — their protocols freeze on their local clocks until
// rejoin, exactly a device powering off and back on mid-algorithm.
//
// Determinism: node u's process runs on rng.New(seed).Split(u), so
// the whole churn trajectory is a pure function of (seed, n) —
// independent of engine internals and identical at any worker count.
type Churn struct {
	n           int
	pDown, pUp  float64
	seed        uint64
	streams     []*rng.Source
	down        []bool
	joins       [][]int64
	lastMut     radio.TopologyMutator
	transitions int64
}

// NewChurn returns a churn model over n nodes. Probabilities must be
// in [0, 1].
func NewChurn(n int, pDown, pUp float64, seed uint64) (*Churn, error) {
	if n < 1 {
		return nil, fmt.Errorf("dynamics: churn needs n >= 1, got %d", n)
	}
	if pDown < 0 || pDown > 1 || pUp < 0 || pUp > 1 {
		return nil, fmt.Errorf("dynamics: churn probabilities must be in [0,1], got %v and %v", pDown, pUp)
	}
	c := &Churn{n: n, pDown: pDown, pUp: pUp, seed: seed}
	c.reset()
	return c, nil
}

func (c *Churn) reset() {
	master := rng.New(c.seed)
	c.streams = make([]*rng.Source, c.n)
	for u := 0; u < c.n; u++ {
		c.streams[u] = master.Split(uint64(u))
	}
	c.down = make([]bool, c.n)
	c.joins = make([][]int64, c.n)
	c.lastMut = nil
	c.transitions = 0
}

// NewRun implements RunScoped.
func (c *Churn) NewRun() radio.TopologyFeed {
	fresh, err := NewChurn(c.n, c.pDown, c.pUp, c.seed)
	if err != nil {
		panic(err) // validated at construction
	}
	return fresh
}

// Step implements radio.TopologyFeed: advance every node's chain one
// slot and reconcile the engine's up set.
func (c *Churn) Step(slot int64, mut radio.TopologyMutator) {
	resync := mut != c.lastMut
	c.lastMut = mut
	for u := 0; u < c.n; u++ {
		changed := false
		if c.down[u] {
			if c.streams[u].Bernoulli(c.pUp) {
				c.down[u] = false
				c.joins[u] = append(c.joins[u], slot)
				changed = true
			}
		} else if c.streams[u].Bernoulli(c.pDown) {
			c.down[u] = true
			changed = true
		}
		if changed {
			c.transitions++
		}
		if changed || resync {
			mut.SetNodeUp(u, !c.down[u])
		}
	}
}

// JoinSlots implements JoinLog.
func (c *Churn) JoinSlots(u int) []int64 {
	if u < 0 || u >= c.n {
		return nil
	}
	return c.joins[u]
}

// Transitions returns the number of up/down flips applied so far (a
// test and debugging hook).
func (c *Churn) Transitions() int64 { return c.transitions }
