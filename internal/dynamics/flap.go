package dynamics

import (
	"fmt"

	"crn/internal/graph"
	"crn/internal/radio"
	"crn/internal/rng"
)

// EdgeFlap models link-quality churn as independent per-edge Markov
// on/off chains over the base edge set: a present edge drops with
// probability pDrop per slot and an absent edge restores with
// probability pRestore per slot (mean outage 1/pRestore slots) — the
// fading/shadowing picture in which radios stay put but links come
// and go. Edges never in the base set are never created.
//
// Determinism: edge i's chain runs on rng.New(seed).Split(i) with the
// base edges in their finalized sorted order, so the trajectory is a
// pure function of (seed, base edge list).
type EdgeFlap struct {
	edges          []graph.Edge
	pDrop          float64
	pRestore       float64
	seed           uint64
	streams        []*rng.Source
	absent         []bool
	lastMut        radio.TopologyMutator
	transitionsCnt int64
}

// NewEdgeFlap returns a flapping model over the given base edges
// (callers pass Graph.Edges() of a finalized graph; the slice is
// copied). Probabilities must be in [0, 1].
func NewEdgeFlap(edges []graph.Edge, pDrop, pRestore float64, seed uint64) (*EdgeFlap, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("dynamics: edge flap needs at least one base edge")
	}
	if pDrop < 0 || pDrop > 1 || pRestore < 0 || pRestore > 1 {
		return nil, fmt.Errorf("dynamics: flap probabilities must be in [0,1], got %v and %v", pDrop, pRestore)
	}
	f := &EdgeFlap{
		edges:    append([]graph.Edge(nil), edges...),
		pDrop:    pDrop,
		pRestore: pRestore,
		seed:     seed,
	}
	f.reset()
	return f, nil
}

func (f *EdgeFlap) reset() {
	master := rng.New(f.seed)
	f.streams = make([]*rng.Source, len(f.edges))
	for i := range f.edges {
		f.streams[i] = master.Split(uint64(i))
	}
	f.absent = make([]bool, len(f.edges))
	f.lastMut = nil
	f.transitionsCnt = 0
}

// NewRun implements RunScoped.
func (f *EdgeFlap) NewRun() radio.TopologyFeed {
	fresh, err := NewEdgeFlap(f.edges, f.pDrop, f.pRestore, f.seed)
	if err != nil {
		panic(err) // validated at construction
	}
	return fresh
}

// Step implements radio.TopologyFeed: advance every edge's chain one
// slot and reconcile the engine's edge set.
func (f *EdgeFlap) Step(_ int64, mut radio.TopologyMutator) {
	resync := mut != f.lastMut
	f.lastMut = mut
	for i := range f.edges {
		changed := false
		if f.absent[i] {
			if f.streams[i].Bernoulli(f.pRestore) {
				f.absent[i] = false
				changed = true
			}
		} else if f.streams[i].Bernoulli(f.pDrop) {
			f.absent[i] = true
			changed = true
		}
		if changed {
			f.transitionsCnt++
		}
		if changed || resync {
			u, v := int(f.edges[i].U), int(f.edges[i].V)
			if f.absent[i] {
				mut.RemoveEdge(u, v)
			} else {
				mut.AddEdge(u, v)
			}
		}
	}
}

// Transitions returns the number of edge flips applied so far (a test
// and debugging hook).
func (f *EdgeFlap) Transitions() int64 { return f.transitionsCnt }
