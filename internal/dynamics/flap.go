package dynamics

import (
	"fmt"

	"crn/internal/graph"
	"crn/internal/radio"
	"crn/internal/rng"
)

// EdgeFlap models link-quality churn as independent per-edge Markov
// on/off chains over the base edge set: a present edge drops with
// probability pDrop per slot and an absent edge restores with
// probability pRestore per slot (mean outage 1/pRestore slots) — the
// fading/shadowing picture in which radios stay put but links come
// and go. Edges never in the base set are never created.
//
// Determinism: edge i's chain runs on rng.New(seed).Split(i) with the
// base edges in their finalized sorted order, so the trajectory is a
// pure function of (seed, base edge list). Waiting times between flips
// are drawn directly (geometric skip-ahead; see calendar.go), so a
// slot with no flips costs O(1) instead of one Bernoulli draw per
// base edge.
type EdgeFlap struct {
	edges          []graph.Edge
	pDrop          float64
	pRestore       float64
	dropGap        gapSampler // waiting time to drop while present
	restoreGap     gapSampler // waiting time to restore while absent
	seed           uint64
	streams        []rng.Source // flat, one per edge: gap draws stay cache-local
	absent         []bool
	cal            *calendar
	steps          int64 // internal step count, not the engine slot
	lastMut        radio.TopologyMutator
	transitionsCnt int64
}

// NewEdgeFlap returns a flapping model over the given base edges
// (callers pass Graph.Edges() of a finalized graph; the slice is
// copied). Probabilities must be in [0, 1].
func NewEdgeFlap(edges []graph.Edge, pDrop, pRestore float64, seed uint64) (*EdgeFlap, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("dynamics: edge flap needs at least one base edge")
	}
	if pDrop < 0 || pDrop > 1 || pRestore < 0 || pRestore > 1 {
		return nil, fmt.Errorf("dynamics: flap probabilities must be in [0,1], got %v and %v", pDrop, pRestore)
	}
	f := &EdgeFlap{
		edges:      append([]graph.Edge(nil), edges...),
		pDrop:      pDrop,
		pRestore:   pRestore,
		dropGap:    newGapSampler(pDrop),
		restoreGap: newGapSampler(pRestore),
		seed:       seed,
	}
	f.reset()
	return f, nil
}

func (f *EdgeFlap) reset() {
	master := rng.New(f.seed)
	f.streams = make([]rng.Source, len(f.edges))
	f.absent = make([]bool, len(f.edges))
	f.cal = newCalendar(len(f.edges))
	f.steps = 0
	f.lastMut = nil
	f.transitionsCnt = 0
	for i := range f.edges {
		f.streams[i] = *master.Split(uint64(i))
		if f.dropGap.ok {
			// A gap of g puts the first Bernoulli success on step g-1.
			f.cal.schedule(int32(i), f.dropGap.draw(&f.streams[i])-1)
		}
	}
}

// NewRun implements RunScoped.
func (f *EdgeFlap) NewRun() radio.TopologyFeed {
	fresh, err := NewEdgeFlap(f.edges, f.pDrop, f.pRestore, f.seed)
	if err != nil {
		panic(err) // validated at construction
	}
	return fresh
}

// Step implements radio.TopologyFeed: apply the flips due this step
// and reconcile the engine's edge set.
func (f *EdgeFlap) Step(_ int64, mut radio.TopologyMutator) {
	if mut != f.lastMut {
		// New engine (multi-stage pipeline): re-establish current state
		// over its fresh base topology.
		f.lastMut = mut
		for i := range f.edges {
			u, v := int(f.edges[i].U), int(f.edges[i].V)
			if f.absent[i] {
				mut.RemoveEdge(u, v)
			} else {
				mut.AddEdge(u, v)
			}
		}
	}
	step := f.steps
	f.steps++
	for {
		i := f.cal.peekDue(step)
		if i < 0 {
			return
		}
		f.absent[i] = !f.absent[i]
		f.transitionsCnt++
		u, v := int(f.edges[i].U), int(f.edges[i].V)
		exit := f.dropGap
		if f.absent[i] {
			mut.RemoveEdge(u, v)
			exit = f.restoreGap
		} else {
			mut.AddEdge(u, v)
		}
		if exit.ok {
			f.cal.replaceTop(step + exit.draw(&f.streams[i]))
		} else {
			f.cal.popTop()
		}
	}
}

// Transitions returns the number of edge flips applied so far (a test
// and debugging hook).
func (f *EdgeFlap) Transitions() int64 { return f.transitionsCnt }
