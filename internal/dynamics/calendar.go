package dynamics

import (
	"math"

	"crn/internal/rng"
)

// This file implements the event-calendar machinery behind the churn
// and link-flap models. Both are collections of independent two-state
// Markov chains advanced once per slot; stepping every chain with a
// Bernoulli draw costs O(chains) per slot even when nothing happens,
// which used to dominate the dynamics slot budget (a ~300-edge flap
// model burned ~1.5µs/slot on draws alone). Instead each chain draws
// its *waiting time* to the next transition directly — the geometric
// distribution the Bernoulli sequence induces — and parks in a min-heap
// keyed by that step, so a slot costs O(transitions due) heap pops and
// an O(1) peek when nothing is due.
//
// The trade: trajectories are sampled with one uniform draw per
// transition instead of one per slot, so a given seed produces a
// *different* (but identically distributed) trajectory than the old
// per-slot sampler. Determinism is preserved — each chain draws from
// its own split stream, so the trajectory remains a pure function of
// (seed, chain count) and is independent of engine internals.

// neverStep parks a chain that cannot leave its current state
// (transition probability 0). Far enough out that step counters never
// reach it, near enough that adding a gap cannot overflow.
const neverStep = math.MaxInt64 / 4

// gapSampler draws geometric waiting times for one transition
// probability, with 1/log(1-p) precomputed so each draw costs a single
// log. Build with newGapSampler; ok reports whether transitions can
// happen at all (p > 0).
type gapSampler struct {
	invLog float64 // 1 / log(1-p); 0 when p >= 1
	ok     bool    // p > 0
}

func newGapSampler(p float64) gapSampler {
	if p <= 0 {
		return gapSampler{}
	}
	if p >= 1 {
		return gapSampler{ok: true}
	}
	return gapSampler{invLog: 1 / math.Log1p(-p), ok: true}
}

// draw returns the number of Bernoulli(p) trials up to and including
// the first success — the waiting time to a chain's next transition —
// in O(1) by inverting the geometric CDF. Only valid when ok.
func (s gapSampler) draw(r *rng.Source) int64 {
	if s.invLog == 0 {
		return 1 // p >= 1: every trial succeeds
	}
	u := r.Float64()
	// u ∈ [0,1) so log1p(-u) = log(1-u) ∈ (-inf, 0]; invLog < 0.
	ratio := math.Log1p(-u) * s.invLog
	if ratio >= float64(neverStep) {
		// Astronomically unlikely tail (and the inf guard for u
		// rounding to 1): park rather than overflow.
		return neverStep
	}
	g := 1 + int64(ratio)
	if g < 1 {
		// Floating-point edge: ratio rounded just below 0.
		return 1
	}
	return g
}

// calEntry is one parked chain: the absolute step its next transition
// fires at, and its index. Keeping the key inside the heap slice keeps
// sift comparisons on one cache line instead of chasing a side array.
type calEntry struct {
	at  int64
	idx int32
}

// calendar is a binary min-heap of chain transition events ordered by
// (step, chain index) — the index tiebreak makes pop order fully
// deterministic. Every chain is in the heap at most once; chains that
// can never transition again are simply not re-scheduled.
type calendar struct {
	h []calEntry
}

func newCalendar(n int) *calendar {
	return &calendar{h: make([]calEntry, 0, n)}
}

// schedule (re)inserts chain idx with its next transition at step `at`.
// The chain must not currently be in the heap.
func (c *calendar) schedule(idx int32, at int64) {
	c.h = append(c.h, calEntry{at: at, idx: idx})
	c.siftUp(len(c.h) - 1)
}

// peekDue returns the chain at the top of the heap if its transition
// is due at or before step, -1 otherwise — the common no-transition
// slot costs this one comparison. The caller must follow up with
// replaceTop (chain transitions again later) or popTop (chain parks),
// then peek again to drain further due chains.
func (c *calendar) peekDue(step int64) int32 {
	if len(c.h) == 0 || c.h[0].at > step {
		return -1
	}
	return c.h[0].idx
}

// replaceTop reschedules the top chain to step `at` in place — one
// sift instead of a pop+push pair, which matters because almost every
// transition immediately reschedules.
func (c *calendar) replaceTop(at int64) {
	c.h[0].at = at
	c.siftDown(0)
}

// popTop removes the top chain (it cannot transition again).
func (c *calendar) popTop() {
	last := len(c.h) - 1
	c.h[0] = c.h[last]
	c.h = c.h[:last]
	if last > 0 {
		c.siftDown(0)
	}
}

func less(a, b calEntry) bool {
	return a.at < b.at || (a.at == b.at && a.idx < b.idx)
}

func (c *calendar) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !less(c.h[i], c.h[p]) {
			return
		}
		c.h[i], c.h[p] = c.h[p], c.h[i]
		i = p
	}
}

func (c *calendar) siftDown(i int) {
	n := len(c.h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && less(c.h[r], c.h[l]) {
			m = r
		}
		if !less(c.h[m], c.h[i]) {
			return
		}
		c.h[i], c.h[m] = c.h[m], c.h[i]
		i = m
	}
}
