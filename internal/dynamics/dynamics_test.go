package dynamics

import (
	"testing"

	"crn/internal/chanassign"
	"crn/internal/graph"
	"crn/internal/radio"
	"crn/internal/rng"
)

// fakeMut is a reference TopologyMutator for model tests: a plain
// edge-set + up-set that records applied changes.
type fakeMut struct {
	n       int
	up      []bool
	edges   map[[2]int]bool
	adds    int
	removes int
	joins   int
	leaves  int
}

func newFakeMut(g *graph.Graph) *fakeMut {
	m := &fakeMut{n: g.N(), up: make([]bool, g.N()), edges: map[[2]int]bool{}}
	for i := range m.up {
		m.up[i] = true
	}
	for _, e := range g.Edges() {
		m.edges[[2]int{int(e.U), int(e.V)}] = true
	}
	return m
}

func key(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

func (m *fakeMut) N() int            { return m.n }
func (m *fakeMut) NodeUp(u int) bool { return m.up[u] }
func (m *fakeMut) SetNodeUp(u int, up bool) bool {
	if m.up[u] == up {
		return false
	}
	m.up[u] = up
	if up {
		m.joins++
	} else {
		m.leaves++
	}
	return true
}
func (m *fakeMut) HasEdge(u, v int) bool { return m.edges[key(u, v)] }
func (m *fakeMut) AddEdge(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= m.n || v >= m.n || m.edges[key(u, v)] {
		return false
	}
	m.edges[key(u, v)] = true
	m.adds++
	return true
}
func (m *fakeMut) RemoveEdge(u, v int) bool {
	if !m.edges[key(u, v)] {
		return false
	}
	delete(m.edges, key(u, v))
	m.removes++
	return true
}

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.GNP(14, 0.3, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestChurnDeterministicAndScoped: two same-seed runs produce the
// identical up/down trajectory; NewRun resets state.
func TestChurnDeterministicAndScoped(t *testing.T) {
	g := testGraph(t)
	trajectory := func(f radio.TopologyFeed) []bool {
		mut := newFakeMut(g)
		var tr []bool
		for slot := int64(0); slot < 400; slot++ {
			f.Step(slot, mut)
			for u := 0; u < g.N(); u++ {
				tr = append(tr, mut.NodeUp(u))
			}
		}
		return tr
	}
	proto, err := NewChurn(g.N(), 0.02, 0.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	a, b := trajectory(proto.NewRun()), trajectory(proto.NewRun())
	if len(a) != len(b) {
		t.Fatal("trajectory lengths differ")
	}
	sawDown := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed churn trajectories diverge at %d", i)
		}
		if !a[i] {
			sawDown = true
		}
	}
	if !sawDown {
		t.Fatal("churn never took a node down — degenerate test")
	}
}

// TestChurnJoinLog: LastJoin tracks exactly the latest rejoin the
// mutator observed for each node, at every step of the run.
func TestChurnJoinLog(t *testing.T) {
	g := testGraph(t)
	c, err := NewChurn(g.N(), 0.05, 0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	mut := newFakeMut(g)
	// Shadow join log built from the mutator's observed transitions.
	lastSeen := make([]int64, g.N())
	for u := range lastSeen {
		lastSeen[u] = -1
	}
	joins := 0
	for slot := int64(0); slot < 600; slot++ {
		wasUp := append([]bool(nil), mut.up...)
		c.Step(slot, mut)
		for u := 0; u < g.N(); u++ {
			if !wasUp[u] && mut.up[u] {
				lastSeen[u] = slot
				joins++
			}
			if got := c.LastJoin(u); got != lastSeen[u] {
				t.Fatalf("slot %d node %d: LastJoin = %d, observed latest join %d", slot, u, got, lastSeen[u])
			}
		}
	}
	if joins == 0 {
		t.Fatal("no rejoins in 600 slots — degenerate test")
	}
	if c.LastJoin(-1) != -1 || c.LastJoin(g.N()) != -1 {
		t.Error("out-of-range LastJoin should report -1")
	}
}

// TestEdgeFlapStaysWithinBase: flapping only ever toggles base edges,
// and a fresh mutator (engine restart) is resynced to the model's
// current state.
func TestEdgeFlapStaysWithinBase(t *testing.T) {
	g := testGraph(t)
	base := map[[2]int]bool{}
	for _, e := range g.Edges() {
		base[[2]int{int(e.U), int(e.V)}] = true
	}
	f, err := NewEdgeFlap(g.Edges(), 0.05, 0.2, 11)
	if err != nil {
		t.Fatal(err)
	}
	mut := newFakeMut(g)
	for slot := int64(0); slot < 300; slot++ {
		f.Step(slot, mut)
		for e := range mut.edges {
			if !base[e] {
				t.Fatalf("flap created non-base edge %v", e)
			}
		}
	}
	if f.Transitions() == 0 {
		t.Fatal("no flaps in 300 slots — degenerate test")
	}
	// A fresh engine's mutator starts from the full base edge set; the
	// model must reconcile it to the model's current state in one step
	// (which also applies the flips due that step, so compare against
	// the model's own desired state rather than the stale mutator).
	fresh := newFakeMut(g)
	f.Step(300, fresh)
	for i, e := range f.edges {
		k := key(int(e.U), int(e.V))
		if fresh.edges[k] == f.absent[i] {
			t.Fatalf("resync mismatch on edge %v: present=%v, model absent=%v", k, fresh.edges[k], f.absent[i])
		}
	}
}

// TestRandomWaypointTracksGeometry: after every epoch the mutator's
// edge set equals the geometric rule over the moved positions, and
// positions stay in the unit square.
func TestRandomWaypointTracksGeometry(t *testing.T) {
	g, geom, err := graph.UnitDiskGeometry(20, 0.35, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	const every = 4
	proto, err := NewRandomWaypoint(geom, 0.01, every, 5)
	if err != nil {
		t.Fatal(err)
	}
	w := proto.NewRun().(*RandomWaypoint)
	mut := newFakeMut(g)
	for slot := int64(0); slot < 400; slot++ {
		w.Step(slot, mut)
		if slot%every != 0 {
			continue
		}
		x, y := w.Positions()
		for u := 0; u < g.N(); u++ {
			if x[u] < 0 || x[u] > 1 || y[u] < 0 || y[u] > 1 {
				t.Fatalf("node %d left the unit square: (%v, %v)", u, x[u], y[u])
			}
			for v := u + 1; v < g.N(); v++ {
				dx, dy := x[u]-x[v], y[u]-y[v]
				want := dx*dx+dy*dy <= 0.35*0.35
				if mut.HasEdge(u, v) != want {
					t.Fatalf("slot %d: edge (%d,%d)=%v, geometry says %v", slot, u, v, mut.HasEdge(u, v), want)
				}
			}
		}
	}
	if mut.adds == 0 || mut.removes == 0 {
		t.Fatalf("mobility changed no edges (adds=%d removes=%d) — degenerate test", mut.adds, mut.removes)
	}
	// The scenario's realized geometry must stay fixed.
	if geom.X[0] != w.base.X[0] || geom.Y[0] != w.base.Y[0] {
		t.Fatal("mobility mutated the base geometry")
	}
}

// TestRandomWaypointFirstEpochDoesNotMove: the realized topology must
// run as generated — the first Step reconciles (a no-op against the
// base geometry) and the first actual move lands `every` slots in.
func TestRandomWaypointFirstEpochDoesNotMove(t *testing.T) {
	g, geom, err := graph.UnitDiskGeometry(15, 0.4, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	proto, err := NewRandomWaypoint(geom, 0.01, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	w := proto.NewRun().(*RandomWaypoint)
	mut := newFakeMut(g)
	w.Step(0, mut)
	x, y := w.Positions()
	for u := range x {
		if x[u] != geom.X[u] || y[u] != geom.Y[u] {
			t.Fatalf("node %d moved on the first epoch: (%v,%v) vs (%v,%v)", u, x[u], y[u], geom.X[u], geom.Y[u])
		}
	}
	if mut.adds != 0 || mut.removes != 0 {
		t.Fatalf("first-epoch reconcile changed edges (+%d/-%d) despite unmoved positions", mut.adds, mut.removes)
	}
	for slot := int64(1); slot < 4; slot++ {
		w.Step(slot, mut)
	}
	w.Step(4, mut) // second epoch: now the nodes move
	x, y = w.Positions()
	moved := false
	for u := range x {
		if x[u] != geom.X[u] || y[u] != geom.Y[u] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("no node moved by the second epoch")
	}
}

// TestRandomWaypointDeterministic: same seed, same motion trail.
func TestRandomWaypointDeterministic(t *testing.T) {
	g, geom, err := graph.UnitDiskGeometry(12, 0.4, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	trail := func() []float64 {
		proto, err := NewRandomWaypoint(geom, 0.02, 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		w := proto.NewRun().(*RandomWaypoint)
		mut := newFakeMut(g)
		var tr []float64
		for slot := int64(0); slot < 100; slot++ {
			w.Step(slot, mut)
			x, y := w.Positions()
			tr = append(tr, x...)
			tr = append(tr, y...)
		}
		return tr
	}
	a, b := trail(), trail()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed trails diverge at %d", i)
		}
	}
}

// TestComposeSemantics: nil members drop, singletons unwrap, members
// apply in order, run scoping re-instantiates stateful members, and
// join logs merge.
func TestComposeSemantics(t *testing.T) {
	g := testGraph(t)
	if Compose() != nil {
		t.Error("empty Compose should be nil")
	}
	c, err := NewChurn(g.N(), 0.05, 0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if Compose(nil, c) != radio.TopologyFeed(c) {
		t.Error("singleton Compose should unwrap")
	}
	f, err := NewEdgeFlap(g.Edges(), 0.05, 0.2, 11)
	if err != nil {
		t.Fatal(err)
	}
	both := Compose(c, f)
	rs, ok := both.(RunScoped)
	if !ok {
		t.Fatal("composite is not RunScoped")
	}
	run1 := rs.NewRun()
	run2 := rs.NewRun()
	sig := func(feed radio.TopologyFeed) (int, int) {
		mut := newFakeMut(g)
		for slot := int64(0); slot < 300; slot++ {
			feed.Step(slot, mut)
		}
		return mut.leaves, mut.removes
	}
	l1, r1 := sig(run1)
	l2, r2 := sig(run2)
	if l1 != l2 || r1 != r2 {
		t.Errorf("run-scoped composites diverged: (%d,%d) vs (%d,%d)", l1, r1, l2, r2)
	}
	if l1 == 0 || r1 == 0 {
		t.Fatalf("composite applied no dynamics (leaves=%d removes=%d)", l1, r1)
	}
	jl, ok := run1.(JoinLog)
	if !ok {
		t.Fatal("composite is not a JoinLog")
	}
	rejoined := 0
	for u := 0; u < g.N(); u++ {
		if jl.LastJoin(u) >= 0 {
			rejoined++
		}
	}
	if rejoined == 0 {
		t.Error("composite join log empty despite churn member")
	}
}

// TestModelsOnRealEngine drives every model through a real engine
// pair (Run and RunParallel) and requires identical stats — the
// engine-level equivalence guarantee holds for the shipped models,
// not just scripted feeds.
func TestModelsOnRealEngine(t *testing.T) {
	g, geom, err := graph.UnitDiskGeometry(18, 0.4, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	a, err := chanassign.Identical(g.N(), 3, rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	churn, err := NewChurn(g.N(), 0.01, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	flap, err := NewEdgeFlap(g.Edges(), 0.02, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	way, err := NewRandomWaypoint(geom, 0.005, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	feeds := []struct {
		name string
		feed radio.TopologyFeed
	}{
		{"churn", churn},
		{"flap", flap},
		{"waypoint", way},
		{"compose", Compose(churn, flap)},
	}
	for _, fc := range feeds {
		t.Run(fc.name, func(t *testing.T) {
			run := func(workers int) radio.Stats {
				feed := fc.feed
				if rs, ok := feed.(RunScoped); ok {
					feed = rs.NewRun()
				}
				master := rng.New(31)
				protos := make([]radio.Protocol, g.N())
				for u := range protos {
					protos[u] = &chatterProto{r: master.Split(uint64(u)), c: 3}
				}
				e, err := radio.NewEngine(&radio.Network{Graph: g, Assign: a, Topology: feed}, protos)
				if err != nil {
					t.Fatal(err)
				}
				if workers == 0 {
					return e.Run(500)
				}
				return e.RunParallel(500, workers)
			}
			want := run(0)
			if want.EdgeAdds+want.EdgeRemoves+want.DownSlots == 0 {
				t.Fatalf("model applied no dynamics: %+v", want)
			}
			for _, workers := range []int{2, 8} {
				if got := run(workers); got != want {
					t.Errorf("workers=%d stats = %+v, want %+v", workers, got, want)
				}
			}
		})
	}
}

type chatterProto struct {
	r *rng.Source
	c int
}

func (p *chatterProto) Act(_ int64) radio.Action {
	switch p.r.Intn(3) {
	case 0:
		return radio.Action{Kind: radio.Broadcast, Ch: p.r.Intn(p.c), Data: 1}
	case 1:
		return radio.Action{Kind: radio.Listen, Ch: p.r.Intn(p.c)}
	default:
		return radio.Action{Kind: radio.Idle}
	}
}
func (p *chatterProto) Observe(_ int64, _ *radio.Message) {}
func (p *chatterProto) Done() bool                        { return false }
