// Package dynamics models time-varying network topology — the
// secondary users themselves moving, failing and rejoining, and links
// flapping — complementing internal/spectrum, which makes the
// *spectrum* dynamic while the graph stays fixed. The paper's model
// (Section 3) freezes the communication graph; every applied
// treatment of cognitive radio stresses that real secondary users
// move and appear/disappear, so these models measure how the paper's
// primitives degrade when neighborhoods shift under them.
//
// All models implement radio.TopologyFeed: the engine steps a feed
// once per slot from its sequential section, and the feed applies its
// mutations through the engine's TopologyMutator. Models are
// deterministic — every random decision flows from a seed through
// rng.Split streams (per node for churn, per edge for flapping) — and
// run-scoped: they carry per-run state, so callers sharing one
// scenario across concurrent runs must install a fresh instance per
// run via NewRun (mirroring spectrum.RunScoped).
//
// Feeds reconcile *desired* state rather than issuing blind edits:
// each model tracks what the topology should look like and converges
// the mutator to it, re-synchronizing in full whenever it meets a new
// mutator (a multi-stage pipeline such as CGCAST runs several engines
// over one feed; each new engine starts from the base topology).
package dynamics

import (
	"crn/internal/radio"
)

// RunScoped is implemented by every model in this package: topology
// feeds are stateful, so each simulation run must get its own
// instance. NewRun returns a fresh feed with the same configuration
// and cleared per-run state.
type RunScoped interface {
	NewRun() radio.TopologyFeed
}

// JoinLog exposes each node's most recent rejoin after being down —
// the raw material for re-discovery latency accounting (a neighbor
// first heard after it rejoined was re-discovered, and the lag from
// the rejoin is the latency). Consumers read LastJoin *online*, at the
// moment a pair is first heard: since joins apply before the slot
// resolves, LastJoin at that moment is exactly the latest join at or
// before the hearing slot. Keeping only the latest join bounds the
// model's state — an append-only join history grew without bound over
// long runs.
type JoinLog interface {
	// LastJoin returns the most recent engine slot at which node u came
	// back up after being down, or -1 if it has never rejoined.
	LastJoin(u int) int64
}

// composite applies several feeds in order each slot. Later feeds win
// conflicting edits within a slot; churn composes freely with the
// edge models, but EdgeFlap and RandomWaypoint both own the edge set,
// so composing those two is only meaningful if that precedence is
// intended.
type composite struct {
	feeds []radio.TopologyFeed
}

// Compose returns a feed applying each member in order every slot.
// Nil members are dropped; a single member is returned unwrapped. The
// composite implements RunScoped (members implementing it are
// re-instantiated per run, stateless members are shared) and JoinLog
// (the union of member logs).
func Compose(feeds ...radio.TopologyFeed) radio.TopologyFeed {
	kept := make([]radio.TopologyFeed, 0, len(feeds))
	for _, f := range feeds {
		if f != nil {
			kept = append(kept, f)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return &composite{feeds: kept}
}

// Step implements radio.TopologyFeed.
func (c *composite) Step(slot int64, mut radio.TopologyMutator) {
	for _, f := range c.feeds {
		f.Step(slot, mut)
	}
}

// NewRun implements RunScoped.
func (c *composite) NewRun() radio.TopologyFeed {
	fresh := make([]radio.TopologyFeed, len(c.feeds))
	for i, f := range c.feeds {
		if rs, ok := f.(RunScoped); ok {
			fresh[i] = rs.NewRun()
		} else {
			fresh[i] = f
		}
	}
	return &composite{feeds: fresh}
}

// LastJoin implements JoinLog: the latest join across member logs.
func (c *composite) LastJoin(u int) int64 {
	latest := int64(-1)
	for _, f := range c.feeds {
		if jl, ok := f.(JoinLog); ok {
			if j := jl.LastJoin(u); j > latest {
				latest = j
			}
		}
	}
	return latest
}
