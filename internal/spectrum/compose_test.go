package spectrum

import "testing"

func TestComposeEmptyAndNoneCollapse(t *testing.T) {
	if _, ok := Compose().(None); !ok {
		t.Error("Compose() is not None")
	}
	if _, ok := Compose(None{}, nil, None{}).(None); !ok {
		t.Error("Compose of Nones is not None")
	}
	p, err := NewPeriodic(10, 3, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := Compose(None{}, p); got != Jammer(p) {
		t.Error("Compose(None, j) did not collapse to j")
	}
}

func TestComposeUnions(t *testing.T) {
	a, err := NewPeriodic(4, 1, 0, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPeriodic(4, 2, 0, []int32{1})
	if err != nil {
		t.Fatal(err)
	}
	c := Compose(a, b)
	for s := int64(0); s < 16; s++ {
		for ch := int32(0); ch < 3; ch++ {
			want := a.Jammed(s, ch) || b.Jammed(s, ch)
			if got := c.Jammed(s, ch); got != want {
				t.Fatalf("Compose.Jammed(%d,%d) = %v, want %v", s, ch, got, want)
			}
		}
	}
}

func TestComposeFlattens(t *testing.T) {
	a, _ := NewPeriodic(4, 1, 0, []int32{0})
	b, _ := NewPeriodic(4, 1, 0, []int32{1})
	c, _ := NewPeriodic(4, 1, 0, []int32{2})
	nested := Compose(Compose(a, b), c)
	comp, ok := nested.(*composite)
	if !ok {
		t.Fatalf("Compose did not produce a composite: %T", nested)
	}
	if len(comp.members) != 3 {
		t.Errorf("nested composite has %d members, want 3 (flattened)", len(comp.members))
	}
	// Sink members flatten the same way and keep the sink variant.
	withSink := Compose(nested, NewReactiveAdversary(1))
	sc, ok := withSink.(*sinkComposite)
	if !ok {
		t.Fatalf("Compose with a sink member produced %T, want *sinkComposite", withSink)
	}
	if len(sc.members) != 4 {
		t.Errorf("sink composite has %d members, want 4 (flattened)", len(sc.members))
	}
}

// TestComposeSinkVariantOnlyWhenNeeded: a composite of pure-function
// jammers must not present ObserveActivity to the engine — per-slot
// activity accounting is only paid when someone reads it.
func TestComposeSinkVariantOnlyWhenNeeded(t *testing.T) {
	a, _ := NewPeriodic(4, 1, 0, []int32{0})
	b, _ := NewPeriodic(4, 1, 0, []int32{1})
	if _, ok := Compose(a, b).(activitySink); ok {
		t.Error("sink-free composite presents ObserveActivity")
	}
	if _, ok := Compose(a, NewReactiveAdversary(1)).(activitySink); !ok {
		t.Error("composite with adversary member lost ObserveActivity")
	}
}

func TestComposeForwardsActivityAndRunScoping(t *testing.T) {
	// The periodic member only touches channel 0, so channel 1 isolates
	// the adversary's behavior.
	p, err := NewPeriodic(10, 3, 0, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	adv := NewReactiveAdversary(1)
	c := Compose(p, adv)

	sink, ok := c.(activitySink)
	if !ok {
		t.Fatal("composite with adversary member is not an activity sink")
	}
	sink.ObserveActivity(0, []int{0, 7})
	if !c.Jammed(1, 1) {
		t.Error("activity report did not reach the adversary member")
	}

	rs, ok := c.(RunScoped)
	if !ok {
		t.Fatal("composite with stateful member is not RunScoped")
	}
	fresh := rs.NewRun()
	if fresh.Jammed(1, 1) {
		t.Error("NewRun composite inherited adversary state")
	}
	// Stateless members are shared, and periodic jamming still applies.
	if !fresh.Jammed(0, 0) {
		t.Error("NewRun composite lost the periodic member")
	}
	fc, ok := fresh.(*sinkComposite)
	if !ok {
		t.Fatalf("NewRun returned %T, want *sinkComposite", fresh)
	}
	if fc.members[0] != Jammer(p) {
		t.Error("stateless member was re-instantiated instead of shared")
	}
	if fc.members[1] == Jammer(adv) {
		t.Error("stateful member was shared instead of re-instantiated")
	}
}
