package spectrum

import (
	"math"
	"testing"
)

func TestPoissonValidation(t *testing.T) {
	cases := []struct {
		name     string
		channels int
		horizon  int64
		rate     float64
		hold     float64
		kind     HoldKind
	}{
		{"zero channels", 0, 100, 0.1, 5, HoldGeometric},
		{"zero horizon", 2, 0, 0.1, 5, HoldGeometric},
		{"huge horizon", 2, 1 << 30, 0.1, 5, HoldGeometric},
		{"negative rate", 2, 100, -0.1, 5, HoldGeometric},
		{"NaN rate", 2, 100, math.NaN(), 5, HoldGeometric},
		{"sub-slot hold", 2, 100, 0.1, 0.5, HoldGeometric},
		{"NaN hold", 2, 100, 0.1, math.NaN(), HoldFixed},
		{"bad hold kind", 2, 100, 0.1, 5, HoldKind(99)},
	}
	for _, tc := range cases {
		if _, err := NewPoisson(tc.channels, tc.horizon, tc.rate, tc.hold, tc.kind, 1); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	if _, err := NewPoisson(2, 100, 0.1, 5, 0, 1); err != nil {
		t.Errorf("zero HoldKind (default geometric) rejected: %v", err)
	}
}

func TestPoissonDeterminism(t *testing.T) {
	a, err := NewPoisson(3, 500, 0.05, 8, HoldGeometric, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPoisson(3, 500, 0.05, 8, HoldGeometric, 9)
	if err != nil {
		t.Fatal(err)
	}
	for ch := int32(0); ch < 3; ch++ {
		for s := int64(0); s < 500; s++ {
			if a.Jammed(s, ch) != b.Jammed(s, ch) {
				t.Fatalf("same-seed Poisson jammers diverged at (%d,%d)", s, ch)
			}
		}
	}
}

func TestPoissonOutOfRange(t *testing.T) {
	p, err := NewPoisson(2, 100, 0.5, 3, HoldFixed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Jammed(-1, 0) || p.Jammed(100, 0) || p.Jammed(5, 2) || p.Jammed(5, -1) {
		t.Error("out-of-range query reported jammed")
	}
}

func TestPoissonZeroRateNeverJams(t *testing.T) {
	p, err := NewPoisson(2, 1000, 0, 5, HoldGeometric, 1)
	if err != nil {
		t.Fatal(err)
	}
	if OccupancyFraction(p, 2, 1000) != 0 {
		t.Error("zero-rate Poisson produced occupancy")
	}
}

// TestPoissonFixedHoldBurstLength: with fixed holds, every busy period
// is a multiple-free run of at least ceil(hold) slots (arrivals only
// extend it).
func TestPoissonFixedHoldBurstLength(t *testing.T) {
	const hold = 4
	p, err := NewPoisson(1, 5000, 0.01, hold, HoldFixed, 7)
	if err != nil {
		t.Fatal(err)
	}
	runLen := 0
	sawBurst := false
	for s := int64(0); s <= 5000; s++ {
		if s < 5000 && p.Jammed(s, 0) {
			runLen++
			continue
		}
		if runLen > 0 {
			sawBurst = true
			// A run that ends inside the horizon must be >= hold slots.
			if s < 5000 && runLen < hold {
				t.Fatalf("busy run of %d slots ending at %d, want >= %d", runLen, s, hold)
			}
		}
		runLen = 0
	}
	if !sawBurst {
		t.Fatal("no bursts at rate 0.01 over 5000 slots — check the arrival process")
	}
}

// TestPoissonOccupancyMatchesLoad: mean occupancy of the discretized
// M/G/∞-style process with per-slot arrival probability p and fixed
// hold L is 1-(1-p)^L; check the realized fraction against it.
func TestPoissonOccupancyMatchesLoad(t *testing.T) {
	const rate, hold = 0.02, 10
	p, err := NewPoisson(8, 60000, rate, hold, HoldFixed, 5)
	if err != nil {
		t.Fatal(err)
	}
	got := OccupancyFraction(p, 8, 60000)
	pArrive := 1 - math.Exp(-rate)
	want := 1 - math.Pow(1-pArrive, hold)
	if math.Abs(got-want) > 0.03 {
		t.Errorf("occupancy = %v, want ~%v", got, want)
	}
}
