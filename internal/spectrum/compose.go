package spectrum

// activitySink mirrors the radio engine's activity-feed contract
// structurally (the engine defines its own copy — radio and spectrum
// do not import each other): the engine calls ObserveActivity once per
// slot with the broadcast count per global channel.
type activitySink interface {
	ObserveActivity(slot int64, broadcastsByChannel []int)
}

// Compose unions jammers: the composite jams a (slot, channel) iff any
// member does, which is how scenarios stack primary traffic with an
// adversary (Section 3's model allows both at once). None members and
// nils are dropped and nested composites are flattened, so
// Compose(None{}, j) is exactly j and Compose() is None{}. The
// composite forwards engine activity reports to every member that
// listens for them and is run-scoped whenever any member is.
func Compose(jammers ...Jammer) Jammer {
	var members []Jammer
	for _, j := range jammers {
		switch m := j.(type) {
		case nil, None:
			continue
		case *composite:
			members = append(members, m.members...)
		case *sinkComposite:
			members = append(members, m.members...)
		default:
			members = append(members, j)
		}
	}
	switch len(members) {
	case 0:
		return None{}
	case 1:
		return members[0]
	}
	// Only grow an ObserveActivity method when some member actually
	// consumes activity — otherwise the engine would pay for per-slot
	// activity accounting nobody reads.
	for _, j := range members {
		if _, ok := j.(activitySink); ok {
			return &sinkComposite{composite{members: members}}
		}
	}
	return &composite{members: members}
}

type composite struct {
	members []Jammer
}

// sinkComposite is a composite with at least one activity-consuming
// member; only this variant presents ObserveActivity to the engine.
type sinkComposite struct {
	composite
}

// Jammed implements Jammer.
func (c *composite) Jammed(slot int64, ch int32) bool {
	for _, j := range c.members {
		if j.Jammed(slot, ch) {
			return true
		}
	}
	return false
}

// ObserveActivity forwards the engine's activity report to every
// member that consumes it.
func (c *sinkComposite) ObserveActivity(slot int64, broadcastsByChannel []int) {
	for _, j := range c.members {
		if sink, ok := j.(activitySink); ok {
			sink.ObserveActivity(slot, broadcastsByChannel)
		}
	}
}

// NewRun implements RunScoped: stateful members are re-instantiated,
// stateless ones shared. Rebuilding through Compose keeps the
// sink/non-sink variant choice consistent with the fresh members.
func (c *composite) NewRun() Jammer {
	fresh := make([]Jammer, len(c.members))
	for i, j := range c.members {
		if rs, ok := j.(RunScoped); ok {
			fresh[i] = rs.NewRun()
		} else {
			fresh[i] = j
		}
	}
	return Compose(fresh...)
}
