package spectrum

import "sort"

// RunScoped is implemented by stateful jammers — models whose answers
// depend on what happened earlier in a run, like ReactiveAdversary.
// Callers that share one scenario across concurrent simulation runs
// (the facade, the sweep engine) must call NewRun once per run and
// install the returned instance, so runs never share mutable state.
// Stateless jammers simply don't implement the interface.
type RunScoped interface {
	// NewRun returns a fresh instance with the same configuration and
	// cleared per-run state.
	NewRun() Jammer
}

// ReactiveAdversary is the paper's t-bounded adaptive adversary: each
// slot it may jam up to T channels, chosen by watching the secondary
// users. The radio engine reports aggregate activity (broadcast counts
// per global channel) at the end of every slot via ObserveActivity;
// the adversary then jams the T busiest channels of that slot during
// the NEXT slot — a one-slot reaction delay, matching an adversary
// that senses but cannot react within a slot.
//
// Ties break toward the lower channel index and channels with no
// observed broadcasts are never jammed, so the choice is a
// deterministic function of the observed activity. ReactiveAdversary
// is stateful: it implements RunScoped and must be instantiated per
// run. Between ObserveActivity calls it is read-only, so concurrent
// Jammed queries within a slot (RunParallel workers) are safe.
type ReactiveAdversary struct {
	// T is the per-slot jamming budget: the maximum number of channels
	// jammed in any one slot.
	T int

	armedFor int64  // slot the current target set applies to
	targets  []bool // per channel, jam in slot armedFor
	order    []int  // scratch: candidate channels by activity
}

// NewReactiveAdversary returns a t-bounded reactive adversary.
// t <= 0 yields an adversary that never jams.
func NewReactiveAdversary(t int) *ReactiveAdversary {
	return &ReactiveAdversary{T: t, armedFor: -1}
}

// NewRun implements RunScoped.
func (a *ReactiveAdversary) NewRun() Jammer { return NewReactiveAdversary(a.T) }

// Jammed implements Jammer.
func (a *ReactiveAdversary) Jammed(slot int64, ch int32) bool {
	return slot == a.armedFor && int(ch) >= 0 && int(ch) < len(a.targets) && a.targets[ch]
}

// ObserveActivity records one slot's aggregate secondary-user activity
// (broadcast count per global channel) and arms the jam set for the
// following slot. The engine calls it exactly once per slot, after the
// slot resolves; broadcastsByChannel is a scratch buffer the engine
// reuses, so the adversary copies what it needs.
func (a *ReactiveAdversary) ObserveActivity(slot int64, broadcastsByChannel []int) {
	if len(a.targets) < len(broadcastsByChannel) {
		a.targets = make([]bool, len(broadcastsByChannel))
	}
	for ch := range a.targets {
		a.targets[ch] = false
	}
	a.armedFor = slot + 1
	if a.T <= 0 {
		return
	}
	a.order = a.order[:0]
	for ch, n := range broadcastsByChannel {
		if n > 0 {
			a.order = append(a.order, ch)
		}
	}
	counts := broadcastsByChannel
	sort.SliceStable(a.order, func(i, j int) bool {
		if counts[a.order[i]] != counts[a.order[j]] {
			return counts[a.order[i]] > counts[a.order[j]]
		}
		return a.order[i] < a.order[j]
	})
	budget := a.T
	if budget > len(a.order) {
		budget = len(a.order)
	}
	for _, ch := range a.order[:budget] {
		a.targets[ch] = true
	}
}
