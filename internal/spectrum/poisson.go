package spectrum

import (
	"fmt"
	"math"

	"crn/internal/bitset"
	"crn/internal/rng"
)

// HoldKind selects the holding-time distribution of a Poisson primary
// user: how long a transmission occupies its channel once it arrives.
type HoldKind int

// Holding-time distributions.
const (
	// HoldGeometric draws each holding time from a geometric
	// distribution with the configured mean (memoryless departures —
	// the M/M-style primary of Chaoub & Ibn-Elhaj).
	HoldGeometric HoldKind = iota + 1
	// HoldFixed occupies the channel for exactly ceil(mean) slots per
	// arrival (deterministic service).
	HoldFixed
)

// Poisson models primary users as a discretized Poisson arrival
// process per channel: in every slot an arrival occurs with
// probability 1-exp(-rate), and each arrival holds the channel for a
// geometric or fixed number of slots. Overlapping transmissions merge
// into one busy period. Schedules are precomputed deterministically per
// (seed, channel) via rng.Split, so the same parameters always yield
// the same occupancy trajectory. Beyond the horizon channels are
// reported idle.
type Poisson struct {
	horizon int64
	sched   []*bitset.Set // per channel, bit s = occupied in slot s
}

// maxHorizon bounds precomputed schedules (64 Mi slots ≈ 8 MiB of
// bitset per channel universe); shared by Markov and Poisson.
const maxHorizon = 1 << 26

// NewPoisson precomputes a Poisson on/off occupancy schedule for the
// given number of global channels over horizon slots. rate is the
// expected number of arrivals per slot (≥ 0); meanHold the mean
// holding time in slots (≥ 1); hold selects the holding distribution
// (zero value means HoldGeometric).
func NewPoisson(channels int, horizon int64, rate, meanHold float64, hold HoldKind, seed uint64) (*Poisson, error) {
	if channels < 1 {
		return nil, fmt.Errorf("spectrum: need at least one channel, got %d", channels)
	}
	if horizon < 1 {
		return nil, fmt.Errorf("spectrum: horizon must be >= 1, got %d", horizon)
	}
	if horizon > maxHorizon {
		return nil, fmt.Errorf("spectrum: horizon %d too large to precompute", horizon)
	}
	if math.IsNaN(rate) || rate < 0 {
		return nil, fmt.Errorf("spectrum: arrival rate must be >= 0, got %v", rate)
	}
	if math.IsNaN(meanHold) || meanHold < 1 {
		return nil, fmt.Errorf("spectrum: mean holding time must be >= 1 slot, got %v", meanHold)
	}
	switch hold {
	case HoldGeometric, HoldFixed:
	case 0:
		hold = HoldGeometric
	default:
		return nil, fmt.Errorf("spectrum: unknown holding kind %d", hold)
	}
	pArrive := 1 - math.Exp(-rate)
	master := rng.New(seed)
	p := &Poisson{horizon: horizon, sched: make([]*bitset.Set, channels)}
	for ch := 0; ch < channels; ch++ {
		r := master.Split(uint64(ch))
		sched := bitset.New(int(horizon))
		busyUntil := int64(0) // busy while slot < busyUntil
		for slot := int64(0); slot < horizon; slot++ {
			if busyUntil >= horizon {
				// Busy through the horizon: every remaining bit is
				// already determined and further arrival/holding draws
				// could only extend busyUntil past slots we never
				// report, so skip them. The schedule is identical to
				// drawing it out, but construction stays O(horizon)
				// even for extreme rate/hold parameters.
				for ; slot < horizon; slot++ {
					sched.Add(int(slot))
				}
				break
			}
			if r.Bernoulli(pArrive) {
				if end := slot + holdingTime(r, meanHold, hold, horizon); end > busyUntil {
					busyUntil = end
				}
			}
			if slot < busyUntil {
				sched.Add(int(slot))
			}
		}
		p.sched[ch] = sched
	}
	return p, nil
}

// holdingTime draws one holding time in slots (≥ 1), capped at horizon
// so degenerate means cannot spin the precompute loop.
func holdingTime(r *rng.Source, mean float64, kind HoldKind, horizon int64) int64 {
	if kind == HoldFixed {
		h := int64(math.Ceil(mean))
		if h > horizon {
			h = horizon
		}
		return h
	}
	// Geometric with mean `mean`: keep holding with probability
	// 1 - 1/mean each slot.
	pStay := 1 - 1/mean
	h := int64(1)
	for h < horizon && r.Bernoulli(pStay) {
		h++
	}
	return h
}

// Jammed implements Jammer.
func (p *Poisson) Jammed(slot int64, ch int32) bool {
	if slot < 0 || slot >= p.horizon || int(ch) < 0 || int(ch) >= len(p.sched) {
		return false
	}
	return p.sched[ch].Contains(int(slot))
}
