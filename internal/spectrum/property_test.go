package spectrum

import (
	"math"
	"testing"
	"testing/quick"

	"crn/internal/rng"
)

// TestQuickMarkovStationaryOccupancy: for any well-mixing (pOn, pOff)
// pair, the realized occupancy over a long horizon converges to the
// chain's stationary distribution pOn/(pOn+pOff).
func TestQuickMarkovStationaryOccupancy(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical property check")
	}
	f := func(onRaw, offRaw uint16, seed uint64) bool {
		// Keep both probabilities in [0.02, 1] so the chain mixes fast
		// enough for the fixed horizon and tolerance below.
		pOn := 0.02 + 0.98*float64(onRaw)/math.MaxUint16
		pOff := 0.02 + 0.98*float64(offRaw)/math.MaxUint16
		const channels, horizon = 4, 40000
		m, err := NewMarkov(channels, horizon, pOn, pOff, seed)
		if err != nil {
			return false
		}
		got := OccupancyFraction(m, channels, horizon)
		want := pOn / (pOn + pOff)
		return math.Abs(got-want) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickAdversaryBudget: whatever activity the adversary observes,
// it never jams more than T channels in any slot, never jams a channel
// it saw no broadcasts on, and never jams before its first
// observation.
func TestQuickAdversaryBudget(t *testing.T) {
	f := func(budgetRaw uint8, universeRaw uint8, seed uint64) bool {
		budget := int(budgetRaw % 12)
		universe := 1 + int(universeRaw%24)
		a := NewReactiveAdversary(budget)
		if len(jammedChannels(a, 0, universe)) != 0 {
			return false
		}
		r := rng.New(seed)
		activity := make([]int, universe)
		for slot := int64(0); slot < 100; slot++ {
			for ch := range activity {
				activity[ch] = r.Intn(4)
			}
			a.ObserveActivity(slot, activity)
			jammed := jammedChannels(a, slot+1, universe)
			if len(jammed) > budget {
				return false
			}
			for _, ch := range jammed {
				if activity[ch] == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickComposeNoneIdentity: Compose(None, j) answers exactly like
// j on arbitrary (slot, channel) queries, for each jammer family.
func TestQuickComposeNoneIdentity(t *testing.T) {
	markov, err := NewMarkov(6, 2000, 0.05, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	poisson, err := NewPoisson(6, 2000, 0.03, 7, HoldGeometric, 4)
	if err != nil {
		t.Fatal(err)
	}
	periodic, err := NewPeriodic(37, 11, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []Jammer{markov, poisson, periodic} {
		c := Compose(None{}, j)
		f := func(slotRaw uint16, chRaw uint8) bool {
			slot := int64(slotRaw) % 2200 // probe past the horizon too
			ch := int32(chRaw % 8)
			return c.Jammed(slot, ch) == j.Jammed(slot, ch)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("Compose(None, %T): %v", j, err)
		}
	}
}

// TestQuickComposeIsUnion: the composite jams iff some member jams.
func TestQuickComposeIsUnion(t *testing.T) {
	f := func(seedA, seedB uint64, slotRaw uint16, chRaw uint8) bool {
		a, err := NewMarkov(4, 1000, 0.1, 0.2, seedA)
		if err != nil {
			return false
		}
		b, err := NewPoisson(4, 1000, 0.05, 4, HoldFixed, seedB)
		if err != nil {
			return false
		}
		c := Compose(a, b)
		slot := int64(slotRaw) % 1000
		ch := int32(chRaw % 4)
		return c.Jammed(slot, ch) == (a.Jammed(slot, ch) || b.Jammed(slot, ch))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
