package spectrum

import (
	"testing"

	"crn/internal/rng"
)

func jammedChannels(j Jammer, slot int64, universe int) []int32 {
	var out []int32
	for ch := 0; ch < universe; ch++ {
		if j.Jammed(slot, int32(ch)) {
			out = append(out, int32(ch))
		}
	}
	return out
}

func TestAdversaryZeroValueAndZeroBudget(t *testing.T) {
	var a ReactiveAdversary // zero value: T = 0, no observations
	if a.Jammed(0, 0) || a.Jammed(5, 3) {
		t.Error("zero-value adversary jammed")
	}
	b := NewReactiveAdversary(0)
	b.ObserveActivity(0, []int{3, 1, 2})
	if got := jammedChannels(b, 1, 3); len(got) != 0 {
		t.Errorf("budget-0 adversary jammed %v", got)
	}
}

func TestAdversaryJamsBusiestWithDelay(t *testing.T) {
	a := NewReactiveAdversary(2)
	// Slot 0: channel 2 busiest, then 0.
	a.ObserveActivity(0, []int{2, 1, 5, 0})
	if got := jammedChannels(a, 0, 4); len(got) != 0 {
		t.Errorf("adversary jammed observation slot itself: %v", got)
	}
	got := jammedChannels(a, 1, 4)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("slot 1 jam set = %v, want [0 2]", got)
	}
	// The target set applies to slot 1 only.
	if a.Jammed(2, 2) {
		t.Error("stale target set used for a later slot")
	}
	// Tie between channels 1 and 3 breaks toward the lower index.
	a.ObserveActivity(1, []int{0, 4, 0, 4, 4})
	got = jammedChannels(a, 2, 5)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("tie-break jam set = %v, want [1 3]", got)
	}
}

func TestAdversaryIgnoresIdleChannels(t *testing.T) {
	a := NewReactiveAdversary(8)
	a.ObserveActivity(0, []int{0, 2, 0, 0, 1})
	got := jammedChannels(a, 1, 5)
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Errorf("jam set = %v, want only active channels [1 4]", got)
	}
}

func TestAdversaryNewRunResetsState(t *testing.T) {
	a := NewReactiveAdversary(3)
	a.ObserveActivity(7, []int{1, 1, 1})
	fresh, ok := a.NewRun().(*ReactiveAdversary)
	if !ok {
		t.Fatal("NewRun did not return a ReactiveAdversary")
	}
	if fresh.T != 3 {
		t.Errorf("NewRun budget = %d, want 3", fresh.T)
	}
	if got := jammedChannels(fresh, 8, 3); len(got) != 0 {
		t.Errorf("fresh run inherited jam state: %v", got)
	}
	// The original keeps its state.
	if got := jammedChannels(a, 8, 3); len(got) != 3 {
		t.Errorf("original lost jam state: %v", got)
	}
}

// TestAdversaryDeterministicReplay: feeding the same activity sequence
// twice yields identical jam decisions — the determinism contract
// run-scoped jammers must uphold.
func TestAdversaryDeterministicReplay(t *testing.T) {
	const universe, slots, budget = 6, 200, 2
	r := rng.New(11)
	feed := make([][]int, slots)
	for s := range feed {
		feed[s] = make([]int, universe)
		for ch := range feed[s] {
			feed[s][ch] = r.Intn(4)
		}
	}
	replay := func() [][]int32 {
		a := NewReactiveAdversary(budget)
		out := make([][]int32, slots)
		for s := 0; s < slots; s++ {
			a.ObserveActivity(int64(s), feed[s])
			out[s] = jammedChannels(a, int64(s)+1, universe)
		}
		return out
	}
	x, y := replay(), replay()
	for s := range x {
		if len(x[s]) != len(y[s]) {
			t.Fatalf("slot %d: replay diverged: %v vs %v", s, x[s], y[s])
		}
		for i := range x[s] {
			if x[s][i] != y[s][i] {
				t.Fatalf("slot %d: replay diverged: %v vs %v", s, x[s], y[s])
			}
		}
	}
}
