package spectrum

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNoneNeverJams(t *testing.T) {
	var j None
	for s := int64(0); s < 100; s++ {
		if j.Jammed(s, int32(s%5)) {
			t.Fatal("None jammed a channel")
		}
	}
}

func TestPeriodicValidation(t *testing.T) {
	if _, err := NewPeriodic(0, 0, 0, nil); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := NewPeriodic(10, -1, 0, nil); err == nil {
		t.Error("negative onSlots accepted")
	}
	if _, err := NewPeriodic(10, 11, 0, nil); err == nil {
		t.Error("onSlots > period accepted")
	}
}

func TestPeriodicPattern(t *testing.T) {
	j, err := NewPeriodic(10, 3, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for s := int64(0); s < 30; s++ {
		want := s%10 < 3
		if got := j.Jammed(s, 0); got != want {
			t.Errorf("Jammed(%d, 0) = %v, want %v", s, got, want)
		}
	}
}

func TestPeriodicStride(t *testing.T) {
	j, err := NewPeriodic(10, 3, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Channel 1 is shifted by 5: occupied when (s+5)%10 < 3.
	for s := int64(0); s < 20; s++ {
		want := (s+5)%10 < 3
		if got := j.Jammed(s, 1); got != want {
			t.Errorf("Jammed(%d, 1) = %v, want %v", s, got, want)
		}
	}
}

func TestPeriodicChannelFilter(t *testing.T) {
	j, err := NewPeriodic(4, 4, 0, []int32{2})
	if err != nil {
		t.Fatal(err)
	}
	if !j.Jammed(0, 2) {
		t.Error("listed channel not jammed")
	}
	if j.Jammed(0, 1) {
		t.Error("unlisted channel jammed")
	}
}

func TestPeriodicNegativeSlot(t *testing.T) {
	j, err := NewPeriodic(10, 3, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Must not panic and must stay within the periodic pattern.
	_ = j.Jammed(-25, 3)
}

func TestMarkovValidation(t *testing.T) {
	if _, err := NewMarkov(0, 10, 0.1, 0.1, 1); err == nil {
		t.Error("zero channels accepted")
	}
	if _, err := NewMarkov(2, 0, 0.1, 0.1, 1); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := NewMarkov(2, 10, 1.5, 0.1, 1); err == nil {
		t.Error("pBusy > 1 accepted")
	}
	if _, err := NewMarkov(2, 10, 0.1, -0.1, 1); err == nil {
		t.Error("negative pFree accepted")
	}
	if _, err := NewMarkov(2, 1<<30, 0.1, 0.1, 1); err == nil {
		t.Error("huge horizon accepted")
	}
}

func TestMarkovDeterminism(t *testing.T) {
	a, err := NewMarkov(3, 500, 0.05, 0.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMarkov(3, 500, 0.05, 0.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	for ch := int32(0); ch < 3; ch++ {
		for s := int64(0); s < 500; s++ {
			if a.Jammed(s, ch) != b.Jammed(s, ch) {
				t.Fatalf("same-seed Markov jammers diverged at (%d,%d)", s, ch)
			}
		}
	}
}

func TestMarkovOutOfRange(t *testing.T) {
	m, err := NewMarkov(2, 100, 0.5, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Jammed(-1, 0) || m.Jammed(100, 0) || m.Jammed(5, 2) || m.Jammed(5, -1) {
		t.Error("out-of-range query reported jammed")
	}
}

func TestMarkovStationaryOccupancy(t *testing.T) {
	// Stationary occupancy of the on/off chain is pBusy/(pBusy+pFree).
	const pBusy, pFree = 0.02, 0.08
	m, err := NewMarkov(8, 50000, pBusy, pFree, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := OccupancyFraction(m, 8, 50000)
	want := pBusy / (pBusy + pFree)
	if math.Abs(got-want) > 0.03 {
		t.Errorf("occupancy = %v, want ~%v", got, want)
	}
}

func TestOccupancyFractionPeriodic(t *testing.T) {
	j, err := NewPeriodic(10, 3, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := OccupancyFraction(j, 4, 1000)
	if math.Abs(got-0.3) > 1e-9 {
		t.Errorf("occupancy = %v, want 0.3", got)
	}
	if OccupancyFraction(j, 0, 10) != 0 || OccupancyFraction(j, 3, 0) != 0 {
		t.Error("degenerate windows should report 0")
	}
}

// TestQuickPeriodicOccupancyMatchesDuty: for any valid (period, on)
// pair the occupancy over whole periods equals on/period exactly.
func TestQuickPeriodicOccupancyMatchesDuty(t *testing.T) {
	f := func(periodRaw, onRaw uint8) bool {
		period := int64(periodRaw%30) + 1
		on := int64(onRaw) % (period + 1)
		j, err := NewPeriodic(period, on, 0, nil)
		if err != nil {
			return false
		}
		window := period * 10
		got := OccupancyFraction(j, 2, window)
		want := float64(on) / float64(period)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
