// Package spectrum models primary-user activity — the licensed
// transmitters whose presence is the reason cognitive radio networks
// exist (Section 1: secondary users exploit idle spectrum in licensed
// bands and must vacate when primary users appear).
//
// A Jammer answers, per (slot, global channel), whether a primary user
// occupies the channel. The radio engine treats occupied channels as
// unusable: frames broadcast there are lost and listeners hear only
// silence, matching the "protect the primary user, sense before use"
// regime of IEEE 802.22-style whitespace systems.
package spectrum

import (
	"fmt"

	"crn/internal/bitset"
	"crn/internal/rng"
)

// Jammer reports primary-user occupancy. Implementations must be
// deterministic — either pure functions of (slot, channel) like
// Periodic, Markov and Poisson, or deterministic functions of the
// activity the engine reported so far like ReactiveAdversary (stateful
// models must also implement RunScoped so each run gets its own
// instance) — and safe for concurrent readers within a slot.
type Jammer interface {
	// Jammed reports whether the given global channel is occupied by a
	// primary user in the given slot.
	Jammed(slot int64, ch int32) bool
}

// None is the zero Jammer: no primary users.
type None struct{}

// Jammed implements Jammer.
func (None) Jammed(int64, int32) bool { return false }

// Periodic models duty-cycled primary users: channel ch is occupied
// during the first OnSlots of every Period, shifted per channel so the
// network never loses all channels at once.
type Periodic struct {
	// Period is the cycle length in slots (> 0).
	Period int64
	// OnSlots is how many slots per cycle the primary user occupies
	// (0 ≤ OnSlots ≤ Period).
	OnSlots int64
	// ChannelStride staggers the phase by ChannelStride·ch slots.
	ChannelStride int64
	// Channels restricts jamming to the given global channels
	// (nil means every channel has a primary user).
	Channels []int32

	channelSet map[int32]bool
}

// NewPeriodic validates and returns a periodic jammer.
func NewPeriodic(period, onSlots, stride int64, channels []int32) (*Periodic, error) {
	if period <= 0 {
		return nil, fmt.Errorf("spectrum: period must be > 0, got %d", period)
	}
	if onSlots < 0 || onSlots > period {
		return nil, fmt.Errorf("spectrum: onSlots must be in [0,%d], got %d", period, onSlots)
	}
	p := &Periodic{Period: period, OnSlots: onSlots, ChannelStride: stride, Channels: channels}
	if channels != nil {
		p.channelSet = make(map[int32]bool, len(channels))
		for _, ch := range channels {
			p.channelSet[ch] = true
		}
	}
	return p, nil
}

// Jammed implements Jammer.
func (p *Periodic) Jammed(slot int64, ch int32) bool {
	if p.channelSet != nil && !p.channelSet[ch] {
		return false
	}
	phase := (slot + p.ChannelStride*int64(ch)) % p.Period
	if phase < 0 {
		phase += p.Period
	}
	return phase < p.OnSlots
}

// Markov models bursty primary users: each channel flips between idle
// and occupied with per-slot transition probabilities, precomputed
// deterministically over a horizon.
type Markov struct {
	horizon int64
	sched   []*bitset.Set // per channel, bit s = occupied in slot s... bits indexed by slot
}

// NewMarkov precomputes a Markov on/off occupancy schedule for the
// given number of global channels over horizon slots. pBusy is the
// idle→occupied probability per slot, pFree the occupied→idle
// probability. Beyond the horizon channels are reported idle.
func NewMarkov(channels int, horizon int64, pBusy, pFree float64, seed uint64) (*Markov, error) {
	if channels < 1 {
		return nil, fmt.Errorf("spectrum: need at least one channel, got %d", channels)
	}
	if horizon < 1 {
		return nil, fmt.Errorf("spectrum: horizon must be >= 1, got %d", horizon)
	}
	if pBusy < 0 || pBusy > 1 || pFree < 0 || pFree > 1 {
		return nil, fmt.Errorf("spectrum: probabilities must be in [0,1], got %v and %v", pBusy, pFree)
	}
	if horizon > maxHorizon {
		return nil, fmt.Errorf("spectrum: horizon %d too large to precompute", horizon)
	}
	master := rng.New(seed)
	m := &Markov{horizon: horizon, sched: make([]*bitset.Set, channels)}
	for ch := 0; ch < channels; ch++ {
		r := master.Split(uint64(ch))
		s := bitset.New(int(horizon))
		busy := false
		for slot := int64(0); slot < horizon; slot++ {
			if busy {
				if r.Bernoulli(pFree) {
					busy = false
				}
			} else if r.Bernoulli(pBusy) {
				busy = true
			}
			if busy {
				s.Add(int(slot))
			}
		}
		m.sched[ch] = s
	}
	return m, nil
}

// Jammed implements Jammer.
func (m *Markov) Jammed(slot int64, ch int32) bool {
	if slot < 0 || slot >= m.horizon || int(ch) < 0 || int(ch) >= len(m.sched) {
		return false
	}
	return m.sched[ch].Contains(int(slot))
}

// OccupancyFraction returns the fraction of (slot, channel) pairs the
// jammer occupies over the given window — a workload descriptor for
// experiment tables.
func OccupancyFraction(j Jammer, channels int, window int64) float64 {
	if channels < 1 || window < 1 {
		return 0
	}
	occupied := int64(0)
	for ch := 0; ch < channels; ch++ {
		for s := int64(0); s < window; s++ {
			if j.Jammed(s, int32(ch)) {
				occupied++
			}
		}
	}
	return float64(occupied) / float64(int64(channels)*window)
}
