package spectrum

import (
	"math"
	"testing"
)

// FuzzJammer drives every jammer family with fuzzer-chosen parameters
// and probes, asserting the two invariants the simulator depends on:
// construction either fails cleanly or yields a jammer that (1) never
// panics on any (slot, channel) query — including negative and
// out-of-range ones — and (2) is deterministic: rebuilding with the
// same inputs answers every probe identically.
func FuzzJammer(f *testing.F) {
	f.Add(uint64(1), 0.1, 0.2, 5.0, int64(100), int64(7), int32(2), uint8(1))
	f.Add(uint64(9), 0.0, 1.0, 1.0, int64(1), int64(-3), int32(-1), uint8(3))
	f.Add(uint64(42), 1.0, 0.0, 1e9, int64(4096), int64(1<<40), int32(200), uint8(0))
	f.Add(uint64(7), math.Inf(1), -0.5, math.NaN(), int64(0), int64(0), int32(0), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, pa, pb, hold float64, horizon, slot int64, ch int32, budget uint8) {
		if horizon > 1<<16 {
			horizon %= 1 << 16 // keep precompute cheap; range checks are covered by the huge-horizon validation cases
		}
		build := func() []Jammer {
			var js []Jammer
			if m, err := NewMarkov(4, horizon, pa, pb, seed); err == nil {
				js = append(js, m)
			}
			if p, err := NewPoisson(4, horizon, pa, hold, HoldGeometric, seed); err == nil {
				js = append(js, p)
			}
			if p, err := NewPoisson(4, horizon, pb, hold, HoldFixed, seed); err == nil {
				js = append(js, p)
			}
			if p, err := NewPeriodic(maxI64(horizon, 1), minI64(maxI64(horizon, 1), maxI64(slot%97, 0)), slot%13, nil); err == nil {
				js = append(js, p)
			}
			adv := NewReactiveAdversary(int(budget % 8))
			adv.ObserveActivity(0, []int{int(budget), 2, 0, 1})
			js = append(js, adv)
			js = append(js, Compose(js...))
			return js
		}
		probe := func(js []Jammer) []bool {
			var out []bool
			for _, j := range js {
				// Must not panic, whatever the query.
				out = append(out,
					j.Jammed(slot, ch),
					j.Jammed(-slot, -ch),
					j.Jammed(slot%maxI64(horizon, 1), ch%4),
					j.Jammed(0, 0),
				)
			}
			return out
		}
		a, b := build(), build()
		if len(a) != len(b) {
			t.Fatalf("construction not deterministic: %d vs %d jammers", len(a), len(b))
		}
		pa1, pb1 := probe(a), probe(b)
		for i := range pa1 {
			if pa1[i] != pb1[i] {
				t.Fatalf("probe %d not deterministic: %v vs %v", i, pa1[i], pb1[i])
			}
		}
	})
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
