package graph

import (
	"sort"
	"testing"

	"crn/internal/rng"
)

// rebuildFromDynamic constructs a fresh graph from scratch holding
// exactly the dynamic view's current edge set — the oracle every
// incremental invariant is checked against.
func rebuildFromDynamic(t *testing.T, d *Dynamic) *Graph {
	t.Helper()
	g := New(d.N())
	for _, e := range d.Graph().Edges() {
		if err := g.AddEdge(int(e.U), int(e.V)); err != nil {
			t.Fatalf("dynamic edge list holds invalid edge (%d,%d): %v", e.U, e.V, err)
		}
	}
	g.Finalize()
	return g
}

// assertDynamicMatches checks every structure the radio engine probes
// — sorted adjacency, dense matrix / hash index, edge list, counts —
// against the rebuilt-from-scratch oracle.
func assertDynamicMatches(t *testing.T, d *Dynamic, oracle *Graph) {
	t.Helper()
	g := d.Graph()
	if g.N() != oracle.N() || g.M() != oracle.M() {
		t.Fatalf("dynamic n=%d m=%d, oracle n=%d m=%d", g.N(), g.M(), oracle.N(), oracle.M())
	}
	for u := 0; u < g.N(); u++ {
		got, want := g.Neighbors(u), oracle.Neighbors(u)
		if len(got) != len(want) {
			t.Fatalf("node %d: adjacency %v, oracle %v", u, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("node %d: adjacency %v not sorted-equal to oracle %v", u, got, want)
			}
			if got[i] == want[i] && i > 0 && got[i-1] >= got[i] {
				t.Fatalf("node %d: adjacency %v lost sorted invariant", u, got)
			}
		}
	}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if g.HasEdge(u, v) != oracle.HasEdge(u, v) {
				t.Fatalf("HasEdge(%d,%d) = %v, oracle %v", u, v, g.HasEdge(u, v), oracle.HasEdge(u, v))
			}
			if g.Adjacent(u, v) != oracle.Adjacent(u, v) {
				t.Fatalf("Adjacent(%d,%d) = %v, oracle %v", u, v, g.Adjacent(u, v), oracle.Adjacent(u, v))
			}
		}
	}
	if gm, om := g.NeighborMatrix(), oracle.NeighborMatrix(); (gm == nil) != (om == nil) {
		t.Fatalf("matrix presence differs: dynamic %v, oracle %v", gm != nil, om != nil)
	} else if gm != nil && !gm.EqualMatrix(om) {
		t.Fatal("dynamic neighbor matrix diverged from oracle")
	}
	gotEdges := append([]Edge(nil), g.Edges()...)
	wantEdges := append([]Edge(nil), oracle.Edges()...)
	sortEdges(gotEdges)
	sortEdges(wantEdges)
	for i := range gotEdges {
		if gotEdges[i] != wantEdges[i] {
			t.Fatalf("edge sets differ at %d: %v vs %v", i, gotEdges[i], wantEdges[i])
		}
	}
}

func sortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
}

// TestDynamicRandomizedOracle is the acceptance oracle: a long random
// interleaving of incremental adds and removes must leave every
// invariant identical to a graph rebuilt from scratch at checkpoints.
func TestDynamicRandomizedOracle(t *testing.T) {
	const n, ops, checkEvery = 24, 4000, 250
	r := rng.New(42)
	base, err := GNP(n, 0.25, r)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDynamic(base)
	adds, removes := 0, 0
	for op := 1; op <= ops; op++ {
		u, v := r.Intn(n), r.Intn(n)
		if r.Bool() {
			if d.AddEdge(u, v) {
				adds++
			} else if u != v && !d.HasEdge(u, v) {
				t.Fatalf("AddEdge(%d,%d) refused a valid insertion", u, v)
			}
		} else {
			if d.RemoveEdge(u, v) {
				removes++
			} else if d.HasEdge(u, v) {
				t.Fatalf("RemoveEdge(%d,%d) refused a present edge", u, v)
			}
		}
		if op%checkEvery == 0 {
			assertDynamicMatches(t, d, rebuildFromDynamic(t, d))
		}
	}
	if adds == 0 || removes == 0 {
		t.Fatalf("workload degenerate: %d adds, %d removes", adds, removes)
	}
	assertDynamicMatches(t, d, rebuildFromDynamic(t, d))
}

// TestDynamicHashFallbackOracle exercises the hash edge-index path
// (graphs above the dense-matrix node cap never allocate a matrix; the
// test forces that path on a small graph via the edgeSet branch by
// checking a large-n clone is still consistent incrementally).
func TestDynamicHashFallbackOracle(t *testing.T) {
	// A base just above the matrix cap would cost gigabytes of test
	// time; instead build a small base, steal its shape into a graph
	// constructed with the hash index, and run the same oracle.
	const n, ops = 16, 1200
	r := rng.New(7)
	base, err := GNP(n, 0.3, r)
	if err != nil {
		t.Fatal(err)
	}
	hashed := New(n)
	hashed.edgeSet = make(map[uint64]struct{})
	for _, e := range base.Edges() {
		hashed.MustAddEdge(int(e.U), int(e.V))
	}
	hashed.Finalize()
	if hashed.NeighborMatrix() != nil {
		t.Fatal("hash-index base unexpectedly built a matrix")
	}
	d := NewDynamic(hashed)
	if d.Graph().NeighborMatrix() != nil {
		t.Fatal("dynamic clone of a hash-index graph grew a matrix")
	}
	for op := 1; op <= ops; op++ {
		u, v := r.Intn(n), r.Intn(n)
		if r.Bool() {
			d.AddEdge(u, v)
		} else {
			d.RemoveEdge(u, v)
		}
		if op%200 == 0 {
			oracle := New(n)
			oracle.edgeSet = make(map[uint64]struct{})
			for _, e := range d.Graph().Edges() {
				oracle.MustAddEdge(int(e.U), int(e.V))
			}
			oracle.Finalize()
			assertDynamicMatches(t, d, oracle)
		}
	}
}

// TestDynamicLeavesBaseUntouched: the clone is deep — mutating the
// dynamic view must not disturb the base graph shared across sweep
// workers.
func TestDynamicLeavesBaseUntouched(t *testing.T) {
	base, err := GNP(12, 0.3, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	wantM := base.M()
	wantAdj := make([][]int32, base.N())
	for u := range wantAdj {
		wantAdj[u] = append([]int32(nil), base.Neighbors(u)...)
	}
	d := NewDynamic(base)
	for u := 0; u < base.N(); u++ {
		for v := u + 1; v < base.N(); v++ {
			if d.HasEdge(u, v) {
				d.RemoveEdge(u, v)
			} else {
				d.AddEdge(u, v)
			}
		}
	}
	if base.M() != wantM {
		t.Fatalf("base edge count changed: %d -> %d", wantM, base.M())
	}
	for u := range wantAdj {
		got := base.Neighbors(u)
		if len(got) != len(wantAdj[u]) {
			t.Fatalf("base adjacency of %d changed: %v -> %v", u, wantAdj[u], got)
		}
		for i := range got {
			if got[i] != wantAdj[u][i] {
				t.Fatalf("base adjacency of %d changed: %v -> %v", u, wantAdj[u], got)
			}
		}
		for _, v := range wantAdj[u] {
			if !base.HasEdge(u, int(v)) {
				t.Fatalf("base lost edge (%d,%d)", u, v)
			}
		}
	}
}

// TestUnitDiskGeometryConsistent: the returned point set explains the
// returned edge set exactly.
func TestUnitDiskGeometryConsistent(t *testing.T) {
	g, geom, err := UnitDiskGeometry(30, 0.35, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(geom.X) != g.N() || len(geom.Y) != g.N() || geom.Radius != 0.35 {
		t.Fatalf("geometry shape mismatch: %d/%d points, radius %v", len(geom.X), len(geom.Y), geom.Radius)
	}
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if g.HasEdge(u, v) != geom.InRange(u, v) {
				t.Fatalf("edge (%d,%d)=%v disagrees with geometry range %v", u, v, g.HasEdge(u, v), geom.InRange(u, v))
			}
		}
	}
	c := geom.Clone()
	c.X[0] += 1
	if geom.X[0] == c.X[0] {
		t.Fatal("Clone shares position storage")
	}
}
