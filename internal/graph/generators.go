package graph

import (
	"fmt"

	"crn/internal/rng"
)

// Star returns a star on n vertices with vertex 0 at the center.
// It is the topology behind the Ω(Δ) term in Theorem 13: the center can
// learn at most one identity per slot.
func Star(n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(0, v)
	}
	g.Finalize()
	return g
}

// Path returns a path 0-1-2-…-(n-1), the maximum-diameter tree.
func Path(n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v-1, v)
	}
	g.Finalize()
	return g
}

// Cycle returns a cycle on n ≥ 3 vertices.
func Cycle(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: cycle needs n >= 3, got %d", n)
	}
	g := Path(n)
	g.MustAddEdge(0, n-1)
	g.Finalize()
	return g, nil
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(u, v)
		}
	}
	g.Finalize()
	return g
}

// CompleteTree returns a complete rooted tree of the given height in
// which every internal vertex has `branching` children, along with the
// number of vertices. Vertex 0 is the root. This is the topology in the
// proof of Theorem 14 (with branching = min{c,Δ}−1).
func CompleteTree(branching, height int) (*Graph, error) {
	if branching < 1 {
		return nil, fmt.Errorf("graph: tree branching must be >= 1, got %d", branching)
	}
	if height < 0 {
		return nil, fmt.Errorf("graph: tree height must be >= 0, got %d", height)
	}
	// Count vertices: sum of branching^level for level = 0..height.
	n := 1
	levelSize := 1
	for l := 1; l <= height; l++ {
		levelSize *= branching
		n += levelSize
		if n > 1<<22 {
			return nil, fmt.Errorf("graph: complete tree too large (%d vertices)", n)
		}
	}
	g := New(n)
	// Assign ids level by level; children of vertex v at index i within
	// its level start right after all previously allocated vertices.
	next := 1
	var frontier []int
	frontier = append(frontier, 0)
	for l := 0; l < height; l++ {
		var nextFrontier []int
		for _, p := range frontier {
			for c := 0; c < branching; c++ {
				g.MustAddEdge(p, next)
				nextFrontier = append(nextFrontier, next)
				next++
			}
		}
		frontier = nextFrontier
	}
	g.Finalize()
	return g, nil
}

// Grid returns the rows×cols grid graph.
func Grid(rows, cols int) (*Graph, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("graph: grid needs positive dims, got %dx%d", rows, cols)
	}
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	g.Finalize()
	return g, nil
}

// ClusterChain returns a "chain of clusters": numClusters cliques of
// size clusterSize, with one bridge edge joining consecutive clusters.
// It produces networks with both large Δ (inside clusters) and large D
// (across the chain), the regime where CGCAST's D·Δ term is visible.
func ClusterChain(numClusters, clusterSize int) (*Graph, error) {
	if numClusters < 1 || clusterSize < 1 {
		return nil, fmt.Errorf("graph: cluster chain needs positive params, got %d clusters of %d", numClusters, clusterSize)
	}
	n := numClusters * clusterSize
	g := New(n)
	for cl := 0; cl < numClusters; cl++ {
		base := cl * clusterSize
		for i := 0; i < clusterSize; i++ {
			for j := i + 1; j < clusterSize; j++ {
				g.MustAddEdge(base+i, base+j)
			}
		}
		if cl > 0 {
			// Bridge from the last vertex of the previous cluster to the
			// first vertex of this one.
			g.MustAddEdge(base-1, base)
		}
	}
	g.Finalize()
	return g, nil
}

// GNP returns an Erdős–Rényi G(n, p) graph. It retries up to 64 seeds
// derived from r until the sample is connected, and errors if none is.
func GNP(n int, p float64, r *rng.Source) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: GNP needs n >= 1, got %d", n)
	}
	for attempt := 0; attempt < 64; attempt++ {
		g := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Bernoulli(p) {
					g.MustAddEdge(u, v)
				}
			}
		}
		if g.Connected() {
			g.Finalize()
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: GNP(n=%d, p=%v) produced no connected sample in 64 attempts", n, p)
}

// Geometry is the point set a unit-disk graph was realized from: node
// i sits at (X[i], Y[i]) in the unit square and edges connect pairs
// within Radius. Mobility models move these points and re-derive the
// edge set, so the geometry travels with the scenario.
type Geometry struct {
	X, Y   []float64
	Radius float64
}

// InRange reports whether nodes u and v are within transmission range.
func (ge *Geometry) InRange(u, v int) bool {
	dx, dy := ge.X[u]-ge.X[v], ge.Y[u]-ge.Y[v]
	return dx*dx+dy*dy <= ge.Radius*ge.Radius
}

// Clone returns a deep copy (mobility models mutate positions per run
// while the scenario's realized geometry stays fixed).
func (ge *Geometry) Clone() *Geometry {
	return &Geometry{
		X:      append([]float64(nil), ge.X...),
		Y:      append([]float64(nil), ge.Y...),
		Radius: ge.Radius,
	}
}

// UnitDisk returns a random geometric (unit-disk) graph: n points
// uniform in the unit square, edges between pairs within the given
// radius. Retries until connected, erroring after 64 attempts. Unit
// disk graphs are the standard abstraction for wireless transmission
// ranges.
func UnitDisk(n int, radius float64, r *rng.Source) (*Graph, error) {
	g, _, err := UnitDiskGeometry(n, radius, r)
	return g, err
}

// UnitDiskGeometry is UnitDisk returning the realized point set as
// well, for mobility models that need the geometry the edges came
// from.
func UnitDiskGeometry(n int, radius float64, r *rng.Source) (*Graph, *Geometry, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("graph: UnitDisk needs n >= 1, got %d", n)
	}
	r2 := radius * radius
	for attempt := 0; attempt < 64; attempt++ {
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = r.Float64()
			ys[i] = r.Float64()
		}
		g := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				dx, dy := xs[u]-xs[v], ys[u]-ys[v]
				if dx*dx+dy*dy <= r2 {
					g.MustAddEdge(u, v)
				}
			}
		}
		if g.Connected() {
			g.Finalize()
			return g, &Geometry{X: xs, Y: ys, Radius: radius}, nil
		}
	}
	return nil, nil, fmt.Errorf("graph: UnitDisk(n=%d, radius=%v) produced no connected sample in 64 attempts", n, radius)
}

// RandomRegularish returns a connected graph where every vertex has
// degree close to d, built by threading a Hamiltonian cycle (for
// connectivity) and adding random chords. Exact regularity is not
// guaranteed, but degrees stay within [2, d+1]. Useful for sweeping Δ
// at fixed n.
func RandomRegularish(n, d int, r *rng.Source) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: RandomRegularish needs n >= 3, got %d", n)
	}
	if d < 2 || d >= n {
		return nil, fmt.Errorf("graph: RandomRegularish needs 2 <= d < n, got d=%d n=%d", d, n)
	}
	g := New(n)
	perm := r.Perm(n)
	for i := 0; i < n; i++ {
		u, v := perm[i], perm[(i+1)%n]
		if !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
		}
	}
	// Add chords until average degree reaches d, never exceeding d+1 on
	// any endpoint.
	target := n * d / 2
	tries := 0
	for g.M() < target && tries < 50*n*d {
		tries++
		u, v := r.Intn(n), r.Intn(n)
		if u == v || g.HasEdge(u, v) || g.Degree(u) > d || g.Degree(v) > d {
			continue
		}
		g.MustAddEdge(u, v)
	}
	g.Finalize()
	return g, nil
}

// TwoNode returns the 2-vertex, 1-edge graph used by the Lemma 11
// reduction (a network containing only two nodes u and v).
func TwoNode() *Graph {
	g := New(2)
	g.MustAddEdge(0, 1)
	g.Finalize()
	return g
}
