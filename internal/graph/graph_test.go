package graph

import (
	"testing"
	"testing/quick"

	"crn/internal/rng"
)

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	tests := []struct {
		name string
		u, v int
	}{
		{name: "self loop", u: 1, v: 1},
		{name: "negative", u: -1, v: 0},
		{name: "out of range", u: 0, v: 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := g.AddEdge(tt.u, tt.v); err == nil {
				t.Errorf("AddEdge(%d,%d) succeeded, want error", tt.u, tt.v)
			}
		})
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge(0,1): %v", err)
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestBasicQueries(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 0)
	g.Finalize()

	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("N,M = %d,%d want 4,4", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge symmetric lookup failed")
	}
	if g.HasEdge(0, 2) {
		t.Error("HasEdge(0,2) = true")
	}
	if g.Degree(0) != 2 || g.MaxDegree() != 2 {
		t.Errorf("Degree(0)=%d MaxDegree=%d, want 2,2", g.Degree(0), g.MaxDegree())
	}
	for _, e := range g.Edges() {
		if e.U >= e.V {
			t.Errorf("edge %v not normalized", e)
		}
	}
}

func TestBFSAndDiameter(t *testing.T) {
	g := Path(5)
	dist := g.BFS(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Errorf("BFS(0)[%d] = %d, want %d", i, dist[i], want)
		}
	}
	if d := g.Diameter(); d != 4 {
		t.Errorf("Path(5).Diameter() = %d, want 4", d)
	}
	if e := g.Eccentricity(2); e != 2 {
		t.Errorf("Eccentricity(2) = %d, want 2", e)
	}

	// Disconnected graph.
	h := New(4)
	h.MustAddEdge(0, 1)
	h.MustAddEdge(2, 3)
	if h.Connected() {
		t.Error("disconnected graph reported connected")
	}
	if d := h.Diameter(); d != -1 {
		t.Errorf("disconnected Diameter = %d, want -1", d)
	}
	if e := h.Eccentricity(0); e != -1 {
		t.Errorf("disconnected Eccentricity = %d, want -1", e)
	}
}

func TestTrivialGraphs(t *testing.T) {
	if !New(0).Connected() || !New(1).Connected() {
		t.Error("empty/singleton graphs should be connected")
	}
	if d := New(1).Diameter(); d != 0 {
		t.Errorf("singleton Diameter = %d, want 0", d)
	}
}

func TestStar(t *testing.T) {
	g := Star(6)
	if g.MaxDegree() != 5 {
		t.Errorf("Star(6).MaxDegree() = %d, want 5", g.MaxDegree())
	}
	if g.Degree(3) != 1 {
		t.Errorf("leaf degree = %d, want 1", g.Degree(3))
	}
	if d := g.Diameter(); d != 2 {
		t.Errorf("Star(6).Diameter() = %d, want 2", d)
	}
}

func TestCycle(t *testing.T) {
	if _, err := Cycle(2); err == nil {
		t.Error("Cycle(2) should error")
	}
	g, err := Cycle(6)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 6 || g.MaxDegree() != 2 || g.Diameter() != 3 {
		t.Errorf("Cycle(6): M=%d Δ=%d D=%d, want 6,2,3", g.M(), g.MaxDegree(), g.Diameter())
	}
}

func TestComplete(t *testing.T) {
	g := Complete(5)
	if g.M() != 10 || g.MaxDegree() != 4 || g.Diameter() != 1 {
		t.Errorf("K5: M=%d Δ=%d D=%d, want 10,4,1", g.M(), g.MaxDegree(), g.Diameter())
	}
}

func TestCompleteTree(t *testing.T) {
	tests := []struct {
		branching, height int
		wantN, wantDiam   int
	}{
		{branching: 2, height: 0, wantN: 1, wantDiam: 0},
		{branching: 2, height: 1, wantN: 3, wantDiam: 2},
		{branching: 2, height: 3, wantN: 15, wantDiam: 6},
		{branching: 3, height: 2, wantN: 13, wantDiam: 4},
		{branching: 1, height: 4, wantN: 5, wantDiam: 4},
	}
	for _, tt := range tests {
		g, err := CompleteTree(tt.branching, tt.height)
		if err != nil {
			t.Fatalf("CompleteTree(%d,%d): %v", tt.branching, tt.height, err)
		}
		if g.N() != tt.wantN {
			t.Errorf("CompleteTree(%d,%d).N() = %d, want %d", tt.branching, tt.height, g.N(), tt.wantN)
		}
		if d := g.Diameter(); d != tt.wantDiam {
			t.Errorf("CompleteTree(%d,%d).Diameter() = %d, want %d", tt.branching, tt.height, d, tt.wantDiam)
		}
		if g.M() != g.N()-1 {
			t.Errorf("tree has %d edges for %d vertices", g.M(), g.N())
		}
		if !g.Connected() {
			t.Error("tree not connected")
		}
		// Root degree equals branching (height >= 1).
		if tt.height >= 1 && g.Degree(0) != tt.branching {
			t.Errorf("root degree = %d, want %d", g.Degree(0), tt.branching)
		}
	}
	if _, err := CompleteTree(0, 1); err == nil {
		t.Error("CompleteTree(0,1) should error")
	}
	if _, err := CompleteTree(2, -1); err == nil {
		t.Error("CompleteTree(2,-1) should error")
	}
}

func TestGrid(t *testing.T) {
	g, err := Grid(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Errorf("Grid(3,4).N() = %d, want 12", g.N())
	}
	// Edges: 3*3 horizontal + 2*4 vertical = 17.
	if g.M() != 17 {
		t.Errorf("Grid(3,4).M() = %d, want 17", g.M())
	}
	if d := g.Diameter(); d != 5 {
		t.Errorf("Grid(3,4).Diameter() = %d, want 5", d)
	}
	if _, err := Grid(0, 3); err == nil {
		t.Error("Grid(0,3) should error")
	}
}

func TestClusterChain(t *testing.T) {
	g, err := ClusterChain(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 20 {
		t.Fatalf("N = %d, want 20", g.N())
	}
	if !g.Connected() {
		t.Fatal("cluster chain not connected")
	}
	// Each clique has C(5,2)=10 edges, plus 3 bridges.
	if g.M() != 43 {
		t.Errorf("M = %d, want 43", g.M())
	}
	// Bridge endpoints have degree 5; interior clique members 4.
	if g.MaxDegree() != 6 {
		// vertex 4 connects to its 4 clique peers + bridge to 5; vertex 5
		// connects to 4 peers + bridge from 4 + bridge to ... only one
		// bridge each side; max is 5 for single-bridge endpoints, 6 when a
		// vertex carries bridges on both sides (cluster size 1 case).
		t.Logf("MaxDegree = %d", g.MaxDegree())
	}
	if _, err := ClusterChain(0, 2); err == nil {
		t.Error("ClusterChain(0,2) should error")
	}
}

func TestClusterChainDegenerate(t *testing.T) {
	g, err := ClusterChain(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Degenerates to a path.
	if g.Diameter() != 4 || g.M() != 4 {
		t.Errorf("ClusterChain(5,1): D=%d M=%d, want 4,4", g.Diameter(), g.M())
	}
}

func TestGNP(t *testing.T) {
	r := rng.New(1)
	g, err := GNP(30, 0.3, r)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Error("GNP sample not connected")
	}
	if g.N() != 30 {
		t.Errorf("N = %d, want 30", g.N())
	}
	if _, err := GNP(0, 0.5, r); err == nil {
		t.Error("GNP(0) should error")
	}
	// Hopeless density must error out rather than loop forever.
	if _, err := GNP(40, 0.0, r); err == nil {
		t.Error("GNP with p=0 should fail to connect")
	}
}

func TestUnitDisk(t *testing.T) {
	r := rng.New(7)
	g, err := UnitDisk(40, 0.35, r)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Error("unit disk sample not connected")
	}
	if _, err := UnitDisk(50, 0.01, r); err == nil {
		t.Error("tiny-radius UnitDisk should fail to connect")
	}
}

func TestRandomRegularish(t *testing.T) {
	r := rng.New(3)
	const n, d = 40, 6
	g, err := RandomRegularish(n, d, r)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("not connected")
	}
	for u := 0; u < n; u++ {
		if g.Degree(u) < 2 || g.Degree(u) > d+1 {
			t.Errorf("vertex %d degree %d outside [2,%d]", u, g.Degree(u), d+1)
		}
	}
	if _, err := RandomRegularish(2, 2, r); err == nil {
		t.Error("RandomRegularish(2,2) should error")
	}
	if _, err := RandomRegularish(10, 1, r); err == nil {
		t.Error("RandomRegularish(10,1) should error")
	}
}

func TestTwoNode(t *testing.T) {
	g := TwoNode()
	if g.N() != 2 || g.M() != 1 || !g.HasEdge(0, 1) {
		t.Error("TwoNode malformed")
	}
}

func TestLineGraphTriangle(t *testing.T) {
	// Triangle: line graph is also a triangle.
	g := Complete(3)
	lg, edges := g.LineGraph()
	if lg.N() != 3 || lg.M() != 3 {
		t.Errorf("line graph of K3: N=%d M=%d, want 3,3", lg.N(), lg.M())
	}
	if len(edges) != 3 {
		t.Errorf("edge mapping has %d entries, want 3", len(edges))
	}
}

func TestLineGraphPath(t *testing.T) {
	// Path on 4 vertices (3 edges): line graph is a path on 3 vertices.
	g := Path(4)
	lg, _ := g.LineGraph()
	if lg.N() != 3 || lg.M() != 2 {
		t.Errorf("line graph of P4: N=%d M=%d, want 3,2", lg.N(), lg.M())
	}
}

func TestLineGraphStar(t *testing.T) {
	// Star K_{1,4}: line graph is K4.
	g := Star(5)
	lg, _ := g.LineGraph()
	if lg.N() != 4 || lg.M() != 6 {
		t.Errorf("line graph of K1,4: N=%d M=%d, want 4,6", lg.N(), lg.M())
	}
}

// TestLineGraphProperties checks structural invariants on random
// graphs: vertex count = M(g), adjacency iff shared endpoint, and the
// max degree bound 2Δ-2 from Section 5.3.
func TestLineGraphProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		g, err := GNP(12, 0.4, r)
		if err != nil {
			return true // skip unlucky disconnected batches
		}
		lg, edges := g.LineGraph()
		if lg.N() != g.M() {
			return false
		}
		// Max degree of the line graph is at most 2Δ-2.
		if dMax := g.MaxDegree(); lg.MaxDegree() > 2*dMax-2 {
			return false
		}
		// Check adjacency definition on all pairs.
		for i := 0; i < lg.N(); i++ {
			for j := i + 1; j < lg.N(); j++ {
				share := edges[i].U == edges[j].U || edges[i].U == edges[j].V ||
					edges[i].V == edges[j].U || edges[i].V == edges[j].V
				if lg.HasEdge(i, j) != share {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestDiameterMatchesFloydWarshall cross-checks BFS-based diameter
// against a Floyd–Warshall reference on small random graphs.
func TestDiameterMatchesFloydWarshall(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		g, err := GNP(10, 0.35, r)
		if err != nil {
			return true
		}
		n := g.N()
		const inf = 1 << 29
		d := make([][]int, n)
		for i := range d {
			d[i] = make([]int, n)
			for j := range d[i] {
				if i != j {
					d[i][j] = inf
				}
			}
		}
		for _, e := range g.Edges() {
			d[e.U][e.V] = 1
			d[e.V][e.U] = 1
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if d[i][k]+d[k][j] < d[i][j] {
						d[i][j] = d[i][k] + d[k][j]
					}
				}
			}
		}
		want := 0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d[i][j] > want {
					want = d[i][j]
				}
			}
		}
		return g.Diameter() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New(5)
	g.MustAddEdge(2, 4)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(2, 3)
	g.Finalize()
	nbrs := g.Neighbors(2)
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i-1] >= nbrs[i] {
			t.Fatalf("Neighbors(2) not sorted: %v", nbrs)
		}
	}
}

func BenchmarkDiameter(b *testing.B) {
	r := rng.New(1)
	g, err := GNP(100, 0.1, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Diameter()
	}
}

func BenchmarkLineGraph(b *testing.B) {
	r := rng.New(1)
	g, err := GNP(60, 0.15, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = g.LineGraph()
	}
}

// BenchmarkGNPDense measures dense random-graph generation, which is
// dominated by AddEdge's duplicate check.
func BenchmarkGNPDense(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := GNP(512, 0.5, rng.New(uint64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		if g.M() == 0 {
			b.Fatal("no edges")
		}
	}
}

// BenchmarkRandomRegularish measures the HasEdge-heavy chord generator.
func BenchmarkRandomRegularish(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := RandomRegularish(512, 16, rng.New(uint64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		if g.M() == 0 {
			b.Fatal("no edges")
		}
	}
}

// TestAdjacentMatchesHasEdge checks the finalized fast paths (dense
// matrix below the node cap, binary search above it) against the
// reference edge index.
func TestAdjacentMatchesHasEdge(t *testing.T) {
	g, err := GNP(60, 0.3, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if g.NeighborMatrix() == nil {
		t.Fatal("small graph should carry the dense neighbor matrix")
	}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if got, want := g.Adjacent(u, v), g.HasEdge(u, v); got != want {
				t.Fatalf("Adjacent(%d,%d) = %v, HasEdge = %v", u, v, got, want)
			}
		}
	}
}

// TestHugeGraphFallsBackToEdgeSet checks graphs above maxMatrixNodes:
// no dense matrix, O(1) HasEdge via the hash index, and Adjacent via
// binary search after Finalize.
func TestHugeGraphFallsBackToEdgeSet(t *testing.T) {
	n := maxMatrixNodes + 10
	g := Path(n)
	if g.NeighborMatrix() != nil {
		t.Fatal("huge graph built a dense matrix")
	}
	if err := g.AddEdge(0, 1); err == nil {
		t.Error("duplicate edge accepted on the edge-set path")
	}
	if !g.HasEdge(5, 6) || g.HasEdge(5, 7) {
		t.Error("HasEdge wrong on the edge-set path")
	}
	if !g.Adjacent(5, 6) || g.Adjacent(5, 7) {
		t.Error("Adjacent wrong on the binary-search path")
	}
}

// TestAddEdgeDuplicateDetection pins the O(1) duplicate check across
// construction orders.
func TestAddEdgeDuplicateDetection(t *testing.T) {
	g := New(5)
	if err := g.AddEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(3, 1); err == nil {
		t.Error("reversed duplicate accepted")
	}
	if err := g.AddEdge(1, 3); err == nil {
		t.Error("duplicate accepted")
	}
	if g.M() != 1 {
		t.Errorf("M = %d after rejected duplicates, want 1", g.M())
	}
}
