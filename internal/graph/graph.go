// Package graph models the network topology of a cognitive radio
// network as an undirected simple graph, as in Section 3 of the paper:
// vertices are nodes, and an edge connects two nodes iff they are
// neighbors (within range and sharing channels).
//
// The package provides the structural queries the algorithms and their
// analyses need — degree Δ, diameter D, BFS layers, connectivity — plus
// the line-graph construction CGCAST uses to turn edge coloring into
// node coloring, and generators for the worst-case topologies in the
// lower-bound proofs (stars, complete trees) and for random networks.
package graph

import (
	"fmt"
	"sort"

	"crn/internal/bitset"
)

// Graph is an undirected simple graph on vertices 0..N-1.
// Construct with New and AddEdge; the structure is append-only.
type Graph struct {
	n     int
	adj   [][]int32 // sorted after Finalize
	edges []Edge    // each with U < V
	final bool
	// nbr is the dense adjacency matrix maintained by AddEdge for
	// graphs with at most maxMatrixNodes vertices (allocated lazily on
	// the first edge). It makes duplicate detection and the radio
	// engine's adjacency probes O(1) with no hashing.
	nbr *bitset.Matrix
	// edgeSet indexes edges by packed (U,V) key for graphs too large
	// for a dense matrix; nil while nbr is in use.
	edgeSet map[uint64]struct{}
}

// maxMatrixNodes caps the dense adjacency matrix: n²/8 bytes of
// backing store, so 8192 nodes → 8 MiB. Larger graphs fall back to a
// hash-set edge index.
const maxMatrixNodes = 8192

// edgeKey packs an undirected edge into a map key (order-insensitive).
func edgeKey(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}

// Edge is an undirected edge with U < V.
type Edge struct {
	U, V int32
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	g := &Graph{
		n:   n,
		adj: make([][]int32, n),
	}
	if n > maxMatrixNodes {
		g.edgeSet = make(map[uint64]struct{})
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// AddEdge inserts the undirected edge {u, v}. It returns an error for
// self-loops, out-of-range endpoints, or duplicate edges. The
// duplicate check is O(1) — a dense bit-matrix probe (hash-set lookup
// for graphs above maxMatrixNodes) — so generating a dense graph is
// O(m), not O(m·Δ).
func (g *Graph) AddEdge(u, v int) error {
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if g.nbr == nil && g.edgeSet == nil {
		g.nbr = bitset.NewMatrix(g.n, g.n)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	if u > v {
		u, v = v, u
	}
	g.adj[u] = append(g.adj[u], int32(v))
	g.adj[v] = append(g.adj[v], int32(u))
	g.edges = append(g.edges, Edge{U: int32(u), V: int32(v)})
	if g.edgeSet != nil {
		g.edgeSet[edgeKey(u, v)] = struct{}{}
	} else {
		g.nbr.Set(u, v)
		g.nbr.Set(v, u)
	}
	g.final = false
	return nil
}

// MustAddEdge is AddEdge for generator code where the edge is known
// valid by construction; it panics on error.
func (g *Graph) MustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// HasEdge reports whether {u, v} is an edge, in O(1).
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	if g.nbr != nil {
		return g.nbr.Get(u, v)
	}
	_, ok := g.edgeSet[edgeKey(u, v)]
	return ok
}

// Adjacent reports whether {u, v} is an edge, on the fastest path the
// finalized structure offers: an O(1) matrix probe when the dense
// neighbor matrix exists, otherwise an O(log Δ) binary search of u's
// sorted adjacency list. It must only be called after Finalize with
// in-range vertices (the radio engine finalizes its graph on
// construction); for unfinalized graphs or unchecked input use
// HasEdge.
func (g *Graph) Adjacent(u, v int) bool {
	if g.nbr != nil {
		return g.nbr.Get(u, v)
	}
	a := g.adj[u]
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(a[mid]) < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(a) && int(a[lo]) == v
}

// NeighborMatrix returns the dense adjacency matrix, or nil when the
// graph is too large for one (above maxMatrixNodes vertices).
func (g *Graph) NeighborMatrix() *bitset.Matrix { return g.nbr }

// Neighbors returns the adjacency list of u. The caller must not
// modify the returned slice.
func (g *Graph) Neighbors(u int) []int32 { return g.adj[u] }

// Degree returns the degree of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// MaxDegree returns Δ, the maximum degree (0 for empty graphs).
func (g *Graph) MaxDegree() int {
	d := 0
	for u := 0; u < g.n; u++ {
		if len(g.adj[u]) > d {
			d = len(g.adj[u])
		}
	}
	return d
}

// Edges returns all edges with U < V. The caller must not modify the
// returned slice.
func (g *Graph) Edges() []Edge { return g.edges }

// Finalize sorts adjacency lists for deterministic iteration order.
// Generators call it before returning; it is idempotent.
func (g *Graph) Finalize() {
	if g.final {
		return
	}
	for u := range g.adj {
		sort.Slice(g.adj[u], func(i, j int) bool { return g.adj[u][i] < g.adj[u][j] })
	}
	sort.Slice(g.edges, func(i, j int) bool {
		if g.edges[i].U != g.edges[j].U {
			return g.edges[i].U < g.edges[j].U
		}
		return g.edges[i].V < g.edges[j].V
	})
	g.final = true
}

// BFS returns the hop distance from src to every vertex, with -1 for
// unreachable vertices.
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= g.n {
		return dist
	}
	queue := make([]int32, 0, g.n)
	dist[src] = 0
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Connected reports whether the graph is connected. Empty and
// single-vertex graphs count as connected.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	for _, d := range g.BFS(0) {
		if d == -1 {
			return false
		}
	}
	return true
}

// Diameter returns the diameter D (longest shortest path). It returns
// -1 for disconnected graphs and 0 for graphs with fewer than two
// vertices. Cost is O(n·m): one BFS per vertex.
func (g *Graph) Diameter() int {
	if g.n <= 1 {
		return 0
	}
	d := 0
	for u := 0; u < g.n; u++ {
		for _, dv := range g.BFS(u) {
			if dv == -1 {
				return -1
			}
			if dv > d {
				d = dv
			}
		}
	}
	return d
}

// Eccentricity returns the greatest BFS distance from src, or -1 if
// some vertex is unreachable.
func (g *Graph) Eccentricity(src int) int {
	e := 0
	for _, d := range g.BFS(src) {
		if d == -1 {
			return -1
		}
		if d > e {
			e = d
		}
	}
	return e
}

// LineGraph returns the line graph G_L of g together with the mapping
// from G_L vertices back to g's edges: vertex i of the line graph is
// edge Edges()[i] of g, and two line-graph vertices are adjacent iff
// the corresponding edges share an endpoint (Section 5.2).
func (g *Graph) LineGraph() (*Graph, []Edge) {
	g.Finalize()
	edgeIdx := make(map[Edge]int, len(g.edges))
	for i, e := range g.edges {
		edgeIdx[e] = i
	}
	lg := New(len(g.edges))
	// Two edges are adjacent in G_L iff they share an endpoint: for
	// every vertex u, connect all pairs of edges incident to u.
	for u := 0; u < g.n; u++ {
		inc := g.adj[u]
		for i := 0; i < len(inc); i++ {
			ei := edgeIdx[mkEdge(int32(u), inc[i])]
			for j := i + 1; j < len(inc); j++ {
				ej := edgeIdx[mkEdge(int32(u), inc[j])]
				if !lg.HasEdge(ei, ej) {
					lg.MustAddEdge(ei, ej)
				}
			}
		}
	}
	lg.Finalize()
	edges := make([]Edge, len(g.edges))
	copy(edges, g.edges)
	return lg, edges
}

func mkEdge(u, v int32) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}
