package graph

// Dynamic is a mutable view of a graph for time-varying topologies:
// node mobility and link flapping mutate the edge set between radio
// slots, so the structure supports incremental edge insertion and
// removal while preserving every invariant the radio engine's resolve
// fast paths rely on — sorted adjacency lists (the O(log Δ) binary-
// search probe), the dense bit matrix (the O(1) probe), and the
// hash-set edge index above the matrix node cap.
//
// NewDynamic deep-copies the base graph, so the base stays immutable
// (scenarios are shared read-only across sweep workers; each run
// mutates its own clone) and remains available as the reference
// topology for partition-loss accounting.
//
// Costs per mutation: an O(1) matrix/hash update plus an O(Δ) scan
// and shift of the adjacency list (Δ is small and the list is one or
// two cache lines of int32s, so the scan beats a binary search's
// per-probe branches) — no re-sort, no rebuild. The
// edge list is maintained by swap-removal through an index map, so it
// stays exact but loses the sorted order Finalize established;
// Dynamic callers needing ordered edges must sort a copy.
type Dynamic struct {
	g *Graph
	// edgeIdx maps a packed (U,V) key to the edge's position in
	// g.edges, making removal O(1) after the adjacency update.
	edgeIdx map[uint64]int
}

// NewDynamic returns a mutable deep copy of base. The base graph is
// left untouched and must already be finalized (generators finalize;
// the radio engine finalizes on construction).
func NewDynamic(base *Graph) *Dynamic {
	base.Finalize()
	g := &Graph{
		n:     base.n,
		adj:   make([][]int32, base.n),
		edges: make([]Edge, len(base.edges)),
		final: true,
	}
	for u := range base.adj {
		g.adj[u] = append([]int32(nil), base.adj[u]...)
	}
	copy(g.edges, base.edges)
	if base.nbr != nil {
		g.nbr = base.nbr.Clone()
	}
	if base.edgeSet != nil {
		g.edgeSet = make(map[uint64]struct{}, len(base.edgeSet))
		for k := range base.edgeSet {
			g.edgeSet[k] = struct{}{}
		}
	}
	d := &Dynamic{g: g, edgeIdx: make(map[uint64]int, len(g.edges))}
	for i, e := range g.edges {
		d.edgeIdx[edgeKey(int(e.U), int(e.V))] = i
	}
	return d
}

// Graph returns the mutable view. The radio engine reads topology
// through this pointer, so mutations are visible to the next slot's
// resolution immediately; callers must only mutate between slots.
func (d *Dynamic) Graph() *Graph { return d.g }

// N returns the number of vertices.
func (d *Dynamic) N() int { return d.g.n }

// M returns the current number of edges.
func (d *Dynamic) M() int { return len(d.g.edges) }

// HasEdge reports whether {u, v} is currently an edge.
func (d *Dynamic) HasEdge(u, v int) bool { return d.g.HasEdge(u, v) }

// AddEdge inserts the undirected edge {u, v} incrementally. It
// reports whether the topology changed: self-loops, out-of-range
// endpoints and already-present edges are no-ops returning false
// (dynamics models reconcile desired state declaratively, so
// redundant calls are expected, not errors).
func (d *Dynamic) AddEdge(u, v int) bool {
	g := d.g
	if u == v || u < 0 || u >= g.n || v < 0 || v >= g.n || g.HasEdge(u, v) {
		return false
	}
	if u > v {
		u, v = v, u
	}
	insertSorted(&g.adj[u], int32(v))
	insertSorted(&g.adj[v], int32(u))
	d.edgeIdx[edgeKey(u, v)] = len(g.edges)
	g.edges = append(g.edges, Edge{U: int32(u), V: int32(v)})
	if g.edgeSet != nil {
		g.edgeSet[edgeKey(u, v)] = struct{}{}
	}
	if g.nbr != nil {
		g.nbr.Set(u, v)
		g.nbr.Set(v, u)
	}
	return true
}

// RemoveEdge deletes the undirected edge {u, v} incrementally. It
// reports whether the topology changed; absent edges are a no-op.
func (d *Dynamic) RemoveEdge(u, v int) bool {
	g := d.g
	if u == v || u < 0 || u >= g.n || v < 0 || v >= g.n || !g.HasEdge(u, v) {
		return false
	}
	if u > v {
		u, v = v, u
	}
	removeSorted(&g.adj[u], int32(v))
	removeSorted(&g.adj[v], int32(u))
	key := edgeKey(u, v)
	i := d.edgeIdx[key]
	last := len(g.edges) - 1
	if i != last {
		moved := g.edges[last]
		g.edges[i] = moved
		d.edgeIdx[edgeKey(int(moved.U), int(moved.V))] = i
	}
	g.edges = g.edges[:last]
	delete(d.edgeIdx, key)
	if g.edgeSet != nil {
		delete(g.edgeSet, key)
	}
	if g.nbr != nil {
		g.nbr.Unset(u, v)
		g.nbr.Unset(v, u)
	}
	return true
}

// insertSorted inserts v into the sorted slice *a (v known absent).
// Adjacency lists are short (mean degree), so a linear position scan
// beats sort.Search's per-probe closure calls.
func insertSorted(a *[]int32, v int32) {
	s := *a
	i := 0
	for i < len(s) && s[i] < v {
		i++
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	*a = s
}

// removeSorted deletes v from the sorted slice *a (v known present).
func removeSorted(a *[]int32, v int32) {
	s := *a
	i := 0
	for s[i] != v {
		i++
	}
	copy(s[i:], s[i+1:])
	*a = s[:len(s)-1]
}
