package sweepfile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crn"
)

func testSpec() *Spec {
	return &Spec{
		Primitive: "cseek",
		Seeds:     2,
		BaseSeed:  7,
		Variants: []Variant{
			{Name: "line", Topology: "path", N: 5, Channels: 3, K: 2, Seed: 1},
		},
	}
}

// spoolShard plans the test spec into dir and writes shard k's real
// artifact, returning the manifest.
func spoolShard(t *testing.T, dir string, shards, k int) *Manifest {
	t.Helper()
	m, err := NewManifest(testSpec(), shards)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := BuildSweepSpec(testSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := crn.RunShard(t.Context(), spec, m.Plan, k)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewArtifact(m.PlanHash, res)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(filepath.Join(dir, m.Artifacts[k]), a); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestArtifactCorruptionTable feeds LoadArtifact every corruption a
// crash or a lying disk can produce and checks each is rejected with
// a diagnosable error — the validity test both `crnsweep resume` and
// the daemon's restart recovery rely on.
func TestArtifactCorruptionTable(t *testing.T) {
	cases := []struct {
		name string
		// corrupt mutates the valid artifact bytes on disk.
		corrupt func(t *testing.T, path string, doc []byte)
		wantErr string
	}{
		{
			name: "truncated JSON",
			corrupt: func(t *testing.T, path string, doc []byte) {
				if err := os.WriteFile(path, doc[:len(doc)/3], 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: "unexpected", // json: unexpected end of input
		},
		{
			name: "bit-flipped payload",
			corrupt: func(t *testing.T, path string, doc []byte) {
				// Flip one bit in a digit of the payload: the JSON stays
				// well-formed and the plan hash still matches — only the
				// content sum can catch it.
				i := strings.Index(string(doc), `"seed"`)
				if i < 0 {
					t.Fatal("no seed field to corrupt")
				}
				for ; i < len(doc); i++ {
					if doc[i] >= '1' && doc[i] <= '8' {
						doc[i] ^= 0x01
						break
					}
				}
				if err := os.WriteFile(path, doc, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: "content sum",
		},
		{
			name: "wrong planHash",
			corrupt: func(t *testing.T, path string, doc []byte) {
				s := strings.Replace(string(doc), `"planHash": "sha256:`, `"planHash": "sha256:dead`, 1)
				if err := os.WriteFile(path, []byte(s), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: "plan hash",
		},
		{
			name: "zero-length file",
			corrupt: func(t *testing.T, path string, doc []byte) {
				if err := os.WriteFile(path, nil, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: "EOF",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			m := spoolShard(t, dir, 1, 0)
			path := filepath.Join(dir, m.Artifacts[0])
			doc, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Sanity: the pristine artifact loads.
			if _, err := LoadArtifact(m, dir, 0); err != nil {
				t.Fatalf("pristine artifact rejected: %v", err)
			}
			tc.corrupt(t, path, doc)
			_, err = LoadArtifact(m, dir, 0)
			if err == nil {
				t.Fatal("corrupted artifact validated")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestCheckArtifactShapes covers the structural rejections that don't
// need a disk: wrong shard index, wrong run count, missing result.
func TestCheckArtifactShapes(t *testing.T) {
	m, err := NewManifest(testSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := BuildSweepSpec(testSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := crn.RunShard(t.Context(), spec, m.Plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	good, err := NewArtifact(m.PlanHash, res)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckArtifact(m, good, 0); err != nil {
		t.Fatalf("valid artifact rejected: %v", err)
	}
	if err := CheckArtifact(m, good, 1); err == nil || !strings.Contains(err.Error(), "not shard 1") {
		t.Errorf("wrong shard index: %v", err)
	}
	if err := CheckArtifact(m, &Artifact{PlanHash: m.PlanHash}, 0); err == nil {
		t.Error("missing result validated")
	}
	short := &Artifact{PlanHash: m.PlanHash, Result: &crn.ShardResult{Shard: 0, Runs: res.Runs[:0]}}
	if err := CheckArtifact(m, short, 0); err == nil || !strings.Contains(err.Error(), "runs") {
		t.Errorf("wrong run count: %v", err)
	}
}

// TestResultSumStability: the content sum survives a JSON round-trip
// (encode→decode→re-sum), which is what lets the daemon re-verify an
// artifact that traveled over HTTP.
func TestResultSumStability(t *testing.T) {
	dir := t.TempDir()
	m := spoolShard(t, dir, 1, 0)
	res, err := LoadArtifact(m, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := ResultSum(res)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := MarshalPretty(res)
	if err != nil {
		t.Fatal(err)
	}
	back := new(crn.ShardResult)
	if err := UnmarshalStrict(doc, back); err != nil {
		t.Fatal(err)
	}
	s2, err := ResultSum(back)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatalf("sum changed across JSON round-trip: %s vs %s", s1, s2)
	}
}

// TestRemoveStaleTemps: zero-length temp files left by a simulated
// crash between temp-write and rename are swept; real artifacts and
// subdirectories are not.
func TestRemoveStaleTemps(t *testing.T) {
	dir := t.TempDir()
	m := spoolShard(t, dir, 1, 0)
	for _, name := range []string{
		"shard-0.json.tmp-123456", // crashed artifact writer
		"merged.json.tmp-9",       // crashed merge writer
	} {
		if err := os.WriteFile(filepath.Join(dir, name), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(dir, "sub.tmp-dir"), 0o755); err != nil {
		t.Fatal(err)
	}
	removed, err := RemoveStaleTemps(OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 {
		t.Fatalf("removed %v, want the 2 temp files", removed)
	}
	if _, err := LoadArtifact(m, dir, 0); err != nil {
		t.Fatalf("sweep damaged the real artifact: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "sub.tmp-dir")); err != nil {
		t.Fatal("sweep removed a directory")
	}
}

// TestWriteFileAtomicLeavesNoDebris: the happy path must not leave
// temp files behind (they would trip the stale-temp sweeper).
func TestWriteFileAtomicLeavesNoDebris(t *testing.T) {
	dir := t.TempDir()
	if err := WriteFileAtomic(filepath.Join(dir, "x.json"), []byte("{}")); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "x.json" {
		t.Fatalf("unexpected directory contents: %v", entries)
	}
}
