package sweepfile

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// FS is the filesystem seam every sweep file moves through. The
// offline pipeline and the daemon's spool both write via
// WriteFileAtomic and read via ReadFile, so injecting a faulty FS
// (internal/chaos) exercises exactly the failure surface a real disk
// exposes: torn writes, corrupted bytes, fsync-style errors, stale
// temp files from a crash between temp-write and rename.
//
// WriteFileAtomic is the interface's unit of durability on purpose:
// callers never see a half-written destination file from a correct
// implementation, so any torn artifact found on disk is either
// injected chaos or a broken filesystem — and recovery must treat the
// two identically.
type FS interface {
	ReadFile(path string) ([]byte, error)
	// WriteFileAtomic writes data to path via a same-directory temp
	// file and rename, so an interrupted writer leaves either the old
	// file or the new one — never a truncated in-between.
	WriteFileAtomic(path string, data []byte) error
	MkdirAll(path string) error
	ReadDir(path string) ([]fs.DirEntry, error)
	Remove(path string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) ReadFile(path string) ([]byte, error)       { return os.ReadFile(path) }
func (osFS) MkdirAll(path string) error                 { return os.MkdirAll(path, 0o755) }
func (osFS) ReadDir(path string) ([]fs.DirEntry, error) { return os.ReadDir(path) }
func (osFS) Remove(path string) error                   { return os.Remove(path) }

func (osFS) WriteFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// IsTempFile reports whether name looks like an atomic-write temp file
// (the ".tmp-" infix every FS implementation uses).
func IsTempFile(name string) bool { return strings.Contains(name, ".tmp-") }

// RemoveStaleTemps deletes leftover atomic-write temp files in dir —
// the debris of a writer that crashed between temp-write and rename.
// They are never valid artifacts (artifact names carry no ".tmp-"),
// so removing them is always safe; returns the removed names.
func RemoveStaleTemps(fsys FS, dir string) ([]string, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var removed []string
	for _, e := range entries {
		if e.IsDir() || !IsTempFile(e.Name()) {
			continue
		}
		if err := fsys.Remove(filepath.Join(dir, e.Name())); err != nil {
			return removed, err
		}
		removed = append(removed, e.Name())
	}
	return removed, nil
}
