// Package sweepfile defines the on-disk (and on-wire) formats of a
// distributed sweep — the declarative spec file users write, the
// manifest that pins a planned sweep, and the per-shard artifact —
// plus the validation that ties them together. cmd/crnsweep moves
// these files between processes by hand; internal/sweepd moves the
// same bytes over HTTP. Both front ends share this package so an
// artifact produced under either is valid under the other, and so the
// byte-identity contract (merged output == in-process crn.Sweep) has
// exactly one encoder.
package sweepfile

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"crn"
)

// Spec is the declarative, JSON-serializable mirror of crn.SweepSpec:
// crn.Primitive and crn.ScenarioOption are code, so the spec names
// them and BuildSweepSpec reconstitutes the real spec. The parsed
// struct (not the raw file bytes) is the canonical form the plan hash
// covers — reformatting the file does not invalidate artifacts,
// changing its meaning does.
type Spec struct {
	// Primitive: cseek, naive, uniform, ckseek, cgcast or flood.
	Primitive string `json:"primitive"`
	// KHat is ckseek's k̂ threshold (required for ckseek).
	KHat int `json:"khat,omitempty"`
	// Source / Message configure the broadcast primitives.
	Source  int    `json:"source,omitempty"`
	Message string `json:"message,omitempty"`
	// Variants are the scenario configurations to sweep over.
	Variants []Variant `json:"variants"`
	// Seeds is the runs-per-variant count.
	Seeds int `json:"seeds"`
	// BaseSeed is the sweep's master seed.
	BaseSeed uint64 `json:"baseSeed"`
}

// Variant mirrors one crn.Variant as scenario-option fields, the same
// vocabulary as cmd/crnsim's flags.
type Variant struct {
	Name     string  `json:"name"`
	Topology string  `json:"topology"`
	N        int     `json:"n"`
	Channels int     `json:"channels"`
	K        int     `json:"k"`
	KMax     int     `json:"kmax,omitempty"`
	Density  float64 `json:"density,omitempty"`
	Seed     uint64  `json:"seed"`
	// Preset names a crn preset; Spectrum / Dynamics are "+"-stacked
	// model specs (crn.ParseSpectrum / crn.ParseDynamics, seeded from
	// Seed). All three stack onto the topology options, preset first.
	Preset   string `json:"preset,omitempty"`
	Spectrum string `json:"spectrum,omitempty"`
	Dynamics string `json:"dynamics,omitempty"`
}

// Manifest is the plan file crnsweep writes, every other crnsweep
// subcommand reads, and crnsweepd leases to workers. Artifact paths
// are relative to the manifest's directory (the job's spool directory
// under the daemon).
type Manifest struct {
	Version int `json:"version"`
	// Spec is the sweep description, verbatim in canonical form.
	Spec *Spec `json:"spec"`
	// Plan is the deterministic shard partition of Spec.
	Plan *crn.ShardPlan `json:"plan"`
	// PlanHash is PlanHash(Spec, Plan); artifacts embed it, which is
	// what lets resume decide validity without re-running anything.
	PlanHash string `json:"planHash"`
	// Artifacts[k] is shard k's artifact filename.
	Artifacts []string `json:"artifacts"`
	// Merged is the merge output filename.
	Merged string `json:"merged"`
}

// Artifact is one shard's on-disk (and on-wire) result.
type Artifact struct {
	// PlanHash ties the artifact to the manifest that planned it.
	PlanHash string `json:"planHash"`
	// Sum is a sha256 over the canonical JSON of Result. PlanHash ties
	// the artifact to its plan; Sum ties the artifact to its own
	// content, so a bit-flipped counter inside an otherwise
	// well-formed artifact — which would silently change the merged
	// result — is detected at every load instead of merged. Empty in
	// pre-checksum artifacts, which still validate (omitempty keeps
	// the format backward-compatible).
	Sum string `json:"sum,omitempty"`
	// Result is the shard's runs.
	Result *crn.ShardResult `json:"result"`
}

// ManifestVersion is the manifest format this package speaks.
const ManifestVersion = 1

// ResultSum fingerprints a shard result's canonical JSON — the
// content half of an artifact's identity (PlanHash is the plan half).
func ResultSum(res *crn.ShardResult) (string, error) {
	doc, err := json.Marshal(res)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("sha256:%x", sha256.Sum256(doc)), nil
}

// NewArtifact assembles a checksummed artifact for an executed shard.
// Every producer (crnsweep run/resume, the service worker) goes
// through it so every artifact carries a content sum.
func NewArtifact(planHash string, res *crn.ShardResult) (*Artifact, error) {
	sum, err := ResultSum(res)
	if err != nil {
		return nil, err
	}
	return &Artifact{PlanHash: planHash, Sum: sum, Result: res}, nil
}

// PlanHash fingerprints the canonical (spec, plan) pair.
func PlanHash(spec *Spec, plan *crn.ShardPlan) (string, error) {
	doc, err := json.Marshal(struct {
		Spec *Spec          `json:"spec"`
		Plan *crn.ShardPlan `json:"plan"`
	}{spec, plan})
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("sha256:%x", sha256.Sum256(doc)), nil
}

// NewManifest plans spec into shards and assembles the manifest both
// crnsweep plan and crnsweepd submit write: plan, hash and the
// conventional shard-k.json / merged.json artifact names.
func NewManifest(sf *Spec, shards int) (*Manifest, error) {
	spec, err := BuildSweepSpec(sf, 0)
	if err != nil {
		return nil, err
	}
	plan, err := crn.PlanShards(spec, shards)
	if err != nil {
		return nil, err
	}
	hash, err := PlanHash(sf, plan)
	if err != nil {
		return nil, err
	}
	m := &Manifest{
		Version:  ManifestVersion,
		Spec:     sf,
		Plan:     plan,
		PlanHash: hash,
		Merged:   "merged.json",
	}
	for k := range plan.Shards {
		m.Artifacts = append(m.Artifacts, fmt.Sprintf("shard-%d.json", k))
	}
	return m, nil
}

// Validate checks a manifest's internal consistency the way
// LoadManifest does for one read from disk: version, presence of spec
// and plan, the recomputed plan hash (a hand-edited manifest must not
// validate artifacts recorded under the original) and the artifact
// name count.
func (m *Manifest) Validate() error {
	if m.Version != ManifestVersion {
		return fmt.Errorf("manifest version %d, this build speaks %d", m.Version, ManifestVersion)
	}
	if m.Spec == nil || m.Plan == nil {
		return fmt.Errorf("manifest is missing spec or plan")
	}
	hash, err := PlanHash(m.Spec, m.Plan)
	if err != nil {
		return err
	}
	if hash != m.PlanHash {
		return fmt.Errorf("manifest planHash %s does not match its spec+plan (%s) — manifest edited?", m.PlanHash, hash)
	}
	if len(m.Artifacts) != len(m.Plan.Shards) {
		return fmt.Errorf("manifest has %d artifact names for %d shards", len(m.Artifacts), len(m.Plan.Shards))
	}
	return nil
}

// BuildSweepSpec reconstitutes the executable crn.SweepSpec a spec
// file describes.
func BuildSweepSpec(sf *Spec, workers int) (crn.SweepSpec, error) {
	var zero crn.SweepSpec
	var prim crn.Primitive
	switch sf.Primitive {
	case "cseek", "naive", "uniform":
		prim = crn.Discovery(crn.Algorithm(sf.Primitive))
	case "ckseek":
		if sf.KHat < 1 {
			return zero, fmt.Errorf("primitive ckseek needs \"khat\" ≥ 1")
		}
		prim = crn.KDiscovery(sf.KHat)
	case "cgcast", "flood":
		msg := sf.Message
		if msg == "" {
			msg = "message"
		}
		if sf.Primitive == "cgcast" {
			prim = crn.GlobalBroadcast(sf.Source, msg)
		} else {
			prim = crn.Flooding(sf.Source, msg)
		}
	case "":
		return zero, fmt.Errorf("spec is missing \"primitive\"")
	default:
		return zero, fmt.Errorf("unknown primitive %q (have cseek, naive, uniform, ckseek, cgcast, flood)", sf.Primitive)
	}
	if len(sf.Variants) == 0 {
		return zero, fmt.Errorf("spec has no variants")
	}
	variants := make([]crn.Variant, len(sf.Variants))
	for i, v := range sf.Variants {
		if v.Name == "" {
			return zero, fmt.Errorf("variant %d has no name", i)
		}
		opts := []crn.ScenarioOption{
			crn.WithTopology(crn.Topology(v.Topology)),
			crn.WithNodes(v.N),
			crn.WithChannels(v.Channels, v.K, v.KMax),
			crn.WithSeed(v.Seed),
		}
		if v.Density > 0 {
			opts = append(opts, crn.WithDensity(v.Density))
		}
		if v.Preset != "" {
			p, err := crn.PresetByName(v.Preset)
			if err != nil {
				return zero, fmt.Errorf("variant %q: %w", v.Name, err)
			}
			opts = append(opts, p.Options...)
		}
		spOpts, err := crn.ParseSpectrum(v.Spectrum, v.Seed)
		if err != nil {
			return zero, fmt.Errorf("variant %q: %w", v.Name, err)
		}
		opts = append(opts, spOpts...)
		dynOpts, err := crn.ParseDynamics(v.Dynamics, v.Seed)
		if err != nil {
			return zero, fmt.Errorf("variant %q: %w", v.Name, err)
		}
		opts = append(opts, dynOpts...)
		variants[i] = crn.Variant{Name: v.Name, Options: opts}
	}
	return crn.SweepSpec{
		Primitive: prim,
		Variants:  variants,
		Seeds:     sf.Seeds,
		BaseSeed:  sf.BaseSeed,
		Workers:   workers,
	}, nil
}

// LoadSpec reads and strictly parses a spec file.
func LoadSpec(path string) (*Spec, error) {
	doc, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sf := new(Spec)
	if err := UnmarshalStrict(doc, sf); err != nil {
		return nil, fmt.Errorf("spec %s: %w", path, err)
	}
	return sf, nil
}

// UnmarshalStrict rejects unknown fields, so a typo'd spec key fails
// loudly instead of silently sweeping the default.
func UnmarshalStrict(doc []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(doc))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// LoadManifest reads, strictly parses and validates a manifest,
// returning it with its directory (the base for artifact paths).
func LoadManifest(path string) (*Manifest, string, error) {
	doc, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	m := new(Manifest)
	if err := UnmarshalStrict(doc, m); err != nil {
		return nil, "", fmt.Errorf("manifest %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, "", fmt.Errorf("manifest %s: %w", path, err)
	}
	return m, filepath.Dir(path), nil
}

// CheckArtifact validates shard k's parsed artifact against the
// manifest: the embedded plan hash, the shard index and the run count
// must all line up. (crn.MergeShards re-validates each run's identity
// and derived seed on top.)
func CheckArtifact(m *Manifest, a *Artifact, k int) error {
	if a.PlanHash != m.PlanHash {
		return fmt.Errorf("artifact plan hash %s, manifest %s", a.PlanHash, m.PlanHash)
	}
	if a.Result == nil || a.Result.Shard != k {
		return fmt.Errorf("artifact is not shard %d", k)
	}
	r := m.Plan.Shards[k]
	if len(a.Result.Runs) != r.Hi-r.Lo {
		return fmt.Errorf("artifact has %d runs, shard %d wants %d", len(a.Result.Runs), k, r.Hi-r.Lo)
	}
	if a.Sum != "" {
		sum, err := ResultSum(a.Result)
		if err != nil {
			return err
		}
		if sum != a.Sum {
			return fmt.Errorf("artifact content sum %s does not match its runs (%s) — corrupted artifact", a.Sum, sum)
		}
	}
	return nil
}

// LoadArtifact reads and validates shard k's artifact file under dir,
// naming the offending file in every error.
func LoadArtifact(m *Manifest, dir string, k int) (*crn.ShardResult, error) {
	return LoadArtifactFS(OS, m, dir, k)
}

// LoadArtifactFS is LoadArtifact through an explicit filesystem.
func LoadArtifactFS(fsys FS, m *Manifest, dir string, k int) (*crn.ShardResult, error) {
	path := filepath.Join(dir, m.Artifacts[k])
	doc, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	a := new(Artifact)
	if err := UnmarshalStrict(doc, a); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := CheckArtifact(m, a, k); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a.Result, nil
}

// MarshalPretty is the one encoder behind every sweep output file:
// indented JSON with a trailing newline. Merged service results,
// crnsweep merge output and single-process sweep output all go
// through it, which is what makes "byte-identical" a meaningful
// contract between them.
func MarshalPretty(v any) ([]byte, error) {
	doc, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(doc, '\n'), nil
}

// WriteJSON writes v as indented JSON via MarshalPretty, atomically:
// the document lands in a temp file in the same directory and is
// renamed into place, so an interrupted writer (SIGINT mid-sweep, a
// worker killed mid-upload) leaves either the old file or the new one
// — never a truncated artifact that a later resume would half-trust.
func WriteJSON(path string, v any) error {
	return WriteJSONFS(OS, path, v)
}

// WriteJSONFS is WriteJSON through an explicit filesystem.
func WriteJSONFS(fsys FS, path string, v any) error {
	doc, err := MarshalPretty(v)
	if err != nil {
		return err
	}
	return fsys.WriteFileAtomic(path, doc)
}

// WriteFileAtomic writes data to path via a same-directory temp file
// and rename.
func WriteFileAtomic(path string, data []byte) error {
	return OS.WriteFileAtomic(path, data)
}
