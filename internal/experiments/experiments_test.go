package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every experiment at Quick scale and
// checks the tables are well-formed. This is the smoke test that keeps
// the whole harness runnable.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for _, def := range All() {
		def := def
		t.Run(def.ID, func(t *testing.T) {
			t.Parallel()
			tbl, err := def.Run(Quick, 1)
			if err != nil {
				t.Fatalf("%s: %v", def.ID, err)
			}
			if tbl.ID != def.ID {
				t.Errorf("table ID %q, want %q", tbl.ID, def.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Error("empty table")
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Errorf("row %d has %d cells for %d headers", i, len(row), len(tbl.Header))
				}
			}
			var sb strings.Builder
			if err := tbl.Render(&sb); err != nil {
				t.Fatalf("render: %v", err)
			}
			if !strings.Contains(sb.String(), def.ID) {
				t.Error("rendered output missing experiment ID")
			}
		})
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("E1"); !ok {
		t.Error("E1 not found")
	}
	if _, ok := Find("e9"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := Find("E99"); ok {
		t.Error("unknown experiment found")
	}
}

func TestAllUniqueIDs(t *testing.T) {
	seen := make(map[string]bool)
	for _, d := range All() {
		if seen[d.ID] {
			t.Errorf("duplicate experiment ID %s", d.ID)
		}
		seen[d.ID] = true
		if d.Run == nil {
			t.Errorf("%s has nil Run", d.ID)
		}
		if d.Title == "" || d.Claim == "" {
			t.Errorf("%s missing title or claim", d.ID)
		}
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:     "EX",
		Title:  "test",
		Claim:  "claim",
		Header: []string{"a", "bb"},
	}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	tbl.AddNote("note %d", 7)
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"### EX — test", "claim", "| a ", "| 333", "> note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q:\n%s", want, out)
		}
	}
}

// TestE11FloorHolds parses E11's output and asserts the measured
// broadcast times respect the Theorem 14 floor.
func TestE11FloorHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	tbl, err := E11TreeBound(Quick, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		floor, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatalf("bad floor cell %q", row[2])
		}
		for _, col := range []int{3, 4} {
			if row[col] == "censored" {
				continue
			}
			v, err := strconv.Atoi(row[col])
			if err != nil {
				t.Fatalf("bad cell %q", row[col])
			}
			if v < floor {
				t.Errorf("measured %d below floor %d", v, floor)
			}
		}
	}
}

func TestMedianHelper(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("median = %v, want 2", got)
	}
	if got := median(nil); got != 0 {
		t.Errorf("median(nil) = %v, want 0", got)
	}
	in := []float64{5, 4}
	median(in)
	if in[0] != 5 {
		t.Error("median mutated input")
	}
}
