package experiments

import (
	"fmt"

	"crn/internal/chanassign"
	"crn/internal/core"
	"crn/internal/graph"
	"crn/internal/radio"
	"crn/internal/rng"
)

// E15AsyncStart probes the synchronous-start assumption of Section 3:
// nodes wake up with random offsets drawn from [0, spread·schedule]
// and run CSEEK on their local clocks. Small jitter should barely
// matter (the long part-one phases still overlap); offsets comparable
// to the schedule destroy the overlap and discovery starts failing —
// quantifying how much of the algorithm's correctness rests on the
// assumption.
func E15AsyncStart(scale Scale, seed uint64) (*Table, error) {
	spreads := []float64{0, 0.25, 1.0, 3.0}
	trials := 3
	n := 14
	if scale == Quick {
		spreads = []float64{0, 3.0}
		trials = 1
		n = 10
	}
	const c, k = 4, 2

	t := &Table{
		ID:     "E15",
		Title:  "CSEEK with staggered starts",
		Claim:  "Extension: sensitivity to the synchronous-start assumption (Section 3)",
		Header: []string{"offset spread", "pairs found", "pairs total", "fraction"},
	}

	g, err := graph.GNP(n, 0.35, rng.New(seed))
	if err != nil {
		return nil, err
	}
	a, err := chanassign.SharedCore(n, c, k, rng.New(seed+1))
	if err != nil {
		return nil, err
	}
	in, err := newInstance(g, a)
	if err != nil {
		return nil, err
	}

	pairsTotal := 0
	for u := 0; u < n; u++ {
		pairsTotal += in.g.Degree(u)
	}

	for _, spread := range spreads {
		found := 0
		for trial := 0; trial < trials; trial++ {
			f, err := runStaggered(in, spread, seed+uint64(trial)*101)
			if err != nil {
				return nil, err
			}
			found += f
		}
		found /= trials
		t.AddRow(fmt.Sprintf("%.0f%% of schedule", spread*100),
			itoa(int64(found)), itoa(int64(pairsTotal)),
			f2(float64(found)/float64(pairsTotal)))
	}
	t.AddNote("paper assumes simultaneous starts; measured: small jitter keeps discovery near-complete, schedule-sized offsets break it — the assumption is load-bearing but not knife-edged")
	return t, nil
}

func runStaggered(in *instance, spread float64, seed uint64) (int, error) {
	n := in.g.N()
	master := rng.New(seed)
	seeks := make([]*core.CSeek, n)
	protos := make([]radio.Protocol, n)
	var schedule int64
	offsets := make([]int64, n)
	for u := 0; u < n; u++ {
		s, err := core.NewCSeek(in.p, core.Env{ID: radio.NodeID(u), C: in.p.C, Rand: master.Split(uint64(u))})
		if err != nil {
			return 0, err
		}
		schedule = s.TotalSlots()
		seeks[u] = s
		maxOff := int64(spread * float64(schedule))
		if maxOff > 0 {
			offsets[u] = int64(master.Split(uint64(u)|1<<40).Uint64() % uint64(maxOff+1))
		}
		protos[u] = &radio.Delayed{Start: offsets[u], Inner: s}
	}
	e, err := radio.NewEngine(in.nw, protos)
	if err != nil {
		return 0, err
	}
	maxOffset := int64(0)
	for _, off := range offsets {
		if off > maxOffset {
			maxOffset = off
		}
	}
	st := e.Run(maxOffset + schedule + 1)
	if !st.Completed {
		return 0, fmt.Errorf("experiments: staggered run did not complete")
	}

	found := 0
	for u := 0; u < n; u++ {
		seen := make(map[radio.NodeID]bool)
		for _, id := range seeks[u].Discovered() {
			seen[id] = true
		}
		for _, v := range in.g.Neighbors(u) {
			if seen[radio.NodeID(v)] {
				found++
			}
		}
	}
	return found, nil
}
