package experiments

import (
	"testing"
)

// TestStarWithWeakLinkOverlaps verifies the E4 workload realizes
// exactly the overlap structure its experiment assumes: star edges
// share kmax channels, the appendage edge shares exactly one.
func TestStarWithWeakLinkOverlaps(t *testing.T) {
	for _, kmax := range []int{1, 2, 4} {
		in, err := starWithWeakLink(9, 8, kmax, uint64(kmax))
		if err != nil {
			t.Fatalf("kmax=%d: %v", kmax, err)
		}
		n := in.g.N()
		if n != 11 { // center + 9 leaves + appendage
			t.Fatalf("kmax=%d: n = %d, want 11", kmax, n)
		}
		appendage := n - 1
		for v := 1; v <= 9; v++ {
			if got := in.a.SharedCount(0, v); got != kmax {
				t.Errorf("kmax=%d: star edge (0,%d) shares %d, want %d", kmax, v, got, kmax)
			}
		}
		if got := in.a.SharedCount(1, appendage); got != 1 {
			t.Errorf("kmax=%d: weak link shares %d, want 1", kmax, got)
		}
		if in.p.K != 1 {
			t.Errorf("kmax=%d: realized k = %d, want 1", kmax, in.p.K)
		}
		if in.p.KMax != kmax && !(kmax == 1) {
			t.Errorf("realized kmax = %d, want %d", in.p.KMax, kmax)
		}
	}
	if _, err := starWithWeakLink(5, 3, 3, 1); err == nil {
		t.Error("kmax+1 > c accepted")
	}
}

// TestNewInstanceDerivesParams checks parameter derivation from
// realized workloads.
func TestNewInstanceDerivesParams(t *testing.T) {
	in, err := starWithWeakLink(5, 4, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if in.p.N != in.g.N() || in.p.C != 4 {
		t.Errorf("params %+v inconsistent with workload", in.p)
	}
	if in.p.Delta != in.g.MaxDegree() {
		t.Errorf("Δ = %d, graph says %d", in.p.Delta, in.g.MaxDegree())
	}
}
