package experiments

import (
	"fmt"

	"crn/internal/core"
	"crn/internal/lowerbound"
	"crn/internal/radio"
	"crn/internal/rng"
	"crn/internal/stats"
)

// E9HittingGame reproduces Lemma 10 / Theorem 13: every player of the
// (c,k)-bipartite hitting game needs ≥ c²/(8k) rounds (for k ≤ c/2) to
// win with probability 1/2. We measure the near-optimal sweep player
// and the Lemma 11 reduction player wrapping the naive discovery
// protocol.
func E9HittingGame(scale Scale, seed uint64) (*Table, error) {
	cases := []struct{ c, k int }{{8, 1}, {8, 4}, {16, 2}, {16, 8}, {32, 4}}
	trials := 60
	if scale == Quick {
		cases = []struct{ c, k int }{{8, 2}, {16, 4}}
		trials = 15
	}

	t := &Table{
		ID:     "E9",
		Title:  "(c,k)-bipartite hitting game",
		Claim:  "Lemma 10 + Theorem 13: any ≥1/2-success player needs ≥ c²/(8k) rounds",
		Header: []string{"c", "k", "floor c²/(8k)", "sweep med", "reduction med", "sweep/floor"},
	}

	master := rng.New(seed)
	for _, tc := range cases {
		floor := tc.c * tc.c / (8 * tc.k)
		sweep := make([]float64, 0, trials)
		reduction := make([]float64, 0, trials)
		for i := 0; i < trials; i++ {
			r := master.Split(uint64(tc.c)<<20 | uint64(tc.k)<<10 | uint64(i))

			g1, err := lowerbound.NewGame(tc.c, tc.k, r)
			if err != nil {
				return nil, err
			}
			n, won := lowerbound.Play(g1, lowerbound.NewSweepPlayer(tc.c, r), tc.c*tc.c+1)
			if !won {
				return nil, fmt.Errorf("experiments: sweep player lost at c=%d k=%d", tc.c, tc.k)
			}
			sweep = append(sweep, float64(n))

			g2, err := lowerbound.NewGame(tc.c, tc.k, r)
			if err != nil {
				return nil, err
			}
			p := core.Params{N: 2, C: tc.c, K: tc.k, KMax: tc.k, Delta: 1}
			mk := func(restart int) (radio.Protocol, radio.Protocol) {
				u, errU := core.NewNaiveSeek(p, core.Env{ID: 0, C: tc.c, Rand: r.Split(uint64(restart)*2 + 1)})
				v, errV := core.NewNaiveSeek(p, core.Env{ID: 1, C: tc.c, Rand: r.Split(uint64(restart)*2 + 2)})
				if errU != nil || errV != nil {
					panic(fmt.Sprintf("experiments: naive seek construction: %v %v", errU, errV))
				}
				return u, v
			}
			player, err := lowerbound.NewReductionPlayer(mk)
			if err != nil {
				return nil, err
			}
			n, won = lowerbound.Play(g2, player, 1<<24)
			if !won {
				return nil, fmt.Errorf("experiments: reduction player lost at c=%d k=%d", tc.c, tc.k)
			}
			reduction = append(reduction, float64(n))
		}
		sw := stats.Summarize(sweep)
		rd := stats.Summarize(reduction)
		t.AddRow(itoa(int64(tc.c)), itoa(int64(tc.k)), itoa(int64(floor)),
			f1(sw.Median), f1(rd.Median), f2(sw.Median/float64(floor)))
	}
	t.AddNote("paper: medians ≥ floor for every player; the sweep player shows the floor is within a small constant of achievable")
	return t, nil
}

// E10CompleteGame reproduces Lemma 12: the c-complete bipartite hitting
// game needs ≥ c/3 rounds.
func E10CompleteGame(scale Scale, seed uint64) (*Table, error) {
	cs := []int{8, 16, 32, 64}
	trials := 80
	if scale == Quick {
		cs = []int{8, 16}
		trials = 20
	}

	t := &Table{
		ID:     "E10",
		Title:  "c-complete bipartite hitting game",
		Claim:  "Lemma 12: any ≥1/2-success player needs ≥ c/3 rounds",
		Header: []string{"c", "floor c/3", "sweep med", "uniform med", "sweep/floor"},
	}

	master := rng.New(seed)
	for _, c := range cs {
		sweep := make([]float64, 0, trials)
		uniform := make([]float64, 0, trials)
		for i := 0; i < trials; i++ {
			r := master.Split(uint64(c)<<16 | uint64(i))
			g1, err := lowerbound.NewCompleteGame(c, r)
			if err != nil {
				return nil, err
			}
			n, won := lowerbound.Play(g1, lowerbound.NewSweepPlayer(c, r), c*c+1)
			if !won {
				return nil, fmt.Errorf("experiments: sweep player lost complete game at c=%d", c)
			}
			sweep = append(sweep, float64(n))

			g2, err := lowerbound.NewCompleteGame(c, r)
			if err != nil {
				return nil, err
			}
			n, won = lowerbound.Play(g2, lowerbound.NewUniformPlayer(c, r), 1<<24)
			if !won {
				return nil, fmt.Errorf("experiments: uniform player lost complete game at c=%d", c)
			}
			uniform = append(uniform, float64(n))
		}
		sw := stats.Summarize(sweep)
		un := stats.Summarize(uniform)
		floor := c / 3
		t.AddRow(itoa(int64(c)), itoa(int64(floor)), f1(sw.Median), f1(un.Median),
			f2(sw.Median/float64(floor)))
	}
	t.AddNote("paper: medians ≥ c/3; the sweep player's median ≈ c²/(c+1) ≈ c shows the floor is loose by ≈ 3x")
	return t, nil
}
