// Package experiments defines one reproducible experiment per claim of
// the paper (see DESIGN.md's experiment index, E1–E16). Each
// experiment builds its workload, sweeps its parameter, runs the
// algorithms and baselines, and returns a Table whose rows are the
// series the theory predicts. cmd/crnbench prints all of them;
// bench_test.go wraps each in a testing.B benchmark.
//
// Experiments that measure whole primitives (discovery, broadcast)
// run through the public crn facade — the same Primitive/Sweep path
// users run — while experiments probing sub-protocol machinery step
// internal protocols directly.
package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"

	"crn"
	"crn/internal/chanassign"
	"crn/internal/core"
	"crn/internal/graph"
	"crn/internal/radio"
)

// Scale selects experiment sizes: Quick for benchmarks and smoke runs,
// Full for the cmd/crnbench table regeneration.
type Scale int

// Experiment scales.
const (
	Quick Scale = iota + 1
	Full
)

// Definition names one runnable experiment.
type Definition struct {
	// ID is the experiment identifier (E1..E12).
	ID string
	// Title is a one-line description.
	Title string
	// Claim cites the theorem/lemma reproduced.
	Claim string
	// Run executes the experiment.
	Run func(scale Scale, seed uint64) (*Table, error)
}

// All returns every experiment in index order.
func All() []Definition {
	return []Definition{
		{ID: "E1", Title: "COUNT estimate accuracy", Claim: "Lemma 1: estimate in [m, 4m] w.h.p.", Run: E1Count},
		{ID: "E2", Title: "Discovery time vs c", Claim: "Theorem 4: CSEEK ~ c²/k; naive ~ (c²/k)·Δ", Run: E2SeekVsC},
		{ID: "E3", Title: "Discovery time vs Δ", Claim: "Theorem 4: CSEEK additive in Δ; naive multiplicative", Run: E3SeekVsDelta},
		{ID: "E4", Title: "Discovery time vs kmax/k", Claim: "Theorem 4: (kmax/k)·Δ term", Run: E4Heterogeneity},
		{ID: "E5", Title: "CKSEEK k̂-filter", Claim: "Theorem 6: k̂ > k strictly faster", Run: E5KSeek},
		{ID: "E6", Title: "Line-graph coloring phases", Claim: "Lemma 8: valid 2Δ coloring in O(lg n) phases", Run: E6Coloring},
		{ID: "E7", Title: "Broadcast time vs D", Claim: "Theorem 9: CGCAST ~ setup + D·Δ; flooding ~ (c²/k)·D", Run: E7BroadcastVsD},
		{ID: "E8", Title: "Dissemination vs Δ", Claim: "Theorem 9: dissemination ~ D·Δ", Run: E8BroadcastVsDelta},
		{ID: "E9", Title: "Bipartite hitting game", Claim: "Lemma 10 + Thm 13: ≥ c²/(8k) rounds", Run: E9HittingGame},
		{ID: "E10", Title: "Complete hitting game", Claim: "Lemma 12: ≥ c/3 rounds", Run: E10CompleteGame},
		{ID: "E11", Title: "Tree broadcast floor", Claim: "Theorem 14: Ω(D·min{c,Δ})", Run: E11TreeBound},
		{ID: "E12", Title: "Part-two priority bias", Claim: "Section 7: dense overlaps heard first", Run: E12PriorityBias},
		{ID: "E13", Title: "Primary-user jamming", Claim: "Extension: graceful degradation under occupancy", Run: E13Jamming},
		{ID: "E14", Title: "Rendezvous vs contention", Claim: "Section 2: meetings alone do not solve discovery", Run: E14Rendezvous},
		{ID: "E15", Title: "Staggered starts", Claim: "Extension: sensitivity to the synchronous-start assumption", Run: E15AsyncStart},
		{ID: "E16", Title: "Setup amortization", Claim: "Theorem 9 corollary: one setup, many broadcasts", Run: E16Amortization},
		{ID: "E17", Title: "Poisson vs Markov primary traffic", Claim: "Chaoub–Ibn-Elhaj: burst shape changes completion at matched occupancy", Run: E17TrafficModels},
	}
}

// Find returns the definition with the given ID.
func Find(id string) (Definition, bool) {
	for _, d := range All() {
		if strings.EqualFold(d.ID, id) {
			return d, true
		}
	}
	return Definition{}, false
}

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Claim  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a free-form note line (conclusions, fits).
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text with a markdown-style header.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		return "| " + strings.Join(parts, " | ") + " |"
	}
	if _, err := fmt.Fprintf(w, "### %s — %s\n%s\n\n", t.ID, t.Title, t.Claim); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(seps)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n> %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// ----- shared measurement helpers -----

// instance bundles a generated workload for the experiments that step
// raw protocols (COUNT, hitting games, rendezvous, staggered starts,
// broadcast sessions). Experiments that measure whole primitives go
// through the public facade instead — see facadeScenario.
type instance struct {
	g  *graph.Graph
	a  *chanassign.Assignment
	p  core.Params
	nw *radio.Network
}

// newInstance derives normalized Params from a graph/assignment pair.
func newInstance(g *graph.Graph, a *chanassign.Assignment) (*instance, error) {
	k, kmax := a.OverlapRange(g)
	p := core.Params{N: g.N(), C: a.C, K: k, KMax: kmax, Delta: g.MaxDegree()}
	if err := p.Normalize(); err != nil {
		return nil, err
	}
	return &instance{g: g, a: a, p: p, nw: &radio.Network{Graph: g, Assign: a}}, nil
}

// facadeScenario bridges a bespoke workload (prebuilt graph and
// channel assignment) into the public facade, so experiments measure
// through the exact Primitive/Sweep path users run.
func facadeScenario(g *graph.Graph, a *chanassign.Assignment, opts ...crn.ScenarioOption) (*crn.Scenario, error) {
	return crn.NewScenarioFromParts(g, a, opts...)
}

// medianTimeToDiscovery sweeps prim over `trials` seeds on the shared
// scenario and returns the median slots-to-complete (incomplete runs
// censored at the full schedule length — a conservative treatment)
// plus the incomplete-run count.
func medianTimeToDiscovery(scn *crn.Scenario, prim crn.Primitive, trials int, seed uint64) (float64, int, error) {
	agg, err := sweepAggregate(scn, prim, trials, seed)
	if err != nil {
		return 0, 0, err
	}
	return agg.Metrics["timeToComplete"].Median, agg.Runs - agg.Completed, nil
}

// sweepAggregate runs one single-variant sweep through the public
// engine and returns its aggregate.
func sweepAggregate(scn *crn.Scenario, prim crn.Primitive, trials int, seed uint64) (*crn.Aggregate, error) {
	res, err := crn.Sweep(context.Background(), crn.SweepSpec{
		Primitive: prim,
		Variants:  []crn.Variant{{Scenario: scn}},
		Seeds:     trials,
		BaseSeed:  seed,
	})
	if err != nil {
		return nil, err
	}
	agg := &res.Aggregates[0]
	if agg.Failures > 0 {
		return nil, fmt.Errorf("experiments: %d/%d sweep runs failed", agg.Failures, agg.Runs)
	}
	return agg, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func itoa(v int64) string { return fmt.Sprintf("%d", v) }

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
