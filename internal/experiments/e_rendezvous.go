package experiments

import (
	"crn/internal/chanassign"
	"crn/internal/core"
	"crn/internal/graph"
	"crn/internal/radio"
	"crn/internal/rng"
)

// E14Rendezvous reproduces the related-work argument of Section 2:
// rendezvous-style channel hopping guarantees plenty of *meetings*,
// but without contention resolution the meetings rarely deliver
// identities. A star center listens on random channels while its Δ
// leaves hop and transmit under three strategies; the back-off sweep
// (CSEEK's part-two mechanism) is what turns meetings into discovery.
func E14Rendezvous(scale Scale, seed uint64) (*Table, error) {
	leaves := 16
	budget := int64(6000)
	if scale == Quick {
		leaves = 8
		budget = 2000
	}
	const c = 4

	t := &Table{
		ID:     "E14",
		Title:  "Rendezvous meetings vs deliveries",
		Claim:  "Section 2: \"simple meeting does not always imply successful exchange of identities\"",
		Header: []string{"leaf strategy", "meetings", "deliveries", "delivery rate", "found", "census@"},
	}

	for _, strategy := range []core.HopStrategy{core.HopAlways, core.HopCoin, core.HopBackoff} {
		row, err := runRendezvousTrial(leaves, c, budget, strategy, seed)
		if err != nil {
			return nil, err
		}
		t.AddRow(row...)
	}
	t.AddNote("meetings = listener slots with ≥1 co-channel broadcaster (deliveries+collisions); always-broadcast rendezvous meets constantly but collides; the back-off sweep resolves contention — the gap CSEEK closes")
	return t, nil
}

func runRendezvousTrial(leaves, c int, budget int64, strategy core.HopStrategy, seed uint64) ([]string, error) {
	n := leaves + 1
	g := graph.Star(n)
	a, err := chanassign.Identical(n, c, rng.New(seed))
	if err != nil {
		return nil, err
	}
	p := core.Params{N: n, C: c, K: c, KMax: c, Delta: leaves}
	if err := p.Normalize(); err != nil {
		return nil, err
	}
	master := rng.New(seed + uint64(strategy))

	center, err := core.NewListenRecorder(p, core.Env{ID: 0, C: c, Rand: master.Split(0)}, budget)
	if err != nil {
		return nil, err
	}
	protos := make([]radio.Protocol, n)
	protos[0] = center
	for i := 1; i < n; i++ {
		// Modular hop rates: odd rates are coprime with c = 4.
		rate := 2*i + 1
		hb, err := core.NewHopBroadcaster(p, core.Env{ID: radio.NodeID(i), C: c, Rand: master.Split(uint64(i))},
			strategy, true /* modular */, rate, i, budget)
		if err != nil {
			return nil, err
		}
		protos[i] = hb
	}
	e, err := radio.NewEngine(&radio.Network{Graph: g, Assign: a}, protos)
	if err != nil {
		return nil, err
	}
	st := e.Run(budget + 1)

	// Only the center listens, so engine-wide listener stats are the
	// center's: meetings = deliveries + collisions.
	meetings := st.Deliveries + st.Collisions
	rate := 0.0
	if meetings > 0 {
		rate = float64(st.Deliveries) / float64(meetings)
	}
	censusAt := "censored"
	if center.HeardCount() == leaves {
		censusAt = itoa(center.LastFirstHeard())
	}
	return []string{
		strategy.String(),
		itoa(meetings),
		itoa(st.Deliveries),
		f2(rate),
		itoa(int64(center.HeardCount())),
		censusAt,
	}, nil
}
