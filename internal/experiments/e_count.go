package experiments

import (
	"fmt"

	"crn/internal/chanassign"
	"crn/internal/core"
	"crn/internal/graph"
	"crn/internal/radio"
	"crn/internal/rng"
	"crn/internal/stats"
)

// E1Count reproduces Lemma 1: a listener surrounded by m broadcasters
// estimates m within [m, 4m] w.h.p., in O(lg² n) slots.
func E1Count(scale Scale, seed uint64) (*Table, error) {
	ms := []int{1, 2, 4, 8, 16, 32}
	trials := 40
	if scale == Quick {
		ms = []int{1, 4, 16}
		trials = 10
	}

	t := &Table{
		ID:     "E1",
		Title:  "COUNT estimate accuracy",
		Claim:  "Lemma 1: COUNT returns an estimate in [m, 4m] w.h.p. in O(lg² n) slots",
		Header: []string{"m", "slots", "est/m min", "est/m med", "est/m max", "in [m,4m]"},
	}

	for _, m := range ms {
		ratios := make([]float64, 0, trials)
		inRange := 0
		slots := int64(0)
		for trial := 0; trial < trials; trial++ {
			est, usedSlots, err := runOneCount(m, seed+uint64(m*1000+trial))
			if err != nil {
				return nil, err
			}
			slots = usedSlots
			ratios = append(ratios, float64(est)/float64(m))
			if est >= int64(m) && est <= int64(4*m) {
				inRange++
			}
		}
		s := stats.Summarize(ratios)
		t.AddRow(itoa(int64(m)), itoa(slots), f2(s.Min), f2(s.Median), f2(s.Max),
			fmt.Sprintf("%d/%d", inRange, trials))
	}
	t.AddNote("paper: estimate ∈ [m, 4m] w.h.p.; measured: the in-range column should be ≈ all trials")
	return t, nil
}

// runOneCount executes one standalone COUNT with m broadcasters.
func runOneCount(m int, seed uint64) (int64, int64, error) {
	n := m + 1
	g := graph.Star(n)
	a, err := chanassign.Identical(n, 1, rng.New(seed))
	if err != nil {
		return 0, 0, err
	}
	p := core.Params{N: n, C: 1, K: 1, KMax: 1, Delta: m}
	master := rng.New(seed ^ 0xC0FFEE)

	listener, err := core.NewCountListen(p, 0)
	if err != nil {
		return 0, 0, err
	}
	protos := make([]radio.Protocol, n)
	protos[0] = listener
	for i := 1; i < n; i++ {
		env := core.Env{ID: radio.NodeID(i), C: 1, Rand: master.Split(uint64(i))}
		b, err := core.NewCountBroadcast(p, env, 0)
		if err != nil {
			return 0, 0, err
		}
		protos[i] = b
	}
	e, err := radio.NewEngine(&radio.Network{Graph: g, Assign: a}, protos)
	if err != nil {
		return 0, 0, err
	}
	st := e.Run(1 << 24)
	if !st.Completed {
		return 0, 0, fmt.Errorf("experiments: COUNT did not complete")
	}
	return listener.Count(), st.Slots, nil
}
