package experiments

import (
	"fmt"

	"crn"
	"crn/internal/chanassign"
	"crn/internal/graph"
	"crn/internal/rng"
	"crn/internal/spectrum"
)

// E17TrafficModels compares CSEEK discovery and CGCAST broadcast
// completion under Poissonian vs. Markovian primary traffic at matched
// mean occupancy — the comparison of Chaoub & Ibn-Elhaj ("Comparison
// between Poissonian and Markovian Primary Traffics in Cognitive Radio
// Networks"): the *shape* of the on/off process, not just its mean,
// drives dissemination latency.
//
// The Markov (Gilbert) chain produces many short outages whose
// stationary occupancy is pBusy/(pBusy+pFree); the Poisson model with
// long geometric holds produces rarer but heavier outages. Both are
// tuned to ~25% occupancy (the urban-busy regime) and the realized
// occupancy is reported next to the completion numbers, so the rows
// are comparable.
func E17TrafficModels(scale Scale, seed uint64) (*Table, error) {
	n, trials := 14, 3
	if scale == Quick {
		n, trials = 10, 1
	}
	const c, k = 5, 2

	t := &Table{
		ID:     "E17",
		Title:  "Poissonian vs Markovian primary traffic",
		Claim:  "Chaoub–Ibn-Elhaj: at matched occupancy, burst shape changes completion time and tail",
		Header: []string{"traffic", "occupancy", "primitive", "median slots", "complete", "jammed/listen"},
	}

	g, err := graph.GNP(n, 0.35, rng.New(seed))
	if err != nil {
		return nil, err
	}
	a, err := chanassign.SharedCore(n, c, k, rng.New(seed+1))
	if err != nil {
		return nil, err
	}
	// Horizon: generous for both primitives (the facade's auto-horizon
	// rule would do the same; derived here because occupancy is
	// measured on the jammer before any scenario wraps it).
	horizon := int64(200000)

	// Both models target ~25% stationary occupancy: Markov via
	// pBusy/(pBusy+pFree) = .05/.20, Poisson via rate·hold = 0.3
	// arrivals-in-service (occupancy 1-exp(-rate·hold) ≈ 0.26).
	markov, err := spectrum.NewMarkov(a.Universe, horizon, 0.05, 0.15, seed+2)
	if err != nil {
		return nil, err
	}
	poisson, err := spectrum.NewPoisson(a.Universe, horizon, 0.012, 25, spectrum.HoldGeometric, seed+2)
	if err != nil {
		return nil, err
	}

	models := []struct {
		name string
		j    spectrum.Jammer
	}{
		{name: "none", j: nil},
		{name: "markov", j: markov},
		{name: "poisson", j: poisson},
	}
	prims := []struct {
		name string
		p    crn.Primitive
	}{
		{name: "cseek", p: crn.Discovery(crn.CSeek)},
		{name: "cgcast", p: crn.GlobalBroadcast(0, "message")},
	}

	for _, m := range models {
		occupancy := 0.0
		opts := []crn.ScenarioOption{}
		if m.j != nil {
			occupancy = spectrum.OccupancyFraction(m.j, a.Universe, 20000)
			opts = append(opts, crn.WithJammer(m.j))
		}
		scn, err := facadeScenario(g, a, opts...)
		if err != nil {
			return nil, err
		}
		for _, prim := range prims {
			agg, err := sweepAggregate(scn, prim.p, trials, seed+3)
			if err != nil {
				return nil, err
			}
			jamShare := "-"
			if listens := agg.Metrics["listens"].Mean; listens > 0 {
				jamShare = f2(agg.Metrics["jammedListens"].Mean / listens)
			}
			t.AddRow(m.name, f2(occupancy), prim.name,
				f1(agg.Metrics["timeToComplete"].Median),
				fmt.Sprintf("%d/%d", agg.Completed, agg.Runs),
				jamShare)
		}
	}
	t.AddNote("matched mean occupancy, different burst shape: the Markov chain's short frequent outages are mostly absorbed by CSEEK's within-step redundancy, while Poisson's long holds knock out whole steps on the affected channels and stretch the completion tail — the traffic model, not just its mean, is a first-class scenario axis")
	return t, nil
}
