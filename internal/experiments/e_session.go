package experiments

import (
	"fmt"

	"crn/internal/chanassign"
	"crn/internal/core"
	"crn/internal/graph"
	"crn/internal/radio"
	"crn/internal/rng"
)

// E16Amortization measures the break-even point between CGCAST and
// flooding over repeated broadcasts: CGCAST pays setup once and then
// O~(D·Δ) per message, flooding pays a fresh O~((c²/k)·D) rendezvous
// per message. The crossover message count is setup/(flood−dissem).
func E16Amortization(scale Scale, seed uint64) (*Table, error) {
	length := 8
	floodTrials := 3
	if scale == Quick {
		length = 4
		floodTrials = 1
	}
	const clusterSize, c, k = 4, 16, 1

	t := &Table{
		ID:     "E16",
		Title:  "Setup amortization over repeated broadcasts",
		Claim:  "Theorem 9 corollary: one setup serves every later broadcast",
		Header: []string{"messages", "CGCAST total", "flooding total", "winner"},
	}

	g, err := graph.ClusterChain(length, clusterSize)
	if err != nil {
		return nil, err
	}
	a, err := chanassign.SharedCore(g.N(), c, k, rng.New(seed))
	if err != nil {
		return nil, err
	}
	in, err := newInstance(g, a)
	if err != nil {
		return nil, err
	}
	d := g.Diameter()

	session, err := core.PrepareCGCast(in.nw, core.SessionConfig{Params: in.p, Seed: seed + 1})
	if err != nil {
		return nil, err
	}
	dres, err := session.Disseminate(d, 0, "m", seed+2)
	if err != nil {
		return nil, err
	}
	if dres.AllInformedAt < 0 {
		return nil, fmt.Errorf("experiments: dissemination left nodes uninformed")
	}

	var floodTimes []float64
	for i := 0; i < floodTrials; i++ {
		at, all, err := core.RunFlood(in.nw, in.p, d, radio.NodeID(0), "m", seed+3+uint64(i)*31)
		if err != nil {
			return nil, err
		}
		if !all {
			return nil, fmt.Errorf("experiments: flooding left nodes uninformed")
		}
		floodTimes = append(floodTimes, float64(at))
	}
	flood := int64(median(floodTimes))

	setup := session.SetupSlots()
	perMsg := dres.ScheduleSlots
	counts := []int64{1, 100, 1000, 10000}
	if flood > perMsg {
		// Include one count beyond the crossover so the winner column
		// flips inside the table.
		counts = append(counts, 2*(setup/(flood-perMsg)+1))
	}
	for _, m := range counts {
		cg := setup + m*perMsg
		fl := m * flood
		winner := "flooding"
		if cg < fl {
			winner = "CGCAST"
		}
		t.AddRow(itoa(m), itoa(cg), itoa(fl), winner)
	}
	if flood > perMsg {
		breakEven := setup/(flood-perMsg) + 1
		t.AddNote("measured: setup %d slots, %d per CGCAST message vs %d per flooded message — CGCAST wins beyond ≈ %d messages", setup, perMsg, flood, breakEven)
	} else {
		t.AddNote("measured: flooding's per-message cost %d did not exceed CGCAST's %d in this regime", flood, perMsg)
	}
	return t, nil
}
