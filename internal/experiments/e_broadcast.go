package experiments

import (
	"context"
	"fmt"

	"crn"
	"crn/internal/chanassign"
	"crn/internal/coloring"
	"crn/internal/graph"
	"crn/internal/rng"
)

// E6Coloring reproduces Lemma 8: the Luby-style procedure colors line
// graphs with 2Δ colors, and the number of phases grows like lg n.
func E6Coloring(scale Scale, seed uint64) (*Table, error) {
	ns := []int{16, 64, 256, 1024}
	if scale == Quick {
		ns = []int{16, 64}
	}

	t := &Table{
		ID:     "E6",
		Title:  "Line-graph coloring phases",
		Claim:  "Lemma 8: valid 2Δ edge coloring in O(lg n) phases w.h.p.",
		Header: []string{"n", "edges", "2Δ colors", "phases", "valid"},
	}

	for _, n := range ns {
		g, err := graph.RandomRegularish(n, 6, rng.New(seed+uint64(n)))
		if err != nil {
			return nil, err
		}
		lg, _ := g.LineGraph()
		numColors := 2 * g.MaxDegree()
		res, err := coloring.Run(lg, numColors, 10_000, rng.New(seed+uint64(n)+1))
		if err != nil {
			return nil, err
		}
		valid := "no"
		if res.Completed && coloring.Validate(lg, res.Colors, numColors) == nil {
			valid = "yes"
		}
		t.AddRow(itoa(int64(n)), itoa(int64(lg.N())), itoa(int64(numColors)),
			itoa(int64(res.Phases)), valid)
	}
	t.AddNote("paper: phases = O(lg n); measured: the phases column should grow by a few per 4x n")
	return t, nil
}

// E7BroadcastVsD sweeps the network diameter on cluster chains and
// compares CGCAST against naive flooding, both run as facade
// primitives. Theorem 9: CGCAST pays its setup once plus D·Δ
// dissemination; flooding pays ~(c²/k) per hop.
func E7BroadcastVsD(scale Scale, seed uint64) (*Table, error) {
	lengths := []int{2, 4, 8, 16}
	if scale == Quick {
		lengths = []int{2, 4}
	}
	// c²/k = 256 makes every flooding hop pay a real rendezvous cost,
	// the regime Theorem 9's comparison is about.
	const clusterSize, c, k = 4, 16, 1

	t := &Table{
		ID:    "E7",
		Title: "Broadcast time vs D (cluster chains)",
		Claim: "Theorem 9: CGCAST O~(c²/k + (kmax/k)Δ + D·Δ) vs flooding O~((c²/k)·D)",
		Header: []string{"D", "n", "CGCAST setup", "CGCAST dissem", "CGCAST informed@",
			"flood informed@"},
	}

	ctx := context.Background()
	for _, length := range lengths {
		g, err := graph.ClusterChain(length, clusterSize)
		if err != nil {
			return nil, err
		}
		a, err := chanassign.SharedCore(g.N(), c, k, rng.New(seed+uint64(length)))
		if err != nil {
			return nil, err
		}
		scn, err := facadeScenario(g, a)
		if err != nil {
			return nil, err
		}
		res, err := crn.GlobalBroadcast(0, "m").Run(ctx, scn, seed+uint64(length)*13)
		if err != nil {
			return nil, err
		}
		flood, err := crn.Flooding(0, "m").Run(ctx, scn, seed+uint64(length)*17)
		if err != nil {
			return nil, err
		}
		floodStr := "censored"
		if flood.Completed {
			floodStr = itoa(flood.CompletedAtSlot)
		}
		cgAt := "censored"
		if res.CompletedAtSlot >= 0 {
			cgAt = itoa(res.CompletedAtSlot)
		}
		t.AddRow(itoa(int64(scn.Diameter())), itoa(int64(g.N())), itoa(res.Broadcast.SetupSlots),
			itoa(res.Broadcast.DissemScheduleSlots), cgAt, floodStr)
	}
	t.AddNote("paper: CGCAST's per-broadcast cost (informed@ within the dissemination stage) grows ~D·Δ, flooding ~(c²/k)·D; setup is paid once and amortizes over repeated broadcasts")
	return t, nil
}

// E8BroadcastVsDelta fixes the chain length and sweeps the cluster
// size, isolating the D·Δ dissemination term of Theorem 9.
func E8BroadcastVsDelta(scale Scale, seed uint64) (*Table, error) {
	sizes := []int{2, 4, 8}
	if scale == Quick {
		sizes = []int{2, 4}
	}
	const length, c, k = 4, 4, 2

	t := &Table{
		ID:     "E8",
		Title:  "Dissemination cost vs Δ",
		Claim:  "Theorem 9: dissemination schedule ~ D·Δ",
		Header: []string{"Δ", "D", "dissem schedule", "informed@", "schedule/(D·Δ)"},
	}

	ctx := context.Background()
	for _, size := range sizes {
		g, err := graph.ClusterChain(length, size)
		if err != nil {
			return nil, err
		}
		a, err := chanassign.SharedCore(g.N(), c, k, rng.New(seed+uint64(size)))
		if err != nil {
			return nil, err
		}
		scn, err := facadeScenario(g, a)
		if err != nil {
			return nil, err
		}
		res, err := crn.GlobalBroadcast(0, "m").Run(ctx, scn, seed+uint64(size)*19)
		if err != nil {
			return nil, err
		}
		d := scn.Diameter()
		delta := scn.Delta()
		cgAt := "censored"
		if res.CompletedAtSlot >= 0 {
			cgAt = itoa(res.CompletedAtSlot)
		}
		p := scn.ModelParams()
		norm := float64(res.Broadcast.DissemScheduleSlots) / float64(d*delta)
		rounds := int(p.Tuning.DissemRounds * float64(p.LgN()))
		predicted := float64(2 * rounds * p.LgDelta())
		t.AddRow(itoa(int64(delta)), itoa(int64(d)), itoa(res.Broadcast.DissemScheduleSlots), cgAt,
			fmt.Sprintf("%.1f (=%.0f)", norm, predicted))
	}
	t.AddNote("paper: dissemination = D·2Δ·rounds·lgΔ, so schedule/(D·Δ) equals the polylog 2·rounds·lgΔ exactly (shown in parentheses)")
	return t, nil
}

// E11TreeBound reproduces the Theorem 14 construction: on complete
// trees whose siblings share no channels, any broadcast needs
// Ω(D·min{c,Δ}) slots; we verify CGCAST and flooding both respect the
// floor.
func E11TreeBound(scale Scale, seed uint64) (*Table, error) {
	heights := []int{2, 3}
	if scale == Quick {
		heights = []int{2}
	}
	const c = 4
	branching := c - 1 // min{c,Δ}-1 children per internal node

	t := &Table{
		ID:     "E11",
		Title:  "Tree broadcast floor",
		Claim:  "Theorem 14: Ω(D·min{c,Δ}) on complete trees with disjoint sibling channels",
		Header: []string{"height", "n", "floor h·(min{c,Δ}-1)", "CGCAST informed@", "flood informed@"},
	}

	ctx := context.Background()
	for _, h := range heights {
		g, err := graph.CompleteTree(branching, h)
		if err != nil {
			return nil, err
		}
		// Every tree edge gets one fresh dedicated channel; unrelated
		// nodes share nothing (k=0 for non-edges is fine — they are not
		// neighbors).
		a, err := chanassign.Heterogeneous(g, c, 0, 1, 1.0, rng.New(seed+uint64(h)))
		if err != nil {
			return nil, err
		}
		scn, err := facadeScenario(g, a)
		if err != nil {
			return nil, err
		}
		res, err := crn.GlobalBroadcast(0, "m").Run(ctx, scn, seed+uint64(h)*23)
		if err != nil {
			return nil, err
		}
		flood, err := crn.Flooding(0, "m").Run(ctx, scn, seed+uint64(h)*29)
		if err != nil {
			return nil, err
		}
		minCD := c
		if scn.Delta() < minCD {
			minCD = scn.Delta()
		}
		floor := h * (minCD - 1)
		cgAt := "censored"
		if res.CompletedAtSlot >= 0 {
			cgAt = itoa(res.CompletedAtSlot)
		}
		floodStr := "censored"
		if flood.Completed {
			floodStr = itoa(flood.CompletedAtSlot)
		}
		t.AddRow(itoa(int64(h)), itoa(int64(g.N())), itoa(int64(floor)), cgAt, floodStr)
	}
	t.AddNote("paper: no algorithm beats the floor; measured informed@ columns must be ≥ floor")
	return t, nil
}
