package experiments

import (
	"context"
	"fmt"

	"crn"
	"crn/internal/chanassign"
	"crn/internal/core"
	"crn/internal/graph"
	"crn/internal/rng"
	"crn/internal/stats"
)

// E2SeekVsC sweeps the per-node channel count c at fixed n, k, Δ and
// measures slots to full neighbor discovery for CSEEK and both
// baselines. Theorem 4 predicts CSEEK ≈ c²/k (log-log slope ≈ 2 in c)
// while the naive baseline pays an extra factor Δ.
func E2SeekVsC(scale Scale, seed uint64) (*Table, error) {
	cs := []int{4, 6, 8, 12, 16}
	trials := 3
	n := 24
	if scale == Quick {
		cs = []int{4, 6, 8}
		trials = 1
		n = 16
	}
	const k = 2

	t := &Table{
		ID:     "E2",
		Title:  "Discovery time vs c",
		Claim:  "Theorem 4: CSEEK in O~(c²/k + (kmax/k)Δ); naive in O~((c²/k)·Δ)",
		Header: []string{"c", "CSEEK med", "naive med", "uniform med", "naive/CSEEK"},
	}

	g, err := graph.RandomRegularish(n, 4, rng.New(seed))
	if err != nil {
		return nil, err
	}
	var xs, ys []float64
	for _, c := range cs {
		a, err := chanassign.SharedCore(n, c, k, rng.New(seed+uint64(c)))
		if err != nil {
			return nil, err
		}
		scn, err := facadeScenario(g, a)
		if err != nil {
			return nil, err
		}
		cseek, _, err := medianTimeToDiscovery(scn, crn.Discovery(crn.CSeek), trials, seed+1)
		if err != nil {
			return nil, err
		}
		naive, _, err := medianTimeToDiscovery(scn, crn.Discovery(crn.Naive), trials, seed+2)
		if err != nil {
			return nil, err
		}
		uniform, _, err := medianTimeToDiscovery(scn, crn.Discovery(crn.Uniform), trials, seed+3)
		if err != nil {
			return nil, err
		}
		t.AddRow(itoa(int64(c)), f1(cseek), f1(naive), f1(uniform), f2(naive/cseek))
		xs = append(xs, float64(c))
		ys = append(ys, cseek)
	}
	if fit, err := stats.LogLogSlope(xs, ys); err == nil {
		t.AddNote("paper: CSEEK time ~ c²/k ⇒ log-log slope vs c ≈ 2; measured slope = %.2f (R²=%.2f)", fit.Slope, fit.R2)
	}
	t.AddNote("at this small Δ the naive baseline's absolute times are lower: CSEEK's COUNT machinery costs a polylog factor that only pays off once Δ exceeds it — E3 shows the gap closing as Δ grows, and TestScheduleShape pins the crossover ordering")
	return t, nil
}

// E3SeekVsDelta sweeps the maximum degree Δ on stars at fixed c, k.
// Theorem 4 predicts CSEEK grows additively in Δ while the naive
// baseline pays (c²/k)·Δ, so naive/CSEEK must grow with Δ.
func E3SeekVsDelta(scale Scale, seed uint64) (*Table, error) {
	deltas := []int{16, 64, 256}
	trials := 3
	if scale == Quick {
		deltas = []int{16, 64}
		trials = 1
	}
	const c, k = 4, 1

	t := &Table{
		ID:     "E3",
		Title:  "Discovery time vs Δ (stars)",
		Claim:  "Theorem 4: CSEEK additive (kmax/k)·Δ term; naive multiplicative Δ",
		Header: []string{"Δ", "CSEEK med", "naive med", "naive/CSEEK"},
	}

	var prevRatio float64
	increasing := true
	for _, delta := range deltas {
		g := graph.Star(delta + 1)
		a, err := chanassign.SharedCore(delta+1, c, k, rng.New(seed+uint64(delta)))
		if err != nil {
			return nil, err
		}
		scn, err := facadeScenario(g, a)
		if err != nil {
			return nil, err
		}
		cseek, _, err := medianTimeToDiscovery(scn, crn.Discovery(crn.CSeek), trials, seed+4)
		if err != nil {
			return nil, err
		}
		naive, _, err := medianTimeToDiscovery(scn, crn.Discovery(crn.Naive), trials, seed+5)
		if err != nil {
			return nil, err
		}
		ratio := naive / cseek
		t.AddRow(itoa(int64(delta)), f1(cseek), f1(naive), f2(ratio))
		if prevRatio > 0 && ratio < prevRatio {
			increasing = false
		}
		prevRatio = ratio
	}
	t.AddNote("paper: the naive/CSEEK gap widens with Δ; measured monotone growth: %v", increasing)
	return t, nil
}

// E4Heterogeneity sweeps kmax/k at fixed c, k, Δ and shows Theorem 4's
// (kmax/k)·Δ part-two term. The workload is a star whose leaves all
// share kmax channels with the center, plus one weak-link appendage
// pair sharing exactly k = 1 channel — the appendage pins the global
// minimum overlap, so growing kmax stretches exactly the part-two
// schedule.
func E4Heterogeneity(scale Scale, seed uint64) (*Table, error) {
	kmaxs := []int{1, 2, 4}
	trials := 3
	leaves := 33
	if scale == Quick {
		kmaxs = []int{1, 4}
		trials = 1
		leaves = 17
	}
	const c, k = 8, 1

	t := &Table{
		ID:     "E4",
		Title:  "Discovery time vs kmax/k",
		Claim:  "Theorem 4: part two of the schedule is Θ((kmax/k)·Δ·lg²n)",
		Header: []string{"kmax/k", "part-1 slots", "part-2 slots", "CSEEK med", "complete"},
	}

	for _, kmax := range kmaxs {
		in, err := starWithWeakLink(leaves, c, kmax, seed+uint64(kmax))
		if err != nil {
			return nil, err
		}
		scn, err := facadeScenario(in.g, in.a)
		if err != nil {
			return nil, err
		}
		med, incomplete, err := medianTimeToDiscovery(scn, crn.Discovery(crn.CSeek), trials, seed+6)
		if err != nil {
			return nil, err
		}
		probe, err := core.NewCSeek(in.p, core.Env{ID: 0, C: c, Rand: rng.New(1)})
		if err != nil {
			return nil, err
		}
		t.AddRow(f1(float64(kmax)/float64(k)), itoa(probe.PartOneSlots()),
			itoa(probe.PartTwoSlots()), f1(med),
			fmt.Sprintf("%d/%d", trials-incomplete, trials))
	}
	t.AddNote("paper: the part-2 column grows linearly in kmax/k while part 1 is fixed by c²/k; measured discovery stays complete within the stretched schedule")
	t.AddNote("the measured median *drops* as kmax grows because denser cores give more meeting opportunities on this workload; the (kmax/k)·Δ term is the worst-case budget the algorithm must reserve, not a measured slowdown")
	return t, nil
}

// starWithWeakLink builds the E4 workload: node 0 is the center of a
// star over `leaves` leaves, every star edge sharing exactly kmax
// channels (a common core); one extra node attaches to leaf 1 sharing
// exactly one private channel, pinning the network-wide k at 1.
func starWithWeakLink(leaves, c, kmax int, seed uint64) (*instance, error) {
	if kmax+1 > c {
		return nil, fmt.Errorf("experiments: kmax+1 = %d exceeds c = %d", kmax+1, c)
	}
	n := leaves + 2 // center + leaves + appendage
	g := graph.New(n)
	for v := 1; v <= leaves; v++ {
		g.MustAddEdge(0, v)
	}
	appendage := n - 1
	g.MustAddEdge(1, appendage)
	g.Finalize()

	// Channel sets: global channels [0,kmax) are the star core; channel
	// kmax is the weak link; the rest are per-node private fillers.
	next := kmax + 1
	private := func(count int) []int {
		out := make([]int, count)
		for i := range out {
			out[i] = next
			next++
		}
		return out
	}
	universe := kmax + 1 + n*c
	sets := make([][]int, n)
	core0 := make([]int, kmax)
	for i := range core0 {
		core0[i] = i
	}
	for u := 0; u < n; u++ {
		switch {
		case u == appendage:
			sets[u] = append([]int{kmax}, private(c-1)...)
		case u == 1:
			sets[u] = append(append(append([]int{}, core0...), kmax), private(c-kmax-1)...)
		default:
			sets[u] = append(append([]int{}, core0...), private(c-kmax)...)
		}
	}
	a, err := chanassign.FromSets(universe, sets, rng.New(seed))
	if err != nil {
		return nil, err
	}
	return newInstance(g, a)
}

// E5KSeek reproduces Theorem 6: CKSEEK solves k̂-neighbor-discovery
// strictly faster as k̂ grows, while still finding every good neighbor.
// The whole measurement goes through the KDiscovery primitive, whose
// Result already counts the good (≥ k̂ shared channels) pairs.
func E5KSeek(scale Scale, seed uint64) (*Table, error) {
	khats := []int{2, 4, 8}
	n := 20
	if scale == Quick {
		khats = []int{2, 8}
		n = 14
	}
	const c, k, kmax = 12, 2, 8

	t := &Table{
		ID:     "E5",
		Title:  "CKSEEK as a k̂ filter",
		Claim:  "Theorem 6: O~((c²/k̂) + (kmax/k̂)Δ_k̂ + Δ); k̂ > k strictly faster",
		Header: []string{"k̂", "schedule", "good pairs", "found", "time-to-good"},
	}

	g, err := graph.GNP(n, 0.3, rng.New(seed+1))
	if err != nil {
		return nil, err
	}
	a, err := chanassign.Heterogeneous(g, c, k, kmax, 0.5, rng.New(seed+2))
	if err != nil {
		return nil, err
	}
	scn, err := facadeScenario(g, a)
	if err != nil {
		return nil, err
	}

	for _, khat := range khats {
		res, err := crn.KDiscovery(khat).Run(context.Background(), scn, seed+7)
		if err != nil {
			return nil, err
		}
		timeStr := "censored"
		if res.CompletedAtSlot >= 0 {
			timeStr = itoa(res.CompletedAtSlot)
		}
		t.AddRow(itoa(int64(khat)), itoa(res.ScheduleSlots),
			itoa(int64(res.Discovery.PairsTotal)),
			itoa(int64(res.Discovery.PairsDiscovered)), timeStr)
	}
	t.AddNote("paper: schedule strictly decreases in k̂ and all good neighbors are found")
	return t, nil
}

// E12PriorityBias reproduces the Section 7 observation: in CSEEK's part
// two, neighbors overlapping on many channels are heard earlier than
// sparse-overlap neighbors, because the density-weighted listener
// favors the channels where they live. The first-heard slots come from
// the Result envelope's FirstHeard detail.
func E12PriorityBias(scale Scale, seed uint64) (*Table, error) {
	trials := 3
	n := 20
	if scale == Quick {
		trials = 1
		n = 14
	}
	const c, k, kmax = 12, 2, 8

	t := &Table{
		ID:     "E12",
		Title:  "Part-two priority bias",
		Claim:  "Section 7: CSEEK hears dense-overlap neighbors earlier",
		Header: []string{"pair class", "pairs", "first-heard med"},
	}

	g, err := graph.GNP(n, 0.3, rng.New(seed+3))
	if err != nil {
		return nil, err
	}
	a, err := chanassign.Heterogeneous(g, c, k, kmax, 0.5, rng.New(seed+4))
	if err != nil {
		return nil, err
	}
	scn, err := facadeScenario(g, a)
	if err != nil {
		return nil, err
	}

	prim := crn.Discovery(crn.CSeek)
	var sparse, dense []float64
	for trial := 0; trial < trials; trial++ {
		res, err := prim.Run(context.Background(), scn, seed+uint64(100+trial))
		if err != nil {
			return nil, err
		}
		d := res.Discovery
		for u := 0; u < n; u++ {
			for i, v := range d.Neighbors[u] {
				slot := d.FirstHeard[u][i]
				if slot < 0 {
					continue
				}
				if a.SharedCount(u, v) >= kmax {
					dense = append(dense, float64(slot))
				} else {
					sparse = append(sparse, float64(slot))
				}
			}
		}
	}
	sd := stats.Summarize(dense)
	ss := stats.Summarize(sparse)
	t.AddRow(fmt.Sprintf("k_uv = %d (dense)", kmax), itoa(int64(sd.N)), f1(sd.Median))
	t.AddRow(fmt.Sprintf("k_uv = %d (sparse)", k), itoa(int64(ss.N)), f1(ss.Median))
	t.AddNote("paper: dense pairs heard earlier; measured: dense median %.0f vs sparse %.0f", sd.Median, ss.Median)
	return t, nil
}
