package experiments

import (
	"fmt"

	"crn"
	"crn/internal/chanassign"
	"crn/internal/graph"
	"crn/internal/rng"
	"crn/internal/spectrum"
)

// E13Jamming measures CSEEK's robustness to primary-user activity —
// the deployment regime cognitive radio networks exist for (Section 1:
// secondary users must yield spectrum whenever a licensed primary user
// appears).
//
// The jamming granularity matters and the experiment sweeps it:
//
//   - fast jamming (bursts much shorter than a CSEEK part-one step) is
//     absorbed almost completely — a step's COUNT execution only needs
//     one clean solo slot, and the within-step redundancy provides
//     many;
//   - step-scale bursts wipe out whole steps, thinning the per-step
//     meeting probability; the damage lands unevenly across pairs, so
//     the median moves little while the slowest pairs start missing
//     the schedule entirely (the completion column).
func E13Jamming(scale Scale, seed uint64) (*Table, error) {
	duties := []float64{0.3, 0.6}
	trials := 3
	n := 16
	if scale == Quick {
		duties = []float64{0.6}
		trials = 1
		n = 12
	}
	const c, k = 5, 2

	t := &Table{
		ID:     "E13",
		Title:  "CSEEK under primary-user jamming",
		Claim:  "Extension: fast jamming is absorbed; step-scale bursts push the discovery tail past the schedule",
		Header: []string{"burst scale", "duty", "occupancy", "CSEEK med", "slowdown", "complete"},
	}

	g, err := graph.GNP(n, 0.35, rng.New(seed))
	if err != nil {
		return nil, err
	}
	a, err := chanassign.SharedCore(n, c, k, rng.New(seed+1))
	if err != nil {
		return nil, err
	}
	clear, err := facadeScenario(g, a)
	if err != nil {
		return nil, err
	}
	// One CSEEK part-one step is a COUNT execution of
	// (lgΔ+1)·max(CountMinRoundSlots, CountSlotsPerRound·lg n) slots;
	// burst periods are expressed relative to it.
	p := clear.ModelParams()
	spr := int64(p.Tuning.CountSlotsPerRound * float64(p.LgN()))
	if spr < int64(p.Tuning.CountMinRoundSlots) {
		spr = int64(p.Tuning.CountMinRoundSlots)
	}
	countSlots := int64(p.LgDelta()+1) * spr
	bursts := []struct {
		name   string
		period int64
	}{
		{name: "fast (period ≪ step)", period: 40},
		{name: "step-scale bursts", period: 6 * countSlots},
	}

	prim := crn.Discovery(crn.CSeek)

	// Baseline without jamming.
	base, _, err := medianTimeToDiscovery(clear, prim, trials, seed+2)
	if err != nil {
		return nil, err
	}
	t.AddRow("none", "0.00", "0.00", f1(base), "1.00", fmt.Sprintf("%d/%d", trials, trials))

	for _, burst := range bursts {
		for _, duty := range duties {
			on := int64(duty * float64(burst.period))
			stride := burst.period / int64(a.Universe)
			if stride < 1 {
				stride = 1
			}
			j, err := spectrum.NewPeriodic(burst.period, on, stride, nil)
			if err != nil {
				return nil, err
			}
			// Each jammer config is its own immutable scenario variant —
			// the shape a facade Sweep over primary-user models takes.
			jammed, err := facadeScenario(g, a, crn.WithJammer(j))
			if err != nil {
				return nil, err
			}
			occupancy := spectrum.OccupancyFraction(j, a.Universe, 10*burst.period)
			med, incomplete, err := medianTimeToDiscovery(jammed, prim, trials, seed+3)
			if err != nil {
				return nil, err
			}
			slowdown := "-"
			if base > 0 {
				slowdown = f2(med / base)
			}
			t.AddRow(burst.name, f2(duty), f2(occupancy), f1(med), slowdown,
				fmt.Sprintf("%d/%d", trials-incomplete, trials))
		}
	}
	t.AddNote("fast jamming leaves the slowdown near 1.00 (COUNT's within-step redundancy); step-scale bursts move the median only slightly but push the tail past the schedule — the completion column is where the damage shows; the algorithm never assumed clear spectrum, only the k-shared-channels guarantee")
	return t, nil
}
