// Package chanassign generates and validates channel assignments for
// cognitive radio networks.
//
// Each node has a radio that can access exactly c channels drawn from a
// global universe; neighboring nodes must share at least k and at most
// kmax channels (Section 3 of the paper). Crucially, there is no global
// channel labeling: each node refers to its channels by local labels
// 0..c-1, and the mapping from local labels to global channels is a
// per-node permutation that the algorithms never see.
package chanassign

import (
	"fmt"

	"crn/internal/bitset"
	"crn/internal/graph"
	"crn/internal/rng"
)

// Assignment is a complete channel assignment for an n-node network.
type Assignment struct {
	// Universe is the number of global channels.
	Universe int
	// C is the number of channels each node can access.
	C int
	// sets[u] is node u's global channel set (cardinality C).
	sets []*bitset.Set
	// localToGlobal[u][l] is the global channel behind node u's local
	// label l.
	localToGlobal [][]int32
	// l2gFlat is localToGlobal flattened to one row-major array
	// (stride C): the radio engine resolves a global channel per
	// non-idle node per slot, and the flat layout turns that into a
	// single indexed load.
	l2gFlat []int32
	// globalToLocal[u][g] is node u's local label for global channel g,
	// or -1 if u cannot access g.
	globalToLocal [][]int32
}

// newAssignment wires the label tables for the given global sets.
// Local labels are a random permutation of each node's set, modeling
// the absence of a global channel labeling.
func newAssignment(universe, c int, sets []*bitset.Set, r *rng.Source) *Assignment {
	a := &Assignment{
		Universe:      universe,
		C:             c,
		sets:          sets,
		localToGlobal: make([][]int32, len(sets)),
		globalToLocal: make([][]int32, len(sets)),
	}
	for u, s := range sets {
		elems := s.Elems(nil)
		perm := r.Perm(len(elems))
		l2g := make([]int32, len(elems))
		g2l := make([]int32, universe)
		for i := range g2l {
			g2l[i] = -1
		}
		for local, pi := range perm {
			g := int32(elems[pi])
			l2g[local] = g
			g2l[g] = int32(local)
		}
		a.localToGlobal[u] = l2g
		a.globalToLocal[u] = g2l
	}
	a.buildFlat()
	return a
}

// buildFlat derives the flattened label table from localToGlobal. A
// malformed assignment (some row shorter than C) keeps the flat table
// nil so Global falls back to the indexed path and label misuse still
// panics loudly instead of silently reading padding.
func (a *Assignment) buildFlat() {
	flat := make([]int32, len(a.localToGlobal)*a.C)
	for u, l2g := range a.localToGlobal {
		if len(l2g) != a.C {
			a.l2gFlat = nil
			return
		}
		copy(flat[u*a.C:], l2g)
	}
	a.l2gFlat = flat
}

// N returns the number of nodes.
func (a *Assignment) N() int { return len(a.sets) }

// Set returns node u's global channel set. Callers must not modify it.
func (a *Assignment) Set(u int) *bitset.Set { return a.sets[u] }

// Global maps node u's local label to a global channel.
func (a *Assignment) Global(u, local int) int32 {
	if a.l2gFlat == nil || local < 0 || local >= a.C {
		// Preserve the out-of-range panic shape protocols relied on.
		return a.localToGlobal[u][local]
	}
	return a.l2gFlat[u*a.C+local]
}

// Flat exposes the flattened local→global label table (row stride C):
// Flat()[u*C+local] == Global(u, local). Returns (nil, 0) when the
// assignment is malformed and no flat table exists. Hot engine loops
// that validate the local label themselves use it to skip Global's
// per-call guards; callers must not modify the slice.
func (a *Assignment) Flat() ([]int32, int) {
	if a.l2gFlat == nil {
		return nil, 0
	}
	return a.l2gFlat, a.C
}

// Local maps a global channel to node u's local label, or -1 if node u
// cannot access that channel.
func (a *Assignment) Local(u int, global int32) int32 { return a.globalToLocal[u][global] }

// SharedCount returns the number of channels nodes u and v share.
func (a *Assignment) SharedCount(u, v int) int {
	return a.sets[u].IntersectionCount(a.sets[v])
}

// SharedChannels returns the global channels u and v share.
func (a *Assignment) SharedChannels(u, v int) []int32 {
	inter := a.sets[u].Clone()
	inter.Intersect(a.sets[v])
	var out []int32
	inter.ForEach(func(g int) bool {
		out = append(out, int32(g))
		return true
	})
	return out
}

// OverlapRange returns the minimum and maximum pairwise overlap over
// the edges of g (the realized k and kmax). For edgeless graphs it
// returns (0, 0).
func (a *Assignment) OverlapRange(g *graph.Graph) (kMin, kMax int) {
	first := true
	for _, e := range g.Edges() {
		s := a.SharedCount(int(e.U), int(e.V))
		if first {
			kMin, kMax = s, s
			first = false
			continue
		}
		if s < kMin {
			kMin = s
		}
		if s > kMax {
			kMax = s
		}
	}
	return kMin, kMax
}

// Validate checks structural invariants: every node has exactly C
// channels, label tables are consistent bijections, and every edge of g
// shares between k and kmax channels.
func (a *Assignment) Validate(g *graph.Graph, k, kmax int) error {
	if g.N() != a.N() {
		return fmt.Errorf("chanassign: graph has %d nodes, assignment %d", g.N(), a.N())
	}
	for u := 0; u < a.N(); u++ {
		if got := a.sets[u].Count(); got != a.C {
			return fmt.Errorf("chanassign: node %d has %d channels, want %d", u, got, a.C)
		}
		if len(a.localToGlobal[u]) != a.C {
			return fmt.Errorf("chanassign: node %d has %d local labels, want %d", u, len(a.localToGlobal[u]), a.C)
		}
		for l, gch := range a.localToGlobal[u] {
			if !a.sets[u].Contains(int(gch)) {
				return fmt.Errorf("chanassign: node %d label %d maps to %d outside its set", u, l, gch)
			}
			if back := a.globalToLocal[u][gch]; int(back) != l {
				return fmt.Errorf("chanassign: node %d label %d->%d->%d roundtrip mismatch", u, l, gch, back)
			}
		}
	}
	for _, e := range g.Edges() {
		s := a.SharedCount(int(e.U), int(e.V))
		if s < k || s > kmax {
			return fmt.Errorf("chanassign: edge (%d,%d) shares %d channels, want [%d,%d]", e.U, e.V, s, k, kmax)
		}
	}
	return nil
}

// SharedCore assigns every node the same k "core" channels plus c-k
// channels private to that node. Every pair of neighbors therefore
// shares exactly k channels (the kmax = k regime in which Theorem 4
// matches the lower bound). Universe size is k + n·(c-k).
func SharedCore(n, c, k int, r *rng.Source) (*Assignment, error) {
	if err := checkParams(n, c, k, k); err != nil {
		return nil, err
	}
	universe := k + n*(c-k)
	sets := make([]*bitset.Set, n)
	for u := 0; u < n; u++ {
		s := bitset.New(universe)
		for g := 0; g < k; g++ {
			s.Add(g)
		}
		base := k + u*(c-k)
		for i := 0; i < c-k; i++ {
			s.Add(base + i)
		}
		sets[u] = s
	}
	return newAssignment(universe, c, sets, r), nil
}

// SharedPool assigns every node k core channels plus c-k channels
// drawn uniformly without replacement from a shared pool of the given
// size. Neighbors share at least the k core channels and additionally
// overlap on pool channels with expectation ≈ (c-k)²/poolSize, so the
// realized kmax exceeds k by a controllable random amount.
func SharedPool(n, c, k, poolSize int, r *rng.Source) (*Assignment, error) {
	if err := checkParams(n, c, k, c); err != nil {
		return nil, err
	}
	if poolSize < c-k {
		return nil, fmt.Errorf("chanassign: pool size %d < c-k = %d", poolSize, c-k)
	}
	universe := k + poolSize
	sets := make([]*bitset.Set, n)
	for u := 0; u < n; u++ {
		s := bitset.New(universe)
		for g := 0; g < k; g++ {
			s.Add(g)
		}
		for _, p := range r.SampleK(poolSize, c-k) {
			s.Add(k + p)
		}
		sets[u] = s
	}
	return newAssignment(universe, c, sets, r), nil
}

// Heterogeneous assigns channels so that a chosen fraction of edges
// ("heavy" edges) share exactly kmax channels while all others share
// exactly k. This produces the kmax >> k regime where CSEEK's
// (kmax/k)·Δ term separates from the lower bound (Section 7).
//
// Heavy edges are selected greedily subject to each node's budget of
// (c-k)/(kmax-k) heavy incidences; heavyFrac is the target fraction of
// edges to make heavy (best effort).
func Heterogeneous(g *graph.Graph, c, k, kmax int, heavyFrac float64, r *rng.Source) (*Assignment, error) {
	n := g.N()
	if err := checkParams(n, c, k, kmax); err != nil {
		return nil, err
	}
	if kmax < k {
		return nil, fmt.Errorf("chanassign: kmax %d < k %d", kmax, k)
	}
	extra := kmax - k
	if extra > 0 && c-k < extra {
		return nil, fmt.Errorf("chanassign: c-k = %d cannot host kmax-k = %d extra shared channels", c-k, extra)
	}

	// Select heavy edges greedily under per-node budgets.
	budget := make([]int, n)
	if extra > 0 {
		for u := range budget {
			budget[u] = (c - k) / extra
		}
	}
	edges := g.Edges()
	order := r.Perm(len(edges))
	wantHeavy := int(heavyFrac * float64(len(edges)))
	heavy := make([]bool, len(edges))
	nHeavy := 0
	if extra > 0 {
		for _, i := range order {
			if nHeavy >= wantHeavy {
				break
			}
			e := edges[i]
			if budget[e.U] > 0 && budget[e.V] > 0 {
				heavy[i] = true
				budget[e.U]--
				budget[e.V]--
				nHeavy++
			}
		}
	}

	// Universe layout: k core channels, then one fresh block of `extra`
	// channels per heavy edge, then per-node private filler.
	universe := k + nHeavy*extra + n*(c-k)
	sets := make([]*bitset.Set, n)
	used := make([]int, n) // non-core channels consumed per node
	for u := 0; u < n; u++ {
		s := bitset.New(universe)
		for gch := 0; gch < k; gch++ {
			s.Add(gch)
		}
		sets[u] = s
	}
	next := k
	for i, e := range edges {
		if !heavy[i] {
			continue
		}
		for j := 0; j < extra; j++ {
			sets[e.U].Add(next)
			sets[e.V].Add(next)
			next++
		}
		used[e.U] += extra
		used[e.V] += extra
	}
	// Private filler to reach exactly c channels per node.
	for u := 0; u < n; u++ {
		for used[u] < c-k {
			sets[u].Add(next)
			next++
			used[u]++
		}
	}
	a := newAssignment(universe, c, sets, r)
	if extra == 0 {
		return a, nil
	}
	return a, nil
}

// FromSets builds an assignment from explicit per-node global channel
// sets. Every set must have the same cardinality c (the model gives
// every transceiver exactly c channels); local labels are random
// permutations.
func FromSets(universe int, nodeSets [][]int, r *rng.Source) (*Assignment, error) {
	if len(nodeSets) == 0 {
		return nil, fmt.Errorf("chanassign: need at least one node")
	}
	if universe < 1 {
		return nil, fmt.Errorf("chanassign: universe must be >= 1, got %d", universe)
	}
	c := len(nodeSets[0])
	if c < 1 {
		return nil, fmt.Errorf("chanassign: node 0 has no channels")
	}
	sets := make([]*bitset.Set, len(nodeSets))
	for u, chans := range nodeSets {
		if len(chans) != c {
			return nil, fmt.Errorf("chanassign: node %d has %d channels, node 0 has %d", u, len(chans), c)
		}
		s := bitset.New(universe)
		for _, g := range chans {
			if g < 0 || g >= universe {
				return nil, fmt.Errorf("chanassign: node %d channel %d outside [0,%d)", u, g, universe)
			}
			if s.Contains(g) {
				return nil, fmt.Errorf("chanassign: node %d lists channel %d twice", u, g)
			}
			s.Add(g)
		}
		sets[u] = s
	}
	return newAssignment(universe, c, sets, r), nil
}

// Identical assigns every node the same c channels (the classic
// multi-channel network special case k = kmax = c). Useful as a
// degenerate regime and for COUNT tests where all nodes must meet on
// one channel.
func Identical(n, c int, r *rng.Source) (*Assignment, error) {
	if err := checkParams(n, c, c, c); err != nil {
		return nil, err
	}
	sets := make([]*bitset.Set, n)
	for u := 0; u < n; u++ {
		s := bitset.New(c)
		for g := 0; g < c; g++ {
			s.Add(g)
		}
		sets[u] = s
	}
	return newAssignment(c, c, sets, r), nil
}

// Matching builds the two-node assignment used by the Lemma 11
// reduction: nodes 0 and 1 each have c channels, overlapping on exactly
// the k pairs given by matching, where matching[i] = (a_i, b_i) means
// node 0's channel a_i is the same global channel as node 1's channel
// b_i. Channels are indices in [0, c).
func Matching(c int, pairs [][2]int, r *rng.Source) (*Assignment, error) {
	if c < 1 {
		return nil, fmt.Errorf("chanassign: c must be >= 1, got %d", c)
	}
	if len(pairs) > c {
		return nil, fmt.Errorf("chanassign: %d matched pairs exceed c = %d", len(pairs), c)
	}
	seenA := make(map[int]bool, len(pairs))
	seenB := make(map[int]bool, len(pairs))
	for _, p := range pairs {
		if p[0] < 0 || p[0] >= c || p[1] < 0 || p[1] >= c {
			return nil, fmt.Errorf("chanassign: matching pair %v out of range [0,%d)", p, c)
		}
		if seenA[p[0]] || seenB[p[1]] {
			return nil, fmt.Errorf("chanassign: matching pair %v reuses an endpoint", p)
		}
		seenA[p[0]] = true
		seenB[p[1]] = true
	}

	// Global layout: channels 0..len(pairs)-1 are the shared ones;
	// the rest are private to one side.
	universe := 2*c - len(pairs)
	s0 := bitset.New(universe)
	s1 := bitset.New(universe)
	// l2g built explicitly here (not via newAssignment's random perm)
	// because the game fixes which local label maps to which shared
	// channel.
	l2g0 := make([]int32, c)
	l2g1 := make([]int32, c)
	for i := range l2g0 {
		l2g0[i] = -1
		l2g1[i] = -1
	}
	for i, p := range pairs {
		l2g0[p[0]] = int32(i)
		l2g1[p[1]] = int32(i)
	}
	next := int32(len(pairs))
	for l := 0; l < c; l++ {
		if l2g0[l] == -1 {
			l2g0[l] = next
			next++
		}
		if l2g1[l] == -1 {
			l2g1[l] = next
			next++
		}
	}
	for _, g := range l2g0 {
		s0.Add(int(g))
	}
	for _, g := range l2g1 {
		s1.Add(int(g))
	}

	a := &Assignment{
		Universe:      universe,
		C:             c,
		sets:          []*bitset.Set{s0, s1},
		localToGlobal: [][]int32{l2g0, l2g1},
		globalToLocal: make([][]int32, 2),
	}
	for u, l2g := range a.localToGlobal {
		g2l := make([]int32, universe)
		for i := range g2l {
			g2l[i] = -1
		}
		for l, gch := range l2g {
			g2l[gch] = int32(l)
		}
		a.globalToLocal[u] = g2l
	}
	a.buildFlat()
	return a, nil
}

func checkParams(n, c, k, kmax int) error {
	if n < 1 {
		return fmt.Errorf("chanassign: n must be >= 1, got %d", n)
	}
	if c < 1 {
		return fmt.Errorf("chanassign: c must be >= 1, got %d", c)
	}
	if k < 0 || k > c {
		return fmt.Errorf("chanassign: k must be in [0,c] = [0,%d], got %d", c, k)
	}
	if kmax < k || kmax > c {
		return fmt.Errorf("chanassign: kmax must be in [k,c] = [%d,%d], got %d", k, c, kmax)
	}
	return nil
}
