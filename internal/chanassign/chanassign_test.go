package chanassign

import (
	"testing"
	"testing/quick"

	"crn/internal/graph"
	"crn/internal/rng"
)

func TestSharedCoreExactOverlap(t *testing.T) {
	r := rng.New(1)
	const n, c, k = 10, 8, 3
	a, err := SharedCore(n, c, k, r)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Complete(n)
	if err := a.Validate(g, k, k); err != nil {
		t.Fatal(err)
	}
	kMin, kMax := a.OverlapRange(g)
	if kMin != k || kMax != k {
		t.Errorf("OverlapRange = (%d,%d), want (%d,%d)", kMin, kMax, k, k)
	}
}

func TestSharedCoreParamErrors(t *testing.T) {
	r := rng.New(1)
	tests := []struct {
		name    string
		n, c, k int
	}{
		{name: "zero nodes", n: 0, c: 4, k: 2},
		{name: "zero channels", n: 4, c: 0, k: 0},
		{name: "k exceeds c", n: 4, c: 4, k: 5},
		{name: "negative k", n: 4, c: 4, k: -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := SharedCore(tt.n, tt.c, tt.k, r); err == nil {
				t.Errorf("SharedCore(%d,%d,%d) succeeded, want error", tt.n, tt.c, tt.k)
			}
		})
	}
}

func TestSharedPool(t *testing.T) {
	r := rng.New(2)
	const n, c, k, pool = 12, 10, 2, 40
	a, err := SharedPool(n, c, k, pool, r)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Complete(n)
	// Overlap is at least k and at most c by construction.
	if err := a.Validate(g, k, c); err != nil {
		t.Fatal(err)
	}
	kMin, _ := a.OverlapRange(g)
	if kMin < k {
		t.Errorf("min overlap %d < k = %d", kMin, k)
	}
	if _, err := SharedPool(4, 8, 2, 3, r); err == nil {
		t.Error("pool smaller than c-k accepted")
	}
}

func TestIdentical(t *testing.T) {
	r := rng.New(3)
	a, err := Identical(5, 6, r)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Complete(5)
	if err := a.Validate(g, 6, 6); err != nil {
		t.Fatal(err)
	}
	if a.Universe != 6 {
		t.Errorf("Universe = %d, want 6", a.Universe)
	}
}

func TestHeterogeneous(t *testing.T) {
	r := rng.New(4)
	g, err := graph.Cycle(12)
	if err != nil {
		t.Fatal(err)
	}
	const c, k, kmax = 12, 2, 6
	a, err := Heterogeneous(g, c, k, kmax, 0.5, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g, k, kmax); err != nil {
		t.Fatal(err)
	}
	// Every edge must share exactly k or exactly kmax.
	heavyCount := 0
	for _, e := range g.Edges() {
		s := a.SharedCount(int(e.U), int(e.V))
		switch s {
		case k:
		case kmax:
			heavyCount++
		default:
			t.Errorf("edge (%d,%d) shares %d channels, want %d or %d", e.U, e.V, s, k, kmax)
		}
	}
	if heavyCount == 0 {
		t.Error("no heavy edges created at heavyFrac=0.5")
	}
}

func TestHeterogeneousDegenerate(t *testing.T) {
	r := rng.New(5)
	g := graph.Path(6)
	// kmax == k degenerates to uniform overlap.
	a, err := Heterogeneous(g, 5, 2, 2, 0.7, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g, 2, 2); err != nil {
		t.Fatal(err)
	}
}

func TestHeterogeneousErrors(t *testing.T) {
	r := rng.New(6)
	g := graph.Path(4)
	if _, err := Heterogeneous(g, 5, 3, 2, 0.5, r); err == nil {
		t.Error("kmax < k accepted")
	}
	// c-k = 1 cannot host kmax-k = 3 extra channels.
	if _, err := Heterogeneous(g, 5, 4, 7, 0.5, r); err == nil {
		t.Error("infeasible extra-channel budget accepted")
	}
}

func TestLabelRoundTrip(t *testing.T) {
	r := rng.New(7)
	a, err := SharedCore(6, 9, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < a.N(); u++ {
		seen := make(map[int32]bool, a.C)
		for l := 0; l < a.C; l++ {
			g := a.Global(u, l)
			if seen[g] {
				t.Fatalf("node %d: global channel %d appears under two labels", u, g)
			}
			seen[g] = true
			if back := a.Local(u, g); int(back) != l {
				t.Fatalf("node %d: label %d -> global %d -> label %d", u, l, g, back)
			}
		}
	}
}

func TestLocalUnknownChannel(t *testing.T) {
	r := rng.New(8)
	a, err := SharedCore(3, 4, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 cannot access node 1's private channels.
	private1 := a.Global(1, 0)
	for l := 0; l < a.C; l++ {
		if a.Global(1, l) >= int32(1) { // non-core channel of node 1
			private1 = a.Global(1, l)
		}
	}
	if a.Set(0).Contains(int(private1)) {
		t.Skip("picked a shared channel; construction guarantees one private exists")
	}
	if got := a.Local(0, private1); got != -1 {
		t.Errorf("Local(0, %d) = %d, want -1", private1, got)
	}
}

func TestSharedChannels(t *testing.T) {
	r := rng.New(9)
	a, err := SharedCore(4, 6, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	shared := a.SharedChannels(0, 1)
	if len(shared) != 3 {
		t.Fatalf("SharedChannels(0,1) = %v, want 3 channels", shared)
	}
	for _, g := range shared {
		if !a.Set(0).Contains(int(g)) || !a.Set(1).Contains(int(g)) {
			t.Errorf("channel %d not in both sets", g)
		}
	}
}

func TestMatching(t *testing.T) {
	r := rng.New(10)
	pairs := [][2]int{{0, 3}, {2, 1}}
	a, err := Matching(4, pairs, r)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != 2 {
		t.Fatalf("N = %d, want 2", a.N())
	}
	if got := a.SharedCount(0, 1); got != 2 {
		t.Errorf("SharedCount = %d, want 2", got)
	}
	// Verify the matching is realized: node 0's local 0 == node 1's local 3.
	if a.Global(0, 0) != a.Global(1, 3) {
		t.Error("pair (0,3) not realized as a shared channel")
	}
	if a.Global(0, 2) != a.Global(1, 1) {
		t.Error("pair (2,1) not realized as a shared channel")
	}
	// Unmatched labels must not collide.
	if a.Global(0, 1) == a.Global(1, 0) {
		t.Error("unmatched labels share a global channel")
	}
	g := graph.TwoNode()
	if err := a.Validate(g, 2, 2); err != nil {
		t.Fatal(err)
	}
}

func TestMatchingErrors(t *testing.T) {
	r := rng.New(11)
	if _, err := Matching(0, nil, r); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := Matching(2, [][2]int{{0, 0}, {1, 1}, {0, 1}}, r); err == nil {
		t.Error("too many pairs accepted")
	}
	if _, err := Matching(3, [][2]int{{0, 5}}, r); err == nil {
		t.Error("out-of-range pair accepted")
	}
	if _, err := Matching(3, [][2]int{{0, 0}, {0, 1}}, r); err == nil {
		t.Error("repeated endpoint accepted")
	}
}

func TestMatchingEmpty(t *testing.T) {
	r := rng.New(12)
	a, err := Matching(3, nil, r)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.SharedCount(0, 1); got != 0 {
		t.Errorf("SharedCount = %d, want 0", got)
	}
}

// TestQuickHeterogeneousValid fuzzes parameters and checks the overlap
// guarantee whenever construction succeeds.
func TestQuickHeterogeneousValid(t *testing.T) {
	f := func(seed uint64, kRaw, extraRaw uint8) bool {
		r := rng.New(seed)
		k := int(kRaw%4) + 1
		extra := int(extraRaw % 4)
		kmax := k + extra
		c := kmax + int(seed%5) + 1
		g, err := graph.GNP(10, 0.4, r)
		if err != nil {
			return true
		}
		a, err := Heterogeneous(g, c, k, kmax, 0.5, r)
		if err != nil {
			return true
		}
		return a.Validate(g, k, kmax) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickSharedPoolOverlap fuzzes pool assignments and verifies the
// min-overlap guarantee.
func TestQuickSharedPoolOverlap(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		r := rng.New(seed)
		k := int(kRaw%5) + 1
		c := k + 4
		a, err := SharedPool(8, c, k, 30, r)
		if err != nil {
			return false
		}
		g := graph.Complete(8)
		kMin, _ := a.OverlapRange(g)
		return kMin >= k && a.Validate(g, k, c) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestValidateDetectsMismatch(t *testing.T) {
	r := rng.New(13)
	a, err := SharedCore(4, 5, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong node count.
	if err := a.Validate(graph.Star(5), 2, 2); err == nil {
		t.Error("node-count mismatch not detected")
	}
	// Too-strict overlap bounds.
	if err := a.Validate(graph.Complete(4), 3, 5); err == nil {
		t.Error("overlap below k not detected")
	}
	if err := a.Validate(graph.Complete(4), 1, 1); err == nil {
		t.Error("overlap above kmax not detected")
	}
}
