package core

import (
	"fmt"
	"sort"
	"testing"

	"crn/internal/chanassign"
	"crn/internal/graph"
	"crn/internal/radio"
	"crn/internal/rng"
)

// This file pins the core banks' byte-identity contract: every
// primitive's RangeProtocol bank must produce outcomes byte-identical
// to the same machines on per-node dispatch — same seed, same stats,
// same per-node end state — across clear, jammed and dynamic (churn +
// edge-flap) networks. The banks share the protocols' observeOutcome
// internals, so this should hold by construction; the suite makes the
// construction argument enforceable.

// bankParityJammer jams even global channels on every third slot.
type bankParityJammer struct{}

func (bankParityJammer) Jammed(slot int64, ch int32) bool {
	return ch%2 == 0 && slot%3 == 0
}

// bankChurnFeed is a deterministic scripted feed mixing node churn and
// edge flapping, fresh per run.
type bankChurnFeed struct {
	r     *rng.Source
	n     int
	edges []graph.Edge
}

func newBankChurnFeed(g *graph.Graph, seed uint64) *bankChurnFeed {
	return &bankChurnFeed{r: rng.New(seed), n: g.N(), edges: g.Edges()}
}

func (f *bankChurnFeed) Step(_ int64, mut radio.TopologyMutator) {
	u := f.r.Intn(f.n)
	if f.r.Bernoulli(0.05) {
		mut.SetNodeUp(u, !mut.NodeUp(u))
	}
	e := f.edges[f.r.Intn(len(f.edges))]
	if f.r.Bernoulli(0.1) {
		if mut.HasEdge(int(e.U), int(e.V)) {
			mut.RemoveEdge(int(e.U), int(e.V))
		} else {
			mut.AddEdge(int(e.U), int(e.V))
		}
	}
}

// TestCoreBanksMatchPerNodeDispatch runs every primitive's protocol
// stack twice per scenario — bank attached (range dispatch) and not
// (per-node dispatch) — and requires identical engine stats and
// identical per-node outcomes.
func TestCoreBanksMatchPerNodeDispatch(t *testing.T) {
	const n, c, k, seed = 10, 4, 2, 5
	g, err := graph.GNP(n, 0.4, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	a, err := chanassign.SharedCore(n, c, k, rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	p := Params{N: n, C: c, K: k, KMax: k, Delta: g.MaxDegree()}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	d := g.Diameter()
	if d < 1 {
		d = 1
	}

	// A stack bundles a fresh protocol set with its bank-attachment
	// hook and an outcome fingerprint extractor.
	type stack struct {
		protos  []radio.Protocol
		slots   int64
		attach  func() bool
		outcome func() string
	}
	discoveryStack := func(t *testing.T, mk func(Env) (Discoverer, error)) stack {
		t.Helper()
		master := rng.New(seed + 2)
		ds := make([]Discoverer, n)
		protos := make([]radio.Protocol, n)
		for u := 0; u < n; u++ {
			dv, err := mk(Env{ID: radio.NodeID(u), C: c, Rand: master.Split(uint64(u))})
			if err != nil {
				t.Fatal(err)
			}
			ds[u] = dv
			protos[u] = dv
		}
		return stack{protos: protos, slots: ds[0].TotalSlots(), attach: func() bool { return BankDiscoverers(ds) }, outcome: func() string {
			out := ""
			for u := 0; u < n; u++ {
				ids := ds[u].Discovered()
				sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
				out += fmt.Sprintf("%d:%v;", u, ids)
			}
			return out
		}}
	}
	primitives := []struct {
		name  string
		build func(t *testing.T, nw *radio.Network) stack
	}{
		{"cseek", func(t *testing.T, _ *radio.Network) stack {
			return discoveryStack(t, func(env Env) (Discoverer, error) { return NewCSeek(p, env) })
		}},
		{"ckseek", func(t *testing.T, _ *radio.Network) stack {
			return discoveryStack(t, func(env Env) (Discoverer, error) { return NewCKSeek(p, env, k, p.Delta) })
		}},
		{"cgcast-dissem", func(t *testing.T, nw *radio.Network) stack {
			session, err := PrepareCGCast(nw, SessionConfig{Params: p, Seed: seed + 3})
			if err != nil {
				t.Fatal(err)
			}
			rounds := scaledSteps(p.Tuning.DissemRounds, 1, p.LgN())
			master := rng.New(seed + 4)
			dps := make([]*dissemProto, n)
			protos := make([]radio.Protocol, n)
			for u := 0; u < n; u++ {
				dp := &dissemProto{
					env:      Env{ID: radio.NodeID(u), C: c, Rand: master.Split(uint64(u))},
					schedule: session.schedules[u],
					phases:   d,
					rounds:   rounds,
					lgDelta:  p.LgDelta(),
					delta:    p.Delta,
					informed: u == 0,
					msg:      "m",
					frame:    dissemMessage{Body: "m"},
				}
				dps[u] = dp
				protos[u] = dp
			}
			return stack{protos: protos, slots: dps[0].totalSlots(), attach: func() bool { newDissemBank(dps); return true }, outcome: func() string {
				out := ""
				for u, dp := range dps {
					out += fmt.Sprintf("%d:%v@%d;", u, dp.informed, dp.informedAt)
				}
				return out
			}}
		}},
		{"flood", func(t *testing.T, _ *radio.Network) stack {
			master := rng.New(seed + 5)
			fls := make([]*Flood, n)
			protos := make([]radio.Protocol, n)
			for u := 0; u < n; u++ {
				fl, err := NewFlood(p, Env{ID: radio.NodeID(u), C: c, Rand: master.Split(uint64(u))}, d, u == 0, "m")
				if err != nil {
					t.Fatal(err)
				}
				fls[u] = fl
				protos[u] = fl
			}
			return stack{protos: protos, slots: fls[0].TotalSlots(), attach: func() bool { NewFloodBank(fls); return true }, outcome: func() string {
				out := ""
				for u, fl := range fls {
					out += fmt.Sprintf("%d:%v@%d;", u, fl.Informed(), fl.InformedAt())
				}
				return out
			}}
		}},
		{"count", func(t *testing.T, _ *radio.Network) stack {
			master := rng.New(seed + 6)
			cl, err := NewCountListen(p, 0)
			if err != nil {
				t.Fatal(err)
			}
			bcs := make([]*CountBroadcast, n)
			protos := make([]radio.Protocol, n)
			protos[0] = cl
			for u := 1; u < n; u++ {
				cb, err := NewCountBroadcast(p, Env{ID: radio.NodeID(u), C: c, Rand: master.Split(uint64(u))}, 0)
				if err != nil {
					t.Fatal(err)
				}
				bcs[u] = cb
				protos[u] = cb
			}
			return stack{protos: protos, slots: int64(p.countSchedule().TotalSlots()), attach: func() bool { return NewCountBank(protos) != nil }, outcome: func() string {
				heard := cl.Heard()
				sort.Slice(heard, func(i, j int) bool { return heard[i] < heard[j] })
				out := fmt.Sprintf("count=%d heard=%v;", cl.Count(), heard)
				for u := 1; u < n; u++ {
					out += fmt.Sprintf("%d:%d/%d;", u, bcs[u].slot, bcs[u].round)
				}
				return out
			}}
		}},
	}

	scenarios := []struct {
		name string
		jam  radio.Jammer
		dyn  bool
	}{
		{"clear", nil, false},
		{"jammed", bankParityJammer{}, false},
		{"dynamic", nil, true},
	}

	for _, sc := range scenarios {
		for _, prim := range primitives {
			t.Run(sc.name+"/"+prim.name, func(t *testing.T) {
				run := func(banked bool) (radio.Stats, string) {
					nw := &radio.Network{Graph: g, Assign: a, Jammer: sc.jam}
					if sc.dyn {
						nw.Topology = newBankChurnFeed(g, 0xC0DE)
					}
					st := prim.build(t, nw)
					if banked {
						if !st.attach() {
							t.Fatal("bank attachment refused")
						}
					}
					e, err := radio.NewEngine(nw, st.protos)
					if err != nil {
						t.Fatal(err)
					}
					if e.RangeDispatch() != banked {
						t.Fatalf("banked=%v but RangeDispatch=%v", banked, e.RangeDispatch())
					}
					budget := st.slots + 1
					if budget > 30000 {
						budget = 30000
					}
					stats := e.Run(budget)
					return stats, st.outcome()
				}
				wantStats, wantOutcome := run(false)
				if sc.dyn && wantStats.DownSlots == 0 {
					t.Fatalf("dynamic scenario produced no down-node slots: %+v", wantStats)
				}
				gotStats, gotOutcome := run(true)
				if gotStats != wantStats {
					t.Errorf("stats:\n range    %+v\n per-node %+v", gotStats, wantStats)
				}
				if gotOutcome != wantOutcome {
					t.Errorf("outcome diverged:\n range    %s\n per-node %s", gotOutcome, wantOutcome)
				}
			})
		}
	}
}
