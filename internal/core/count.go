package core

import "crn/internal/radio"

// COUNT (Section 4.1, Appendix A): one listener and an unknown number
// m ≤ Δ of broadcasters share a channel; the listener wants an estimate
// of m within a constant factor.
//
// The procedure runs lg Δ rounds of Θ(lg n) slots. In round i the
// shared estimate is 2^(i-1); each broadcaster broadcasts its identity
// in each slot independently with probability 1/2^(i-1), and the
// listener counts the slots in which it hears a message. The listener
// adopts 2^(i+1) as its count in the first round whose heard fraction
// exceeds the trigger threshold; if no round triggers, the count falls
// back to the number of distinct identities heard — which happens
// exactly when there are so few broadcasters that contention was never
// significant.
//
// Lemma 1: the estimate lands in [m, 4m] w.h.p.

// countSchedule fixes the COUNT slot layout derived from Params.
type countSchedule struct {
	rounds        int
	slotsPerRound int
	threshold     float64
	// probs[r] is the per-slot broadcast probability of round r,
	// precomputed so the per-slot hot path does a load instead of a
	// float division.
	probs []float64
}

func (p Params) countSchedule() countSchedule {
	slots := int(p.Tuning.CountSlotsPerRound * float64(p.LgN()))
	if slots < p.Tuning.CountMinRoundSlots {
		slots = p.Tuning.CountMinRoundSlots
	}
	// Estimates go 1, 2, 4, … and must reach Δ: lgΔ+1 rounds.
	rounds := p.LgDelta() + 1
	probs := make([]float64, rounds)
	for r := range probs {
		probs[r] = 1 / float64(int64(1)<<uint(r))
	}
	return countSchedule{
		rounds:        rounds,
		slotsPerRound: slots,
		threshold:     p.Tuning.CountThreshold,
		probs:         probs,
	}
}

// TotalSlots returns the length of one COUNT execution.
func (s countSchedule) TotalSlots() int { return s.rounds * s.slotsPerRound }

// round returns the round index (0-based) of a slot within COUNT.
func (s countSchedule) round(slot int) int { return slot / s.slotsPerRound }

// broadcastProb returns the per-slot broadcast probability in round r:
// 1/2^r (round 0 has estimate 1, probability 1).
func (s countSchedule) broadcastProb(r int) float64 { return s.probs[r] }

// countListener accumulates the listener side of one COUNT execution.
// It is embedded in CSEEK part-one steps and in the standalone
// CountListen protocol. It tracks its own position in the schedule
// with incremental counters (no per-slot division); callers must feed
// it exactly one observe per slot from the start of an execution.
type countListener struct {
	sched       countSchedule
	heardIn     int  // messages heard in the current round
	slotInRound int  // slots consumed in the current round
	round       int  // current round index
	triggered   bool // an estimate has been adopted
	estimate    int64
	distinct    map[radio.NodeID]struct{}
}

func newCountListener(sched countSchedule) countListener {
	return countListener{
		sched:    sched,
		distinct: make(map[radio.NodeID]struct{}, 4),
	}
}

// reset prepares the listener for a fresh COUNT execution, reusing the
// allocation.
func (l *countListener) reset() {
	l.heardIn = 0
	l.slotInRound = 0
	l.round = 0
	l.triggered = false
	l.estimate = 0
	clear(l.distinct)
}

// observe processes the outcome of one slot (msg nil on silence or
// collision).
func (l *countListener) observe(msg *radio.Message) {
	if msg == nil {
		l.observeOutcome(false, 0)
		return
	}
	l.observeOutcome(true, msg.From)
}

// observeOutcome is observe with the delivery already unpacked — the
// range-dispatch banks feed outcomes here directly, so both dispatch
// modes share one state machine and no Message value is ever built.
func (l *countListener) observeOutcome(heard bool, from radio.NodeID) {
	if heard {
		l.heardIn++
		// Access-before-assign: in steady state the sender is already
		// known and a map read is cheaper than a rewrite.
		if _, ok := l.distinct[from]; !ok {
			l.distinct[from] = struct{}{}
		}
	}
	l.slotInRound++
	if l.slotInRound < l.sched.slotsPerRound {
		return
	}
	// Round boundary: apply the trigger rule.
	if !l.triggered {
		frac := float64(l.heardIn) / float64(l.sched.slotsPerRound)
		if frac > l.sched.threshold {
			l.triggered = true
			// Estimate 2^(i+1) with i the 1-based round index round+1.
			l.estimate = int64(1) << uint(l.round+2)
		}
	}
	l.heardIn = 0
	l.slotInRound = 0
	l.round++
}

// count returns the adopted estimate (see the package comment on the
// no-trigger fallback).
func (l *countListener) count() int64 {
	if l.triggered {
		return l.estimate
	}
	return int64(len(l.distinct))
}

// CountListen is the standalone listener protocol for COUNT on a fixed
// local channel, used by the Lemma 1 experiment and by tests.
type CountListen struct {
	sched countSchedule
	ch    int
	slot  int
	l     countListener

	// bank/bankIdx back-reference the CountBank (range dispatch).
	bank    *CountBank
	bankIdx int
}

var _ radio.Protocol = (*CountListen)(nil)

// NewCountListen returns a listener running one COUNT execution on
// local channel ch.
func NewCountListen(p Params, ch int) (*CountListen, error) {
	if err := p.Normalize(); err != nil {
		return nil, err
	}
	sched := p.countSchedule()
	return &CountListen{
		sched: sched,
		ch:    ch,
		l:     newCountListener(sched),
	}, nil
}

// Act implements radio.Protocol.
func (c *CountListen) Act(_ int64) radio.Action {
	return radio.Action{Kind: radio.Listen, Ch: c.ch}
}

// Observe implements radio.Protocol.
func (c *CountListen) Observe(_ int64, msg *radio.Message) {
	c.l.observe(msg)
	c.slot++
}

// observeOutcome is Observe with the delivery already unpacked (the
// CountBank feeds outcomes here).
func (c *CountListen) observeOutcome(heard bool, from radio.NodeID) {
	c.l.observeOutcome(heard, from)
	c.slot++
}

// Done implements radio.Protocol.
func (c *CountListen) Done() bool { return c.slot >= c.sched.TotalSlots() }

// Count returns the estimate; meaningful once Done.
func (c *CountListen) Count() int64 { return c.l.count() }

// Heard returns the identities of all broadcasters heard at least once.
func (c *CountListen) Heard() []radio.NodeID {
	out := make([]radio.NodeID, 0, len(c.l.distinct))
	for id := range c.l.distinct {
		out = append(out, id)
	}
	return out
}

// CountBroadcast is the standalone broadcaster protocol for COUNT.
type CountBroadcast struct {
	sched       countSchedule
	env         Env
	ch          int
	slot        int
	round       int // current round, tracked incrementally
	slotInRound int

	// bank/bankIdx back-reference the CountBank (range dispatch).
	bank    *CountBank
	bankIdx int
}

var _ radio.Protocol = (*CountBroadcast)(nil)

// NewCountBroadcast returns a broadcaster participating in one COUNT
// execution on local channel ch.
func NewCountBroadcast(p Params, env Env, ch int) (*CountBroadcast, error) {
	if err := p.Normalize(); err != nil {
		return nil, err
	}
	return &CountBroadcast{sched: p.countSchedule(), env: env, ch: ch}, nil
}

// Act implements radio.Protocol.
func (c *CountBroadcast) Act(_ int64) radio.Action {
	if c.env.Rand.Bernoulli(c.sched.broadcastProb(c.round)) {
		return radio.Action{Kind: radio.Broadcast, Ch: c.ch}
	}
	return radio.Action{Kind: radio.Idle}
}

// Observe implements radio.Protocol.
func (c *CountBroadcast) Observe(_ int64, _ *radio.Message) {
	c.slot++
	c.slotInRound++
	if c.slotInRound == c.sched.slotsPerRound && c.round+1 < c.sched.rounds {
		c.round++
		c.slotInRound = 0
	}
}

// Done implements radio.Protocol.
func (c *CountBroadcast) Done() bool { return c.slot >= c.sched.TotalSlots() }
