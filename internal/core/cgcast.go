package core

import (
	"context"
	"fmt"
	"sort"

	"crn/internal/coloring"
	"crn/internal/graph"
	"crn/internal/radio"
	"crn/internal/rng"
)

// CGCAST (Section 5) solves global broadcast in
// O~((c²/k) + (kmax/k)·Δ + D·Δ) slots, w.h.p. The pipeline:
//
//  1. Run CSEEK so every node learns its neighbors, recording for every
//     slot which channel the node was tuned to.
//  2. Run CSEEK again, attaching to each frame the map of first-heard
//     slots from stage 1. Each edge's endpoints then agree on a
//     dedicated communication channel: the channel they used in slot
//     min(t_uv, t_vu) of stage 1 — computable on both sides from local
//     logs despite the absence of global channel labels (Section 5.2).
//  3. Edge-color the network with 2Δ colors by running the Luby-style
//     node coloring on the line graph. Each edge (u,v) is simulated by
//     the endpoint with the smaller identifier; every coloring step
//     exchanges proposals/decisions among virtual-node neighbors, which
//     are at most two hops apart, via two CSEEK executions (the second
//     relays what the first delivered).
//  4. Run CSEEK once more so each simulator announces the final edge
//     color to the other endpoint.
//  5. Disseminate: D phases × 2Δ steps; step s is dedicated to color s.
//     A node whose color-s edge exists goes to that edge's dedicated
//     channel; if it knows the message it back-off-broadcasts for
//     Θ(lg n) rounds of lg Δ slots, otherwise it listens. The message
//     crosses at least one hop per phase, w.h.p. (Theorem 9).
//
// Stages 1–4 are pure message exchange. BroadcastConfig.Mode selects
// their fidelity: ExchangeFull simulates every CSEEK slot in the radio
// model; ExchangeAbstract delivers the same payloads to the same
// recipients through an oracle while charging the identical slot
// budget (see DESIGN.md, "Exchange fidelity"). Stage 5 always
// runs in the radio model.

// BroadcastMode selects the exchange fidelity of CGCAST stages 1–4.
type BroadcastMode int

// Exchange fidelity modes.
const (
	// ExchangeFull runs every CSEEK exchange in the radio model.
	ExchangeFull BroadcastMode = iota + 1
	// ExchangeAbstract delivers exchange payloads through an oracle at
	// the same slot cost; discovery metadata (neighbor sets, dedicated
	// channels) is synthesized from ground truth.
	ExchangeAbstract
)

// BroadcastConfig configures one CGCAST run.
type BroadcastConfig struct {
	// Params are the model parameters (normalized by RunCGCast).
	Params Params
	// D is the network diameter, which the paper assumes known for the
	// dissemination schedule.
	D int
	// Source is the node holding the message.
	Source radio.NodeID
	// Message is the payload to disseminate.
	Message any
	// Mode selects exchange fidelity; zero value means ExchangeAbstract.
	Mode BroadcastMode
	// Seed drives all protocol randomness.
	Seed uint64
}

// BroadcastResult reports the outcome and slot accounting of a run.
type BroadcastResult struct {
	// TotalSlots is the full charged cost: stages 1–4 plus the complete
	// dissemination schedule.
	TotalSlots int64
	// SetupSlots is the cost of stages 1–4 (discovery, exchange,
	// coloring, announce).
	SetupSlots int64
	// DissemScheduleSlots is the fixed length of stage 5.
	DissemScheduleSlots int64
	// AllInformedAt is the slot within stage 5 after which every node
	// held the message, or -1 if some node finished uninformed.
	AllInformedAt int64
	// AllInformed reports whether every node held the message.
	AllInformed bool
	// Informed[u] reports whether node u held the message at the end.
	Informed []bool
	// ColoringPhases is the number of coloring phases executed.
	ColoringPhases int
	// EdgesColored counts edges that obtained a color at both
	// endpoints.
	EdgesColored int
	// EdgesDropped counts graph edges that failed discovery, exchange,
	// or coloring and were left out of the dissemination schedule.
	EdgesDropped int
	// ColoringValid reports whether the realized edge coloring is
	// proper on the colored subgraph.
	ColoringValid bool
	// Radio accumulates engine counters over the stages that ran in the
	// radio model: dissemination always, plus the setup exchanges in
	// ExchangeFull mode. Spectrum accounting (jammed listener-slots)
	// lives here. Radio.Completed reports whether every such engine run
	// finished its schedule (stage failures surface as errors before a
	// result exists, so it is true on any returned result).
	Radio radio.Stats
}

// edgeKey identifies an undirected edge by its endpoints, U < V.
type edgeKey struct {
	U, V radio.NodeID
}

func mkEdgeKey(a, b radio.NodeID) edgeKey {
	if a > b {
		a, b = b, a
	}
	return edgeKey{U: a, V: b}
}

// other returns the endpoint of e that is not u.
func (e edgeKey) other(u radio.NodeID) radio.NodeID {
	if e.U == u {
		return e.V
	}
	return e.U
}

// firstHeardPayload is the stage-2 frame body.
type firstHeardPayload struct {
	FirstHeard map[radio.NodeID]int64
}

// colorEntry carries one virtual node's proposal or decision.
type colorEntry struct {
	Edge  edgeKey
	Color int
}

// colorBundle is one simulator's coloring-state snapshot for a step.
type colorBundle struct {
	From    radio.NodeID
	Entries []colorEntry
}

// exchangePayload is the frame body of coloring exchange epochs: the
// sender's own bundle plus any bundles it is relaying.
type exchangePayload struct {
	Bundles []colorBundle
}

// RunCGCast executes one CGCAST broadcast over the given network:
// the full setup pipeline (stages 1–4) followed by one dissemination.
// To amortize the setup over many broadcasts, use PrepareCGCast and
// BroadcastSession.Disseminate instead.
func RunCGCast(nw *radio.Network, cfg BroadcastConfig) (*BroadcastResult, error) {
	return RunCGCastCtx(context.Background(), nw, cfg)
}

// RunCGCastCtx is RunCGCast with cooperative cancellation: ctx is
// checked between pipeline stages and polled throughout each one, so
// a long setup or dissemination stops early when ctx is cancelled.
func RunCGCastCtx(ctx context.Context, nw *radio.Network, cfg BroadcastConfig) (*BroadcastResult, error) {
	session, err := PrepareCGCastCtx(ctx, nw, SessionConfig{
		Params: cfg.Params,
		Mode:   cfg.Mode,
		Seed:   cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	dres, err := session.DisseminateCtx(ctx, cfg.D, cfg.Source, cfg.Message, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	res := &BroadcastResult{
		SetupSlots:          session.SetupSlots(),
		DissemScheduleSlots: dres.ScheduleSlots,
		TotalSlots:          session.SetupSlots() + dres.ScheduleSlots,
		AllInformedAt:       dres.AllInformedAt,
		AllInformed:         dres.AllInformed,
		Informed:            dres.Informed,
		ColoringPhases:      session.phases,
		Radio:               session.setupRadio,
	}
	res.Radio.Accumulate(dres.Radio)
	// Every contributing engine run completed or we would have errored
	// out above; Accumulate leaves Completed alone, so set it from the
	// dissemination run.
	res.Radio.Completed = dres.Radio.Completed
	session.fillColoringStats(res)
	return res, nil
}

// SessionConfig configures the reusable setup of CGCAST (stages 1–4).
type SessionConfig struct {
	// Params are the model parameters (normalized by PrepareCGCast).
	Params Params
	// Mode selects exchange fidelity; zero value means ExchangeAbstract.
	Mode BroadcastMode
	// Seed drives the setup randomness.
	Seed uint64
}

// BroadcastSession is the product of CGCAST's setup: discovered
// neighbors, per-edge dedicated channels, and a proper 2Δ edge
// coloring. The session can disseminate any number of messages from
// any sources, each costing only the O~(D·Δ) dissemination schedule —
// this is where CGCAST's one-time setup amortizes.
type BroadcastSession struct {
	nw         *radio.Network
	p          Params
	mode       BroadcastMode
	n          int
	edges      []map[edgeKey]*edgeState
	dropped    map[edgeKey]bool
	setupSlots int64
	setupRadio radio.Stats
	phases     int
	// schedules[u] maps color -> u's local dedicated channel (-1 when
	// none), precomputed once: every dissemination reuses it read-only.
	schedules [][]int32
}

// PrepareCGCast runs CGCAST stages 1–4 (discovery, dedicated-channel
// fixing, edge coloring, color announcement) and returns the reusable
// session.
func PrepareCGCast(nw *radio.Network, cfg SessionConfig) (*BroadcastSession, error) {
	return PrepareCGCastCtx(context.Background(), nw, cfg)
}

// PrepareCGCastCtx is PrepareCGCast with cooperative cancellation: ctx
// is checked between coloring phases and polled throughout each one.
func PrepareCGCastCtx(ctx context.Context, nw *radio.Network, cfg SessionConfig) (*BroadcastSession, error) {
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	p := cfg.Params
	if err := p.Normalize(); err != nil {
		return nil, err
	}
	mode := cfg.Mode
	if mode == 0 {
		mode = ExchangeAbstract
	}
	if ctx == nil {
		ctx = context.Background()
	}
	d := &cgcastDriver{
		ctx:    ctx,
		nw:     nw,
		p:      p,
		mode:   mode,
		master: rng.New(cfg.Seed),
		n:      nw.Graph.N(),
	}
	return d.prepare()
}

// SetupSlots returns the slot cost of stages 1–4.
func (s *BroadcastSession) SetupSlots() int64 { return s.setupSlots }

// ColoringPhases returns the number of coloring phases executed.
func (s *BroadcastSession) ColoringPhases() int { return s.phases }

// EdgesColored returns the number of graph edges with a color at both
// endpoints.
func (s *BroadcastSession) EdgesColored() int {
	colored := 0
	for _, e := range s.nw.Graph.Edges() {
		key := mkEdgeKey(radio.NodeID(e.U), radio.NodeID(e.V))
		if st, ok := s.edges[e.U][key]; ok && st.color != coloring.NoColor {
			colored++
		}
	}
	return colored
}

// DissemResult reports one dissemination over a prepared session.
type DissemResult struct {
	// ScheduleSlots is the dissemination schedule length (D·2Δ·rounds·lgΔ).
	ScheduleSlots int64
	// AllInformedAt is the slot after which every node held the
	// message, or -1.
	AllInformedAt int64
	// AllInformed reports whether every node held the message.
	AllInformed bool
	// Informed[u] reports whether node u held the message at the end.
	Informed []bool
	// Radio holds the dissemination engine's counters (deliveries,
	// collisions, jammed listener-slots).
	Radio radio.Stats
}

type cgcastDriver struct {
	ctx    context.Context
	nw     *radio.Network
	p      Params
	mode   BroadcastMode
	master *rng.Source
	n      int

	// exchangeSlots is the canonical cost of one CSEEK execution,
	// charged per exchange in both modes.
	exchangeSlots int64

	// Per-node edge state established after stages 1–2.
	edges   []map[edgeKey]*edgeState // indexed by node
	dropped map[edgeKey]bool

	setupSlots int64
	setupRadio radio.Stats // engine counters of full-mode exchanges
	stage      int         // monotone counter used for RNG stream separation
}

// edgeState is one endpoint's view of an incident edge.
type edgeState struct {
	// localCh is this endpoint's local label of the dedicated channel.
	localCh int32
	// color is the final edge color, or coloring.NoColor.
	color int
	// sim is the coloring state if this endpoint simulates the edge.
	sim *coloring.NodeState
}

func (d *cgcastDriver) prepare() (*BroadcastSession, error) {
	// Canonical exchange cost: one CSEEK execution length.
	probe, err := NewCSeek(d.p, Env{ID: 0, C: d.p.C, Rand: rng.New(1)})
	if err != nil {
		return nil, err
	}
	d.exchangeSlots = probe.TotalSlots()

	if err := d.establishEdges(); err != nil {
		return nil, err
	}
	phases := scaledSteps(d.p.Tuning.ColoringPhases, 1, d.p.LgN())
	if err := d.colorEdges(phases); err != nil {
		return nil, err
	}
	if err := d.announceColors(); err != nil {
		return nil, err
	}
	s := &BroadcastSession{
		nw:         d.nw,
		p:          d.p,
		mode:       d.mode,
		n:          d.n,
		edges:      d.edges,
		dropped:    d.dropped,
		setupSlots: d.setupSlots,
		setupRadio: d.setupRadio,
		phases:     phases,
	}
	s.buildSchedules()
	return s, nil
}

// buildSchedules derives each node's color -> dedicated-channel map
// from the final (post-drop) edge states. The session's whole point is
// many disseminations per setup, so this is computed once, not per
// message.
func (s *BroadcastSession) buildSchedules() {
	numColors := 2 * s.p.Delta
	s.schedules = make([][]int32, s.n)
	for u := 0; u < s.n; u++ {
		schedule := make([]int32, numColors)
		for i := range schedule {
			schedule[i] = -1
		}
		for _, key := range sortedEdgeKeys(s.edges[u]) {
			if st := s.edges[u][key]; st.color >= 0 && st.color < numColors {
				schedule[st.color] = st.localCh
			}
		}
		s.schedules[u] = schedule
	}
}

// nodeRand returns a fresh deterministic stream for (stage, node).
func (d *cgcastDriver) nodeRand(u int) *rng.Source {
	return d.master.Split(uint64(d.stage)<<32 | uint64(u))
}

// nextStage advances the RNG stream domain separator.
func (d *cgcastDriver) nextStage() { d.stage++ }

// ----- Stages 1 & 2: discovery and dedicated-channel fixing -----

func (d *cgcastDriver) establishEdges() error {
	d.edges = make([]map[edgeKey]*edgeState, d.n)
	for u := range d.edges {
		d.edges[u] = make(map[edgeKey]*edgeState)
	}
	d.dropped = make(map[edgeKey]bool)

	if d.mode == ExchangeAbstract {
		// Oracle: adjacency from ground truth; the dedicated channel is
		// the lowest-numbered shared global channel. Charge two CSEEK
		// executions (stages 1 and 2).
		for _, e := range d.nw.Graph.Edges() {
			u, v := int(e.U), int(e.V)
			shared := d.nw.Assign.SharedChannels(u, v)
			if len(shared) == 0 {
				d.dropped[mkEdgeKey(radio.NodeID(e.U), radio.NodeID(e.V))] = true
				continue
			}
			g := shared[0]
			key := mkEdgeKey(radio.NodeID(e.U), radio.NodeID(e.V))
			d.edges[u][key] = &edgeState{localCh: d.nw.Assign.Local(u, g), color: coloring.NoColor}
			d.edges[v][key] = &edgeState{localCh: d.nw.Assign.Local(v, g), color: coloring.NoColor}
		}
		d.setupSlots += 2 * d.exchangeSlots
		d.nextStage()
		d.nextStage()
		return nil
	}

	// Full mode, stage 1: CSEEK with channel logging.
	stage1 := make([]*CSeek, d.n)
	protos := make([]radio.Protocol, d.n)
	for u := 0; u < d.n; u++ {
		s, err := NewCSeek(d.p, Env{ID: radio.NodeID(u), C: d.p.C, Rand: d.nodeRand(u)})
		if err != nil {
			return err
		}
		s.RecordChannels()
		stage1[u] = s
		protos[u] = s
	}
	NewSeekBank(stage1)
	if err := d.runEngine(protos); err != nil {
		return err
	}
	d.nextStage()

	// Stage 2: CSEEK carrying the first-heard maps.
	stage2 := make([]*CSeek, d.n)
	for u := 0; u < d.n; u++ {
		s, err := NewCSeek(d.p, Env{ID: radio.NodeID(u), C: d.p.C, Rand: d.nodeRand(u)})
		if err != nil {
			return err
		}
		fh := make(map[radio.NodeID]int64, stage1[u].DiscoveredCount())
		for _, v := range stage1[u].Discovered() {
			fh[v] = stage1[u].Observation(v).Slot
		}
		s.SetPayload(firstHeardPayload{FirstHeard: fh})
		stage2[u] = s
		protos[u] = s
	}
	NewSeekBank(stage2)
	if err := d.runEngine(protos); err != nil {
		return err
	}
	d.nextStage()

	// Fix dedicated channels: u establishes (u,v) iff it heard v in
	// stage 1 and received v's first-heard map naming u in stage 2.
	for u := 0; u < d.n; u++ {
		uid := radio.NodeID(u)
		for _, v := range stage1[u].Discovered() {
			tUV := stage1[u].Observation(v).Slot
			obs2 := stage2[u].Observation(v)
			if obs2 == nil {
				continue
			}
			fh, ok := obs2.Payload.(firstHeardPayload)
			if !ok {
				continue
			}
			tVU, ok := fh.FirstHeard[uid]
			if !ok {
				continue
			}
			tMin := tUV
			if tVU < tMin {
				tMin = tVU
			}
			ch, ok := stage1[u].ChannelAt(tMin)
			if !ok {
				continue
			}
			d.edges[u][mkEdgeKey(uid, v)] = &edgeState{localCh: ch, color: coloring.NoColor}
		}
	}

	// Account edges established on one side only (or neither).
	for _, e := range d.nw.Graph.Edges() {
		key := mkEdgeKey(radio.NodeID(e.U), radio.NodeID(e.V))
		_, atU := d.edges[e.U][key]
		_, atV := d.edges[e.V][key]
		if !atU || !atV {
			d.dropped[key] = true
			delete(d.edges[e.U], key)
			delete(d.edges[e.V], key)
		}
	}
	return nil
}

// ----- Stage 3: line-graph coloring over exchange epochs -----

func (d *cgcastDriver) colorEdges(phases int) error {
	// Simulators: the smaller endpoint owns the virtual node.
	for u := 0; u < d.n; u++ {
		for key, st := range d.edges[u] {
			if key.U == radio.NodeID(u) {
				st.sim = coloring.NewNodeState(2 * d.p.Delta)
			}
		}
	}

	// Iterate incident edges in sorted order: Propose draws from the
	// node's per-stage stream, so map-iteration order would make the
	// realized coloring differ between same-seed runs. The edge sets
	// are fixed for the whole coloring (drops happen later, in
	// announceColors), so sort once per node.
	keysByNode := make([][]edgeKey, d.n)
	for u := 0; u < d.n; u++ {
		keysByNode[u] = sortedEdgeKeys(d.edges[u])
	}

	for phase := 0; phase < phases; phase++ {
		if err := d.ctx.Err(); err != nil {
			return err
		}
		// Step one: propose and exchange proposals two hops out.
		proposals := make([]map[edgeKey]int, d.n)
		for u := 0; u < d.n; u++ {
			r := d.nodeRand(u)
			proposals[u] = make(map[edgeKey]int)
			for _, key := range keysByNode[u] {
				st := d.edges[u][key]
				if st.sim != nil && st.sim.Active() {
					if p := st.sim.Propose(r); p != coloring.NoColor {
						proposals[u][key] = p
					}
				}
			}
		}
		d.nextStage()
		views, err := d.exchangeTwoHop(d.bundles(proposals))
		if err != nil {
			return err
		}
		// Resolve conflicts against every adjacent proposal seen.
		decisions := make([]map[edgeKey]int, d.n)
		for u := 0; u < d.n; u++ {
			decisions[u] = make(map[edgeKey]int)
			for _, key := range keysByNode[u] {
				st := d.edges[u][key]
				if st.sim == nil || !st.sim.Active() {
					continue
				}
				if _, proposed := proposals[u][key]; !proposed {
					st.sim.ResolveConflicts(nil)
					continue
				}
				conflicts := adjacentColors(key, views[u], proposals[u])
				if st.sim.ResolveConflicts(conflicts) {
					st.color = st.sim.Color()
					decisions[u][key] = st.color
				}
			}
		}
		// Step two: exchange decisions, strike colors from plates.
		views, err = d.exchangeTwoHop(d.bundles(decisions))
		if err != nil {
			return err
		}
		for u := 0; u < d.n; u++ {
			for key, st := range d.edges[u] {
				if st.sim == nil || !st.sim.Active() {
					continue
				}
				st.sim.ObserveDecisions(adjacentColors(key, views[u], decisions[u]))
			}
		}
	}
	return nil
}

// sortedEdgeKeys returns a node's incident edge keys in canonical
// order, for deterministic iteration over the edge-state map.
func sortedEdgeKeys(edges map[edgeKey]*edgeState) []edgeKey {
	keys := make([]edgeKey, 0, len(edges))
	for key := range edges {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].U != keys[j].U {
			return keys[i].U < keys[j].U
		}
		return keys[i].V < keys[j].V
	})
	return keys
}

// bundles converts per-node entry maps into per-node colorBundles.
func (d *cgcastDriver) bundles(entries []map[edgeKey]int) []colorBundle {
	out := make([]colorBundle, d.n)
	for u := 0; u < d.n; u++ {
		b := colorBundle{From: radio.NodeID(u)}
		keys := make([]edgeKey, 0, len(entries[u]))
		for key := range entries[u] {
			keys = append(keys, key)
		}
		// Deterministic ordering keeps runs reproducible.
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].U != keys[j].U {
				return keys[i].U < keys[j].U
			}
			return keys[i].V < keys[j].V
		})
		for _, key := range keys {
			b.Entries = append(b.Entries, colorEntry{Edge: key, Color: entries[u][key]})
		}
		out[u] = b
	}
	return out
}

// adjacentColors collects colors attached to edges adjacent to key
// (sharing an endpoint), from both the node's own entries and every
// bundle it received.
func adjacentColors(key edgeKey, received map[radio.NodeID]colorBundle, own map[edgeKey]int) []int {
	var out []int
	adjacent := func(e edgeKey) bool {
		if e == key {
			return false
		}
		return e.U == key.U || e.U == key.V || e.V == key.U || e.V == key.V
	}
	for e, c := range own {
		if adjacent(e) {
			out = append(out, c)
		}
	}
	for _, b := range received {
		for _, entry := range b.Entries {
			if adjacent(entry.Edge) {
				out = append(out, entry.Color)
			}
		}
	}
	return out
}

// exchangeTwoHop delivers every node's bundle to all nodes within two
// hops, via two one-hop exchanges (the second relays the first), and
// returns each node's merged view. Cost: two CSEEK executions.
func (d *cgcastDriver) exchangeTwoHop(own []colorBundle) ([]map[radio.NodeID]colorBundle, error) {
	payloadsA := make([]any, d.n)
	for u := 0; u < d.n; u++ {
		payloadsA[u] = exchangePayload{Bundles: []colorBundle{own[u]}}
	}
	recvA, err := d.exchange(payloadsA)
	if err != nil {
		return nil, err
	}
	payloadsB := make([]any, d.n)
	for u := 0; u < d.n; u++ {
		relay := exchangePayload{Bundles: []colorBundle{own[u]}}
		for _, data := range recvA[u] {
			if ep, ok := data.(exchangePayload); ok {
				relay.Bundles = append(relay.Bundles, ep.Bundles...)
			}
		}
		payloadsB[u] = relay
	}
	recvB, err := d.exchange(payloadsB)
	if err != nil {
		return nil, err
	}

	views := make([]map[radio.NodeID]colorBundle, d.n)
	for u := 0; u < d.n; u++ {
		view := make(map[radio.NodeID]colorBundle)
		for _, recv := range []map[radio.NodeID]any{recvA[u], recvB[u]} {
			for _, data := range recv {
				ep, ok := data.(exchangePayload)
				if !ok {
					continue
				}
				for _, b := range ep.Bundles {
					if b.From != radio.NodeID(u) {
						view[b.From] = b
					}
				}
			}
		}
		views[u] = view
	}
	return views, nil
}

// exchange performs one one-hop all-pairs exchange: every node's
// payload reaches every neighbor. In full mode this is a CSEEK
// execution; in abstract mode an oracle at identical slot cost.
func (d *cgcastDriver) exchange(payloads []any) ([]map[radio.NodeID]any, error) {
	defer d.nextStage()
	if err := d.ctx.Err(); err != nil {
		return nil, err
	}
	if d.mode == ExchangeAbstract {
		out := make([]map[radio.NodeID]any, d.n)
		for u := 0; u < d.n; u++ {
			out[u] = make(map[radio.NodeID]any)
		}
		for _, e := range d.nw.Graph.Edges() {
			out[e.U][radio.NodeID(e.V)] = payloads[e.V]
			out[e.V][radio.NodeID(e.U)] = payloads[e.U]
		}
		d.setupSlots += d.exchangeSlots
		return out, nil
	}

	seeks := make([]*CSeek, d.n)
	protos := make([]radio.Protocol, d.n)
	for u := 0; u < d.n; u++ {
		s, err := NewCSeek(d.p, Env{ID: radio.NodeID(u), C: d.p.C, Rand: d.nodeRand(u)})
		if err != nil {
			return nil, err
		}
		s.SetPayload(payloads[u])
		seeks[u] = s
		protos[u] = s
	}
	NewSeekBank(seeks)
	if err := d.runEngine(protos); err != nil {
		return nil, err
	}
	out := make([]map[radio.NodeID]any, d.n)
	for u := 0; u < d.n; u++ {
		out[u] = make(map[radio.NodeID]any)
		for _, v := range seeks[u].Discovered() {
			out[u][v] = seeks[u].Observation(v).Payload
		}
	}
	return out, nil
}

// runEngine executes one full-schedule protocol set and charges its
// slots to setup.
func (d *cgcastDriver) runEngine(protos []radio.Protocol) error {
	e, err := radio.NewEngine(d.nw, protos)
	if err != nil {
		return err
	}
	st, err := e.RunUntilCtx(d.ctx, d.exchangeSlots+1, nil)
	if err != nil {
		return err
	}
	// A fixed-length schedule that fails to finish is an engine or
	// schedule bug in the static model — but under a dynamic topology
	// a down node legitimately freezes mid-schedule, so partial
	// exchanges are an expected degradation outcome there.
	if !st.Completed && d.nw.Topology == nil {
		return fmt.Errorf("core: exchange stage did not complete in %d slots", d.exchangeSlots)
	}
	d.setupRadio.Accumulate(st)
	d.setupSlots += d.exchangeSlots
	return nil
}

// ----- Stage 4: color announcement -----

func (d *cgcastDriver) announceColors() error {
	announcements := make([]map[edgeKey]int, d.n)
	for u := 0; u < d.n; u++ {
		announcements[u] = make(map[edgeKey]int)
		for key, st := range d.edges[u] {
			if st.sim != nil && st.sim.Color() != coloring.NoColor {
				announcements[u][key] = st.sim.Color()
			}
		}
	}
	d.nextStage()
	recv, err := d.exchange(anySlice(d.bundles(announcements)))
	if err != nil {
		return err
	}
	for u := 0; u < d.n; u++ {
		uid := radio.NodeID(u)
		for key, st := range d.edges[u] {
			if st.sim != nil {
				st.color = st.sim.Color()
				continue
			}
			// Non-simulator endpoint: look for the announcement from the
			// simulator (the other endpoint).
			simID := key.other(uid)
			data, ok := recv[u][simID]
			if !ok {
				continue
			}
			ep, ok := data.(exchangePayload)
			if !ok {
				continue
			}
			for _, b := range ep.Bundles {
				if b.From != simID {
					continue
				}
				for _, entry := range b.Entries {
					if entry.Edge == key {
						st.color = entry.Color
					}
				}
			}
		}
	}
	// Drop edges that remain uncolored at either endpoint.
	for _, e := range d.nw.Graph.Edges() {
		key := mkEdgeKey(radio.NodeID(e.U), radio.NodeID(e.V))
		stU, okU := d.edges[e.U][key]
		stV, okV := d.edges[e.V][key]
		if !okU || !okV {
			continue // already dropped
		}
		if stU.color == coloring.NoColor || stV.color == coloring.NoColor {
			d.dropped[key] = true
			delete(d.edges[e.U], key)
			delete(d.edges[e.V], key)
		}
	}
	return nil
}

func anySlice(bundles []colorBundle) []any {
	out := make([]any, len(bundles))
	for i, b := range bundles {
		out[i] = exchangePayload{Bundles: []colorBundle{b}}
	}
	return out
}

// ----- Stage 5: dissemination -----

// Disseminate runs one message dissemination over the prepared
// session: D phases of 2Δ color-steps, each step Θ(lg n) back-off
// rounds of lg Δ slots on the edge's dedicated channel.
func (s *BroadcastSession) Disseminate(dD int, source radio.NodeID, msg any, seed uint64) (*DissemResult, error) {
	return s.DisseminateCtx(context.Background(), dD, source, msg, seed)
}

// DisseminateCtx is Disseminate with cooperative cancellation: ctx is
// polled throughout the dissemination run.
func (s *BroadcastSession) DisseminateCtx(ctx context.Context, dD int, source radio.NodeID, msg any, seed uint64) (*DissemResult, error) {
	if dD < 1 {
		return nil, fmt.Errorf("core: D must be >= 1, got %d", dD)
	}
	if int(source) < 0 || int(source) >= s.n {
		return nil, fmt.Errorf("core: source %d out of range", source)
	}
	rounds := scaledSteps(s.p.Tuning.DissemRounds, 1, s.p.LgN())
	protos := make([]radio.Protocol, s.n)
	dps := make([]*dissemProto, s.n)
	master := rng.New(seed)
	for u := 0; u < s.n; u++ {
		dp := &dissemProto{
			env:      Env{ID: radio.NodeID(u), C: s.p.C, Rand: master.Split(uint64(u))},
			schedule: s.schedules[u],
			phases:   dD,
			rounds:   rounds,
			lgDelta:  s.p.LgDelta(),
			delta:    s.p.Delta,
			informed: radio.NodeID(u) == source,
			msg:      msg,
			frame:    dissemMessage{Body: msg},
		}
		dps[u] = dp
		protos[u] = dp
	}
	newDissemBank(dps)
	e, err := radio.NewEngine(s.nw, protos)
	if err != nil {
		return nil, err
	}
	scheduleSlots := dps[0].totalSlots()

	allInformedAt := int64(-1)
	st, err := e.RunUntilCtx(ctx, scheduleSlots+1, func(slot int64) bool {
		if allInformedAt >= 0 {
			return false // keep running the schedule to full length
		}
		for _, dp := range dps {
			if !dp.informed {
				return false
			}
		}
		allInformedAt = slot
		return false
	})
	if err != nil {
		return nil, err
	}
	// See runEngine: incomplete fixed schedules are a bug in the
	// static model, a measured outcome under a dynamic topology (down
	// nodes freeze mid-schedule).
	if !st.Completed && s.nw.Topology == nil {
		return nil, fmt.Errorf("core: dissemination did not complete in %d slots", scheduleSlots)
	}

	res := &DissemResult{
		ScheduleSlots: scheduleSlots,
		AllInformedAt: allInformedAt,
		AllInformed:   true,
		Informed:      make([]bool, s.n),
		Radio:         st,
	}
	for u, dp := range dps {
		res.Informed[u] = dp.informed
		if !dp.informed {
			res.AllInformed = false
		}
	}
	return res, nil
}

func (s *BroadcastSession) fillColoringStats(res *BroadcastResult) {
	colored := make(map[graph.Edge]int)
	for _, e := range s.nw.Graph.Edges() {
		key := mkEdgeKey(radio.NodeID(e.U), radio.NodeID(e.V))
		stU, okU := s.edges[e.U][key]
		if okU && stU.color != coloring.NoColor {
			colored[e] = stU.color
		}
	}
	res.EdgesColored = len(colored)
	res.EdgesDropped = s.nw.Graph.M() - len(colored)
	res.ColoringValid = validPartialEdgeColoring(s.nw.Graph, colored)
}

// validPartialEdgeColoring checks properness on the colored subgraph.
func validPartialEdgeColoring(g *graph.Graph, colors map[graph.Edge]int) bool {
	type slot struct {
		node  int32
		color int
	}
	seen := make(map[slot]bool)
	for e, c := range colors {
		for _, end := range [2]int32{e.U, e.V} {
			key := slot{node: end, color: c}
			if seen[key] {
				return false
			}
			seen[key] = true
		}
	}
	return true
}

// dissemProto is the stage-5 per-node protocol: D phases × 2Δ steps ×
// rounds × lgΔ slots, with step s dedicated to edge color s.
type dissemProto struct {
	env      Env
	schedule []int32 // color -> local dedicated channel, -1 if none
	phases   int
	rounds   int
	lgDelta  int
	delta    int
	informed bool
	msg      any
	// frame is the pre-boxed dissemMessage carrying msg, refreshed
	// when the node learns the message, so Act never allocates.
	frame any

	slot        int64
	informedAt  int64
	wasInformed bool // informed state latched at the start of each step

	// bank/bankIdx back-reference the dissemBank (range dispatch).
	bank    *dissemBank
	bankIdx int
}

var _ radio.Protocol = (*dissemProto)(nil)

// dissemMessage is the stage-5 frame body.
type dissemMessage struct {
	Body any
}

func (dp *dissemProto) slotsPerStep() int64 { return int64(dp.rounds) * int64(dp.lgDelta) }

func (dp *dissemProto) totalSlots() int64 {
	return int64(dp.phases) * int64(len(dp.schedule)) * dp.slotsPerStep()
}

// Act implements radio.Protocol.
func (dp *dissemProto) Act(_ int64) radio.Action {
	perStep := dp.slotsPerStep()
	step := int(dp.slot / perStep % int64(len(dp.schedule)))
	slotInStep := dp.slot % perStep
	if slotInStep == 0 {
		// Latch the informed state: a node that learns the message
		// mid-step starts forwarding at the next step, keeping the
		// per-step roles fixed as in the paper's analysis.
		dp.wasInformed = dp.informed
	}
	ch := dp.schedule[step]
	if ch < 0 {
		return radio.Action{Kind: radio.Idle}
	}
	if !dp.wasInformed {
		return radio.Action{Kind: radio.Listen, Ch: int(ch)}
	}
	// Back-off broadcast: slot i of the round broadcasts with
	// probability 2^i/2^lgΔ, sweeping contention levels.
	i := int(slotInStep % int64(dp.lgDelta))
	prob := float64(int64(1)<<uint(i)) / float64(int64(1)<<uint(dp.lgDelta))
	if dp.env.Rand.Bernoulli(prob) {
		return radio.Action{Kind: radio.Broadcast, Ch: int(ch), Data: dp.frame}
	}
	return radio.Action{Kind: radio.Idle, Ch: int(ch)}
}

// Observe implements radio.Protocol.
func (dp *dissemProto) Observe(_ int64, msg *radio.Message) {
	if msg == nil {
		dp.observeOutcome(false, nil)
		return
	}
	dp.observeOutcome(true, msg.Data)
}

// observeOutcome is Observe with the delivery already unpacked, shared
// by both dispatch modes (the dissemBank feeds outcomes here).
func (dp *dissemProto) observeOutcome(heard bool, data any) {
	if heard && !dp.informed {
		if dm, ok := data.(dissemMessage); ok {
			dp.informed = true
			dp.informedAt = dp.slot
			dp.msg = dm.Body
			dp.frame = dissemMessage{Body: dm.Body}
		}
	}
	dp.slot++
}

// Done implements radio.Protocol.
func (dp *dissemProto) Done() bool { return dp.slot >= dp.totalSlots() }

// MinDoneSlots implements radio.FixedSchedule: the dissemination
// schedule is fixed-length, so the engine can skip Done polls until it
// ends.
func (dp *dissemProto) MinDoneSlots() int64 { return dp.totalSlots() }
