package core

import (
	"testing"

	"crn/internal/chanassign"
	"crn/internal/graph"
	"crn/internal/radio"
	"crn/internal/rng"
)

// discoveryInstance bundles a generated network with normalized params.
type discoveryInstance struct {
	g  *graph.Graph
	a  *chanassign.Assignment
	p  Params
	nw *radio.Network
}

// buildInstance derives Params from the realized graph/assignment pair.
func buildInstance(t *testing.T, g *graph.Graph, a *chanassign.Assignment) *discoveryInstance {
	t.Helper()
	k, kmax := a.OverlapRange(g)
	p := Params{N: g.N(), C: a.C, K: k, KMax: kmax, Delta: g.MaxDegree()}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	return &discoveryInstance{g: g, a: a, p: p, nw: &radio.Network{Graph: g, Assign: a}}
}

// runDiscovery runs one Discoverer per node to schedule end and returns
// the protocols.
func runDiscovery(t *testing.T, in *discoveryInstance, mk func(u int, env Env) Discoverer) []Discoverer {
	t.Helper()
	master := rng.New(0xD15C0)
	n := in.g.N()
	ds := make([]Discoverer, n)
	protos := make([]radio.Protocol, n)
	for u := 0; u < n; u++ {
		env := Env{ID: radio.NodeID(u), C: in.p.C, Rand: master.Split(uint64(u))}
		ds[u] = mk(u, env)
		protos[u] = ds[u]
	}
	e, err := radio.NewEngine(in.nw, protos)
	if err != nil {
		t.Fatal(err)
	}
	budget := ds[0].TotalSlots() + 16
	st := e.Run(budget)
	if !st.Completed {
		t.Fatalf("discovery did not complete within its own schedule (%d slots)", budget)
	}
	return ds
}

// assertFullDiscovery checks every node heard every graph neighbor.
func assertFullDiscovery(t *testing.T, in *discoveryInstance, ds []Discoverer) {
	t.Helper()
	missing := 0
	for u := 0; u < in.g.N(); u++ {
		found := make(map[radio.NodeID]bool)
		for _, id := range ds[u].Discovered() {
			found[id] = true
		}
		for _, v := range in.g.Neighbors(u) {
			if !found[radio.NodeID(v)] {
				missing++
				t.Logf("node %d never heard neighbor %d", u, v)
			}
		}
	}
	if missing > 0 {
		t.Errorf("%d (node, neighbor) pairs undiscovered", missing)
	}
}

func TestCSeekTwoNodes(t *testing.T) {
	r := rng.New(1)
	a, err := chanassign.Matching(4, [][2]int{{0, 1}, {2, 3}}, r)
	if err != nil {
		t.Fatal(err)
	}
	in := buildInstance(t, graph.TwoNode(), a)
	ds := runDiscovery(t, in, func(u int, env Env) Discoverer {
		s, err := NewCSeek(in.p, env)
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
	assertFullDiscovery(t, in, ds)
}

func TestCSeekSmallRandomNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	for _, seed := range []uint64{1, 2, 3} {
		g, err := graph.GNP(16, 0.3, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		a, err := chanassign.SharedPool(16, 5, 2, 12, rng.New(seed+100))
		if err != nil {
			t.Fatal(err)
		}
		in := buildInstance(t, g, a)
		ds := runDiscovery(t, in, func(u int, env Env) Discoverer {
			s, err := NewCSeek(in.p, env)
			if err != nil {
				t.Fatal(err)
			}
			return s
		})
		assertFullDiscovery(t, in, ds)
	}
}

// TestCSeekCrowdedStar exercises part two: with c=2 and Δ=16 = 8c, the
// shared core channel is "crowded" in the Lemma 3 sense, so part one
// alone cannot finish the job at these schedule lengths.
func TestCSeekCrowdedStar(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const n = 17 // center + 16 leaves
	g := graph.Star(n)
	a, err := chanassign.SharedCore(n, 2, 1, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	in := buildInstance(t, g, a)
	ds := runDiscovery(t, in, func(u int, env Env) Discoverer {
		s, err := NewCSeek(in.p, env)
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
	assertFullDiscovery(t, in, ds)
}

func TestCSeekDeterminism(t *testing.T) {
	run := func() []radio.NodeID {
		g := graph.Star(6)
		a, err := chanassign.SharedCore(6, 3, 1, rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		in := buildInstance(t, g, a)
		ds := runDiscovery(t, in, func(u int, env Env) Discoverer {
			s, err := NewCSeek(in.p, env)
			if err != nil {
				t.Fatal(err)
			}
			return s
		})
		out := ds[0].Discovered()
		return out
	}
	a1 := run()
	a2 := run()
	if len(a1) != len(a2) {
		t.Fatalf("discovered %d vs %d across identical runs", len(a1), len(a2))
	}
	s1 := make(map[radio.NodeID]bool)
	for _, id := range a1 {
		s1[id] = true
	}
	for _, id := range a2 {
		if !s1[id] {
			t.Fatalf("run 2 discovered %d, run 1 did not", id)
		}
	}
}

func TestCSeekObservationPayloadAndSlot(t *testing.T) {
	r := rng.New(2)
	a, err := chanassign.Matching(3, [][2]int{{0, 0}}, r)
	if err != nil {
		t.Fatal(err)
	}
	in := buildInstance(t, graph.TwoNode(), a)
	master := rng.New(0xFEED)
	mk := func(u int) *CSeek {
		env := Env{ID: radio.NodeID(u), C: in.p.C, Rand: master.Split(uint64(u))}
		s, err := NewCSeek(in.p, env)
		if err != nil {
			t.Fatal(err)
		}
		s.SetPayload(100 + u)
		return s
	}
	s0, s1 := mk(0), mk(1)
	e, err := radio.NewEngine(in.nw, []radio.Protocol{s0, s1})
	if err != nil {
		t.Fatal(err)
	}
	if st := e.Run(s0.TotalSlots() + 1); !st.Completed {
		t.Fatal("did not complete")
	}
	obs := s0.Observation(1)
	if obs == nil {
		t.Fatal("node 0 never heard node 1")
	}
	if obs.Payload != 101 {
		t.Errorf("payload = %v, want 101", obs.Payload)
	}
	if obs.Slot < 0 || obs.Slot >= s0.TotalSlots() {
		t.Errorf("first-heard slot %d outside run", obs.Slot)
	}
	if s0.Observation(99) != nil {
		t.Error("Observation for unknown id should be nil")
	}
}

func TestCSeekChannelLog(t *testing.T) {
	r := rng.New(3)
	a, err := chanassign.Matching(3, [][2]int{{1, 2}}, r)
	if err != nil {
		t.Fatal(err)
	}
	in := buildInstance(t, graph.TwoNode(), a)
	master := rng.New(0xBEEF)
	mk := func(u int) *CSeek {
		env := Env{ID: radio.NodeID(u), C: in.p.C, Rand: master.Split(uint64(u))}
		s, err := NewCSeek(in.p, env)
		if err != nil {
			t.Fatal(err)
		}
		s.RecordChannels()
		return s
	}
	s0, s1 := mk(0), mk(1)
	e, err := radio.NewEngine(in.nw, []radio.Protocol{s0, s1})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(s0.TotalSlots() + 1)

	// The log covers every slot of the run.
	for _, s := range []*CSeek{s0, s1} {
		for slot := int64(0); slot < s.TotalSlots(); slot++ {
			ch, ok := s.ChannelAt(slot)
			if !ok {
				t.Fatalf("missing channel log entry at slot %d", slot)
			}
			if ch < 0 || int(ch) >= in.p.C {
				t.Fatalf("logged channel %d out of range", ch)
			}
		}
		if _, ok := s.ChannelAt(s.TotalSlots()); ok {
			t.Error("channel log extends past the run")
		}
	}

	// Cross-check the meeting invariant: when 0 first heard 1, both
	// were on the same global channel according to their own logs.
	obs := s0.Observation(1)
	if obs == nil {
		t.Fatal("node 0 never heard node 1")
	}
	ch0, _ := s0.ChannelAt(obs.Slot)
	ch1, _ := s1.ChannelAt(obs.Slot)
	g0 := in.a.Global(0, int(ch0))
	g1 := in.a.Global(1, int(ch1))
	if g0 != g1 {
		t.Errorf("at first contact, node 0 on global %d but node 1 on global %d", g0, g1)
	}
}

func TestCSeekCountsAccumulate(t *testing.T) {
	// On a crowded star the center's counts must concentrate on the
	// single shared channel.
	const n = 17
	g := graph.Star(n)
	a, err := chanassign.SharedCore(n, 2, 1, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	in := buildInstance(t, g, a)
	ds := runDiscovery(t, in, func(u int, env Env) Discoverer {
		s, err := NewCSeek(in.p, env)
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
	center := ds[0].(*CSeek)
	counts := center.Counts()
	sharedLocal := in.a.Local(0, 0) // global channel 0 is the core
	other := 1 - int(sharedLocal)
	if counts[sharedLocal] <= counts[other] {
		t.Errorf("counts = %v: shared channel (local %d) not denser than private", counts, sharedLocal)
	}
}

func TestNewCSeekValidation(t *testing.T) {
	p := Params{N: 4, C: 3, K: 1, KMax: 1, Delta: 2}
	r := rng.New(1)
	if _, err := NewCSeek(p, Env{ID: 0, C: 2, Rand: r}); err == nil {
		t.Error("channel-count mismatch accepted")
	}
	if _, err := NewCSeek(p, Env{ID: 0, C: 3, Rand: nil}); err == nil {
		t.Error("nil RNG accepted")
	}
	if _, err := NewCSeek(Params{N: 0, C: 1, K: 1, KMax: 1, Delta: 1}, Env{C: 1, Rand: r}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestNewCKSeekValidation(t *testing.T) {
	p := Params{N: 8, C: 6, K: 2, KMax: 4, Delta: 3}
	r := rng.New(1)
	env := Env{ID: 0, C: 6, Rand: r}
	if _, err := NewCKSeek(p, env, 1, 3); err == nil {
		t.Error("k̂ < k accepted")
	}
	if _, err := NewCKSeek(p, env, 5, 3); err == nil {
		t.Error("k̂ > kmax accepted")
	}
	if _, err := NewCKSeek(p, env, 3, 9); err == nil {
		t.Error("Δ_k̂ > Δ accepted")
	}
	if _, err := NewCKSeek(p, env, 3, 2); err != nil {
		t.Errorf("valid CKSEEK rejected: %v", err)
	}
}

// TestCKSeekShorterSchedule asserts the Theorem 6 property that CKSEEK
// with k̂ > k runs strictly shorter than CSEEK on the same instance.
func TestCKSeekShorterSchedule(t *testing.T) {
	p := Params{N: 64, C: 8, K: 1, KMax: 6, Delta: 12}
	r := rng.New(1)
	env := Env{ID: 0, C: 8, Rand: r}
	cs, err := NewCSeek(p, env)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := NewCKSeek(p, env, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ck.TotalSlots() >= cs.TotalSlots() {
		t.Errorf("CKSEEK schedule %d not shorter than CSEEK %d", ck.TotalSlots(), cs.TotalSlots())
	}
}

// TestCKSeekFindsGoodNeighbors builds a heterogeneous instance and
// checks every node finds all neighbors sharing ≥ k̂ channels.
func TestCKSeekFindsGoodNeighbors(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	g, err := graph.Cycle(12)
	if err != nil {
		t.Fatal(err)
	}
	const c, k, kmax, khat = 8, 1, 4, 4
	a, err := chanassign.Heterogeneous(g, c, k, kmax, 0.5, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	in := buildInstance(t, g, a)

	// Δ_k̂: max number of neighbors sharing ≥ k̂ channels.
	deltaKhat := 0
	for u := 0; u < g.N(); u++ {
		good := 0
		for _, v := range g.Neighbors(u) {
			if a.SharedCount(u, int(v)) >= khat {
				good++
			}
		}
		if good > deltaKhat {
			deltaKhat = good
		}
	}

	ds := runDiscovery(t, in, func(u int, env Env) Discoverer {
		s, err := NewCKSeek(in.p, env, khat, deltaKhat)
		if err != nil {
			t.Fatal(err)
		}
		return s
	})

	missing := 0
	for u := 0; u < g.N(); u++ {
		found := make(map[radio.NodeID]bool)
		for _, id := range ds[u].Discovered() {
			found[id] = true
		}
		for _, v := range g.Neighbors(u) {
			if a.SharedCount(u, int(v)) >= khat && !found[radio.NodeID(v)] {
				missing++
				t.Logf("node %d never heard good neighbor %d", u, v)
			}
		}
	}
	if missing > 0 {
		t.Errorf("%d good-neighbor pairs undiscovered", missing)
	}
}

func TestNaiveSeekDiscovers(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	g := graph.Star(6)
	a, err := chanassign.SharedCore(6, 3, 2, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	in := buildInstance(t, g, a)
	ds := runDiscovery(t, in, func(u int, env Env) Discoverer {
		s, err := NewNaiveSeek(in.p, env)
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
	assertFullDiscovery(t, in, ds)
}

func TestUniformSeekDiscovers(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	g := graph.Star(8)
	a, err := chanassign.SharedCore(8, 4, 2, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	in := buildInstance(t, g, a)
	ds := runDiscovery(t, in, func(u int, env Env) Discoverer {
		s, err := NewUniformSeek(in.p, env)
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
	assertFullDiscovery(t, in, ds)
}

// TestScheduleShape pins the asymptotic shapes of the three schedule
// lengths: as Δ grows with everything else fixed, CSEEK's additive
// (kmax/k)·Δ term loses to the baselines' multiplicative Δ terms, so
// the baseline/CSEEK ratios must grow monotonically, and in the
// Δ-dominant extreme the ordering is CSEEK < UniformSeek < NaiveSeek.
func TestScheduleShape(t *testing.T) {
	slots := func(delta int, mk func(Params, Env) (int64, error)) int64 {
		p := Params{N: 4096, C: 16, K: 8, KMax: 8, Delta: delta}
		v, err := mk(p, Env{ID: 0, C: 16, Rand: rng.New(1)})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	cseek := func(p Params, env Env) (int64, error) {
		s, err := NewCSeek(p, env)
		if err != nil {
			return 0, err
		}
		return s.TotalSlots(), nil
	}
	uniform := func(p Params, env Env) (int64, error) {
		s, err := NewUniformSeek(p, env)
		if err != nil {
			return 0, err
		}
		return s.TotalSlots(), nil
	}
	naive := func(p Params, env Env) (int64, error) {
		s, err := NewNaiveSeek(p, env)
		if err != nil {
			return 0, err
		}
		return s.TotalSlots(), nil
	}

	deltas := []int{64, 512, 4095}
	var prevNaive, prevUniform float64
	for i, d := range deltas {
		cs := float64(slots(d, cseek))
		rn := float64(slots(d, naive)) / cs
		ru := float64(slots(d, uniform)) / cs
		if i > 0 && (rn <= prevNaive || ru <= prevUniform) {
			t.Errorf("Δ=%d: ratios not increasing (naive %f<=%f, uniform %f<=%f)",
				d, rn, prevNaive, ru, prevUniform)
		}
		prevNaive, prevUniform = rn, ru
	}
	// Δ-dominant extreme: full ordering.
	d := deltas[len(deltas)-1]
	cs, us, ns := slots(d, cseek), slots(d, uniform), slots(d, naive)
	if !(cs < us && us < ns) {
		t.Errorf("Δ=%d ordering violated: CSEEK=%d UniformSeek=%d NaiveSeek=%d", d, cs, us, ns)
	}
}

func TestBaselineValidation(t *testing.T) {
	p := Params{N: 4, C: 3, K: 1, KMax: 1, Delta: 2}
	r := rng.New(1)
	if _, err := NewNaiveSeek(p, Env{C: 2, Rand: r}); err == nil {
		t.Error("NaiveSeek channel mismatch accepted")
	}
	if _, err := NewUniformSeek(p, Env{C: 2, Rand: r}); err == nil {
		t.Error("UniformSeek channel mismatch accepted")
	}
}
