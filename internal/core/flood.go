package core

import (
	"context"
	"fmt"

	"crn/internal/radio"
	"crn/internal/rng"
)

// Flood is the naive global-broadcast baseline from the introduction:
// nodes hop among channels uniformly at random; informed nodes
// broadcast the message (with a back-off coin to soften collisions),
// uninformed nodes listen. Expected time O~((c²/k)·D·…) — every hop
// costs a fresh Θ~(c²/k) rendezvous, with no schedule reuse.
type Flood struct {
	env      Env
	delta    int
	informed bool
	msg      any
	// frame is the pre-boxed dissemMessage carrying msg, refreshed
	// when the node learns the message, so Act never allocates.
	frame any

	slot       int64
	maxSlots   int64
	informedAt int64
	listening  bool

	// bank/bankIdx back-reference the FloodBank (range dispatch).
	bank    *FloodBank
	bankIdx int
}

var _ radio.Protocol = (*Flood)(nil)

// NewFlood returns a flooding node. The schedule budget is
// Tuning.NaiveSlots·(c²/k)·D·lg n slots; harnesses typically stop the
// run early once every node is informed.
func NewFlood(p Params, env Env, d int, informed bool, msg any) (*Flood, error) {
	if err := p.Normalize(); err != nil {
		return nil, err
	}
	if env.C != p.C {
		return nil, fmt.Errorf("core: env has %d channels, params say %d", env.C, p.C)
	}
	if d < 1 {
		return nil, fmt.Errorf("core: D must be >= 1, got %d", d)
	}
	return &Flood{
		env:        env,
		delta:      p.Delta,
		informed:   informed,
		msg:        msg,
		frame:      dissemMessage{Body: msg},
		maxSlots:   int64(scaledSteps(p.Tuning.NaiveSlots, ceilDiv(p.C*p.C, p.K)*d, p.LgN())),
		informedAt: -1,
	}, nil
}

// Act implements radio.Protocol.
func (f *Flood) Act(_ int64) radio.Action {
	ch := f.env.Rand.Intn(f.env.C)
	if !f.informed {
		f.listening = true
		return radio.Action{Kind: radio.Listen, Ch: ch}
	}
	f.listening = false
	// Informed nodes broadcast with probability 1/2: the paper's naive
	// strategy has no contention estimate to do better with.
	if f.env.Rand.Bool() {
		return radio.Action{Kind: radio.Broadcast, Ch: ch, Data: f.frame}
	}
	return radio.Action{Kind: radio.Idle, Ch: ch}
}

// Observe implements radio.Protocol.
func (f *Flood) Observe(_ int64, msg *radio.Message) {
	if msg == nil {
		f.observeOutcome(false, nil)
		return
	}
	f.observeOutcome(true, msg.Data)
}

// observeOutcome is Observe with the delivery already unpacked, shared
// by both dispatch modes (the FloodBank feeds outcomes here).
func (f *Flood) observeOutcome(heard bool, data any) {
	if f.listening && heard && !f.informed {
		if dm, ok := data.(dissemMessage); ok {
			f.informed = true
			f.informedAt = f.slot
			f.msg = dm.Body
			f.frame = dissemMessage{Body: dm.Body}
		}
	}
	f.slot++
}

// Done implements radio.Protocol.
func (f *Flood) Done() bool { return f.slot >= f.maxSlots }

// Informed reports whether the node holds the message.
func (f *Flood) Informed() bool { return f.informed }

// InformedAt returns the slot the node learned the message, or -1.
func (f *Flood) InformedAt() int64 { return f.informedAt }

// TotalSlots returns the schedule budget.
func (f *Flood) TotalSlots() int64 { return f.maxSlots }

// MinDoneSlots implements radio.FixedSchedule: Done fires exactly at
// the schedule budget (a node keeps flooding even once informed).
func (f *Flood) MinDoneSlots() int64 { return f.maxSlots }

// RunFlood executes the flooding baseline until every node is informed
// or the budget runs out; it returns the slot at which the last node
// became informed (-1 if never) and whether all nodes were informed.
func RunFlood(nw *radio.Network, p Params, d int, source radio.NodeID, msg any, seed uint64) (int64, bool, error) {
	res, err := RunFloodCtx(context.Background(), nw, p, d, source, msg, seed)
	if err != nil {
		return 0, false, err
	}
	return res.AllInformedAt, res.AllInformed, nil
}

// FloodResult reports one flooding run.
type FloodResult struct {
	// ScheduleSlots is the flooding budget in slots.
	ScheduleSlots int64
	// AllInformedAt is the slot at which the last node became informed,
	// or -1 if the budget ran out first.
	AllInformedAt int64
	// AllInformed reports whether every node got the message.
	AllInformed bool
	// Informed[u] reports whether node u held the message at the end.
	Informed []bool
	// Radio holds the engine's counters (deliveries, collisions,
	// jammed listener-slots).
	Radio radio.Stats
}

// RunFloodCtx is RunFlood with cooperative cancellation (ctx is
// polled throughout the run) and a richer result.
func RunFloodCtx(ctx context.Context, nw *radio.Network, p Params, d int, source radio.NodeID, msg any, seed uint64) (*FloodResult, error) {
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	if err := p.Normalize(); err != nil {
		return nil, err
	}
	n := nw.Graph.N()
	if int(source) < 0 || int(source) >= n {
		return nil, fmt.Errorf("core: source %d out of range", source)
	}
	master := rng.New(seed)
	floods := make([]*Flood, n)
	protos := make([]radio.Protocol, n)
	for u := 0; u < n; u++ {
		fl, err := NewFlood(p, Env{ID: radio.NodeID(u), C: p.C, Rand: master.Split(uint64(u))}, d, radio.NodeID(u) == source, msg)
		if err != nil {
			return nil, err
		}
		floods[u] = fl
		protos[u] = fl
	}
	NewFloodBank(floods)
	e, err := radio.NewEngine(nw, protos)
	if err != nil {
		return nil, err
	}
	var doneAt int64 = -1
	st, err := e.RunUntilCtx(ctx, floods[0].TotalSlots()+1, func(slot int64) bool {
		for _, fl := range floods {
			if !fl.Informed() {
				return false
			}
		}
		doneAt = slot
		return true
	})
	if err != nil {
		return nil, err
	}
	res := &FloodResult{
		ScheduleSlots: floods[0].TotalSlots(),
		AllInformedAt: doneAt,
		AllInformed:   true,
		Informed:      make([]bool, n),
		Radio:         st,
	}
	for u, fl := range floods {
		res.Informed[u] = fl.Informed()
		if !fl.Informed() {
			res.AllInformed = false
		}
	}
	return res, nil
}
