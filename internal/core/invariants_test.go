package core

import (
	"testing"
	"testing/quick"

	"crn/internal/chanassign"
	"crn/internal/graph"
	"crn/internal/radio"
	"crn/internal/rng"
)

// TestQuickCSeekScheduleInvariants fuzzes model parameters and checks
// the schedule arithmetic: part one plus part two equals the total,
// part one is a whole number of COUNT executions, and part two a whole
// number of lgΔ-slot steps.
func TestQuickCSeekScheduleInvariants(t *testing.T) {
	f := func(seed uint64, cRaw, kRaw, dRaw uint8) bool {
		c := int(cRaw%12) + 1
		k := int(kRaw)%c + 1
		delta := int(dRaw%20) + 1
		n := delta + 2
		p := Params{N: n, C: c, K: k, KMax: k, Delta: delta}
		if err := p.Normalize(); err != nil {
			return false
		}
		env := Env{ID: 0, C: c, Rand: rng.New(seed)}
		s, err := NewCSeek(p, env)
		if err != nil {
			return false
		}
		if s.PartOneSlots()+s.PartTwoSlots() != s.TotalSlots() {
			return false
		}
		countLen := int64(p.countSchedule().TotalSlots())
		if s.PartOneSlots()%countLen != 0 {
			return false
		}
		return s.PartTwoSlots()%int64(p.LgDelta()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickCKSeekNeverLongerThanFallback: with Δ_k̂ ≤ Δ, CKSEEK's
// schedule is monotone in Δ_k̂ — using a good estimate never costs
// more than the Δ fallback.
func TestQuickCKSeekMonotoneInDeltaKhat(t *testing.T) {
	f := func(seed uint64, dkRaw uint8) bool {
		p := Params{N: 64, C: 8, K: 2, KMax: 6, Delta: 10}
		env := Env{ID: 0, C: 8, Rand: rng.New(seed)}
		dk := int(dkRaw % 11) // 0..10
		withEstimate, err := NewCKSeek(p, env, 4, dk)
		if err != nil {
			return false
		}
		fallback, err := NewCKSeek(p, env, 4, p.Delta)
		if err != nil {
			return false
		}
		return withEstimate.TotalSlots() <= fallback.TotalSlots()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCSeekCountsMatchSum: the per-channel counts always sum to the
// internal total used for weighted listening.
func TestCSeekCountsMatchSum(t *testing.T) {
	g := graph.Star(9)
	a, err := chanassign.SharedCore(9, 3, 2, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	in := buildInstance(t, g, a)
	ds := runDiscovery(t, in, func(u int, env Env) Discoverer {
		s, err := NewCSeek(in.p, env)
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
	for u, d := range ds {
		s := d.(*CSeek)
		var sum int64
		for _, c := range s.Counts() {
			sum += c
		}
		if sum != s.countSum {
			t.Errorf("node %d: counts sum %d != countSum %d", u, sum, s.countSum)
		}
	}
}

// TestSessionDisseminateDeterminism: the same session disseminating
// with the same seed produces identical outcomes; different seeds may
// differ in timing but must still inform everyone.
func TestSessionDisseminateDeterminism(t *testing.T) {
	g := graph.Path(8)
	a, err := chanassign.SharedCore(8, 3, 2, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	nw := &radio.Network{Graph: g, Assign: a}
	k, kmax := a.OverlapRange(g)
	p := Params{N: 8, C: 3, K: k, KMax: kmax, Delta: g.MaxDegree()}
	session, err := PrepareCGCast(nw, SessionConfig{Params: p, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	d := g.Diameter()

	r1, err := session.Disseminate(d, 0, "m", 77)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := session.Disseminate(d, 0, "m", 77)
	if err != nil {
		t.Fatal(err)
	}
	if r1.AllInformedAt != r2.AllInformedAt || r1.ScheduleSlots != r2.ScheduleSlots {
		t.Errorf("same-seed disseminations differ: %+v vs %+v", r1, r2)
	}
	r3, err := session.Disseminate(d, 7, "other", 99)
	if err != nil {
		t.Fatal(err)
	}
	for u, inf := range r3.Informed {
		if !inf {
			t.Errorf("node %d uninformed from source 7", u)
		}
	}
}

// TestSessionAccessors sanity-checks the exported session state.
func TestSessionAccessors(t *testing.T) {
	g := graph.Path(6)
	a, err := chanassign.SharedCore(6, 3, 2, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	nw := &radio.Network{Graph: g, Assign: a}
	k, kmax := a.OverlapRange(g)
	p := Params{N: 6, C: 3, K: k, KMax: kmax, Delta: g.MaxDegree()}
	session, err := PrepareCGCast(nw, SessionConfig{Params: p, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if session.SetupSlots() <= 0 {
		t.Errorf("SetupSlots = %d", session.SetupSlots())
	}
	if session.ColoringPhases() < 1 {
		t.Errorf("ColoringPhases = %d", session.ColoringPhases())
	}
	if session.EdgesColored() != g.M() {
		t.Errorf("EdgesColored = %d, want %d", session.EdgesColored(), g.M())
	}
	if _, err := session.Disseminate(0, 0, "m", 1); err == nil {
		t.Error("D=0 accepted")
	}
	if _, err := session.Disseminate(3, 99, "m", 1); err == nil {
		t.Error("bad source accepted")
	}
}
