package core

import (
	"testing"

	"crn/internal/chanassign"
	"crn/internal/graph"
	"crn/internal/radio"
	"crn/internal/rng"
)

// buildBroadcastNet assembles a network plus normalized params and D.
func buildBroadcastNet(t *testing.T, g *graph.Graph, a *chanassign.Assignment) (*radio.Network, Params, int) {
	t.Helper()
	k, kmax := a.OverlapRange(g)
	p := Params{N: g.N(), C: a.C, K: k, KMax: kmax, Delta: g.MaxDegree()}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	d := g.Diameter()
	if d < 1 {
		d = 1
	}
	return &radio.Network{Graph: g, Assign: a}, p, d
}

func runCGCast(t *testing.T, g *graph.Graph, a *chanassign.Assignment, mode BroadcastMode, seed uint64) *BroadcastResult {
	t.Helper()
	nw, p, d := buildBroadcastNet(t, g, a)
	res, err := RunCGCast(nw, BroadcastConfig{
		Params:  p,
		D:       d,
		Source:  0,
		Message: "payload",
		Mode:    mode,
		Seed:    seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertAllInformed(t *testing.T, res *BroadcastResult) {
	t.Helper()
	for u, inf := range res.Informed {
		if !inf {
			t.Errorf("node %d uninformed", u)
		}
	}
	if res.AllInformedAt < 0 {
		t.Error("AllInformedAt = -1")
	}
}

func TestCGCastAbstractPath(t *testing.T) {
	g := graph.Path(8)
	a, err := chanassign.SharedCore(8, 3, 2, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	res := runCGCast(t, g, a, ExchangeAbstract, 42)
	assertAllInformed(t, res)
	if !res.ColoringValid {
		t.Error("invalid edge coloring")
	}
	if res.EdgesDropped != 0 {
		t.Errorf("%d edges dropped", res.EdgesDropped)
	}
	if res.EdgesColored != g.M() {
		t.Errorf("colored %d of %d edges", res.EdgesColored, g.M())
	}
}

func TestCGCastAbstractClusterChain(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	g, err := graph.ClusterChain(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := chanassign.SharedCore(g.N(), 4, 2, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	res := runCGCast(t, g, a, ExchangeAbstract, 43)
	assertAllInformed(t, res)
	if !res.ColoringValid {
		t.Error("invalid edge coloring")
	}
}

func TestCGCastAbstractStar(t *testing.T) {
	g := graph.Star(10)
	a, err := chanassign.SharedCore(10, 3, 1, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	res := runCGCast(t, g, a, ExchangeAbstract, 44)
	assertAllInformed(t, res)
	if !res.ColoringValid {
		t.Error("invalid edge coloring")
	}
}

func TestCGCastAbstractHeterogeneous(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	g, err := graph.GNP(14, 0.3, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	a, err := chanassign.Heterogeneous(g, 8, 2, 5, 0.4, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	res := runCGCast(t, g, a, ExchangeAbstract, 45)
	assertAllInformed(t, res)
	if !res.ColoringValid {
		t.Error("invalid edge coloring")
	}
}

// TestCGCastFullSmall runs the whole pipeline — including every CSEEK
// exchange — inside the radio model on a small instance.
func TestCGCastFullSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("slow full-fidelity test")
	}
	g := graph.Path(4)
	a, err := chanassign.SharedCore(4, 3, 2, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	res := runCGCast(t, g, a, ExchangeFull, 46)
	assertAllInformed(t, res)
	if !res.ColoringValid {
		t.Error("invalid edge coloring")
	}
	if res.EdgesDropped != 0 {
		t.Errorf("%d edges dropped in full mode", res.EdgesDropped)
	}
}

// TestCGCastModesChargeIdenticalSlots asserts the DESIGN.md contract:
// abstract mode charges exactly the slot budget full mode consumes.
func TestCGCastModesChargeIdenticalSlots(t *testing.T) {
	if testing.Short() {
		t.Skip("slow full-fidelity test")
	}
	g := graph.Path(4)
	a, err := chanassign.SharedCore(4, 3, 2, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	full := runCGCast(t, g, a, ExchangeFull, 47)
	abs := runCGCast(t, g, a, ExchangeAbstract, 47)
	if full.SetupSlots != abs.SetupSlots {
		t.Errorf("setup slots differ: full %d vs abstract %d", full.SetupSlots, abs.SetupSlots)
	}
	if full.DissemScheduleSlots != abs.DissemScheduleSlots {
		t.Errorf("dissemination slots differ: full %d vs abstract %d",
			full.DissemScheduleSlots, abs.DissemScheduleSlots)
	}
}

func TestCGCastConfigValidation(t *testing.T) {
	g := graph.Path(4)
	a, err := chanassign.SharedCore(4, 3, 2, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	nw, p, d := buildBroadcastNet(t, g, a)
	if _, err := RunCGCast(nw, BroadcastConfig{Params: p, D: 0, Source: 0}); err == nil {
		t.Error("D=0 accepted")
	}
	if _, err := RunCGCast(nw, BroadcastConfig{Params: p, D: d, Source: 99}); err == nil {
		t.Error("out-of-range source accepted")
	}
	bad := p
	bad.K = 0
	if _, err := RunCGCast(nw, BroadcastConfig{Params: bad, D: d, Source: 0}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestCGCastDeterminism(t *testing.T) {
	g := graph.Path(6)
	a, err := chanassign.SharedCore(6, 3, 2, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	r1 := runCGCast(t, g, a, ExchangeAbstract, 123)
	r2 := runCGCast(t, g, a, ExchangeAbstract, 123)
	if r1.TotalSlots != r2.TotalSlots || r1.AllInformedAt != r2.AllInformedAt ||
		r1.EdgesColored != r2.EdgesColored {
		t.Errorf("identical seeds diverged: %+v vs %+v", r1, r2)
	}
}

// TestCGCastDissemScheduleShape pins the Theorem 9 dissemination cost:
// D phases × 2Δ steps × Θ(lg n) rounds × lg Δ slots.
func TestCGCastDissemScheduleShape(t *testing.T) {
	g := graph.Path(8)
	a, err := chanassign.SharedCore(8, 3, 2, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	nw, p, d := buildBroadcastNet(t, g, a)
	res, err := RunCGCast(nw, BroadcastConfig{Params: p, D: d, Source: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rounds := scaledSteps(p.Tuning.DissemRounds, 1, p.LgN())
	want := int64(d) * int64(2*p.Delta) * int64(rounds) * int64(p.LgDelta())
	if res.DissemScheduleSlots != want {
		t.Errorf("dissemination schedule %d slots, want %d", res.DissemScheduleSlots, want)
	}
}

func TestFloodInformsPath(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	g := graph.Path(6)
	a, err := chanassign.SharedCore(6, 3, 2, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	nw, p, d := buildBroadcastNet(t, g, a)
	doneAt, all, err := RunFlood(nw, p, d, 0, "m", 99)
	if err != nil {
		t.Fatal(err)
	}
	if !all {
		t.Fatal("flooding left nodes uninformed")
	}
	if doneAt <= 0 {
		t.Errorf("doneAt = %d, want > 0", doneAt)
	}
}

func TestFloodValidation(t *testing.T) {
	p := Params{N: 4, C: 3, K: 1, KMax: 1, Delta: 2}
	r := rng.New(1)
	if _, err := NewFlood(p, Env{C: 2, Rand: r}, 1, false, nil); err == nil {
		t.Error("channel mismatch accepted")
	}
	if _, err := NewFlood(p, Env{C: 3, Rand: r}, 0, false, nil); err == nil {
		t.Error("D=0 accepted")
	}
	g := graph.Path(4)
	a, err := chanassign.SharedCore(4, 3, 2, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunFlood(&radio.Network{Graph: g, Assign: a}, p, 1, 99, nil, 1); err == nil {
		t.Error("out-of-range source accepted")
	}
}

// TestDissemProtoStepLatching checks a node that learns the message
// mid-step starts broadcasting only at the next step boundary.
func TestDissemProtoStepLatching(t *testing.T) {
	dp := &dissemProto{
		env:      Env{ID: 1, C: 2, Rand: rng.New(1)},
		schedule: []int32{0, 1},
		phases:   1,
		rounds:   2,
		lgDelta:  2,
		delta:    2,
		informed: false,
	}
	// Slot 0: uninformed, must listen.
	a := dp.Act(0)
	if a.Kind != radio.Listen {
		t.Fatalf("slot 0 kind = %v, want Listen", a.Kind)
	}
	// Deliver the message mid-step.
	dp.Observe(0, &radio.Message{From: 0, Data: dissemMessage{Body: "x"}})
	if !dp.informed {
		t.Fatal("message not absorbed")
	}
	// Remaining slots of this step must still listen (latched role).
	perStep := dp.slotsPerStep()
	for s := int64(1); s < perStep; s++ {
		a := dp.Act(s)
		if a.Kind == radio.Broadcast {
			t.Fatalf("broadcast at slot %d before step boundary", s)
		}
		dp.Observe(s, nil)
	}
	// Next step: the node may now broadcast; sample many acts and
	// require at least one broadcast attempt.
	sawBroadcast := false
	for s := perStep; s < 2*perStep; s++ {
		if dp.Act(s).Kind == radio.Broadcast {
			sawBroadcast = true
		}
		dp.Observe(s, nil)
	}
	if !sawBroadcast {
		t.Error("informed node never attempted broadcast in its step")
	}
}
