package core

import (
	"fmt"

	"crn/internal/radio"
)

// Baseline neighbor-discovery strategies the paper compares against.
//
// NaiveSeek is the introduction's "simple and straightforward
// strategy": hop among channels uniformly at random and broadcast or
// listen with some probability, resolving contention with a fixed
// worst-case back-off probability of 1/Δ. Without contention
// estimation the safe choice is the worst case, which is what yields
// the O~((c²/k)·Δ) bound quoted in Section 1.
//
// UniformSeek replaces the fixed probability with the same per-step
// lg Δ back-off sweep CSEEK uses, but keeps listeners hopping
// uniformly (no density sampling, no part one). This is the shape of
// the Zeng et al. algorithm discussed in Section 2, with time
// O~(c²/k + c·Δ/k): always at least as slow as CSEEK because c ≥ kmax.

// Discoverer is the interface shared by all neighbor-discovery
// protocols; harnesses use it to measure time-to-discovery uniformly.
type Discoverer interface {
	radio.Protocol
	// Discovered returns the identities heard so far.
	Discovered() []radio.NodeID
	// DiscoveredCount returns the number of distinct identities heard.
	DiscoveredCount() int
	// TotalSlots returns the protocol's fixed schedule length.
	TotalSlots() int64
}

var (
	_ Discoverer = (*CSeek)(nil)
	_ Discoverer = (*NaiveSeek)(nil)
	_ Discoverer = (*UniformSeek)(nil)
)

// NaiveSeek is the single-slot-step baseline: every slot, hop to a
// uniform channel; with probability 1/2 listen, otherwise broadcast
// the node's identity with probability 1/Δ.
type NaiveSeek struct {
	env      Env
	delta    int
	slots    int64
	maxSlots int64
	observed map[radio.NodeID]int64 // id -> first-heard slot
	listen   bool
}

// NewNaiveSeek returns the naive baseline with the schedule
// Tuning.NaiveSlots·(c²/k)·Δ·lg n slots.
func NewNaiveSeek(p Params, env Env) (*NaiveSeek, error) {
	if err := p.Normalize(); err != nil {
		return nil, err
	}
	if env.C != p.C {
		return nil, fmt.Errorf("core: env has %d channels, params say %d", env.C, p.C)
	}
	slots := int64(scaledSteps(p.Tuning.NaiveSlots, ceilDiv(p.C*p.C, p.K)*p.Delta, p.LgN()))
	return &NaiveSeek{
		env:      env,
		delta:    p.Delta,
		maxSlots: slots,
		observed: make(map[radio.NodeID]int64),
	}, nil
}

// Act implements radio.Protocol.
func (s *NaiveSeek) Act(_ int64) radio.Action {
	ch := s.env.Rand.Intn(s.env.C)
	s.listen = s.env.Rand.Bool()
	if s.listen {
		return radio.Action{Kind: radio.Listen, Ch: ch}
	}
	if s.env.Rand.OneIn(s.delta) {
		return radio.Action{Kind: radio.Broadcast, Ch: ch}
	}
	return radio.Action{Kind: radio.Idle, Ch: ch}
}

// Observe implements radio.Protocol.
func (s *NaiveSeek) Observe(_ int64, msg *radio.Message) {
	if s.listen && msg != nil {
		if _, ok := s.observed[msg.From]; !ok {
			s.observed[msg.From] = s.slots
		}
	}
	s.slots++
}

// Done implements radio.Protocol.
func (s *NaiveSeek) Done() bool { return s.slots >= s.maxSlots }

// Discovered implements Discoverer.
func (s *NaiveSeek) Discovered() []radio.NodeID { return keys(s.observed) }

// DiscoveredCount implements Discoverer.
func (s *NaiveSeek) DiscoveredCount() int { return len(s.observed) }

// TotalSlots implements Discoverer.
func (s *NaiveSeek) TotalSlots() int64 { return s.maxSlots }

// MinDoneSlots implements radio.FixedSchedule: Done fires exactly at
// the schedule budget.
func (s *NaiveSeek) MinDoneSlots() int64 { return s.maxSlots }

// UniformSeek is the back-off-sweep baseline without density sampling:
// steps of lg Δ slots; every step each node flips a role coin and picks
// a uniformly random channel; broadcasters run the 2^(i-1)/Δ back-off
// sweep, listeners listen.
type UniformSeek struct {
	env       Env
	slotsStep int
	steps     int
	step      int
	stepSlot  int
	slot      int64
	listener  bool
	ch        int
	bcast     []bool
	observed  map[radio.NodeID]int64
}

// NewUniformSeek returns the uniform-listen baseline with schedule
// Tuning.P2Steps·((c²+c·Δ)/k)·lg n steps of lg Δ slots, matching the
// O~(c²/k + c·Δ/k) bound of Zeng et al.
func NewUniformSeek(p Params, env Env) (*UniformSeek, error) {
	if err := p.Normalize(); err != nil {
		return nil, err
	}
	if env.C != p.C {
		return nil, fmt.Errorf("core: env has %d channels, params say %d", env.C, p.C)
	}
	base := ceilDiv(p.C*p.C+p.C*p.Delta, p.K)
	return &UniformSeek{
		env:       env,
		slotsStep: p.LgDelta(),
		steps:     scaledSteps(p.Tuning.P2Steps, base, p.LgN()),
		observed:  make(map[radio.NodeID]int64),
	}, nil
}

// Act implements radio.Protocol.
func (s *UniformSeek) Act(_ int64) radio.Action {
	if s.stepSlot == 0 {
		s.beginStep()
	}
	if s.listener {
		return radio.Action{Kind: radio.Listen, Ch: s.ch}
	}
	if s.bcast[s.stepSlot] {
		return radio.Action{Kind: radio.Broadcast, Ch: s.ch}
	}
	return radio.Action{Kind: radio.Idle, Ch: s.ch}
}

func (s *UniformSeek) beginStep() {
	s.listener = s.env.Rand.Bool()
	s.ch = s.env.Rand.Intn(s.env.C)
	if s.listener {
		return
	}
	if cap(s.bcast) < s.slotsStep {
		s.bcast = make([]bool, s.slotsStep)
	}
	s.bcast = s.bcast[:s.slotsStep]
	denom := int64(1) << uint(s.slotsStep)
	for i := range s.bcast {
		s.bcast[i] = s.env.Rand.Bernoulli(float64(int64(1)<<uint(i)) / float64(denom))
	}
}

// Observe implements radio.Protocol.
func (s *UniformSeek) Observe(_ int64, msg *radio.Message) {
	if s.listener && msg != nil {
		if _, ok := s.observed[msg.From]; !ok {
			s.observed[msg.From] = s.slot
		}
	}
	s.slot++
	s.stepSlot++
	if s.stepSlot == s.slotsStep {
		s.stepSlot = 0
		s.step++
	}
}

// Done implements radio.Protocol.
func (s *UniformSeek) Done() bool { return s.step >= s.steps }

// Discovered implements Discoverer.
func (s *UniformSeek) Discovered() []radio.NodeID { return keys(s.observed) }

// DiscoveredCount implements Discoverer.
func (s *UniformSeek) DiscoveredCount() int { return len(s.observed) }

// TotalSlots implements Discoverer.
func (s *UniformSeek) TotalSlots() int64 { return int64(s.steps) * int64(s.slotsStep) }

// MinDoneSlots implements radio.FixedSchedule: the step counter only
// reaches its bound when the whole fixed schedule has been observed.
func (s *UniformSeek) MinDoneSlots() int64 { return s.TotalSlots() }

func keys(m map[radio.NodeID]int64) []radio.NodeID {
	out := make([]radio.NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	return out
}
