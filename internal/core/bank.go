package core

import "crn/internal/radio"

// This file implements the radio.RangeProtocol ABI for the hot core
// protocols: a "bank" fuses the per-node machines of one run so the
// engine dispatches Act/Observe over whole node ranges with a single
// call instead of two interface calls per node per slot. Each bank
// loops over its nodes with direct (devirtualized) concrete calls into
// the very same per-node state machines the fallback path steps, and
// the observe side feeds the protocols' unpacked observeOutcome
// internals — so both dispatch modes run identical code on identical
// state and per-node rng draw order is untouched: byte-identity holds
// by construction, and the equivalence suites pin it.
//
// Banks satisfy the RangeProtocol concurrency contract (disjoint
// ranges of one slot may be dispatched concurrently under
// RunParallel): they hold no mutable bank-wide state, only the nodes
// slice, and each loop iteration touches node u's state alone.
//
// Attachment is explicit and happens at construction sites
// (prepareDiscovery, CGCAST's stages, RunFloodCtx, tests): the bank
// back-pointer makes every member protocol report the bank via
// RangeBank, which radio's detectRangeBank verifies per run.

// SeekBank fuses the CSEEK/CKSEEK machines of one run for range
// dispatch (discovery, and CGCAST's exchange stages).
type SeekBank struct{ nodes []*CSeek }

var _ radio.RangeProtocol = (*SeekBank)(nil)

// NewSeekBank builds a bank over the per-node machines and attaches
// itself to each of them.
func NewSeekBank(nodes []*CSeek) *SeekBank {
	b := &SeekBank{nodes: nodes}
	for i, s := range nodes {
		s.bank = b
		s.bankIdx = i
	}
	return b
}

// ActRange implements radio.RangeProtocol.
func (b *SeekBank) ActRange(slot int64, lo, hi int, acts []radio.Action) {
	nodes := b.nodes
	for u := lo; u < hi; u++ {
		acts[u] = nodes[u].Act(slot)
	}
}

// ObserveRange implements radio.RangeProtocol.
func (b *SeekBank) ObserveRange(_ int64, lo, hi int, deliveries []radio.Delivery) {
	nodes := b.nodes
	for u := lo; u < hi; u++ {
		d := deliveries[u]
		nodes[u].observeOutcome(d.From >= 0, d.From, d.Data)
	}
}

// RangeBank implements radio.RangeNode.
func (s *CSeek) RangeBank() (radio.RangeProtocol, int) {
	if s.bank == nil {
		return nil, 0
	}
	return s.bank, s.bankIdx
}

// BankDiscoverers attaches a SeekBank when every discoverer in ds is a
// CSEEK/CKSEEK machine, reporting whether it did. Baselines (naive,
// uniform) stay on per-node dispatch.
func BankDiscoverers(ds []Discoverer) bool {
	seeks := make([]*CSeek, len(ds))
	for i, d := range ds {
		s, ok := d.(*CSeek)
		if !ok {
			return false
		}
		seeks[i] = s
	}
	NewSeekBank(seeks)
	return true
}

// dissemBank fuses one dissemination run's stage-5 protocols.
type dissemBank struct{ nodes []*dissemProto }

var _ radio.RangeProtocol = (*dissemBank)(nil)

func newDissemBank(nodes []*dissemProto) *dissemBank {
	b := &dissemBank{nodes: nodes}
	for i, dp := range nodes {
		dp.bank = b
		dp.bankIdx = i
	}
	return b
}

// ActRange implements radio.RangeProtocol.
func (b *dissemBank) ActRange(slot int64, lo, hi int, acts []radio.Action) {
	nodes := b.nodes
	for u := lo; u < hi; u++ {
		acts[u] = nodes[u].Act(slot)
	}
}

// ObserveRange implements radio.RangeProtocol.
func (b *dissemBank) ObserveRange(_ int64, lo, hi int, deliveries []radio.Delivery) {
	nodes := b.nodes
	for u := lo; u < hi; u++ {
		d := deliveries[u]
		nodes[u].observeOutcome(d.From >= 0, d.Data)
	}
}

// RangeBank implements radio.RangeNode.
func (dp *dissemProto) RangeBank() (radio.RangeProtocol, int) {
	if dp.bank == nil {
		return nil, 0
	}
	return dp.bank, dp.bankIdx
}

// FloodBank fuses the flooding baseline's per-node machines.
type FloodBank struct{ nodes []*Flood }

var _ radio.RangeProtocol = (*FloodBank)(nil)

// NewFloodBank builds a bank over the per-node machines and attaches
// itself to each of them.
func NewFloodBank(nodes []*Flood) *FloodBank {
	b := &FloodBank{nodes: nodes}
	for i, f := range nodes {
		f.bank = b
		f.bankIdx = i
	}
	return b
}

// ActRange implements radio.RangeProtocol.
func (b *FloodBank) ActRange(slot int64, lo, hi int, acts []radio.Action) {
	nodes := b.nodes
	for u := lo; u < hi; u++ {
		acts[u] = nodes[u].Act(slot)
	}
}

// ObserveRange implements radio.RangeProtocol.
func (b *FloodBank) ObserveRange(_ int64, lo, hi int, deliveries []radio.Delivery) {
	nodes := b.nodes
	for u := lo; u < hi; u++ {
		d := deliveries[u]
		nodes[u].observeOutcome(d.From >= 0, d.Data)
	}
}

// RangeBank implements radio.RangeNode.
func (f *Flood) RangeBank() (radio.RangeProtocol, int) {
	if f.bank == nil {
		return nil, 0
	}
	return f.bank, f.bankIdx
}

// CountBank fuses a heterogeneous COUNT node set — listeners and
// broadcasters — for range dispatch (the Lemma 1 harnesses).
type CountBank struct {
	listens []*CountListen // listens[u] or bcasts[u] is set, not both
	bcasts  []*CountBroadcast
}

var _ radio.RangeProtocol = (*CountBank)(nil)

// NewCountBank builds a bank over a protocol set of CountListen and
// CountBroadcast nodes, attaching itself to each; any other protocol
// type opts the whole set out (returns nil).
func NewCountBank(protos []radio.Protocol) *CountBank {
	b := &CountBank{
		listens: make([]*CountListen, len(protos)),
		bcasts:  make([]*CountBroadcast, len(protos)),
	}
	for i, p := range protos {
		switch c := p.(type) {
		case *CountListen:
			b.listens[i] = c
		case *CountBroadcast:
			b.bcasts[i] = c
		default:
			return nil
		}
	}
	for i := range protos {
		if c := b.listens[i]; c != nil {
			c.bank = b
			c.bankIdx = i
		} else {
			c := b.bcasts[i]
			c.bank = b
			c.bankIdx = i
		}
	}
	return b
}

// ActRange implements radio.RangeProtocol.
func (b *CountBank) ActRange(slot int64, lo, hi int, acts []radio.Action) {
	for u := lo; u < hi; u++ {
		if c := b.listens[u]; c != nil {
			acts[u] = c.Act(slot)
		} else {
			acts[u] = b.bcasts[u].Act(slot)
		}
	}
}

// ObserveRange implements radio.RangeProtocol.
func (b *CountBank) ObserveRange(slot int64, lo, hi int, deliveries []radio.Delivery) {
	for u := lo; u < hi; u++ {
		if c := b.listens[u]; c != nil {
			d := deliveries[u]
			c.observeOutcome(d.From >= 0, d.From)
		} else {
			b.bcasts[u].Observe(slot, nil)
		}
	}
}

// RangeBank implements radio.RangeNode.
func (c *CountListen) RangeBank() (radio.RangeProtocol, int) {
	if c.bank == nil {
		return nil, 0
	}
	return c.bank, c.bankIdx
}

// RangeBank implements radio.RangeNode.
func (c *CountBroadcast) RangeBank() (radio.RangeProtocol, int) {
	if c.bank == nil {
		return nil, 0
	}
	return c.bank, c.bankIdx
}
