package core

import (
	"testing"

	"crn/internal/chanassign"
	"crn/internal/graph"
	"crn/internal/radio"
	"crn/internal/rng"
)

func TestHopStrategyString(t *testing.T) {
	tests := []struct {
		s    HopStrategy
		want string
	}{
		{HopAlways, "always"},
		{HopCoin, "coin"},
		{HopBackoff, "backoff"},
		{HopStrategy(99), "HopStrategy(99)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestNewHopBroadcasterValidation(t *testing.T) {
	p := Params{N: 4, C: 3, K: 1, KMax: 1, Delta: 2}
	r := rng.New(1)
	env := Env{ID: 0, C: 3, Rand: r}
	if _, err := NewHopBroadcaster(p, Env{C: 2, Rand: r}, HopCoin, false, 0, 0, 10); err == nil {
		t.Error("channel mismatch accepted")
	}
	if _, err := NewHopBroadcaster(p, env, HopCoin, false, 0, 0, 0); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := NewHopBroadcaster(p, env, HopStrategy(42), false, 0, 0, 10); err == nil {
		t.Error("bad strategy accepted")
	}
	if _, err := NewHopBroadcaster(p, env, HopCoin, true, 0, 0, 10); err == nil {
		t.Error("modular rate 0 accepted")
	}
}

func TestHopAlwaysBroadcastsEverySlot(t *testing.T) {
	p := Params{N: 4, C: 3, K: 1, KMax: 1, Delta: 2}
	h, err := NewHopBroadcaster(p, Env{ID: 1, C: 3, Rand: rng.New(2)}, HopAlways, false, 0, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		a := h.Act(int64(i))
		if a.Kind != radio.Broadcast {
			t.Fatalf("slot %d: kind %v, want Broadcast", i, a.Kind)
		}
		if a.Ch < 0 || a.Ch >= 3 {
			t.Fatalf("slot %d: channel %d out of range", i, a.Ch)
		}
		h.Observe(int64(i), nil)
	}
	if !h.Done() {
		t.Error("not done after budget")
	}
}

func TestHopModularSequence(t *testing.T) {
	p := Params{N: 4, C: 5, K: 1, KMax: 1, Delta: 2}
	h, err := NewHopBroadcaster(p, Env{ID: 1, C: 5, Rand: rng.New(3)}, HopAlways, true, 3, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	// ch = (3t + 2) mod 5 and the sequence must visit every channel
	// (3 is coprime with 5).
	seen := make(map[int]bool)
	for i := 0; i < 10; i++ {
		a := h.Act(int64(i))
		want := (3*i + 2) % 5
		if a.Ch != want {
			t.Fatalf("slot %d: channel %d, want %d", i, a.Ch, want)
		}
		seen[a.Ch] = true
		h.Observe(int64(i), nil)
	}
	if len(seen) != 5 {
		t.Errorf("modular hop visited %d channels, want 5", len(seen))
	}
}

func TestHopBackoffSweepsLevels(t *testing.T) {
	p := Params{N: 32, C: 2, K: 1, KMax: 1, Delta: 16}
	h, err := NewHopBroadcaster(p, Env{ID: 1, C: 2, Rand: rng.New(4)}, HopBackoff, false, 0, 0, 4000)
	if err != nil {
		t.Fatal(err)
	}
	// Broadcast frequency must be non-trivial: the sweep averages
	// (1/Δ + 2/Δ + ... + 1/2)/lgΔ ≈ 1/lgΔ ≈ 0.25 for Δ=16.
	bcast := 0
	for i := 0; i < 4000; i++ {
		if h.Act(int64(i)).Kind == radio.Broadcast {
			bcast++
		}
		h.Observe(int64(i), nil)
	}
	rate := float64(bcast) / 4000
	if rate < 0.1 || rate > 0.5 {
		t.Errorf("backoff broadcast rate %v outside plausible band", rate)
	}
}

func TestListenRecorder(t *testing.T) {
	g := graph.Star(3)
	a, err := chanassign.Identical(3, 1, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	p := Params{N: 3, C: 1, K: 1, KMax: 1, Delta: 2}
	master := rng.New(6)
	lr, err := NewListenRecorder(p, Env{ID: 0, C: 1, Rand: master.Split(0)}, 64)
	if err != nil {
		t.Fatal(err)
	}
	// One leaf broadcasts every slot, the other never: only the first
	// should be heard (it is alone on the channel).
	h1, err := NewHopBroadcaster(p, Env{ID: 1, C: 1, Rand: master.Split(1)}, HopAlways, false, 0, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	idle := &scriptIdle{budget: 64}
	e, err := radio.NewEngine(&radio.Network{Graph: g, Assign: a}, []radio.Protocol{lr, h1, idle})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(100)
	if lr.HeardCount() != 1 {
		t.Fatalf("heard %d ids, want 1", lr.HeardCount())
	}
	if lr.FirstHeard(1) != 0 {
		t.Errorf("FirstHeard(1) = %d, want 0", lr.FirstHeard(1))
	}
	if lr.FirstHeard(2) != -1 {
		t.Errorf("FirstHeard(2) = %d, want -1", lr.FirstHeard(2))
	}
	if lr.LastFirstHeard() != 0 {
		t.Errorf("LastFirstHeard() = %d, want 0", lr.LastFirstHeard())
	}
}

func TestListenRecorderValidation(t *testing.T) {
	p := Params{N: 3, C: 2, K: 1, KMax: 1, Delta: 2}
	r := rng.New(1)
	if _, err := NewListenRecorder(p, Env{C: 1, Rand: r}, 10); err == nil {
		t.Error("channel mismatch accepted")
	}
	if _, err := NewListenRecorder(p, Env{C: 2, Rand: r}, 0); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestListenRecorderEmptyLastFirstHeard(t *testing.T) {
	p := Params{N: 3, C: 2, K: 1, KMax: 1, Delta: 2}
	lr, err := NewListenRecorder(p, Env{ID: 0, C: 2, Rand: rng.New(1)}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if lr.LastFirstHeard() != -1 {
		t.Error("LastFirstHeard() != -1 for silent run")
	}
}

// scriptIdle idles for a fixed budget.
type scriptIdle struct {
	budget int
	used   int
}

func (s *scriptIdle) Act(_ int64) radio.Action          { return radio.Action{Kind: radio.Idle} }
func (s *scriptIdle) Observe(_ int64, _ *radio.Message) { s.used++ }
func (s *scriptIdle) Done() bool                        { return s.used >= s.budget }
