package core

import (
	"testing"

	"crn/internal/chanassign"
	"crn/internal/graph"
	"crn/internal/radio"
	"crn/internal/rng"
)

// TestCSeekEngineZeroAllocsSteadyState is the end-to-end allocation
// regression for the hot path the ISSUE targets: a real CSEEK
// discovery workload stepped by radio.Engine.Run must allocate nothing
// per slot once warmed up — in part one (COUNT sampling) and in part
// two (density-guided back-off) alike, on per-node and range dispatch
// (the facade attaches a SeekBank, so the range path is the production
// path). Warm-up covers the transient allocators: discovery records
// (SeekObservation), map growth, and the part-two back-off buffer.
func TestCSeekEngineZeroAllocsSteadyState(t *testing.T) {
	for _, banked := range []bool{false, true} {
		name := "per-node"
		if banked {
			name = "range"
		}
		t.Run(name, func(t *testing.T) { testCSeekZeroAllocs(t, banked) })
	}
}

func testCSeekZeroAllocs(t *testing.T, banked bool) {
	// n/c/seed are chosen so every pair discovers well inside part one
	// (asserted below); the stretched P2Steps multiplier lengthens part
	// two enough to host its own measurement window.
	const n, c = 4, 2
	g := graph.Complete(n)
	a, err := chanassign.Identical(n, c, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	p := Params{N: n, C: c, K: c, KMax: c, Delta: n - 1, Tuning: Tuning{P2Steps: 30}}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	master := rng.New(32)
	seeks := make([]*CSeek, n)
	protos := make([]radio.Protocol, n)
	for u := 0; u < n; u++ {
		s, err := NewCSeek(p, Env{ID: radio.NodeID(u), C: c, Rand: master.Split(uint64(u))})
		if err != nil {
			t.Fatal(err)
		}
		seeks[u] = s
		protos[u] = s
	}
	if banked {
		NewSeekBank(seeks)
	}
	e, err := radio.NewEngine(&radio.Network{Graph: g, Assign: a}, protos)
	if err != nil {
		t.Fatal(err)
	}
	if e.RangeDispatch() != banked {
		t.Fatalf("banked=%v but RangeDispatch=%v", banked, e.RangeDispatch())
	}
	p1 := seeks[0].PartOneSlots()
	total := seeks[0].TotalSlots()
	if p1 < 4000 || total-p1 < 400 {
		t.Fatalf("schedule too short for the test layout: p1=%d total=%d", p1, total)
	}

	// Part-one steady state: warm up past the (seed-deterministic)
	// last discovery; every node must have found all neighbors by
	// then, so no discovery records allocate during measurement.
	target := p1 - 1600
	e.Run(target)
	for u, s := range seeks {
		if s.DiscoveredCount() != n-1 {
			t.Fatalf("node %d discovered %d/%d neighbors after warm-up", u, s.DiscoveredCount(), n-1)
		}
	}
	step := func() {
		target += 100
		e.Run(target)
	}
	if avg := testing.AllocsPerRun(10, step); avg != 0 {
		t.Errorf("part-one steady state allocates %.2f/100 slots, want 0", avg)
	}

	// Part-two steady state: cross into part two (the first back-off
	// steps allocate the reusable decision buffer), then measure.
	target = p1 + 60
	e.Run(target)
	stepP2 := func() {
		target += 40
		e.Run(target)
	}
	if avg := testing.AllocsPerRun(5, stepP2); avg != 0 {
		t.Errorf("part-two steady state allocates %.2f/40 slots, want 0", avg)
	}
	if e.Stats().Deliveries == 0 {
		t.Fatal("workload produced no deliveries; test exercises nothing")
	}
}
