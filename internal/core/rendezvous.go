package core

import (
	"fmt"

	"crn/internal/radio"
)

// Rendezvous-style baselines (Section 2, related work). Channel-
// hopping rendezvous algorithms guarantee that neighbors repeatedly
// land on shared channels, but — as the paper argues — "simple meeting
// does not always imply successful exchange of identities": when many
// nodes meet at once, collisions destroy the frames. These protocols
// let experiments separate meetings from deliveries and show that the
// contention resolution CSEEK layers on top is what actually solves
// discovery.

// HopStrategy selects how a hopping broadcaster decides to transmit.
type HopStrategy uint8

// Broadcaster strategies.
const (
	// HopAlways broadcasts in every slot — pure rendezvous behavior.
	HopAlways HopStrategy = iota + 1
	// HopCoin broadcasts with probability 1/2.
	HopCoin
	// HopBackoff sweeps the CSEEK back-off levels: in successive slots
	// it broadcasts with probability 2^i/2^(lgΔ), i cycling 0..lgΔ-1.
	HopBackoff
)

// String implements fmt.Stringer.
func (s HopStrategy) String() string {
	switch s {
	case HopAlways:
		return "always"
	case HopCoin:
		return "coin"
	case HopBackoff:
		return "backoff"
	default:
		return fmt.Sprintf("HopStrategy(%d)", uint8(s))
	}
}

// HopBroadcaster hops among channels and broadcasts its identity
// according to a strategy. Hopping is either uniformly random or a
// modular-clock sequence ch = (rate·t + phase) mod c, the classic
// deterministic rendezvous pattern.
type HopBroadcaster struct {
	env      Env
	strategy HopStrategy
	lgDelta  int
	modular  bool
	rate     int
	phase    int
	slot     int64
	maxSlots int64
}

var _ radio.Protocol = (*HopBroadcaster)(nil)

// NewHopBroadcaster returns a hopping broadcaster running for maxSlots
// slots. If modular is true the hop sequence is the modular clock with
// the given rate and phase (rate should be coprime with c to visit
// every channel).
func NewHopBroadcaster(p Params, env Env, strategy HopStrategy, modular bool, rate, phase int, maxSlots int64) (*HopBroadcaster, error) {
	if err := p.Normalize(); err != nil {
		return nil, err
	}
	if env.C != p.C {
		return nil, fmt.Errorf("core: env has %d channels, params say %d", env.C, p.C)
	}
	if maxSlots < 1 {
		return nil, fmt.Errorf("core: maxSlots must be >= 1, got %d", maxSlots)
	}
	switch strategy {
	case HopAlways, HopCoin, HopBackoff:
	default:
		return nil, fmt.Errorf("core: unknown hop strategy %d", strategy)
	}
	if modular && rate < 1 {
		return nil, fmt.Errorf("core: modular rate must be >= 1, got %d", rate)
	}
	return &HopBroadcaster{
		env:      env,
		strategy: strategy,
		lgDelta:  p.LgDelta(),
		modular:  modular,
		rate:     rate,
		phase:    phase,
		maxSlots: maxSlots,
	}, nil
}

// Act implements radio.Protocol.
func (h *HopBroadcaster) Act(_ int64) radio.Action {
	var ch int
	if h.modular {
		ch = (h.rate*int(h.slot%int64(h.env.C*h.env.C)) + h.phase) % h.env.C
	} else {
		ch = h.env.Rand.Intn(h.env.C)
	}
	transmit := false
	switch h.strategy {
	case HopAlways:
		transmit = true
	case HopCoin:
		transmit = h.env.Rand.Bool()
	case HopBackoff:
		level := int(h.slot) % h.lgDelta
		prob := float64(int64(1)<<uint(level)) / float64(int64(1)<<uint(h.lgDelta))
		transmit = h.env.Rand.Bernoulli(prob)
	}
	if transmit {
		return radio.Action{Kind: radio.Broadcast, Ch: ch}
	}
	return radio.Action{Kind: radio.Idle, Ch: ch}
}

// Observe implements radio.Protocol.
func (h *HopBroadcaster) Observe(_ int64, _ *radio.Message) { h.slot++ }

// Done implements radio.Protocol.
func (h *HopBroadcaster) Done() bool { return h.slot >= h.maxSlots }

// ListenRecorder hops uniformly and records every identity heard —
// the measurement side of the rendezvous experiments.
type ListenRecorder struct {
	env      Env
	slot     int64
	maxSlots int64
	heard    map[radio.NodeID]int64
}

var _ radio.Protocol = (*ListenRecorder)(nil)

// NewListenRecorder returns a recorder running for maxSlots slots.
func NewListenRecorder(p Params, env Env, maxSlots int64) (*ListenRecorder, error) {
	if err := p.Normalize(); err != nil {
		return nil, err
	}
	if env.C != p.C {
		return nil, fmt.Errorf("core: env has %d channels, params say %d", env.C, p.C)
	}
	if maxSlots < 1 {
		return nil, fmt.Errorf("core: maxSlots must be >= 1, got %d", maxSlots)
	}
	return &ListenRecorder{env: env, maxSlots: maxSlots, heard: make(map[radio.NodeID]int64)}, nil
}

// Act implements radio.Protocol.
func (l *ListenRecorder) Act(_ int64) radio.Action {
	return radio.Action{Kind: radio.Listen, Ch: l.env.Rand.Intn(l.env.C)}
}

// Observe implements radio.Protocol.
func (l *ListenRecorder) Observe(_ int64, msg *radio.Message) {
	if msg != nil {
		if _, ok := l.heard[msg.From]; !ok {
			l.heard[msg.From] = l.slot
		}
	}
	l.slot++
}

// Done implements radio.Protocol.
func (l *ListenRecorder) Done() bool { return l.slot >= l.maxSlots }

// HeardCount returns the number of distinct identities heard.
func (l *ListenRecorder) HeardCount() int { return len(l.heard) }

// FirstHeard returns when id was first heard, or -1.
func (l *ListenRecorder) FirstHeard(id radio.NodeID) int64 {
	if s, ok := l.heard[id]; ok {
		return s
	}
	return -1
}

// LastFirstHeard returns the latest first-heard slot across all heard
// identities (the time the listener completed its census), or -1 if
// nothing was heard.
func (l *ListenRecorder) LastFirstHeard() int64 {
	last := int64(-1)
	for _, s := range l.heard {
		if s > last {
			last = s
		}
	}
	return last
}
