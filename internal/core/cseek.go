package core

import (
	"fmt"

	"crn/internal/radio"
)

// CSEEK (Section 4.2, Figure 1) solves neighbor discovery in
// O~((c²/k) + (kmax/k)·Δ) slots, w.h.p.
//
// Part one: Θ((c²/k)·lg n) steps. Each step the node goes to a
// uniformly random channel, flips a fair coin to become broadcaster or
// listener, and runs COUNT on that channel. Listeners accumulate the
// per-channel counts (the channel "density" samples) and record every
// identity heard; broadcasters announce their identity per the COUNT
// schedule.
//
// Part two: Θ((kmax/k)·Δ·lg n) steps of lg Δ slots. Each step the node
// flips a coin: a broadcaster picks a uniformly random channel and runs
// a back-off (broadcast with probability 2^(i-1)/Δ in the i-th slot); a
// listener picks a channel with probability proportional to the count
// it accumulated in part one — spending its time where it expects the
// most undiscovered neighbors — and records every identity heard.
//
// CKSEEK (Section 4.4) is the same machine with shorter schedules: part
// one Θ((c²/k̂)·lg n) steps and part two Θ(((kmax/k̂)·Δ_k̂ + Δ + c)·lg n)
// steps, solving k̂-neighbor-discovery (Theorem 6).
//
// The same machine also doubles as CGCAST's message-exchange primitive:
// with a Payload attached, every pair of neighbors exchanges the
// payload during one execution (Section 5.1 observes that a neighbor
// discovery run is exactly a pairwise exchange).

// SeekMessage is the frame CSEEK broadcasts: the sender's identity
// travels as radio.Message.From; Payload is nil during plain discovery
// and carries protocol data when CSEEK is used as an exchange
// primitive by CGCAST.
type SeekMessage struct {
	Payload any
}

// SeekObservation records the first time an identity was heard.
type SeekObservation struct {
	// Slot is the engine slot (relative to this CSEEK run's start) in
	// which the identity was first heard.
	Slot int64
	// Payload is the payload attached to the most recently heard
	// message from this sender.
	Payload any
}

// CSeek is the CSEEK/CKSEEK protocol state machine for one node.
type CSeek struct {
	params Params
	env    Env
	sched  seekSchedule

	// Payload, when non-nil, is attached to every broadcast frame (the
	// exchange-primitive mode).
	payload any
	// frame is the pre-boxed SeekMessage carrying payload: boxing the
	// struct into Action.Data once here instead of per Act keeps the
	// engine's steady state allocation-free.
	frame any

	// recordChannels, when set, logs the local channel used in every
	// slot; CGCAST needs the log to fix dedicated channels.
	recordChannels bool
	channelLog     []int32

	slot int64 // slots consumed so far (also the next Act's offset)

	// Per-step state.
	stepKind    stepKind
	isListener  bool
	ch          int // local channel for this step
	stepSlot    int // slot offset within the current step
	p1Round     int // COUNT round within a part-one step, incremental
	p1SlotInRnd int // slot within that round
	counter     countListener
	p2Broadcast []bool // precomputed back-off decisions for a part-two step

	// Accumulated results.
	counts   []int64 // per-local-channel COUNT totals from part one
	countSum int64
	observed map[radio.NodeID]*SeekObservation

	// bank/bankIdx back-reference the SeekBank this machine is a member
	// of (range dispatch, see bank.go); nil means per-node dispatch.
	bank    *SeekBank
	bankIdx int
}

type stepKind uint8

const (
	partOne stepKind = iota + 1
	partTwo
	finished
)

// seekSchedule fixes the step layout of one CSEEK/CKSEEK execution.
type seekSchedule struct {
	p1Steps     int
	p2Steps     int
	count       countSchedule
	countTotal  int // count.TotalSlots(), cached for the per-slot path
	p2SlotsStep int
}

func (s seekSchedule) totalSlots() int64 {
	return int64(s.p1Steps)*int64(s.count.TotalSlots()) + int64(s.p2Steps)*int64(s.p2SlotsStep)
}

// NewCSeek returns the CSEEK machine for one node (Theorem 4
// schedule).
func NewCSeek(p Params, env Env) (*CSeek, error) {
	if err := p.Normalize(); err != nil {
		return nil, err
	}
	lgn := p.LgN()
	p1 := scaledSteps(p.Tuning.P1Steps, ceilDiv(p.C*p.C, p.K), lgn)
	p2 := scaledSteps(p.Tuning.P2Steps, ceilDiv(p.KMax*p.Delta, p.K), lgn)
	return newSeek(p, env, p1, p2)
}

// NewCKSeek returns the CKSEEK machine for k̂-neighbor-discovery
// (Theorem 6 schedule). khat must be in [k, kmax]; deltaKhat is Δ_k̂,
// the maximum number of good neighbors a node can have (pass Δ when no
// estimate is available, matching the paper's fallback).
func NewCKSeek(p Params, env Env, khat, deltaKhat int) (*CSeek, error) {
	if err := p.Normalize(); err != nil {
		return nil, err
	}
	if khat < p.K || khat > p.KMax {
		return nil, fmt.Errorf("core: k̂ must be in [k,kmax] = [%d,%d], got %d", p.K, p.KMax, khat)
	}
	if deltaKhat < 0 || deltaKhat > p.Delta {
		return nil, fmt.Errorf("core: Δ_k̂ must be in [0,Δ] = [0,%d], got %d", p.Delta, deltaKhat)
	}
	lgn := p.LgN()
	p1 := scaledSteps(p.Tuning.P1Steps, ceilDiv(p.C*p.C, khat), lgn)
	base := ceilDiv(p.KMax*deltaKhat, khat) + p.Delta + p.C
	p2 := scaledSteps(p.Tuning.P2Steps, base, lgn)
	return newSeek(p, env, p1, p2)
}

func newSeek(p Params, env Env, p1Steps, p2Steps int) (*CSeek, error) {
	if env.C != p.C {
		return nil, fmt.Errorf("core: env has %d channels, params say %d", env.C, p.C)
	}
	if env.Rand == nil {
		return nil, fmt.Errorf("core: env needs a random source")
	}
	count := p.countSchedule()
	sched := seekSchedule{
		p1Steps:     p1Steps,
		p2Steps:     p2Steps,
		count:       count,
		countTotal:  count.TotalSlots(),
		p2SlotsStep: p.LgDelta(),
	}
	// The observed map tops out at the node's neighbor count; pre-size
	// it to Δ so steady-state discovery never rehashes.
	s := &CSeek{
		params:   p,
		env:      env,
		sched:    sched,
		frame:    SeekMessage{},
		counts:   make([]int64, p.C),
		observed: make(map[radio.NodeID]*SeekObservation, p.Delta),
		counter:  newCountListener(sched.count),
		stepKind: partOne,
	}
	if p1Steps == 0 {
		s.stepKind = partTwo
	}
	s.beginStep()
	return s, nil
}

// SetPayload attaches a payload broadcast with every frame (exchange-
// primitive mode). Must be called before the run starts.
func (s *CSeek) SetPayload(data any) {
	s.payload = data
	s.frame = SeekMessage{Payload: data}
}

// RecordChannels enables the per-slot channel log needed by CGCAST's
// dedicated-channel fixing. Must be called before the run starts.
func (s *CSeek) RecordChannels() {
	s.recordChannels = true
	s.channelLog = make([]int32, 0, s.sched.totalSlots())
}

// TotalSlots returns the fixed length of this execution.
func (s *CSeek) TotalSlots() int64 { return s.sched.totalSlots() }

// MinDoneSlots implements radio.FixedSchedule: CSEEK's state machine
// reaches `finished` exactly when its fixed schedule ends, never
// earlier, so the engine may skip Done polls until then.
func (s *CSeek) MinDoneSlots() int64 { return s.sched.totalSlots() }

// PartOneSlots returns the slot count of part one (the density-
// sampling part, O~((c²/k)·lg³n)).
func (s *CSeek) PartOneSlots() int64 {
	return int64(s.sched.p1Steps) * int64(s.sched.count.TotalSlots())
}

// PartTwoSlots returns the slot count of part two (the density-guided
// part, O~((kmax/k)·Δ·lg²n)).
func (s *CSeek) PartTwoSlots() int64 {
	return int64(s.sched.p2Steps) * int64(s.sched.p2SlotsStep)
}

// beginStep rolls the per-step random choices.
func (s *CSeek) beginStep() {
	s.stepSlot = 0
	switch s.stepKind {
	case partOne:
		s.ch = s.env.Rand.Intn(s.env.C)
		s.isListener = s.env.Rand.Bool()
		s.p1Round = 0
		s.p1SlotInRnd = 0
		s.counter.reset()
	case partTwo:
		s.isListener = s.env.Rand.Bool()
		if s.isListener {
			if s.countSum > 0 {
				s.ch = s.env.Rand.WeightedChoice(s.counts)
			} else {
				// No density information (no counts triggered in part
				// one): fall back to uniform.
				s.ch = s.env.Rand.Intn(s.env.C)
			}
		} else {
			s.ch = s.env.Rand.Intn(s.env.C)
			// Back-off: broadcast with probability 2^(i-1)/Δ in slot i.
			if cap(s.p2Broadcast) < s.sched.p2SlotsStep {
				s.p2Broadcast = make([]bool, s.sched.p2SlotsStep)
			}
			s.p2Broadcast = s.p2Broadcast[:s.sched.p2SlotsStep]
			denom := int64(1) << uint(s.sched.p2SlotsStep)
			for i := range s.p2Broadcast {
				// Slot i (0-based): probability 2^i / 2^(lgΔ).
				p := float64(int64(1)<<uint(i)) / float64(denom)
				s.p2Broadcast[i] = s.env.Rand.Bernoulli(p)
			}
		}
	}
}

// Act implements radio.Protocol.
func (s *CSeek) Act(_ int64) radio.Action {
	var a radio.Action
	switch s.stepKind {
	case partOne:
		if s.isListener {
			a = radio.Action{Kind: radio.Listen, Ch: s.ch}
		} else {
			if s.env.Rand.Bernoulli(s.sched.count.broadcastProb(s.p1Round)) {
				a = radio.Action{Kind: radio.Broadcast, Ch: s.ch, Data: s.frame}
			} else {
				// Stay tuned to the step's channel while silent so the
				// channel log stays meaningful.
				a = radio.Action{Kind: radio.Idle, Ch: s.ch}
			}
		}
	case partTwo:
		if s.isListener {
			a = radio.Action{Kind: radio.Listen, Ch: s.ch}
		} else if s.p2Broadcast[s.stepSlot] {
			a = radio.Action{Kind: radio.Broadcast, Ch: s.ch, Data: s.frame}
		} else {
			a = radio.Action{Kind: radio.Idle, Ch: s.ch}
		}
	default:
		a = radio.Action{Kind: radio.Idle}
	}
	if s.recordChannels {
		s.channelLog = append(s.channelLog, int32(s.ch))
	}
	return a
}

// Observe implements radio.Protocol.
func (s *CSeek) Observe(_ int64, msg *radio.Message) {
	if msg == nil {
		s.observeOutcome(false, 0, nil)
		return
	}
	s.observeOutcome(true, msg.From, msg.Data)
}

// observeOutcome is Observe with the delivery already unpacked: the
// SeekBank's range dispatch feeds outcomes here directly, so both
// dispatch modes run the identical state machine (byte-identity by
// construction) and the range path never materializes a Message.
func (s *CSeek) observeOutcome(heard bool, from radio.NodeID, data any) {
	switch s.stepKind {
	case partOne:
		if s.isListener {
			s.counter.observeOutcome(heard, from)
			s.note(heard, from, data)
		}
		s.stepSlot++
		s.p1SlotInRnd++
		if s.p1SlotInRnd == s.sched.count.slotsPerRound {
			s.p1Round++
			s.p1SlotInRnd = 0
		}
		if s.stepSlot == s.sched.countTotal {
			if s.isListener {
				c := s.counter.count()
				s.counts[s.ch] += c
				s.countSum += c
			}
			s.advanceStep()
		}
	case partTwo:
		if s.isListener {
			s.note(heard, from, data)
		}
		s.stepSlot++
		if s.stepSlot == s.sched.p2SlotsStep {
			s.advanceStep()
		}
	}
	s.slot++
}

func (s *CSeek) advanceStep() {
	switch s.stepKind {
	case partOne:
		if s.stepsDone(partOne) {
			s.stepKind = partTwo
			if s.sched.p2Steps == 0 {
				s.stepKind = finished
				return
			}
		}
	case partTwo:
		if s.stepsDone(partTwo) {
			s.stepKind = finished
			return
		}
	}
	s.beginStep()
}

// stepsDone reports whether the slots consumed so far complete the
// given part (called only at step boundaries).
func (s *CSeek) stepsDone(k stepKind) bool {
	p1Slots := int64(s.sched.p1Steps) * int64(s.sched.count.TotalSlots())
	switch k {
	case partOne:
		return s.slot+1 >= p1Slots
	case partTwo:
		return s.slot+1 >= p1Slots+int64(s.sched.p2Steps)*int64(s.sched.p2SlotsStep)
	}
	return true
}

func (s *CSeek) note(heard bool, from radio.NodeID, data any) {
	if !heard {
		return
	}
	var payload any
	if sm, ok := data.(SeekMessage); ok {
		payload = sm.Payload
	}
	if obs, ok := s.observed[from]; ok {
		obs.Payload = payload
		return
	}
	s.observed[from] = &SeekObservation{Slot: s.slot, Payload: payload}
}

// Done implements radio.Protocol.
func (s *CSeek) Done() bool { return s.stepKind == finished }

// Discovered returns the identities heard so far. The caller owns the
// returned slice.
func (s *CSeek) Discovered() []radio.NodeID {
	out := make([]radio.NodeID, 0, len(s.observed))
	for id := range s.observed {
		out = append(out, id)
	}
	return out
}

// Observation returns the record for one identity, or nil if it was
// never heard.
func (s *CSeek) Observation(id radio.NodeID) *SeekObservation {
	return s.observed[id]
}

// DiscoveredCount returns the number of distinct identities heard.
func (s *CSeek) DiscoveredCount() int { return len(s.observed) }

// ChannelAt returns the local channel the node was tuned to in the
// given slot of this run; RecordChannels must have been enabled.
func (s *CSeek) ChannelAt(slot int64) (int32, bool) {
	if !s.recordChannels || slot < 0 || slot >= int64(len(s.channelLog)) {
		return 0, false
	}
	return s.channelLog[slot], true
}

// Counts returns the per-local-channel density counts accumulated in
// part one. The caller must not modify the slice.
func (s *CSeek) Counts() []int64 { return s.counts }
