package core

import (
	"testing"

	"crn/internal/chanassign"
	"crn/internal/graph"
	"crn/internal/radio"
	"crn/internal/rng"
)

// TestLemma2PartOneSuffices reproduces Lemma 2 at test scale: when no
// channel is crowded (every channel hosts far fewer than 8c of a
// node's neighbors), part one alone discovers every pair — all
// first-heard slots land before part two begins.
func TestLemma2PartOneSuffices(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	g, err := graph.GNP(16, 0.3, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	a, err := chanassign.SharedCore(16, 5, 2, rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	in := buildInstance(t, g, a)
	// Precondition of the lemma: Δ < 8c means no channel can be
	// crowded in the Lemma 2/3 sense.
	if in.p.Delta >= 8*in.p.C {
		t.Fatalf("instance is crowded (Δ=%d ≥ 8c=%d); not a Lemma 2 workload", in.p.Delta, 8*in.p.C)
	}
	ds := runDiscovery(t, in, func(u int, env Env) Discoverer {
		s, err := NewCSeek(in.p, env)
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
	late := 0
	for u := 0; u < g.N(); u++ {
		s := ds[u].(*CSeek)
		for _, v := range g.Neighbors(u) {
			obs := s.Observation(radio.NodeID(v))
			if obs == nil {
				t.Errorf("node %d never heard neighbor %d", u, v)
				continue
			}
			if obs.Slot >= s.PartOneSlots() {
				late++
			}
		}
	}
	// Lemma 2 is a w.h.p. statement; allow a tiny tail.
	if late > 2 {
		t.Errorf("%d first-hearings landed in part two on an uncrowded instance", late)
	}
}

// TestCGCastFullStar runs the full-fidelity pipeline on a star — a
// topology where one physical node simulates every virtual line-graph
// node, exercising the local-simulation path of the coloring.
func TestCGCastFullStar(t *testing.T) {
	if testing.Short() {
		t.Skip("slow full-fidelity test")
	}
	g := graph.Star(5)
	a, err := chanassign.SharedCore(5, 3, 2, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	nw := &radio.Network{Graph: g, Assign: a}
	k, kmax := a.OverlapRange(g)
	p := Params{N: 5, C: 3, K: k, KMax: kmax, Delta: g.MaxDegree()}
	res, err := RunCGCast(nw, BroadcastConfig{
		Params:  p,
		D:       g.Diameter(),
		Source:  2, // start from a leaf: message must cross the center
		Message: "m",
		Mode:    ExchangeFull,
		Seed:    24,
	})
	if err != nil {
		t.Fatal(err)
	}
	for u, inf := range res.Informed {
		if !inf {
			t.Errorf("node %d uninformed", u)
		}
	}
	if !res.ColoringValid || res.EdgesDropped != 0 {
		t.Errorf("coloring valid=%v dropped=%d", res.ColoringValid, res.EdgesDropped)
	}
}

// TestCGCastFullHeterogeneous runs full fidelity with skewed overlaps,
// covering dedicated-channel fixing when pairs share different
// channel counts.
func TestCGCastFullHeterogeneous(t *testing.T) {
	if testing.Short() {
		t.Skip("slow full-fidelity test")
	}
	g := graph.Path(4)
	a, err := chanassign.Heterogeneous(g, 6, 2, 4, 0.5, rng.New(25))
	if err != nil {
		t.Fatal(err)
	}
	nw := &radio.Network{Graph: g, Assign: a}
	k, kmax := a.OverlapRange(g)
	p := Params{N: 4, C: 6, K: k, KMax: kmax, Delta: g.MaxDegree()}
	res, err := RunCGCast(nw, BroadcastConfig{
		Params:  p,
		D:       g.Diameter(),
		Source:  0,
		Message: 42,
		Mode:    ExchangeFull,
		Seed:    26,
	})
	if err != nil {
		t.Fatal(err)
	}
	for u, inf := range res.Informed {
		if !inf {
			t.Errorf("node %d uninformed", u)
		}
	}
	if res.EdgesColored != g.M() {
		t.Errorf("colored %d of %d edges", res.EdgesColored, g.M())
	}
}
