package core

import (
	"testing"

	"crn/internal/chanassign"
	"crn/internal/graph"
	"crn/internal/radio"
	"crn/internal/rng"
)

// runCount executes one standalone COUNT with m broadcasters around a
// listening star center and returns the center's estimate.
func runCount(t *testing.T, m int, seed uint64) int64 {
	t.Helper()
	n := m + 1
	g := graph.Star(n)
	a, err := chanassign.Identical(n, 1, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	delta := m
	if delta < 1 {
		delta = 1
	}
	p := Params{N: n, C: 1, K: 1, KMax: 1, Delta: delta}
	master := rng.New(seed ^ 0xC0FFEE)

	protos := make([]radio.Protocol, n)
	listener, err := NewCountListen(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	protos[0] = listener
	for i := 1; i < n; i++ {
		env := Env{ID: radio.NodeID(i), C: 1, Rand: master.Split(uint64(i))}
		b, err := NewCountBroadcast(p, env, 0)
		if err != nil {
			t.Fatal(err)
		}
		protos[i] = b
	}
	e, err := radio.NewEngine(&radio.Network{Graph: g, Assign: a}, protos)
	if err != nil {
		t.Fatal(err)
	}
	st := e.Run(1 << 20)
	if !st.Completed {
		t.Fatal("COUNT did not complete")
	}
	return listener.Count()
}

// TestCountLemma1 verifies the Lemma 1 guarantee: the estimate lands in
// [m, 4m] (exactly m for m ≤ 1), across broadcaster populations and
// trials. A tiny failure budget reflects "w.h.p.".
func TestCountLemma1(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const trials = 20
	failures, total := 0, 0
	for _, m := range []int{1, 2, 3, 5, 8, 13, 16, 25, 31} {
		for trial := 0; trial < trials; trial++ {
			got := runCount(t, m, uint64(1000*m+trial))
			total++
			lo, hi := int64(m), int64(4*m)
			if got < lo || got > hi {
				failures++
				t.Logf("m=%d trial=%d: estimate %d outside [%d,%d]", m, trial, got, lo, hi)
			}
		}
	}
	if failures > total/50 {
		t.Errorf("%d/%d COUNT estimates outside [m,4m]", failures, total)
	}
}

func TestCountZeroBroadcasters(t *testing.T) {
	// Direct listener unit: silence in every slot yields count 0.
	p := Params{N: 8, C: 1, K: 1, KMax: 1, Delta: 4}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	l := newCountListener(p.countSchedule())
	for s := 0; s < p.countSchedule().TotalSlots(); s++ {
		l.observe(nil)
	}
	if got := l.count(); got != 0 {
		t.Errorf("count = %d for pure silence, want 0", got)
	}
}

func TestCountListenerTriggerRule(t *testing.T) {
	// A listener that hears every slot of round 0 must adopt estimate 4
	// (round 0 has 1-based index 1, estimate 2^(1+1)).
	p := Params{N: 16, C: 1, K: 1, KMax: 1, Delta: 8}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	sched := p.countSchedule()
	l := newCountListener(sched)
	msg := &radio.Message{From: 7}
	for s := 0; s < sched.TotalSlots(); s++ {
		if sched.round(s) == 0 {
			l.observe(msg)
		} else {
			l.observe(nil)
		}
	}
	if got := l.count(); got != 4 {
		t.Errorf("count = %d, want 4", got)
	}
}

func TestCountListenerLaterRound(t *testing.T) {
	// Hearing only in round 2 (estimate 4) yields count 2^(3+1) = 16.
	p := Params{N: 16, C: 1, K: 1, KMax: 1, Delta: 8}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	sched := p.countSchedule()
	l := newCountListener(sched)
	msg := &radio.Message{From: 3}
	for s := 0; s < sched.TotalSlots(); s++ {
		if sched.round(s) == 2 {
			l.observe(msg)
		} else {
			l.observe(nil)
		}
	}
	if got := l.count(); got != 16 {
		t.Errorf("count = %d, want 16", got)
	}
}

func TestCountListenerBelowThresholdFallback(t *testing.T) {
	// One lone message in one round stays below the trigger fraction,
	// so the count falls back to the number of distinct identities.
	p := Params{N: 64, C: 1, K: 1, KMax: 1, Delta: 16}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	sched := p.countSchedule()
	if sched.slotsPerRound < 10 {
		t.Skip("round too short for a sub-threshold test")
	}
	l := newCountListener(sched)
	for s := 0; s < sched.TotalSlots(); s++ {
		if s == 1 {
			l.observe(&radio.Message{From: 9})
		} else {
			l.observe(nil)
		}
	}
	if got := l.count(); got != 1 {
		t.Errorf("count = %d, want fallback distinct count 1", got)
	}
}

func TestCountHeardIdentities(t *testing.T) {
	g := graph.Star(4)
	a, err := chanassign.Identical(4, 1, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	p := Params{N: 4, C: 1, K: 1, KMax: 1, Delta: 3}
	master := rng.New(77)
	listener, err := NewCountListen(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	protos := []radio.Protocol{listener, nil, nil, nil}
	for i := 1; i < 4; i++ {
		b, err := NewCountBroadcast(p, Env{ID: radio.NodeID(i), C: 1, Rand: master.Split(uint64(i))}, 0)
		if err != nil {
			t.Fatal(err)
		}
		protos[i] = b
	}
	e, err := radio.NewEngine(&radio.Network{Graph: g, Assign: a}, protos)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(1 << 20)
	heard := listener.Heard()
	if len(heard) != 3 {
		t.Errorf("heard %d distinct broadcasters, want 3 (got %v)", len(heard), heard)
	}
}

func TestCountScheduleShape(t *testing.T) {
	p := Params{N: 64, C: 4, K: 2, KMax: 2, Delta: 16}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	s := p.countSchedule()
	// lg 16 = 4 rounds plus one: estimates 1,2,4,8,16 reach Δ.
	if s.rounds != 5 {
		t.Errorf("rounds = %d, want 5", s.rounds)
	}
	if s.slotsPerRound < p.Tuning.CountMinRoundSlots {
		t.Errorf("slotsPerRound = %d below floor %d", s.slotsPerRound, p.Tuning.CountMinRoundSlots)
	}
	if s.TotalSlots() != s.rounds*s.slotsPerRound {
		t.Error("TotalSlots inconsistent")
	}
	if got := s.broadcastProb(0); got != 1 {
		t.Errorf("broadcastProb(0) = %v, want 1", got)
	}
	if got := s.broadcastProb(3); got != 0.125 {
		t.Errorf("broadcastProb(3) = %v, want 0.125", got)
	}
}

func TestParamsValidation(t *testing.T) {
	tests := []struct {
		name string
		p    Params
	}{
		{name: "zero n", p: Params{N: 0, C: 1, K: 1, KMax: 1, Delta: 1}},
		{name: "zero c", p: Params{N: 2, C: 0, K: 1, KMax: 1, Delta: 1}},
		{name: "k over c", p: Params{N: 2, C: 2, K: 3, KMax: 3, Delta: 1}},
		{name: "kmax under k", p: Params{N: 2, C: 4, K: 3, KMax: 2, Delta: 1}},
		{name: "delta over n-1", p: Params{N: 4, C: 2, K: 1, KMax: 1, Delta: 4}},
		{name: "zero delta", p: Params{N: 4, C: 2, K: 1, KMax: 1, Delta: 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Normalize(); err == nil {
				t.Errorf("Normalize accepted %+v", tt.p)
			}
		})
	}
}

func TestLg2(t *testing.T) {
	tests := []struct{ in, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {16, 4}, {17, 5}, {1024, 10},
	}
	for _, tt := range tests {
		if got := lg2(tt.in); got != tt.want {
			t.Errorf("lg2(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}
