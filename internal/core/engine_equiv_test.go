package core

import (
	"fmt"
	"sort"
	"testing"

	"crn/internal/chanassign"
	"crn/internal/graph"
	"crn/internal/radio"
	"crn/internal/rng"
	"crn/internal/spectrum"
)

// TestCrossEngineEquivalenceUnderJammers is the cross-engine
// determinism lockdown for the spectrum subsystem: for every jammer
// family, the sequential engine (Run) and the goroutine-parallel
// engine (RunParallel at 1/2/4/8 workers) must produce identical
// results on the same seed — identical Stats and identical per-node
// protocol outcomes — table-driven across all four primitives' protocol
// stacks (CSEEK, CKSEEK, CGCAST dissemination, flooding). Stateful
// jammers (the reactive adversary) are re-instantiated per engine via
// spectrum.RunScoped, exactly as the facade does per run.
func TestCrossEngineEquivalenceUnderJammers(t *testing.T) {
	const n, c, k, seed = 10, 4, 2, 5
	g, err := graph.GNP(n, 0.4, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	a, err := chanassign.SharedCore(n, c, k, rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	p := Params{N: n, C: c, K: k, KMax: k, Delta: g.MaxDegree()}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	d := g.Diameter()
	if d < 1 {
		d = 1
	}
	const horizon = 1 << 18

	markov, err := spectrum.NewMarkov(a.Universe, horizon, 0.05, 0.15, 7)
	if err != nil {
		t.Fatal(err)
	}
	poisson, err := spectrum.NewPoisson(a.Universe, horizon, 0.01, 12, spectrum.HoldGeometric, 7)
	if err != nil {
		t.Fatal(err)
	}
	jammers := []struct {
		name string
		j    spectrum.Jammer
	}{
		{"markov", markov},
		{"poisson", poisson},
		{"adversary", spectrum.NewReactiveAdversary(2)},
		{"compose", spectrum.Compose(markov, spectrum.NewReactiveAdversary(1))},
	}

	// Each primitive builds a fresh protocol stack and returns a
	// per-node outcome fingerprint extractor.
	type stack struct {
		protos  []radio.Protocol
		slots   int64
		outcome func() string
	}
	discoveryStack := func(t *testing.T, mk func(Env) (Discoverer, error)) stack {
		t.Helper()
		master := rng.New(seed + 2)
		ds := make([]Discoverer, n)
		protos := make([]radio.Protocol, n)
		for u := 0; u < n; u++ {
			dv, err := mk(Env{ID: radio.NodeID(u), C: c, Rand: master.Split(uint64(u))})
			if err != nil {
				t.Fatal(err)
			}
			ds[u] = dv
			protos[u] = dv
		}
		return stack{protos: protos, slots: ds[0].TotalSlots(), outcome: func() string {
			out := ""
			for u := 0; u < n; u++ {
				ids := ds[u].Discovered()
				sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
				out += fmt.Sprintf("%d:%v;", u, ids)
			}
			return out
		}}
	}
	primitives := []struct {
		name  string
		build func(t *testing.T, nw *radio.Network) stack
	}{
		{"cseek", func(t *testing.T, _ *radio.Network) stack {
			return discoveryStack(t, func(env Env) (Discoverer, error) { return NewCSeek(p, env) })
		}},
		{"ckseek", func(t *testing.T, _ *radio.Network) stack {
			return discoveryStack(t, func(env Env) (Discoverer, error) { return NewCKSeek(p, env, k, p.Delta) })
		}},
		{"cgcast-dissem", func(t *testing.T, nw *radio.Network) stack {
			// Setup runs in abstract mode (no engine involved), so only
			// the dissemination stage exercises the engines under test —
			// built the same way DisseminateCtx builds it.
			session, err := PrepareCGCast(nw, SessionConfig{Params: p, Seed: seed + 3})
			if err != nil {
				t.Fatal(err)
			}
			rounds := scaledSteps(p.Tuning.DissemRounds, 1, p.LgN())
			master := rng.New(seed + 4)
			dps := make([]*dissemProto, n)
			protos := make([]radio.Protocol, n)
			for u := 0; u < n; u++ {
				dp := &dissemProto{
					env:      Env{ID: radio.NodeID(u), C: c, Rand: master.Split(uint64(u))},
					schedule: session.schedules[u],
					phases:   d,
					rounds:   rounds,
					lgDelta:  p.LgDelta(),
					delta:    p.Delta,
					informed: u == 0,
					msg:      "m",
					frame:    dissemMessage{Body: "m"},
				}
				dps[u] = dp
				protos[u] = dp
			}
			return stack{protos: protos, slots: dps[0].totalSlots(), outcome: func() string {
				out := ""
				for u, dp := range dps {
					out += fmt.Sprintf("%d:%v@%d;", u, dp.informed, dp.informedAt)
				}
				return out
			}}
		}},
		{"flood", func(t *testing.T, _ *radio.Network) stack {
			master := rng.New(seed + 5)
			fls := make([]*Flood, n)
			protos := make([]radio.Protocol, n)
			for u := 0; u < n; u++ {
				fl, err := NewFlood(p, Env{ID: radio.NodeID(u), C: c, Rand: master.Split(uint64(u))}, d, u == 0, "m")
				if err != nil {
					t.Fatal(err)
				}
				fls[u] = fl
				protos[u] = fl
			}
			return stack{protos: protos, slots: fls[0].TotalSlots(), outcome: func() string {
				out := ""
				for u, fl := range fls {
					out += fmt.Sprintf("%d:%v@%d;", u, fl.Informed(), fl.InformedAt())
				}
				return out
			}}
		}},
	}

	for _, jc := range jammers {
		for _, prim := range primitives {
			t.Run(jc.name+"/"+prim.name, func(t *testing.T) {
				run := func(workers int) (radio.Stats, string) {
					j := jc.j
					if rs, ok := j.(spectrum.RunScoped); ok {
						j = rs.NewRun()
					}
					nw := &radio.Network{Graph: g, Assign: a, Jammer: j}
					st := prim.build(t, nw)
					e, err := radio.NewEngine(nw, st.protos)
					if err != nil {
						t.Fatal(err)
					}
					budget := st.slots + 1
					if budget > 30000 {
						budget = 30000 // equivalence needs a prefix, not a full schedule
					}
					var stats radio.Stats
					if workers == 0 {
						stats = e.Run(budget)
					} else {
						stats = e.RunParallel(budget, workers)
					}
					return stats, st.outcome()
				}
				wantStats, wantOutcome := run(0)
				for _, workers := range []int{1, 2, 4, 8} {
					gotStats, gotOutcome := run(workers)
					if gotStats != wantStats {
						t.Errorf("workers=%d stats = %+v, want %+v", workers, gotStats, wantStats)
					}
					if gotOutcome != wantOutcome {
						t.Errorf("workers=%d outcome diverged:\n got %s\nwant %s", workers, gotOutcome, wantOutcome)
					}
				}
			})
		}
	}
}
