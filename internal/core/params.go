// Package core implements the paper's algorithms: the COUNT estimation
// procedure (Section 4.1, Appendix A), the CSEEK neighbor-discovery
// algorithm (Section 4.2), its CKSEEK variant for k̂-neighbor-discovery
// (Section 4.4), the CGCAST global-broadcast algorithm (Section 5), and
// the baseline strategies the paper compares against.
//
// All algorithms are radio.Protocol state machines; they interact with
// the world only through local channel labels, their own identifier,
// private randomness, and the globally known model parameters
// (n, c, k, kmax, Δ and, for broadcast, D) — exactly the knowledge the
// paper grants nodes.
package core

import (
	"fmt"
	"math/bits"

	"crn/internal/radio"
	"crn/internal/rng"
)

// Params carries the globally known model parameters together with the
// constant multipliers hidden inside the paper's Θ(·) schedule lengths.
// The multipliers are exposed so tests and experiments can trade run
// time against failure probability; the asymptotic structure — which
// schedule has how many steps and slots as a function of the model
// parameters — is fixed by the paper.
type Params struct {
	// N is the number of nodes n (all "w.h.p." guarantees are with
	// respect to N; logarithmic factors are lg N).
	N int
	// C is the number of channels each node can access.
	C int
	// K is the minimum number of channels any two neighbors share.
	K int
	// KMax is the maximum number of channels any two neighbors share.
	KMax int
	// Delta is Δ, the maximum node degree.
	Delta int

	// Tuning holds the constant multipliers. Zero-valued fields are
	// replaced by defaults in Normalize.
	Tuning Tuning
}

// Tuning collects every constant multiplier behind the paper's Θ(·)
// bounds. DESIGN.md ("Constants behind Θ(·)") documents the policy.
type Tuning struct {
	// CountSlotsPerRound scales the Θ(lg n) slots per COUNT round:
	// slots = max(CountMinRoundSlots, CountSlotsPerRound·lg n).
	CountSlotsPerRound float64
	// CountMinRoundSlots floors the round length so tiny networks still
	// gather enough samples for the trigger statistics.
	CountMinRoundSlots int
	// CountThreshold is the trigger fraction: the listener adopts the
	// first round in which it hears messages in more than this fraction
	// of slots. The paper's analysis places it between the "too early"
	// ceiling and the in-range floor; see Appendix A and DESIGN.md.
	CountThreshold float64
	// P1Steps scales part one of CSEEK: steps = P1Steps·(c²/k)·lg n.
	P1Steps float64
	// P2Steps scales part two of CSEEK: steps = P2Steps·(kmax/k)·Δ·lg n.
	P2Steps float64
	// NaiveSlots scales the naive baseline: slots =
	// NaiveSlots·(c²/k)·Δ·lg n. Kept separate from P1Steps because the
	// naive algorithm's per-slot success probability carries a 1/4
	// role-coin factor with no COUNT amplification behind it.
	NaiveSlots float64
	// ColoringPhases scales the Θ(lg n) phases of the CGCAST coloring.
	ColoringPhases float64
	// DissemRounds scales the Θ(lg n) rounds per dissemination step.
	DissemRounds float64
}

// DefaultTuning returns multipliers tuned so the w.h.p. guarantees hold
// empirically at simulator scales (n up to a few hundred); the test
// suite asserts this statistically.
func DefaultTuning() Tuning {
	return Tuning{
		CountSlotsPerRound: 8,
		CountMinRoundSlots: 48,
		CountThreshold:     0.12,
		P1Steps:            4,
		P2Steps:            6,
		NaiveSlots:         6,
		ColoringPhases:     4,
		DissemRounds:       2,
	}
}

// Normalize fills zero-valued tuning fields with defaults and returns
// an error for infeasible model parameters.
func (p *Params) Normalize() error {
	if p.N < 1 {
		return fmt.Errorf("core: n must be >= 1, got %d", p.N)
	}
	if p.C < 1 {
		return fmt.Errorf("core: c must be >= 1, got %d", p.C)
	}
	if p.K < 1 || p.K > p.C {
		return fmt.Errorf("core: k must be in [1,c] = [1,%d], got %d", p.C, p.K)
	}
	if p.KMax < p.K || p.KMax > p.C {
		return fmt.Errorf("core: kmax must be in [k,c] = [%d,%d], got %d", p.K, p.C, p.KMax)
	}
	maxDelta := p.N - 1
	if maxDelta < 1 {
		maxDelta = 1
	}
	if p.Delta < 1 || p.Delta > maxDelta {
		return fmt.Errorf("core: Δ must be in [1,%d], got %d (n=%d)", maxDelta, p.Delta, p.N)
	}
	def := DefaultTuning()
	t := &p.Tuning
	if t.CountSlotsPerRound == 0 {
		t.CountSlotsPerRound = def.CountSlotsPerRound
	}
	if t.CountMinRoundSlots == 0 {
		t.CountMinRoundSlots = def.CountMinRoundSlots
	}
	if t.CountThreshold == 0 {
		t.CountThreshold = def.CountThreshold
	}
	if t.P1Steps == 0 {
		t.P1Steps = def.P1Steps
	}
	if t.P2Steps == 0 {
		t.P2Steps = def.P2Steps
	}
	if t.NaiveSlots == 0 {
		t.NaiveSlots = def.NaiveSlots
	}
	if t.ColoringPhases == 0 {
		t.ColoringPhases = def.ColoringPhases
	}
	if t.DissemRounds == 0 {
		t.DissemRounds = def.DissemRounds
	}
	return nil
}

// LgN returns ceil(lg n), floored at 4. The floor keeps the "repeat
// Θ(lg n) times" amplification meaningful on the tiny networks used in
// tests and examples, where ceil(lg n) alone would be 1–3 and the
// "w.h.p." guarantees would degenerate.
func (p Params) LgN() int {
	l := lg2(p.N)
	if l < 4 {
		return 4
	}
	return l
}

// LgDelta returns ceil(lg Δ), at least 1; this is the slot count of
// every back-off sequence in the paper (part two of CSEEK and the
// dissemination rounds of CGCAST).
func (p Params) LgDelta() int { return lg2(p.Delta) }

// Env is the node-local execution environment handed to protocols: the
// node's identifier, its channel count, and its private randomness.
// Note there is deliberately no topology access.
type Env struct {
	ID   radio.NodeID
	C    int
	Rand *rng.Source
}

// lg2 returns ceil(log2(x)) for x >= 1, and 1 for x <= 2 — every
// schedule in the paper needs at least one round/slot.
func lg2(x int) int {
	if x <= 2 {
		return 1
	}
	l := bits.Len(uint(x - 1)) // ceil(log2 x) for x >= 2
	return l
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// scaledSteps converts a Θ(·) step bound into a concrete step count:
// max(1, round(mul·base·lgn)).
func scaledSteps(mul float64, base, lgn int) int {
	v := int(mul * float64(base) * float64(lgn))
	if v < 1 {
		return 1
	}
	return v
}
