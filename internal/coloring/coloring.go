// Package coloring implements the randomized node-coloring procedure
// CGCAST uses to edge-color the network (Section 5.2, an adaptation of
// Luby's algorithm [13]).
//
// The algorithm proceeds in phases of two steps. At the start of a
// phase every still-active node flips a coin; with probability 1/2 it
// proposes a uniformly random color from its remaining plate. Nodes
// exchange proposals with neighbors (step one); any two neighbors that
// proposed the same color both give up, everyone else keeps the
// proposal and decides. In step two the deciders announce their final
// colors; neighbors strike those colors from their plates and continue.
// Lemma 8: with a plate of 2Δ colors, O(lg n) phases suffice w.h.p.
//
// The per-node phase logic lives in NodeState so that the standalone
// solver here and CGCAST's in-model embedding (which exchanges the same
// information over CSEEK executions) share one implementation.
package coloring

import (
	"fmt"

	"crn/internal/bitset"
	"crn/internal/graph"
	"crn/internal/rng"
)

// NoColor marks an undecided node.
const NoColor = -1

// NodeState is the per-node (or, in CGCAST, per-virtual-node) coloring
// state machine.
type NodeState struct {
	plate    *bitset.Set
	color    int
	proposal int
}

// NewNodeState returns an active node with a full plate of numColors
// colors.
func NewNodeState(numColors int) *NodeState {
	plate := bitset.New(numColors)
	for c := 0; c < numColors; c++ {
		plate.Add(c)
	}
	return &NodeState{plate: plate, color: NoColor, proposal: NoColor}
}

// Active reports whether the node still needs a color.
func (ns *NodeState) Active() bool { return ns.color == NoColor }

// Color returns the decided color, or NoColor.
func (ns *NodeState) Color() int { return ns.color }

// Proposal returns this phase's proposal, or NoColor if the node sat
// out (or already decided).
func (ns *NodeState) Proposal() int { return ns.proposal }

// PlateSize returns the number of colors still available.
func (ns *NodeState) PlateSize() int { return ns.plate.Count() }

// Propose starts a phase: with probability 1/2 the node picks a
// uniform color from its plate and returns it; otherwise (or if
// already decided) it returns NoColor.
func (ns *NodeState) Propose(r *rng.Source) int {
	ns.proposal = NoColor
	if !ns.Active() || !r.Bool() {
		return NoColor
	}
	avail := ns.plate.Count()
	if avail == 0 {
		// Cannot happen with a 2Δ plate (Lemma 8 precondition);
		// degrade to sitting the phase out rather than panicking.
		return NoColor
	}
	c, _ := ns.plate.NthElem(r.Intn(avail))
	ns.proposal = c
	return c
}

// ResolveConflicts completes step one: the node keeps its proposal and
// decides iff no conflicting proposal appears among its neighbors'
// proposals. Returns true if the node decided this phase.
func (ns *NodeState) ResolveConflicts(neighborProposals []int) bool {
	if ns.proposal == NoColor {
		return false
	}
	for _, p := range neighborProposals {
		if p == ns.proposal {
			ns.proposal = NoColor
			return false
		}
	}
	ns.color = ns.proposal
	ns.proposal = NoColor
	return true
}

// ObserveDecisions completes step two: colors decided by neighbors are
// struck from the plate.
func (ns *NodeState) ObserveDecisions(neighborColors []int) {
	if !ns.Active() {
		return
	}
	for _, c := range neighborColors {
		if c >= 0 {
			ns.plate.Remove(c)
		}
	}
}

// Result is the outcome of a standalone coloring run.
type Result struct {
	// Colors[u] is node u's color.
	Colors []int
	// Phases is the number of phases executed.
	Phases int
	// Completed reports whether every node decided within the budget.
	Completed bool
}

// Run colors g with numColors colors using at most maxPhases phases.
// Per Lemma 8, numColors = 2Δ(G_orig) and maxPhases = Θ(lg n) succeed
// w.h.p. when g is a line graph of a graph with max degree Δ; the
// solver itself works for any graph with numColors > maxDegree(g).
func Run(g *graph.Graph, numColors, maxPhases int, r *rng.Source) (Result, error) {
	if numColors <= g.MaxDegree() {
		return Result{}, fmt.Errorf("coloring: %d colors cannot color max degree %d", numColors, g.MaxDegree())
	}
	n := g.N()
	states := make([]*NodeState, n)
	for u := 0; u < n; u++ {
		states[u] = NewNodeState(numColors)
	}

	proposals := make([]int, n)
	decided := make([]int, n)
	var scratch []int
	phases := 0
	remaining := n
	for phases < maxPhases && remaining > 0 {
		phases++
		// Step one: propose.
		for u := 0; u < n; u++ {
			proposals[u] = states[u].Propose(r)
		}
		// Step one: exchange proposals, resolve conflicts.
		for u := 0; u < n; u++ {
			decided[u] = NoColor
			if proposals[u] == NoColor {
				continue
			}
			scratch = scratch[:0]
			for _, v := range g.Neighbors(u) {
				scratch = append(scratch, proposals[v])
			}
			if states[u].ResolveConflicts(scratch) {
				decided[u] = states[u].Color()
				remaining--
			}
		}
		// Step two: exchange decisions, shrink plates.
		for u := 0; u < n; u++ {
			if !states[u].Active() {
				continue
			}
			scratch = scratch[:0]
			for _, v := range g.Neighbors(u) {
				scratch = append(scratch, decided[v])
			}
			states[u].ObserveDecisions(scratch)
		}
	}

	res := Result{
		Colors:    make([]int, n),
		Phases:    phases,
		Completed: remaining == 0,
	}
	for u := 0; u < n; u++ {
		res.Colors[u] = states[u].Color()
	}
	return res, nil
}

// Validate checks that colors is a proper coloring of g using colors
// in [0, numColors).
func Validate(g *graph.Graph, colors []int, numColors int) error {
	if len(colors) != g.N() {
		return fmt.Errorf("coloring: %d colors for %d nodes", len(colors), g.N())
	}
	for u, c := range colors {
		if c < 0 || c >= numColors {
			return fmt.Errorf("coloring: node %d has color %d outside [0,%d)", u, c, numColors)
		}
	}
	for _, e := range g.Edges() {
		if colors[e.U] == colors[e.V] {
			return fmt.Errorf("coloring: adjacent nodes %d and %d share color %d", e.U, e.V, colors[e.U])
		}
	}
	return nil
}

// ValidateEdgeColoring checks that edgeColors is a proper edge coloring
// of g: every edge colored in [0, numColors), no two edges sharing an
// endpoint share a color.
func ValidateEdgeColoring(g *graph.Graph, edgeColors map[graph.Edge]int, numColors int) error {
	if len(edgeColors) != g.M() {
		return fmt.Errorf("coloring: %d edge colors for %d edges", len(edgeColors), g.M())
	}
	type slot struct {
		node  int32
		color int
	}
	seen := make(map[slot]graph.Edge, 2*g.M())
	for _, e := range g.Edges() {
		c, ok := edgeColors[e]
		if !ok {
			return fmt.Errorf("coloring: edge (%d,%d) uncolored", e.U, e.V)
		}
		if c < 0 || c >= numColors {
			return fmt.Errorf("coloring: edge (%d,%d) color %d outside [0,%d)", e.U, e.V, c, numColors)
		}
		for _, end := range [2]int32{e.U, e.V} {
			key := slot{node: end, color: c}
			if other, dup := seen[key]; dup {
				return fmt.Errorf("coloring: edges (%d,%d) and (%d,%d) share color %d at node %d",
					e.U, e.V, other.U, other.V, c, end)
			}
			seen[key] = e
		}
	}
	return nil
}

// Greedy returns a sequential greedy edge coloring of g — the
// centralized baseline used to sanity-check color counts. It uses at
// most 2Δ-1 colors.
func Greedy(g *graph.Graph) map[graph.Edge]int {
	used := make([]*bitset.Set, g.N())
	numColors := 2*g.MaxDegree() + 1
	for u := range used {
		used[u] = bitset.New(numColors)
	}
	out := make(map[graph.Edge]int, g.M())
	for _, e := range g.Edges() {
		c := 0
		for used[e.U].Contains(c) || used[e.V].Contains(c) {
			c++
		}
		out[e] = c
		used[e.U].Add(c)
		used[e.V].Add(c)
	}
	return out
}
