package coloring

import (
	"testing"
	"testing/quick"

	"crn/internal/graph"
	"crn/internal/rng"
)

func TestNodeStateLifecycle(t *testing.T) {
	r := rng.New(1)
	ns := NewNodeState(4)
	if !ns.Active() || ns.Color() != NoColor {
		t.Fatal("fresh state not active/uncolored")
	}
	if ns.PlateSize() != 4 {
		t.Fatalf("plate size %d, want 4", ns.PlateSize())
	}

	// Propose until the node actually proposes.
	p := NoColor
	for i := 0; i < 100 && p == NoColor; i++ {
		p = ns.Propose(r)
	}
	if p == NoColor {
		t.Fatal("node never proposed in 100 phases")
	}
	if p < 0 || p >= 4 {
		t.Fatalf("proposal %d outside plate", p)
	}

	// A conflicting neighbor proposal forces a give-up.
	if ns.ResolveConflicts([]int{p}) {
		t.Error("decided despite conflict")
	}
	if !ns.Active() {
		t.Error("inactive after giving up")
	}

	// A clean proposal decides.
	p = NoColor
	for i := 0; i < 100 && p == NoColor; i++ {
		p = ns.Propose(r)
	}
	if !ns.ResolveConflicts([]int{NoColor, p + 1}) {
		t.Error("did not decide without conflict")
	}
	if ns.Active() || ns.Color() != p {
		t.Errorf("color = %d active = %v, want %d/false", ns.Color(), ns.Active(), p)
	}
}

func TestNodeStatePlateShrinks(t *testing.T) {
	ns := NewNodeState(4)
	ns.ObserveDecisions([]int{0, 2, NoColor})
	if ns.PlateSize() != 2 {
		t.Fatalf("plate size %d after removals, want 2", ns.PlateSize())
	}
	// Proposals must come from the remaining plate {1, 3}.
	r := rng.New(2)
	for i := 0; i < 200; i++ {
		if p := ns.Propose(r); p != NoColor && p != 1 && p != 3 {
			t.Fatalf("proposal %d from struck color", p)
		}
	}
}

func TestNodeStateDecidedIgnoresUpdates(t *testing.T) {
	r := rng.New(3)
	ns := NewNodeState(2)
	for !ns.ResolveConflicts(nil) {
		ns.Propose(r)
	}
	c := ns.Color()
	ns.ObserveDecisions([]int{c}) // must not disturb a decided node
	if ns.Color() != c {
		t.Error("decided color changed")
	}
	if got := ns.Propose(r); got != NoColor {
		t.Error("decided node proposed")
	}
}

func TestRunOnPath(t *testing.T) {
	g := graph.Path(10)
	res, err := Run(g, 4, 200, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("coloring incomplete")
	}
	if err := Validate(g, res.Colors, 4); err != nil {
		t.Fatal(err)
	}
}

func TestRunOnCompleteGraph(t *testing.T) {
	g := graph.Complete(8)
	res, err := Run(g, 16, 500, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("coloring incomplete")
	}
	if err := Validate(g, res.Colors, 16); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsTooFewColors(t *testing.T) {
	g := graph.Complete(5)
	if _, err := Run(g, 4, 100, rng.New(6)); err == nil {
		t.Error("numColors == maxDegree accepted")
	}
}

// TestRunLineGraphTwoDelta is the Lemma 8 setting: color the line graph
// of G with 2Δ(G) colors.
func TestRunLineGraphTwoDelta(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		g, err := graph.GNP(14, 0.3, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		lg, _ := g.LineGraph()
		numColors := 2 * g.MaxDegree()
		res, err := Run(lg, numColors, 400, rng.New(seed+50))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("seed %d: line-graph coloring incomplete", seed)
		}
		if err := Validate(lg, res.Colors, numColors); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestRunPhasesLogarithmic checks the Lemma 8 shape: phases grow slowly
// (≈ lg n) rather than linearly in n.
func TestRunPhasesLogarithmic(t *testing.T) {
	phasesFor := func(n int) int {
		g := graph.Path(n)
		res, err := Run(g, 4, 10_000, rng.New(uint64(n)))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("n=%d incomplete", n)
		}
		return res.Phases
	}
	p64 := phasesFor(64)
	p1024 := phasesFor(1024)
	// 16x more nodes should cost only a few extra phases, far below 16x.
	if p1024 > 4*p64 {
		t.Errorf("phases grew from %d (n=64) to %d (n=1024); expected logarithmic growth", p64, p1024)
	}
}

func TestValidateRejects(t *testing.T) {
	g := graph.Path(3)
	if err := Validate(g, []int{0, 0, 1}, 2); err == nil {
		t.Error("adjacent duplicate accepted")
	}
	if err := Validate(g, []int{0, 1}, 2); err == nil {
		t.Error("wrong length accepted")
	}
	if err := Validate(g, []int{0, 1, 5}, 2); err == nil {
		t.Error("out-of-range color accepted")
	}
	if err := Validate(g, []int{0, 1, NoColor}, 2); err == nil {
		t.Error("uncolored node accepted")
	}
}

func TestValidateEdgeColoring(t *testing.T) {
	g := graph.Star(4)
	edges := g.Edges()
	good := map[graph.Edge]int{edges[0]: 0, edges[1]: 1, edges[2]: 2}
	if err := ValidateEdgeColoring(g, good, 3); err != nil {
		t.Errorf("valid coloring rejected: %v", err)
	}
	bad := map[graph.Edge]int{edges[0]: 0, edges[1]: 0, edges[2]: 2}
	if err := ValidateEdgeColoring(g, bad, 3); err == nil {
		t.Error("clashing star edges accepted")
	}
	missing := map[graph.Edge]int{edges[0]: 0, edges[1]: 1}
	if err := ValidateEdgeColoring(g, missing, 3); err == nil {
		t.Error("missing edge accepted")
	}
}

func TestGreedyEdgeColoring(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := graph.GNP(12, 0.4, rng.New(seed))
		if err != nil {
			return true
		}
		ec := Greedy(g)
		return ValidateEdgeColoring(g, ec, 2*g.MaxDegree()+1) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickRunAlwaysValid fuzzes random graphs; every completed run
// must be a proper coloring.
func TestQuickRunAlwaysValid(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		g, err := graph.GNP(12, 0.35, r)
		if err != nil {
			return true
		}
		numColors := g.MaxDegree() + 1
		res, err := Run(g, numColors, 2000, r)
		if err != nil || !res.Completed {
			return false
		}
		return Validate(g, res.Colors, numColors) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
