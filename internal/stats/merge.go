package stats

import "sort"

// Accumulator collects one metric's samples incrementally and across
// process boundaries: Add samples as runs finish, Merge accumulators
// built on different shards, and Summary() the union. It is the
// mergeable form of Summarize, built for the distributed sweep:
// shard workers aggregate locally, a merge step combines them, and
// the combined Summary must be byte-identical to summarizing the
// whole population in one process.
//
// The exactness argument: a plain streaming-moment merge (summing
// per-shard Σx and Σx² ) cannot give that guarantee — float addition
// is not associative, so the merged mean would differ from the
// single-process mean in the last bits, and the quantiles need the
// samples anyway. The accumulator therefore keeps the samples and
// defers all arithmetic to Summary(), which sorts and then computes
// the moments in sorted order (summarizeSorted, shared with
// Summarize). The result is a pure function of the sample multiset,
// and Add/Merge only build multiset unions, so
//
//	Merge(A, B).Summary() == Summarize(A ∪ B)
//
// bit-for-bit, for any partition, merge order or association.
//
// The zero Accumulator is ready to use. It is not safe for concurrent
// use.
type Accumulator struct {
	samples []float64
}

// Add records one sample.
func (a *Accumulator) Add(x float64) { a.samples = append(a.samples, x) }

// AddAll records a batch of samples.
func (a *Accumulator) AddAll(xs []float64) { a.samples = append(a.samples, xs...) }

// Merge absorbs b's samples into a. b is unchanged.
func (a *Accumulator) Merge(b *Accumulator) {
	if b != nil {
		a.samples = append(a.samples, b.samples...)
	}
}

// N returns the number of samples recorded so far.
func (a *Accumulator) N() int { return len(a.samples) }

// Summary computes the Summary of everything recorded so far. It
// returns a zero Summary when no samples were added. The accumulator
// remains usable afterwards.
func (a *Accumulator) Summary() Summary {
	if len(a.samples) == 0 {
		return Summary{}
	}
	s := make([]float64, len(a.samples))
	copy(s, a.samples)
	sort.Float64s(s)
	return summarizeSorted(s)
}
