package stats

import (
	"reflect"
	"testing"

	"crn/internal/rng"
)

// randomSample draws n samples shaped like sweep metrics: mostly small
// non-negative counts, some zeros (indicator metrics), occasional
// large values.
func randomSample(r *rng.Source, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		switch r.Intn(4) {
		case 0:
			xs[i] = 0
		case 1:
			xs[i] = float64(r.Intn(2))
		case 2:
			xs[i] = float64(r.Intn(1000))
		default:
			xs[i] = r.Float64() * 1e6
		}
	}
	return xs
}

// accumulate builds one accumulator per part of a partition.
func accumulate(parts [][]float64) []*Accumulator {
	accs := make([]*Accumulator, len(parts))
	for i, part := range parts {
		accs[i] = &Accumulator{}
		accs[i].AddAll(part)
	}
	return accs
}

// TestAccumulatorMergeEqualsUnion is the distributed sweep's core
// stats invariant: for random samples and random partitions, merging
// the per-part accumulators yields exactly — bit for bit, not within
// epsilon — the Summary of the whole population.
func TestAccumulatorMergeEqualsUnion(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 200; trial++ {
		xs := randomSample(r, 1+r.Intn(64))
		want := Summarize(xs)

		// Random partition: each sample goes to a random part.
		k := 1 + r.Intn(6)
		parts := make([][]float64, k)
		for _, x := range xs {
			p := r.Intn(k)
			parts[p] = append(parts[p], x)
		}

		merged := &Accumulator{}
		for _, acc := range accumulate(parts) {
			merged.Merge(acc)
		}
		if got := merged.Summary(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: merged %+v != whole-population %+v", trial, got, want)
		}
	}
}

// TestAccumulatorMergeAssociativeAndOrderIndependent: any association
// and any order of merges produces the same Summary.
func TestAccumulatorMergeAssociativeAndOrderIndependent(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 100; trial++ {
		a := randomSample(r, r.Intn(20))
		b := randomSample(r, r.Intn(20))
		c := randomSample(r, 1+r.Intn(20))

		// (a ⊕ b) ⊕ c
		left := &Accumulator{}
		left.AddAll(a)
		ab := &Accumulator{}
		ab.AddAll(b)
		left.Merge(ab)
		lc := &Accumulator{}
		lc.AddAll(c)
		left.Merge(lc)

		// a ⊕ (b ⊕ c)
		bc := &Accumulator{}
		bc.AddAll(b)
		cAcc := &Accumulator{}
		cAcc.AddAll(c)
		bc.Merge(cAcc)
		right := &Accumulator{}
		right.AddAll(a)
		right.Merge(bc)

		// c ⊕ b ⊕ a (reversed order)
		rev := &Accumulator{}
		rev.AddAll(c)
		rb := &Accumulator{}
		rb.AddAll(b)
		rev.Merge(rb)
		ra := &Accumulator{}
		ra.AddAll(a)
		rev.Merge(ra)

		ls, rs, vs := left.Summary(), right.Summary(), rev.Summary()
		if !reflect.DeepEqual(ls, rs) {
			t.Fatalf("trial %d: association changed the summary: %+v vs %+v", trial, ls, rs)
		}
		if !reflect.DeepEqual(ls, vs) {
			t.Fatalf("trial %d: merge order changed the summary: %+v vs %+v", trial, ls, vs)
		}
	}
}

func TestAccumulatorBasics(t *testing.T) {
	var zero Accumulator
	if got := zero.Summary(); !reflect.DeepEqual(got, Summary{}) {
		t.Errorf("empty accumulator summary = %+v, want zero", got)
	}
	if zero.N() != 0 {
		t.Errorf("empty accumulator N = %d", zero.N())
	}
	zero.Merge(nil) // must not panic

	a := &Accumulator{}
	a.Add(3)
	a.Add(1)
	a.AddAll([]float64{2})
	if a.N() != 3 {
		t.Fatalf("N = %d, want 3", a.N())
	}
	want := Summarize([]float64{1, 2, 3})
	if got := a.Summary(); !reflect.DeepEqual(got, want) {
		t.Errorf("summary %+v, want %+v", got, want)
	}
	// Summary must not disturb the accumulator (it keeps insertion
	// order internally and stays usable).
	a.Add(4)
	want4 := Summarize([]float64{1, 2, 3, 4})
	if got := a.Summary(); !reflect.DeepEqual(got, want4) {
		t.Errorf("summary after further Add %+v, want %+v", got, want4)
	}
}
