// Package stats provides the small statistical toolkit the experiment
// harness needs: summaries of repeated measurements and log-log slope
// fits for scaling-shape checks ("does time grow like c²?").
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of measurements. The json tags keep the
// public sweep output (crn.Summary aliases this type) consistently
// camelCase.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stdDev"`
	Min    float64 `json:"min"`
	P25    float64 `json:"p25"`
	Median float64 `json:"median"`
	P75    float64 `json:"p75"`
	Max    float64 `json:"max"`
}

// Summarize computes a Summary. It returns a zero Summary for empty
// input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return summarizeSorted(s)
}

// summarizeSorted computes the Summary of an ascending-sorted,
// non-empty sample. Every Summary construction — Summarize and
// Accumulator.Summary — funnels through here, with the moment sums
// taken in sorted order. Sorting first makes the result a pure
// function of the sample *multiset*: any two accumulation orders, or
// any partition of the sample across shards, yield bit-identical
// Summaries. That is the invariant the distributed sweep's
// merge-equals-union guarantee rests on.
func summarizeSorted(s []float64) Summary {
	var sum, sumSq float64
	for _, x := range s {
		sum += x
		sumSq += x * x
	}
	n := float64(len(s))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(s),
		Mean:   mean,
		StdDev: math.Sqrt(variance),
		Min:    s[0],
		P25:    Percentile(s, 0.25),
		Median: Percentile(s, 0.5),
		P75:    Percentile(s, 0.75),
		Max:    s[len(s)-1],
	}
}

// SummarizeInts is Summarize for integer samples.
func SummarizeInts(xs []int64) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of a sorted sample
// using linear interpolation. The input must be sorted ascending.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders a Summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f sd=%.1f min=%.0f med=%.0f max=%.0f",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.Max)
}

// Fit is a least-squares line y = Slope·x + Intercept with its
// coefficient of determination.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit fits y = a·x + b by least squares. It returns an error for
// fewer than two points or degenerate x.
func LinearFit(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return Fit{}, fmt.Errorf("stats: need at least 2 points, got %d", len(xs))
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fit{}, fmt.Errorf("stats: degenerate x values")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n

	// R² = 1 - SS_res/SS_tot.
	meanY := sy / n
	ssTot := syy - n*meanY*meanY
	ssRes := 0.0
	for i := range xs {
		r := ys[i] - (slope*xs[i] + intercept)
		ssRes += r * r
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// LogLogSlope fits log(y) = s·log(x) + b and returns s — the empirical
// polynomial degree of y's growth in x. All values must be positive.
func LogLogSlope(xs, ys []float64) (Fit, error) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return Fit{}, fmt.Errorf("stats: log-log fit needs positive values, got (%v, %v)", xs[i], ys[i])
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	return LinearFit(lx, ly)
}

// GeometricMean returns the geometric mean of positive samples.
func GeometricMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: empty sample")
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geometric mean needs positive values, got %v", x)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}
