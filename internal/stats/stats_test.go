package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 {
		t.Errorf("N = %d, want 5", s.N)
	}
	if !almostEqual(s.Mean, 3, 1e-12) {
		t.Errorf("Mean = %v, want 3", s.Mean)
	}
	if !almostEqual(s.Median, 3, 1e-12) {
		t.Errorf("Median = %v, want 3", s.Median)
	}
	if s.Min != 1 || s.Max != 5 {
		t.Errorf("Min,Max = %v,%v want 1,5", s.Min, s.Max)
	}
	want := math.Sqrt(2) // population stddev of 1..5
	if !almostEqual(s.StdDev, want, 1e-9) {
		t.Errorf("StdDev = %v, want %v", s.StdDev, want)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int64{10, 20, 30})
	if !almostEqual(s.Mean, 20, 1e-12) {
		t.Errorf("Mean = %v, want 20", s.Mean)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {-0.5, 10}, {1.5, 40},
		{1.0 / 3, 20},
	}
	for _, tt := range tests {
		if got := Percentile(sorted, tt.p); !almostEqual(got, tt.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(empty) = %v, want 0", got)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-9) || !almostEqual(fit.Intercept, 3, 1e-9) {
		t.Errorf("fit = %+v, want slope 2 intercept 3", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-9) {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := LinearFit([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestLogLogSlopeQuadratic(t *testing.T) {
	var xs, ys []float64
	for _, x := range []float64{2, 4, 8, 16, 32} {
		xs = append(xs, x)
		ys = append(ys, 7*x*x)
	}
	fit, err := LogLogSlope(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-9) {
		t.Errorf("slope = %v, want 2", fit.Slope)
	}
}

func TestLogLogSlopeRejectsNonPositive(t *testing.T) {
	if _, err := LogLogSlope([]float64{1, 0}, []float64{1, 2}); err == nil {
		t.Error("zero x accepted")
	}
	if _, err := LogLogSlope([]float64{1, 2}, []float64{1, -2}); err == nil {
		t.Error("negative y accepted")
	}
}

func TestGeometricMean(t *testing.T) {
	gm, err := GeometricMean([]float64{1, 100})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(gm, 10, 1e-9) {
		t.Errorf("GeometricMean = %v, want 10", gm)
	}
	if _, err := GeometricMean(nil); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := GeometricMean([]float64{1, -1}); err == nil {
		t.Error("negative value accepted")
	}
}

// TestQuickSummaryInvariants: min ≤ p25 ≤ median ≤ p75 ≤ max and the
// mean lies within [min, max].
func TestQuickSummaryInvariants(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		ordered := s.Min <= s.P25 && s.P25 <= s.Median && s.Median <= s.P75 && s.P75 <= s.Max
		meanOK := s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
		return ordered && meanOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickLinearFitRecovers: fits on exactly linear data recover the
// line within numerical tolerance.
func TestQuickLinearFitRecovers(t *testing.T) {
	f := func(a8, b8 int8) bool {
		a, b := float64(a8), float64(b8)
		xs := []float64{0, 1, 2, 3, 4}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a*x + b
		}
		fit, err := LinearFit(xs, ys)
		if err != nil {
			return false
		}
		return almostEqual(fit.Slope, a, 1e-6) && almostEqual(fit.Intercept, b, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
