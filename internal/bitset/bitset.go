// Package bitset provides dense bitsets sized at construction time.
//
// Bitsets represent channel sets and neighbor sets throughout the
// simulator. The hot operations are membership tests and intersection
// counts (computing how many channels two nodes share), so both are
// implemented without allocation.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bitset over the universe [0, Len()).
// The zero value is unusable; construct with New.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set over the universe [0, n).
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{
		words: make([]uint64, (n+wordBits-1)/wordBits),
		n:     n,
	}
}

// FromSlice returns a set over [0, n) containing every element of elems.
// Elements outside [0, n) are ignored.
func FromSlice(n int, elems []int) *Set {
	s := New(n)
	for _, e := range elems {
		if e >= 0 && e < n {
			s.Add(e)
		}
	}
	return s
}

// Len returns the size of the universe.
func (s *Set) Len() int { return s.n }

// Add inserts i into the set. Out-of-range values are ignored.
func (s *Set) Add(i int) {
	if i < 0 || i >= s.n {
		return
	}
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove deletes i from the set. Out-of-range values are ignored.
func (s *Set) Remove(i int) {
	if i < 0 || i >= s.n {
		return
	}
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IntersectionCount returns |s ∩ o| without allocating.
// The sets may have different universe sizes; the intersection is over
// the common prefix.
func (s *Set) IntersectionCount(o *Set) int {
	m := len(s.words)
	if len(o.words) < m {
		m = len(o.words)
	}
	c := 0
	for i := 0; i < m; i++ {
		c += bits.OnesCount64(s.words[i] & o.words[i])
	}
	return c
}

// Intersects reports whether s and o share at least one element.
func (s *Set) Intersects(o *Set) bool {
	m := len(s.words)
	if len(o.words) < m {
		m = len(o.words)
	}
	for i := 0; i < m; i++ {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Union replaces s with s ∪ o. Panics if universes differ.
func (s *Set) Union(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// Intersect replaces s with s ∩ o. Panics if universes differ.
func (s *Set) Intersect(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// Difference replaces s with s \ o. Panics if universes differ.
func (s *Set) Difference(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] &^= w
	}
}

// Clone returns a deep copy of s.
func (s *Set) Clone() *Set {
	c := &Set{
		words: make([]uint64, len(s.words)),
		n:     s.n,
	}
	copy(c.words, s.words)
	return c
}

// Clear removes all elements.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Equal reports whether s and o contain the same elements over the same
// universe.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Elems appends the elements of s to dst in increasing order and
// returns the extended slice. Pass nil to allocate fresh.
func (s *Set) Elems(dst []int) []int {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			dst = append(dst, wi*wordBits+b)
			w &= w - 1
		}
	}
	return dst
}

// ForEach calls fn for each element in increasing order. Iteration
// stops early if fn returns false.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// NthElem returns the n-th smallest element (0-indexed) and true, or
// (0, false) if the set has fewer than n+1 elements.
func (s *Set) NthElem(n int) (int, bool) {
	if n < 0 {
		return 0, false
	}
	for wi, w := range s.words {
		c := bits.OnesCount64(w)
		if n >= c {
			n -= c
			continue
		}
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if n == 0 {
				return wi*wordBits + b, true
			}
			n--
			w &= w - 1
		}
	}
	return 0, false
}

// String renders the set as "{a, b, c}" for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}

func (s *Set) mustMatch(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: universe mismatch %d != %d", s.n, o.n))
	}
}

// Matrix is a dense rows×cols bit matrix backed by a single allocation.
// It stores the adjacency structure the radio engine probes on its hot
// path: Get(r, c) is one shift-and-mask, with no per-row pointer chase
// or bounds surprises, and building the whole matrix costs one make.
// The zero value is unusable; construct with NewMatrix.
type Matrix struct {
	words  []uint64
	rows   int
	cols   int
	stride int // words per row
}

// NewMatrix returns an all-zero rows×cols bit matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 {
		rows = 0
	}
	if cols < 0 {
		cols = 0
	}
	stride := (cols + wordBits - 1) / wordBits
	return &Matrix{
		words:  make([]uint64, rows*stride),
		rows:   rows,
		cols:   cols,
		stride: stride,
	}
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Set sets bit (r, c). Out-of-range coordinates are ignored.
func (m *Matrix) Set(r, c int) {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		return
	}
	m.words[r*m.stride+c/wordBits] |= 1 << (uint(c) % wordBits)
}

// Get reports bit (r, c). Out-of-range coordinates read as false.
func (m *Matrix) Get(r, c int) bool {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		return false
	}
	return m.words[r*m.stride+c/wordBits]&(1<<(uint(c)%wordBits)) != 0
}

// Unset clears bit (r, c). Out-of-range coordinates are ignored.
func (m *Matrix) Unset(r, c int) {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		return
	}
	m.words[r*m.stride+c/wordBits] &^= 1 << (uint(c) % wordBits)
}

// Clone returns a deep copy of m. Dynamic topology views clone the
// static adjacency matrix once per run and mutate the copy.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{
		words:  make([]uint64, len(m.words)),
		rows:   m.rows,
		cols:   m.cols,
		stride: m.stride,
	}
	copy(c.words, m.words)
	return c
}

// EqualMatrix reports whether m and o have the same shape and bits.
func (m *Matrix) EqualMatrix(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i, w := range m.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Bytes returns the backing storage size in bytes, for capacity
// gating by callers deciding whether a dense matrix is affordable.
func (m *Matrix) Bytes() int { return len(m.words) * 8 }

// Stride returns the number of words backing one row. Rows returned by
// Row have exactly this length.
func (m *Matrix) Stride() int { return m.stride }

// Row returns row r's backing words. The slice aliases the matrix:
// callers must treat it as read-only (mutate through Set/Unset) and
// must not hold it across a Clone. Out-of-range rows return nil.
//
// This is the radio engine's whole-channel resolution hook: a
// listener's neighbor row AND a channel's broadcaster row, swept with
// popcounts, resolves silence/sole-talker/contention without walking
// either adjacency or broadcaster lists.
func (m *Matrix) Row(r int) []uint64 {
	if r < 0 || r >= m.rows {
		return nil
	}
	return m.words[r*m.stride : (r+1)*m.stride : (r+1)*m.stride]
}

// EqualWords reports whether two equal-length word slices hold the
// same bits. The radio engine compares a listener's current adjacency
// row against its base-topology row to skip the partition-loss
// counterfactual when nothing incident to the listener has churned.
func EqualWords(a, b []uint64) bool {
	for i, w := range a {
		if w != b[i] {
			return false
		}
	}
	return true
}

// AndCountSole intersects two equal-length word slices and returns the
// number of set bits in the intersection, capped at 2 (callers only
// distinguish silence / sole talker / contention), together with the
// bit index of the sole set bit when the count is exactly 1 (-1
// otherwise). The sweep early-exits as soon as two bits are seen.
func AndCountSole(a, b []uint64) (count int, sole int) {
	sole = -1
	for i, w := range a {
		x := w & b[i]
		if x == 0 {
			continue
		}
		c := bits.OnesCount64(x)
		count += c
		if count > 1 {
			return 2, -1
		}
		sole = i*wordBits + bits.TrailingZeros64(x)
	}
	if count != 1 {
		sole = -1
	}
	return count, sole
}
