package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if got := s.Count(); got != 0 {
		t.Errorf("Count() = %d, want 0", got)
	}
	if s.Len() != 100 {
		t.Errorf("Len() = %d, want 100", s.Len())
	}
	for i := 0; i < 100; i++ {
		if s.Contains(i) {
			t.Fatalf("empty set Contains(%d) = true", i)
		}
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130) // spans three words
	elems := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, e := range elems {
		s.Add(e)
	}
	if got := s.Count(); got != len(elems) {
		t.Errorf("Count() = %d, want %d", got, len(elems))
	}
	for _, e := range elems {
		if !s.Contains(e) {
			t.Errorf("Contains(%d) = false, want true", e)
		}
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Error("Contains(64) = true after Remove")
	}
	if got := s.Count(); got != len(elems)-1 {
		t.Errorf("Count() = %d, want %d", got, len(elems)-1)
	}
}

func TestOutOfRangeIgnored(t *testing.T) {
	s := New(10)
	s.Add(-1)
	s.Add(10)
	s.Add(1000)
	if got := s.Count(); got != 0 {
		t.Errorf("Count() = %d after out-of-range adds, want 0", got)
	}
	if s.Contains(-1) || s.Contains(10) {
		t.Error("Contains out-of-range returned true")
	}
	s.Remove(-5) // must not panic
	s.Remove(99)
}

func TestAddIdempotent(t *testing.T) {
	s := New(10)
	s.Add(3)
	s.Add(3)
	if got := s.Count(); got != 1 {
		t.Errorf("Count() = %d, want 1", got)
	}
}

func TestFromSliceAndElems(t *testing.T) {
	in := []int{5, 1, 99, 1, 64, -3, 200}
	s := FromSlice(100, in)
	want := []int{1, 5, 64, 99}
	got := s.Elems(nil)
	if len(got) != len(want) {
		t.Fatalf("Elems = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elems = %v, want %v", got, want)
		}
	}
}

func TestIntersectionCount(t *testing.T) {
	tests := []struct {
		name string
		a, b []int
		want int
	}{
		{name: "disjoint", a: []int{1, 2, 3}, b: []int{4, 5, 6}, want: 0},
		{name: "identical", a: []int{1, 64, 120}, b: []int{1, 64, 120}, want: 3},
		{name: "partial", a: []int{0, 63, 64}, b: []int{63, 64, 65}, want: 2},
		{name: "empty", a: nil, b: []int{1}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a := FromSlice(128, tt.a)
			b := FromSlice(128, tt.b)
			if got := a.IntersectionCount(b); got != tt.want {
				t.Errorf("IntersectionCount = %d, want %d", got, tt.want)
			}
			if got := b.IntersectionCount(a); got != tt.want {
				t.Errorf("IntersectionCount (reversed) = %d, want %d", got, tt.want)
			}
			if got, want := a.Intersects(b), tt.want > 0; got != want {
				t.Errorf("Intersects = %v, want %v", got, want)
			}
		})
	}
}

func TestIntersectionCountDifferentUniverses(t *testing.T) {
	a := FromSlice(64, []int{1, 2, 63})
	b := FromSlice(200, []int{2, 63, 150})
	if got := a.IntersectionCount(b); got != 2 {
		t.Errorf("IntersectionCount = %d, want 2", got)
	}
}

func TestSetOperations(t *testing.T) {
	a := FromSlice(100, []int{1, 2, 3, 70})
	b := FromSlice(100, []int{3, 4, 70, 99})

	u := a.Clone()
	u.Union(b)
	wantU := FromSlice(100, []int{1, 2, 3, 4, 70, 99})
	if !u.Equal(wantU) {
		t.Errorf("Union = %v, want %v", u, wantU)
	}

	i := a.Clone()
	i.Intersect(b)
	wantI := FromSlice(100, []int{3, 70})
	if !i.Equal(wantI) {
		t.Errorf("Intersect = %v, want %v", i, wantI)
	}

	d := a.Clone()
	d.Difference(b)
	wantD := FromSlice(100, []int{1, 2})
	if !d.Equal(wantD) {
		t.Errorf("Difference = %v, want %v", d, wantD)
	}
}

func TestUnionPanicsOnUniverseMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Union with mismatched universes did not panic")
		}
	}()
	New(10).Union(New(20))
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice(100, []int{1, 2})
	b := a.Clone()
	b.Add(50)
	if a.Contains(50) {
		t.Error("mutating clone affected original")
	}
	if !b.Contains(1) || !b.Contains(2) {
		t.Error("clone missing original elements")
	}
}

func TestClear(t *testing.T) {
	s := FromSlice(100, []int{1, 2, 3})
	s.Clear()
	if s.Count() != 0 {
		t.Errorf("Count after Clear = %d, want 0", s.Count())
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromSlice(100, []int{1, 2, 3, 4, 5})
	var seen []int
	s.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 3
	})
	if len(seen) != 3 {
		t.Errorf("ForEach visited %d elements, want 3", len(seen))
	}
}

func TestNthElem(t *testing.T) {
	s := FromSlice(200, []int{3, 64, 65, 190})
	tests := []struct {
		n      int
		want   int
		wantOK bool
	}{
		{0, 3, true},
		{1, 64, true},
		{2, 65, true},
		{3, 190, true},
		{4, 0, false},
		{-1, 0, false},
	}
	for _, tt := range tests {
		got, ok := s.NthElem(tt.n)
		if ok != tt.wantOK || (ok && got != tt.want) {
			t.Errorf("NthElem(%d) = (%d, %v), want (%d, %v)", tt.n, got, ok, tt.want, tt.wantOK)
		}
	}
}

func TestString(t *testing.T) {
	s := FromSlice(10, []int{1, 3})
	if got, want := s.String(), "{1, 3}"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got, want := New(4).String(), "{}"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// model is a map-based reference implementation used by property tests.
type model map[int]bool

func applyOps(n int, ops []opRecord) (*Set, model) {
	s := New(n)
	m := make(model)
	for _, op := range ops {
		e := op.Elem % n
		if e < 0 {
			e = -e % n
		}
		switch op.Kind % 2 {
		case 0:
			s.Add(e)
			m[e] = true
		case 1:
			s.Remove(e)
			delete(m, e)
		}
	}
	return s, m
}

type opRecord struct {
	Kind int
	Elem int
}

// TestQuickAgainstModel checks that arbitrary Add/Remove sequences agree
// with a map-based model on Count, Contains, and Elems.
func TestQuickAgainstModel(t *testing.T) {
	f := func(ops []opRecord) bool {
		const n = 150
		s, m := applyOps(n, ops)
		if s.Count() != len(m) {
			return false
		}
		for i := 0; i < n; i++ {
			if s.Contains(i) != m[i] {
				return false
			}
		}
		elems := s.Elems(nil)
		if len(elems) != len(m) {
			return false
		}
		for _, e := range elems {
			if !m[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickIntersectionCount checks |a ∩ b| against a model for random
// element sets.
func TestQuickIntersectionCount(t *testing.T) {
	f := func(aIn, bIn []uint8) bool {
		const n = 256
		a, b := New(n), New(n)
		am, bm := make(model), make(model)
		for _, e := range aIn {
			a.Add(int(e))
			am[int(e)] = true
		}
		for _, e := range bIn {
			b.Add(int(e))
			bm[int(e)] = true
		}
		want := 0
		for e := range am {
			if bm[e] {
				want++
			}
		}
		return a.IntersectionCount(b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickUnionIntersectDifferenceLaws verifies algebraic identities:
// |A∪B| + |A∩B| == |A| + |B|, and A\B ∪ A∩B == A.
func TestQuickSetAlgebra(t *testing.T) {
	f := func(aIn, bIn []uint8) bool {
		const n = 256
		a := New(n)
		b := New(n)
		for _, e := range aIn {
			a.Add(int(e))
		}
		for _, e := range bIn {
			b.Add(int(e))
		}
		union := a.Clone()
		union.Union(b)
		inter := a.Clone()
		inter.Intersect(b)
		diff := a.Clone()
		diff.Difference(b)

		if union.Count()+inter.Count() != a.Count()+b.Count() {
			return false
		}
		recon := diff.Clone()
		recon.Union(inter)
		return recon.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNthElemMatchesElems(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		s := New(300)
		for i := 0; i < 40; i++ {
			s.Add(rnd.Intn(300))
		}
		elems := s.Elems(nil)
		for i, e := range elems {
			got, ok := s.NthElem(i)
			if !ok || got != e {
				t.Fatalf("NthElem(%d) = (%d, %v), want (%d, true)", i, got, ok, e)
			}
		}
		if _, ok := s.NthElem(len(elems)); ok {
			t.Fatal("NthElem past end returned ok")
		}
	}
}

func BenchmarkIntersectionCount(b *testing.B) {
	a := New(1024)
	c := New(1024)
	for i := 0; i < 1024; i += 3 {
		a.Add(i)
	}
	for i := 0; i < 1024; i += 5 {
		c.Add(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.IntersectionCount(c)
	}
}

func TestMatrixSetGet(t *testing.T) {
	m := NewMatrix(5, 130) // cols span multiple words
	if m.Rows() != 5 || m.Cols() != 130 {
		t.Fatalf("dims = %dx%d, want 5x130", m.Rows(), m.Cols())
	}
	pairs := [][2]int{{0, 0}, {0, 129}, {4, 63}, {4, 64}, {2, 65}}
	for _, p := range pairs {
		m.Set(p[0], p[1])
	}
	for _, p := range pairs {
		if !m.Get(p[0], p[1]) {
			t.Errorf("Get(%d,%d) = false after Set", p[0], p[1])
		}
	}
	if m.Get(1, 0) || m.Get(0, 1) || m.Get(3, 64) {
		t.Error("unset bits read true")
	}
}

func TestMatrixOutOfRange(t *testing.T) {
	m := NewMatrix(3, 3)
	m.Set(-1, 0)
	m.Set(0, -1)
	m.Set(3, 0)
	m.Set(0, 3)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			if m.Get(r, c) {
				t.Fatalf("out-of-range Set leaked into (%d,%d)", r, c)
			}
		}
	}
	if m.Get(-1, 0) || m.Get(0, 3) {
		t.Error("out-of-range Get returned true")
	}
	if NewMatrix(-1, -1).Bytes() != 0 {
		t.Error("negative dims should yield an empty matrix")
	}
}
