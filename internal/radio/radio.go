// Package radio implements the synchronous cognitive-radio network
// model of Section 3 of the paper.
//
// Time is divided into discrete slots. In each slot every node tunes
// its transceiver to one of its c channels (named by a node-local
// label) and either broadcasts, listens, or idles. A listening node u
// hears a message iff exactly one neighbor of u broadcasts on u's
// current channel in that slot; silence and collisions (two or more
// broadcasting neighbors) are indistinguishable — there is no collision
// detection. A broadcasting node "receives" only its own message.
//
// Protocols are written against the Protocol interface and stepped by
// an Engine. Two engines are provided with identical semantics: a
// sequential engine (Run) and a goroutine-parallel engine
// (RunParallel) that fans the per-node work out to a persistent pool
// of workers; results are bit-identical because randomness lives in
// per-node streams and both engines share one slot-resolution core.
//
// # Slot anatomy
//
// Both engines execute a slot in three phases:
//
//  1. Collect: every live protocol's Act is called and its chosen
//     global channel resolved (parallel across nodes under
//     RunParallel).
//  2. Index: broadcasters are bucketed by global channel into a
//     compact per-slot index — a count per channel plus an intrusive
//     per-channel broadcaster list (sequential; O(broadcasters)).
//  3. Resolve/observe: every live protocol's Observe is called with
//     the delivery outcome (parallel across nodes under RunParallel).
//     A listener on a channel with zero broadcasters resolves to
//     silence in O(1); with one broadcaster, via a single O(1)/O(log Δ)
//     adjacency probe; only genuinely contended channels walk the
//     shorter of the channel's broadcaster list and the listener's
//     neighbor list.
//
// After phase 3 the engine feeds reactive jammers (ActivitySink),
// refreshes completion flags, and advances the slot counter in its
// sequential section.
//
// Topology may be time-varying: a TopologyFeed installed on the
// Network is stepped once per slot before phase 1, also from the
// sequential section, mutating the engine's private graph.Dynamic
// view (node churn, link flapping, mobility). Down nodes neither
// transmit nor observe. Static runs never construct the view and
// resolve against the shared graph exactly as before.
package radio

import (
	"context"
	"fmt"
	"runtime"

	"crn/internal/bitset"
	"crn/internal/chanassign"
	"crn/internal/graph"
)

// NodeID identifies a node (its index in the graph).
type NodeID int32

// Kind enumerates what a node does with its transceiver in one slot.
type Kind uint8

// Transceiver actions. A node does exactly one per slot.
const (
	Idle Kind = iota + 1
	Listen
	Broadcast
)

// Message is a frame delivered by the radio. Data is protocol-defined;
// the engine treats it opaquely.
//
// A *Message handed to Observe or a TraceFunc is only valid for the
// duration of the call: the engine reuses the backing storage for
// later deliveries. Implementations must copy the fields they keep.
type Message struct {
	From NodeID
	Data any
}

// Action is a node's decision for one slot. Ch is a local channel
// label in [0, c); it is ignored for Idle.
type Action struct {
	Kind Kind
	Ch   int
	Data any
}

// Protocol is a node-local state machine driven by the engine.
//
// Each slot the engine calls Act once, resolves the radio, then calls
// Observe exactly once: msg is non-nil iff the node listened and heard
// a message (exactly one broadcasting neighbor on its channel). msg and
// its fields are only valid during the Observe call — the engine
// reuses the Message storage — so protocols keeping a frame must copy
// it. The engine never calls Act again after Done reports true.
type Protocol interface {
	Act(slot int64) Action
	Observe(slot int64, msg *Message)
	Done() bool
}

// FixedSchedule is optionally implemented by protocols whose Done
// cannot report true before a statically known number of observed
// slots. The engine then skips the per-slot Done poll until that many
// slots have elapsed — a measurable saving, since polling is an
// interface call per live node per slot. MinDoneSlots is a lower
// bound on the protocol's lifetime, not necessarily exact: Done is
// still polled every slot once the bound has passed. The method name
// is deliberately distinct from the common TotalSlots schedule
// accessor so protocols opt in explicitly — implementing MinDoneSlots
// asserts that Done() is false whenever fewer than that many slots
// have been observed.
type FixedSchedule interface {
	MinDoneSlots() int64
}

// Stats aggregates engine counters for one run.
type Stats struct {
	// Slots is the number of slots executed.
	Slots int64
	// Broadcasts, Listens and Idles count node-slot actions.
	Broadcasts int64
	Listens    int64
	Idles      int64
	// Deliveries counts messages heard by listeners.
	Deliveries int64
	// Collisions counts listener-slots lost to two or more
	// simultaneously broadcasting neighbors.
	Collisions int64
	// JammedListens counts listener-slots lost to primary users.
	JammedListens int64
	// EdgeAdds and EdgeRemoves count topology mutations a TopologyFeed
	// actually applied. Neither no-op reconciliations nor the feed's
	// first Step on an engine (which re-establishes current state over
	// the freshly cloned base topology) are counted, so the counters
	// reflect model events even across multi-engine pipelines. Zero on
	// static runs.
	EdgeAdds    int64
	EdgeRemoves int64
	// NodeJoins and NodeLeaves count up/down transitions a TopologyFeed
	// applied; DownSlots counts node-slots spent down (neither
	// transmitting nor observing). Zero on static runs.
	NodeJoins  int64
	NodeLeaves int64
	DownSlots  int64
	// PartitionLosses counts listener-slots in which the base (static)
	// topology would have delivered a frame but the current topology
	// did not deliver that frame — deliveries lost to edges churned
	// away (or gained) underneath the protocols. Down nodes do not
	// listen, so their losses show up as DownSlots instead. Zero on
	// static runs.
	PartitionLosses int64
	// Completed reports whether every protocol finished before the
	// slot budget ran out.
	Completed bool
}

// Accumulate adds o's slot and counter fields into s — the helper
// multi-engine pipelines (CGCAST's setup stages plus dissemination)
// and the worker pool's stats merge use to combine Stats. Completed is
// left untouched.
func (s *Stats) Accumulate(o Stats) {
	s.Slots += o.Slots
	s.Broadcasts += o.Broadcasts
	s.Listens += o.Listens
	s.Idles += o.Idles
	s.Deliveries += o.Deliveries
	s.Collisions += o.Collisions
	s.JammedListens += o.JammedListens
	s.EdgeAdds += o.EdgeAdds
	s.EdgeRemoves += o.EdgeRemoves
	s.NodeJoins += o.NodeJoins
	s.NodeLeaves += o.NodeLeaves
	s.DownSlots += o.DownSlots
	s.PartitionLosses += o.PartitionLosses
}

// TraceFunc observes every delivery the engine resolves, for debugging
// and the crntrace tool. msg is only valid during the call (the engine
// reuses the storage); copy what you keep.
type TraceFunc func(slot int64, listener NodeID, globalCh int32, msg *Message)

// Jammer reports primary-user occupancy per (slot, global channel).
// A frame broadcast on an occupied channel is lost and a listener
// tuned there hears only silence — secondary users cannot use spectrum
// a primary user holds. Implementations must be deterministic and safe
// for concurrent readers (RunParallel queries from worker goroutines).
// internal/spectrum provides standard models.
type Jammer interface {
	Jammed(slot int64, ch int32) bool
}

// ActivitySink is optionally implemented by Jammers that react to
// secondary-user activity (adversarial models). After every slot
// resolves, the engine calls ObserveActivity exactly once from its
// sequential section with the number of broadcasts per global channel
// for that slot. The slice is a read-only scratch buffer the engine
// reuses — implementations must copy what they keep and must not
// write into it (the engine only re-zeroes the entries it set, so a
// stray write would persist as phantom activity). Because the engine only
// queries Jammed for slots after the latest ObserveActivity call's
// slot, reactive jammers see activity with at least a one-slot delay —
// the adversary can sense, but not react within a slot.
type ActivitySink interface {
	ObserveActivity(slot int64, broadcastsByChannel []int)
}

// TopologyMutator is the engine-side handle a TopologyFeed mutates
// topology through. Mutations apply to the engine's private dynamic
// view (the network's base graph is never touched) and take effect in
// the slot about to execute. Edge mutations keep the resolve fast
// paths' invariants — sorted adjacency and the dense bit matrix —
// updated incrementally; the boolean results report whether anything
// actually changed, so feeds may reconcile desired state
// declaratively and the engine counts only real changes.
type TopologyMutator interface {
	// N returns the node count (topology dynamics never change it).
	N() int
	// NodeUp reports whether the node is currently up.
	NodeUp(u int) bool
	// SetNodeUp sets a node up or down and reports whether the state
	// changed. Down nodes neither transmit nor observe; their
	// protocols freeze on their local clocks until rejoin.
	SetNodeUp(u int, up bool) bool
	// HasEdge reports whether {u, v} is currently an edge.
	HasEdge(u, v int) bool
	// AddEdge inserts {u, v}; no-op (false) when present or invalid.
	AddEdge(u, v int) bool
	// RemoveEdge deletes {u, v}; no-op (false) when absent or invalid.
	RemoveEdge(u, v int) bool
}

// TopologyFeed drives per-slot topology mutation — node churn, link
// flapping, mobility. It mirrors ActivitySink on the input side:
// before each slot resolves, the engine calls Step exactly once from
// its sequential section, so mutations apply between slots, are never
// concurrent with protocol work, and feed Run and RunParallel
// identically. Slot s's actions see every mutation Step(s, ·)
// applied; a reactive jammer observing slot s's activity therefore
// senses traffic that already ran on the mutated topology.
//
// Implementations must be deterministic (seed their randomness via
// rng.Split) and, when stateful, run-scoped: callers sharing one
// scenario across concurrent runs install a fresh instance per run
// (internal/dynamics models implement a NewRun constructor the facade
// uses, mirroring spectrum.RunScoped).
type TopologyFeed interface {
	Step(slot int64, mut TopologyMutator)
}

// Network bundles the instance a protocol runs on.
type Network struct {
	Graph  *graph.Graph
	Assign *chanassign.Assignment
	// Jammer optionally models primary users; nil means clear spectrum.
	// A Jammer that also implements ActivitySink receives per-slot
	// activity reports.
	Jammer Jammer
	// Topology optionally makes the topology time-varying: the engine
	// clones Graph into a private mutable view and calls the feed once
	// per slot. nil means the static model of the paper. Graph itself
	// is never mutated.
	Topology TopologyFeed
	// Trace optionally observes every delivery the engines resolve;
	// Engine.SetTrace overrides it. Like SetTrace callbacks it may run
	// concurrently under RunParallel.
	Trace TraceFunc
}

// Validate checks the graph/assignment pair is consistent.
func (nw *Network) Validate() error {
	if nw.Graph == nil || nw.Assign == nil {
		return fmt.Errorf("radio: network needs both graph and assignment")
	}
	if nw.Graph.N() != nw.Assign.N() {
		return fmt.Errorf("radio: graph has %d nodes, assignment %d", nw.Graph.N(), nw.Assign.N())
	}
	return nil
}

// Engine steps a set of protocols over a network.
// Engines are single-use: construct, Run, inspect stats.
type Engine struct {
	nw        *Network
	protocols []Protocol
	trace     TraceFunc

	// g is the topology the engine resolves against: the network's
	// graph on static runs, the engine's private graph.Dynamic view
	// when a TopologyFeed is installed.
	g *graph.Graph
	// dyn is the mutable topology view (nil on static runs); topo is
	// the installed feed and mut the engine-side mutator handed to it.
	dyn  *graph.Dynamic
	topo TopologyFeed
	mut  TopologyMutator // pre-boxed engineMutator, one boxing per run
	// countTopo gates the Stats mutation counters: false during the
	// feed's first Step on this engine, where feeds re-establish their
	// current state against the freshly cloned base topology (a
	// multi-engine pipeline hands one feed several engines) — those
	// reconciliations set initial conditions rather than model events.
	countTopo bool
	// baseG/baseNbr are the untouched base topology, for the
	// partition-loss counterfactual (nil matrix on huge graphs).
	baseG   *graph.Graph
	baseNbr *bitset.Matrix

	// Per-slot hot state, struct-of-arrays: the collect phase writes
	// one byte (kind), one int32 (globalCh) and — for broadcasters
	// only — one interface word pair (data) per node, and the resolve
	// phase reads them back with unit-stride loads instead of pulling
	// 32-byte Action structs through the cache.
	kind     []Kind
	data     []any   // broadcast payload, valid only for this slot's broadcasters
	globalCh []int32 // resolved global channel per non-idle node
	// state[u] is the node's engine status (nodeLive/nodeDone/nodeDown),
	// folding the old done+up pair into a single byte load on both hot
	// loops. nodeDone dominates nodeDown: a protocol that reports Done
	// stays done across rejoins.
	state []uint8
	// up[u] reports whether node u currently participates; all-true on
	// static runs, driven by the TopologyFeed otherwise. A down node's
	// Act and Observe are not called, so its protocol freezes on its
	// local clock until rejoin.
	up []bool
	// doneAt[u] is the earliest observed-slot count at which protocol
	// u may report Done (from FixedSchedule; 0 when unknown). minDoneAt
	// is the minimum over live protocols, letting refreshDone skip the
	// whole scan during a homogeneous schedule's steady state.
	doneAt    []int64
	minDoneAt int64
	nDone     int
	slot      int64
	stats     Stats

	// Per-slot channel index (the "index" phase): chCount[ch] is the
	// number of broadcasters on global channel ch (zero for channels
	// not in touched), and chHead[ch]/bcastNext thread them into a
	// per-channel list (chHead[ch] is one broadcaster, bcastNext[v]
	// the next, -1 ends the list) built in one pass.
	chCount   []int32
	chHead    []int32
	bcastNext []int32
	touched   []int32
	// bcasters is the sequential engine's collect-phase broadcaster
	// buffer; seqSegs wraps it in the segment shape buildIndex takes
	// (the pool passes per-worker segments instead).
	bcasters []int32
	seqSegs  [][]int32

	// Channel bitset rows (nil without a dense adjacency matrix): a
	// channel whose broadcaster count reaches rowMin gets a row of n
	// bits from rowBuf — one bit per broadcaster — so listeners resolve
	// the whole channel with an AND/popcount sweep against their
	// neighbor-matrix row instead of walking broadcaster or neighbor
	// lists. rowOf[ch] is the channel's row index this slot (-1 none);
	// rows are cleared when (re)assigned, so resetIndex only has to
	// reset rowOf and the row cursor.
	rowBuf    []uint64
	rowOf     []int32
	rowStride int
	rowMin    int32
	rowsUsed  int32

	// nbr is the graph's dense adjacency matrix (nil on huge graphs,
	// where the engine binary-searches sorted adjacency instead).
	nbr *bitset.Matrix

	// scratchMsg backs every delivery the sequential engine hands to
	// Observe; pool workers carry their own. Reuse is why the Observe
	// contract limits message lifetime to the call.
	scratchMsg Message

	// bank is the shared RangeProtocol when every protocol is a view
	// into one (see detectRangeBank); nil means per-node dispatch. acts
	// and deliv are the range ABI's per-slot scratch, indexed by node.
	// delivIdx records which nodes a resolve segment delivered into —
	// segment [lo, hi) writes ids at delivIdx[lo:], so concurrent pool
	// segments stay disjoint — letting the post-observe reset touch
	// only those entries instead of rescanning the segment.
	// listenBuf and segStats carry collect-phase results to the
	// resolve phase in range mode: segment [lo, hi) writes its
	// listeners' ids at listenBuf[lo:] and its live idle/broadcast/
	// listen/down counts at segStats[4*lo:], so resolveRange visits
	// only listeners instead of rescanning every node's kind. Segments
	// are disjoint, so concurrent pool workers never collide.
	bank      RangeProtocol
	acts      []Action
	deliv     []Delivery
	delivIdx  []int32
	listenBuf []int32
	segStats  []int64

	// activity feed for reactive jammers (nil when the jammer is not an
	// ActivitySink): broadcast count per global channel, reused per slot.
	sink     ActivitySink
	activity []int
}

// NewEngine constructs an engine for the given network and per-node
// protocols (len must equal the node count). It finalizes the graph
// (idempotent) so adjacency queries can use the sorted or bit-matrix
// fast paths.
func NewEngine(nw *Network, protocols []Protocol) (*Engine, error) {
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	if len(protocols) != nw.Graph.N() {
		return nil, fmt.Errorf("radio: %d protocols for %d nodes", len(protocols), nw.Graph.N())
	}
	nw.Graph.Finalize()
	n := nw.Graph.N()
	u := nw.Assign.Universe
	e := &Engine{
		nw:        nw,
		protocols: protocols,
		g:         nw.Graph,
		kind:      make([]Kind, n),
		data:      make([]any, n),
		globalCh:  make([]int32, n),
		state:     make([]uint8, n),
		up:        make([]bool, n),
		doneAt:    make([]int64, n),
		chCount:   make([]int32, u),
		chHead:    make([]int32, u),
		bcastNext: make([]int32, n),
		touched:   make([]int32, 0, u),
		bcasters:  make([]int32, 0, n),
		seqSegs:   make([][]int32, 1),
		nbr:       nw.Graph.NeighborMatrix(),
		trace:     nw.Trace,
	}
	for i := range e.chHead {
		e.chHead[i] = -1
	}
	for i := range e.up {
		e.up[i] = true
	}
	if nw.Topology != nil {
		// Dynamic topology: resolve against a private mutable clone so
		// the shared base graph stays immutable, and keep the base for
		// the partition-loss counterfactual.
		e.topo = nw.Topology
		e.dyn = graph.NewDynamic(nw.Graph)
		e.g = e.dyn.Graph()
		e.nbr = e.g.NeighborMatrix()
		e.baseG = nw.Graph
		e.baseNbr = nw.Graph.NeighborMatrix()
		e.mut = engineMutator{e}
	}
	e.initChannelRows(n, u)
	e.minDoneAt = -1
	for i, p := range protocols {
		// FixedSchedule bounds are in observed slots; under a dynamic
		// topology a down node observes nothing, so the bounds no
		// longer map onto engine slots and the Done-poll skip is
		// disabled (doneAt stays 0 — Done is simply polled every slot).
		if e.topo == nil {
			if fs, ok := p.(FixedSchedule); ok {
				e.doneAt[i] = fs.MinDoneSlots()
			}
		}
		if e.minDoneAt < 0 || e.doneAt[i] < e.minDoneAt {
			e.minDoneAt = e.doneAt[i]
		}
	}
	if sink, ok := nw.Jammer.(ActivitySink); ok {
		e.sink = sink
		e.activity = make([]int, u)
	}
	if bank := detectRangeBank(protocols); bank != nil {
		e.bank = bank
		e.acts = make([]Action, n)
		e.deliv = make([]Delivery, n)
		e.delivIdx = make([]int32, n)
		e.listenBuf = make([]int32, n)
		e.segStats = make([]int64, 4*n)
		// resolveRange keeps From=-1 as the steady-state content of
		// every entry, writing (and afterwards resetting) only actual
		// deliveries.
		for i := range e.deliv {
			e.deliv[i].From = -1
		}
	}
	return e, nil
}

// Node engine states, one byte per node on the hot loops. nodeDone
// dominates nodeDown: Done is terminal, so a done node that rejoins
// stays done.
const (
	nodeLive uint8 = iota
	nodeDone
	nodeDown
)

// initChannelRows sizes the channel bitset-row pool. Rows exist only
// when the graph affords a dense adjacency matrix; a channel earns a
// row once rowMin broadcasters land on it in a slot, and at most
// n/rowMin channels can do that, which bounds the pool.
func (e *Engine) initChannelRows(n, universe int) {
	// rowOf always exists (all -1) so the resolve loop needs no nil
	// check; rowBuf stays nil when the graph has no dense matrix, and
	// buildIndex never claims a row then.
	e.rowOf = make([]int32, universe)
	for i := range e.rowOf {
		e.rowOf[i] = -1
	}
	if e.nbr == nil {
		return
	}
	e.rowStride = e.nbr.Stride()
	// The walk path costs ~min(count, degree) dependent probes, the
	// row path ~stride sequential word ops; rows start paying for
	// themselves once a channel has a couple of broadcasters, except
	// on huge graphs where a row sweep reads stride words per
	// listener and the bar is proportionally higher.
	e.rowMin = int32(max(2, e.rowStride/4))
	maxRows := n/int(e.rowMin) + 1
	if maxRows > universe {
		maxRows = universe
	}
	e.rowBuf = make([]uint64, maxRows*e.rowStride)
}

// engineMutator is the TopologyMutator the engine hands its feed.
type engineMutator struct{ e *Engine }

func (m engineMutator) N() int { return len(m.e.protocols) }

func (m engineMutator) NodeUp(u int) bool {
	return u >= 0 && u < len(m.e.up) && m.e.up[u]
}

func (m engineMutator) SetNodeUp(u int, up bool) bool {
	if u < 0 || u >= len(m.e.up) || m.e.up[u] == up {
		return false
	}
	m.e.up[u] = up
	if m.e.state[u] != nodeDone {
		if up {
			m.e.state[u] = nodeLive
		} else {
			m.e.state[u] = nodeDown
		}
	}
	if m.e.countTopo {
		if up {
			m.e.stats.NodeJoins++
		} else {
			m.e.stats.NodeLeaves++
		}
	}
	return true
}

func (m engineMutator) HasEdge(u, v int) bool { return m.e.dyn.HasEdge(u, v) }

func (m engineMutator) AddEdge(u, v int) bool {
	if !m.e.dyn.AddEdge(u, v) {
		return false
	}
	if m.e.countTopo {
		m.e.stats.EdgeAdds++
	}
	return true
}

func (m engineMutator) RemoveEdge(u, v int) bool {
	if !m.e.dyn.RemoveEdge(u, v) {
		return false
	}
	if m.e.countTopo {
		m.e.stats.EdgeRemoves++
	}
	return true
}

// applyTopology runs the feed for the slot about to execute. It is
// called from the engines' sequential sections before the collect
// phase, so mutations are never concurrent with protocol work and
// both engines apply identical sequences. Mutations applied during
// the feed's first Step on this engine are not counted in Stats —
// they re-establish the feed's current state over the fresh clone
// (see countTopo); everything after is a model event.
func (e *Engine) applyTopology() {
	if e.topo == nil {
		return
	}
	e.topo.Step(e.slot, e.mut)
	e.countTopo = true
}

// SetTrace installs a delivery trace callback (nil to disable).
// With RunParallel the callback may be invoked from multiple
// goroutines concurrently; use Run for ordered traces.
func (e *Engine) SetTrace(fn TraceFunc) { e.trace = fn }

// Slot returns the number of slots executed so far.
func (e *Engine) Slot() int64 { return e.slot }

// Stats returns counters accumulated so far.
func (e *Engine) Stats() Stats { return e.stats }

// Run executes slots sequentially until every protocol reports Done or
// maxSlots have elapsed. It can be called again to continue a run with
// a larger budget.
func (e *Engine) Run(maxSlots int64) Stats {
	return e.RunUntil(maxSlots, nil)
}

// RunUntil executes slots sequentially like Run but additionally stops
// as soon as stop returns true (checked after each slot). Harnesses use
// it to measure time-to-goal for protocols whose own schedules are
// fixed-length (e.g. "slots until every node knows all neighbors").
func (e *Engine) RunUntil(maxSlots int64, stop func(slot int64) bool) Stats {
	st, _ := e.RunUntilCtx(context.Background(), maxSlots, stop)
	return st
}

// RunUntilCtx is RunUntil with cooperative cancellation: the context is
// polled every ctxCheckMask+1 slots (slots are sub-microsecond, so
// cancellation still lands within microseconds), and a cancelled run
// returns the stats accumulated so far together with ctx.Err(). A nil
// ctx means context.Background(). This is the cancellation point every
// facade primitive and the sweep engine thread their contexts down to.
func (e *Engine) RunUntilCtx(ctx context.Context, maxSlots int64, stop func(slot int64) bool) (Stats, error) {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	for e.slot < maxSlots && e.nDone < len(e.protocols) {
		if done != nil && e.slot&ctxCheckMask == 0 {
			select {
			case <-done:
				e.stats.Completed = false
				return e.stats, ctx.Err()
			default:
			}
		}
		e.step()
		e.slot++
		e.stats.Slots = e.slot
		if stop != nil && stop(e.slot) {
			break
		}
	}
	e.stats.Completed = e.nDone == len(e.protocols)
	return e.stats, nil
}

// ctxCheckMask spaces out the engines' cancellation polls: a
// non-blocking channel select costs tens of nanoseconds, which is
// comparable to a small slot, so polling every slot taxes the hot
// loop measurably. Polling every 16th slot keeps cancellation latency
// in the microseconds while making the poll cost invisible.
const ctxCheckMask = 15

// RunParallel executes the same semantics as Run but fans the per-node
// Act/Observe work out to a persistent pool of `workers` goroutines
// (0 means GOMAXPROCS). Results are identical to Run for the same
// protocols and seeds.
func (e *Engine) RunParallel(maxSlots int64, workers int) Stats {
	st, _ := e.RunParallelCtx(context.Background(), maxSlots, workers)
	return st
}

// RunParallelCtx is RunParallel with cooperative cancellation,
// mirroring RunUntilCtx: the context is polled every ctxCheckMask+1
// slots, and a cancelled run returns the stats accumulated so far
// together with ctx.Err(). A nil ctx means context.Background().
//
// The worker pool is spawned once per call and synchronizes the
// collect and resolve phases with barriers; per-slot work allocates
// nothing.
func (e *Engine) RunParallelCtx(ctx context.Context, maxSlots int64, workers int) (Stats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := len(e.protocols)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return e.RunUntilCtx(ctx, maxSlots, nil)
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	p := newPool(e, workers)
	defer p.stop()
	for e.slot < maxSlots && e.nDone < n {
		if done != nil && e.slot&ctxCheckMask == 0 {
			select {
			case <-done:
				p.drain(&e.stats)
				e.stats.Completed = false
				return e.stats, ctx.Err()
			default:
			}
		}
		e.applyTopology()
		p.runPhase(phaseCollect)
		e.buildIndex(p.segs)
		p.runPhase(phaseResolve)
		e.feedActivity()
		e.resetIndex()
		e.refreshDone()
		e.slot++
		e.stats.Slots = e.slot
	}
	p.drain(&e.stats)
	e.stats.Completed = e.nDone == n
	return e.stats, nil
}

// step runs one full slot sequentially through the shared
// collect → index → resolve/observe core.
func (e *Engine) step() {
	n := len(e.protocols)
	e.applyTopology()
	e.bcasters = e.collectActions(0, n, e.bcasters[:0])
	e.seqSegs[0] = e.bcasters
	e.buildIndex(e.seqSegs)
	e.resolveAndObserve(0, n, &e.stats, &e.scratchMsg)
	e.feedActivity()
	e.resetIndex()
	e.refreshDone()
}

// feedActivity reports the slot's broadcast counts per global channel
// to a reactive jammer. It runs in the engines' sequential sections
// (after the slot resolves, before the next slot's Jammed queries), so
// Run and RunParallel feed identical sequences. The activity slice is
// zero outside the call: touched entries are filled from the channel
// index and cleared again afterwards, so the cost is O(active
// channels), not O(universe).
func (e *Engine) feedActivity() {
	if e.sink == nil {
		return
	}
	for _, ch := range e.touched {
		e.activity[ch] = int(e.chCount[ch])
	}
	e.sink.ObserveActivity(e.slot, e.activity)
	for _, ch := range e.touched {
		e.activity[ch] = 0
	}
}

// collectActions runs the collect phase over nodes [lo, hi),
// appending the ids of broadcasting nodes to buf (the index phase's
// input) and returning the extended slice. Callers pass a pre-sized
// buffer so steady-state slots allocate nothing.
func (e *Engine) collectActions(lo, hi int, buf []int32) []int32 {
	if e.bank != nil {
		return e.collectRange(lo, hi, buf)
	}
	// Hoist the hot slices into locals: the Act interface call forces
	// field reloads otherwise.
	assign := e.nw.Assign
	slot := e.slot
	state := e.state
	kind := e.kind
	data := e.data
	globalCh := e.globalCh
	protocols := e.protocols
	for u := lo; u < hi; u++ {
		if state[u] != nodeLive {
			kind[u] = Idle
			continue
		}
		a := protocols[u].Act(slot)
		kind[u] = a.Kind
		if a.Kind == Idle {
			continue
		}
		globalCh[u] = assign.Global(u, a.Ch)
		if a.Kind == Broadcast {
			data[u] = a.Data
			buf = append(buf, int32(u))
		}
	}
	return buf
}

// buildIndex buckets this slot's broadcasters by global channel: the
// index phase. segs holds the collect phase's broadcaster ids (one
// segment per collector). One pass threads each broadcaster into its
// channel's list; it runs in the engines' sequential sections between
// the collect and resolve phases, costs O(broadcasters), and
// allocates nothing (all scratch is engine-owned and pre-sized).
func (e *Engine) buildIndex(segs [][]int32) {
	// Hoist the index slices into locals: the touched append mutates
	// an engine field, so without these the compiler must assume
	// aliasing and reload every slice header per broadcaster.
	rowMin := e.rowMin
	stride := e.rowStride
	globalCh := e.globalCh
	chHead := e.chHead
	chCount := e.chCount
	bcastNext := e.bcastNext
	rowBuf := e.rowBuf
	rowOf := e.rowOf
	touched := e.touched
	for _, seg := range segs {
		for _, u := range seg {
			ch := globalCh[u]
			head := chHead[ch]
			if head < 0 {
				touched = append(touched, ch)
			}
			bcastNext[u] = head
			chHead[ch] = u
			cnt := chCount[ch] + 1
			chCount[ch] = cnt
			if rowBuf == nil || cnt < rowMin {
				continue
			}
			// Dense channel: maintain its bitset row. The first
			// broadcaster to reach rowMin claims a row from the pool,
			// clears it and back-fills everyone threaded so far; later
			// broadcasters set their own bit.
			ri := rowOf[ch]
			if cnt == rowMin {
				ri = e.rowsUsed
				e.rowsUsed++
				rowOf[ch] = ri
				row := rowBuf[int(ri)*stride : (int(ri)+1)*stride]
				clear(row)
				for v := int32(u); v >= 0; v = bcastNext[v] {
					row[v>>6] |= 1 << (uint(v) & 63)
				}
				continue
			}
			rowBuf[int(ri)*stride+int(u>>6)] |= 1 << (uint(u) & 63)
		}
	}
	e.touched = touched
}

// resetIndex clears the per-slot channel index, touching only the
// channels that were active. Rows are cleared lazily on reassignment,
// so only the channel→row map needs resetting here.
func (e *Engine) resetIndex() {
	for _, ch := range e.touched {
		e.chCount[ch] = 0
		e.chHead[ch] = -1
		e.rowOf[ch] = -1
	}
	e.touched = e.touched[:0]
	e.rowsUsed = 0
}

// adjacent reports whether v is a neighbor of u: the cached dense
// matrix when the graph built one, otherwise graph.Adjacent's sorted
// binary search. Under a TopologyFeed both consult the engine's
// mutable view.
func (e *Engine) adjacent(u int, v int32) bool {
	if e.nbr != nil {
		return e.nbr.Get(u, int(v))
	}
	return e.g.Adjacent(u, int(v))
}

// baseAdjacent is adjacent against the untouched base topology, for
// the partition-loss counterfactual. Only called when a TopologyFeed
// is installed.
func (e *Engine) baseAdjacent(u int, v int32) bool {
	if e.baseNbr != nil {
		return e.baseNbr.Get(u, int(v))
	}
	return e.baseG.Adjacent(u, int(v))
}

// resolveAndObserve is the resolve phase over nodes [lo, hi): it
// consults the channel index to decide what each listener hears and
// delivers exactly one Observe per live protocol. scratch backs every
// delivered Message (per worker under the pool), which is why the
// Observe contract limits message lifetime to the call.
func (e *Engine) resolveAndObserve(lo, hi int, st *Stats, scratch *Message) {
	if e.bank != nil {
		e.resolveRange(lo, hi, st, scratch)
		return
	}
	// Hoist the hot slices into locals: the Observe interface calls
	// force field reloads otherwise. Counters accumulate in locals and
	// fold into st once at the end, so the loop body never chases the
	// Stats pointer.
	g := e.g
	jam := e.nw.Jammer
	dynamic := e.topo != nil
	slot := e.slot
	state := e.state
	kind := e.kind
	data := e.data
	globalCh := e.globalCh
	protocols := e.protocols
	chCount := e.chCount
	chHead := e.chHead
	bcastNext := e.bcastNext
	nbr := e.nbr
	rowOf := e.rowOf
	rowBuf := e.rowBuf
	stride := e.rowStride
	var idles, bcasts, listens, deliveries, collisions, jammedL, downs, plosses int64
	for u := lo; u < hi; u++ {
		if state[u] != nodeLive {
			if state[u] == nodeDown {
				downs++
			}
			continue
		}
		switch kind[u] {
		case Idle:
			idles++
			protocols[u].Observe(slot, nil)
		case Broadcast:
			bcasts++
			protocols[u].Observe(slot, nil)
		case Listen:
			listens++
			ch := globalCh[u]
			if jam != nil && jam.Jammed(slot, ch) {
				jammedL++
				protocols[u].Observe(slot, nil)
				continue
			}
			cnt := chCount[ch]
			if cnt == 0 {
				// Fast path: nobody anywhere broadcast on this channel.
				protocols[u].Observe(slot, nil)
				continue
			}
			talkers := 0
			var from int32 = -1
			var row []uint64
			if ri := rowOf[ch]; ri >= 0 {
				// Dense channel: resolve the whole channel with one
				// AND/popcount sweep of the listener's adjacency row
				// against the channel's broadcaster row.
				row = rowBuf[int(ri)*stride : (int(ri)+1)*stride]
				c, sole := bitset.AndCountSole(nbr.Row(u), row)
				talkers = c
				from = int32(sole)
			} else if nbrs := g.Neighbors(u); int(cnt) <= len(nbrs) {
				// Walk the channel's broadcaster list (covers the
				// sole-talker case with a single adjacency probe).
				for v := chHead[ch]; v >= 0; v = bcastNext[v] {
					if e.adjacent(u, v) {
						talkers++
						if talkers > 1 {
							break
						}
						from = v
					}
				}
			} else {
				// More broadcasters on the channel than the listener has
				// neighbors: walk the neighbor list instead.
				for _, v := range nbrs {
					if kind[v] == Broadcast && globalCh[v] == ch {
						talkers++
						if talkers > 1 {
							break
						}
						from = v
					}
				}
			}
			if dynamic && !e.sameAsBase(u) {
				// Partition-loss counterfactual: would the base (static)
				// topology have delivered a frame this listener-slot does
				// not deliver? Resolves the same broadcaster set against
				// base adjacency — dynamics-only cost, early exit at 2,
				// skipped outright (sameAsBase) when nothing incident to
				// the listener has churned, since then both resolutions
				// are identical by construction.
				baseTalkers := 0
				var baseFrom int32 = -1
				if row != nil && e.baseNbr != nil {
					baseTalkers, baseFrom = e.baseCounterfactual(u, row)
				} else {
					for v := chHead[ch]; v >= 0; v = bcastNext[v] {
						if e.baseAdjacent(u, v) {
							baseTalkers++
							if baseTalkers > 1 {
								break
							}
							baseFrom = v
						}
					}
				}
				if baseTalkers == 1 && (talkers != 1 || from != baseFrom) {
					plosses++
				}
			}
			switch {
			case talkers == 1:
				deliveries++
				scratch.From = NodeID(from)
				scratch.Data = data[from]
				if e.trace != nil {
					e.trace(slot, NodeID(u), ch, scratch)
				}
				protocols[u].Observe(slot, scratch)
			case talkers > 1:
				collisions++
				protocols[u].Observe(slot, nil)
			default:
				protocols[u].Observe(slot, nil)
			}
		default:
			panic(fmt.Sprintf("radio: node %d returned invalid action kind %d", u, kind[u]))
		}
	}
	st.Idles += idles
	st.Broadcasts += bcasts
	st.Listens += listens
	st.Deliveries += deliveries
	st.Collisions += collisions
	st.JammedListens += jammedL
	st.DownSlots += downs
	st.PartitionLosses += plosses
}

// baseCounterfactual resolves a channel's broadcaster row against the
// untouched base topology's adjacency row for listener u.
func (e *Engine) baseCounterfactual(u int, row []uint64) (int, int32) {
	c, sole := bitset.AndCountSole(e.baseNbr.Row(u), row)
	return c, int32(sole)
}

// sameAsBase reports whether listener u's current adjacency row equals
// its base-topology row, in which case the partition-loss
// counterfactual cannot differ from the real resolution (same
// broadcasters, same adjacency) and is skipped. Requires dense
// matrices on both views; huge graphs always run the counterfactual.
func (e *Engine) sameAsBase(u int) bool {
	if e.nbr == nil || e.baseNbr == nil {
		return false
	}
	return bitset.EqualWords(e.nbr.Row(u), e.baseNbr.Row(u))
}

// refreshDone updates completion flags after a slot resolves. At this
// point e.slot is still the index of the slot just executed, so every
// live protocol has observed e.slot+1 slots; protocols that declared a
// FixedSchedule bound beyond that cannot be done yet and are skipped
// without the interface call — including the whole scan while the
// bound of every live protocol lies in the future.
func (e *Engine) refreshDone() {
	observed := e.slot + 1
	if observed < e.minDoneAt {
		return
	}
	min := int64(-1)
	for u, p := range e.protocols {
		if e.state[u] == nodeDone {
			continue
		}
		if observed >= e.doneAt[u] && p.Done() {
			e.state[u] = nodeDone
			e.nDone++
			continue
		}
		if min < 0 || e.doneAt[u] < min {
			min = e.doneAt[u]
		}
	}
	e.minDoneAt = min
}
