// Package radio implements the synchronous cognitive-radio network
// model of Section 3 of the paper.
//
// Time is divided into discrete slots. In each slot every node tunes
// its transceiver to one of its c channels (named by a node-local
// label) and either broadcasts, listens, or idles. A listening node u
// hears a message iff exactly one neighbor of u broadcasts on u's
// current channel in that slot; silence and collisions (two or more
// broadcasting neighbors) are indistinguishable — there is no collision
// detection. A broadcasting node "receives" only its own message.
//
// Protocols are written against the Protocol interface and stepped by
// an Engine. Two engines are provided with identical semantics: a
// sequential engine (Run) and a goroutine-parallel engine
// (RunParallel) that fans the per-node work out to workers; results are
// bit-identical because randomness lives in per-node streams.
package radio

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"crn/internal/chanassign"
	"crn/internal/graph"
)

// NodeID identifies a node (its index in the graph).
type NodeID int32

// Kind enumerates what a node does with its transceiver in one slot.
type Kind uint8

// Transceiver actions. A node does exactly one per slot.
const (
	Idle Kind = iota + 1
	Listen
	Broadcast
)

// Message is a frame delivered by the radio. Data is protocol-defined;
// the engine treats it opaquely.
type Message struct {
	From NodeID
	Data any
}

// Action is a node's decision for one slot. Ch is a local channel
// label in [0, c); it is ignored for Idle.
type Action struct {
	Kind Kind
	Ch   int
	Data any
}

// Protocol is a node-local state machine driven by the engine.
//
// Each slot the engine calls Act once, resolves the radio, then calls
// Observe exactly once: msg is non-nil iff the node listened and heard
// a message (exactly one broadcasting neighbor on its channel). The
// engine never calls Act again after Done reports true.
type Protocol interface {
	Act(slot int64) Action
	Observe(slot int64, msg *Message)
	Done() bool
}

// Stats aggregates engine counters for one run.
type Stats struct {
	// Slots is the number of slots executed.
	Slots int64
	// Broadcasts, Listens and Idles count node-slot actions.
	Broadcasts int64
	Listens    int64
	Idles      int64
	// Deliveries counts messages heard by listeners.
	Deliveries int64
	// Collisions counts listener-slots lost to two or more
	// simultaneously broadcasting neighbors.
	Collisions int64
	// JammedListens counts listener-slots lost to primary users.
	JammedListens int64
	// Completed reports whether every protocol finished before the
	// slot budget ran out.
	Completed bool
}

// Accumulate adds o's slot and counter fields into s — the helper
// multi-engine pipelines (CGCAST's setup stages plus dissemination)
// use to report one combined Stats. Completed is left untouched.
func (s *Stats) Accumulate(o Stats) {
	s.Slots += o.Slots
	s.Broadcasts += o.Broadcasts
	s.Listens += o.Listens
	s.Idles += o.Idles
	s.Deliveries += o.Deliveries
	s.Collisions += o.Collisions
	s.JammedListens += o.JammedListens
}

// TraceFunc observes every delivery the engine resolves, for debugging
// and the crntrace tool. It runs on the engine goroutine.
type TraceFunc func(slot int64, listener NodeID, globalCh int32, msg *Message)

// Jammer reports primary-user occupancy per (slot, global channel).
// A frame broadcast on an occupied channel is lost and a listener
// tuned there hears only silence — secondary users cannot use spectrum
// a primary user holds. Implementations must be deterministic and safe
// for concurrent readers (RunParallel queries from worker goroutines).
// internal/spectrum provides standard models.
type Jammer interface {
	Jammed(slot int64, ch int32) bool
}

// ActivitySink is optionally implemented by Jammers that react to
// secondary-user activity (adversarial models). After every slot
// resolves, the engine calls ObserveActivity exactly once from its
// sequential section with the number of broadcasts per global channel
// for that slot. The slice is a scratch buffer the engine reuses;
// implementations must copy what they keep. Because the engine only
// queries Jammed for slots after the latest ObserveActivity call's
// slot, reactive jammers see activity with at least a one-slot delay —
// the adversary can sense, but not react within a slot.
type ActivitySink interface {
	ObserveActivity(slot int64, broadcastsByChannel []int)
}

// Network bundles the static instance a protocol runs on.
type Network struct {
	Graph  *graph.Graph
	Assign *chanassign.Assignment
	// Jammer optionally models primary users; nil means clear spectrum.
	// A Jammer that also implements ActivitySink receives per-slot
	// activity reports.
	Jammer Jammer
	// Trace optionally observes every delivery the engines resolve;
	// Engine.SetTrace overrides it. Like SetTrace callbacks it may run
	// concurrently under RunParallel.
	Trace TraceFunc
}

// Validate checks the graph/assignment pair is consistent.
func (nw *Network) Validate() error {
	if nw.Graph == nil || nw.Assign == nil {
		return fmt.Errorf("radio: network needs both graph and assignment")
	}
	if nw.Graph.N() != nw.Assign.N() {
		return fmt.Errorf("radio: graph has %d nodes, assignment %d", nw.Graph.N(), nw.Assign.N())
	}
	return nil
}

// Engine steps a set of protocols over a network.
// Engines are single-use: construct, Run, inspect stats.
type Engine struct {
	nw        *Network
	protocols []Protocol
	trace     TraceFunc

	// scratch, reused across slots
	actions  []Action
	globalCh []int32 // resolved global channel per node, -1 when idle
	done     []bool
	nDone    int
	slot     int64
	stats    Stats

	// activity feed for reactive jammers (nil when the jammer is not an
	// ActivitySink): broadcast count per global channel, reused per slot.
	sink     ActivitySink
	activity []int
}

// NewEngine constructs an engine for the given network and per-node
// protocols (len must equal the node count).
func NewEngine(nw *Network, protocols []Protocol) (*Engine, error) {
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	if len(protocols) != nw.Graph.N() {
		return nil, fmt.Errorf("radio: %d protocols for %d nodes", len(protocols), nw.Graph.N())
	}
	n := nw.Graph.N()
	e := &Engine{
		nw:        nw,
		protocols: protocols,
		actions:   make([]Action, n),
		globalCh:  make([]int32, n),
		done:      make([]bool, n),
		trace:     nw.Trace,
	}
	if sink, ok := nw.Jammer.(ActivitySink); ok {
		e.sink = sink
		e.activity = make([]int, nw.Assign.Universe)
	}
	return e, nil
}

// SetTrace installs a delivery trace callback (nil to disable).
// With RunParallel the callback may be invoked from multiple
// goroutines concurrently; use Run for ordered traces.
func (e *Engine) SetTrace(fn TraceFunc) { e.trace = fn }

// Slot returns the number of slots executed so far.
func (e *Engine) Slot() int64 { return e.slot }

// Stats returns counters accumulated so far.
func (e *Engine) Stats() Stats { return e.stats }

// Run executes slots sequentially until every protocol reports Done or
// maxSlots have elapsed. It can be called again to continue a run with
// a larger budget.
func (e *Engine) Run(maxSlots int64) Stats {
	return e.RunUntil(maxSlots, nil)
}

// RunUntil executes slots sequentially like Run but additionally stops
// as soon as stop returns true (checked after each slot). Harnesses use
// it to measure time-to-goal for protocols whose own schedules are
// fixed-length (e.g. "slots until every node knows all neighbors").
func (e *Engine) RunUntil(maxSlots int64, stop func(slot int64) bool) Stats {
	st, _ := e.RunUntilCtx(context.Background(), maxSlots, stop)
	return st
}

// RunUntilCtx is RunUntil with cooperative cancellation: the context is
// checked before every slot, and a cancelled run returns the stats
// accumulated so far together with ctx.Err(). A nil ctx means
// context.Background(). This is the cancellation point every facade
// primitive and the sweep engine thread their contexts down to.
func (e *Engine) RunUntilCtx(ctx context.Context, maxSlots int64, stop func(slot int64) bool) (Stats, error) {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	for e.slot < maxSlots && e.nDone < len(e.protocols) {
		if done != nil {
			select {
			case <-done:
				e.stats.Completed = false
				return e.stats, ctx.Err()
			default:
			}
		}
		e.step(0, len(e.protocols))
		e.slot++
		e.stats.Slots = e.slot
		if stop != nil && stop(e.slot) {
			break
		}
	}
	e.stats.Completed = e.nDone == len(e.protocols)
	return e.stats, nil
}

// RunParallel executes the same semantics as Run but fans the per-node
// Act/Observe work out to `workers` goroutines (0 means GOMAXPROCS).
// Results are identical to Run for the same protocols and seeds.
func (e *Engine) RunParallel(maxSlots int64, workers int) Stats {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := len(e.protocols)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return e.Run(maxSlots)
	}
	var wg sync.WaitGroup
	for e.slot < maxSlots && e.nDone < n {
		// Phase 1: collect actions in parallel.
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				e.collectActions(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
		// Phase 2: resolve and observe in parallel. Resolution only
		// reads actions/globalCh, so listeners can resolve concurrently;
		// per-node counters are merged below.
		sub := make([]Stats, workers)
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				e.resolveAndObserve(lo, hi, &sub[w])
			}(w, lo, hi)
		}
		wg.Wait()
		for i := range sub {
			e.stats.Broadcasts += sub[i].Broadcasts
			e.stats.Listens += sub[i].Listens
			e.stats.Idles += sub[i].Idles
			e.stats.Deliveries += sub[i].Deliveries
			e.stats.Collisions += sub[i].Collisions
			e.stats.JammedListens += sub[i].JammedListens
		}
		// Phase 3: activity feed + completion scan (cheap, sequential).
		e.feedActivity()
		e.refreshDone()
		e.slot++
		e.stats.Slots = e.slot
	}
	e.stats.Completed = e.nDone == n
	return e.stats
}

// step runs one full slot sequentially.
func (e *Engine) step(lo, hi int) {
	e.collectActions(lo, hi)
	e.resolveAndObserve(lo, hi, &e.stats)
	e.feedActivity()
	e.refreshDone()
}

// feedActivity reports the slot's broadcast counts per global channel
// to a reactive jammer. It runs in the engines' sequential sections
// (after the slot resolves, before the next slot's Jammed queries), so
// Run and RunParallel feed identical sequences.
func (e *Engine) feedActivity() {
	if e.sink == nil {
		return
	}
	for ch := range e.activity {
		e.activity[ch] = 0
	}
	for u := range e.actions {
		if e.actions[u].Kind == Broadcast {
			if ch := e.globalCh[u]; ch >= 0 && int(ch) < len(e.activity) {
				e.activity[ch]++
			}
		}
	}
	e.sink.ObserveActivity(e.slot, e.activity)
}

func (e *Engine) collectActions(lo, hi int) {
	for u := lo; u < hi; u++ {
		if e.done[u] {
			e.actions[u] = Action{Kind: Idle}
			e.globalCh[u] = -1
			continue
		}
		a := e.protocols[u].Act(e.slot)
		e.actions[u] = a
		if a.Kind == Idle {
			e.globalCh[u] = -1
			continue
		}
		e.globalCh[u] = e.nw.Assign.Global(u, a.Ch)
	}
}

func (e *Engine) resolveAndObserve(lo, hi int, st *Stats) {
	g := e.nw.Graph
	for u := lo; u < hi; u++ {
		if e.done[u] {
			continue
		}
		switch e.actions[u].Kind {
		case Idle:
			st.Idles++
			e.protocols[u].Observe(e.slot, nil)
		case Broadcast:
			st.Broadcasts++
			e.protocols[u].Observe(e.slot, nil)
		case Listen:
			st.Listens++
			ch := e.globalCh[u]
			if e.nw.Jammer != nil && e.nw.Jammer.Jammed(e.slot, ch) {
				st.JammedListens++
				e.protocols[u].Observe(e.slot, nil)
				continue
			}
			var heard *Message
			talkers := 0
			for _, v := range g.Neighbors(u) {
				if e.actions[v].Kind == Broadcast && e.globalCh[v] == ch {
					talkers++
					if talkers > 1 {
						break
					}
					heard = &Message{From: NodeID(v), Data: e.actions[v].Data}
				}
			}
			switch {
			case talkers == 1:
				st.Deliveries++
				if e.trace != nil {
					e.trace(e.slot, NodeID(u), ch, heard)
				}
				e.protocols[u].Observe(e.slot, heard)
			case talkers > 1:
				st.Collisions++
				e.protocols[u].Observe(e.slot, nil)
			default:
				e.protocols[u].Observe(e.slot, nil)
			}
		default:
			panic(fmt.Sprintf("radio: node %d returned invalid action kind %d", u, e.actions[u].Kind))
		}
	}
}

func (e *Engine) refreshDone() {
	for u, p := range e.protocols {
		if !e.done[u] && p.Done() {
			e.done[u] = true
			e.nDone++
		}
	}
}
