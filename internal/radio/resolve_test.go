package radio

import (
	"context"
	"testing"

	"crn/internal/chanassign"
	"crn/internal/graph"
	"crn/internal/rng"
)

// This file locks down the channel-indexed resolution fast paths
// against the model definition: a listener hears a frame iff exactly
// one *neighbor* broadcasts on its channel. Each fast path (empty
// channel, sole talker adjacent, sole talker non-adjacent, contended
// channel, jammed channel) gets a deterministic unit test, and a
// randomized test compares whole runs against a naive per-listener
// neighbor-scan oracle computed independently from the action scripts.

// parityJammer jams even global channels on every third slot.
type parityJammer struct{}

func (parityJammer) Jammed(slot int64, ch int32) bool {
	return ch%2 == 0 && slot%3 == 0
}

// fastPathNet builds a 5-node network: star 0-(1,2,3,4) plus edge 1-2,
// with all nodes sharing all channels (identity-permuted labels).
func fastPathNet(t *testing.T, c int) *Network {
	t.Helper()
	g := graph.New(5)
	for v := 1; v < 5; v++ {
		g.MustAddEdge(0, v)
	}
	g.MustAddEdge(1, 2)
	g.Finalize()
	return newTestNetwork(t, g, c, 77)
}

func runOneSlot(t *testing.T, nw *Network, actions []Action) ([]*Message, Stats) {
	t.Helper()
	protos := make([]Protocol, len(actions))
	sps := make([]*scriptProto, len(actions))
	for i := range actions {
		sp := &scriptProto{script: []Action{actions[i]}}
		sps[i] = sp
		protos[i] = sp
	}
	e, err := NewEngine(nw, protos)
	if err != nil {
		t.Fatal(err)
	}
	st := e.Run(1)
	heard := make([]*Message, len(actions))
	for i, sp := range sps {
		if len(sp.heard) != 1 {
			t.Fatalf("node %d observed %d times, want 1", i, len(sp.heard))
		}
		heard[i] = sp.heard[0]
	}
	return heard, st
}

func TestResolveEmptyChannel(t *testing.T) {
	nw := fastPathNet(t, 2)
	// Node 3 listens on global channel 1; the only broadcaster (node 4)
	// is on global channel 0.
	heard, st := runOneSlot(t, nw, []Action{
		{Kind: Idle},
		{Kind: Idle},
		{Kind: Idle},
		{Kind: Listen, Ch: localFor(t, nw, 3, 1)},
		{Kind: Broadcast, Ch: localFor(t, nw, 4, 0), Data: "x"},
	})
	if heard[3] != nil {
		t.Errorf("listener on empty channel heard %+v, want silence", heard[3])
	}
	if st.Deliveries != 0 || st.Collisions != 0 {
		t.Errorf("stats %+v, want no deliveries/collisions", st)
	}
}

func TestResolveSoleTalkerAdjacent(t *testing.T) {
	nw := fastPathNet(t, 2)
	heard, st := runOneSlot(t, nw, []Action{
		{Kind: Listen, Ch: localFor(t, nw, 0, 0)},
		{Kind: Broadcast, Ch: localFor(t, nw, 1, 0), Data: "hi"},
		{Kind: Idle},
		{Kind: Idle},
		{Kind: Idle},
	})
	if heard[0] == nil || heard[0].From != 1 || heard[0].Data != "hi" {
		t.Errorf("heard %+v, want From=1 Data=hi", heard[0])
	}
	if st.Deliveries != 1 {
		t.Errorf("Deliveries = %d, want 1", st.Deliveries)
	}
}

func TestResolveSoleTalkerNonAdjacent(t *testing.T) {
	nw := fastPathNet(t, 2)
	// Nodes 3 and 4 are both leaves: not adjacent. 4 is the channel's
	// only broadcaster anywhere, so the index count is 1, but the
	// adjacency probe must still reject the delivery.
	heard, st := runOneSlot(t, nw, []Action{
		{Kind: Idle},
		{Kind: Idle},
		{Kind: Idle},
		{Kind: Listen, Ch: localFor(t, nw, 3, 0)},
		{Kind: Broadcast, Ch: localFor(t, nw, 4, 0), Data: "x"},
	})
	if heard[3] != nil {
		t.Errorf("non-neighbor delivery: heard %+v, want silence", heard[3])
	}
	if st.Deliveries != 0 {
		t.Errorf("Deliveries = %d, want 0", st.Deliveries)
	}
}

func TestResolveContendedChannel(t *testing.T) {
	nw := fastPathNet(t, 2)
	// Three broadcasters on one channel. The center (0) has all three
	// as neighbors -> collision. Node 3 listens too but is adjacent to
	// none of the broadcasters... make node 1, 2, 4 broadcast: center
	// sees 3 talkers (collision); a listener adjacent to exactly one of
	// them would still hear. Use node 3: adjacent only to 0 -> silence.
	heard, st := runOneSlot(t, nw, []Action{
		{Kind: Listen, Ch: localFor(t, nw, 0, 0)},
		{Kind: Broadcast, Ch: localFor(t, nw, 1, 0), Data: 1},
		{Kind: Broadcast, Ch: localFor(t, nw, 2, 0), Data: 2},
		{Kind: Listen, Ch: localFor(t, nw, 3, 0)},
		{Kind: Broadcast, Ch: localFor(t, nw, 4, 0), Data: 4},
	})
	if heard[0] != nil {
		t.Errorf("center heard %+v through a 3-way collision", heard[0])
	}
	if heard[3] != nil {
		t.Errorf("leaf heard %+v with no broadcasting neighbor", heard[3])
	}
	if st.Collisions != 1 || st.Deliveries != 0 {
		t.Errorf("stats %+v, want 1 collision 0 deliveries", st)
	}
}

func TestResolveContendedChannelPartialAdjacency(t *testing.T) {
	nw := fastPathNet(t, 2)
	// Nodes 2 and 3 broadcast on the same channel; node 1 is adjacent
	// to 2 (edge 1-2) but not to 3, so despite global contention node 1
	// hears node 2 cleanly.
	heard, st := runOneSlot(t, nw, []Action{
		{Kind: Idle},
		{Kind: Listen, Ch: localFor(t, nw, 1, 0)},
		{Kind: Broadcast, Ch: localFor(t, nw, 2, 0), Data: "from2"},
		{Kind: Broadcast, Ch: localFor(t, nw, 3, 0), Data: "from3"},
		{Kind: Idle},
	})
	if heard[1] == nil || heard[1].From != 2 || heard[1].Data != "from2" {
		t.Errorf("heard %+v, want From=2 Data=from2", heard[1])
	}
	if st.Deliveries != 1 {
		t.Errorf("Deliveries = %d, want 1", st.Deliveries)
	}
}

func TestResolveJammedChannel(t *testing.T) {
	nw := fastPathNet(t, 2)
	nw.Jammer = parityJammer{}
	// Slot 0: even channels jammed. A clean single-broadcaster setup on
	// global channel 0 must be lost; the same setup on channel 1 heard
	// (listener 1 is adjacent to broadcaster 2 via the 1-2 edge).
	heard, st := runOneSlot(t, nw, []Action{
		{Kind: Listen, Ch: localFor(t, nw, 0, 0)},
		{Kind: Listen, Ch: localFor(t, nw, 1, 1)},
		{Kind: Broadcast, Ch: localFor(t, nw, 2, 1), Data: "heard"},
		{Kind: Idle},
		{Kind: Broadcast, Ch: localFor(t, nw, 4, 0), Data: "lost"},
	})
	if heard[0] != nil {
		t.Errorf("jammed listener heard %+v, want silence", heard[0])
	}
	if heard[1] == nil || heard[1].Data != "heard" {
		t.Errorf("clear-channel listener heard %+v, want From=2", heard[1])
	}
	if st.JammedListens != 1 || st.Deliveries != 1 {
		t.Errorf("stats %+v, want 1 jammed listen and 1 delivery", st)
	}
}

// TestResolutionMatchesNaiveOracle compares whole engine runs against
// an oracle that recomputes every listener outcome with the naive
// O(Δ) neighbor scan the engine used before the channel index —
// independently, from the raw action scripts.
func TestResolutionMatchesNaiveOracle(t *testing.T) {
	const slots = 120
	cases := []struct {
		name string
		n    int
		p    float64
		c    int
		jam  Jammer
		// heavy skews ~3/4 of all actions to Broadcast over few
		// channels, pushing every slot's per-channel broadcaster count
		// past the bitset-row threshold so the whole-channel
		// AND/popcount resolution path — not the list walks — decides
		// most listener outcomes.
		heavy bool
	}{
		{name: "sparse", n: 12, p: 0.2, c: 3},
		{name: "dense", n: 24, p: 0.6, c: 4},
		{name: "jammed", n: 18, p: 0.4, c: 3, jam: parityJammer{}},
		{name: "onechannel", n: 10, p: 0.5, c: 1},
		{name: "rowheavy", n: 32, p: 0.5, c: 2, heavy: true},
		{name: "rowjammed", n: 28, p: 0.45, c: 2, jam: parityJammer{}, heavy: true},
	}
	for ci, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := graph.GNP(tc.n, tc.p, rng.New(uint64(ci)+100))
			if err != nil {
				t.Fatal(err)
			}
			a, err := chanassign.Identical(tc.n, tc.c, rng.New(uint64(ci)+200))
			if err != nil {
				t.Fatal(err)
			}
			// Scripts: deterministic random action per (node, slot).
			r := rng.New(uint64(ci) + 300)
			scripts := make([][]Action, tc.n)
			for u := range scripts {
				scripts[u] = make([]Action, slots)
				for s := range scripts[u] {
					roll := r.Intn(3)
					if tc.heavy && r.Intn(4) != 0 {
						roll = 2
					}
					switch roll {
					case 0:
						scripts[u][s] = Action{Kind: Idle}
					case 1:
						scripts[u][s] = Action{Kind: Listen, Ch: r.Intn(tc.c)}
					default:
						scripts[u][s] = Action{Kind: Broadcast, Ch: r.Intn(tc.c), Data: u*1000 + s}
					}
				}
			}
			nw := &Network{Graph: g, Assign: a, Jammer: tc.jam}
			protos := make([]Protocol, tc.n)
			sps := make([]*scriptProto, tc.n)
			for u := range protos {
				sp := &scriptProto{script: scripts[u]}
				sps[u] = sp
				protos[u] = sp
			}
			e, err := NewEngine(nw, protos)
			if err != nil {
				t.Fatal(err)
			}
			st := e.Run(slots + 1)
			if st.Slots != slots {
				t.Fatalf("ran %d slots, want %d", st.Slots, slots)
			}

			// Oracle: naive neighbor scan per listener per slot.
			var oracleStats Stats
			for s := 0; s < slots; s++ {
				for u := 0; u < tc.n; u++ {
					act := scripts[u][s]
					var want *Message
					switch act.Kind {
					case Idle:
						oracleStats.Idles++
					case Broadcast:
						oracleStats.Broadcasts++
					case Listen:
						oracleStats.Listens++
						ch := a.Global(u, act.Ch)
						if tc.jam != nil && tc.jam.Jammed(int64(s), ch) {
							oracleStats.JammedListens++
							break
						}
						talkers := 0
						for _, v := range g.Neighbors(u) {
							va := scripts[v][s]
							if va.Kind == Broadcast && a.Global(int(v), va.Ch) == ch {
								talkers++
								if talkers == 1 {
									want = &Message{From: NodeID(v), Data: va.Data}
								}
							}
						}
						switch {
						case talkers == 1:
							oracleStats.Deliveries++
						case talkers > 1:
							oracleStats.Collisions++
							want = nil
						}
					}
					got := sps[u].heard[s]
					if (got == nil) != (want == nil) {
						t.Fatalf("slot %d node %d: got %+v, oracle %+v", s, u, got, want)
					}
					if got != nil && (got.From != want.From || got.Data != want.Data) {
						t.Fatalf("slot %d node %d: got %+v, oracle %+v", s, u, got, want)
					}
				}
			}
			oracleStats.Slots = slots
			oracleStats.Completed = st.Completed
			if st != oracleStats {
				t.Errorf("stats %+v, oracle %+v", st, oracleStats)
			}
		})
	}
}

// TestResolveBinarySearchPathHugeGraph drives the engine on a graph
// above the dense-matrix node cap, exercising the sorted-adjacency
// binary-search fallback in the resolution fast paths.
func TestResolveBinarySearchPathHugeGraph(t *testing.T) {
	n := 8200 // > maxMatrixNodes in internal/graph
	g := graph.Path(n)
	if g.NeighborMatrix() != nil {
		t.Fatal("expected no dense matrix above the node cap")
	}
	a, err := chanassign.Identical(n, 1, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	protos := make([]Protocol, n)
	sps := make([]*scriptProto, n)
	for u := 0; u < n; u++ {
		// Even nodes broadcast, odd nodes listen: every odd listener has
		// two broadcasting neighbors (collision), except node n-1 if n
		// is even (sole neighbor n-2 -> delivery).
		var act Action
		if u%2 == 0 {
			act = Action{Kind: Broadcast, Ch: 0, Data: u}
		} else {
			act = Action{Kind: Listen, Ch: 0}
		}
		sp := &scriptProto{script: []Action{act}}
		sps[u] = sp
		protos[u] = sp
	}
	e, err := NewEngine(&Network{Graph: g, Assign: a}, protos)
	if err != nil {
		t.Fatal(err)
	}
	st := e.Run(1)
	wantCollisions := int64(n/2 - 1)
	wantDeliveries := int64(1)
	if st.Collisions != wantCollisions || st.Deliveries != wantDeliveries {
		t.Errorf("stats %+v, want %d collisions %d deliveries", st, wantCollisions, wantDeliveries)
	}
	last := sps[n-1]
	if len(last.heard) != 1 || last.heard[0] == nil || last.heard[0].From != NodeID(n-2) {
		t.Errorf("tail listener heard %+v, want From=%d", last.heard, n-2)
	}
}

// TestRunParallelCtxCancellation covers the pool engine's cancellation
// path: a cancelled context stops the run promptly with ctx.Err() and
// partial stats.
func TestRunParallelCtxCancellation(t *testing.T) {
	g, err := graph.GNP(16, 0.3, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	a, err := chanassign.Identical(16, 3, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	master := rng.New(5)
	protos := make([]Protocol, 16)
	for i := range protos {
		protos[i] = &randomProto{r: master.Split(uint64(i)), c: 3, slots: 1 << 30}
	}
	e, err := NewEngine(&Network{Graph: g, Assign: a}, protos)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := e.RunParallelCtx(ctx, 1<<20, 4)
	if err == nil {
		t.Fatal("cancelled RunParallelCtx returned nil error")
	}
	if st.Completed {
		t.Error("cancelled run reported Completed")
	}
	if st.Slots != 0 {
		t.Errorf("pre-cancelled run executed %d slots, want 0", st.Slots)
	}
}

// topoEvent is one scripted topology mutation: a node up/down flip or
// an edge flap. Events are pre-generated against a tracked model so
// every event is a real state change (the mutator must return true).
type topoEvent struct {
	churn bool
	a, b  int
	on    bool
}

// TestDynamicsResolutionMatchesNaiveOracle is the oracle suite's
// dynamics arm: node churn and link flapping are scripted on top of
// randomized action scripts, and an independent naive model replays
// the same events — down nodes neither transmit nor observe (their
// protocol clocks pause), listeners resolve against the *current*
// adjacency, and the partition-loss counterfactual resolves the same
// broadcaster set against the untouched base adjacency. Every heard
// message, plus the full Stats including the churn/flap/loss counters,
// must match.
func TestDynamicsResolutionMatchesNaiveOracle(t *testing.T) {
	const (
		n     = 20
		slots = 150
		c     = 3
	)
	g, err := graph.GNP(n, 0.35, rng.New(400))
	if err != nil {
		t.Fatal(err)
	}
	a, err := chanassign.Identical(n, c, rng.New(401))
	if err != nil {
		t.Fatal(err)
	}

	// Action scripts, same distribution as the static oracle. A node's
	// script is consumed only while it is up.
	r := rng.New(402)
	scripts := make([][]Action, n)
	for u := range scripts {
		scripts[u] = make([]Action, slots)
		for s := range scripts[u] {
			switch r.Intn(3) {
			case 0:
				scripts[u][s] = Action{Kind: Idle}
			case 1:
				scripts[u][s] = Action{Kind: Listen, Ch: r.Intn(c)}
			default:
				scripts[u][s] = Action{Kind: Broadcast, Ch: r.Intn(c), Data: u*1000 + s}
			}
		}
	}

	// Scripted topology events from slot 1 on (slot-0 mutations are
	// feed reconciliation, not model events). Tracking up/edges during
	// generation guarantees each event is a genuine change.
	edgeKey := func(a, b int) [2]int {
		if a > b {
			a, b = b, a
		}
		return [2]int{a, b}
	}
	baseEdges := make(map[[2]int]bool)
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			baseEdges[edgeKey(u, int(v))] = true
		}
	}
	er := rng.New(403)
	events := make(map[int64][]topoEvent)
	genUp := make([]bool, n)
	genEdges := make(map[[2]int]bool, len(baseEdges))
	for k := range baseEdges {
		genEdges[k] = true
	}
	for u := range genUp {
		genUp[u] = true
	}
	churned, flapped := 0, 0
	for s := int64(1); s < slots; s++ {
		if er.Intn(4) == 0 {
			u := er.Intn(n)
			genUp[u] = !genUp[u]
			events[s] = append(events[s], topoEvent{churn: true, a: u, on: genUp[u]})
			churned++
		}
		if er.Intn(4) == 0 {
			ea, eb := er.Intn(n), er.Intn(n)
			if ea != eb {
				k := edgeKey(ea, eb)
				genEdges[k] = !genEdges[k]
				events[s] = append(events[s], topoEvent{a: k[0], b: k[1], on: genEdges[k]})
				flapped++
			}
		}
	}
	if churned < 10 || flapped < 10 {
		t.Fatalf("event script too thin: %d churn, %d flap events", churned, flapped)
	}

	feed := &scriptFeed{steps: func(slot int64, mut TopologyMutator) {
		for _, ev := range events[slot] {
			var changed bool
			switch {
			case ev.churn:
				changed = mut.SetNodeUp(ev.a, ev.on)
			case ev.on:
				changed = mut.AddEdge(ev.a, ev.b)
			default:
				changed = mut.RemoveEdge(ev.a, ev.b)
			}
			if !changed {
				t.Fatalf("slot %d: event %+v was a no-op", slot, ev)
			}
		}
	}}

	protos := make([]Protocol, n)
	sps := make([]*scriptProto, n)
	for u := range protos {
		sp := &scriptProto{script: scripts[u]}
		sps[u] = sp
		protos[u] = sp
	}
	e, err := NewEngine(&Network{Graph: g, Assign: a, Jammer: parityJammer{}, Topology: feed}, protos)
	if err != nil {
		t.Fatal(err)
	}
	st := e.Run(slots)

	// Oracle replay: same events, naive resolution.
	up := make([]bool, n)
	for u := range up {
		up[u] = true
	}
	curEdges := make(map[[2]int]bool, len(baseEdges))
	for k := range baseEdges {
		curEdges[k] = true
	}
	pos := make([]int, n)
	acts := make([]Action, n)
	expHeard := make([][]*Message, n)
	var jam Jammer = parityJammer{}
	var o Stats
	for s := int64(0); s < slots; s++ {
		for _, ev := range events[s] {
			switch {
			case ev.churn && ev.on:
				o.NodeJoins++
				up[ev.a] = true
			case ev.churn:
				o.NodeLeaves++
				up[ev.a] = false
			case ev.on:
				o.EdgeAdds++
				curEdges[edgeKey(ev.a, ev.b)] = true
			default:
				o.EdgeRemoves++
				curEdges[edgeKey(ev.a, ev.b)] = false
			}
		}
		for u := 0; u < n; u++ {
			if !up[u] {
				o.DownSlots++
				continue
			}
			acts[u] = scripts[u][pos[u]]
			pos[u]++
		}
		for u := 0; u < n; u++ {
			if !up[u] {
				continue
			}
			act := acts[u]
			switch act.Kind {
			case Idle:
				o.Idles++
				expHeard[u] = append(expHeard[u], nil)
			case Broadcast:
				o.Broadcasts++
				expHeard[u] = append(expHeard[u], nil)
			case Listen:
				o.Listens++
				ch := a.Global(u, act.Ch)
				if jam.Jammed(s, ch) {
					o.JammedListens++
					expHeard[u] = append(expHeard[u], nil)
					continue
				}
				talkers, baseTalkers := 0, 0
				var from, baseFrom *Message
				for v := 0; v < n; v++ {
					if v == u || !up[v] || acts[v].Kind != Broadcast || a.Global(v, acts[v].Ch) != ch {
						continue
					}
					if curEdges[edgeKey(u, v)] {
						talkers++
						if talkers == 1 {
							from = &Message{From: NodeID(v), Data: acts[v].Data}
						}
					}
					if baseEdges[edgeKey(u, v)] {
						baseTalkers++
						if baseTalkers == 1 {
							baseFrom = &Message{From: NodeID(v), Data: acts[v].Data}
						}
					}
				}
				if baseTalkers == 1 && (talkers != 1 || from.From != baseFrom.From) {
					o.PartitionLosses++
				}
				switch {
				case talkers == 1:
					o.Deliveries++
					expHeard[u] = append(expHeard[u], from)
				case talkers > 1:
					o.Collisions++
					expHeard[u] = append(expHeard[u], nil)
				default:
					expHeard[u] = append(expHeard[u], nil)
				}
			}
		}
	}
	o.Slots = slots
	o.Completed = st.Completed

	if st != o {
		t.Errorf("stats:\n engine %+v\n oracle %+v", st, o)
	}
	for u := 0; u < n; u++ {
		if len(sps[u].heard) != len(expHeard[u]) {
			t.Fatalf("node %d observed %d times, oracle %d (clock must pause while down)",
				u, len(sps[u].heard), len(expHeard[u]))
		}
		for i := range expHeard[u] {
			got, want := sps[u].heard[i], expHeard[u][i]
			if (got == nil) != (want == nil) {
				t.Fatalf("node %d observe %d: got %+v, oracle %+v", u, i, got, want)
			}
			if got != nil && (got.From != want.From || got.Data != want.Data) {
				t.Fatalf("node %d observe %d: got %+v, oracle %+v", u, i, got, want)
			}
		}
	}
}
