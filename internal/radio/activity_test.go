package radio

import (
	"testing"

	"crn/internal/graph"
	"crn/internal/spectrum"
)

// recordingSink captures every activity report the engine feeds.
type recordingSink struct {
	None // never jams; only listens to activity
	got  [][]int
}

func (r *recordingSink) ObserveActivity(_ int64, counts []int) {
	cp := make([]int, len(counts))
	copy(cp, counts)
	r.got = append(r.got, cp)
}

// None re-exported to keep the test jammer tiny.
type None = spectrum.None

func TestEngineFeedsActivityPerSlot(t *testing.T) {
	g := graph.Path(2)
	nw := newTestNetwork(t, g, 2, 41)
	sink := &recordingSink{}
	nw.Jammer = sink

	// Slot 0: node 0 broadcasts on global 0, node 1 listens (listens
	// never count as activity). Slot 1: both broadcast, different
	// channels.
	p0 := &scriptProto{script: []Action{
		{Kind: Broadcast, Ch: localFor(t, nw, 0, 0), Data: "x"},
		{Kind: Broadcast, Ch: localFor(t, nw, 0, 1), Data: "y"},
	}}
	p1 := &scriptProto{script: []Action{
		{Kind: Listen, Ch: localFor(t, nw, 1, 0)},
		{Kind: Broadcast, Ch: localFor(t, nw, 1, 0), Data: "z"},
	}}
	e, err := NewEngine(nw, []Protocol{p0, p1})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(10)
	if len(sink.got) < 2 {
		t.Fatalf("sink saw %d reports, want >= 2", len(sink.got))
	}
	if sink.got[0][0] != 1 || sink.got[0][1] != 0 {
		t.Errorf("slot 0 activity = %v, want [1 0]", sink.got[0])
	}
	if sink.got[1][0] != 1 || sink.got[1][1] != 1 {
		t.Errorf("slot 1 activity = %v, want [1 1]", sink.got[1])
	}
}

// TestReactiveAdversaryOneSlotDelay verifies the engine-level contract
// the adversary model is built on: a broadcast in slot s draws jamming
// in slot s+1, never in slot s itself.
func TestReactiveAdversaryOneSlotDelay(t *testing.T) {
	g := graph.Path(2)
	nw := newTestNetwork(t, g, 2, 42)
	nw.Jammer = spectrum.NewReactiveAdversary(1)

	// Node 0 broadcasts on global channel 0 twice; node 1 listens there
	// twice. Slot 0 is clear (the adversary has observed nothing);
	// slot 1 is jammed (channel 0 was the busiest channel of slot 0).
	p0 := &scriptProto{script: []Action{
		{Kind: Broadcast, Ch: localFor(t, nw, 0, 0), Data: "a"},
		{Kind: Broadcast, Ch: localFor(t, nw, 0, 0), Data: "b"},
	}}
	p1 := &scriptProto{script: []Action{
		{Kind: Listen, Ch: localFor(t, nw, 1, 0)},
		{Kind: Listen, Ch: localFor(t, nw, 1, 0)},
	}}
	e, err := NewEngine(nw, []Protocol{p0, p1})
	if err != nil {
		t.Fatal(err)
	}
	st := e.Run(10)
	if p1.heard[0] == nil || p1.heard[0].Data != "a" {
		t.Errorf("slot 0 delivery lost: adversary must not react within the slot (%v)", p1.heard[0])
	}
	if p1.heard[1] != nil {
		t.Errorf("slot 1 delivered %v, want jammed", p1.heard[1])
	}
	if st.JammedListens != 1 {
		t.Errorf("JammedListens = %d, want 1", st.JammedListens)
	}
}

// TestNetworkTraceFeedsEngine: a Network-carried trace callback sees
// deliveries without an explicit SetTrace.
func TestNetworkTraceFeedsEngine(t *testing.T) {
	g := graph.Path(2)
	nw := newTestNetwork(t, g, 2, 43)
	var seen int
	nw.Trace = func(slot int64, listener NodeID, ch int32, msg *Message) {
		seen++
		if listener != 1 || msg.From != 0 {
			t.Errorf("trace saw listener=%d from=%d", listener, msg.From)
		}
	}
	p0 := &scriptProto{script: []Action{{Kind: Broadcast, Ch: localFor(t, nw, 0, 0), Data: "x"}}}
	p1 := &scriptProto{script: []Action{{Kind: Listen, Ch: localFor(t, nw, 1, 0)}}}
	e, err := NewEngine(nw, []Protocol{p0, p1})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(10)
	if seen != 1 {
		t.Errorf("trace saw %d deliveries, want 1", seen)
	}
}
