package radio

// This file adapts blocking, goroutine-style node code to the engine's
// Protocol interface. Goroutines model radio nodes naturally: a node's
// program is a straight-line function that repeatedly calls
// Transceiver.Step to use the radio for one slot, and the adapter turns
// those calls into Act/Observe exchanges with the engine.
//
// The engine remains the single clock. After every radio step the
// adapter waits until the node program either issues its next step or
// returns, so the engine always knows each node's exact state and runs
// are fully deterministic regardless of goroutine scheduling.

// stepResult carries the outcome of one slot back to the node program.
type stepResult struct {
	msg  *Message
	slot int64
}

// Transceiver is the blocking radio handle given to goroutine-style
// node programs.
type Transceiver struct {
	actionCh chan Action
	resultCh chan stepResult
	lastSlot int64
}

// Step performs one slot with the given action and returns the message
// heard (nil unless the action was Listen and exactly one neighbor
// broadcast on the chosen channel). The returned message is a
// node-private copy that stays valid until this transceiver's next
// Step call.
func (t *Transceiver) Step(a Action) *Message {
	t.actionCh <- a
	res := <-t.resultCh
	t.lastSlot = res.slot
	return res.msg
}

// ListenOn is shorthand for a Listen step on local channel ch.
func (t *Transceiver) ListenOn(ch int) *Message {
	return t.Step(Action{Kind: Listen, Ch: ch})
}

// BroadcastOn is shorthand for a Broadcast step on local channel ch.
func (t *Transceiver) BroadcastOn(ch int, data any) {
	t.Step(Action{Kind: Broadcast, Ch: ch, Data: data})
}

// IdleSlot is shorthand for an Idle step.
func (t *Transceiver) IdleSlot() {
	t.Step(Action{Kind: Idle})
}

// LastSlot returns the slot number in which the most recent Step
// executed (0 before the first step completes).
func (t *Transceiver) LastSlot() int64 { return t.lastSlot }

// GoProtocol runs a blocking node program in its own goroutine and
// exposes it as a Protocol. The program must call t.Step (or a
// shorthand) once per radio slot it wants to use and return when
// finished; after it returns, the node reports Done.
type GoProtocol struct {
	t        *Transceiver
	run      func(t *Transceiver)
	finished chan struct{}

	started  bool
	done     bool
	buffered Action  // next action, received ahead of Act
	hasNext  bool    // buffered is valid
	awaiting bool    // an Act was handed out; Observe owes a result
	slot     int64   // slot of the outstanding action
	msgCopy  Message // node-private copy of the last heard frame
}

var _ Protocol = (*GoProtocol)(nil)

// NewGoProtocol wraps run as a Protocol. The goroutine starts lazily on
// the first Act call and exits when run returns, so an engine that
// never steps the protocol leaks nothing.
func NewGoProtocol(run func(t *Transceiver)) *GoProtocol {
	return &GoProtocol{
		t: &Transceiver{
			actionCh: make(chan Action),
			resultCh: make(chan stepResult),
		},
		finished: make(chan struct{}),
		run:      run,
	}
}

// Act implements Protocol.
func (p *GoProtocol) Act(slot int64) Action {
	if p.done {
		return Action{Kind: Idle}
	}
	if !p.started {
		p.started = true
		go func() {
			defer close(p.finished)
			p.run(p.t)
		}()
		p.await()
		if p.done {
			return Action{Kind: Idle}
		}
	}
	if !p.hasNext {
		// The program is mid-step without a buffered action; nothing to
		// transmit this slot. (Unreachable with a well-formed adapter —
		// await either buffers an action or marks done.)
		return Action{Kind: Idle}
	}
	a := p.buffered
	p.hasNext = false
	p.awaiting = true
	p.slot = slot
	return a
}

// Observe implements Protocol.
func (p *GoProtocol) Observe(_ int64, msg *Message) {
	if p.done || !p.awaiting {
		return
	}
	p.awaiting = false
	// The engine's msg is only valid during this call; hand the node
	// program a private copy it may keep until its next Step.
	var out *Message
	if msg != nil {
		p.msgCopy = *msg
		out = &p.msgCopy
	}
	p.t.resultCh <- stepResult{msg: out, slot: p.slot}
	p.await()
}

// Done implements Protocol.
func (p *GoProtocol) Done() bool { return p.done }

// await blocks until the node program either issues its next action
// (buffered for the following Act) or returns (marking the protocol
// done). Called whenever the program is runnable: right after start
// and right after each result delivery. The received action lands in
// the protocol's own buffered field — taking its address would make it
// escape and cost a heap allocation per step.
func (p *GoProtocol) await() {
	select {
	case a := <-p.t.actionCh:
		p.buffered = a
		p.hasNext = true
	case <-p.finished:
		p.done = true
	}
}
