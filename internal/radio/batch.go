package radio

import (
	"context"
	"fmt"

	"crn/internal/bitset"
	"crn/internal/chanassign"
	"crn/internal/graph"
)

// Replica is one independent run inside a BatchEngine: its protocols
// plus the per-run state that is not shared across the batch. The
// graph and channel assignment are shared (read-only); everything a
// run mutates or observes — protocol state, jammer state, traces,
// stats — lives on the replica.
type Replica struct {
	// Protocols is the per-node protocol set (len must equal the node
	// count).
	Protocols []Protocol
	// Jammer optionally models primary users for this replica; nil
	// means clear spectrum. A Jammer that also implements ActivitySink
	// receives this replica's per-slot activity reports.
	Jammer Jammer
	// Trace optionally observes this replica's deliveries.
	Trace TraceFunc
}

// BatchEngine steps B independent replicas of the same static network
// through one fused slot loop: one collect pass, one channel-index
// build and one resolve pass cover every replica, so the graph, the
// channel assignment, the adjacency matrix and all engine scratch are
// touched once per slot instead of once per run.
//
// Replicas never interact: replica r's broadcasters are bucketed under
// channel keys r·universe+ch, disjoint from every other replica's
// keys, and its listeners resolve only against those buckets, so each
// replica's slot outcomes — deliveries, collisions, stats, traces —
// are byte-identical to running it alone on a sequential Engine. The
// batched sweep path relies on exactly this equivalence.
//
// Batching covers the static model only: a TopologyFeed mutates its
// engine's private graph clone, which is the one thing replicas cannot
// share. Dynamic-topology runs use Engine.
type BatchEngine struct {
	g      *graph.Graph
	assign *chanassign.Assignment
	nbr    *bitset.Matrix

	b, n, universe int

	// Per-replica run state.
	reps    []Replica
	sinks   []ActivitySink
	stats   []Stats
	nDone   []int
	doneAt  [][]int64
	minDone []int64
	active  []bool
	nActive int

	// Flattened per-node hot state, replica-major: node u of replica r
	// is flat id r·n+u. Same struct-of-arrays layout as Engine.
	kind     []Kind
	data     []any
	globalCh []int32 // offset channel key r·universe+ch
	state    []uint8

	// Per-slot channel index over the offset key space [0, b·universe),
	// plus the shared bitset-row pool; see Engine for the scheme. Row
	// bits are replica-local node ids, so a listener's adjacency row
	// ANDs against them directly.
	chCount   []int32
	chHead    []int32
	bcastNext []int32
	touched   []int32
	bcasters  []int32
	rowBuf    []uint64
	rowOf     []int32
	rowStride int
	rowMin    int32
	rowsUsed  int32

	slot       int64
	scratchMsg Message
	activity   []int
}

// NewBatchEngine constructs a fused engine over the shared (graph,
// assignment) pair and the given replicas. The graph is finalized
// (idempotent); every replica must provide exactly one protocol per
// node.
func NewBatchEngine(g *graph.Graph, assign *chanassign.Assignment, reps []Replica) (*BatchEngine, error) {
	if g == nil || assign == nil {
		return nil, fmt.Errorf("radio: batch engine needs both graph and assignment")
	}
	if g.N() != assign.N() {
		return nil, fmt.Errorf("radio: graph has %d nodes, assignment %d", g.N(), assign.N())
	}
	if len(reps) == 0 {
		return nil, fmt.Errorf("radio: batch engine needs at least one replica")
	}
	g.Finalize()
	n := g.N()
	b := len(reps)
	u := assign.Universe
	for r := range reps {
		if len(reps[r].Protocols) != n {
			return nil, fmt.Errorf("radio: replica %d has %d protocols for %d nodes", r, len(reps[r].Protocols), n)
		}
	}
	e := &BatchEngine{
		g:         g,
		assign:    assign,
		nbr:       g.NeighborMatrix(),
		b:         b,
		n:         n,
		universe:  u,
		reps:      reps,
		sinks:     make([]ActivitySink, b),
		stats:     make([]Stats, b),
		nDone:     make([]int, b),
		doneAt:    make([][]int64, b),
		minDone:   make([]int64, b),
		active:    make([]bool, b),
		nActive:   b,
		kind:      make([]Kind, b*n),
		data:      make([]any, b*n),
		globalCh:  make([]int32, b*n),
		state:     make([]uint8, b*n),
		chCount:   make([]int32, b*u),
		chHead:    make([]int32, b*u),
		bcastNext: make([]int32, b*n),
		touched:   make([]int32, 0, b*u),
		bcasters:  make([]int32, 0, b*n),
	}
	for i := range e.chHead {
		e.chHead[i] = -1
	}
	hasSink := false
	for r := range reps {
		e.active[r] = true
		e.doneAt[r] = make([]int64, n)
		e.minDone[r] = -1
		for i, p := range reps[r].Protocols {
			if fs, ok := p.(FixedSchedule); ok {
				e.doneAt[r][i] = fs.MinDoneSlots()
			}
			if e.minDone[r] < 0 || e.doneAt[r][i] < e.minDone[r] {
				e.minDone[r] = e.doneAt[r][i]
			}
		}
		if sink, ok := reps[r].Jammer.(ActivitySink); ok {
			e.sinks[r] = sink
			hasSink = true
		}
	}
	if hasSink {
		e.activity = make([]int, u)
	}
	if e.nbr != nil {
		// Same row economics as Engine.initChannelRows, with the pool
		// bound summed over replicas (each replica can independently
		// have n/rowMin dense channels in a slot).
		e.rowStride = e.nbr.Stride()
		e.rowMin = int32(max(2, e.rowStride/4))
		maxRows := b * (n/int(e.rowMin) + 1)
		if maxRows > b*u {
			maxRows = b * u
		}
		e.rowBuf = make([]uint64, maxRows*e.rowStride)
	}
	e.rowOf = make([]int32, b*u)
	for i := range e.rowOf {
		e.rowOf[i] = -1
	}
	return e, nil
}

// Slot returns the number of slots executed so far.
func (e *BatchEngine) Slot() int64 { return e.slot }

// Stats returns replica r's counters accumulated so far.
func (e *BatchEngine) Stats(r int) Stats { return e.stats[r] }

// Run executes slots until every replica finishes (all protocols done)
// or maxSlots elapse, returning per-replica stats.
func (e *BatchEngine) Run(maxSlots int64) []Stats {
	st, _ := e.RunCtx(context.Background(), maxSlots, nil)
	return st
}

// RunCtx is Run with cooperative cancellation and an optional
// per-replica stop predicate, mirroring Engine.RunUntilCtx: stop(r,
// slot) is checked for each still-active replica after each slot, and
// a replica that stops is frozen — its protocols are no longer
// stepped, its stats no longer advance — while the rest of the batch
// runs on. A nil ctx means context.Background().
func (e *BatchEngine) RunCtx(ctx context.Context, maxSlots int64, stop func(r int, slot int64) bool) ([]Stats, error) {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	n := e.n
	for e.slot < maxSlots && e.nActive > 0 {
		if done != nil && e.slot&ctxCheckMask == 0 {
			select {
			case <-done:
				for r := range e.stats {
					e.stats[r].Completed = e.nDone[r] == n
				}
				return e.stats, ctx.Err()
			default:
			}
		}
		// Deactivate replicas whose protocols all finished, exactly
		// where the sequential engine's loop condition would exit.
		for r := 0; r < e.b; r++ {
			if e.active[r] && e.nDone[r] == n {
				e.deactivate(r)
			}
		}
		if e.nActive == 0 {
			break
		}
		e.step()
		e.slot++
		for r := 0; r < e.b; r++ {
			if !e.active[r] {
				continue
			}
			e.stats[r].Slots = e.slot
			if stop != nil && stop(r, e.slot) {
				e.deactivate(r)
			}
		}
	}
	for r := range e.stats {
		e.stats[r].Completed = e.nDone[r] == n
	}
	return e.stats, nil
}

func (e *BatchEngine) deactivate(r int) {
	e.active[r] = false
	e.nActive--
}

// step runs one fused slot: collect over every active replica, one
// index build, resolve over every active replica.
func (e *BatchEngine) step() {
	e.bcasters = e.bcasters[:0]
	for r := 0; r < e.b; r++ {
		if e.active[r] {
			e.bcasters = e.collectReplica(r, e.bcasters)
		}
	}
	e.buildIndex(e.bcasters)
	for r := 0; r < e.b; r++ {
		if e.active[r] {
			e.resolveReplica(r)
		}
	}
	e.feedActivity()
	e.resetIndex()
	for r := 0; r < e.b; r++ {
		if e.active[r] {
			e.refreshDone(r)
		}
	}
}

// collectReplica runs the collect phase for replica r, appending the
// flat ids of its broadcasters to buf.
func (e *BatchEngine) collectReplica(r int, buf []int32) []int32 {
	assign := e.assign
	slot := e.slot
	state := e.state
	kind := e.kind
	data := e.data
	globalCh := e.globalCh
	protocols := e.reps[r].Protocols
	base := r * e.n
	chBase := int32(r * e.universe)
	for u := 0; u < e.n; u++ {
		f := base + u
		if state[f] != nodeLive {
			kind[f] = Idle
			continue
		}
		a := protocols[u].Act(slot)
		kind[f] = a.Kind
		if a.Kind == Idle {
			continue
		}
		globalCh[f] = chBase + assign.Global(u, a.Ch)
		if a.Kind == Broadcast {
			data[f] = a.Data
			buf = append(buf, int32(f))
		}
	}
	return buf
}

// buildIndex is Engine.buildIndex over the offset key space: channel
// keys already encode the replica, and row bits are replica-local node
// ids (flat id minus the replica base), so a listener's adjacency row
// ANDs against its own replica's broadcasters only.
func (e *BatchEngine) buildIndex(bcasters []int32) {
	rowMin := e.rowMin
	stride := e.rowStride
	n := int32(e.n)
	for _, f := range bcasters {
		ch := e.globalCh[f]
		head := e.chHead[ch]
		if head < 0 {
			e.touched = append(e.touched, ch)
		}
		e.bcastNext[f] = head
		e.chHead[ch] = f
		cnt := e.chCount[ch] + 1
		e.chCount[ch] = cnt
		if e.rowBuf == nil || cnt < rowMin {
			continue
		}
		ri := e.rowOf[ch]
		if cnt == rowMin {
			ri = e.rowsUsed
			e.rowsUsed++
			e.rowOf[ch] = ri
			row := e.rowBuf[int(ri)*stride : (int(ri)+1)*stride]
			clear(row)
			base := (f / n) * n
			for v := f; v >= 0; v = e.bcastNext[v] {
				lv := v - base
				row[lv>>6] |= 1 << (uint(lv) & 63)
			}
			continue
		}
		lu := f % n
		e.rowBuf[int(ri)*stride+int(lu>>6)] |= 1 << (uint(lu) & 63)
	}
}

func (e *BatchEngine) resetIndex() {
	for _, ch := range e.touched {
		e.chCount[ch] = 0
		e.chHead[ch] = -1
		e.rowOf[ch] = -1
	}
	e.touched = e.touched[:0]
	e.rowsUsed = 0
}

// resolveReplica is the resolve phase for replica r — Engine's
// resolveAndObserve specialized to the static model, with flat-id
// bookkeeping (channel keys and broadcaster ids carry the replica
// offset; adjacency probes strip it).
func (e *BatchEngine) resolveReplica(r int) {
	g := e.g
	jam := e.reps[r].Jammer
	trace := e.reps[r].Trace
	slot := e.slot
	state := e.state
	kind := e.kind
	data := e.data
	globalCh := e.globalCh
	protocols := e.reps[r].Protocols
	chCount := e.chCount
	chHead := e.chHead
	bcastNext := e.bcastNext
	nbr := e.nbr
	rowOf := e.rowOf
	rowBuf := e.rowBuf
	stride := e.rowStride
	base := int32(r * e.n)
	chBase := int32(r * e.universe)
	scratch := &e.scratchMsg
	st := &e.stats[r]
	var idles, bcasts, listens, deliveries, collisions, jammedL int64
	for u := 0; u < e.n; u++ {
		f := base + int32(u)
		if state[f] != nodeLive {
			continue
		}
		switch kind[f] {
		case Idle:
			idles++
			protocols[u].Observe(slot, nil)
		case Broadcast:
			bcasts++
			protocols[u].Observe(slot, nil)
		case Listen:
			listens++
			ch := globalCh[f]
			realCh := ch - chBase
			if jam != nil && jam.Jammed(slot, realCh) {
				jammedL++
				protocols[u].Observe(slot, nil)
				continue
			}
			cnt := chCount[ch]
			if cnt == 0 {
				protocols[u].Observe(slot, nil)
				continue
			}
			talkers := 0
			var from int32 = -1
			if ri := rowOf[ch]; ri >= 0 {
				row := rowBuf[int(ri)*stride : (int(ri)+1)*stride]
				c, sole := bitset.AndCountSole(nbr.Row(u), row)
				talkers = c
				from = int32(sole)
			} else if nbrs := g.Neighbors(u); int(cnt) <= len(nbrs) {
				for v := chHead[ch]; v >= 0; v = bcastNext[v] {
					if e.adjacent(u, v-base) {
						talkers++
						if talkers > 1 {
							break
						}
						from = v - base
					}
				}
			} else {
				for _, v := range nbrs {
					if kind[base+v] == Broadcast && globalCh[base+v] == ch {
						talkers++
						if talkers > 1 {
							break
						}
						from = v
					}
				}
			}
			switch {
			case talkers == 1:
				deliveries++
				scratch.From = NodeID(from)
				scratch.Data = data[base+from]
				if trace != nil {
					trace(slot, NodeID(u), realCh, scratch)
				}
				protocols[u].Observe(slot, scratch)
			case talkers > 1:
				collisions++
				protocols[u].Observe(slot, nil)
			default:
				protocols[u].Observe(slot, nil)
			}
		default:
			panic(fmt.Sprintf("radio: replica %d node %d returned invalid action kind %d", r, u, kind[f]))
		}
	}
	st.Idles += idles
	st.Broadcasts += bcasts
	st.Listens += listens
	st.Deliveries += deliveries
	st.Collisions += collisions
	st.JammedListens += jammedL
}

func (e *BatchEngine) adjacent(u int, v int32) bool {
	if e.nbr != nil {
		return e.nbr.Get(u, int(v))
	}
	return e.g.Adjacent(u, int(v))
}

// feedActivity reports each replica's broadcast counts to its reactive
// jammer, replica by replica so every sink sees exactly the slice a
// solo engine would have handed it.
func (e *BatchEngine) feedActivity() {
	if e.activity == nil {
		return
	}
	universe := int32(e.universe)
	for r := 0; r < e.b; r++ {
		sink := e.sinks[r]
		if sink == nil || !e.active[r] {
			continue
		}
		lo, hi := int32(r)*universe, int32(r+1)*universe
		for _, ch := range e.touched {
			if ch >= lo && ch < hi {
				e.activity[ch-lo] = int(e.chCount[ch])
			}
		}
		sink.ObserveActivity(e.slot, e.activity)
		for _, ch := range e.touched {
			if ch >= lo && ch < hi {
				e.activity[ch-lo] = 0
			}
		}
	}
}

// refreshDone is Engine.refreshDone for replica r.
func (e *BatchEngine) refreshDone(r int) {
	observed := e.slot + 1
	if observed < e.minDone[r] {
		return
	}
	base := r * e.n
	doneAt := e.doneAt[r]
	min := int64(-1)
	for u, p := range e.reps[r].Protocols {
		if e.state[base+u] == nodeDone {
			continue
		}
		if observed >= doneAt[u] && p.Done() {
			e.state[base+u] = nodeDone
			e.nDone[r]++
			continue
		}
		if min < 0 || doneAt[u] < min {
			min = doneAt[u]
		}
	}
	e.minDone[r] = min
}
