package radio

import (
	"context"
	"fmt"

	"crn/internal/bitset"
	"crn/internal/chanassign"
	"crn/internal/graph"
)

// Replica is one independent run inside a BatchEngine: its protocols
// plus the per-run state that is not shared across the batch. The
// graph and channel assignment are shared (read-only); everything a
// run mutates or observes — protocol state, jammer state, traces,
// stats — lives on the replica.
type Replica struct {
	// Protocols is the per-node protocol set (len must equal the node
	// count).
	Protocols []Protocol
	// Jammer optionally models primary users for this replica; nil
	// means clear spectrum. A Jammer that also implements ActivitySink
	// receives this replica's per-slot activity reports.
	Jammer Jammer
	// Trace optionally observes this replica's deliveries.
	Trace TraceFunc
	// Topology optionally makes this replica's topology time-varying:
	// the batch engine clones the shared base graph into a
	// replica-private mutable view and steps the feed once per slot,
	// exactly as Engine does for Network.Topology. Feeds must be
	// run-scoped (one instance per replica). nil means the static
	// model.
	Topology TopologyFeed
}

// BatchEngine steps B independent replicas of the same static network
// through one fused slot loop: one collect pass, one channel-index
// build and one resolve pass cover every replica, so the graph, the
// channel assignment, the adjacency matrix and all engine scratch are
// touched once per slot instead of once per run.
//
// Replicas never interact: replica r's broadcasters are bucketed under
// channel keys r·universe+ch, disjoint from every other replica's
// keys, and its listeners resolve only against those buckets, so each
// replica's slot outcomes — deliveries, collisions, stats, traces —
// are byte-identical to running it alone on a sequential Engine. The
// batched sweep path relies on exactly this equivalence.
//
// Dynamic topologies batch too: a replica with a TopologyFeed gets a
// private graph.Dynamic clone of the shared base graph (plus its own
// adjacency matrix), its feed is stepped once per slot from the fused
// loop's sequential section, and its listeners resolve against the
// private view — the same reconciliation Engine performs, paid per
// dynamic replica. Static replicas keep resolving against the shared
// base graph and matrix, so mixing static and dynamic replicas in one
// batch costs clones only for the dynamic ones.
type BatchEngine struct {
	g      *graph.Graph
	assign *chanassign.Assignment
	nbr    *bitset.Matrix

	b, n, universe int

	// Per-replica run state.
	reps    []Replica
	sinks   []ActivitySink
	stats   []Stats
	nDone   []int
	doneAt  [][]int64
	minDone []int64
	active  []bool
	nActive int

	// Per-replica range dispatch (see detectRangeBank): banks[r] is
	// replica r's shared bank, nil for per-node dispatch. acts and
	// deliv are the range scratch in replica-local node ids; the fused
	// loop resolves replicas one at a time, so one n-sized set serves
	// the whole batch. delivIdx records which nodes the current
	// replica delivered into, so the post-observe reset touches only
	// those entries (deliv holds From=-1 everywhere in between).
	banks    []RangeProtocol
	acts     []Action
	deliv    []Delivery
	delivIdx []int32

	// Per-replica dynamic topology (nil/shared entries for static
	// replicas): gs[r]/nbrs[r] are the graph and adjacency matrix
	// replica r resolves against — the shared base pair unless the
	// replica has a feed, in which case they are its private mutable
	// clone (dyns[r]) and muts[r] is the pre-boxed mutator handed to
	// the feed. countTopo[r] mirrors Engine.countTopo; up is the
	// flattened per-node participation state driven by the feeds. The
	// shared base g/nbr double as the partition-loss counterfactual
	// base, exactly like Engine.baseG/baseNbr.
	topos     []TopologyFeed
	dyns      []*graph.Dynamic
	gs        []*graph.Graph
	nbrs      []*bitset.Matrix
	muts      []TopologyMutator
	countTopo []bool
	up        []bool

	// Flattened per-node hot state, replica-major: node u of replica r
	// is flat id r·n+u. Same struct-of-arrays layout as Engine.
	kind     []Kind
	data     []any
	globalCh []int32 // offset channel key r·universe+ch
	state    []uint8

	// Per-slot channel index over the offset key space [0, b·universe),
	// plus the shared bitset-row pool; see Engine for the scheme. Row
	// bits are replica-local node ids, so a listener's adjacency row
	// ANDs against them directly.
	chCount   []int32
	chHead    []int32
	bcastNext []int32
	touched   []int32
	bcasters  []int32
	rowBuf    []uint64
	rowOf     []int32
	rowStride int
	rowMin    int32
	rowsUsed  int32

	slot       int64
	scratchMsg Message
	activity   []int
}

// NewBatchEngine constructs a fused engine over the shared (graph,
// assignment) pair and the given replicas. The graph is finalized
// (idempotent); every replica must provide exactly one protocol per
// node.
func NewBatchEngine(g *graph.Graph, assign *chanassign.Assignment, reps []Replica) (*BatchEngine, error) {
	if g == nil || assign == nil {
		return nil, fmt.Errorf("radio: batch engine needs both graph and assignment")
	}
	if g.N() != assign.N() {
		return nil, fmt.Errorf("radio: graph has %d nodes, assignment %d", g.N(), assign.N())
	}
	if len(reps) == 0 {
		return nil, fmt.Errorf("radio: batch engine needs at least one replica")
	}
	g.Finalize()
	n := g.N()
	b := len(reps)
	u := assign.Universe
	for r := range reps {
		if len(reps[r].Protocols) != n {
			return nil, fmt.Errorf("radio: replica %d has %d protocols for %d nodes", r, len(reps[r].Protocols), n)
		}
	}
	e := &BatchEngine{
		g:         g,
		assign:    assign,
		nbr:       g.NeighborMatrix(),
		b:         b,
		n:         n,
		universe:  u,
		reps:      reps,
		sinks:     make([]ActivitySink, b),
		stats:     make([]Stats, b),
		nDone:     make([]int, b),
		doneAt:    make([][]int64, b),
		minDone:   make([]int64, b),
		active:    make([]bool, b),
		nActive:   b,
		kind:      make([]Kind, b*n),
		data:      make([]any, b*n),
		globalCh:  make([]int32, b*n),
		state:     make([]uint8, b*n),
		chCount:   make([]int32, b*u),
		chHead:    make([]int32, b*u),
		bcastNext: make([]int32, b*n),
		touched:   make([]int32, 0, b*u),
		bcasters:  make([]int32, 0, b*n),
		banks:     make([]RangeProtocol, b),
		topos:     make([]TopologyFeed, b),
		dyns:      make([]*graph.Dynamic, b),
		gs:        make([]*graph.Graph, b),
		nbrs:      make([]*bitset.Matrix, b),
		muts:      make([]TopologyMutator, b),
		countTopo: make([]bool, b),
		up:        make([]bool, b*n),
	}
	for i := range e.chHead {
		e.chHead[i] = -1
	}
	for i := range e.up {
		e.up[i] = true
	}
	hasSink := false
	hasBank := false
	for r := range reps {
		e.active[r] = true
		e.doneAt[r] = make([]int64, n)
		e.minDone[r] = -1
		e.gs[r] = g
		e.nbrs[r] = e.nbr
		if reps[r].Topology != nil {
			// Dynamic replica: private mutable clone, exactly like
			// Engine under Network.Topology. The shared base pair keeps
			// serving as the partition-loss counterfactual.
			e.topos[r] = reps[r].Topology
			e.dyns[r] = graph.NewDynamic(g)
			e.gs[r] = e.dyns[r].Graph()
			e.nbrs[r] = e.gs[r].NeighborMatrix()
			e.muts[r] = batchMutator{e: e, r: r}
		}
		for i, p := range reps[r].Protocols {
			// FixedSchedule bounds count observed slots; a down node
			// observes nothing, so the Done-poll skip is disabled for
			// dynamic replicas (see Engine's identical gating).
			if e.topos[r] == nil {
				if fs, ok := p.(FixedSchedule); ok {
					e.doneAt[r][i] = fs.MinDoneSlots()
				}
			}
			if e.minDone[r] < 0 || e.doneAt[r][i] < e.minDone[r] {
				e.minDone[r] = e.doneAt[r][i]
			}
		}
		if sink, ok := reps[r].Jammer.(ActivitySink); ok {
			e.sinks[r] = sink
			hasSink = true
		}
		if bank := detectRangeBank(reps[r].Protocols); bank != nil {
			e.banks[r] = bank
			hasBank = true
		}
	}
	if hasBank {
		e.acts = make([]Action, n)
		e.deliv = make([]Delivery, n)
		e.delivIdx = make([]int32, n)
		// resolveReplica keeps From=-1 as the steady-state content of
		// every entry, writing (and resetting) only actual deliveries.
		for i := range e.deliv {
			e.deliv[i].From = -1
		}
	}
	if hasSink {
		e.activity = make([]int, u)
	}
	if e.nbr != nil {
		// Same row economics as Engine.initChannelRows, with the pool
		// bound summed over replicas (each replica can independently
		// have n/rowMin dense channels in a slot).
		e.rowStride = e.nbr.Stride()
		e.rowMin = int32(max(2, e.rowStride/4))
		maxRows := b * (n/int(e.rowMin) + 1)
		if maxRows > b*u {
			maxRows = b * u
		}
		e.rowBuf = make([]uint64, maxRows*e.rowStride)
	}
	e.rowOf = make([]int32, b*u)
	for i := range e.rowOf {
		e.rowOf[i] = -1
	}
	return e, nil
}

// batchMutator is the TopologyMutator handed to replica r's feed: the
// BatchEngine analogue of engineMutator, operating on the replica's
// private graph clone and its slice of the flattened node state.
type batchMutator struct {
	e *BatchEngine
	r int
}

func (m batchMutator) N() int { return m.e.n }

func (m batchMutator) NodeUp(u int) bool {
	return u >= 0 && u < m.e.n && m.e.up[m.r*m.e.n+u]
}

func (m batchMutator) SetNodeUp(u int, up bool) bool {
	e := m.e
	if u < 0 || u >= e.n {
		return false
	}
	f := m.r*e.n + u
	if e.up[f] == up {
		return false
	}
	e.up[f] = up
	if e.state[f] != nodeDone {
		if up {
			e.state[f] = nodeLive
		} else {
			e.state[f] = nodeDown
		}
	}
	if e.countTopo[m.r] {
		if up {
			e.stats[m.r].NodeJoins++
		} else {
			e.stats[m.r].NodeLeaves++
		}
	}
	return true
}

func (m batchMutator) HasEdge(u, v int) bool { return m.e.dyns[m.r].HasEdge(u, v) }

func (m batchMutator) AddEdge(u, v int) bool {
	if !m.e.dyns[m.r].AddEdge(u, v) {
		return false
	}
	if m.e.countTopo[m.r] {
		m.e.stats[m.r].EdgeAdds++
	}
	return true
}

func (m batchMutator) RemoveEdge(u, v int) bool {
	if !m.e.dyns[m.r].RemoveEdge(u, v) {
		return false
	}
	if m.e.countTopo[m.r] {
		m.e.stats[m.r].EdgeRemoves++
	}
	return true
}

// applyTopology steps every active dynamic replica's feed for the slot
// about to execute, from the fused loop's sequential section — the
// same ordering Engine.applyTopology guarantees, applied replica by
// replica. First-Step reconciliations are uncounted per replica (see
// Engine.countTopo).
func (e *BatchEngine) applyTopology() {
	for r := 0; r < e.b; r++ {
		if e.topos[r] == nil || !e.active[r] {
			continue
		}
		e.topos[r].Step(e.slot, e.muts[r])
		e.countTopo[r] = true
	}
}

// Slot returns the number of slots executed so far.
func (e *BatchEngine) Slot() int64 { return e.slot }

// Stats returns replica r's counters accumulated so far.
func (e *BatchEngine) Stats(r int) Stats { return e.stats[r] }

// Run executes slots until every replica finishes (all protocols done)
// or maxSlots elapse, returning per-replica stats.
func (e *BatchEngine) Run(maxSlots int64) []Stats {
	st, _ := e.RunCtx(context.Background(), maxSlots, nil)
	return st
}

// RunCtx is Run with cooperative cancellation and an optional
// per-replica stop predicate, mirroring Engine.RunUntilCtx: stop(r,
// slot) is checked for each still-active replica after each slot, and
// a replica that stops is frozen — its protocols are no longer
// stepped, its stats no longer advance — while the rest of the batch
// runs on. A nil ctx means context.Background().
func (e *BatchEngine) RunCtx(ctx context.Context, maxSlots int64, stop func(r int, slot int64) bool) ([]Stats, error) {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	n := e.n
	for e.slot < maxSlots && e.nActive > 0 {
		if done != nil && e.slot&ctxCheckMask == 0 {
			select {
			case <-done:
				for r := range e.stats {
					e.stats[r].Completed = e.nDone[r] == n
				}
				return e.stats, ctx.Err()
			default:
			}
		}
		// Deactivate replicas whose protocols all finished, exactly
		// where the sequential engine's loop condition would exit.
		for r := 0; r < e.b; r++ {
			if e.active[r] && e.nDone[r] == n {
				e.deactivate(r)
			}
		}
		if e.nActive == 0 {
			break
		}
		e.step()
		e.slot++
		for r := 0; r < e.b; r++ {
			if !e.active[r] {
				continue
			}
			e.stats[r].Slots = e.slot
			if stop != nil && stop(r, e.slot) {
				e.deactivate(r)
			}
		}
	}
	for r := range e.stats {
		e.stats[r].Completed = e.nDone[r] == n
	}
	return e.stats, nil
}

func (e *BatchEngine) deactivate(r int) {
	e.active[r] = false
	e.nActive--
}

// step runs one fused slot: apply topology feeds, collect over every
// active replica, one index build, resolve over every active replica.
func (e *BatchEngine) step() {
	e.applyTopology()
	e.bcasters = e.bcasters[:0]
	for r := 0; r < e.b; r++ {
		if e.active[r] {
			e.bcasters = e.collectReplica(r, e.bcasters)
		}
	}
	e.buildIndex(e.bcasters)
	for r := 0; r < e.b; r++ {
		if e.active[r] {
			e.resolveReplica(r)
		}
	}
	e.feedActivity()
	e.resetIndex()
	for r := 0; r < e.b; r++ {
		if e.active[r] {
			e.refreshDone(r)
		}
	}
}

// collectReplica runs the collect phase for replica r, appending the
// flat ids of its broadcasters to buf.
func (e *BatchEngine) collectReplica(r int, buf []int32) []int32 {
	if e.banks[r] != nil {
		return e.collectReplicaRange(r, buf)
	}
	assign := e.assign
	slot := e.slot
	state := e.state
	kind := e.kind
	data := e.data
	globalCh := e.globalCh
	protocols := e.reps[r].Protocols
	base := r * e.n
	chBase := int32(r * e.universe)
	for u := 0; u < e.n; u++ {
		f := base + u
		if state[f] != nodeLive {
			kind[f] = Idle
			continue
		}
		a := protocols[u].Act(slot)
		kind[f] = a.Kind
		if a.Kind == Idle {
			continue
		}
		globalCh[f] = chBase + assign.Global(u, a.Ch)
		if a.Kind == Broadcast {
			data[f] = a.Data
			buf = append(buf, int32(f))
		}
	}
	return buf
}

// collectReplicaRange is collectReplica in range-dispatch mode: one
// ActRange per maximal run of live nodes fills e.acts (replica-local
// ids), then a tight pass folds the actions into the flat SoA state —
// Engine.collectRange with the replica offset bookkeeping.
func (e *BatchEngine) collectReplicaRange(r int, buf []int32) []int32 {
	bank := e.banks[r]
	acts := e.acts
	state := e.state
	kind := e.kind
	slot := e.slot
	n := e.n
	base := r * n
	for u := 0; u < n; {
		if state[base+u] != nodeLive {
			kind[base+u] = Idle
			u++
			continue
		}
		runLo := u
		for u < n && state[base+u] == nodeLive {
			u++
		}
		bank.ActRange(slot, runLo, u, acts)
	}
	assign := e.assign
	data := e.data
	globalCh := e.globalCh
	chBase := int32(r * e.universe)
	for u := 0; u < n; u++ {
		f := base + u
		if state[f] != nodeLive {
			continue
		}
		a := acts[u]
		kind[f] = a.Kind
		if a.Kind == Idle {
			continue
		}
		globalCh[f] = chBase + assign.Global(u, a.Ch)
		if a.Kind == Broadcast {
			data[f] = a.Data
			buf = append(buf, int32(f))
		}
	}
	return buf
}

// buildIndex is Engine.buildIndex over the offset key space: channel
// keys already encode the replica, and row bits are replica-local node
// ids (flat id minus the replica base), so a listener's adjacency row
// ANDs against its own replica's broadcasters only.
func (e *BatchEngine) buildIndex(bcasters []int32) {
	// Hoisted locals, as in Engine.buildIndex: the touched append
	// mutates an engine field, so the compiler would otherwise reload
	// every slice header per broadcaster.
	rowMin := e.rowMin
	stride := e.rowStride
	n := int32(e.n)
	globalCh := e.globalCh
	chHead := e.chHead
	chCount := e.chCount
	bcastNext := e.bcastNext
	rowBuf := e.rowBuf
	rowOf := e.rowOf
	touched := e.touched
	for _, f := range bcasters {
		ch := globalCh[f]
		head := chHead[ch]
		if head < 0 {
			touched = append(touched, ch)
		}
		bcastNext[f] = head
		chHead[ch] = f
		cnt := chCount[ch] + 1
		chCount[ch] = cnt
		if rowBuf == nil || cnt < rowMin {
			continue
		}
		ri := rowOf[ch]
		if cnt == rowMin {
			ri = e.rowsUsed
			e.rowsUsed++
			rowOf[ch] = ri
			row := rowBuf[int(ri)*stride : (int(ri)+1)*stride]
			clear(row)
			base := (f / n) * n
			for v := f; v >= 0; v = bcastNext[v] {
				lv := v - base
				row[lv>>6] |= 1 << (uint(lv) & 63)
			}
			continue
		}
		lu := f % n
		rowBuf[int(ri)*stride+int(lu>>6)] |= 1 << (uint(lu) & 63)
	}
	e.touched = touched
}

func (e *BatchEngine) resetIndex() {
	for _, ch := range e.touched {
		e.chCount[ch] = 0
		e.chHead[ch] = -1
		e.rowOf[ch] = -1
	}
	e.touched = e.touched[:0]
	e.rowsUsed = 0
}

// resolveReplica is the resolve phase for replica r — Engine's
// resolveAndObserve with flat-id bookkeeping (channel keys and
// broadcaster ids carry the replica offset; adjacency probes strip
// it). Dynamic replicas resolve against their private view and run the
// partition-loss counterfactual against the shared base topology; a
// banked replica (range dispatch) collects outcomes into e.deliv and
// observes via ObserveRange over maximal runs of live nodes, exactly
// like Engine.resolveRange.
func (e *BatchEngine) resolveReplica(r int) {
	g := e.gs[r]
	nbr := e.nbrs[r]
	dynamic := e.topos[r] != nil
	bank := e.banks[r]
	deliv := e.deliv
	jam := e.reps[r].Jammer
	trace := e.reps[r].Trace
	slot := e.slot
	state := e.state
	kind := e.kind
	data := e.data
	globalCh := e.globalCh
	protocols := e.reps[r].Protocols
	chCount := e.chCount
	chHead := e.chHead
	bcastNext := e.bcastNext
	rowOf := e.rowOf
	rowBuf := e.rowBuf
	stride := e.rowStride
	base := int32(r * e.n)
	chBase := int32(r * e.universe)
	scratch := &e.scratchMsg
	st := &e.stats[r]
	var idles, bcasts, listens, deliveries, collisions, jammedL, downs, plosses int64
	delivIdx := e.delivIdx
	nDeliv := 0
	for u := 0; u < e.n; u++ {
		f := base + int32(u)
		if state[f] != nodeLive {
			if state[f] == nodeDown {
				downs++
			}
			continue
		}
		switch kind[f] {
		case Idle:
			idles++
			if bank == nil {
				protocols[u].Observe(slot, nil)
			}
		case Broadcast:
			bcasts++
			if bank == nil {
				protocols[u].Observe(slot, nil)
			}
		case Listen:
			listens++
			ch := globalCh[f]
			realCh := ch - chBase
			if jam != nil && jam.Jammed(slot, realCh) {
				jammedL++
				if bank == nil {
					protocols[u].Observe(slot, nil)
				}
				continue
			}
			cnt := chCount[ch]
			if cnt == 0 {
				if bank == nil {
					protocols[u].Observe(slot, nil)
				}
				continue
			}
			talkers := 0
			var from int32 = -1
			var row []uint64
			if ri := rowOf[ch]; ri >= 0 {
				row = rowBuf[int(ri)*stride : (int(ri)+1)*stride]
				c, sole := bitset.AndCountSole(nbr.Row(u), row)
				talkers = c
				from = int32(sole)
			} else if nbrs := g.Neighbors(u); int(cnt) <= len(nbrs) {
				for v := chHead[ch]; v >= 0; v = bcastNext[v] {
					if e.replicaAdjacent(g, nbr, u, v-base) {
						talkers++
						if talkers > 1 {
							break
						}
						from = v - base
					}
				}
			} else {
				for _, v := range nbrs {
					if kind[base+v] == Broadcast && globalCh[base+v] == ch {
						talkers++
						if talkers > 1 {
							break
						}
						from = v
					}
				}
			}
			if dynamic && !e.sameAsBase(nbr, u) {
				// Partition-loss counterfactual against the shared base
				// topology; see Engine.resolveAndObserve.
				baseTalkers := 0
				var baseFrom int32 = -1
				if row != nil && e.nbr != nil {
					c, sole := bitset.AndCountSole(e.nbr.Row(u), row)
					baseTalkers, baseFrom = c, int32(sole)
				} else {
					for v := chHead[ch]; v >= 0; v = bcastNext[v] {
						if e.baseAdjacent(u, v-base) {
							baseTalkers++
							if baseTalkers > 1 {
								break
							}
							baseFrom = v - base
						}
					}
				}
				if baseTalkers == 1 && (talkers != 1 || from != baseFrom) {
					plosses++
				}
			}
			switch {
			case talkers == 1:
				deliveries++
				if trace != nil {
					scratch.From = NodeID(from)
					scratch.Data = data[base+from]
					trace(slot, NodeID(u), realCh, scratch)
				}
				if bank != nil {
					delivIdx[nDeliv] = int32(u)
					nDeliv++
					deliv[u] = Delivery{From: NodeID(from), Data: data[base+from]}
				} else {
					scratch.From = NodeID(from)
					scratch.Data = data[base+from]
					protocols[u].Observe(slot, scratch)
				}
			case talkers > 1:
				collisions++
				if bank == nil {
					protocols[u].Observe(slot, nil)
				}
			default:
				if bank == nil {
					protocols[u].Observe(slot, nil)
				}
			}
		default:
			panic(fmt.Sprintf("radio: replica %d node %d returned invalid action kind %d", r, u, kind[f]))
		}
	}
	if bank != nil {
		for u := 0; u < e.n; {
			if state[base+int32(u)] != nodeLive {
				u++
				continue
			}
			runLo := u
			for u < e.n && state[base+int32(u)] == nodeLive {
				u++
			}
			bank.ObserveRange(slot, runLo, u, deliv)
		}
		// Restore the From=-1 invariant (and drop payload references)
		// before the next replica reuses the scratch.
		for i := 0; i < nDeliv; i++ {
			deliv[delivIdx[i]] = Delivery{From: -1}
		}
	}
	st.Idles += idles
	st.Broadcasts += bcasts
	st.Listens += listens
	st.Deliveries += deliveries
	st.Collisions += collisions
	st.JammedListens += jammedL
	st.DownSlots += downs
	st.PartitionLosses += plosses
}

// replicaAdjacent probes adjacency in the replica's resolve view.
func (e *BatchEngine) replicaAdjacent(g *graph.Graph, nbr *bitset.Matrix, u int, v int32) bool {
	if nbr != nil {
		return nbr.Get(u, int(v))
	}
	return g.Adjacent(u, int(v))
}

// baseAdjacent probes adjacency in the shared base topology (the
// partition-loss counterfactual base for dynamic replicas).
func (e *BatchEngine) baseAdjacent(u int, v int32) bool {
	if e.nbr != nil {
		return e.nbr.Get(u, int(v))
	}
	return e.g.Adjacent(u, int(v))
}

// sameAsBase reports whether listener u's adjacency row in the
// replica's view equals its base-topology row — Engine.sameAsBase per
// replica.
func (e *BatchEngine) sameAsBase(nbr *bitset.Matrix, u int) bool {
	if nbr == nil || e.nbr == nil {
		return false
	}
	return bitset.EqualWords(nbr.Row(u), e.nbr.Row(u))
}

// feedActivity reports each replica's broadcast counts to its reactive
// jammer, replica by replica so every sink sees exactly the slice a
// solo engine would have handed it.
func (e *BatchEngine) feedActivity() {
	if e.activity == nil {
		return
	}
	universe := int32(e.universe)
	for r := 0; r < e.b; r++ {
		sink := e.sinks[r]
		if sink == nil || !e.active[r] {
			continue
		}
		lo, hi := int32(r)*universe, int32(r+1)*universe
		for _, ch := range e.touched {
			if ch >= lo && ch < hi {
				e.activity[ch-lo] = int(e.chCount[ch])
			}
		}
		sink.ObserveActivity(e.slot, e.activity)
		for _, ch := range e.touched {
			if ch >= lo && ch < hi {
				e.activity[ch-lo] = 0
			}
		}
	}
}

// refreshDone is Engine.refreshDone for replica r.
func (e *BatchEngine) refreshDone(r int) {
	observed := e.slot + 1
	if observed < e.minDone[r] {
		return
	}
	base := r * e.n
	doneAt := e.doneAt[r]
	min := int64(-1)
	for u, p := range e.reps[r].Protocols {
		if e.state[base+u] == nodeDone {
			continue
		}
		if observed >= doneAt[u] && p.Done() {
			e.state[base+u] = nodeDone
			e.nDone[r]++
			continue
		}
		if min < 0 || doneAt[u] < min {
			min = doneAt[u]
		}
	}
	e.minDone[r] = min
}
