package radio

import (
	"fmt"
	"testing"

	"crn/internal/chanassign"
	"crn/internal/graph"
	"crn/internal/rng"
)

// This file locks down the batch-aware range ABI: an engine whose
// protocols share a bank must produce byte-identical outcomes — stats,
// traces, per-node observations — to the same protocols on per-node
// dispatch, across static, jammed and dynamic (churn + flap) networks
// and at every worker count. It also pins the detection rules and the
// range path's zero-alloc steady state.

// bankedProto is randomProto with an optional bank view: the same rng
// draw order and observation bookkeeping on both dispatch modes.
type bankedProto struct {
	bank  *rangedTestBank
	idx   int
	r     *rng.Source
	c     int
	heard []NodeID
	nils  int64
}

func (p *bankedProto) Act(_ int64) Action {
	switch p.r.Intn(3) {
	case 0:
		return Action{Kind: Broadcast, Ch: p.r.Intn(p.c), Data: p.idx}
	case 1:
		return Action{Kind: Listen, Ch: p.r.Intn(p.c)}
	default:
		return Action{Kind: Idle}
	}
}

func (p *bankedProto) Observe(_ int64, msg *Message) {
	if msg == nil {
		p.observeOutcome(-1)
		return
	}
	p.observeOutcome(msg.From)
}

func (p *bankedProto) observeOutcome(from NodeID) {
	if from >= 0 {
		p.heard = append(p.heard, from)
	} else {
		p.nils++
	}
}

func (p *bankedProto) Done() bool { return false }

func (p *bankedProto) RangeBank() (RangeProtocol, int) {
	if p.bank == nil {
		return nil, 0
	}
	return p.bank, p.idx
}

func (p *bankedProto) fingerprint() string {
	return fmt.Sprintf("%v/%d;", p.heard, p.nils)
}

type rangedTestBank struct{ nodes []*bankedProto }

func (b *rangedTestBank) ActRange(slot int64, lo, hi int, acts []Action) {
	for u := lo; u < hi; u++ {
		acts[u] = b.nodes[u].Act(slot)
	}
}

func (b *rangedTestBank) ObserveRange(_ int64, lo, hi int, deliveries []Delivery) {
	for u := lo; u < hi; u++ {
		b.nodes[u].observeOutcome(deliveries[u].From)
	}
}

// mkBankedSet builds n per-node views seeded from master; banked
// attaches the shared bank (range dispatch), otherwise the views opt
// out and the engine falls back to per-node calls.
func mkBankedSet(n, c int, master *rng.Source, banked bool) ([]Protocol, []*bankedProto) {
	views := make([]*bankedProto, n)
	protos := make([]Protocol, n)
	for u := 0; u < n; u++ {
		views[u] = &bankedProto{idx: u, r: master.Split(uint64(u)), c: c}
		protos[u] = views[u]
	}
	if banked {
		bank := &rangedTestBank{nodes: views}
		for _, v := range views {
			v.bank = bank
		}
	}
	return protos, views
}

// rangedFixture is the shared network for the equivalence tests.
func rangedFixture(t *testing.T) (*graph.Graph, *chanassign.Assignment) {
	t.Helper()
	g, err := graph.GNP(24, 0.3, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	a, err := chanassign.SharedPool(24, 5, 2, 14, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	return g, a
}

// churnFlapFeed returns a deterministic scripted feed mixing node
// churn and edge flapping, fresh per run (run-scoped feed contract).
func churnFlapFeed(g *graph.Graph, seed uint64) TopologyFeed {
	n := g.N()
	edges := g.Edges()
	r := rng.New(seed)
	return &scriptFeed{steps: func(slot int64, mut TopologyMutator) {
		u := r.Intn(n)
		if r.Bernoulli(0.1) {
			mut.SetNodeUp(u, !mut.NodeUp(u))
		}
		e := edges[r.Intn(len(edges))]
		if r.Bernoulli(0.2) {
			if mut.HasEdge(int(e.U), int(e.V)) {
				mut.RemoveEdge(int(e.U), int(e.V))
			} else {
				mut.AddEdge(int(e.U), int(e.V))
			}
		}
	}}
}

// TestEngineRangeDispatchMatchesPerNode: for static, jammed and
// dynamic networks, sequential and parallel, the range ABI produces
// byte-identical stats, traces and per-node observations to per-node
// dispatch on the same seed.
func TestEngineRangeDispatchMatchesPerNode(t *testing.T) {
	g, a := rangedFixture(t)
	const n, c, slots = 24, 5, 400
	scenarios := []struct {
		name    string
		jam     Jammer
		dynamic bool
	}{
		{"static", nil, false},
		{"jammed", parityJammer{}, false},
		{"dynamic", nil, true},
		{"jammed-dynamic", parityJammer{}, true},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			run := func(banked bool, workers int) (Stats, string, []traceEvent) {
				// Traces are only recorded sequentially: under RunParallel
				// the workers fire the callback concurrently per segment,
				// so cross-segment ordering is not part of the contract.
				var trace []traceEvent
				nw := &Network{Graph: g, Assign: a, Jammer: sc.jam}
				if workers == 0 {
					nw.Trace = traceRecorder(&trace)
				}
				if sc.dynamic {
					nw.Topology = churnFlapFeed(g, 0xFEED)
				}
				protos, views := mkBankedSet(n, c, rng.New(42), banked)
				e, err := NewEngine(nw, protos)
				if err != nil {
					t.Fatal(err)
				}
				if e.RangeDispatch() != banked {
					t.Fatalf("banked=%v but RangeDispatch=%v", banked, e.RangeDispatch())
				}
				var st Stats
				if workers == 0 {
					st = e.Run(slots)
				} else {
					st = e.RunParallel(slots, workers)
				}
				fp := ""
				for _, v := range views {
					fp += v.fingerprint()
				}
				return st, fp, trace
			}
			wantStats, wantFP, wantTrace := run(false, 0)
			if sc.dynamic && (wantStats.DownSlots == 0 || wantStats.EdgeAdds+wantStats.EdgeRemoves == 0) {
				t.Fatalf("dynamic scenario applied no dynamics: %+v", wantStats)
			}
			for _, workers := range []int{0, 3} {
				gotStats, gotFP, gotTrace := run(true, workers)
				if gotStats != wantStats {
					t.Errorf("workers=%d stats:\n range    %+v\n per-node %+v", workers, gotStats, wantStats)
				}
				if gotFP != wantFP {
					t.Errorf("workers=%d per-node observations diverged", workers)
				}
				if workers != 0 {
					continue
				}
				if len(gotTrace) != len(wantTrace) {
					t.Fatalf("%d trace events on range path, %d on per-node", len(gotTrace), len(wantTrace))
				}
				for i := range wantTrace {
					if gotTrace[i] != wantTrace[i] {
						t.Fatalf("trace event %d: range %+v, per-node %+v", i, gotTrace[i], wantTrace[i])
					}
				}
			}
		})
	}
}

// TestRangeBankDetectionRules pins the opt-in rules: range dispatch is
// selected iff every protocol reports the same bank at its own index;
// any defect silently falls back to per-node dispatch.
func TestRangeBankDetectionRules(t *testing.T) {
	mk := func(banked bool) []Protocol {
		protos, _ := mkBankedSet(8, 3, rng.New(1), banked)
		return protos
	}
	if detectRangeBank(mk(true)) == nil {
		t.Error("uniform bank not detected")
	}
	if detectRangeBank(mk(false)) != nil {
		t.Error("nil banks selected range dispatch")
	}
	if detectRangeBank(nil) != nil {
		t.Error("empty set selected range dispatch")
	}

	// One node that is not a RangeNode at all.
	mixed := mk(true)
	mixed[3] = &randomProto{r: rng.New(2), c: 3, slots: 10}
	if detectRangeBank(mixed) != nil {
		t.Error("foreign protocol in the set selected range dispatch")
	}

	// A view at the wrong index.
	swapped := mk(true)
	swapped[2], swapped[5] = swapped[5], swapped[2]
	if detectRangeBank(swapped) != nil {
		t.Error("wrong-index view selected range dispatch")
	}

	// Two banks split over one protocol set.
	left, _ := mkBankedSet(4, 3, rng.New(3), true)
	right, _ := mkBankedSet(4, 3, rng.New(4), true)
	split := append(append([]Protocol{}, left...), right...)
	if detectRangeBank(split) != nil {
		t.Error("split banks selected range dispatch")
	}
}

// hotBankedProto is hotProto behind a bank: the zero-allocation
// workload for the range path's alloc contract.
type hotBankedProto struct {
	hotProto
	bank *hotBank
	idx  int
}

func (p *hotBankedProto) RangeBank() (RangeProtocol, int) { return p.bank, p.idx }

type hotBank struct{ nodes []*hotBankedProto }

func (b *hotBank) ActRange(slot int64, lo, hi int, acts []Action) {
	for u := lo; u < hi; u++ {
		acts[u] = b.nodes[u].Act(slot)
	}
}

func (b *hotBank) ObserveRange(_ int64, lo, hi int, deliveries []Delivery) {
	for u := lo; u < hi; u++ {
		p := b.nodes[u]
		if deliveries[u].From >= 0 {
			p.heard++
		} else {
			p.misses++
		}
		p.slot++
	}
}

// TestEngineRangeDispatchZeroAllocsPerSlot asserts the range path's
// steady state allocates nothing per slot, clear and jammed.
func TestEngineRangeDispatchZeroAllocsPerSlot(t *testing.T) {
	for _, tc := range []struct {
		name string
		jam  Jammer
	}{
		{"clear", nil},
		{"jammed", parityJammer{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n, c = 24, 3
			nw := allocNetwork(t, n, c, tc.jam)
			bank := &hotBank{nodes: make([]*hotBankedProto, n)}
			protos := make([]Protocol, n)
			for u := 0; u < n; u++ {
				bank.nodes[u] = &hotBankedProto{hotProto: hotProto{id: u, c: c, frame: u}, bank: bank, idx: u}
				protos[u] = bank.nodes[u]
			}
			e, err := NewEngine(nw, protos)
			if err != nil {
				t.Fatal(err)
			}
			if !e.RangeDispatch() {
				t.Fatal("bank not detected")
			}
			target := int64(0)
			step := func() {
				target += 50
				e.Run(target)
			}
			step() // warm up scratch growth
			if avg := testing.AllocsPerRun(20, step); avg != 0 {
				t.Errorf("range path allocates %.2f/50 slots in steady state, want 0", avg)
			}
			if st := e.Stats(); st.Deliveries == 0 || st.Collisions == 0 {
				t.Fatalf("workload did not exercise delivery+collision paths: %+v", st)
			}
		})
	}
}

// TestBatchEngineDynamicMatchesSoloEngines extends the batch engine's
// replica-equivalence guarantee to dynamic topologies: a batch mixing
// static and dynamic replicas (per-replica churn + flap feeds, one
// replica jammed) must produce byte-identical stats — including the
// topology counters — traces and protocol outcomes to running each
// replica alone on a sequential Engine with the same feed script.
func TestBatchEngineDynamicMatchesSoloEngines(t *testing.T) {
	g, a := rangedFixture(t)
	const n, c, b, slots = 24, 5, 4, 400
	mkFeed := func(r int) TopologyFeed {
		if r == 0 {
			return nil // one static replica in the mix
		}
		return churnFlapFeed(g, 0xBEEF+uint64(r))
	}
	mkJam := func(r int) Jammer {
		if r == 2 {
			return parityJammer{}
		}
		return nil
	}

	reps := make([]Replica, b)
	batchTraces := make([][]traceEvent, b)
	batchViews := make([][]*bankedProto, b)
	for r := range reps {
		protos, views := mkBankedSet(n, c, rng.New(100+uint64(r)), false)
		batchViews[r] = views
		reps[r] = Replica{
			Protocols: protos,
			Jammer:    mkJam(r),
			Trace:     traceRecorder(&batchTraces[r]),
			Topology:  mkFeed(r),
		}
	}
	be, err := NewBatchEngine(g, a, reps)
	if err != nil {
		t.Fatal(err)
	}
	batchStats := be.Run(slots)

	sawDynamics := false
	for r := 0; r < b; r++ {
		protos, views := mkBankedSet(n, c, rng.New(100+uint64(r)), false)
		var soloTrace []traceEvent
		nw := &Network{Graph: g, Assign: a, Jammer: mkJam(r), Trace: traceRecorder(&soloTrace), Topology: mkFeed(r)}
		e, err := NewEngine(nw, protos)
		if err != nil {
			t.Fatal(err)
		}
		soloStats := e.Run(slots)
		if soloStats.DownSlots > 0 {
			sawDynamics = true
		}
		if batchStats[r] != soloStats {
			t.Errorf("replica %d stats:\n batch %+v\n solo  %+v", r, batchStats[r], soloStats)
		}
		if len(batchTraces[r]) != len(soloTrace) {
			t.Fatalf("replica %d: %d batch trace events, %d solo", r, len(batchTraces[r]), len(soloTrace))
		}
		for i := range soloTrace {
			if batchTraces[r][i] != soloTrace[i] {
				t.Fatalf("replica %d trace event %d: batch %+v, solo %+v", r, i, batchTraces[r][i], soloTrace[i])
			}
		}
		for u := range views {
			if batchViews[r][u].fingerprint() != views[u].fingerprint() {
				t.Fatalf("replica %d node %d observations diverged", r, u)
			}
		}
	}
	if !sawDynamics {
		t.Fatal("no replica saw down-node slots; fixture too tame")
	}
}

// TestBatchEngineRangeMatchesPerNode: banked replicas (range
// dispatch) inside a batch — static and dynamic — are byte-identical
// to the same replicas on per-node dispatch.
func TestBatchEngineRangeMatchesPerNode(t *testing.T) {
	g, a := rangedFixture(t)
	const n, c, b, slots = 24, 5, 3, 400
	mkFeed := func(r int) TopologyFeed {
		if r == 0 {
			return nil
		}
		return churnFlapFeed(g, 0xCAFE+uint64(r))
	}
	run := func(banked bool) ([]Stats, []string, [][]traceEvent) {
		reps := make([]Replica, b)
		traces := make([][]traceEvent, b)
		views := make([][]*bankedProto, b)
		for r := range reps {
			protos, vs := mkBankedSet(n, c, rng.New(200+uint64(r)), banked)
			views[r] = vs
			reps[r] = Replica{Protocols: protos, Trace: traceRecorder(&traces[r]), Topology: mkFeed(r)}
		}
		be, err := NewBatchEngine(g, a, reps)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < b; r++ {
			if be.RangeDispatch(r) != banked {
				t.Fatalf("replica %d: banked=%v but RangeDispatch=%v", r, banked, be.RangeDispatch(r))
			}
		}
		stats := be.Run(slots)
		fps := make([]string, b)
		for r := range views {
			for _, v := range views[r] {
				fps[r] += v.fingerprint()
			}
		}
		return stats, fps, traces
	}
	wantStats, wantFPs, wantTraces := run(false)
	gotStats, gotFPs, gotTraces := run(true)
	for r := 0; r < b; r++ {
		if gotStats[r] != wantStats[r] {
			t.Errorf("replica %d stats:\n range    %+v\n per-node %+v", r, gotStats[r], wantStats[r])
		}
		if gotFPs[r] != wantFPs[r] {
			t.Errorf("replica %d observations diverged", r)
		}
		if len(gotTraces[r]) != len(wantTraces[r]) {
			t.Fatalf("replica %d: %d range trace events, %d per-node", r, len(gotTraces[r]), len(wantTraces[r]))
		}
		for i := range wantTraces[r] {
			if gotTraces[r][i] != wantTraces[r][i] {
				t.Fatalf("replica %d trace event %d: range %+v, per-node %+v", r, i, gotTraces[r][i], wantTraces[r][i])
			}
		}
	}
}
