package radio

import (
	"fmt"

	"crn/internal/bitset"
)

// This file defines the optional batch-aware protocol ABI: a protocol
// set backed by a shared "bank" can have its Act and Observe calls
// dispatched over whole node ranges instead of one interface call per
// node per slot. The per-node Protocol interface costs two virtual
// calls per node-slot (~1.5µs per 64-node slot, see
// BenchmarkProtocolInterfaceFloor), which dominates once the slot
// kernel itself is vectorized; a RangeProtocol amortizes that dispatch
// over a whole range with a single call, letting the implementation
// run tight loops over flat per-node state.
//
// # Detection rules
//
// The ABI is opt-in and detected per run: at construction the engine
// probes every protocol for RangeNode. Range dispatch is used iff
// every node's protocol reports the same (pointer-comparable) bank and
// its own node index within it; any mismatch — a node that does not
// implement RangeNode, a nil bank, a foreign bank, a wrong index —
// silently falls back to per-node Act/Observe dispatch. Done, and the
// optional FixedSchedule bound, remain per-node interface calls: they
// are off the hot path (refreshDone is amortized by FixedSchedule).
//
// # Range semantics
//
// The engine calls ActRange/ObserveRange over maximal runs of live
// nodes, in ascending node order within a slot, so a done or down
// node's machine is never stepped — exactly the per-node contract. The
// slices are indexed by absolute node id (lo and hi delimit the valid
// window). A bank must behave exactly as if Act(slot) and
// Observe(slot, ·) had been invoked per node in ascending order;
// under RunParallel disjoint ranges of one slot are dispatched
// concurrently, so per-node state must not alias across nodes and any
// bank-wide state must be read-only during a slot.

// Delivery is one node's resolved slot outcome on the range ABI: the
// broadcaster heard (exactly one broadcasting neighbor on the node's
// channel), or From < 0 for everything a per-node Observe reports as
// nil — silence, collision, jam, or a non-listening action. Data is
// only valid during the ObserveRange call (the engine reuses the
// backing storage across slots), mirroring the Message contract.
type Delivery struct {
	From NodeID
	Data any
}

// RangeProtocol is the batch-aware protocol ABI. ActRange fills
// acts[u] for every u in [lo, hi); ObserveRange consumes
// deliveries[u] for every u in [lo, hi). Both must be equivalent to
// the per-node calls in ascending node order (see the file comment for
// the concurrency contract under RunParallel).
type RangeProtocol interface {
	ActRange(slot int64, lo, hi int, acts []Action)
	ObserveRange(slot int64, lo, hi int, deliveries []Delivery)
}

// RangeNode is optionally implemented by per-node protocols that are
// views into a shared RangeProtocol bank. RangeBank returns the bank
// and the node's index within it; a nil bank opts out (per-node
// dispatch). The bank's dynamic type must be pointer-comparable.
type RangeNode interface {
	RangeBank() (RangeProtocol, int)
}

// detectRangeBank returns the shared bank iff every protocol is a
// RangeNode view into the same bank at its own index; nil means
// per-node dispatch.
func detectRangeBank(protocols []Protocol) RangeProtocol {
	if len(protocols) == 0 {
		return nil
	}
	rn, ok := protocols[0].(RangeNode)
	if !ok {
		return nil
	}
	bank, idx := rn.RangeBank()
	if bank == nil || idx != 0 {
		return nil
	}
	for u := 1; u < len(protocols); u++ {
		rn, ok := protocols[u].(RangeNode)
		if !ok {
			return nil
		}
		b, i := rn.RangeBank()
		if b != bank || i != u {
			return nil
		}
	}
	return bank
}

// RangeDispatch reports whether the engine selected the batch-aware
// range ABI for this run (every protocol is a RangeNode view into one
// shared bank). Diagnostic only — both dispatch modes are
// byte-identical.
func (e *Engine) RangeDispatch() bool { return e.bank != nil }

// RangeDispatch reports whether replica r runs on the batch-aware
// range ABI. Diagnostic only.
func (e *BatchEngine) RangeDispatch(r int) bool { return e.banks[r] != nil }

// allLive reports whether every node is guaranteed live this slot: no
// topology feed (so nothing is ever down) and no protocol done yet.
// The range phases use it to skip run detection and per-node state
// checks — on a static engine this is the whole pre-completion
// lifetime of a run, i.e. the hot path.
func (e *Engine) allLive() bool { return e.topo == nil && e.nDone == 0 }

// collectRange is the collect phase over [lo, hi) in range-dispatch
// mode: one ActRange per maximal run of live nodes fills e.acts, and
// the run's actions are folded into the SoA hot state right after the
// call, while they are still cache-hot. The fold stays out of the
// bank's own loop so the ABI implementation remains a tight pass over
// flat per-node state.
//
// The fold also classifies every node: it counts live idle/broadcast/
// listen nodes (and down nodes), appends listeners to e.listenBuf at
// offset lo, and stashes the four counts at e.segStats[4*lo:] for
// resolveRange, which then visits only the listeners instead of
// rescanning every node's kind. State cannot change between the two
// phases (applyTopology and refreshDone run outside them), so the
// collect-time classification is exactly what resolve would recompute.
// An invalid action kind panics here rather than in resolve; the
// message is the same.
func (e *Engine) collectRange(lo, hi int, buf []int32) []int32 {
	state := e.state
	kind := e.kind
	acts := e.acts
	slot := e.slot
	assign := e.nw.Assign
	data := e.data
	globalCh := e.globalCh
	listenBuf := e.listenBuf
	var idles, bcasts, listens, downs int64
	if e.allLive() {
		// One run, no state loads: [lo, hi) is live end to end. The
		// flat label table replaces Global's per-call guards with one
		// validity compare (falling back to Global for the loud
		// out-of-range panic).
		e.bank.ActRange(slot, lo, hi, acts)
		flat, fc := assign.Flat()
		if flat != nil {
			for v := lo; v < hi; v++ {
				// Field loads through a pointer, not a struct copy:
				// the Idle case then touches one byte of the 32-byte
				// Action instead of copying all of it.
				a := &acts[v]
				k := a.Kind
				kind[v] = k
				switch k {
				case Idle:
					idles++
				case Broadcast:
					bcasts++
					if uint(a.Ch) < uint(fc) {
						globalCh[v] = flat[v*fc+a.Ch]
					} else {
						globalCh[v] = assign.Global(v, a.Ch)
					}
					data[v] = a.Data
					buf = append(buf, int32(v))
				case Listen:
					if uint(a.Ch) < uint(fc) {
						globalCh[v] = flat[v*fc+a.Ch]
					} else {
						globalCh[v] = assign.Global(v, a.Ch)
					}
					listenBuf[lo+int(listens)] = int32(v)
					listens++
				default:
					panic(fmt.Sprintf("radio: node %d returned invalid action kind %d", v, k))
				}
			}
		} else {
			for v := lo; v < hi; v++ {
				a := &acts[v]
				k := a.Kind
				kind[v] = k
				switch k {
				case Idle:
					idles++
					continue
				case Broadcast:
					bcasts++
					data[v] = a.Data
					buf = append(buf, int32(v))
				case Listen:
					listenBuf[lo+int(listens)] = int32(v)
					listens++
				default:
					panic(fmt.Sprintf("radio: node %d returned invalid action kind %d", v, k))
				}
				globalCh[v] = assign.Global(v, a.Ch)
			}
		}
		base := 4 * lo
		e.segStats[base] = idles
		e.segStats[base+1] = bcasts
		e.segStats[base+2] = listens
		e.segStats[base+3] = downs
		return buf
	}
	for u := lo; u < hi; {
		if state[u] != nodeLive {
			if state[u] == nodeDown {
				downs++
			}
			kind[u] = Idle
			u++
			continue
		}
		runLo := u
		for u < hi && state[u] == nodeLive {
			u++
		}
		e.bank.ActRange(slot, runLo, u, acts)
		for v := runLo; v < u; v++ {
			a := &acts[v]
			k := a.Kind
			kind[v] = k
			switch k {
			case Idle:
				idles++
				continue
			case Broadcast:
				bcasts++
				data[v] = a.Data
				buf = append(buf, int32(v))
			case Listen:
				listenBuf[lo+int(listens)] = int32(v)
				listens++
			default:
				panic(fmt.Sprintf("radio: node %d returned invalid action kind %d", v, k))
			}
			globalCh[v] = assign.Global(v, a.Ch)
		}
	}
	base := 4 * lo
	e.segStats[base] = idles
	e.segStats[base+1] = bcasts
	e.segStats[base+2] = listens
	e.segStats[base+3] = downs
	return buf
}

// resolveRange is the resolve phase over [lo, hi) in range-dispatch
// mode: the same per-listener resolution as resolveAndObserve, writing
// outcomes into e.deliv instead of calling Observe per node, followed
// by one ObserveRange per maximal run of live nodes. Protocol state is
// node-private (see the RangeProtocol contract), so deferring the
// observes to the end of the range cannot change any resolution — the
// channel index is immutable during the phase — and traces still fire
// per delivery in ascending node order, byte-identical to per-node
// dispatch.
//
// e.deliv holds From=-1 for every node outside this phase (set up at
// construction), so only actual deliveries are written before the
// ObserveRange calls — and only those entries are reset to -1 (and
// nil Data) afterwards. Most node-slots hear nothing; paying one
// 24-byte store per delivery instead of one per live node is a large
// share of the range path's speedup over per-node dispatch.
func (e *Engine) resolveRange(lo, hi int, st *Stats, scratch *Message) {
	g := e.g
	jam := e.nw.Jammer
	dynamic := e.topo != nil
	slot := e.slot
	state := e.state
	kind := e.kind
	data := e.data
	globalCh := e.globalCh
	chCount := e.chCount
	chHead := e.chHead
	bcastNext := e.bcastNext
	nbr := e.nbr
	rowOf := e.rowOf
	rowBuf := e.rowBuf
	stride := e.rowStride
	deliv := e.deliv
	delivIdx := e.delivIdx
	listenBuf := e.listenBuf
	trace := e.trace
	live := e.allLive()
	base := 4 * lo
	idles := e.segStats[base]
	bcasts := e.segStats[base+1]
	nListen := e.segStats[base+2]
	downs := e.segStats[base+3]
	var deliveries, collisions, jammedL, plosses int64
	// collectRange already classified every node in [lo, hi); only the
	// listeners it recorded need resolution. The first loop is the
	// specialized steady-state body — no jammer, static topology, no
	// trace — so none of those per-listener flag checks sit on the hot
	// path; anything else drops to the general loop below, which is the
	// same resolution with the full checks.
	if jam == nil && !dynamic && trace == nil {
		for i := lo; i < lo+int(nListen); i++ {
			u := int(listenBuf[i])
			ch := globalCh[u]
			cnt := chCount[ch]
			if cnt == 0 {
				continue
			}
			talkers := 0
			var from int32 = -1
			if ri := rowOf[ch]; ri >= 0 {
				row := rowBuf[int(ri)*stride : (int(ri)+1)*stride]
				c, sole := bitset.AndCountSole(nbr.Row(u), row)
				talkers = c
				from = int32(sole)
			} else if nbrs := g.Neighbors(u); int(cnt) <= len(nbrs) {
				if nbr != nil {
					for v := chHead[ch]; v >= 0; v = bcastNext[v] {
						if nbr.Get(u, int(v)) {
							talkers++
							if talkers > 1 {
								break
							}
							from = v
						}
					}
				} else {
					for v := chHead[ch]; v >= 0; v = bcastNext[v] {
						if g.Adjacent(u, int(v)) {
							talkers++
							if talkers > 1 {
								break
							}
							from = v
						}
					}
				}
			} else {
				for _, v := range nbrs {
					if kind[v] == Broadcast && globalCh[v] == ch {
						talkers++
						if talkers > 1 {
							break
						}
						from = v
					}
				}
			}
			switch {
			case talkers == 1:
				delivIdx[lo+int(deliveries)] = int32(u)
				deliveries++
				deliv[u] = Delivery{From: NodeID(from), Data: data[from]}
			case talkers > 1:
				collisions++
			}
		}
		goto observe
	}
	for i := lo; i < lo+int(nListen); i++ {
		u := int(listenBuf[i])
		ch := globalCh[u]
		if jam != nil && jam.Jammed(slot, ch) {
			jammedL++
			continue
		}
		cnt := chCount[ch]
		if cnt == 0 {
			continue
		}
		talkers := 0
		var from int32 = -1
		var row []uint64
		if ri := rowOf[ch]; ri >= 0 {
			row = rowBuf[int(ri)*stride : (int(ri)+1)*stride]
			c, sole := bitset.AndCountSole(nbr.Row(u), row)
			talkers = c
			from = int32(sole)
		} else if nbrs := g.Neighbors(u); int(cnt) <= len(nbrs) {
			if nbr != nil {
				for v := chHead[ch]; v >= 0; v = bcastNext[v] {
					if nbr.Get(u, int(v)) {
						talkers++
						if talkers > 1 {
							break
						}
						from = v
					}
				}
			} else {
				for v := chHead[ch]; v >= 0; v = bcastNext[v] {
					if g.Adjacent(u, int(v)) {
						talkers++
						if talkers > 1 {
							break
						}
						from = v
					}
				}
			}
		} else {
			for _, v := range nbrs {
				if kind[v] == Broadcast && globalCh[v] == ch {
					talkers++
					if talkers > 1 {
						break
					}
					from = v
				}
			}
		}
		if dynamic && !e.sameAsBase(u) {
			baseTalkers := 0
			var baseFrom int32 = -1
			if row != nil && e.baseNbr != nil {
				baseTalkers, baseFrom = e.baseCounterfactual(u, row)
			} else {
				for v := chHead[ch]; v >= 0; v = bcastNext[v] {
					if e.baseAdjacent(u, v) {
						baseTalkers++
						if baseTalkers > 1 {
							break
						}
						baseFrom = v
					}
				}
			}
			if baseTalkers == 1 && (talkers != 1 || from != baseFrom) {
				plosses++
			}
		}
		switch {
		case talkers == 1:
			delivIdx[lo+int(deliveries)] = int32(u)
			deliveries++
			deliv[u] = Delivery{From: NodeID(from), Data: data[from]}
			if trace != nil {
				scratch.From = NodeID(from)
				scratch.Data = data[from]
				trace(slot, NodeID(u), ch, scratch)
			}
		case talkers > 1:
			collisions++
		}
	}
observe:
	if live {
		e.bank.ObserveRange(slot, lo, hi, deliv)
	} else {
		for u := lo; u < hi; {
			if state[u] != nodeLive {
				u++
				continue
			}
			runLo := u
			for u < hi && state[u] == nodeLive {
				u++
			}
			e.bank.ObserveRange(slot, runLo, u, deliv)
		}
	}
	// Restore the From=-1 invariant (and drop payload references) on
	// exactly the entries this segment delivered into.
	for i := lo; i < lo+int(deliveries); i++ {
		deliv[delivIdx[i]] = Delivery{From: -1}
	}
	st.Idles += idles
	st.Broadcasts += bcasts
	st.Listens += nListen
	st.Deliveries += deliveries
	st.Collisions += collisions
	st.JammedListens += jammedL
	st.DownSlots += downs
	st.PartitionLosses += plosses
}
