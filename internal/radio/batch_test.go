package radio

import (
	"fmt"
	"testing"

	"crn/internal/chanassign"
	"crn/internal/graph"
	"crn/internal/rng"
)

// This file locks down the batch engine's one guarantee: every replica
// of a BatchEngine produces byte-identical outcomes — deliveries,
// traces, stats, protocol end states — to running that replica alone
// on a sequential Engine. The sweep facade's batched path is sound
// exactly as far as this holds.

// reactiveTestJammer is a stateful ActivitySink jammer: it jams the
// busiest channel of the previous slot. Each replica must receive its
// own activity feed for this to stay deterministic per replica.
type reactiveTestJammer struct {
	target int32
}

func (j *reactiveTestJammer) Jammed(_ int64, ch int32) bool { return ch == j.target }

func (j *reactiveTestJammer) ObserveActivity(_ int64, byChannel []int) {
	best, bestCount := int32(-1), 0
	for ch, c := range byChannel {
		if c > bestCount {
			best, bestCount = int32(ch), c
		}
	}
	j.target = best
}

type traceEvent struct {
	slot     int64
	listener NodeID
	ch       int32
	from     NodeID
}

func traceRecorder(dst *[]traceEvent) TraceFunc {
	return func(slot int64, listener NodeID, ch int32, msg *Message) {
		*dst = append(*dst, traceEvent{slot, listener, ch, msg.From})
	}
}

// batchFixture builds the shared network plus per-replica protocol
// sets. Replica r's protocols are seeded from master seed 1000+r and
// given staggered lifetimes so replicas finish at different slots,
// exercising the freeze logic.
func batchFixture(t *testing.T, b int, jam bool) (*graph.Graph, *chanassign.Assignment, func(r int) []Protocol, func() Jammer) {
	t.Helper()
	const n = 24
	g, err := graph.GNP(n, 0.3, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	a, err := chanassign.SharedPool(n, 6, 2, 14, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	mkProtos := func(r int) []Protocol {
		master := rng.New(1000 + uint64(r))
		protos := make([]Protocol, n)
		for u := range protos {
			protos[u] = &randomProto{r: master.Split(uint64(u)), c: 6, slots: 120 + 30*r}
		}
		return protos
	}
	mkJammer := func() Jammer {
		if !jam {
			return nil
		}
		return &reactiveTestJammer{target: -1}
	}
	return g, a, mkProtos, mkJammer
}

func TestBatchEngineMatchesSoloEngines(t *testing.T) {
	const b = 5
	for _, jam := range []bool{false, true} {
		t.Run(fmt.Sprintf("jam=%v", jam), func(t *testing.T) {
			g, a, mkProtos, mkJammer := batchFixture(t, b, jam)

			// Batched run.
			reps := make([]Replica, b)
			batchTraces := make([][]traceEvent, b)
			batchProtos := make([][]Protocol, b)
			for r := range reps {
				batchProtos[r] = mkProtos(r)
				reps[r] = Replica{
					Protocols: batchProtos[r],
					Jammer:    mkJammer(),
					Trace:     traceRecorder(&batchTraces[r]),
				}
			}
			be, err := NewBatchEngine(g, a, reps)
			if err != nil {
				t.Fatal(err)
			}
			batchStats := be.Run(10000)

			// Solo reference runs, one Engine per replica.
			for r := 0; r < b; r++ {
				protos := mkProtos(r)
				var soloTrace []traceEvent
				nw := &Network{Graph: g, Assign: a, Jammer: mkJammer(), Trace: traceRecorder(&soloTrace)}
				e, err := NewEngine(nw, protos)
				if err != nil {
					t.Fatal(err)
				}
				soloStats := e.Run(10000)

				if batchStats[r] != soloStats {
					t.Errorf("replica %d stats:\n batch %+v\n solo  %+v", r, batchStats[r], soloStats)
				}
				if len(batchTraces[r]) != len(soloTrace) {
					t.Fatalf("replica %d: %d batch trace events, %d solo", r, len(batchTraces[r]), len(soloTrace))
				}
				for i := range soloTrace {
					if batchTraces[r][i] != soloTrace[i] {
						t.Fatalf("replica %d trace event %d: batch %+v, solo %+v", r, i, batchTraces[r][i], soloTrace[i])
					}
				}
				for u := range protos {
					bh := batchProtos[r][u].(*randomProto).heard
					sh := protos[u].(*randomProto).heard
					if len(bh) != len(sh) {
						t.Fatalf("replica %d node %d: heard %d vs %d", r, u, len(bh), len(sh))
					}
					for i := range sh {
						if bh[i] != sh[i] {
							t.Fatalf("replica %d node %d hear %d: batch From=%d, solo From=%d", r, u, i, bh[i], sh[i])
						}
					}
				}
			}
		})
	}
}

// TestBatchEngineStopPredicate checks the per-replica stop path against
// Engine.RunUntil with the equivalent predicate.
func TestBatchEngineStopPredicate(t *testing.T) {
	const b = 3
	g, a, mkProtos, _ := batchFixture(t, b, false)
	stopAt := func(r int) int64 { return int64(40 + 25*r) }

	reps := make([]Replica, b)
	for r := range reps {
		reps[r] = Replica{Protocols: mkProtos(r)}
	}
	be, err := NewBatchEngine(g, a, reps)
	if err != nil {
		t.Fatal(err)
	}
	batchStats, err := be.RunCtx(nil, 10000, func(r int, slot int64) bool { return slot >= stopAt(r) })
	if err != nil {
		t.Fatal(err)
	}

	for r := 0; r < b; r++ {
		e, err := NewEngine(&Network{Graph: g, Assign: a}, mkProtos(r))
		if err != nil {
			t.Fatal(err)
		}
		soloStats := e.RunUntil(10000, func(slot int64) bool { return slot >= stopAt(r) })
		if batchStats[r] != soloStats {
			t.Errorf("replica %d stats:\n batch %+v\n solo  %+v", r, batchStats[r], soloStats)
		}
		if batchStats[r].Slots != stopAt(r) {
			t.Errorf("replica %d ran %d slots, want stop at %d", r, batchStats[r].Slots, stopAt(r))
		}
	}
}

// TestBatchEngineValidation covers constructor error paths.
func TestBatchEngineValidation(t *testing.T) {
	g, a, mkProtos, _ := batchFixture(t, 1, false)
	if _, err := NewBatchEngine(nil, a, []Replica{{Protocols: mkProtos(0)}}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewBatchEngine(g, a, nil); err == nil {
		t.Error("empty replica set accepted")
	}
	if _, err := NewBatchEngine(g, a, []Replica{{Protocols: mkProtos(0)[:3]}}); err == nil {
		t.Error("short protocol set accepted")
	}
}

// TestBatchEngineSteadyStateAllocs asserts the fused slot loop
// allocates nothing once running (mirroring the sequential engine's
// zero-alloc guarantee).
func TestBatchEngineSteadyStateAllocs(t *testing.T) {
	const b = 4
	g, a, _, _ := batchFixture(t, b, false)
	n := g.N()
	reps := make([]Replica, b)
	for r := range reps {
		protos := make([]Protocol, n)
		for u := range protos {
			protos[u] = &hotProto{id: u, c: 6, frame: u}
		}
		reps[r] = Replica{Protocols: protos}
	}
	be, err := NewBatchEngine(g, a, reps)
	if err != nil {
		t.Fatal(err)
	}
	be.Run(64) // warm up scratch
	allocs := testing.AllocsPerRun(50, func() {
		be.Run(be.Slot() + 8)
	})
	if allocs != 0 {
		t.Errorf("steady-state batch slots allocate %.1f times per run, want 0", allocs)
	}
}
