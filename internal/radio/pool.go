package radio

import "sync"

// This file implements the persistent worker pool behind RunParallel:
// a fixed set of goroutines, spawned once per run, that execute the
// parallel phases of every slot. The previous engine spawned
// 2×workers goroutines and allocated a []Stats every slot; the pool
// replaces that with barrier-synchronized phase dispatch over
// long-lived workers, so steady-state slots allocate nothing.
//
// Lifecycle: newPool spawns the workers, each owning a fixed node
// range [lo, hi), a private Stats block, and a private Message
// scratch. The coordinator drives each slot by broadcasting a phase
// command (collect or resolve) to every worker and waiting on a
// WaitGroup barrier; between the barriers it runs the sequential
// index/activity/done bookkeeping, so workers never race on shared
// engine state. drain folds the per-worker counters into the engine's
// Stats (workers are quiescent whenever the coordinator runs), and
// stop closes the command channels, letting the goroutines exit.
//
// Memory model: every cross-worker read (e.g. a resolver reading a
// broadcaster's Action collected by another worker) is ordered by the
// barrier — worker wg.Done happens-before the coordinator's wg.Wait,
// which happens-before the next phase's channel send.

// phase is a pool command: one parallel stage of a slot.
type phase uint8

const (
	phaseCollect phase = iota + 1
	phaseResolve
)

// pool is the persistent worker pool for one RunParallelCtx call.
type pool struct {
	cmds  []chan phase // one per worker; closing stops the worker
	wg    sync.WaitGroup
	stats []Stats // per-worker counters, drained by the coordinator
	// segs[w] is worker w's collect-phase broadcaster buffer; the
	// segments concatenate in ascending node order, exactly the shape
	// Engine.buildIndex consumes.
	segs [][]int32
}

// newPool spawns workers goroutines over contiguous node ranges.
// Callers guarantee 2 <= workers <= n.
func newPool(e *Engine, workers int) *pool {
	n := len(e.protocols)
	p := &pool{
		cmds:  make([]chan phase, workers),
		stats: make([]Stats, workers),
		segs:  make([][]int32, workers),
	}
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo > hi {
			lo = hi
		}
		p.segs[w] = make([]int32, 0, hi-lo)
		cmd := make(chan phase, 1)
		p.cmds[w] = cmd
		go func(w, lo, hi int) {
			var scratch Message
			for ph := range cmd {
				switch ph {
				case phaseCollect:
					p.segs[w] = e.collectActions(lo, hi, p.segs[w][:0])
				case phaseResolve:
					e.resolveAndObserve(lo, hi, &p.stats[w], &scratch)
				}
				p.wg.Done()
			}
		}(w, lo, hi)
	}
	return p
}

// runPhase dispatches one phase to every worker and waits for all of
// them to finish (the barrier). It allocates nothing.
func (p *pool) runPhase(ph phase) {
	p.wg.Add(len(p.cmds))
	for _, cmd := range p.cmds {
		cmd <- ph
	}
	p.wg.Wait()
}

// drain folds the per-worker counters into st and zeroes them. Only
// call between phases (workers quiescent).
func (p *pool) drain(st *Stats) {
	for w := range p.stats {
		st.Accumulate(p.stats[w])
		p.stats[w] = Stats{}
	}
}

// stop shuts the pool down; the workers exit once their command
// channels close. Safe to call once, after the final drain.
func (p *pool) stop() {
	for _, cmd := range p.cmds {
		close(cmd)
	}
}
