package radio

import (
	"testing"
	"testing/quick"

	"crn/internal/chanassign"
	"crn/internal/graph"
	"crn/internal/rng"
)

// TestQuickEngineEquivalence fuzzes random networks, assignments and
// protocol behaviors and requires the sequential and parallel engines
// to agree exactly — the load-bearing guarantee behind using
// RunParallel for sweeps.
func TestQuickEngineEquivalence(t *testing.T) {
	f := func(seed uint64, workersRaw uint8) bool {
		run := func(parallel bool, workers int) ([][]NodeID, Stats) {
			r := rng.New(seed)
			g, err := graph.GNP(12, 0.35, r)
			if err != nil {
				return nil, Stats{}
			}
			a, err := chanassign.SharedPool(12, 4, 1, 8, rng.New(seed+1))
			if err != nil {
				return nil, Stats{}
			}
			nw := &Network{Graph: g, Assign: a}
			master := rng.New(seed + 2)
			protos := make([]Protocol, 12)
			rps := make([]*randomProto, 12)
			for i := range protos {
				rp := &randomProto{r: master.Split(uint64(i)), c: 4, slots: 60}
				rps[i] = rp
				protos[i] = rp
			}
			e, err := NewEngine(nw, protos)
			if err != nil {
				return nil, Stats{}
			}
			var st Stats
			if parallel {
				st = e.RunParallel(1000, workers)
			} else {
				st = e.Run(1000)
			}
			out := make([][]NodeID, 12)
			for i, rp := range rps {
				out[i] = rp.heard
			}
			return out, st
		}
		workers := int(workersRaw%6) + 2
		hs, ss := run(false, 0)
		hp, sp := run(true, workers)
		if hs == nil && hp == nil {
			return true // disconnected sample, skipped
		}
		if ss != sp {
			return false
		}
		for i := range hs {
			if len(hs[i]) != len(hp[i]) {
				return false
			}
			for j := range hs[i] {
				if hs[i][j] != hp[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickConservationLaws fuzzes runs and checks engine accounting
// invariants: action counts sum to node-slots, and deliveries never
// exceed listens.
func TestQuickConservationLaws(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		g, err := graph.GNP(10, 0.4, r)
		if err != nil {
			return true
		}
		a, err := chanassign.Identical(10, 3, rng.New(seed+1))
		if err != nil {
			return false
		}
		master := rng.New(seed + 2)
		protos := make([]Protocol, 10)
		for i := range protos {
			protos[i] = &randomProto{r: master.Split(uint64(i)), c: 3, slots: 40}
		}
		e, err := NewEngine(&Network{Graph: g, Assign: a}, protos)
		if err != nil {
			return false
		}
		st := e.Run(1000)
		nodeSlots := int64(10) * st.Slots
		if st.Broadcasts+st.Listens+st.Idles != nodeSlots {
			return false
		}
		if st.Deliveries+st.Collisions > st.Listens {
			return false
		}
		return st.Completed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
