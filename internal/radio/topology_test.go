package radio

import (
	"testing"

	"crn/internal/chanassign"
	"crn/internal/graph"
	"crn/internal/rng"
)

// scriptFeed is a deterministic scripted TopologyFeed for engine
// tests: per-slot edge and up/down mutations.
type scriptFeed struct {
	steps func(slot int64, mut TopologyMutator)
}

func (f *scriptFeed) Step(slot int64, mut TopologyMutator) { f.steps(slot, mut) }

// pairProto broadcasts from node 0 every slot on channel 0 and
// listens on every other node, counting per-node deliveries.
type pairProto struct {
	id    int
	heard int64
}

func (p *pairProto) Act(_ int64) Action {
	if p.id == 0 {
		return Action{Kind: Broadcast, Ch: 0, Data: "x"}
	}
	return Action{Kind: Listen, Ch: 0}
}

func (p *pairProto) Observe(_ int64, msg *Message) {
	if msg != nil {
		p.heard++
	}
}

func (p *pairProto) Done() bool { return false }

func topoNetwork(t *testing.T, feed TopologyFeed) (*Network, []*pairProto, []Protocol) {
	t.Helper()
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.Finalize()
	a, err := chanassign.Identical(3, 1, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	pps := []*pairProto{{id: 0}, {id: 1}, {id: 2}}
	protos := []Protocol{pps[0], pps[1], pps[2]}
	return &Network{Graph: g, Assign: a, Topology: feed}, pps, protos
}

// TestTopologyFeedEdgeRemoval: removing the only edge to the
// broadcaster silences the listener from that slot on, and the
// partition-loss counter accounts every silenced delivery.
func TestTopologyFeedEdgeRemoval(t *testing.T) {
	const cut = 10
	feed := &scriptFeed{steps: func(slot int64, mut TopologyMutator) {
		if slot == cut {
			if !mut.RemoveEdge(0, 1) {
				t.Fatal("RemoveEdge(0,1) was a no-op")
			}
		}
	}}
	nw, pps, protos := topoNetwork(t, feed)
	e, err := NewEngine(nw, protos)
	if err != nil {
		t.Fatal(err)
	}
	st := e.Run(30)
	if pps[1].heard != cut {
		t.Errorf("node 1 heard %d deliveries, want %d (edge cut at slot %d)", pps[1].heard, cut, cut)
	}
	if st.EdgeRemoves != 1 || st.EdgeAdds != 0 {
		t.Errorf("edge counters = +%d/-%d, want +0/-1", st.EdgeAdds, st.EdgeRemoves)
	}
	// Node 1 keeps listening on a now-silent channel; the base
	// topology would have delivered each of those 20 slots.
	if st.PartitionLosses != 30-cut {
		t.Errorf("PartitionLosses = %d, want %d", st.PartitionLosses, 30-cut)
	}
	if nw.Graph.M() != 2 {
		t.Errorf("base graph mutated: M = %d, want 2", nw.Graph.M())
	}
}

// TestTopologyFeedEdgeAddition: an added edge starts delivering, and
// a delivery from a non-base neighbor is not a partition loss.
func TestTopologyFeedEdgeAddition(t *testing.T) {
	const join = 5
	feed := &scriptFeed{steps: func(slot int64, mut TopologyMutator) {
		if slot == join {
			if !mut.AddEdge(0, 2) {
				t.Fatal("AddEdge(0,2) was a no-op")
			}
			if !mut.HasEdge(0, 2) {
				t.Fatal("HasEdge(0,2) false after AddEdge")
			}
		}
	}}
	nw, pps, protos := topoNetwork(t, feed)
	e, err := NewEngine(nw, protos)
	if err != nil {
		t.Fatal(err)
	}
	st := e.Run(20)
	if pps[2].heard != 20-join {
		t.Errorf("node 2 heard %d deliveries, want %d (edge added at slot %d)", pps[2].heard, 20-join, join)
	}
	if st.EdgeAdds != 1 {
		t.Errorf("EdgeAdds = %d, want 1", st.EdgeAdds)
	}
	if st.PartitionLosses != 0 {
		t.Errorf("PartitionLosses = %d, want 0 — gained edges lose nothing", st.PartitionLosses)
	}
}

// TestTopologyFeedChurn: a down node neither transmits nor observes,
// and resumes its protocol's local clock on rejoin.
type clockProto struct {
	acts, observes int64
}

func (p *clockProto) Act(_ int64) Action {
	p.acts++
	return Action{Kind: Listen, Ch: 0}
}
func (p *clockProto) Observe(_ int64, _ *Message) { p.observes++ }
func (p *clockProto) Done() bool                  { return false }

func TestTopologyFeedChurn(t *testing.T) {
	feed := &scriptFeed{steps: func(slot int64, mut TopologyMutator) {
		switch slot {
		case 4:
			if !mut.SetNodeUp(2, false) {
				t.Fatal("SetNodeUp(2,false) was a no-op")
			}
			if mut.SetNodeUp(2, false) {
				t.Fatal("redundant SetNodeUp reported a change")
			}
		case 9:
			mut.SetNodeUp(2, true)
		}
	}}
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.Finalize()
	a, err := chanassign.Identical(3, 1, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	cp := &clockProto{}
	protos := []Protocol{&clockProto{}, &clockProto{}, cp}
	e, err := NewEngine(&Network{Graph: g, Assign: a, Topology: feed}, protos)
	if err != nil {
		t.Fatal(err)
	}
	st := e.Run(20)
	// Node 2 is down for slots 4..8: 5 slots of its local clock lost.
	if cp.acts != 15 || cp.observes != 15 {
		t.Errorf("down node ran %d acts / %d observes, want 15/15", cp.acts, cp.observes)
	}
	if st.NodeLeaves != 1 || st.NodeJoins != 1 {
		t.Errorf("churn counters joins=%d leaves=%d, want 1/1", st.NodeJoins, st.NodeLeaves)
	}
	if st.DownSlots != 5 {
		t.Errorf("DownSlots = %d, want 5", st.DownSlots)
	}
}

// TestTopologyFeedCrossEngineEquivalence: a feed mixing churn and
// edge flapping produces identical stats and protocol outcomes under
// Run and RunParallel at every worker count — the dynamics analogue
// of the spectrum cross-engine suite.
func TestTopologyFeedCrossEngineEquivalence(t *testing.T) {
	const n, c, slots = 16, 3, 400
	g, err := graph.GNP(n, 0.35, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	a, err := chanassign.Identical(n, c, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	edges := g.Edges()
	mkFeed := func() TopologyFeed {
		r := rng.New(77)
		return &scriptFeed{steps: func(slot int64, mut TopologyMutator) {
			// Deterministic pseudo-random churn + flap per slot.
			u := r.Intn(n)
			if r.Bernoulli(0.1) {
				mut.SetNodeUp(u, !mut.NodeUp(u))
			}
			ei := r.Intn(len(edges))
			if r.Bernoulli(0.2) {
				e := edges[ei]
				if mut.HasEdge(int(e.U), int(e.V)) {
					mut.RemoveEdge(int(e.U), int(e.V))
				} else {
					mut.AddEdge(int(e.U), int(e.V))
				}
			}
		}}
	}
	run := func(workers int) (Stats, string) {
		master := rng.New(9)
		protos := make([]Protocol, n)
		seeks := make([]*seekLike, n)
		for u := 0; u < n; u++ {
			sk := &seekLike{id: NodeID(u), c: c, r: master.Split(uint64(u))}
			seeks[u] = sk
			protos[u] = sk
		}
		nw := &Network{Graph: g, Assign: a, Topology: mkFeed()}
		e, err := NewEngine(nw, protos)
		if err != nil {
			t.Fatal(err)
		}
		var st Stats
		if workers == 0 {
			st = e.Run(slots)
		} else {
			st = e.RunParallel(slots, workers)
		}
		fp := ""
		for _, sk := range seeks {
			fp += sk.fingerprint()
		}
		return st, fp
	}
	wantStats, wantFP := run(0)
	if wantStats.EdgeAdds+wantStats.EdgeRemoves == 0 || wantStats.DownSlots == 0 {
		t.Fatalf("feed applied no dynamics: %+v", wantStats)
	}
	for _, workers := range []int{2, 4, 8} {
		gotStats, gotFP := run(workers)
		if gotStats != wantStats {
			t.Errorf("workers=%d stats = %+v, want %+v", workers, gotStats, wantStats)
		}
		if gotFP != wantFP {
			t.Errorf("workers=%d protocol outcomes diverged", workers)
		}
	}
}

// statefulFeed mimics a persistent dynamics model across engines: it
// takes node 2 down at its third Step and thereafter reconciles that
// state declaratively into whatever mutator it is handed.
type statefulFeed struct {
	steps int
	down  bool
}

func (f *statefulFeed) Step(_ int64, mut TopologyMutator) {
	f.steps++
	if f.steps == 3 {
		f.down = true
	}
	mut.SetNodeUp(2, !f.down)
}

// TestTopologyResyncNotCounted: when a multi-engine pipeline hands
// one feed a second engine, the feed's first-Step reconciliation
// (re-applying its current state over the fresh clone) must not be
// re-counted as churn — Stats reflect model events, once each.
func TestTopologyResyncNotCounted(t *testing.T) {
	feed := &statefulFeed{}
	g := graph.Path(4)
	a, err := chanassign.Identical(4, 1, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *Engine {
		protos := make([]Protocol, 4)
		for i := range protos {
			protos[i] = &clockProto{}
		}
		e, err := NewEngine(&Network{Graph: g, Assign: a, Topology: feed}, protos)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	st1 := mk().Run(6)
	if st1.NodeLeaves != 1 {
		t.Fatalf("stage 1 NodeLeaves = %d, want 1", st1.NodeLeaves)
	}
	// Stage 2: the feed re-establishes "node 2 down" on the fresh
	// engine — real down-slots, but no new churn event.
	st2 := mk().Run(6)
	if st2.NodeLeaves != 0 || st2.NodeJoins != 0 {
		t.Errorf("stage 2 re-counted the resync: joins=%d leaves=%d, want 0/0", st2.NodeJoins, st2.NodeLeaves)
	}
	if st2.DownSlots != 6 {
		t.Errorf("stage 2 DownSlots = %d, want 6 (node stays down)", st2.DownSlots)
	}
}

// TestStaticEngineSkipsDynamicView guards the static fast path: with
// no TopologyFeed installed, the engine must not build the mutable
// graph clone, must keep resolving against the shared base graph, and
// must keep the FixedSchedule Done-poll skip. (The 0 allocs/slot
// contract itself is enforced by the alloc regression tests.)
func TestStaticEngineSkipsDynamicView(t *testing.T) {
	g, err := graph.GNP(12, 0.3, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	a, err := chanassign.Identical(12, 2, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	protos := make([]Protocol, 12)
	for i := range protos {
		protos[i] = &clockProto{}
	}
	e, err := NewEngine(&Network{Graph: g, Assign: a}, protos)
	if err != nil {
		t.Fatal(err)
	}
	if e.dyn != nil || e.topo != nil || e.mut != nil {
		t.Error("static engine built dynamic-topology state")
	}
	if e.g != g {
		t.Error("static engine does not resolve against the shared graph")
	}
	// And the dynamic counterpart flips every one of those.
	feed := &scriptFeed{steps: func(int64, TopologyMutator) {}}
	ed, err := NewEngine(&Network{Graph: g, Assign: a, Topology: feed}, protos)
	if err != nil {
		t.Fatal(err)
	}
	if ed.dyn == nil || ed.g == g || ed.baseG != g {
		t.Error("dynamic engine did not build its private view over the base graph")
	}
}

// seekLike is a small discovery-ish protocol whose outcome
// fingerprints the whole delivery history.
type seekLike struct {
	id    NodeID
	c     int
	r     *rng.Source
	heard []NodeID
	slots int64
}

func (s *seekLike) Act(_ int64) Action {
	s.slots++
	switch s.r.Intn(3) {
	case 0:
		return Action{Kind: Broadcast, Ch: s.r.Intn(s.c), Data: int(s.id)}
	case 1:
		return Action{Kind: Listen, Ch: s.r.Intn(s.c)}
	default:
		return Action{Kind: Idle}
	}
}

func (s *seekLike) Observe(_ int64, msg *Message) {
	if msg != nil {
		s.heard = append(s.heard, msg.From)
	}
}

func (s *seekLike) Done() bool { return false }

func (s *seekLike) fingerprint() string {
	out := ""
	for _, id := range s.heard {
		out += string(rune('A' + int(id)))
	}
	return out + ";"
}
