package radio

import (
	"testing"

	"crn/internal/chanassign"
	"crn/internal/graph"
	"crn/internal/rng"
)

// scriptProto replays a fixed list of actions and records everything it
// observes. Observed messages are copied per the Protocol contract:
// the engine's *Message is only valid during the Observe call.
type scriptProto struct {
	script []Action
	pos    int
	heard  []*Message
}

func (p *scriptProto) Act(_ int64) Action {
	a := p.script[p.pos]
	p.pos++
	return a
}

func (p *scriptProto) Observe(_ int64, msg *Message) {
	if msg == nil {
		p.heard = append(p.heard, nil)
		return
	}
	cp := *msg
	p.heard = append(p.heard, &cp)
}

func (p *scriptProto) Done() bool { return p.pos >= len(p.script) }

// newTestNetwork builds a network where all nodes share all channels
// and local labels equal global labels (identity assignment is a
// random permutation, so we find the local label explicitly).
func newTestNetwork(t *testing.T, g *graph.Graph, c int, seed uint64) *Network {
	t.Helper()
	a, err := chanassign.Identical(g.N(), c, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return &Network{Graph: g, Assign: a}
}

// localFor returns node u's local label for global channel gch.
func localFor(t *testing.T, nw *Network, u int, gch int32) int {
	t.Helper()
	l := nw.Assign.Local(u, gch)
	if l < 0 {
		t.Fatalf("node %d has no local label for global channel %d", u, gch)
	}
	return int(l)
}

func TestSingleBroadcasterDelivers(t *testing.T) {
	g := graph.Path(2)
	nw := newTestNetwork(t, g, 2, 1)
	p0 := &scriptProto{script: []Action{{Kind: Broadcast, Ch: localFor(t, nw, 0, 0), Data: "hello"}}}
	p1 := &scriptProto{script: []Action{{Kind: Listen, Ch: localFor(t, nw, 1, 0)}}}
	e, err := NewEngine(nw, []Protocol{p0, p1})
	if err != nil {
		t.Fatal(err)
	}
	st := e.Run(10)
	if !st.Completed {
		t.Fatal("run did not complete")
	}
	if st.Slots != 1 {
		t.Errorf("Slots = %d, want 1", st.Slots)
	}
	if len(p1.heard) != 1 || p1.heard[0] == nil {
		t.Fatalf("listener heard %v, want one message", p1.heard)
	}
	if p1.heard[0].From != 0 || p1.heard[0].Data != "hello" {
		t.Errorf("heard %+v, want From=0 Data=hello", p1.heard[0])
	}
	if st.Deliveries != 1 || st.Collisions != 0 {
		t.Errorf("stats %+v, want 1 delivery 0 collisions", st)
	}
}

func TestCollisionSilence(t *testing.T) {
	// Star: two leaves broadcast to the center on the same channel.
	g := graph.Star(3)
	nw := newTestNetwork(t, g, 2, 2)
	center := &scriptProto{script: []Action{{Kind: Listen, Ch: localFor(t, nw, 0, 0)}}}
	leaf1 := &scriptProto{script: []Action{{Kind: Broadcast, Ch: localFor(t, nw, 1, 0), Data: 1}}}
	leaf2 := &scriptProto{script: []Action{{Kind: Broadcast, Ch: localFor(t, nw, 2, 0), Data: 2}}}
	e, err := NewEngine(nw, []Protocol{center, leaf1, leaf2})
	if err != nil {
		t.Fatal(err)
	}
	st := e.Run(10)
	if len(center.heard) != 1 || center.heard[0] != nil {
		t.Fatalf("center heard %v, want one nil observation (collision)", center.heard)
	}
	if st.Collisions != 1 || st.Deliveries != 0 {
		t.Errorf("stats %+v, want 1 collision 0 deliveries", st)
	}
}

func TestDifferentChannelsNoInterference(t *testing.T) {
	// Two leaves broadcast on different channels; center listens on
	// leaf2's channel and hears it cleanly.
	g := graph.Star(3)
	nw := newTestNetwork(t, g, 2, 3)
	center := &scriptProto{script: []Action{{Kind: Listen, Ch: localFor(t, nw, 0, 1)}}}
	leaf1 := &scriptProto{script: []Action{{Kind: Broadcast, Ch: localFor(t, nw, 1, 0), Data: 1}}}
	leaf2 := &scriptProto{script: []Action{{Kind: Broadcast, Ch: localFor(t, nw, 2, 1), Data: 2}}}
	e, err := NewEngine(nw, []Protocol{center, leaf1, leaf2})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(10)
	if len(center.heard) != 1 || center.heard[0] == nil {
		t.Fatalf("center heard %v, want one message", center.heard)
	}
	if center.heard[0].Data != 2 {
		t.Errorf("heard %v, want leaf2's message", center.heard[0])
	}
}

func TestNonNeighborsDoNotInterfere(t *testing.T) {
	// Path 0-1-2-3: nodes 0 and 3 broadcast on channel 0; nodes 1 and 2
	// listen on channel 0. Each listener has exactly one broadcasting
	// neighbor (0 and 3 are not adjacent to both), so both hear.
	g := graph.Path(4)
	nw := newTestNetwork(t, g, 1, 4)
	p0 := &scriptProto{script: []Action{{Kind: Broadcast, Ch: 0, Data: "a"}}}
	p1 := &scriptProto{script: []Action{{Kind: Listen, Ch: 0}}}
	p2 := &scriptProto{script: []Action{{Kind: Listen, Ch: 0}}}
	p3 := &scriptProto{script: []Action{{Kind: Broadcast, Ch: 0, Data: "b"}}}
	e, err := NewEngine(nw, []Protocol{p0, p1, p2, p3})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(10)
	if p1.heard[0] == nil || p1.heard[0].Data != "a" {
		t.Errorf("node 1 heard %v, want a", p1.heard[0])
	}
	if p2.heard[0] == nil || p2.heard[0].Data != "b" {
		t.Errorf("node 2 heard %v, want b", p2.heard[0])
	}
}

func TestBroadcasterHearsNothing(t *testing.T) {
	// Two adjacent broadcasters on one channel: broadcasters only
	// "receive" their own message; Observe reports nil.
	g := graph.Path(2)
	nw := newTestNetwork(t, g, 1, 5)
	p0 := &scriptProto{script: []Action{{Kind: Broadcast, Ch: 0, Data: 0}}}
	p1 := &scriptProto{script: []Action{{Kind: Broadcast, Ch: 0, Data: 1}}}
	e, err := NewEngine(nw, []Protocol{p0, p1})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(10)
	if p0.heard[0] != nil || p1.heard[0] != nil {
		t.Error("broadcasters observed a message")
	}
}

func TestIdleObservesNil(t *testing.T) {
	g := graph.Path(2)
	nw := newTestNetwork(t, g, 1, 6)
	p0 := &scriptProto{script: []Action{{Kind: Idle}}}
	p1 := &scriptProto{script: []Action{{Kind: Broadcast, Ch: 0, Data: 9}}}
	e, err := NewEngine(nw, []Protocol{p0, p1})
	if err != nil {
		t.Fatal(err)
	}
	st := e.Run(10)
	if p0.heard[0] != nil {
		t.Error("idle node observed a message")
	}
	if st.Idles != 1 {
		t.Errorf("Idles = %d, want 1", st.Idles)
	}
}

func TestMaxSlotsBudget(t *testing.T) {
	g := graph.Path(2)
	nw := newTestNetwork(t, g, 1, 7)
	// Protocols that never finish.
	mk := func() *scriptProto {
		s := make([]Action, 1000)
		for i := range s {
			s[i] = Action{Kind: Idle}
		}
		return &scriptProto{script: s}
	}
	e, err := NewEngine(nw, []Protocol{mk(), mk()})
	if err != nil {
		t.Fatal(err)
	}
	st := e.Run(5)
	if st.Completed {
		t.Error("Completed = true with exhausted budget")
	}
	if st.Slots != 5 {
		t.Errorf("Slots = %d, want 5", st.Slots)
	}
	// Continue the same engine with a larger budget.
	st = e.Run(1000)
	if !st.Completed {
		t.Error("run did not complete after budget increase")
	}
}

func TestEngineValidation(t *testing.T) {
	g := graph.Path(2)
	nw := newTestNetwork(t, g, 1, 8)
	if _, err := NewEngine(nw, []Protocol{&scriptProto{}}); err == nil {
		t.Error("protocol-count mismatch accepted")
	}
	if _, err := NewEngine(&Network{}, nil); err == nil {
		t.Error("nil graph accepted")
	}
	bad, _ := chanassign.Identical(3, 1, rng.New(1))
	if _, err := NewEngine(&Network{Graph: g, Assign: bad}, nil); err == nil {
		t.Error("assignment size mismatch accepted")
	}
}

func TestTraceCallback(t *testing.T) {
	g := graph.Path(2)
	nw := newTestNetwork(t, g, 1, 9)
	p0 := &scriptProto{script: []Action{{Kind: Broadcast, Ch: 0, Data: "x"}}}
	p1 := &scriptProto{script: []Action{{Kind: Listen, Ch: 0}}}
	e, err := NewEngine(nw, []Protocol{p0, p1})
	if err != nil {
		t.Fatal(err)
	}
	var got []NodeID
	e.SetTrace(func(slot int64, listener NodeID, ch int32, msg *Message) {
		got = append(got, listener)
		if msg.From != 0 {
			t.Errorf("trace msg.From = %d, want 0", msg.From)
		}
	})
	e.Run(10)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("trace listeners = %v, want [1]", got)
	}
}

// randomProto takes uniformly random actions; used for engine
// equivalence testing.
type randomProto struct {
	r     *rng.Source
	c     int
	slots int
	heard []NodeID // only From ids, comparable across engines
}

func (p *randomProto) Act(_ int64) Action {
	p.slots--
	switch p.r.Intn(3) {
	case 0:
		return Action{Kind: Idle}
	case 1:
		return Action{Kind: Listen, Ch: p.r.Intn(p.c)}
	default:
		return Action{Kind: Broadcast, Ch: p.r.Intn(p.c), Data: p.r.Intn(100)}
	}
}

func (p *randomProto) Observe(_ int64, msg *Message) {
	if msg != nil {
		p.heard = append(p.heard, msg.From)
	}
}

func (p *randomProto) Done() bool { return p.slots <= 0 }

func runRandom(t *testing.T, parallel bool, workers int) ([][]NodeID, Stats) {
	t.Helper()
	master := rng.New(42)
	g, err := graph.GNP(20, 0.3, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	a, err := chanassign.SharedPool(20, 5, 2, 12, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	nw := &Network{Graph: g, Assign: a}
	protos := make([]Protocol, 20)
	rps := make([]*randomProto, 20)
	for i := range protos {
		rp := &randomProto{r: master.Split(uint64(i)), c: 5, slots: 200}
		rps[i] = rp
		protos[i] = rp
	}
	e, err := NewEngine(nw, protos)
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if parallel {
		st = e.RunParallel(10000, workers)
	} else {
		st = e.Run(10000)
	}
	out := make([][]NodeID, 20)
	for i, rp := range rps {
		out[i] = rp.heard
	}
	return out, st
}

func TestSequentialDeterminism(t *testing.T) {
	h1, s1 := runRandom(t, false, 0)
	h2, s2 := runRandom(t, false, 0)
	if s1 != s2 {
		t.Fatalf("stats differ across identical runs: %+v vs %+v", s1, s2)
	}
	for i := range h1 {
		if len(h1[i]) != len(h2[i]) {
			t.Fatalf("node %d heard %d vs %d messages", i, len(h1[i]), len(h2[i]))
		}
		for j := range h1[i] {
			if h1[i][j] != h2[i][j] {
				t.Fatalf("node %d observation %d differs", i, j)
			}
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	hs, ss := runRandom(t, false, 0)
	for _, workers := range []int{2, 4, 0} {
		hp, sp := runRandom(t, true, workers)
		if ss != sp {
			t.Fatalf("workers=%d: stats differ: %+v vs %+v", workers, ss, sp)
		}
		for i := range hs {
			if len(hs[i]) != len(hp[i]) {
				t.Fatalf("workers=%d node %d heard %d vs %d", workers, i, len(hs[i]), len(hp[i]))
			}
			for j := range hs[i] {
				if hs[i][j] != hp[i][j] {
					t.Fatalf("workers=%d node %d observation %d differs", workers, i, j)
				}
			}
		}
	}
}

func TestGoProtocolPingPong(t *testing.T) {
	g := graph.Path(2)
	nw := newTestNetwork(t, g, 1, 10)
	var got []string
	sender := NewGoProtocol(func(tr *Transceiver) {
		tr.BroadcastOn(0, "ping")
		if msg := tr.ListenOn(0); msg != nil {
			got = append(got, msg.Data.(string))
		}
	})
	receiver := NewGoProtocol(func(tr *Transceiver) {
		if msg := tr.ListenOn(0); msg != nil {
			got = append(got, msg.Data.(string))
		}
		tr.BroadcastOn(0, "pong")
	})
	e, err := NewEngine(nw, []Protocol{sender, receiver})
	if err != nil {
		t.Fatal(err)
	}
	st := e.Run(100)
	if !st.Completed {
		t.Fatal("goroutine protocols did not complete")
	}
	if st.Slots != 2 {
		t.Errorf("Slots = %d, want 2", st.Slots)
	}
	if len(got) != 2 || got[0] != "ping" || got[1] != "pong" {
		t.Errorf("exchanged %v, want [ping pong]", got)
	}
}

func TestGoProtocolLastSlot(t *testing.T) {
	g := graph.Path(2)
	nw := newTestNetwork(t, g, 1, 11)
	var slots []int64
	p0 := NewGoProtocol(func(tr *Transceiver) {
		tr.IdleSlot()
		slots = append(slots, tr.LastSlot())
		tr.IdleSlot()
		slots = append(slots, tr.LastSlot())
	})
	p1 := NewGoProtocol(func(tr *Transceiver) {
		tr.IdleSlot()
	})
	e, err := NewEngine(nw, []Protocol{p0, p1})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Run(10).Completed {
		t.Fatal("did not complete")
	}
	if len(slots) != 2 || slots[0] != 0 || slots[1] != 1 {
		t.Errorf("slots = %v, want [0 1]", slots)
	}
}

// TestGoProtocolMatchesStateMachine runs the same randomized logic as
// both a state machine and a goroutine program and requires identical
// observations.
func TestGoProtocolMatchesStateMachine(t *testing.T) {
	build := func(asGo bool) ([][]NodeID, Stats) {
		master := rng.New(99)
		g := graph.Star(6)
		a, err := chanassign.Identical(6, 3, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		nw := &Network{Graph: g, Assign: a}
		heard := make([][]NodeID, 6)
		protos := make([]Protocol, 6)
		for i := 0; i < 6; i++ {
			i := i
			r := master.Split(uint64(i))
			if asGo {
				protos[i] = NewGoProtocol(func(tr *Transceiver) {
					for s := 0; s < 50; s++ {
						var msg *Message
						switch r.Intn(3) {
						case 0:
							tr.IdleSlot()
						case 1:
							msg = tr.ListenOn(r.Intn(3))
						default:
							tr.BroadcastOn(r.Intn(3), i)
						}
						if msg != nil {
							heard[i] = append(heard[i], msg.From)
						}
					}
				})
			} else {
				protos[i] = &rngDriven{r: r, c: 3, remaining: 50, sink: &heard[i]}
			}
		}
		e, err := NewEngine(nw, protos)
		if err != nil {
			t.Fatal(err)
		}
		st := e.Run(1000)
		return heard, st
	}
	hSM, stSM := build(false)
	hGo, stGo := build(true)
	if stSM.Deliveries != stGo.Deliveries || stSM.Collisions != stGo.Collisions || stSM.Slots != stGo.Slots {
		t.Fatalf("stats differ: %+v vs %+v", stSM, stGo)
	}
	for i := range hSM {
		if len(hSM[i]) != len(hGo[i]) {
			t.Fatalf("node %d heard %d vs %d", i, len(hSM[i]), len(hGo[i]))
		}
		for j := range hSM[i] {
			if hSM[i][j] != hGo[i][j] {
				t.Fatalf("node %d observation %d differs", i, j)
			}
		}
	}
}

// rngDriven mirrors the goroutine body in TestGoProtocolMatchesStateMachine.
type rngDriven struct {
	r         *rng.Source
	c         int
	remaining int
	sink      *[]NodeID
}

func (p *rngDriven) Act(_ int64) Action {
	p.remaining--
	switch p.r.Intn(3) {
	case 0:
		return Action{Kind: Idle}
	case 1:
		return Action{Kind: Listen, Ch: p.r.Intn(p.c)}
	default:
		return Action{Kind: Broadcast, Ch: p.r.Intn(p.c), Data: 0}
	}
}

func (p *rngDriven) Observe(_ int64, msg *Message) {
	if msg != nil {
		*p.sink = append(*p.sink, msg.From)
	}
}

func (p *rngDriven) Done() bool { return p.remaining <= 0 }

func TestInvalidActionKindPanics(t *testing.T) {
	g := graph.Path(2)
	nw := newTestNetwork(t, g, 1, 99)
	bad := &scriptProto{script: []Action{{Kind: Kind(99), Ch: 0}}}
	idle := &scriptProto{script: []Action{{Kind: Idle}}}
	e, err := NewEngine(nw, []Protocol{bad, idle})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid action kind did not panic")
		}
	}()
	e.Run(1)
}

func TestEngineAccessors(t *testing.T) {
	g := graph.Path(2)
	nw := newTestNetwork(t, g, 1, 98)
	p0 := &scriptProto{script: []Action{{Kind: Idle}, {Kind: Idle}}}
	p1 := &scriptProto{script: []Action{{Kind: Idle}, {Kind: Idle}}}
	e, err := NewEngine(nw, []Protocol{p0, p1})
	if err != nil {
		t.Fatal(err)
	}
	if e.Slot() != 0 {
		t.Errorf("Slot() = %d before running", e.Slot())
	}
	e.Run(1)
	if e.Slot() != 1 {
		t.Errorf("Slot() = %d after one slot", e.Slot())
	}
	if got := e.Stats(); got.Idles != 2 {
		t.Errorf("Stats().Idles = %d, want 2", got.Idles)
	}
}

func BenchmarkEngineSlot(b *testing.B) {
	master := rng.New(1)
	g, err := graph.GNP(64, 0.15, rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	a, err := chanassign.SharedPool(64, 8, 2, 30, rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	nw := &Network{Graph: g, Assign: a}
	protos := make([]Protocol, 64)
	for i := range protos {
		protos[i] = &randomProto{r: master.Split(uint64(i)), c: 8, slots: 1 << 30}
	}
	e, err := NewEngine(nw, protos)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(int64(b.N))
}

// BenchmarkProtocolInterfaceFloor measures the protocol side of
// BenchmarkEngineSlot alone: Act+Observe+Done on the same 64 rng-driven
// protocols with no engine work at all. The gap between this floor and
// BenchmarkEngineSlot is the engine's true per-slot cost — on this
// workload the floor is a third or more of the slot, which bounds how
// far any kernel optimization can move the headline number.
func BenchmarkProtocolInterfaceFloor(b *testing.B) {
	master := rng.New(1)
	protos := make([]Protocol, 64)
	for i := range protos {
		protos[i] = &randomProto{r: master.Split(uint64(i)), c: 8, slots: 1 << 30}
	}
	var sink int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range protos {
			if a := p.Act(int64(i)); a.Kind == Broadcast {
				sink++
			}
			p.Observe(int64(i), nil)
			if p.Done() {
				sink++
			}
		}
	}
	_ = sink
}
