package radio_test

// Dynamics-path allocation contract, from outside the package because
// internal/dynamics imports radio: an engine driven by the production
// churn + edge-flap feeds must allocate nothing per slot in steady
// state, exactly like the static path. This is the regression test for
// the dynamics byte leak — per-slot garbage on the topology path that
// once made dynamic runs allocate on every mutation.

import (
	"testing"

	"crn/internal/chanassign"
	"crn/internal/dynamics"
	"crn/internal/graph"
	"crn/internal/radio"
	"crn/internal/rng"
)

// dynHotProto is an allocation-free protocol for the dynamics alloc
// and benchmark harnesses (counters only, pre-boxed frame).
type dynHotProto struct {
	id    int
	c     int
	frame any
	slot  int64
	heard int64
}

func (p *dynHotProto) Act(_ int64) radio.Action {
	switch (p.id + int(p.slot)) % 4 {
	case 0:
		return radio.Action{Kind: radio.Broadcast, Ch: int(p.slot) % p.c, Data: p.frame}
	case 1, 2:
		return radio.Action{Kind: radio.Listen, Ch: (p.id + int(p.slot)) % p.c}
	default:
		return radio.Action{Kind: radio.Idle}
	}
}

func (p *dynHotProto) Observe(_ int64, msg *radio.Message) {
	if msg != nil {
		p.heard++
	}
	p.slot++
}

func (p *dynHotProto) Done() bool { return false }

func newDynamicsEngine(tb testing.TB, n, c int) *radio.Engine {
	tb.Helper()
	g, err := graph.GNP(n, 0.3, rng.New(21))
	if err != nil {
		tb.Fatal(err)
	}
	a, err := chanassign.Identical(n, c, rng.New(22))
	if err != nil {
		tb.Fatal(err)
	}
	churn, err := dynamics.NewChurn(n, 0.002, 0.05, 4)
	if err != nil {
		tb.Fatal(err)
	}
	flap, err := dynamics.NewEdgeFlap(g.Edges(), 0.005, 0.1, 5)
	if err != nil {
		tb.Fatal(err)
	}
	protos := make([]radio.Protocol, n)
	for i := range protos {
		protos[i] = &dynHotProto{id: i, c: c, frame: i}
	}
	e, err := radio.NewEngine(&radio.Network{
		Graph:    g,
		Assign:   a,
		Topology: dynamics.Compose(churn, flap),
	}, protos)
	if err != nil {
		tb.Fatal(err)
	}
	return e
}

// TestEngineDynamicsZeroAllocsPerSlot: the dynamic-topology engine's
// steady state allocates nothing per slot — churn transitions, edge
// flaps (adjacency insert/remove on the mutable clone) and the
// partition-loss counterfactual all run on pre-sized state.
func TestEngineDynamicsZeroAllocsPerSlot(t *testing.T) {
	const n, c = 32, 4
	e := newDynamicsEngine(t, n, c)
	target := int64(0)
	step := func() {
		target += 200
		e.Run(target)
	}
	// Warm up: long enough for churn and flap events to have fired.
	for i := 0; i < 10; i++ {
		step()
	}
	if st := e.Stats(); st.NodeLeaves == 0 || st.EdgeRemoves == 0 {
		t.Fatalf("warmup saw no topology events, nothing exercised: %+v", st)
	}
	if avg := testing.AllocsPerRun(20, step); avg != 0 {
		t.Errorf("dynamics engine allocates %.2f/200 slots in steady state, want 0", avg)
	}
}

// BenchmarkEngineSlotDynamics is BenchmarkEngineSlot's dynamic-topology
// sibling on the same 64-node crnbench topology: churn + link flapping
// active every slot. The ratio of this to the static benchmark is the
// dynamics overhead the engine/slot-dynamics crnbench entry gates.
func BenchmarkEngineSlotDynamics(b *testing.B) {
	g, err := graph.GNP(64, 0.15, rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	a, err := chanassign.SharedPool(64, 8, 2, 30, rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	churn, err := dynamics.NewChurn(64, 0.002, 0.05, 4)
	if err != nil {
		b.Fatal(err)
	}
	flap, err := dynamics.NewEdgeFlap(g.Edges(), 0.005, 0.1, 5)
	if err != nil {
		b.Fatal(err)
	}
	protos := make([]radio.Protocol, 64)
	for i := range protos {
		protos[i] = &dynHotProto{id: i, c: 8, frame: i}
	}
	e, err := radio.NewEngine(&radio.Network{
		Graph:    g,
		Assign:   a,
		Topology: dynamics.Compose(churn, flap),
	}, protos)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(int64(b.N))
}
