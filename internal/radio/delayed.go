package radio

// Delayed wraps a protocol so it wakes up at a fixed slot, idling
// (radio off) before then. The paper assumes all nodes start
// simultaneously; this wrapper lets experiments probe how sensitive
// the algorithms are to that assumption by staggering wake-ups.
//
// The inner protocol never observes pre-start slots: its own slot
// arithmetic therefore runs on its local clock, exactly as if the node
// had just powered on.
type Delayed struct {
	// Start is the first slot the inner protocol runs in.
	Start int64
	// Inner is the wrapped protocol.
	Inner Protocol

	started bool
}

var _ Protocol = (*Delayed)(nil)

// Act implements Protocol.
func (d *Delayed) Act(slot int64) Action {
	if slot < d.Start {
		return Action{Kind: Idle}
	}
	d.started = true
	return d.Inner.Act(slot)
}

// Observe implements Protocol.
func (d *Delayed) Observe(slot int64, msg *Message) {
	if slot < d.Start {
		return
	}
	d.Inner.Observe(slot, msg)
}

// Done implements Protocol.
func (d *Delayed) Done() bool {
	return d.started && d.Inner.Done()
}
