package radio

import (
	"testing"

	"crn/internal/graph"
)

// stubJammer jams a fixed set of (slot, channel) pairs.
type stubJammer struct {
	jam map[[2]int64]bool
}

func (j *stubJammer) Jammed(slot int64, ch int32) bool {
	return j.jam[[2]int64{slot, int64(ch)}]
}

func TestJammedChannelSilencesListener(t *testing.T) {
	g := graph.Path(2)
	nw := newTestNetwork(t, g, 2, 31)
	nw.Jammer = &stubJammer{jam: map[[2]int64]bool{{0, 0}: true}}

	// Slot 0: broadcast on (jammed) global channel 0 → lost.
	// Slot 1: same broadcast, channel now clear → delivered.
	b := &scriptProto{script: []Action{
		{Kind: Broadcast, Ch: localFor(t, nw, 0, 0), Data: "x"},
		{Kind: Broadcast, Ch: localFor(t, nw, 0, 0), Data: "y"},
	}}
	l := &scriptProto{script: []Action{
		{Kind: Listen, Ch: localFor(t, nw, 1, 0)},
		{Kind: Listen, Ch: localFor(t, nw, 1, 0)},
	}}
	e, err := NewEngine(nw, []Protocol{b, l})
	if err != nil {
		t.Fatal(err)
	}
	st := e.Run(10)
	if l.heard[0] != nil {
		t.Error("heard a frame on a jammed channel")
	}
	if l.heard[1] == nil || l.heard[1].Data != "y" {
		t.Errorf("clear-channel frame lost: %v", l.heard[1])
	}
	if st.JammedListens != 1 {
		t.Errorf("JammedListens = %d, want 1", st.JammedListens)
	}
	if st.Deliveries != 1 {
		t.Errorf("Deliveries = %d, want 1", st.Deliveries)
	}
}

func TestJammingOnlyAffectsItsChannel(t *testing.T) {
	g := graph.Path(2)
	nw := newTestNetwork(t, g, 2, 32)
	nw.Jammer = &stubJammer{jam: map[[2]int64]bool{{0, 0}: true}}

	// Broadcast and listen on global channel 1 while channel 0 is
	// jammed: delivery must succeed.
	b := &scriptProto{script: []Action{{Kind: Broadcast, Ch: localFor(t, nw, 0, 1), Data: "ok"}}}
	l := &scriptProto{script: []Action{{Kind: Listen, Ch: localFor(t, nw, 1, 1)}}}
	e, err := NewEngine(nw, []Protocol{b, l})
	if err != nil {
		t.Fatal(err)
	}
	st := e.Run(10)
	if l.heard[0] == nil || l.heard[0].Data != "ok" {
		t.Errorf("delivery on clear channel failed: %v", l.heard[0])
	}
	if st.JammedListens != 0 {
		t.Errorf("JammedListens = %d, want 0", st.JammedListens)
	}
}

func TestJammingParallelEngineAgrees(t *testing.T) {
	run := func(parallel bool) Stats {
		g := graph.Star(8)
		nw := newTestNetwork(t, g, 3, 33)
		nw.Jammer = &stubJammer{jam: map[[2]int64]bool{
			{0, 0}: true, {1, 1}: true, {2, 2}: true, {5, 0}: true,
		}}
		protos := make([]Protocol, 8)
		for i := range protos {
			script := make([]Action, 12)
			for s := range script {
				if i%2 == 0 {
					script[s] = Action{Kind: Listen, Ch: (i + s) % 3}
				} else {
					script[s] = Action{Kind: Broadcast, Ch: (i + s) % 3, Data: i}
				}
			}
			protos[i] = &scriptProto{script: script}
		}
		e, err := NewEngine(nw, protos)
		if err != nil {
			t.Fatal(err)
		}
		if parallel {
			return e.RunParallel(100, 4)
		}
		return e.Run(100)
	}
	seq := run(false)
	par := run(true)
	if seq != par {
		t.Errorf("stats differ under jamming: seq %+v vs par %+v", seq, par)
	}
}
