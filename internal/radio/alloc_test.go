package radio

import (
	"testing"

	"crn/internal/chanassign"
	"crn/internal/graph"
	"crn/internal/rng"
)

// This file enforces the engine's performance contract: once a run is
// warmed up, stepping slots allocates nothing — deliveries ride the
// reused Message scratch, the channel index lives in pre-sized engine
// scratch, and the worker pool's barriers are allocation-free.

// hotProto is a zero-allocation protocol for alloc regression tests:
// its broadcast frame is pre-boxed, and it records only counters.
type hotProto struct {
	id     int
	c      int
	frame  any // pre-boxed payload
	slot   int64
	heard  int64
	misses int64
}

func (p *hotProto) Act(_ int64) Action {
	// Deterministic mix exercising every resolution path: rotate
	// roles by node id and slot.
	switch (p.id + int(p.slot)) % 4 {
	case 0:
		return Action{Kind: Broadcast, Ch: int(p.slot) % p.c, Data: p.frame}
	case 1, 2:
		return Action{Kind: Listen, Ch: (p.id + int(p.slot)) % p.c}
	default:
		return Action{Kind: Idle}
	}
}

func (p *hotProto) Observe(_ int64, msg *Message) {
	if msg != nil {
		p.heard++
	} else {
		p.misses++
	}
	p.slot++
}

func (p *hotProto) Done() bool { return false }

func allocNetwork(t testing.TB, n, c int, jam Jammer) *Network {
	t.Helper()
	g, err := graph.GNP(n, 0.4, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	a, err := chanassign.Identical(n, c, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	return &Network{Graph: g, Assign: a, Jammer: jam}
}

func newHotEngine(t testing.TB, nw *Network, n, c int) *Engine {
	t.Helper()
	protos := make([]Protocol, n)
	for i := range protos {
		protos[i] = &hotProto{id: i, c: c, frame: i}
	}
	e, err := NewEngine(nw, protos)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestEngineRunZeroAllocsPerSlot asserts the sequential engine's
// steady state allocates nothing per slot, across delivery, collision,
// silence and jammed paths.
func TestEngineRunZeroAllocsPerSlot(t *testing.T) {
	for _, tc := range []struct {
		name string
		jam  Jammer
	}{
		{"clear", nil},
		{"jammed", parityJammer{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n, c = 24, 3
			e := newHotEngine(t, allocNetwork(t, n, c, tc.jam), n, c)
			target := int64(0)
			step := func() {
				target += 50
				e.Run(target)
			}
			step() // warm up scratch growth
			if avg := testing.AllocsPerRun(20, step); avg != 0 {
				t.Errorf("sequential engine allocates %.2f/50 slots in steady state, want 0", avg)
			}
			if st := e.Stats(); st.Deliveries == 0 || st.Collisions == 0 {
				t.Fatalf("workload did not exercise delivery+collision paths: %+v", st)
			}
		})
	}
}

// TestEngineRunParallelAllocsAmortized asserts the pool engine's
// allocations are per-run (pool construction), not per-slot: running
// 10× the slots must not add more than a trivial number of
// allocations.
func TestEngineRunParallelAllocsAmortized(t *testing.T) {
	const n, c, workers = 24, 3, 4
	nw := allocNetwork(t, n, c, nil)
	measure := func(slots int64) float64 {
		return testing.AllocsPerRun(3, func() {
			e := newHotEngine(t, nw, n, c)
			if st := e.RunParallel(slots, workers); st.Slots != slots {
				t.Fatalf("ran %d slots, want %d", st.Slots, slots)
			}
		})
	}
	short := measure(100)
	long := measure(1100)
	if extra := long - short; extra > 50 {
		t.Errorf("1000 extra pool slots allocated %.0f times (short=%.0f, long=%.0f), want ~0",
			extra, short, long)
	}
}
