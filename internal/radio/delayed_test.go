package radio

import (
	"testing"

	"crn/internal/graph"
)

func TestDelayedIdlesBeforeStart(t *testing.T) {
	inner := &scriptProto{script: []Action{
		{Kind: Broadcast, Ch: 0, Data: "late"},
	}}
	d := &Delayed{Start: 3, Inner: inner}
	for slot := int64(0); slot < 3; slot++ {
		if a := d.Act(slot); a.Kind != Idle {
			t.Fatalf("slot %d: kind %v, want Idle", slot, a.Kind)
		}
		d.Observe(slot, nil)
		if d.Done() {
			t.Fatal("done before start")
		}
	}
	if inner.pos != 0 {
		t.Fatal("inner protocol consumed slots before start")
	}
	if a := d.Act(3); a.Kind != Broadcast {
		t.Fatalf("post-start kind %v, want Broadcast", a.Kind)
	}
	d.Observe(3, nil)
	if !d.Done() {
		t.Error("not done after inner finished")
	}
}

func TestDelayedPreStartObservationsDropped(t *testing.T) {
	inner := &scriptProto{script: []Action{{Kind: Listen, Ch: 0}}}
	d := &Delayed{Start: 2, Inner: inner}
	// A stray pre-start Observe must not reach the inner protocol.
	d.Observe(0, &Message{From: 9})
	if len(inner.heard) != 0 {
		t.Error("pre-start observation leaked to inner protocol")
	}
}

func TestDelayedZeroStartIsTransparent(t *testing.T) {
	inner := &scriptProto{script: []Action{{Kind: Idle}}}
	d := &Delayed{Start: 0, Inner: inner}
	if a := d.Act(0); a.Kind != Idle {
		t.Fatalf("kind %v", a.Kind)
	}
	d.Observe(0, nil)
	if !d.Done() {
		t.Error("zero-start Delayed did not finish with inner")
	}
}

// TestDelayedEndToEnd staggers a two-node ping exchange: the listener
// starts 5 slots late, the broadcaster transmits every slot; the
// listener must still hear the frames that fall inside its awake
// window.
func TestDelayedEndToEnd(t *testing.T) {
	g := graph.Path(2)
	nw := newTestNetwork(t, g, 1, 77)

	bScript := make([]Action, 10)
	for i := range bScript {
		bScript[i] = Action{Kind: Broadcast, Ch: 0, Data: i}
	}
	lScript := make([]Action, 3)
	for i := range lScript {
		lScript[i] = Action{Kind: Listen, Ch: 0}
	}
	b := &scriptProto{script: bScript}
	l := &scriptProto{script: lScript}
	e, err := NewEngine(nw, []Protocol{b, &Delayed{Start: 5, Inner: l}})
	if err != nil {
		t.Fatal(err)
	}
	st := e.Run(20)
	if !st.Completed {
		t.Fatal("did not complete")
	}
	if len(l.heard) != 3 {
		t.Fatalf("listener observed %d slots, want 3", len(l.heard))
	}
	for i, msg := range l.heard {
		if msg == nil {
			t.Fatalf("observation %d: nil", i)
		}
		// The listener's slot i is engine slot 5+i; the broadcaster sent
		// payload 5+i there.
		if msg.Data != 5+i {
			t.Errorf("observation %d: payload %v, want %d", i, msg.Data, 5+i)
		}
	}
}
