package radio

import (
	"fmt"
	"testing"

	"crn/internal/graph"
	"crn/internal/rng"
)

func TestDelayedIdlesBeforeStart(t *testing.T) {
	inner := &scriptProto{script: []Action{
		{Kind: Broadcast, Ch: 0, Data: "late"},
	}}
	d := &Delayed{Start: 3, Inner: inner}
	for slot := int64(0); slot < 3; slot++ {
		if a := d.Act(slot); a.Kind != Idle {
			t.Fatalf("slot %d: kind %v, want Idle", slot, a.Kind)
		}
		d.Observe(slot, nil)
		if d.Done() {
			t.Fatal("done before start")
		}
	}
	if inner.pos != 0 {
		t.Fatal("inner protocol consumed slots before start")
	}
	if a := d.Act(3); a.Kind != Broadcast {
		t.Fatalf("post-start kind %v, want Broadcast", a.Kind)
	}
	d.Observe(3, nil)
	if !d.Done() {
		t.Error("not done after inner finished")
	}
}

func TestDelayedPreStartObservationsDropped(t *testing.T) {
	inner := &scriptProto{script: []Action{{Kind: Listen, Ch: 0}}}
	d := &Delayed{Start: 2, Inner: inner}
	// A stray pre-start Observe must not reach the inner protocol.
	d.Observe(0, &Message{From: 9})
	if len(inner.heard) != 0 {
		t.Error("pre-start observation leaked to inner protocol")
	}
}

func TestDelayedZeroStartIsTransparent(t *testing.T) {
	inner := &scriptProto{script: []Action{{Kind: Idle}}}
	d := &Delayed{Start: 0, Inner: inner}
	if a := d.Act(0); a.Kind != Idle {
		t.Fatalf("kind %v", a.Kind)
	}
	d.Observe(0, nil)
	if !d.Done() {
		t.Error("zero-start Delayed did not finish with inner")
	}
}

// TestDelayedEndToEnd staggers a two-node ping exchange: the listener
// starts 5 slots late, the broadcaster transmits every slot; the
// listener must still hear the frames that fall inside its awake
// window.
func TestDelayedEndToEnd(t *testing.T) {
	g := graph.Path(2)
	nw := newTestNetwork(t, g, 1, 77)

	bScript := make([]Action, 10)
	for i := range bScript {
		bScript[i] = Action{Kind: Broadcast, Ch: 0, Data: i}
	}
	lScript := make([]Action, 3)
	for i := range lScript {
		lScript[i] = Action{Kind: Listen, Ch: 0}
	}
	b := &scriptProto{script: bScript}
	l := &scriptProto{script: lScript}
	e, err := NewEngine(nw, []Protocol{b, &Delayed{Start: 5, Inner: l}})
	if err != nil {
		t.Fatal(err)
	}
	st := e.Run(20)
	if !st.Completed {
		t.Fatal("did not complete")
	}
	if len(l.heard) != 3 {
		t.Fatalf("listener observed %d slots, want 3", len(l.heard))
	}
	for i, msg := range l.heard {
		if msg == nil {
			t.Fatalf("observation %d: nil", i)
		}
		// The listener's slot i is engine slot 5+i; the broadcaster sent
		// payload 5+i there.
		if msg.Data != 5+i {
			t.Errorf("observation %d: payload %v, want %d", i, msg.Data, 5+i)
		}
	}
}

// delayedChatter is a never-finishing random protocol for the
// pool-equivalence tests, summarizing its delivery history.
type delayedChatter struct {
	r     *rng.Source
	c     int
	heard []NodeID
}

func (p *delayedChatter) Act(_ int64) Action {
	switch p.r.Intn(3) {
	case 0:
		return Action{Kind: Broadcast, Ch: p.r.Intn(p.c), Data: "d"}
	case 1:
		return Action{Kind: Listen, Ch: p.r.Intn(p.c)}
	default:
		return Action{Kind: Idle}
	}
}

func (p *delayedChatter) Observe(_ int64, msg *Message) {
	if msg != nil {
		p.heard = append(p.heard, msg.From)
	}
}

func (p *delayedChatter) Done() bool { return false }

// TestDelayedParallelMatchesSequential: a network of staggered-start
// protocols (one Delayed wrapper per node, starts spread across the
// run so wake-ups land in every worker's node range) produces
// identical stats and per-node delivery histories under Run and the
// persistent worker pool at 2/4/8 workers. Delayed was previously
// only exercised on the serial engine; the wrapper's started/Done
// interplay and the pre-start idles all cross the pool's barriers
// here.
func TestDelayedParallelMatchesSequential(t *testing.T) {
	const n, c, slots = 24, 3, 600
	g, err := graph.GNP(n, 0.3, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) (Stats, string) {
		nw := newTestNetwork(t, g, c, 99)
		master := rng.New(8)
		inner := make([]*delayedChatter, n)
		protos := make([]Protocol, n)
		for u := 0; u < n; u++ {
			inner[u] = &delayedChatter{r: master.Split(uint64(u)), c: c}
			// Stagger starts 0, 7, 14, ... so some nodes wake mid-run.
			protos[u] = &Delayed{Start: int64(u * 7), Inner: inner[u]}
		}
		e, err := NewEngine(nw, protos)
		if err != nil {
			t.Fatal(err)
		}
		var st Stats
		if workers == 0 {
			st = e.Run(slots)
		} else {
			st = e.RunParallel(slots, workers)
		}
		fp := ""
		for u, p := range inner {
			fp += fmt.Sprintf("%d:%v;", u, p.heard)
		}
		return st, fp
	}
	wantStats, wantFP := run(0)
	if wantStats.Deliveries == 0 {
		t.Fatal("staggered workload delivered nothing — degenerate test")
	}
	// Pre-start slots are engine Idles: the late starters idle through
	// 7u slots each.
	if wantStats.Idles == 0 {
		t.Fatal("no idle slots despite staggered starts")
	}
	for _, workers := range []int{2, 4, 8} {
		gotStats, gotFP := run(workers)
		if gotStats != wantStats {
			t.Errorf("workers=%d stats = %+v, want %+v", workers, gotStats, wantStats)
		}
		if gotFP != wantFP {
			t.Errorf("workers=%d delivery histories diverged from sequential", workers)
		}
	}
}

// TestDelayedFiniteParallelCompletion: Delayed wrappers around finite
// scripts complete under the pool exactly as they do sequentially,
// including the started/Done interplay (a never-started Delayed must
// not report done).
func TestDelayedFiniteParallelCompletion(t *testing.T) {
	const n = 8
	g := graph.Path(n)
	mk := func() []Protocol {
		protos := make([]Protocol, n)
		for u := 0; u < n; u++ {
			script := make([]Action, 4)
			for i := range script {
				if u%2 == 0 {
					script[i] = Action{Kind: Broadcast, Ch: 0, Data: u}
				} else {
					script[i] = Action{Kind: Listen, Ch: 0}
				}
			}
			protos[u] = &Delayed{Start: int64(3 * u), Inner: &scriptProto{script: script}}
		}
		return protos
	}
	budget := int64(3*(n-1) + 4 + 1)
	for _, workers := range []int{0, 2, 4} {
		nw := newTestNetwork(t, g, 1, 5)
		e, err := NewEngine(nw, mk())
		if err != nil {
			t.Fatal(err)
		}
		var st Stats
		if workers == 0 {
			st = e.Run(budget)
		} else {
			st = e.RunParallel(budget, workers)
		}
		if !st.Completed {
			t.Errorf("workers=%d: staggered finite run did not complete in %d slots: %+v", workers, budget, st)
		}
	}
	// Under-budget runs must not report completion: the last starter
	// has not finished its script yet.
	nw := newTestNetwork(t, g, 1, 5)
	e, err := NewEngine(nw, mk())
	if err != nil {
		t.Fatal(err)
	}
	if st := e.RunParallel(int64(3*(n-1)+1), 4); st.Completed {
		t.Error("run completed before the last delayed starter could finish")
	}
}
