package lowerbound

import (
	"fmt"

	"crn/internal/radio"
)

// ReductionPlayer implements the Lemma 11 construction: it turns any
// neighbor-discovery protocol into a bipartite-hitting player.
//
// The player simulates a two-node network. Node u runs the protocol
// over channel set A (local labels = A-side indices) and node v over
// channel set B. Each simulated slot, the player reads the channels
// the two instances tune to and proposes that (a, b) pair. While the
// proposals miss, u and v have provably not met on a shared channel,
// so feeding both instances silence is a faithful simulation. The
// first time the pair lands in the hidden matching, the player wins.
//
// If a protocol instance finishes its schedule without winning (the
// discovery attempt failed), the player restarts both instances with
// fresh protocols — matching the "probability at least 1/2" framing of
// Lemma 11, where the guarantee is per execution.
type ReductionPlayer struct {
	mk    func(restart int) (u, v radio.Protocol)
	u, v  radio.Protocol
	slot  int64
	runs  int
	a, b  int
	ready bool
}

// NewReductionPlayer wraps a protocol factory. mk is called once per
// (re)start with an incrementing counter and must return the two nodes'
// protocol instances (fresh randomness each restart).
func NewReductionPlayer(mk func(restart int) (u, v radio.Protocol)) (*ReductionPlayer, error) {
	if mk == nil {
		return nil, fmt.Errorf("lowerbound: nil protocol factory")
	}
	p := &ReductionPlayer{mk: mk}
	p.restart()
	return p, nil
}

func (p *ReductionPlayer) restart() {
	p.u, p.v = p.mk(p.runs)
	p.runs++
	p.slot = 0
}

// Restarts returns how many times the wrapped protocol was restarted
// (0 while the first execution is still running).
func (p *ReductionPlayer) Restarts() int { return p.runs - 1 }

// NextProposal implements Player: it advances the simulation one slot
// and proposes the channel pair the two nodes tuned to.
func (p *ReductionPlayer) NextProposal() (int, int) {
	if p.u.Done() || p.v.Done() {
		p.restart()
	}
	au := p.u.Act(p.slot)
	av := p.v.Act(p.slot)
	p.a, p.b = au.Ch, av.Ch
	p.ready = true
	return p.a, p.b
}

// ObserveMiss implements Player: a miss certifies the two simulated
// nodes were not on a shared channel, so both observe silence.
func (p *ReductionPlayer) ObserveMiss() {
	if !p.ready {
		return
	}
	p.u.Observe(p.slot, nil)
	p.v.Observe(p.slot, nil)
	p.slot++
	p.ready = false
}
