// Package lowerbound implements the combinatorial games behind the
// paper's lower bounds (Section 6).
//
// The (c,k)-bipartite hitting game: a referee privately selects a
// matching M of size k in the complete bipartite graph on two c-vertex
// sides A and B. A player proposes one edge per round and wins on the
// first proposal inside M. Lemma 10 (from [4]): any player that wins
// within f(c,k) rounds with probability ≥ 1/2 has f(c,k) ≥ c²/(αk)
// with 2 < α = 2(β/(β−1))² ≤ 8 for k ≤ c/β.
//
// The c-complete bipartite hitting game is the k = c case (the referee
// picks a perfect matching); Lemma 12 gives the floor f(c) ≥ c/3.
//
// Lemma 11's reduction: a neighbor-discovery algorithm yields a player
// — simulate a two-node network whose channel overlap is the hidden
// matching, and propose, each slot, the pair of channels the two
// simulated nodes tune to. Until the player wins, the simulation
// faithfully feeds both nodes silence, because the nodes have not yet
// landed on a shared channel. ReductionPlayer implements exactly this.
package lowerbound

import (
	"fmt"

	"crn/internal/rng"
)

// Game is one instance of the (c,k)-bipartite hitting game.
type Game struct {
	c, k     int
	matching map[int]int // a-side index -> b-side index
	rounds   int
	won      bool
}

// NewGame creates a game whose referee picks a uniform random matching
// of size k. Requires 1 <= k <= c.
func NewGame(c, k int, r *rng.Source) (*Game, error) {
	if c < 1 {
		return nil, fmt.Errorf("lowerbound: c must be >= 1, got %d", c)
	}
	if k < 1 || k > c {
		return nil, fmt.Errorf("lowerbound: k must be in [1,c] = [1,%d], got %d", c, k)
	}
	aSide := r.SampleK(c, k)
	bSide := r.SampleK(c, k)
	perm := r.Perm(k)
	m := make(map[int]int, k)
	for i, a := range aSide {
		m[a] = bSide[perm[i]]
	}
	return &Game{c: c, k: k, matching: m}, nil
}

// NewCompleteGame creates the c-complete bipartite hitting game (the
// referee picks a uniform random perfect matching).
func NewCompleteGame(c int, r *rng.Source) (*Game, error) {
	return NewGame(c, c, r)
}

// C returns the side size.
func (g *Game) C() int { return g.c }

// K returns the matching size.
func (g *Game) K() int { return g.k }

// Rounds returns the number of proposals made so far.
func (g *Game) Rounds() int { return g.rounds }

// Won reports whether a proposal has hit the matching.
func (g *Game) Won() bool { return g.won }

// Propose submits edge (a, b) and reports whether it is in the hidden
// matching. Out-of-range proposals count as (losing) rounds.
func (g *Game) Propose(a, b int) bool {
	if g.won {
		return true
	}
	g.rounds++
	if b2, ok := g.matching[a]; ok && b2 == b {
		g.won = true
	}
	return g.won
}

// Player proposes one edge per round.
type Player interface {
	// NextProposal returns the edge to propose this round.
	NextProposal() (a, b int)
	// ObserveMiss informs the player the previous proposal missed.
	ObserveMiss()
}

// Play runs player against game until the player wins or maxRounds
// proposals have been made. It returns the number of rounds consumed
// and whether the player won.
func Play(g *Game, p Player, maxRounds int) (int, bool) {
	for g.Rounds() < maxRounds && !g.Won() {
		a, b := p.NextProposal()
		if g.Propose(a, b) {
			return g.Rounds(), true
		}
		p.ObserveMiss()
	}
	return g.Rounds(), g.Won()
}

// UniformPlayer proposes independent uniform random edges.
type UniformPlayer struct {
	c int
	r *rng.Source
}

// NewUniformPlayer returns a memoryless uniform player.
func NewUniformPlayer(c int, r *rng.Source) *UniformPlayer {
	return &UniformPlayer{c: c, r: r}
}

// NextProposal implements Player.
func (p *UniformPlayer) NextProposal() (int, int) {
	return p.r.Intn(p.c), p.r.Intn(p.c)
}

// ObserveMiss implements Player.
func (p *UniformPlayer) ObserveMiss() {}

// SweepPlayer enumerates all c² edges in a random order without
// repetition — the natural near-optimal strategy (expected hitting
// time (c²+1)/(k+1)).
type SweepPlayer struct {
	c    int
	perm []int
	pos  int
}

// NewSweepPlayer returns a sweep player with a fresh random order.
func NewSweepPlayer(c int, r *rng.Source) *SweepPlayer {
	return &SweepPlayer{c: c, perm: r.Perm(c * c)}
}

// NextProposal implements Player.
func (p *SweepPlayer) NextProposal() (int, int) {
	e := p.perm[p.pos%len(p.perm)]
	return e / p.c, e % p.c
}

// ObserveMiss implements Player.
func (p *SweepPlayer) ObserveMiss() { p.pos++ }
