package lowerbound

import (
	"sort"
	"testing"

	"crn/internal/core"
	"crn/internal/radio"
	"crn/internal/rng"
)

func TestNewGameValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := NewGame(0, 1, r); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := NewGame(4, 0, r); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewGame(4, 5, r); err == nil {
		t.Error("k>c accepted")
	}
}

func TestGameMatchingIsValid(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 50; trial++ {
		g, err := NewGame(8, 3, r)
		if err != nil {
			t.Fatal(err)
		}
		if len(g.matching) != 3 {
			t.Fatalf("matching size %d, want 3", len(g.matching))
		}
		seenB := make(map[int]bool)
		for a, b := range g.matching {
			if a < 0 || a >= 8 || b < 0 || b >= 8 {
				t.Fatalf("matching pair (%d,%d) out of range", a, b)
			}
			if seenB[b] {
				t.Fatal("b-side vertex matched twice")
			}
			seenB[b] = true
		}
	}
}

func TestGameProposeMechanics(t *testing.T) {
	r := rng.New(3)
	g, err := NewGame(4, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustively find the matching; every miss increments rounds.
	wins := 0
	for a := 0; a < 4 && wins == 0; a++ {
		for b := 0; b < 4; b++ {
			if g.Propose(a, b) {
				wins++
				break
			}
		}
	}
	if wins != 1 {
		t.Fatal("exhaustive play never won")
	}
	if !g.Won() {
		t.Error("Won() = false after winning proposal")
	}
	if g.Rounds() < 1 || g.Rounds() > 16 {
		t.Errorf("Rounds() = %d after exhaustive play", g.Rounds())
	}
	// Proposals after a win are free.
	before := g.Rounds()
	if !g.Propose(0, 0) {
		t.Error("post-win proposal returned false")
	}
	if g.Rounds() != before {
		t.Error("post-win proposal consumed a round")
	}
}

func TestGameOutOfRangeProposalCountsAsMiss(t *testing.T) {
	r := rng.New(4)
	g, err := NewGame(4, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	if g.Propose(-1, 99) {
		t.Error("out-of-range proposal won")
	}
	if g.Rounds() != 1 {
		t.Errorf("Rounds() = %d, want 1", g.Rounds())
	}
}

func TestCompleteGame(t *testing.T) {
	r := rng.New(5)
	g, err := NewCompleteGame(6, r)
	if err != nil {
		t.Fatal(err)
	}
	if g.K() != 6 {
		t.Errorf("K() = %d, want 6", g.K())
	}
	if len(g.matching) != 6 {
		t.Errorf("perfect matching has %d pairs", len(g.matching))
	}
}

func median(xs []int) int {
	sort.Ints(xs)
	return xs[len(xs)/2]
}

// TestLemma10FloorUniformPlayer: the uniform player's median hitting
// time must respect the Lemma 10 floor c²/(8k) for k ≤ c/2 (and lands
// near c²·ln2/k, well above it).
func TestLemma10FloorUniformPlayer(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	master := rng.New(6)
	for _, tc := range []struct{ c, k int }{{8, 1}, {8, 4}, {16, 2}, {16, 8}, {32, 4}} {
		const trials = 60
		rounds := make([]int, 0, trials)
		for i := 0; i < trials; i++ {
			r := master.Split(uint64(tc.c*1000 + tc.k*100 + i))
			g, err := NewGame(tc.c, tc.k, r)
			if err != nil {
				t.Fatal(err)
			}
			p := NewUniformPlayer(tc.c, r)
			n, won := Play(g, p, 1<<22)
			if !won {
				t.Fatalf("uniform player never won at c=%d k=%d", tc.c, tc.k)
			}
			rounds = append(rounds, n)
		}
		floor := tc.c * tc.c / (8 * tc.k)
		if med := median(rounds); med < floor {
			t.Errorf("c=%d k=%d: median %d below Lemma 10 floor %d", tc.c, tc.k, med, floor)
		}
	}
}

// TestLemma10FloorSweepPlayer: even the near-optimal sweep player
// respects the floor.
func TestLemma10FloorSweepPlayer(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	master := rng.New(7)
	for _, tc := range []struct{ c, k int }{{8, 2}, {16, 4}, {32, 8}} {
		const trials = 80
		rounds := make([]int, 0, trials)
		for i := 0; i < trials; i++ {
			r := master.Split(uint64(tc.c*1000 + tc.k*100 + i))
			g, err := NewGame(tc.c, tc.k, r)
			if err != nil {
				t.Fatal(err)
			}
			p := NewSweepPlayer(tc.c, r)
			n, won := Play(g, p, tc.c*tc.c+1)
			if !won {
				t.Fatalf("sweep player never won at c=%d k=%d", tc.c, tc.k)
			}
			rounds = append(rounds, n)
		}
		floor := tc.c * tc.c / (8 * tc.k)
		med := median(rounds)
		if med < floor {
			t.Errorf("c=%d k=%d: median %d below Lemma 10 floor %d", tc.c, tc.k, med, floor)
		}
		// The sweep player is near-optimal: its median should also be
		// within a small factor of c²/(k+1).
		expect := tc.c * tc.c / (tc.k + 1)
		if med > 3*expect {
			t.Errorf("c=%d k=%d: median %d far above optimal-ish %d", tc.c, tc.k, med, expect)
		}
	}
}

// TestLemma12FloorCompleteGame: the c-complete game needs ≥ c/3 rounds.
func TestLemma12FloorCompleteGame(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	master := rng.New(8)
	for _, c := range []int{6, 12, 24, 48} {
		const trials = 80
		rounds := make([]int, 0, trials)
		for i := 0; i < trials; i++ {
			r := master.Split(uint64(c*1000 + i))
			g, err := NewCompleteGame(c, r)
			if err != nil {
				t.Fatal(err)
			}
			p := NewSweepPlayer(c, r)
			n, won := Play(g, p, c*c+1)
			if !won {
				t.Fatalf("sweep player never won complete game at c=%d", c)
			}
			rounds = append(rounds, n)
		}
		if med := median(rounds); med < c/3 {
			t.Errorf("c=%d: median %d below Lemma 12 floor %d", c, med, c/3)
		}
	}
}

// TestReductionPlayerWinsViaNaiveSeek runs the Lemma 11 reduction with
// the naive discovery protocol as the wrapped algorithm.
func TestReductionPlayerWinsViaNaiveSeek(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const c, k = 6, 2
	master := rng.New(9)
	for trial := 0; trial < 10; trial++ {
		r := master.Split(uint64(trial))
		g, err := NewGame(c, k, r)
		if err != nil {
			t.Fatal(err)
		}
		p := twoNodeParams()
		mk := func(restart int) (radio.Protocol, radio.Protocol) {
			ru := r.Split(uint64(restart)*2 + 1)
			rv := r.Split(uint64(restart)*2 + 2)
			u, err := core.NewNaiveSeek(p, core.Env{ID: 0, C: c, Rand: ru})
			if err != nil {
				t.Fatal(err)
			}
			v, err := core.NewNaiveSeek(p, core.Env{ID: 1, C: c, Rand: rv})
			if err != nil {
				t.Fatal(err)
			}
			return u, v
		}
		player, err := NewReductionPlayer(mk)
		if err != nil {
			t.Fatal(err)
		}
		n, won := Play(g, player, 1<<22)
		if !won {
			t.Fatalf("trial %d: reduction player never won", trial)
		}
		if n < 1 {
			t.Errorf("trial %d: %d rounds", trial, n)
		}
	}
}

// twoNodeParams returns two-node model parameters for the reduction tests.
func twoNodeParams() core.Params {
	return core.Params{N: 2, C: 6, K: 2, KMax: 2, Delta: 1}
}

// TestReductionPlayerFaithfulness: the proposals a reduction player
// makes must be exactly the channel pairs the wrapped protocols tune
// to, and silence must be delivered on every miss. We verify this with
// instrumented protocols.
type probeProto struct {
	channels []int
	pos      int
	observes int
}

func (p *probeProto) Act(_ int64) radio.Action {
	ch := p.channels[p.pos%len(p.channels)]
	p.pos++
	return radio.Action{Kind: radio.Listen, Ch: ch}
}
func (p *probeProto) Observe(_ int64, msg *radio.Message) {
	if msg != nil {
		panic("reduction must deliver silence")
	}
	p.observes++
}
func (p *probeProto) Done() bool { return false }

func TestReductionPlayerFaithfulness(t *testing.T) {
	u := &probeProto{channels: []int{0, 1, 2}}
	v := &probeProto{channels: []int{3, 4, 5}}
	player, err := NewReductionPlayer(func(int) (radio.Protocol, radio.Protocol) { return u, v })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		a, b := player.NextProposal()
		if a != u.channels[i%3] || b != v.channels[i%3] {
			t.Fatalf("round %d proposal (%d,%d), want (%d,%d)", i, a, b, u.channels[i%3], v.channels[i%3])
		}
		player.ObserveMiss()
	}
	if u.observes != 6 || v.observes != 6 {
		t.Errorf("observes = %d/%d, want 6/6", u.observes, v.observes)
	}
	if player.Restarts() != 0 {
		t.Errorf("Restarts() = %d, want 0", player.Restarts())
	}
}

func TestReductionPlayerRestarts(t *testing.T) {
	calls := 0
	mk := func(restart int) (radio.Protocol, radio.Protocol) {
		calls++
		// Protocols that finish after one slot.
		return &finiteProto{budget: 1}, &finiteProto{budget: 1}
	}
	player, err := NewReductionPlayer(mk)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		player.NextProposal()
		player.ObserveMiss()
	}
	if player.Restarts() < 3 {
		t.Errorf("Restarts() = %d, want >= 3 for one-slot protocols", player.Restarts())
	}
	if calls != player.Restarts()+1 {
		t.Errorf("factory called %d times for %d restarts", calls, player.Restarts())
	}
}

func TestNewReductionPlayerNilFactory(t *testing.T) {
	if _, err := NewReductionPlayer(nil); err == nil {
		t.Error("nil factory accepted")
	}
}

type finiteProto struct {
	budget int
	used   int
}

func (p *finiteProto) Act(_ int64) radio.Action {
	return radio.Action{Kind: radio.Listen, Ch: 0}
}
func (p *finiteProto) Observe(_ int64, _ *radio.Message) { p.used++ }
func (p *finiteProto) Done() bool                        { return p.used >= p.budget }
