package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"crn"
	"crn/internal/rng"
	"crn/internal/sweepfile"
)

// Client speaks the crnsweepd HTTP API. The zero value is not usable;
// construct with NewClient.
//
// Every request carries its own deadline (WithRequestTimeout, default
// 5s) so a stalled daemon or a black-holed connection cannot wedge a
// worker forever, and idempotent verbs retry transport failures and
// 5xx replies with jittered exponential backoff. 429 replies retry for
// every verb — they mean the daemon shed the request before processing
// it — honoring the daemon's Retry-After. Submit is the one verb that
// never retries a failure after the request may have been processed: a
// replayed submit would queue a second job.
type Client struct {
	base      string
	hc        *http.Client
	timeout   time.Duration
	retries   int
	retryBase time.Duration
	retryCap  time.Duration
	sleep     func(ctx context.Context, d time.Duration) error

	mu     sync.Mutex
	jitter *rng.Source
}

// Client retry/deadline defaults.
const (
	DefaultRequestTimeout = 5 * time.Second
	DefaultRetries        = 4
	DefaultRetryBase      = 100 * time.Millisecond
	defaultRetryCap       = 2 * time.Second
)

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithRequestTimeout sets the per-request deadline (0 disables it).
// It is distinct from any overall polling deadline: Wait may poll for
// minutes while every individual status request still times out fast.
func WithRequestTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// WithTransport sets the underlying http.RoundTripper — the seam
// internal/chaos uses to inject transport faults.
func WithTransport(rt http.RoundTripper) ClientOption {
	return func(c *Client) { c.hc.Transport = rt }
}

// WithRetries bounds retry attempts (max extra attempts after the
// first) and sets the backoff base; the backoff doubles per attempt
// with ±50% jitter, capped at 2s. max 0 disables retries.
func WithRetries(max int, base time.Duration) ClientOption {
	return func(c *Client) {
		c.retries = max
		if base > 0 {
			c.retryBase = base
		}
	}
}

// NewClient returns a client for a daemon at base (e.g.
// "http://127.0.0.1:8471"). A missing scheme defaults to http://.
func NewClient(base string, opts ...ClientOption) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	h := fnv.New64a()
	io.WriteString(h, base)
	c := &Client{
		base:      strings.TrimRight(base, "/"),
		hc:        &http.Client{},
		timeout:   DefaultRequestTimeout,
		retries:   DefaultRetries,
		retryBase: DefaultRetryBase,
		retryCap:  defaultRetryCap,
		sleep:     sleepCtx,
		jitter:    rng.New(h.Sum64()),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// APIError is a non-2xx reply from the daemon, carrying the decoded
// error message and any Retry-After hint.
type APIError struct {
	Method, Path string
	Status       int
	Msg          string
	RetryAfter   time.Duration
}

func (e *APIError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("%s %s: %s (http %d)", e.Method, e.Path, e.Msg, e.Status)
	}
	return fmt.Sprintf("%s %s: http %d", e.Method, e.Path, e.Status)
}

// IsConflict reports whether err is a 409 reply — a lease the daemon
// no longer recognizes (expiry won) or a result that is not ready.
func IsConflict(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusConflict
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// jittered returns a uniform duration in [d/2, 3d/2).
func (c *Client) jittered(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return d/2 + time.Duration(c.jitter.Intn(int(d)))
}

// attempt issues one request under the per-request deadline. A
// deadline expiry is surfaced as an error wrapping
// context.DeadlineExceeded — distinguishable (errors.Is) from
// transport errors like a refused connection or an injected reset.
func (c *Client) attempt(ctx context.Context, method, path string, payload []byte) (status int, doc []byte, retryAfter time.Duration, err error) {
	rctx := ctx
	if c.timeout > 0 {
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(rctx, method, c.base+path, body)
	if err != nil {
		return 0, nil, 0, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, 0, c.classify(ctx, method, path, err)
	}
	defer resp.Body.Close()
	doc, err = io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, 0, c.classify(ctx, method, path, err)
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if n, aerr := strconv.Atoi(s); aerr == nil && n > 0 {
			retryAfter = time.Duration(n) * time.Second
		}
	}
	return resp.StatusCode, doc, retryAfter, nil
}

// classify wraps a transport-layer failure, keeping the per-request
// deadline case identifiable via errors.Is(err, context.DeadlineExceeded).
func (c *Client) classify(ctx context.Context, method, path string, err error) error {
	if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
		return fmt.Errorf("%s %s: no reply within the %v request deadline: %w",
			method, path, c.timeout, context.DeadlineExceeded)
	}
	return fmt.Errorf("%s %s: %w", method, path, err)
}

// request issues method path with bounded, jittered-exponential
// retries and returns the final status and body. Transport errors and
// 5xx replies retry only when idem is true; 429 retries regardless.
// The context governs the whole exchange, each attempt its own
// deadline.
func (c *Client) request(ctx context.Context, method, path string, in any, idem bool) (int, []byte, error) {
	var payload []byte
	if in != nil {
		var err error
		if payload, err = json.Marshal(in); err != nil {
			return 0, nil, err
		}
	}
	delay := c.retryBase
	var (
		lastStatus int
		lastBody   []byte
		lastErr    error
	)
	for attempt := 0; ; attempt++ {
		status, doc, retryAfter, err := c.attempt(ctx, method, path, payload)
		retryable := false
		wait := time.Duration(0)
		if err != nil {
			if ctx.Err() != nil {
				return 0, nil, err
			}
			retryable = idem
			lastStatus, lastBody, lastErr = 0, nil, err
		} else {
			switch {
			case status == http.StatusTooManyRequests:
				// The daemon shed the request before touching it:
				// safe to retry any verb, at the daemon's pace.
				retryable = true
				wait = retryAfter
			case status >= 500:
				retryable = idem
			}
			lastStatus, lastBody, lastErr = status, doc, nil
		}
		if !retryable || attempt >= c.retries {
			return lastStatus, lastBody, lastErr
		}
		if wait <= 0 {
			wait = c.jittered(delay)
			if delay *= 2; delay > c.retryCap {
				delay = c.retryCap
			}
		}
		if serr := c.sleep(ctx, wait); serr != nil {
			if lastErr != nil {
				return 0, nil, lastErr
			}
			return 0, nil, serr
		}
	}
}

func (c *Client) apiError(method, path string, status int, doc []byte, retryAfter time.Duration) error {
	ae := &APIError{Method: method, Path: path, Status: status, RetryAfter: retryAfter}
	var er errorReply
	if json.Unmarshal(doc, &er) == nil {
		ae.Msg = er.Error
	}
	return ae
}

// do issues one request; out, when non-nil, receives the decoded JSON
// reply. idem marks the verb safe to retry after a failure whose
// effect on the daemon is unknown.
func (c *Client) do(ctx context.Context, method, path string, in, out any, idem bool) error {
	status, doc, err := c.request(ctx, method, path, in, idem)
	if err != nil {
		return err
	}
	if status/100 != 2 {
		return c.apiError(method, path, status, doc, 0)
	}
	if out == nil || status == http.StatusNoContent {
		return nil
	}
	return json.Unmarshal(doc, out)
}

// WaitReady polls the daemon's health endpoint until it answers or
// the timeout elapses — submit scripts race daemon startup otherwise.
func (c *Client) WaitReady(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		err := c.do(ctx, http.MethodGet, "/api/v1/healthz", nil, nil, true)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon at %s not ready after %v: %w", c.base, timeout, err)
		}
		if err := c.sleep(ctx, 100*time.Millisecond); err != nil {
			return err
		}
	}
}

// Submit queues a sweep and returns its job id. Submit does not retry
// past the point where the daemon may have queued the job (it would
// queue a duplicate); only shed (429) requests are replayed.
func (c *Client) Submit(ctx context.Context, spec *sweepfile.Spec, shards int) (string, error) {
	var resp SubmitResponse
	if err := c.do(ctx, http.MethodPost, "/api/v1/jobs", &SubmitRequest{Spec: spec, Shards: shards}, &resp, false); err != nil {
		return "", err
	}
	return resp.ID, nil
}

// Jobs lists every job the daemon knows, in submission order.
func (c *Client) Jobs(ctx context.Context) (*JobList, error) {
	var list JobList
	if err := c.do(ctx, http.MethodGet, "/api/v1/jobs", nil, &list, true); err != nil {
		return nil, err
	}
	return &list, nil
}

// Status fetches one job's live state.
func (c *Client) Status(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+id, nil, &st, true); err != nil {
		return nil, err
	}
	return &st, nil
}

// Result fetches a done job's merged SweepResult — both parsed and as
// the verbatim bytes the daemon serves, which are the bytes an
// in-process crn.Sweep would have produced (the byte-identity
// contract; compare them with cmp/diff, not semantically).
func (c *Client) Result(ctx context.Context, id string) (*crn.SweepResult, []byte, error) {
	path := "/api/v1/jobs/" + id + "/result"
	status, doc, err := c.request(ctx, http.MethodGet, path, nil, true)
	if err != nil {
		return nil, nil, err
	}
	if status != http.StatusOK {
		return nil, nil, c.apiError(http.MethodGet, path, status, doc, 0)
	}
	res := new(crn.SweepResult)
	if err := json.Unmarshal(doc, res); err != nil {
		return nil, nil, err
	}
	return res, doc, nil
}

// Wait polls a job until it is done (returning its final status) or
// failed (returning an error), at the given poll interval.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*JobStatus, error) {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		switch st.State {
		case JobDone:
			return st, nil
		case JobFailed:
			return st, fmt.Errorf("job %s failed: %s", id, st.Error)
		}
		if err := c.sleep(ctx, poll); err != nil {
			return nil, err
		}
	}
}

// Acquire pulls one lease; nil means no work is available right now.
// Safe to retry: a grant whose reply was lost expires via its TTL and
// is re-dispatched — no shard is ever lost to a dropped response.
func (c *Client) Acquire(ctx context.Context, worker string) (*LeaseGrant, error) {
	path := "/api/v1/lease"
	status, doc, err := c.request(ctx, http.MethodPost, path, &LeaseRequest{Worker: worker}, true)
	if err != nil {
		return nil, err
	}
	switch status {
	case http.StatusNoContent:
		return nil, nil
	case http.StatusOK:
		grant := new(LeaseGrant)
		if err := json.Unmarshal(doc, grant); err != nil {
			return nil, err
		}
		return grant, nil
	default:
		return nil, c.apiError(http.MethodPost, path, status, doc, 0)
	}
}

// Heartbeat extends a held lease.
func (c *Client) Heartbeat(ctx context.Context, leaseID string) error {
	return c.do(ctx, http.MethodPost, "/api/v1/leases/"+leaseID+"/heartbeat", &struct{}{}, nil, true)
}

// Complete uploads a finished shard's artifact under its lease.
// Idempotent on the daemon side: re-uploading the artifact for a lease
// that already completed is a no-op 204, so a worker whose ack was
// lost in transit can retry safely.
func (c *Client) Complete(ctx context.Context, leaseID string, a *sweepfile.Artifact) error {
	return c.do(ctx, http.MethodPost, "/api/v1/leases/"+leaseID+"/complete", &CompleteRequest{Artifact: a}, nil, true)
}

// Fail releases a lease the worker cannot finish.
func (c *Client) Fail(ctx context.Context, leaseID, reason string) error {
	return c.do(ctx, http.MethodPost, "/api/v1/leases/"+leaseID+"/fail", &FailRequest{Reason: reason}, nil, true)
}
