package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"crn"
	"crn/internal/sweepfile"
)

// Client speaks the crnsweepd HTTP API. The zero value is not usable;
// construct with NewClient.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for a daemon at base (e.g.
// "http://127.0.0.1:8471"). A missing scheme defaults to http://.
func NewClient(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{},
	}
}

// do issues one request; out, when non-nil, receives the decoded JSON
// reply. A nil, nil return means 204 No Content.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		doc, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(doc)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	doc, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var er errorReply
		if json.Unmarshal(doc, &er) == nil && er.Error != "" {
			return fmt.Errorf("%s %s: %s (http %d)", method, path, er.Error, resp.StatusCode)
		}
		return fmt.Errorf("%s %s: http %d", method, path, resp.StatusCode)
	}
	if out == nil || resp.StatusCode == http.StatusNoContent {
		return nil
	}
	return json.Unmarshal(doc, out)
}

// WaitReady polls the daemon's health endpoint until it answers or
// the timeout elapses — submit scripts race daemon startup otherwise.
func (c *Client) WaitReady(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		err := c.do(ctx, http.MethodGet, "/api/v1/healthz", nil, nil)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon at %s not ready after %v: %w", c.base, timeout, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// Submit queues a sweep and returns its job id.
func (c *Client) Submit(ctx context.Context, spec *sweepfile.Spec, shards int) (string, error) {
	var resp SubmitResponse
	if err := c.do(ctx, http.MethodPost, "/api/v1/jobs", &SubmitRequest{Spec: spec, Shards: shards}, &resp); err != nil {
		return "", err
	}
	return resp.ID, nil
}

// Jobs lists every job the daemon knows, in submission order.
func (c *Client) Jobs(ctx context.Context) (*JobList, error) {
	var list JobList
	if err := c.do(ctx, http.MethodGet, "/api/v1/jobs", nil, &list); err != nil {
		return nil, err
	}
	return &list, nil
}

// Status fetches one job's live state.
func (c *Client) Status(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Result fetches a done job's merged SweepResult — both parsed and as
// the verbatim bytes the daemon serves, which are the bytes an
// in-process crn.Sweep would have produced (the byte-identity
// contract; compare them with cmp/diff, not semantically).
func (c *Client) Result(ctx context.Context, id string) (*crn.SweepResult, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/api/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	doc, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var er errorReply
		if json.Unmarshal(doc, &er) == nil && er.Error != "" {
			return nil, nil, fmt.Errorf("result %s: %s (http %d)", id, er.Error, resp.StatusCode)
		}
		return nil, nil, fmt.Errorf("result %s: http %d", id, resp.StatusCode)
	}
	res := new(crn.SweepResult)
	if err := json.Unmarshal(doc, res); err != nil {
		return nil, nil, err
	}
	return res, doc, nil
}

// Wait polls a job until it is done (returning its final status) or
// failed (returning an error), at the given poll interval.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*JobStatus, error) {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		switch st.State {
		case JobDone:
			return st, nil
		case JobFailed:
			return st, fmt.Errorf("job %s failed: %s", id, st.Error)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Acquire pulls one lease; nil means no work is available right now.
func (c *Client) Acquire(ctx context.Context, worker string) (*LeaseGrant, error) {
	req, err := json.Marshal(&LeaseRequest{Worker: worker})
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/api/v1/lease", bytes.NewReader(req))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	doc, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusNoContent:
		return nil, nil
	case http.StatusOK:
		grant := new(LeaseGrant)
		if err := json.Unmarshal(doc, grant); err != nil {
			return nil, err
		}
		return grant, nil
	default:
		var er errorReply
		if json.Unmarshal(doc, &er) == nil && er.Error != "" {
			return nil, fmt.Errorf("lease: %s (http %d)", er.Error, resp.StatusCode)
		}
		return nil, fmt.Errorf("lease: http %d", resp.StatusCode)
	}
}

// Heartbeat extends a held lease.
func (c *Client) Heartbeat(ctx context.Context, leaseID string) error {
	return c.do(ctx, http.MethodPost, "/api/v1/leases/"+leaseID+"/heartbeat", &struct{}{}, nil)
}

// Complete uploads a finished shard's artifact under its lease.
func (c *Client) Complete(ctx context.Context, leaseID string, a *sweepfile.Artifact) error {
	return c.do(ctx, http.MethodPost, "/api/v1/leases/"+leaseID+"/complete", &CompleteRequest{Artifact: a}, nil)
}

// Fail releases a lease the worker cannot finish.
func (c *Client) Fail(ctx context.Context, leaseID, reason string) error {
	return c.do(ctx, http.MethodPost, "/api/v1/leases/"+leaseID+"/fail", &FailRequest{Reason: reason}, nil)
}
