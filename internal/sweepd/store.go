package sweepd

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"path/filepath"
	"time"

	"crn"
	"crn/internal/sweepfile"
)

// store is the daemon's spool directory. Layout:
//
//	<root>/jobs/<id>/job.json       service metadata (id, creation time)
//	<root>/jobs/<id>/manifest.json  exactly what `crnsweep plan` writes
//	<root>/jobs/<id>/shard-<k>.json exactly what `crnsweep run` writes
//	<root>/jobs/<id>/merged.json    exactly what `crnsweep merge` writes
//
// Because each job directory is a valid crnsweep working directory,
// the offline tooling composes with the daemon: `crnsweep merge
// -manifest <spool>/jobs/<id>/manifest.json` reproduces the service's
// result, and a human can inspect or resume a wedged job by hand.
// Recovery leans on the same property in the other direction: a
// restarted daemon re-queues exactly the shards whose artifacts fail
// the `crnsweep resume` validity test.
//
// All I/O goes through an injectable sweepfile.FS so internal/chaos
// can make the disk lie — torn writes, bit flips, fsync-style errors —
// and the recovery paths are exercised for real.
type store struct {
	root string
	fs   sweepfile.FS
}

// jobMeta is the small service-side record next to the manifest.
type jobMeta struct {
	ID      string    `json:"id"`
	Created time.Time `json:"created"`
}

func newStore(root string, fsys sweepfile.FS) (*store, error) {
	if root == "" {
		return nil, fmt.Errorf("sweepd: spool directory is required")
	}
	if fsys == nil {
		fsys = sweepfile.OS
	}
	if err := fsys.MkdirAll(filepath.Join(root, "jobs")); err != nil {
		return nil, err
	}
	return &store{root: root, fs: fsys}, nil
}

func (st *store) jobDir(id string) string { return filepath.Join(st.root, "jobs", id) }

// writeVerified writes v as pretty JSON and reads the file back to
// verify the bytes on disk are the bytes we meant to write. Every
// spool write goes through it: the read-back is what makes the
// daemon's acks trustworthy — a shard is only acked (and a job only
// marked merged) after its file provably survived the trip through
// the filesystem, so "acked" implies "recoverable".
func (st *store) writeVerified(path string, v any) error {
	doc, err := sweepfile.MarshalPretty(v)
	if err != nil {
		return err
	}
	return st.writeVerifiedBytes(path, doc)
}

func (st *store) writeVerifiedBytes(path string, doc []byte) error {
	if err := st.fs.WriteFileAtomic(path, doc); err != nil {
		return err
	}
	back, err := st.fs.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read-back of %s: %w", filepath.Base(path), err)
	}
	if !bytes.Equal(back, doc) {
		return fmt.Errorf("read-back of %s: %d bytes on disk, wrote %d — torn or corrupted write", filepath.Base(path), len(back), len(doc))
	}
	return nil
}

// docSum is the checksum the daemon keeps in memory for a merged
// result, so serving it later can detect a lying read.
func docSum(doc []byte) string {
	return fmt.Sprintf("sha256:%x", sha256.Sum256(doc))
}

// createJob spools a freshly-submitted job: directory, metadata and
// manifest. The manifest bytes are the same bytes `crnsweep plan`
// would have produced for this spec and shard count.
func (st *store) createJob(id string, m *sweepfile.Manifest, created time.Time) (string, error) {
	dir := st.jobDir(id)
	if err := st.fs.MkdirAll(dir); err != nil {
		return "", err
	}
	if err := st.writeVerified(filepath.Join(dir, "job.json"), &jobMeta{ID: id, Created: created}); err != nil {
		return "", err
	}
	if err := st.writeVerified(filepath.Join(dir, "manifest.json"), m); err != nil {
		return "", err
	}
	return dir, nil
}

// writeArtifact spools one validated shard artifact, verified.
func (st *store) writeArtifact(j *job, shard int, a *sweepfile.Artifact) error {
	if err := st.writeVerified(filepath.Join(j.dir, j.manifest.Artifacts[shard]), a); err != nil {
		return fmt.Errorf("spool shard %d: %w", shard, err)
	}
	return nil
}

// shardInvalidError marks a merge failure caused by one shard's
// spooled artifact no longer validating — the self-healing case: the
// server re-queues that shard instead of failing the job.
type shardInvalidError struct {
	shard int
	err   error
}

func (e *shardInvalidError) Error() string {
	return fmt.Sprintf("merge: shard %d artifact invalid: %v", e.shard, e.err)
}
func (e *shardInvalidError) Unwrap() error { return e.err }

// fatalMergeError marks a semantic merge failure (crn.MergeShards
// rejected the artifacts). Retrying cannot help; the job fails.
type fatalMergeError struct{ err error }

func (e *fatalMergeError) Error() string { return fmt.Sprintf("merge: %v", e.err) }
func (e *fatalMergeError) Unwrap() error { return e.err }

// mergeJob loads every spooled artifact, merges them through
// crn.MergeShards and writes the job's merged result, returning the
// result bytes' checksum. Idempotent and deterministic: re-merging
// after a crash overwrites the file with identical bytes. Error
// taxonomy: *shardInvalidError → re-queue that shard;
// *fatalMergeError → fail the job; anything else (a spool write
// error) is transient and the janitor retries the merge.
func (st *store) mergeJob(j *job) (string, error) {
	results := make([]*crn.ShardResult, len(j.manifest.Plan.Shards))
	for k := range results {
		res, err := sweepfile.LoadArtifactFS(st.fs, j.manifest, j.dir, k)
		if err != nil {
			return "", &shardInvalidError{shard: k, err: err}
		}
		results[k] = res
	}
	merged, err := crn.MergeShards(j.manifest.Plan, results...)
	if err != nil {
		return "", &fatalMergeError{err: err}
	}
	doc, err := sweepfile.MarshalPretty(merged)
	if err != nil {
		return "", err
	}
	if err := st.writeVerifiedBytes(filepath.Join(j.dir, j.manifest.Merged), doc); err != nil {
		return "", err
	}
	return docSum(doc), nil
}

// resultBytes returns a done job's merged result, verbatim. When the
// merge-time checksum is known it is re-verified here: a disk that
// lies on the read path must not leak corrupted bytes to a client —
// the error becomes a 500, and result fetches are idempotent retries.
func (st *store) resultBytes(j *job, wantSum string) ([]byte, error) {
	doc, err := st.fs.ReadFile(filepath.Join(j.dir, j.manifest.Merged))
	if err != nil {
		return nil, err
	}
	if wantSum != "" && docSum(doc) != wantSum {
		return nil, fmt.Errorf("job %s: merged result read corrupted (checksum mismatch), retry", j.id)
	}
	return doc, nil
}

// recoveredJob is one job found in the spool at startup.
type recoveredJob struct {
	id       string
	dir      string
	manifest *sweepfile.Manifest
	created  time.Time
	// doneShards[k]: shard k's artifact exists and validates.
	doneShards []bool
	// merged: merged.json byte-matches a recomputed merge of the
	// artifacts; mergedSum is that result's checksum.
	merged    bool
	mergedSum string
}

// recover scans the spool and classifies every job the way `crnsweep
// resume` would: shards with valid artifacts are done, everything
// else is pending again. Stale atomic-write temp files — the debris
// of a writer crashed between temp-write and rename — are swept out
// first. Corrupt job directories are skipped (and reported) rather
// than taking the daemon down.
func (st *store) recover() (jobs []*recoveredJob, skipped []error, err error) {
	entries, err := st.fs.ReadDir(filepath.Join(st.root, "jobs"))
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		dir := st.jobDir(id)
		if _, terr := sweepfile.RemoveStaleTemps(st.fs, dir); terr != nil {
			skipped = append(skipped, fmt.Errorf("job %s: sweeping temp files: %w", id, terr))
		}
		m, lerr := st.loadManifest(dir)
		if lerr != nil {
			skipped = append(skipped, fmt.Errorf("job %s: %w", id, lerr))
			continue
		}
		rj := &recoveredJob{id: id, dir: dir, manifest: m, doneShards: make([]bool, len(m.Plan.Shards))}
		var meta jobMeta
		if doc, rerr := st.fs.ReadFile(filepath.Join(dir, "job.json")); rerr == nil {
			if json.Unmarshal(doc, &meta) == nil && meta.ID == id {
				rj.created = meta.Created
			}
		}
		allValid := true
		results := make([]*crn.ShardResult, len(rj.doneShards))
		for k := range rj.doneShards {
			if res, aerr := sweepfile.LoadArtifactFS(st.fs, m, dir, k); aerr == nil {
				rj.doneShards[k] = true
				results[k] = res
			} else {
				allValid = false
			}
		}
		// Accept merged.json only if it byte-matches a recomputed merge
		// of the validated artifacts — recomputing is cheap and the
		// comparison both rejects a merged file that went bad on disk
		// (it will simply be re-merged, idempotently) and yields the
		// checksum that guards every later result read.
		if doc, merr := st.fs.ReadFile(filepath.Join(dir, m.Merged)); merr == nil && allValid {
			if merged, xerr := crn.MergeShards(m.Plan, results...); xerr == nil {
				if want, perr := sweepfile.MarshalPretty(merged); perr == nil && bytes.Equal(doc, want) {
					rj.merged = true
					rj.mergedSum = docSum(want)
				}
			}
		}
		jobs = append(jobs, rj)
	}
	return jobs, skipped, nil
}

// loadManifest is sweepfile.LoadManifest through the store's FS.
func (st *store) loadManifest(dir string) (*sweepfile.Manifest, error) {
	path := filepath.Join(dir, "manifest.json")
	doc, err := st.fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m := new(sweepfile.Manifest)
	if err := sweepfile.UnmarshalStrict(doc, m); err != nil {
		return nil, fmt.Errorf("manifest %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("manifest %s: %w", path, err)
	}
	return m, nil
}
