package sweepd

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"crn"
	"crn/internal/sweepfile"
)

// store is the daemon's spool directory. Layout:
//
//	<root>/jobs/<id>/job.json       service metadata (id, creation time)
//	<root>/jobs/<id>/manifest.json  exactly what `crnsweep plan` writes
//	<root>/jobs/<id>/shard-<k>.json exactly what `crnsweep run` writes
//	<root>/jobs/<id>/merged.json    exactly what `crnsweep merge` writes
//
// Because each job directory is a valid crnsweep working directory,
// the offline tooling composes with the daemon: `crnsweep merge
// -manifest <spool>/jobs/<id>/manifest.json` reproduces the service's
// result, and a human can inspect or resume a wedged job by hand.
// Recovery leans on the same property in the other direction: a
// restarted daemon re-queues exactly the shards whose artifacts fail
// the `crnsweep resume` validity test.
type store struct {
	root string
}

// jobMeta is the small service-side record next to the manifest.
type jobMeta struct {
	ID      string    `json:"id"`
	Created time.Time `json:"created"`
}

func newStore(root string) (*store, error) {
	if root == "" {
		return nil, fmt.Errorf("sweepd: spool directory is required")
	}
	if err := os.MkdirAll(filepath.Join(root, "jobs"), 0o755); err != nil {
		return nil, err
	}
	return &store{root: root}, nil
}

func (st *store) jobDir(id string) string { return filepath.Join(st.root, "jobs", id) }

// createJob spools a freshly-submitted job: directory, metadata and
// manifest. The manifest bytes are the same bytes `crnsweep plan`
// would have produced for this spec and shard count.
func (st *store) createJob(id string, m *sweepfile.Manifest, created time.Time) (string, error) {
	dir := st.jobDir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	if err := sweepfile.WriteJSON(filepath.Join(dir, "job.json"), &jobMeta{ID: id, Created: created}); err != nil {
		return "", err
	}
	if err := sweepfile.WriteJSON(filepath.Join(dir, "manifest.json"), m); err != nil {
		return "", err
	}
	return dir, nil
}

// writeArtifact spools one validated shard artifact.
func (st *store) writeArtifact(j *job, shard int, a *sweepfile.Artifact) error {
	return sweepfile.WriteJSON(filepath.Join(j.dir, j.manifest.Artifacts[shard]), a)
}

// mergeJob loads every spooled artifact, merges them through
// crn.MergeShards and writes the job's merged result. Idempotent and
// deterministic: re-merging after a crash overwrites the file with
// identical bytes.
func (st *store) mergeJob(j *job) error {
	results := make([]*crn.ShardResult, len(j.manifest.Plan.Shards))
	for k := range results {
		res, err := sweepfile.LoadArtifact(j.manifest, j.dir, k)
		if err != nil {
			return fmt.Errorf("merge: shard %d: %w", k, err)
		}
		results[k] = res
	}
	merged, err := crn.MergeShards(j.manifest.Plan, results...)
	if err != nil {
		return fmt.Errorf("merge: %w", err)
	}
	return sweepfile.WriteJSON(filepath.Join(j.dir, j.manifest.Merged), merged)
}

// resultBytes returns a done job's merged result, verbatim.
func (st *store) resultBytes(j *job) ([]byte, error) {
	return os.ReadFile(filepath.Join(j.dir, j.manifest.Merged))
}

// recoveredJob is one job found in the spool at startup.
type recoveredJob struct {
	id       string
	dir      string
	manifest *sweepfile.Manifest
	created  time.Time
	// doneShards[k]: shard k's artifact exists and validates.
	doneShards []bool
	// merged: merged.json parses as a SweepResult.
	merged bool
}

// recover scans the spool and classifies every job the way `crnsweep
// resume` would: shards with valid artifacts are done, everything
// else is pending again. Corrupt job directories are skipped (and
// reported) rather than taking the daemon down.
func (st *store) recover() (jobs []*recoveredJob, skipped []error, err error) {
	entries, err := os.ReadDir(filepath.Join(st.root, "jobs"))
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		dir := st.jobDir(id)
		m, _, lerr := sweepfile.LoadManifest(filepath.Join(dir, "manifest.json"))
		if lerr != nil {
			skipped = append(skipped, fmt.Errorf("job %s: %w", id, lerr))
			continue
		}
		rj := &recoveredJob{id: id, dir: dir, manifest: m, doneShards: make([]bool, len(m.Plan.Shards))}
		var meta jobMeta
		if doc, rerr := os.ReadFile(filepath.Join(dir, "job.json")); rerr == nil {
			if json.Unmarshal(doc, &meta) == nil && meta.ID == id {
				rj.created = meta.Created
			}
		}
		allValid := true
		for k := range rj.doneShards {
			if _, aerr := sweepfile.LoadArtifact(m, dir, k); aerr == nil {
				rj.doneShards[k] = true
			} else {
				allValid = false
			}
		}
		if doc, merr := os.ReadFile(filepath.Join(dir, m.Merged)); merr == nil && allValid {
			var res crn.SweepResult
			rj.merged = json.Unmarshal(doc, &res) == nil
		}
		jobs = append(jobs, rj)
	}
	return jobs, skipped, nil
}
