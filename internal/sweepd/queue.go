package sweepd

import (
	"fmt"
	"sync"
	"time"

	"crn/internal/sweepfile"
)

// queue is the daemon's in-memory job/lease state machine. It owns no
// I/O: the server validates artifacts and writes spool files, the
// queue only decides who works on what. All methods are safe for
// concurrent use.
//
// Shard lifecycle: pending → leased → done, with leased → pending on
// lease expiry or explicit failure (attempts++ each time a lease is
// issued). A shard that burns through maxAttempts leases fails its
// whole job — by then the spec itself is the likely culprit, not the
// workers.
type queue struct {
	mu     sync.Mutex
	jobs   map[string]*job
	order  []string          // submission order, for listing and FIFO dispatch
	leases map[string]*lease // live leases by id
	// doneLeases remembers completed leases until their job merges, so
	// a worker whose Complete ack was lost in transit can replay the
	// upload and get a no-op success instead of a 409. Expired leases
	// are NOT here: expiry wins over late completion, always.
	doneLeases  map[string]*lease
	ttl         time.Duration
	maxAttempts int
	seq         int              // lease id sequence
	now         func() time.Time // injectable clock
}

type job struct {
	id       string
	manifest *sweepfile.Manifest
	dir      string // spool directory holding this job's files
	created  time.Time
	shards   []shardState
	merged   bool // merged.json written, result servable
	// mergedSum is the merged result's checksum, kept in memory so
	// serving the result can detect a read that went bad on disk.
	mergedSum string
	failerr   string // non-empty: job failed
}

type shardState struct {
	state    string // ShardPending | ShardLeased | ShardDone
	leaseID  string
	worker   string
	deadline time.Time
	attempts int
}

// lease is one live grant; the authoritative copy of its state lives
// on the shard, this is the index entry.
type lease struct {
	id    string
	job   *job
	shard int
}

func newQueue(ttl time.Duration, maxAttempts int) *queue {
	return &queue{
		jobs:        make(map[string]*job),
		leases:      make(map[string]*lease),
		doneLeases:  make(map[string]*lease),
		ttl:         ttl,
		maxAttempts: maxAttempts,
		now:         time.Now,
	}
}

// add registers a job. doneShards[k] pre-marks shards recovered from
// the spool with valid artifacts (nil means none); merged marks a job
// whose merged result already exists, with mergedSum its checksum.
func (q *queue) add(id, dir string, m *sweepfile.Manifest, created time.Time, doneShards []bool, merged bool, mergedSum string) *job {
	q.mu.Lock()
	defer q.mu.Unlock()
	j := &job{
		id:        id,
		manifest:  m,
		dir:       dir,
		created:   created,
		shards:    make([]shardState, len(m.Plan.Shards)),
		merged:    merged,
		mergedSum: mergedSum,
	}
	for k := range j.shards {
		j.shards[k].state = ShardPending
		if doneShards != nil && doneShards[k] {
			j.shards[k].state = ShardDone
		}
	}
	q.jobs[id] = j
	q.order = append(q.order, id)
	return j
}

// acquire leases the next pending shard (FIFO over jobs, index order
// within a job) to worker. Returns nil when no work is available.
func (q *queue) acquire(worker string) *LeaseGrant {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked()
	for _, id := range q.order {
		j := q.jobs[id]
		if j.failerr != "" || j.allDoneLocked() {
			continue
		}
		for k := range j.shards {
			s := &j.shards[k]
			if s.state != ShardPending {
				continue
			}
			q.seq++
			leaseID := fmt.Sprintf("l%d-%s-%d", q.seq, j.id, k)
			s.state = ShardLeased
			s.leaseID = leaseID
			s.worker = worker
			s.deadline = q.now().Add(q.ttl)
			s.attempts++
			q.leases[leaseID] = &lease{id: leaseID, job: j, shard: k}
			return &LeaseGrant{
				Lease:     leaseID,
				Job:       j.id,
				Shard:     k,
				TTLMillis: q.ttl.Milliseconds(),
				Manifest:  j.manifest,
			}
		}
	}
	return nil
}

func (j *job) allDoneLocked() bool {
	for k := range j.shards {
		if j.shards[k].state != ShardDone {
			return false
		}
	}
	return true
}

// heartbeat extends a live lease's deadline by the full TTL.
func (q *queue) heartbeat(leaseID string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked()
	l, ok := q.leases[leaseID]
	if !ok {
		return fmt.Errorf("lease %s unknown or expired", leaseID)
	}
	l.job.shards[l.shard].deadline = q.now().Add(q.ttl)
	return nil
}

// lookup resolves a lease to its job and shard index without changing
// state — the server uses it to validate an uploaded artifact against
// the right manifest before committing anything. completed reports a
// lease that already finished: a replayed Complete under it is a
// no-op success, not a conflict.
func (q *queue) lookup(leaseID string) (j *job, shard int, completed bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked()
	if l, ok := q.doneLeases[leaseID]; ok {
		return l.job, l.shard, true, nil
	}
	l, ok := q.leases[leaseID]
	if !ok {
		return nil, 0, false, fmt.Errorf("lease %s unknown or expired", leaseID)
	}
	return l.job, l.shard, false, nil
}

// complete marks a leased shard done (its artifact is already
// validated and spooled) and reports whether that finished the job's
// last shard — the caller then merges exactly once.
func (q *queue) complete(leaseID string) (j *job, lastShard bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked()
	if l, ok := q.doneLeases[leaseID]; ok {
		// Duplicate upload under a lease that already completed (the
		// worker's first ack was lost in transit): idempotent no-op.
		return l.job, false, nil
	}
	l, ok := q.leases[leaseID]
	if !ok {
		// The lease expired while the worker was finishing. The shard
		// has been re-queued; the artifact the worker spooled is still
		// valid (bytes are deterministic), but letting expiry win keeps
		// the state machine single-writer.
		return nil, false, fmt.Errorf("lease %s unknown or expired", leaseID)
	}
	delete(q.leases, leaseID)
	q.doneLeases[leaseID] = l
	s := &l.job.shards[l.shard]
	s.state = ShardDone
	s.leaseID, s.worker = "", ""
	return l.job, l.job.allDoneLocked() && !l.job.merged, nil
}

// fail releases a lease the worker could not finish, re-queueing the
// shard (or failing the job once attempts are exhausted).
func (q *queue) fail(leaseID, reason string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	l, ok := q.leases[leaseID]
	if !ok {
		return fmt.Errorf("lease %s unknown or expired", leaseID)
	}
	delete(q.leases, leaseID)
	q.requeueLocked(l.job, l.shard, reason)
	return nil
}

// markMerged records that a job's merged result is on disk (with its
// checksum, for serve-time verification) and drops its completed-lease
// bookkeeping (nothing left to replay against).
func (q *queue) markMerged(j *job, sum string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j.merged = true
	j.mergedSum = sum
	for id, l := range q.doneLeases {
		if l.job == j {
			delete(q.doneLeases, id)
		}
	}
}

// mergedSumOf reads a job's merged-result checksum under the lock.
func (q *queue) mergedSumOf(j *job) string {
	q.mu.Lock()
	defer q.mu.Unlock()
	return j.mergedSum
}

// invalidateShard re-queues a done shard whose spooled artifact
// turned out to be invalid at merge time — a torn or corrupted write
// the ack-time validation could not have caught (the bytes went bad
// on disk, or a faulty filesystem lied). The shard burns an attempt
// like any other failure, so persistent corruption still fails the
// job through maxAttempts instead of looping forever.
func (q *queue) invalidateShard(j *job, shard int, reason string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := &j.shards[shard]
	if s.state != ShardDone || j.merged || j.failerr != "" {
		return
	}
	for id, l := range q.doneLeases {
		if l.job == j && l.shard == shard {
			delete(q.doneLeases, id)
		}
	}
	q.requeueLocked(j, shard, reason)
}

// unmergedDone snapshots jobs whose shards are all done but whose
// merge has not landed — the janitor retries these, so a transient
// spool write error during merge heals instead of wedging the job.
func (q *queue) unmergedDone() []*job {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []*job
	for _, id := range q.order {
		j := q.jobs[id]
		if j.failerr == "" && !j.merged && j.allDoneLocked() && len(j.shards) > 0 {
			out = append(out, j)
		}
	}
	return out
}

// markFailed fails a whole job (e.g. its merge step errored).
func (q *queue) markFailed(j *job, reason string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j.failErrLocked(reason)
}

func (j *job) failErrLocked(reason string) {
	if j.failerr == "" {
		j.failerr = reason
	}
}

// expire re-queues every leased shard whose deadline has passed.
// Callers poll it via acquire/status; the server also runs it on a
// timer so stragglers are reclaimed even on an idle API.
func (q *queue) expire() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked()
}

func (q *queue) expireLocked() {
	now := q.now()
	for id, l := range q.leases {
		s := &l.job.shards[l.shard]
		if now.Before(s.deadline) {
			continue
		}
		delete(q.leases, id)
		q.requeueLocked(l.job, l.shard, fmt.Sprintf("lease %s expired (worker %s)", id, s.worker))
	}
}

func (q *queue) requeueLocked(j *job, shard int, reason string) {
	s := &j.shards[shard]
	s.state = ShardPending
	s.leaseID, s.worker = "", ""
	if s.attempts >= q.maxAttempts {
		j.failErrLocked(fmt.Sprintf("shard %d failed %d times, last: %s", shard, s.attempts, reason))
	}
}

// get returns a job by id.
func (q *queue) get(id string) (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	return j, ok
}

// status snapshots one job's live state.
func (q *queue) status(id string) (*JobStatus, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked()
	j, ok := q.jobs[id]
	if !ok {
		return nil, false
	}
	return q.statusLocked(j), true
}

// list snapshots every job in submission order.
func (q *queue) list() *JobList {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked()
	out := &JobList{Jobs: make([]JobStatus, 0, len(q.order))}
	for _, id := range q.order {
		out.Jobs = append(out.Jobs, *q.statusLocked(q.jobs[id]))
	}
	return out
}

func (q *queue) statusLocked(j *job) *JobStatus {
	st := &JobStatus{
		ID:       j.id,
		Created:  j.created,
		PlanHash: j.manifest.PlanHash,
		Total:    len(j.shards),
		Runs:     len(j.manifest.Plan.Variants) * j.manifest.Plan.Seeds,
		Shards:   make([]ShardStatus, len(j.shards)),
		Error:    j.failerr,
	}
	active := false
	for k := range j.shards {
		s := &j.shards[k]
		st.Shards[k] = ShardStatus{Shard: k, State: s.state, Worker: s.worker, Attempts: s.attempts}
		switch s.state {
		case ShardDone:
			st.Done++
		case ShardLeased:
			active = true
		}
	}
	switch {
	case j.failerr != "":
		st.State = JobFailed
	case j.merged:
		st.State = JobDone
	case active || st.Done > 0:
		st.State = JobRunning
	default:
		st.State = JobQueued
	}
	return st
}
