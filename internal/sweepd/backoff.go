package sweepd

import (
	"time"

	"crn/internal/rng"
)

// backoff produces jittered exponential delays: each next() draws
// uniformly from [cur/2, 3·cur/2) and doubles cur toward max. The
// jitter decorrelates a worker fleet — after a daemon restart every
// worker's poll failed at the same instant, and without jitter they
// would re-poll in lockstep forever (the thundering herd the fixed
// 200ms interval used to guarantee). reset() snaps back to base on
// success so an active queue is drained at full pace. Not safe for
// concurrent use; each loop owns its own backoff.
type backoff struct {
	base, max, cur time.Duration
	src            *rng.Source
}

func newBackoff(base, max time.Duration, seed uint64) *backoff {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max < base {
		max = base
	}
	return &backoff{base: base, max: max, cur: base, src: rng.New(seed)}
}

func (b *backoff) next() time.Duration {
	d := b.cur/2 + time.Duration(b.src.Intn(int(b.cur)))
	if b.cur *= 2; b.cur > b.max {
		b.cur = b.max
	}
	return d
}

func (b *backoff) reset() { b.cur = b.base }
