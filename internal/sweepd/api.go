// Package sweepd is the sweep orchestration service behind
// cmd/crnsweepd: a long-running HTTP/JSON daemon that accepts sweep
// specs (the cmd/crnsweep format, via internal/sweepfile), plans them
// into shards with crn.PlanShards, queues the shards as jobs, and
// leases them to pull-based worker processes that execute
// crn.RunShard and stream the artifacts back. Leases expire unless
// heartbeaten, so shards held by stragglers or dead workers are
// re-dispatched; artifacts are validated with the same planHash and
// per-run identity checks the offline pipeline uses; completed jobs
// are merged with crn.MergeShards and the result served back.
//
// The service's correctness contract is byte-identity: a job executed
// by any number of workers, in any interleaving, with any amount of
// lease churn, returns exactly the bytes an in-process crn.Sweep of
// the same spec would produce. Everything that makes that true —
// position-derived per-run seeds, the shared aggregation path, the
// single pretty-JSON encoder — lives in the crn facade and
// internal/sweepfile; the daemon only moves validated artifacts
// around.
//
// Job state lives in a spool directory (one subdirectory per job,
// holding exactly the files cmd/crnsweep would write: manifest.json,
// shard-k.json, merged.json, plus a small job.json), so a restarted
// daemon recovers in-flight jobs and re-queues only the shards whose
// artifacts are missing or invalid — the same artifact-validity test
// `crnsweep resume` applies.
package sweepd

import (
	"time"

	"crn/internal/sweepfile"
)

// The HTTP surface. All bodies are JSON; errors come back as
// {"error": "..."} with a non-2xx status.
//
//	POST /api/v1/jobs                   SubmitRequest   → SubmitResponse
//	GET  /api/v1/jobs                   —               → JobList
//	GET  /api/v1/jobs/{id}              —               → JobStatus
//	GET  /api/v1/jobs/{id}/result       —               → merged SweepResult bytes (409 until done)
//	POST /api/v1/lease                  LeaseRequest    → LeaseGrant, or 204 when no work
//	POST /api/v1/leases/{id}/heartbeat  —               → 204
//	POST /api/v1/leases/{id}/complete   CompleteRequest → 204
//	POST /api/v1/leases/{id}/fail       FailRequest     → 204
//	GET  /api/v1/healthz                —               → 200 "ok"

// Shard states, as reported in ShardStatus.State.
const (
	ShardPending = "pending" // queued, waiting for a worker
	ShardLeased  = "leased"  // held by a worker under a live lease
	ShardDone    = "done"    // valid artifact in the spool
)

// Job states, as reported in JobStatus.State.
const (
	JobQueued  = "queued"  // no shard has been dispatched yet
	JobRunning = "running" // at least one shard leased or done
	JobDone    = "done"    // all shards done, merged result available
	JobFailed  = "failed"  // a shard exhausted its attempts
)

// SubmitRequest asks the daemon to plan and queue one sweep.
type SubmitRequest struct {
	// Spec is the sweep, in the cmd/crnsweep spec-file format.
	Spec *sweepfile.Spec `json:"spec"`
	// Shards is the plan width (default 1).
	Shards int `json:"shards,omitempty"`
}

// SubmitResponse returns the queued job's id.
type SubmitResponse struct {
	ID string `json:"id"`
}

// ShardStatus is one shard's live state inside a JobStatus.
type ShardStatus struct {
	Shard    int    `json:"shard"`
	State    string `json:"state"`
	Worker   string `json:"worker,omitempty"`
	Attempts int    `json:"attempts"`
}

// JobStatus is the live view GET /jobs/{id} serves.
type JobStatus struct {
	ID       string        `json:"id"`
	State    string        `json:"state"`
	Created  time.Time     `json:"created"`
	PlanHash string        `json:"planHash"`
	Total    int           `json:"totalShards"`
	Done     int           `json:"doneShards"`
	Runs     int           `json:"totalRuns"`
	Shards   []ShardStatus `json:"shards"`
	Error    string        `json:"error,omitempty"`
}

// JobList is the GET /jobs reply, in submission order.
type JobList struct {
	Jobs []JobStatus `json:"jobs"`
}

// LeaseRequest identifies the worker pulling for work.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseGrant hands a worker one shard of one job, with everything
// needed to execute it: the full manifest (spec + plan + hash). The
// lease must be heartbeaten before TTL elapses or the shard is
// re-dispatched to another worker.
type LeaseGrant struct {
	Lease     string              `json:"lease"`
	Job       string              `json:"job"`
	Shard     int                 `json:"shard"`
	TTLMillis int64               `json:"ttlMillis"`
	Manifest  *sweepfile.Manifest `json:"manifest"`
}

// TTL is the grant's lease duration.
func (g *LeaseGrant) TTL() time.Duration { return time.Duration(g.TTLMillis) * time.Millisecond }

// CompleteRequest uploads the executed shard's artifact — the exact
// document `crnsweep run` would have written to disk.
type CompleteRequest struct {
	Artifact *sweepfile.Artifact `json:"artifact"`
}

// FailRequest releases a lease the worker cannot finish; the shard is
// re-queued (or the job failed, once attempts are exhausted).
type FailRequest struct {
	Reason string `json:"reason"`
}

// errorReply is the JSON error envelope.
type errorReply struct {
	Error string `json:"error"`
}
