package sweepd

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"sync"
	"time"

	"crn/internal/sweepfile"
)

// Config parameterizes a Server.
type Config struct {
	// Spool is the job-state directory (required). A daemon restarted
	// on the same spool resumes its in-flight jobs.
	Spool string
	// LeaseTTL is how long a worker may hold a shard without
	// heartbeating before it is re-dispatched (default 60s).
	LeaseTTL time.Duration
	// MaxAttempts bounds how many leases one shard may burn before its
	// job is failed (default 5).
	MaxAttempts int
	// MaxInflight bounds concurrently-served API requests (overload
	// shedding): excess requests are refused with 429 + Retry-After
	// instead of queueing without bound. 0 disables shedding. The
	// health endpoint is exempt — a shedding daemon is alive.
	MaxInflight int
	// FS is the spool filesystem (default sweepfile.OS). internal/chaos
	// injects faults here.
	FS sweepfile.FS
	// Now is the queue's clock (default time.Now). Tests and chaos
	// schedules use a manual clock so lease expiry needs no wall-clock
	// sleeps.
	Now func() time.Time
	// OnShardDone, when set, observes every acked shard completion
	// (after the artifact is durably spooled and the queue marked it
	// done). The chaos harness uses it to assert no acked artifact is
	// ever lost.
	OnShardDone func(jobID string, shard int)
	// Log receives operational messages (default: log.Default()).
	Log *log.Logger
}

// Server is the sweep orchestrator: it owns the queue and the spool
// and exposes them as the HTTP API documented in api.go. Create one
// with New, mount Handler on an http.Server, and Close it when done.
type Server struct {
	cfg      Config
	queue    *queue
	store    *store
	log      *log.Logger
	inflight chan struct{} // shedding semaphore (nil: unbounded)
	stop     chan struct{}
	stopOnce sync.Once
}

// New opens (or creates) the spool, recovers any jobs already in it —
// re-queueing exactly the shards without valid artifacts, and merging
// jobs that crashed between the last upload and the merge — and
// returns a ready Server.
func New(cfg Config) (*Server, error) {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 60 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.Log == nil {
		cfg.Log = log.Default()
	}
	st, err := newStore(cfg.Spool, cfg.FS)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		queue: newQueue(cfg.LeaseTTL, cfg.MaxAttempts),
		store: st,
		log:   cfg.Log,
		stop:  make(chan struct{}),
	}
	if cfg.Now != nil {
		s.queue.now = cfg.Now
	}
	if cfg.MaxInflight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInflight)
	}
	if err := s.recoverJobs(); err != nil {
		return nil, err
	}
	// Reclaim straggler leases even when no worker is polling.
	go s.janitor()
	return s, nil
}

func (s *Server) recoverJobs() error {
	recovered, skipped, err := s.store.recover()
	if err != nil {
		return err
	}
	for _, serr := range skipped {
		s.log.Printf("sweepd: spool: skipping unrecoverable %v", serr)
	}
	// ReadDir order is lexical; dispatch in original submission order.
	sort.Slice(recovered, func(i, k int) bool {
		if !recovered[i].created.Equal(recovered[k].created) {
			return recovered[i].created.Before(recovered[k].created)
		}
		return recovered[i].id < recovered[k].id
	})
	for _, rj := range recovered {
		j := s.queue.add(rj.id, rj.dir, rj.manifest, rj.created, rj.doneShards, rj.merged, rj.mergedSum)
		done := 0
		for _, ok := range rj.doneShards {
			if ok {
				done++
			}
		}
		s.log.Printf("sweepd: recovered job %s: %d/%d shards done, merged=%v",
			rj.id, done, len(rj.doneShards), rj.merged)
		// Crashed after the last artifact but before (or during) the
		// merge: finish it now. Deterministic bytes make this idempotent.
		if done == len(rj.doneShards) && !rj.merged {
			s.finishJob(j)
		}
	}
	return nil
}

// finishJob merges an all-shards-done job, triaging failure by the
// store's error taxonomy: an invalid shard artifact re-queues that
// shard (self-healing — chaos or a bad disk corrupted it after the
// ack, so it is simply re-run), a semantic merge rejection fails the
// job, and anything else (a transient spool write error) leaves the
// job all-done-unmerged for the janitor to retry.
func (s *Server) finishJob(j *job) {
	sum, err := s.store.mergeJob(j)
	if err == nil {
		s.queue.markMerged(j, sum)
		s.log.Printf("sweepd: job %s merged: result available", j.id)
		return
	}
	var inv *shardInvalidError
	if errors.As(err, &inv) {
		s.queue.invalidateShard(j, inv.shard, inv.Error())
		s.log.Printf("sweepd: job %s: %v — shard %d re-queued", j.id, err, inv.shard)
		return
	}
	var fatal *fatalMergeError
	if errors.As(err, &fatal) {
		s.queue.markFailed(j, err.Error())
		s.log.Printf("sweepd: job %s: merge failed: %v", j.id, err)
		return
	}
	s.log.Printf("sweepd: job %s: merge deferred (will retry): %v", j.id, err)
}

// janitor expires stale leases and retries deferred merges in the
// background until Close.
func (s *Server) janitor() {
	tick := time.NewTicker(s.cfg.LeaseTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.queue.expire()
			for _, j := range s.queue.unmergedDone() {
				s.finishJob(j)
			}
		}
	}
}

// Close stops the background janitor (idempotent). In-memory queue
// state is discarded; the spool carries everything a restart needs.
func (s *Server) Close() error {
	s.stopOnce.Do(func() { close(s.stop) })
	return nil
}

// Handler returns the daemon's HTTP API, wrapped in the overload
// shedder when MaxInflight is set.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /api/v1/lease", s.handleAcquire)
	mux.HandleFunc("POST /api/v1/leases/{id}/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("POST /api/v1/leases/{id}/complete", s.handleComplete)
	mux.HandleFunc("POST /api/v1/leases/{id}/fail", s.handleFail)
	mux.HandleFunc("GET /api/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return s.shed(mux)
}

// shed refuses requests beyond MaxInflight with 429 + Retry-After —
// clients (and the workers' backoff loops) honor the hint, so a
// flooded daemon degrades into pacing instead of collapse. 429 always
// means "not processed": every verb, Submit included, may safely
// retry it.
func (s *Server) shed(next http.Handler) http.Handler {
	if s.inflight == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/api/v1/healthz" {
			next.ServeHTTP(w, r)
			return
		}
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
			next.ServeHTTP(w, r)
		default:
			w.Header().Set("Retry-After", "1")
			s.error(w, http.StatusTooManyRequests, fmt.Errorf("daemon overloaded (%d requests in flight), retry later", cap(s.inflight)))
		}
	})
}

// maxBody bounds request bodies; shard artifacts dominate and are
// JSON run lists, far below this.
const maxBody = 128 << 20

func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	doc, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		s.error(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return false
	}
	if err := sweepfile.UnmarshalStrict(doc, v); err != nil {
		s.error(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func (s *Server) reply(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.log.Printf("sweepd: writing response: %v", err)
	}
}

func (s *Server) error(w http.ResponseWriter, status int, err error) {
	s.reply(w, status, &errorReply{Error: err.Error()})
}

// newJobID returns a short random id; the spool directory name and
// the API handle are the same string.
func newJobID() (string, error) {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return "j" + hex.EncodeToString(b[:]), nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if req.Spec == nil {
		s.error(w, http.StatusBadRequest, fmt.Errorf("submit: missing spec"))
		return
	}
	shards := req.Shards
	if shards == 0 {
		shards = 1
	}
	m, err := sweepfile.NewManifest(req.Spec, shards)
	if err != nil {
		s.error(w, http.StatusBadRequest, err)
		return
	}
	id, err := newJobID()
	if err != nil {
		s.error(w, http.StatusInternalServerError, err)
		return
	}
	created := time.Now().UTC()
	dir, err := s.store.createJob(id, m, created)
	if err != nil {
		s.error(w, http.StatusInternalServerError, err)
		return
	}
	s.queue.add(id, dir, m, created, nil, false, "")
	s.log.Printf("sweepd: job %s submitted: %d runs in %d shards (plan %s)",
		id, len(m.Plan.Variants)*m.Plan.Seeds, len(m.Plan.Shards), m.PlanHash)
	s.reply(w, http.StatusOK, &SubmitResponse{ID: id})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.reply(w, http.StatusOK, s.queue.list())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.queue.status(r.PathValue("id"))
	if !ok {
		s.error(w, http.StatusNotFound, fmt.Errorf("job %s not found", r.PathValue("id")))
		return
	}
	s.reply(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.queue.status(id)
	if !ok {
		s.error(w, http.StatusNotFound, fmt.Errorf("job %s not found", id))
		return
	}
	switch st.State {
	case JobFailed:
		s.error(w, http.StatusGone, fmt.Errorf("job %s failed: %s", id, st.Error))
		return
	case JobDone:
	default:
		s.error(w, http.StatusConflict, fmt.Errorf("job %s is %s (%d/%d shards done)", id, st.State, st.Done, st.Total))
		return
	}
	j, _ := s.queue.get(id)
	doc, err := s.store.resultBytes(j, s.queue.mergedSumOf(j))
	if err != nil {
		s.error(w, http.StatusInternalServerError, err)
		return
	}
	// Serve the merged file verbatim: the bytes ARE the contract.
	w.Header().Set("Content-Type", "application/json")
	w.Write(doc)
}

func (s *Server) handleAcquire(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if req.Worker == "" {
		s.error(w, http.StatusBadRequest, fmt.Errorf("lease: missing worker name"))
		return
	}
	grant := s.queue.acquire(req.Worker)
	if grant == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	s.log.Printf("sweepd: lease %s: shard %d of job %s → worker %s", grant.Lease, grant.Shard, grant.Job, req.Worker)
	s.reply(w, http.StatusOK, grant)
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if err := s.queue.heartbeat(r.PathValue("id")); err != nil {
		s.error(w, http.StatusConflict, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	leaseID := r.PathValue("id")
	var req CompleteRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if req.Artifact == nil {
		s.error(w, http.StatusBadRequest, fmt.Errorf("complete: missing artifact"))
		return
	}
	j, shard, completed, err := s.queue.lookup(leaseID)
	if err != nil {
		s.error(w, http.StatusConflict, err)
		return
	}
	if completed {
		// Replayed upload for a lease that already completed — the
		// worker's first ack was lost. The artifact is already spooled
		// and validated; acknowledge again and change nothing.
		s.log.Printf("sweepd: lease %s: duplicate complete for shard %d of job %s (no-op)", leaseID, shard, j.id)
		w.WriteHeader(http.StatusNoContent)
		return
	}
	// The same validation gauntlet the offline pipeline applies:
	// plan hash, shard index, run count here; per-run identity and
	// derived seeds again at merge time.
	if err := sweepfile.CheckArtifact(j.manifest, req.Artifact, shard); err != nil {
		s.error(w, http.StatusUnprocessableEntity, fmt.Errorf("shard %d artifact rejected: %w", shard, err))
		return
	}
	if err := s.store.writeArtifact(j, shard, req.Artifact); err != nil {
		s.error(w, http.StatusInternalServerError, err)
		return
	}
	j2, last, err := s.queue.complete(leaseID)
	if err != nil {
		// Lease expired between lookup and complete; the shard is
		// re-queued and the spooled artifact (deterministic bytes)
		// will satisfy its next lease.
		s.error(w, http.StatusConflict, err)
		return
	}
	s.log.Printf("sweepd: lease %s: shard %d of job %s complete", leaseID, shard, j.id)
	if s.cfg.OnShardDone != nil {
		s.cfg.OnShardDone(j2.id, shard)
	}
	if last {
		s.finishJob(j2)
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleFail(w http.ResponseWriter, r *http.Request) {
	leaseID := r.PathValue("id")
	var req FailRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if err := s.queue.fail(leaseID, req.Reason); err != nil {
		s.error(w, http.StatusConflict, err)
		return
	}
	s.log.Printf("sweepd: lease %s failed by worker: %s", leaseID, req.Reason)
	w.WriteHeader(http.StatusNoContent)
}
